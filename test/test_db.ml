(* Tests for Sv_db: compile_commands.json handling and the Codebase DB
   round-trip (msgpack + compression). *)

module Compdb = Sv_db.Compdb
module Cdb = Sv_db.Codebase_db
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let sample_json =
  {|[
  {"directory": "/build", "file": "stream.cpp",
   "arguments": ["clang++", "-O3", "-DUSE_GPU", "-DN=1024", "-Iinclude", "-I", "extra", "stream.cpp"]},
  {"directory": "/build", "file": "kernels.f90",
   "command": "gfortran -O2 kernels.f90"}
]|}

let test_compdb_parse () =
  match Compdb.parse sample_json with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ a; b ] ->
      checks "file" "stream.cpp" a.Compdb.file;
      checks "dir" "/build" a.Compdb.directory;
      checki "args" 8 (List.length a.Compdb.arguments);
      checks "command split" "gfortran" (List.hd b.Compdb.arguments)
  | Ok _ -> Alcotest.fail "expected two entries"

let test_compdb_defines () =
  match Compdb.parse sample_json with
  | Ok (a :: _) ->
      Alcotest.(check (list (pair string string)))
        "defines" [ ("USE_GPU", "1"); ("N", "1024") ] (Compdb.defines a)
  | _ -> Alcotest.fail "parse failed"

let test_compdb_includes () =
  match Compdb.parse sample_json with
  | Ok (a :: _) ->
      Alcotest.(check (list string)) "includes" [ "include"; "extra" ] (Compdb.include_dirs a)
  | _ -> Alcotest.fail "parse failed"

let test_compdb_language () =
  match Compdb.parse sample_json with
  | Ok [ a; b ] ->
      checkb "cpp" true (Compdb.language a = `C);
      checkb "fortran" true (Compdb.language b = `Fortran)
  | _ -> Alcotest.fail "parse failed"

let test_compdb_roundtrip () =
  match Compdb.parse sample_json with
  | Ok entries -> (
      match Compdb.parse (Compdb.to_json_string entries) with
      | Ok entries' -> checkb "round-trip" true (entries = entries')
      | Error e -> Alcotest.failf "re-parse failed: %s" e)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_compdb_errors () =
  checkb "not array" true (Result.is_error (Compdb.parse "{}"));
  checkb "missing fields" true (Result.is_error (Compdb.parse {|[{"file": "x"}]|}));
  checkb "bad json" true (Result.is_error (Compdb.parse "[{"))

(* --- codebase db --- *)

let gen_label =
  QCheck.Gen.(
    map2
      (fun kind text -> Label.v ~text ("k" ^ string_of_int kind))
      (int_bound 5) (string_size (int_bound 6)))

let gen_tree =
  QCheck.Gen.(
    sized_size (int_bound 8) (fix (fun self n ->
        if n = 0 then map Tree.leaf gen_label
        else map2 Tree.node gen_label (list_size (int_bound 3) (self (n / 2))))))

let arb_tree = QCheck.make gen_tree

let prop_tree_codec_roundtrip =
  QCheck.Test.make ~name:"tree msgpack codec round-trip" ~count:300 arb_tree (fun t ->
      match Cdb.tree_of_msgpack (Cdb.tree_to_msgpack t) with
      | Ok t' -> Tree.equal (fun a b -> a = b) t t'
      | Error _ -> false)

let sample_db () =
  let tree =
    Tree.node
      (Label.v ~loc:(Sv_util.Loc.make ~file:"m.cpp" ~line:1 ~col:0) "tunit")
      [ Tree.leaf (Label.v ~text:"+" "binary") ]
  in
  {
    Cdb.db_app = "tealeaf";
    db_model = "sycl-usm";
    db_units =
      [
        {
          Cdb.ur_file = "m.cpp";
          ur_deps = [ "sycl.h" ];
          ur_sloc = 120;
          ur_lloc = 95;
          ur_lines = [ "int main() {"; "}" ];
          ur_trees = [ ("t_sem", tree); ("t_src", tree) ];
        };
      ];
  }

let test_db_roundtrip () =
  let db = sample_db () in
  match Cdb.load (Cdb.save db) with
  | Ok db' -> checkb "identical" true (db = db')
  | Error e -> Alcotest.failf "load failed: %s" e

let test_db_corruption () =
  let bytes = Cdb.save (sample_db ()) in
  checkb "garbage rejected" true (Result.is_error (Cdb.load "not a database"));
  checkb "truncation rejected" true
    (Result.is_error (Cdb.load (String.sub bytes 0 (String.length bytes / 2))))

let test_db_stats () =
  let s = Cdb.stats (sample_db ()) in
  checkb "mentions app/model" true
    (Sv_util.Xstring.starts_with ~prefix:"tealeaf/sycl-usm" s)

(* --- TED cache --- *)

module Tc = Cdb.Ted_cache

let test_ted_cache_digest_loc_blind () =
  let t ~file = Tree.leaf (Label.v ~text:"x" ~loc:(Sv_util.Loc.make ~file ~line:3 ~col:1) "call") in
  checkb "digest ignores locations" true (Tc.digest (t ~file:"a.cpp") = Tc.digest (t ~file:"b.cpp"));
  checkb "digest sees text" false
    (Tc.digest (t ~file:"a.cpp") = Tc.digest (Tree.leaf (Label.v ~text:"y" "call")))

let test_ted_cache_find_symmetric () =
  let c = Tc.create () in
  Tc.add c "aaaa" "bbbb" 7;
  checkb "forward" true (Tc.find c "aaaa" "bbbb" = Some 7);
  checkb "reversed" true (Tc.find c "bbbb" "aaaa" = Some 7);
  checkb "absent" true (Tc.find c "aaaa" "cccc" = None);
  checki "hits" 2 (Tc.hits c);
  checki "misses" 1 (Tc.misses c);
  Alcotest.(check (list (triple string string int)))
    "journal drains once" [ ("aaaa", "bbbb", 7) ] (Tc.drain_additions c);
  checkb "journal empty after drain" true (Tc.drain_additions c = [])

let test_ted_cache_merge_defensive () =
  let d16 c = String.make 16 c in
  let c = Tc.create () in
  Tc.merge c [ (d16 'a', d16 'b', 7) ];
  checki "valid entry merged" 1 (Tc.size c);
  (* duplicates, reversed order and conflicting re-sends (a degraded run
     handing the same pair over twice) never tear or clobber the entry *)
  Tc.merge c [ (d16 'a', d16 'b', 7); (d16 'b', d16 'a', 99) ];
  checki "idempotent under re-merge" 1 (Tc.size c);
  checkb "first value wins" true (Tc.find c (d16 'a') (d16 'b') = Some 7);
  (* entries mangled by a faulted worker pipe are dropped, not stored torn *)
  Tc.merge c [ ("short", d16 'c', 3); (d16 'c', d16 'd', -1); ("", "", 0) ];
  checki "malformed entries dropped" 1 (Tc.size c);
  checkb "merge never journals" true (Tc.drain_additions c = [])

let gen_cache_entries =
  QCheck.Gen.(
    list_size (int_bound 40)
      (triple (string_size (return 16)) (string_size (return 16)) (int_bound 10_000)))

let arb_cache_entries = QCheck.make gen_cache_entries

let prop_ted_cache_roundtrip =
  QCheck.Test.make ~name:"ted cache artifact round-trip" ~count:200 arb_cache_entries
    (fun entries ->
      let c = Tc.create () in
      Tc.merge c entries;
      match Tc.load (Tc.save c) with
      | Error _ -> false
      | Ok c' ->
          Tc.size c' = Tc.size c
          && List.for_all (fun (a, b, _) -> Tc.find c' a b = Tc.find c a b) entries
          (* sorted serialisation: contents determine the bytes *)
          && Tc.save c' = Tc.save c)

let prop_ted_cache_truncation =
  QCheck.Test.make ~name:"truncated cache artifact is rejected" ~count:200
    QCheck.(pair arb_cache_entries (int_bound 100_000))
    (fun (entries, cut_seed) ->
      let c = Tc.create () in
      Tc.merge c entries;
      let art = Tc.save c in
      let cut = cut_seed mod String.length art in
      Result.is_error (Tc.load (String.sub art 0 cut)))

(* --- index cache --- *)

module Ic = Sv_db.Index_cache

let ic_key ?version ?(digest = String.make 16 'd') ?(defines = [ "N=8" ])
    ?(dialect = "minic") () =
  Ic.key ?version ~source_digest:digest ~defines ~dialect ()

let test_index_cache_key_invalidation () =
  let base = ic_key () in
  checkb "deterministic" true (ic_key () = base);
  checki "16-byte key" 16 (String.length base);
  checkb "source digest changes key" false
    (ic_key ~digest:(String.make 16 'e') () = base);
  checkb "defines change key" false (ic_key ~defines:[ "N=9" ] () = base);
  checkb "define order is significant" false
    (ic_key ~defines:[ "A=1"; "B=2" ] () = ic_key ~defines:[ "B=2"; "A=1" ] ());
  checkb "dialect changes key" false (ic_key ~dialect:"minif" () = base);
  checkb "pipeline version changes key" false
    (ic_key ~version:(Ic.pipeline_version + 1) () = base)

let test_index_cache_add_defensive () =
  let c = Ic.create () in
  let k = ic_key () in
  Ic.add c k "payload-1";
  checki "stored" 1 (Ic.size c);
  (* a second writer for the same key (two processes racing on a shared
     cache file) must not clobber the first result *)
  Ic.add c k "payload-2";
  checkb "never overwrites" true (Ic.find c k = Some "payload-1");
  Ic.add c "short-key" "x";
  Ic.add c (String.make 16 'k') "";
  checki "malformed entries dropped" 1 (Ic.size c);
  checki "hits counted" 1 (Ic.hits c);
  checkb "miss counted" true (Ic.find c (ic_key ~dialect:"minif" ()) = None);
  checki "misses counted" 1 (Ic.misses c)

let test_index_cache_merge_idempotent () =
  let c = Ic.create () in
  let entries =
    [ (ic_key (), "a"); (ic_key ~dialect:"minif" (), "b"); ("bad", "c") ]
  in
  Ic.merge c entries;
  checki "valid entries merged" 2 (Ic.size c);
  Ic.merge c entries;
  Ic.merge c entries;
  checki "idempotent under re-merge" 2 (Ic.size c);
  checkb "values intact" true (Ic.find c (ic_key ()) = Some "a")

let test_index_cache_load_file_missing () =
  let c = Ic.load_file "/nonexistent/dir/index.cache" in
  checki "missing file is a cold start" 0 (Ic.size c)

let gen_ic_entries =
  QCheck.Gen.(
    list_size (int_bound 40)
      (pair (string_size (return 16)) (string_size (int_range 1 64))))

let arb_ic_entries = QCheck.make gen_ic_entries

let prop_index_cache_roundtrip =
  QCheck.Test.make ~name:"index cache artifact round-trip" ~count:200
    arb_ic_entries (fun entries ->
      let c = Ic.create () in
      Ic.merge c entries;
      match Ic.load (Ic.save c) with
      | Error _ -> false
      | Ok c' ->
          Ic.size c' = Ic.size c
          && List.for_all (fun (k, _) -> Ic.find c' k = Ic.find c k) entries
          (* sorted serialisation: contents determine the bytes *)
          && Ic.save c' = Ic.save c)

let prop_index_cache_truncation =
  QCheck.Test.make ~name:"truncated index cache artifact is rejected" ~count:200
    QCheck.(pair arb_ic_entries (int_bound 100_000))
    (fun (entries, cut_seed) ->
      let c = Ic.create () in
      Ic.merge c entries;
      let art = Ic.save c in
      let cut = cut_seed mod String.length art in
      Result.is_error (Ic.load (String.sub art 0 cut)))

(* --- metric cache (persisted VP-tree indexes) --- *)

module Mc = Sv_db.Metric_cache
module Vp = Sv_metric.Vptree

let mc_key ?version ?(digest = String.make 16 'd') ?(metric = "T_sem")
    ?(variant = "") () =
  Mc.key ?version ~corpus_digest:digest ~metric ~variant ()

let test_metric_cache_key_invalidation () =
  let base = mc_key () in
  checkb "deterministic" true (mc_key () = base);
  checki "16-byte key" 16 (String.length base);
  checkb "corpus digest changes key" false
    (mc_key ~digest:(String.make 16 'e') () = base);
  checkb "metric changes key" false (mc_key ~metric:"T_src" () = base);
  checkb "variant changes key" false (mc_key ~variant:"+pp" () = base);
  checkb "schema version changes key" false
    (mc_key ~version:(Mc.metric_schema + 1) () = base)

(* A line metric over deterministic pseudo-random coordinates: cheap,
   a true metric, and enough spread to build non-trivial trees. *)
let mc_coords n =
  Array.init n (fun i -> (i * 2654435761) land 0xffff)

let mc_dist coords i j = abs (coords.(i) - coords.(j))

let mc_tree n =
  let coords = mc_coords n in
  (coords, Vp.build ~dist:(mc_dist coords) (Array.init n (fun i -> i)))

let knn coords t q k =
  let dq i ~cutoff =
    let d = abs (coords.(i) - q) in
    if d <= cutoff then Some d else None
  in
  fst (Vp.nearest ~dist_bounded:dq ~k t)

let test_metric_cache_tree_roundtrip () =
  let n = 64 in
  let coords, t = mc_tree n in
  let c = Mc.create () in
  let k = mc_key () in
  Mc.add c k t;
  checki "stored" 1 (Mc.size c);
  (match Mc.find c k with
  | None -> Alcotest.fail "own entry must decode"
  | Some t' ->
      checki "size survives" n (Vp.size t');
      checki "decoded tree reports zero build evals" 0 (Vp.build_evals t');
      checkb "elements dense" true
        (Vp.elements t' = Array.init n (fun i -> i));
      (* structural identity: the decoded index answers queries with
         exactly the same hits as the one that was encoded *)
      List.iter
        (fun q ->
          checkb "same k-NN answers" true
            (knn coords t' q 5 = knn coords t q 5))
        [ 0; 1; 7777; 65535; 30000 ]);
  (* adding again never overwrites, and artifacts are deterministic *)
  Mc.add c k t;
  checki "never duplicated" 1 (Mc.size c);
  match Mc.load (Mc.save c) with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok c' ->
      checki "size round-trips" 1 (Mc.size c');
      checkb "sorted serialisation: contents determine bytes" true
        (Mc.save c' = Mc.save c);
      checkb "entry decodes after reload" true (Mc.find c' k <> None)

let test_metric_cache_corrupt_payload () =
  let _, t = mc_tree 32 in
  let c = Mc.create () in
  Mc.add c (mc_key ()) t;
  (* a payload that is valid svz/msgpack framing but not a valid tree
     must degrade to a miss, never a crash or a wrong answer *)
  let garbage_key = mc_key ~metric:"garbage" () in
  Mc.merge c [ (garbage_key, "not msgpack at all") ];
  checki "merge keeps the raw entry" 2 (Mc.size c);
  checkb "malformed payload is a miss" true (Mc.find c garbage_key = None);
  checkb "good entry unaffected" true (Mc.find c (mc_key ()) <> None);
  (* duplicate-id / mangled reprs are caught by the validation stack *)
  let mangled =
    let repr = Array.to_list (Vp.to_repr t) in
    Sv_msgpack.Msgpack.encode
      (Sv_msgpack.Msgpack.Arr
         (List.mapi
            (fun i x ->
              Sv_msgpack.Msgpack.Int (if i = 2 then x + 1_000_000 else x))
            (List.map (fun x -> x) repr)))
  in
  let mangled_key = mc_key ~metric:"mangled" () in
  Mc.merge c [ (mangled_key, mangled) ];
  checkb "mangled repr is a miss" true (Mc.find c mangled_key = None)

let prop_metric_cache_truncation =
  QCheck.Test.make ~name:"truncated metric cache artifact is rejected"
    ~count:100
    QCheck.(pair (int_range 1 80) (int_bound 100_000))
    (fun (n, cut_seed) ->
      let _, t = mc_tree n in
      let c = Mc.create () in
      Mc.add c (mc_key ()) t;
      let art = Mc.save c in
      let cut = cut_seed mod String.length art in
      Result.is_error (Mc.load (String.sub art 0 cut)))

let prop_metric_cache_bitflip =
  QCheck.Test.make ~name:"bit-flipped metric cache artifact never crashes"
    ~count:100
    QCheck.(pair (int_range 1 80) (pair small_nat small_nat))
    (fun (n, (pos_seed, bit)) ->
      let _, t = mc_tree n in
      let c = Mc.create () in
      let k = mc_key () in
      Mc.add c k t;
      let art = Bytes.of_string (Mc.save c) in
      let pos = pos_seed mod Bytes.length art in
      Bytes.set art pos
        (Char.chr (Char.code (Bytes.get art pos) lxor (1 lsl (bit mod 8))));
      match Mc.load (Bytes.to_string art) with
      | Error _ -> true (* svz checksum or framing caught it *)
      | Ok c' -> (
          (* decodable-but-different: the payload validators must still
             only ever yield a structurally sound tree *)
          match Mc.find c' k with
          | None -> true
          | Some t' -> Vp.elements t' = Array.init (Vp.size t') (fun i -> i)))

let test_metric_cache_load_file_missing () =
  let c = Mc.load_file "/nonexistent/dir/metric.cache" in
  checki "missing file is a cold start" 0 (Mc.size c);
  let path = Filename.temp_file "sv_mc_corrupt" ".svz" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc "definitely not an svz artifact";
  close_out oc;
  let c = Mc.load_file path in
  checki "corrupt file is a cold start" 0 (Mc.size c)

let test_db_pipeline_integration () =
  (* a real indexed codebase survives the save/load cycle *)
  let cb =
    List.find
      (fun (c : Sv_corpus.Emit.codebase) -> c.Sv_corpus.Emit.model = "omp")
      (Sv_corpus.Babelstream.all ())
  in
  let ix = Sv_core.Pipeline.index cb in
  let db = Sv_core.Pipeline.to_db ix in
  match Cdb.load (Cdb.save db) with
  | Ok db' ->
      checkb "round-trips" true (db = db');
      checkb "has coverage variants" true
        (List.exists
           (fun (u : Cdb.unit_record) -> List.mem_assoc "t_sem+cov" u.Cdb.ur_trees)
           db'.Cdb.db_units)
  | Error e -> Alcotest.failf "load failed: %s" e

(* --- lru --- *)

module Lru = Sv_db.Lru

let lru_of_strings ?on_evict budget =
  Lru.create ?on_evict ~budget ~size_of:String.length ()

let test_lru_eviction_order () =
  let evicted = ref [] in
  let t =
    lru_of_strings ~on_evict:(fun k _ -> evicted := k :: !evicted) 30
  in
  Lru.add t "a" "0123456789";
  Lru.add t "b" "0123456789";
  Lru.add t "c" "0123456789";
  (* touch [a]: it is now most recent, so pressure must take [b] *)
  checkb "hit a" true (Lru.find t "a" <> None);
  Lru.add t "d" "0123456789";
  Alcotest.(check (list string)) "evicted LRU tail" [ "b" ] !evicted;
  Alcotest.(check (list string))
    "recency order" [ "d"; "a"; "c" ]
    (Lru.keys_newest_first t);
  checki "evictions counted" 1 (Lru.evictions t)

let test_lru_size_accounting () =
  let t = lru_of_strings 100 in
  Lru.add t "a" "xxxx";
  Lru.add t "b" "yyyyyy";
  checki "bytes is the sum" 10 (Lru.bytes t);
  (* replacing a binding accounts the new size, not both *)
  Lru.add t "a" "xx";
  checki "replace reaccounts" 8 (Lru.bytes t);
  checki "replace keeps count" 2 (Lru.count t);
  Lru.remove t "b";
  checki "remove deducts" 2 (Lru.bytes t);
  Lru.remove t "nope";
  checki "missing remove is a no-op" 2 (Lru.bytes t)

let test_lru_newest_survives () =
  (* one entry over budget degrades to a cache of one, never zero *)
  let evicted = ref [] in
  let t = lru_of_strings ~on_evict:(fun k _ -> evicted := k :: !evicted) 5 in
  Lru.add t "big" "0123456789";
  checki "oversized newest resident" 1 (Lru.count t);
  Lru.add t "bigger" "01234567890123456789";
  Alcotest.(check (list string)) "older one spilled" [ "big" ] !evicted;
  Alcotest.(check (list string))
    "newest alone survives" [ "bigger" ]
    (Lru.keys_newest_first t)

let test_lru_counters () =
  let t = lru_of_strings 100 in
  Lru.add t "a" "x";
  checkb "hit" true (Lru.find t "a" = Some "x");
  checkb "miss" true (Lru.find t "b" = None);
  checkb "mem does not touch counters" true (Lru.mem t "a");
  checki "hits" 1 (Lru.hits t);
  checki "misses" 1 (Lru.misses t)

let test_lru_evict_sees_miss () =
  (* on_evict runs after the unlink: a callback probing the table must
     observe the entry already gone *)
  let t = ref None in
  let saw = ref `Unset in
  let lru =
    Lru.create
      ~on_evict:(fun k _ ->
        saw := if Lru.find (Option.get !t) k = None then `Miss else `Hit)
      ~budget:4 ~size_of:String.length ()
  in
  t := Some lru;
  Lru.add lru "a" "123";
  Lru.add lru "b" "1234";
  checkb "callback saw a miss" true (!saw = `Miss)

let test_lru_spill_roundtrip () =
  (* the daemon's residency policy: eviction spills into a persistent
     index cache, and the spilled payload survives a save/load cycle *)
  let cache = Ic.create () in
  let key = String.init 16 (fun i -> Char.chr (i + 65)) in
  let t =
    Lru.create
      ~on_evict:(fun k payload -> Ic.add cache k payload)
      ~budget:8 ~size_of:String.length ()
  in
  Lru.add t key "payload-one";
  Lru.add t (String.make 16 'z') "payload-two";
  checkb "evicted from lru" false (Lru.mem t key);
  checkb "spilled to cache" true (Ic.find cache key = Some "payload-one");
  let path = Filename.temp_file "sv_lru_spill" ".svix" in
  Ic.save_file path cache;
  let cache' = Ic.load_file path in
  Sys.remove path;
  checkb "spill survives persistence" true
    (Ic.find cache' key = Some "payload-one")

let () =
  Alcotest.run "db"
    [
      ( "compdb",
        [
          Alcotest.test_case "parse" `Quick test_compdb_parse;
          Alcotest.test_case "defines" `Quick test_compdb_defines;
          Alcotest.test_case "includes" `Quick test_compdb_includes;
          Alcotest.test_case "language" `Quick test_compdb_language;
          Alcotest.test_case "round-trip" `Quick test_compdb_roundtrip;
          Alcotest.test_case "errors" `Quick test_compdb_errors;
        ] );
      ( "codebase-db",
        [
          Alcotest.test_case "round-trip" `Quick test_db_roundtrip;
          Alcotest.test_case "corruption" `Quick test_db_corruption;
          Alcotest.test_case "stats" `Quick test_db_stats;
          Alcotest.test_case "pipeline integration" `Quick test_db_pipeline_integration;
        ] );
      ( "ted-cache",
        [
          Alcotest.test_case "digest is loc-blind" `Quick test_ted_cache_digest_loc_blind;
          Alcotest.test_case "find is symmetric" `Quick test_ted_cache_find_symmetric;
          Alcotest.test_case "merge is defensive" `Quick test_ted_cache_merge_defensive;
        ] );
      ( "index-cache",
        [
          Alcotest.test_case "key invalidation" `Quick
            test_index_cache_key_invalidation;
          Alcotest.test_case "add is defensive" `Quick
            test_index_cache_add_defensive;
          Alcotest.test_case "merge is idempotent" `Quick
            test_index_cache_merge_idempotent;
          Alcotest.test_case "missing file is cold start" `Quick
            test_index_cache_load_file_missing;
        ] );
      ( "metric-cache",
        [
          Alcotest.test_case "key invalidation" `Quick
            test_metric_cache_key_invalidation;
          Alcotest.test_case "tree round-trip" `Quick
            test_metric_cache_tree_roundtrip;
          Alcotest.test_case "corrupt payload degrades to miss" `Quick
            test_metric_cache_corrupt_payload;
          Alcotest.test_case "missing/corrupt file is cold start" `Quick
            test_metric_cache_load_file_missing;
        ] );
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "size accounting" `Quick test_lru_size_accounting;
          Alcotest.test_case "newest survives" `Quick test_lru_newest_survives;
          Alcotest.test_case "hit/miss counters" `Quick test_lru_counters;
          Alcotest.test_case "on_evict sees a miss" `Quick
            test_lru_evict_sees_miss;
          Alcotest.test_case "spill round-trip" `Quick test_lru_spill_roundtrip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tree_codec_roundtrip; prop_ted_cache_roundtrip;
            prop_ted_cache_truncation; prop_index_cache_roundtrip;
            prop_index_cache_truncation; prop_metric_cache_truncation;
            prop_metric_cache_bitflip ] );
    ]
