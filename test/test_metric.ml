(* Property suite for the metric layer: admissible TED lower bounds
   (binary-branch profile included), the pivot scheduler's exactness and
   interval soundness, and VP-tree k-NN / range queries against brute
   force. Everything is Prng-seeded (SV_PROP_ITERS scales the volume),
   so a failure reports a reproducible case. *)

module Tree = Sv_tree.Tree
module Ted = Sv_tree.Ted
module Flat = Sv_tree.Flat
module Pivots = Sv_metric.Pivots
module Vptree = Sv_metric.Vptree
module Prng = Sv_util.Prng

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let prop_iters =
  match Sys.getenv_opt "SV_PROP_ITERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 500)
  | None -> 500

let rec gen_tree_sized rng n =
  let label = Prng.int rng 4 in
  if n <= 1 then Tree.leaf label
  else begin
    let kids = ref [] and remaining = ref (n - 1) in
    while !remaining > 0 do
      let take = 1 + Prng.int rng !remaining in
      kids := gen_tree_sized rng take :: !kids;
      remaining := !remaining - take
    done;
    Tree.node label (List.rev !kids)
  end

let show_tree t = Format.asprintf "%a" (Tree.pp Format.pp_print_int) t

(* --- lower bounds ---------------------------------------------------- *)

(* Admissibility against the brute-force oracle (small trees, so the
   oracle itself is independent of the DP under test), and dominance of
   the combined bound over its components. *)
let test_bounds_admissible () =
  let rng = Prng.create 0x6b0d_5eed in
  let iters = max 500 prop_iters in
  for i = 1 to iters do
    let a = gen_tree_sized rng (1 + Prng.int rng 10) in
    let b = gen_tree_sized rng (1 + Prng.int rng 10) in
    let d = Ted.distance_brute ~eq:Int.equal a b in
    let ctx fmt =
      Printf.ksprintf
        (fun m ->
          Alcotest.failf "iter %d: %s\n  a = %s\n  b = %s" i m (show_tree a)
            (show_tree b))
        fmt
    in
    let lb = Ted.lower_bound_int a b and bb = Ted.branch_bound_int a b in
    let pq = Ted.pqgram_bound_int a b in
    if lb > d then ctx "lower_bound_int %d > distance %d" lb d;
    if bb > d then ctx "branch_bound_int %d > distance %d" bb d;
    if pq > d then ctx "pqgram_bound_int %d > distance %d" pq d;
    if lb < bb then ctx "lower_bound_int %d below branch component %d" lb bb;
    if lb < pq then ctx "lower_bound_int %d below pq-gram component %d" lb pq;
    let sz = abs (Tree.size a - Tree.size b) in
    if lb < sz then ctx "lower_bound_int %d below size delta %d" lb sz;
    let fa = Flat.of_tree a and fb = Flat.of_tree b in
    let flb = Flat.lower_bound fa fb and fbb = Flat.branch_bound fa fb in
    let fpq = Flat.pqgram_bound fa fb in
    if flb > d then ctx "Flat.lower_bound %d > distance %d" flb d;
    if fbb > d then ctx "Flat.branch_bound %d > distance %d" fbb d;
    if fpq > d then ctx "Flat.pqgram_bound %d > distance %d" fpq d;
    if fpq <> pq then
      ctx "Flat.pqgram_bound %d <> pqgram_bound_int %d" fpq pq;
    if flb < fpq then ctx "Flat.lower_bound %d below pq-gram component %d" flb fpq;
    (* the bounded kernel (branch-profile stage included) must agree with
       the unbounded one on both sides of the cutoff *)
    List.iter
      (fun cutoff ->
        match Flat.distance_bounded ~cutoff fa fb with
        | Some bd when bd <> d -> ctx "bounded %d <> distance %d" bd d
        | Some bd when bd > cutoff -> ctx "bounded %d over cutoff %d" bd cutoff
        | None when d <= cutoff ->
            ctx "bounded None but distance %d <= cutoff %d" d cutoff
        | _ -> ())
      [ d - 1; d; d + 2; 0 ]
  done

let test_branch_bound_identical () =
  (* equal trees: every bound must be 0 *)
  let rng = Prng.create 0xb0 in
  for _ = 1 to 50 do
    let a = gen_tree_sized rng (1 + Prng.int rng 12) in
    checki "branch_bound_int self" 0 (Ted.branch_bound_int a a);
    checki "pqgram_bound_int self" 0 (Ted.pqgram_bound_int a a);
    checki "lower_bound_int self" 0 (Ted.lower_bound_int a a);
    let fa = Flat.of_tree a in
    checki "Flat.branch_bound self" 0 (Flat.branch_bound fa fa);
    checki "Flat.pqgram_bound self" 0 (Flat.pqgram_bound fa fa)
  done

(* --- pivot scheduler -------------------------------------------------- *)

let make_points rng n max_nodes =
  Array.init n (fun _ -> gen_tree_sized rng (1 + Prng.int rng max_nodes))

let oracle_of points =
  let flats = Array.map Flat.of_tree points in
  {
    Pivots.n = Array.length points;
    size = (fun i -> Flat.size flats.(i));
    lower = (fun i j -> Flat.lower_bound flats.(i) flats.(j));
    dist = (fun i j -> Flat.distance flats.(i) flats.(j));
    dist_bounded =
      (fun i j ~cutoff -> Flat.distance_bounded ~cutoff flats.(i) flats.(j));
  }

let test_pivots_exact () =
  let rng = Prng.create 0x9140_0001 in
  let n = 60 in
  let points = make_points rng n 14 in
  let o = oracle_of points in
  List.iter
    (fun pivots ->
      let d, stats = Pivots.schedule ?pivots o in
      checki "pairs" (n * (n - 1) / 2) stats.Pivots.pairs;
      let ledger =
        stats.Pivots.pivot_pairs + stats.Pivots.resolved_interval
        + stats.Pivots.resolved_clamp + stats.Pivots.bounded_pairs
      in
      checki "ledger covers every pair" stats.Pivots.pairs ledger;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let expect = if i = j then 0 else o.Pivots.dist i j in
          if d.(i).(j) <> expect then
            Alcotest.failf "pivots=%s: cell (%d,%d) = %d, brute %d"
              (match pivots with Some k -> string_of_int k | None -> "auto")
              i j d.(i).(j) expect
        done
      done;
      (* interval soundness: the triangle bracket from the returned pivot
         set must contain the exact distance for every pair *)
      Array.iter
        (fun p ->
          for i = 0 to n - 1 do
            for j = i + 1 to n - 1 do
              let dij = d.(i).(j)
              and dip = d.(i).(p)
              and djp = d.(j).(p) in
              if abs (dip - djp) > dij || dij > dip + djp then
                Alcotest.failf
                  "triangle bracket broken at (%d,%d) via pivot %d: |%d-%d| \
                   <= %d <= %d+%d fails"
                  i j p dip djp dij dip djp
            done
          done)
        stats.Pivots.pivots)
    [ None; Some 3 ]

let test_pivots_clamp () =
  let rng = Prng.create 0x9140_0002 in
  let n = 40 in
  let points = make_points rng n 14 in
  let o = oracle_of points in
  let thr = 6 in
  let exact, _ = Pivots.schedule o in
  let d, stats = Pivots.schedule ~clamp:(fun _ _ -> thr) o in
  let clamped = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if d.(i).(j) <> exact.(i).(j) then begin
        incr clamped;
        (* a clamped cell is an admissible lower bound that already
           cleared the threshold — sound for any use that saturates there *)
        checkb "clamped cell is a lower bound" true (d.(i).(j) <= exact.(i).(j));
        checkb "clamped cell cleared the threshold" true (d.(i).(j) >= thr)
      end
    done
  done;
  checkb "clamp ledger consistent" true (!clamped <= stats.Pivots.resolved_clamp)

(* --- VP-tree ---------------------------------------------------------- *)

let test_vptree_vs_brute () =
  let rng = Prng.create 0x7b7_ee5 in
  let n = max 500 prop_iters in
  let points = make_points rng n 10 in
  let flats = Array.map Flat.of_tree points in
  let dist i j = Flat.distance flats.(i) flats.(j) in
  let t = Vptree.build ~dist (Array.init n (fun i -> i)) in
  checki "size" n (Vptree.size t);
  for q = 0 to 49 do
    let query = Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 10)) in
    let dist_bounded id ~cutoff =
      Flat.distance_bounded ~cutoff query flats.(id)
    in
    let brute =
      List.sort compare (List.init n (fun i -> (Flat.distance query flats.(i), i)))
    in
    let k = 7 in
    let knn, knn_evals = Vptree.nearest ~dist_bounded ~k t in
    let brute_k = List.filteri (fun i _ -> i < k) brute in
    if knn <> brute_k then
      Alcotest.failf "query %d: k-NN differs from brute force" q;
    checkb "k-NN evals bounded by n" true (knn_evals <= n);
    let radius = 6 in
    let within, _ = Vptree.range ~dist_bounded ~radius t in
    let brute_r = List.filter (fun (d, _) -> d <= radius) brute in
    if within <> brute_r then
      Alcotest.failf "query %d: range differs from brute force" q
  done

(* Phase 2: incremental insert must leave every query exactly equal to a
   fresh build over the same id set (both are exact, so equal to brute
   force — the stronger check is that evals stay sane and the structure
   keeps its invariants through the scapegoat rebuilds). *)
let test_vptree_insert_equals_fresh () =
  let rng = Prng.create 0x15e7 in
  let n = max 300 (prop_iters / 2) in
  let points = make_points rng n 10 in
  let flats = Array.map Flat.of_tree points in
  let dist i j = Flat.distance flats.(i) flats.(j) in
  (* grow from a small seed one insert at a time *)
  let seed = 5 in
  let t = Vptree.build ~dist (Array.init seed (fun i -> i)) in
  for id = seed to n - 1 do
    Vptree.insert ~dist t id
  done;
  checki "size after inserts" n (Vptree.size t);
  checkb "inserts triggered rebuilds" true (Vptree.rebuilds t > 0);
  let fresh = Vptree.build ~dist (Array.init n (fun i -> i)) in
  for q = 0 to 29 do
    let query = Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 10)) in
    let dist_bounded id ~cutoff =
      Flat.distance_bounded ~cutoff query flats.(id)
    in
    let k = 5 in
    let grown, grown_evals = Vptree.nearest ~dist_bounded ~k t in
    let built, _ = Vptree.nearest ~dist_bounded ~k fresh in
    if grown <> built then
      Alcotest.failf "query %d: grown index k-NN differs from fresh build" q;
    checkb "grown k-NN evals bounded by n" true (grown_evals <= n);
    let radius = 5 in
    let grown_r, _ = Vptree.range ~dist_bounded ~radius t in
    let built_r, _ = Vptree.range ~dist_bounded ~radius fresh in
    if grown_r <> built_r then
      Alcotest.failf "query %d: grown index range differs from fresh build" q
  done

(* Phase 2: the plain-data representation round-trips to a tree with
   byte-identical query behaviour, and mangled reprs are rejected (or at
   worst decode to a tree — never crash). *)
let test_vptree_repr_roundtrip () =
  let rng = Prng.create 0x4e9a_11 in
  let n = 200 in
  let points = make_points rng n 10 in
  let flats = Array.map Flat.of_tree points in
  let dist i j = Flat.distance flats.(i) flats.(j) in
  let t = Vptree.build ~dist (Array.init (n - 20) (fun i -> i)) in
  (* some inserts so the repr covers count > built nodes too *)
  for id = n - 20 to n - 1 do
    Vptree.insert ~dist t id
  done;
  let repr = Vptree.to_repr t in
  (match Vptree.of_repr repr with
  | None -> Alcotest.fail "of_repr rejected its own to_repr"
  | Some t' ->
      checki "size survives" (Vptree.size t) (Vptree.size t');
      checki "decoded build_evals is zero" 0 (Vptree.build_evals t');
      for q = 0 to 19 do
        let query = Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 10)) in
        let dist_bounded id ~cutoff =
          Flat.distance_bounded ~cutoff query flats.(id)
        in
        let h1, e1 = Vptree.nearest ~dist_bounded ~k:5 t in
        let h2, e2 = Vptree.nearest ~dist_bounded ~k:5 t' in
        if h1 <> h2 || e1 <> e2 then
          Alcotest.failf "query %d: decoded tree differs (hits or evals)" q
      done);
  (* truncations never crash; most are rejected outright *)
  for cut = 0 to min 40 (Array.length repr - 1) do
    ignore (Vptree.of_repr (Array.sub repr 0 cut))
  done;
  checkb "empty repr rejected" true (Vptree.of_repr [||] = None);
  (* bit flips in the header/bookkeeping words never crash *)
  for _ = 1 to 200 do
    let mangled = Array.copy repr in
    let i = Prng.int rng (Array.length mangled) in
    mangled.(i) <- mangled.(i) lxor (1 lsl Prng.int rng 30);
    ignore (Vptree.of_repr mangled)
  done;
  (* duplicate ids are structural corruption and must be rejected *)
  let dup = Vptree.to_repr (Vptree.build ~dist:(fun _ _ -> 1) [| 1; 2; 3 |]) in
  (* leaf of [1;2;3]: words are [n; 0; len; 1; 2; 3] *)
  dup.(4) <- 1;
  checkb "duplicate ids rejected" true (Vptree.of_repr dup = None)

(* Phase 2: the budgeted best-first mode. Unconstrained it must equal
   brute force with an exact ledger; any run whose ledger still claims
   exactness must in fact be brute-force-equal; ε runs must honour the
   per-rank multiplicative guarantee. *)
let test_vptree_budgeted () =
  let rng = Prng.create 0xb4d_6e7 in
  let n = max 400 prop_iters in
  let points = make_points rng n 10 in
  let flats = Array.map Flat.of_tree points in
  let dist i j = Flat.distance flats.(i) flats.(j) in
  let t = Vptree.build ~dist (Array.init n (fun i -> i)) in
  let k = 7 in
  for q = 0 to 29 do
    let query = Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 10)) in
    let dist_bounded id ~cutoff =
      Flat.distance_bounded ~cutoff query flats.(id)
    in
    let brute =
      List.sort compare
        (List.init n (fun i -> (Flat.distance query flats.(i), i)))
    in
    let brute_k = List.filteri (fun i _ -> i < k) brute in
    (* unconstrained: exact, and says so *)
    let hits, ledger = Vptree.nearest_budgeted ~dist_bounded ~k t in
    if hits <> brute_k then
      Alcotest.failf "query %d: unconstrained budgeted k-NN not brute" q;
    checkb "unconstrained ledger exact" true ledger.Vptree.guaranteed_exact;
    let _, exact_evals = Vptree.nearest ~dist_bounded ~k t in
    (* honesty across the budget sweep: exact claim implies brute
       equality, and the unconstrained eval count must be reachable
       (ledger claims exact) once the budget covers it *)
    List.iter
      (fun budget ->
        let hits_b, lb = Vptree.nearest_budgeted ~dist_bounded ~k ~budget t in
        checkb "budget respected" true (lb.Vptree.evals <= max budget 0);
        if lb.Vptree.guaranteed_exact && hits_b <> brute_k then
          Alcotest.failf
            "query %d: budget %d claims exact but differs from brute" q budget;
        if budget >= n && not lb.Vptree.guaranteed_exact then
          Alcotest.failf
            "query %d: budget %d >= n yet ledger claims approximate" q budget)
      [ 0; 1; n / 20; n / 4; exact_evals; n; 10 * n ];
    (* ε guarantee: every returned rank within (1+ε) of the true rank *)
    List.iter
      (fun epsilon ->
        let hits_e, le =
          Vptree.nearest_budgeted ~dist_bounded ~k ~epsilon t
        in
        checki "ε returns k hits" (min k n) (List.length hits_e);
        List.iteri
          (fun i (d, _) ->
            let true_d = fst (List.nth brute i) in
            if float_of_int d > ((1. +. epsilon) *. float_of_int true_d) +. 1e-9
            then
              Alcotest.failf
                "query %d: ε=%.2f rank %d distance %d exceeds (1+ε)·%d" q
                epsilon i d true_d)
          hits_e;
        if le.Vptree.guaranteed_exact && hits_e <> brute_k then
          Alcotest.failf "query %d: ε=%.2f claims exact but differs" q epsilon)
      [ 0.25; 1.0 ]
  done

let test_vptree_degenerate () =
  (* single element, and k larger than the population *)
  let dist _ _ = 0 in
  let t = Vptree.build ~dist [| 3 |] in
  let db _ ~cutoff:_ = Some 0 in
  let hits, _ = Vptree.nearest ~dist_bounded:db ~k:5 t in
  checkb "k > n returns everything" true (hits = [ (0, 3) ]);
  let empty = Vptree.build ~dist [||] in
  let hits, evals = Vptree.nearest ~dist_bounded:db ~k:3 empty in
  checkb "empty index" true (hits = [] && evals = 0)

let () =
  Alcotest.run "sv_metric"
    [
      ( "bounds",
        [
          Alcotest.test_case "admissible vs brute oracle" `Quick
            test_bounds_admissible;
          Alcotest.test_case "zero on identical trees" `Quick
            test_branch_bound_identical;
        ] );
      ( "pivots",
        [
          Alcotest.test_case "schedule equals brute matrix" `Quick
            test_pivots_exact;
          Alcotest.test_case "clamped cells are sound" `Quick test_pivots_clamp;
        ] );
      ( "vptree",
        [
          Alcotest.test_case "k-NN and range equal brute force" `Quick
            test_vptree_vs_brute;
          Alcotest.test_case "insert equals fresh build" `Quick
            test_vptree_insert_equals_fresh;
          Alcotest.test_case "repr round-trip and corruption" `Quick
            test_vptree_repr_roundtrip;
          Alcotest.test_case "budgeted mode honest and bounded" `Quick
            test_vptree_budgeted;
          Alcotest.test_case "degenerate shapes" `Quick test_vptree_degenerate;
        ] );
    ]
