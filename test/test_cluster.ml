(* Tests for Sv_cluster: matrix helpers, agglomerative clustering
   correctness on known inputs, and structural properties (ultrametric
   cophenetic matrices, leaf preservation). *)

module C = Sv_cluster.Cluster

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let sym labels data = { C.labels = Array.of_list labels; data }

(* two tight pairs far apart: (a,b) close, (c,d) close *)
let two_pairs =
  sym [ "a"; "b"; "c"; "d" ]
    [|
      [| 0.0; 1.0; 10.0; 10.0 |];
      [| 1.0; 0.0; 10.0; 10.0 |];
      [| 10.0; 10.0; 0.0; 2.0 |];
      [| 10.0; 10.0; 2.0; 0.0 |];
    |]

let test_of_fn () =
  let m = C.of_fn [| "x"; "y" |] (fun i j -> float_of_int (i + (2 * j))) in
  checkf "cell" 2.0 m.C.data.(0).(1);
  checkf "asymmetric ok" 1.0 m.C.data.(1).(0)

let test_row_euclidean () =
  let m = sym [ "x"; "y" ] [| [| 0.0; 3.0 |]; [| 4.0; 0.0 |] |] in
  let d = C.row_euclidean m in
  checkf "3-4-5 triangle" 5.0 d.C.data.(0).(1);
  checkf "diagonal zero" 0.0 d.C.data.(0).(0);
  checkf "symmetric" d.C.data.(0).(1) d.C.data.(1).(0)

(* byte-level rendering of a matrix: the symmetric fast paths must be
   indistinguishable from the naive full tabulation, not merely close *)
let render (m : C.matrix) =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
          m.C.data))

let test_of_fn_symmetric_identical () =
  let labels = Array.init 9 string_of_int in
  let f i j =
    (* symmetric, irrational-ish values so mirroring bugs can't hide *)
    sqrt (float_of_int (((i + 1) * (j + 1)) + ((i - j) * (i - j))))
  in
  let full = C.of_fn labels f in
  let half = C.of_fn ~symmetric:true labels f in
  Alcotest.(check string) "byte-identical" (render full) (render half)

let test_of_fn_symmetric_eval_count () =
  let n = 10 in
  let calls = ref 0 in
  let f i j =
    incr calls;
    float_of_int (i * j)
  in
  let (_ : C.matrix) = C.of_fn ~symmetric:true (Array.init n string_of_int) f in
  checki "one call per unordered pair" (n * (n + 1) / 2) !calls;
  calls := 0;
  let (_ : C.matrix) = C.of_fn (Array.init n string_of_int) f in
  checki "asymmetric still tabulates everything" (n * n) !calls

(* of_fn_ctx: the context is built exactly once per matrix, and the
   resulting matrices — symmetric and not — are byte-identical to of_fn
   over the same cell function. *)
let test_of_fn_ctx_identical () =
  let labels = Array.init 9 string_of_int in
  let f i j = sqrt (float_of_int (((i + 1) * (j + 1)) + ((i - j) * (i - j)))) in
  let inits = ref 0 in
  let init () =
    incr inits;
    Buffer.create 16 (* stands in for a scratch buffer *)
  in
  let fc buf i j =
    Buffer.clear buf;
    f i j
  in
  let want = render (C.of_fn labels f) in
  Alcotest.(check string) "byte-identical"
    want
    (render (C.of_fn_ctx ~init ~f:fc labels));
  checki "init called once" 1 !inits;
  Alcotest.(check string) "byte-identical symmetric"
    want
    (render (C.of_fn_ctx ~symmetric:true ~init ~f:fc labels));
  checki "init called once per matrix" 2 !inits

let test_of_fn_ctx_shared_state () =
  (* a context that accumulates across cells observes every evaluation in
     of_fn's documented order — row-major upper triangle when symmetric *)
  let order = ref [] in
  let (_ : C.matrix) =
    C.of_fn_ctx ~symmetric:true
      ~init:(fun () -> order)
      ~f:(fun o i j ->
        o := (i, j) :: !o;
        0.0)
      (Array.init 3 string_of_int)
  in
  Alcotest.(check (list (pair int int)))
    "evaluation order matches of_fn"
    [ (0, 0); (0, 1); (0, 2); (1, 1); (1, 2); (2, 2) ]
    (List.rev !order)

let test_row_euclidean_triangle_identical () =
  (* differential test against the naive all-pairs definition *)
  let rng = Random.State.make [| 0x5eed |] in
  for _ = 1 to 20 do
    let n = 1 + Random.State.int rng 8 in
    let m =
      {
        C.labels = Array.init n string_of_int;
        data =
          Array.init n (fun _ ->
              Array.init n (fun _ -> Random.State.float rng 100.0));
      }
    in
    let dist i j =
      let s = ref 0.0 in
      for k = 0 to n - 1 do
        let d = m.C.data.(i).(k) -. m.C.data.(j).(k) in
        s := !s +. (d *. d)
      done;
      sqrt !s
    in
    let naive =
      {
        C.labels = m.C.labels;
        data = Array.init n (fun i -> Array.init n (fun j -> dist i j));
      }
    in
    Alcotest.(check string)
      "byte-identical to naive all-pairs" (render naive)
      (render (C.row_euclidean m))
  done

let test_cluster_pairs_first () =
  let d = C.cluster C.Complete two_pairs in
  match d with
  | C.Merge (left, right, h) ->
      let set t = List.sort compare (C.leaves t) in
      checkb "pairs formed" true
        ((set left = [ 0; 1 ] && set right = [ 2; 3 ])
        || (set left = [ 2; 3 ] && set right = [ 0; 1 ]));
      checkf "final height is the complete-linkage max" 10.0 h
  | C.Leaf _ -> Alcotest.fail "expected a merge"

let test_linkage_heights_differ () =
  (* chain 0-1-2 with d(0,1)=1, d(1,2)=1, d(0,2)=4 *)
  let m =
    sym [ "a"; "b"; "c" ]
      [| [| 0.0; 1.0; 4.0 |]; [| 1.0; 0.0; 1.0 |]; [| 4.0; 1.0; 0.0 |] |]
  in
  let top = function C.Merge (_, _, h) -> h | C.Leaf _ -> 0.0 in
  checkf "single joins at 1" 1.0 (top (C.cluster C.Single m));
  checkf "complete joins at 4" 4.0 (top (C.cluster C.Complete m));
  checkf "average between" 2.5 (top (C.cluster C.Average m))

let test_leaves_complete () =
  let d = C.cluster C.Complete two_pairs in
  Alcotest.(check (list int)) "all leaves once" [ 0; 1; 2; 3 ]
    (List.sort compare (C.leaves d))

let test_singleton () =
  let m = sym [ "only" ] [| [| 0.0 |] |] in
  checkb "single leaf" true (C.cluster C.Complete m = C.Leaf 0)

let test_empty_rejected () =
  let m = sym [] [||] in
  checkb "rejects empty" true
    (match C.cluster C.Complete m with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_cut () =
  let d = C.cluster C.Complete two_pairs in
  let clusters = C.cut d 5.0 in
  checki "two clusters at h=5" 2 (List.length clusters);
  let all = List.sort compare (List.concat clusters) in
  Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3 ] all;
  checki "one cluster above the top" 1 (List.length (C.cut d 100.0));
  checki "four clusters below all merges" 4 (List.length (C.cut d 0.5))

let test_merge_heights_sorted () =
  let hs = C.merge_heights (C.cluster C.Complete two_pairs) in
  checkb "ascending" true (hs = List.sort compare hs);
  checki "n-1 merges" 3 (List.length hs)

let test_cophenetic_known () =
  let d = C.cluster C.Complete two_pairs in
  let coph = C.cophenetic d 4 in
  checkf "pair height" 1.0 coph.(0).(1);
  checkf "cross-pair height" 10.0 coph.(0).(2);
  checkf "symmetric" coph.(2).(0) coph.(0).(2)

(* random symmetric distance matrix *)
let gen_matrix =
  QCheck.Gen.(
    int_range 2 8 >>= fun n ->
    list_size (return (n * n)) (float_bound_inclusive 100.0) >|= fun vals ->
    let a = Array.of_list vals in
    let data =
      Array.init n (fun i ->
          Array.init n (fun j ->
              if i = j then 0.0
              else
                let lo = min i j and hi = max i j in
                1.0 +. a.((lo * n) + hi)))
    in
    { C.labels = Array.init n (fun i -> string_of_int i); data })

let arb_matrix = QCheck.make gen_matrix

let prop_cophenetic_ultrametric =
  QCheck.Test.make ~name:"cophenetic matrix is ultrametric" ~count:200 arb_matrix
    (fun m ->
      let n = Array.length m.C.labels in
      let coph = C.cophenetic (C.cluster C.Complete m) n in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            if coph.(i).(j) > Float.max coph.(i).(k) coph.(k).(j) +. 1e-9 then ok := false
          done
        done
      done;
      !ok)

let prop_leaves_partition =
  QCheck.Test.make ~name:"dendrogram leaves are a permutation" ~count:200 arb_matrix
    (fun m ->
      let n = Array.length m.C.labels in
      List.sort compare (C.leaves (C.cluster C.Complete m)) = List.init n Fun.id)

let prop_single_le_complete =
  QCheck.Test.make ~name:"single-linkage top height <= complete" ~count:200 arb_matrix
    (fun m ->
      let top l =
        match C.cluster l m with C.Merge (_, _, h) -> h | C.Leaf _ -> 0.0
      in
      top C.Single <= top C.Complete +. 1e-9)

let () =
  Alcotest.run "cluster"
    [
      ( "examples",
        [
          Alcotest.test_case "of_fn" `Quick test_of_fn;
          Alcotest.test_case "row euclidean" `Quick test_row_euclidean;
          Alcotest.test_case "of_fn symmetric identical" `Quick
            test_of_fn_symmetric_identical;
          Alcotest.test_case "of_fn symmetric eval count" `Quick
            test_of_fn_symmetric_eval_count;
          Alcotest.test_case "of_fn_ctx byte-identical, init once" `Quick
            test_of_fn_ctx_identical;
          Alcotest.test_case "of_fn_ctx evaluation order" `Quick
            test_of_fn_ctx_shared_state;
          Alcotest.test_case "row euclidean vs naive" `Quick
            test_row_euclidean_triangle_identical;
          Alcotest.test_case "pairs cluster first" `Quick test_cluster_pairs_first;
          Alcotest.test_case "linkage heights" `Quick test_linkage_heights_differ;
          Alcotest.test_case "leaves" `Quick test_leaves_complete;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "cut" `Quick test_cut;
          Alcotest.test_case "merge heights" `Quick test_merge_heights_sorted;
          Alcotest.test_case "cophenetic" `Quick test_cophenetic_known;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_cophenetic_ultrametric; prop_leaves_partition; prop_single_le_complete ] );
    ]
