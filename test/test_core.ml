(* Tests for Sv_core: pipeline invariants and — most importantly — the
   paper's qualitative findings, which the reproduction must exhibit
   (DESIGN.md lists them). BabelStream is used where possible (smallest
   trees); TeaLeaf backs the migration findings. *)

module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Migration = Sv_core.Migration
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* index lazily and once; the Tbmd cache makes repeat comparisons cheap *)
let stream = lazy (List.map Pipeline.index (Sv_corpus.Babelstream.all ()))
let tea = lazy (List.map Pipeline.index (Sv_corpus.Tealeaf.all ()))
let stream_f = lazy (List.map Pipeline.index (Sv_corpus.Babelstream_f.all ()))

let find ixs id = List.find (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = id) (Lazy.force ixs)

(* --- pipeline invariants --- *)

let test_index_populates_everything () =
  List.iter
    (fun (ix : Pipeline.indexed) ->
      checki (ix.ix_model ^ " one unit") 1 (List.length ix.ix_units);
      let u = List.hd ix.ix_units in
      checkb "t_src nonempty" true (Tree.size u.Pipeline.u_t_src > 50);
      checkb "t_sem nonempty" true (Tree.size u.Pipeline.u_t_sem > 50);
      checkb "t_ir nonempty" true (Tree.size u.Pipeline.u_t_ir > 50);
      checkb "sloc positive" true (u.Pipeline.u_sloc > 0);
      checkb "lloc positive" true (u.Pipeline.u_lloc > 0);
      checkb "lloc below sloc+pragmas bound" true (u.Pipeline.u_lloc < 4 * u.Pipeline.u_sloc);
      checkb "verification ran and passed" true
        (match ix.ix_verification with Some v -> v.Pipeline.v_ok | None -> false);
      checkb "coverage recorded" true (ix.ix_coverage <> None))
    (Lazy.force stream)

let test_system_headers_masked () =
  List.iter
    (fun (ix : Pipeline.indexed) ->
      let u = List.hd ix.ix_units in
      List.iter
        (fun tree ->
          checkb (ix.ix_model ^ " no system-header nodes") false
            (Tree.exists
               (fun (l : Label.t) ->
                 List.mem l.Label.loc.Sv_util.Loc.file
                   [ "stdio.h"; "stdlib.h"; "math.h" ])
               tree))
        [ u.Pipeline.u_t_src_pp; u.Pipeline.u_t_sem; u.Pipeline.u_t_ir ])
    (Lazy.force stream)

let test_deps_include_shims () =
  let sycl = find stream "sycl-usm" in
  let u = List.hd sycl.Pipeline.ix_units in
  checkb "sycl.h a dep" true (List.mem "sycl.h" u.Pipeline.u_deps);
  checkb "system headers are deps too" true (List.mem "stdio.h" u.Pipeline.u_deps)

let test_coverage_masking_shrinks () =
  (* shim helper functions never execute, so masked trees are smaller for
     library models *)
  let kokkos = find stream "kokkos" in
  let u = List.hd kokkos.Pipeline.ix_units in
  let base = Pipeline.unit_tree ~metric:`TSem ~coverage:false kokkos u in
  let masked = Pipeline.unit_tree ~metric:`TSem ~coverage:true kokkos u in
  checkb "masked smaller" true (Tree.size masked < Tree.size base)

let test_index_without_run () =
  let cb = List.nth (Sv_corpus.Babelstream.all ()) 0 in
  let ix = Pipeline.index ~run:false cb in
  checkb "no verification" true (ix.Pipeline.ix_verification = None);
  checkb "no coverage" true (ix.Pipeline.ix_coverage = None)

(* --- metric basics over indexed codebases --- *)

let all_metric_variants =
  [
    (Tbmd.SLOC, Tbmd.Base); (Tbmd.SLOC, Tbmd.PP); (Tbmd.LLOC, Tbmd.Base);
    (Tbmd.Source, Tbmd.Base); (Tbmd.Source, Tbmd.PP); (Tbmd.TSrc, Tbmd.Base);
    (Tbmd.TSrc, Tbmd.PP); (Tbmd.TSrc, Tbmd.Cov); (Tbmd.TSem, Tbmd.Base);
    (Tbmd.TSem, Tbmd.Cov); (Tbmd.TSemI, Tbmd.Base); (Tbmd.TIr, Tbmd.Base);
  ]

let test_self_divergence_zero () =
  let serial = find stream "serial" in
  List.iter
    (fun (m, v) ->
      checkf
        (Tbmd.metric_label m ^ Tbmd.variant_label v ^ " self = 0")
        0.0
        (Tbmd.divergence ~variant:v m serial serial))
    all_metric_variants

let test_divergence_in_unit_interval () =
  let serial = find stream "serial" in
  List.iter
    (fun (ix : Pipeline.indexed) ->
      List.iter
        (fun (m, v) ->
          let d = Tbmd.divergence ~variant:v m serial ix in
          checkb "in [0,1]" true (d >= 0.0 && d <= 1.0))
        all_metric_variants)
    (Lazy.force stream)

let test_raw_distance_symmetric () =
  let a = find stream "omp" and b = find stream "kokkos" in
  List.iter
    (fun m ->
      let d1, _ = Tbmd.raw_divergence m a b in
      let d2, _ = Tbmd.raw_divergence m b a in
      checki (Tbmd.metric_label m ^ " symmetric raw") d1 d2)
    [ Tbmd.SLOC; Tbmd.Source; Tbmd.TSem ]

let test_cross_language_rejected () =
  let c = find stream "serial" and f = find stream_f "sequential" in
  checkb "raises" true
    (match Tbmd.divergence Tbmd.TSem c f with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_absolute_metrics () =
  let serial = find stream "serial" in
  (match Tbmd.absolute Tbmd.SLOC serial with
  | Some v -> checkb "sloc total positive" true (v > 0)
  | None -> Alcotest.fail "SLOC is absolute");
  checkb "tree metric not absolute" true (Tbmd.absolute Tbmd.TSem serial = None)

let test_metric_parsing () =
  checkb "sloc" true (Tbmd.metric_of_string "SLOC" = Some Tbmd.SLOC);
  checkb "t_sem+i" true (Tbmd.metric_of_string "t_sem+i" = Some Tbmd.TSemI);
  checkb "unknown" true (Tbmd.metric_of_string "bogus" = None)

let test_matrix_shape () =
  let ixs = [ find stream "serial"; find stream "omp"; find stream "tbb" ] in
  let m = Tbmd.matrix Tbmd.TSem ixs in
  checki "3x3" 3 (Array.length m.Sv_cluster.Cluster.labels);
  checkf "diagonal zero" 0.0 m.Sv_cluster.Cluster.data.(1).(1);
  checkb "off-diagonal positive" true (m.Sv_cluster.Cluster.data.(0).(2) > 0.0)

(* the flat TED kernel is an implementation detail: every tree metric,
   over the real corpus, must be byte-for-byte the Zhang–Shasha answer *)
let test_ted_algo_byte_identity () =
  let ixs =
    [ find stream "serial"; find stream "omp"; find stream "cuda";
      find stream "kokkos" ]
  in
  let render (m : Sv_cluster.Cluster.matrix) =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun row ->
              String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
            m.Sv_cluster.Cluster.data))
  in
  let run algo =
    Sv_metrics.Divergence.set_ted_algo algo;
    Tbmd.clear_memo ();
    Fun.protect
      ~finally:(fun () -> Sv_metrics.Divergence.set_ted_algo `Flat)
      (fun () ->
        String.concat "\n--\n"
          (List.map
             (fun m -> render (Tbmd.matrix m ixs))
             [ Tbmd.TSrc; Tbmd.TSem; Tbmd.TSemI; Tbmd.TIr ]))
  in
  Alcotest.(check string) "flat matrices byte-identical to zs" (run `Zs)
    (run `Flat)

(* --- the paper's findings --- *)

let d ?variant m a b = Tbmd.divergence ?variant m a b

(* finding 2: OpenMP's semantic divergence exceeds its perceived one *)
let test_finding_omp_hidden_semantics () =
  let serial = find stream "serial" and omp = find stream "omp" in
  let t_sem = d Tbmd.TSem serial omp and t_src = d Tbmd.TSrc serial omp in
  checkb
    (Printf.sprintf "T_sem (%.3f) > T_src (%.3f) for OpenMP" t_sem t_src)
    true (t_sem > t_src)

(* finding: CUDA and HIP are nearly identical at T_sem *)
let test_finding_cuda_hip_twins () =
  let cuda = find stream "cuda" and hip = find stream "hip" in
  let between = d Tbmd.TSem cuda hip in
  let to_serial = d Tbmd.TSem (find stream "serial") cuda in
  checkb
    (Printf.sprintf "d(cuda,hip)=%.3f well below d(serial,cuda)=%.3f" between to_serial)
    true
    (between < 0.25 *. to_serial)

(* finding: the SYCL variants sit together *)
let test_finding_sycl_variants_cluster () =
  let usm = find stream "sycl-usm" and acc = find stream "sycl-acc" in
  let between = d Tbmd.TSem usm acc in
  let usm_to_serial = d Tbmd.TSem (find stream "serial") usm in
  checkb "variants closer than serial" true (between < usm_to_serial)

(* finding: serial sits near OpenMP (minimal-change design philosophy) *)
let test_finding_serial_near_omp () =
  let serial = find stream "serial" in
  let d_omp = d Tbmd.TSem serial (find stream "omp") in
  List.iter
    (fun other ->
      checkb
        (Printf.sprintf "omp (%.3f) closer to serial than %s" d_omp other)
        true
        (d_omp < d Tbmd.TSem serial (find stream other)))
    [ "cuda"; "hip"; "sycl-usm"; "sycl-acc"; "kokkos"; "tbb"; "stdpar" ]

(* finding 3: T_sem+i jumps for library models, not for compiler models *)
let test_finding_inlining_jump () =
  let serial = find stream "serial" in
  let jump id =
    let ix = find stream id in
    d Tbmd.TSemI serial ix -. d Tbmd.TSem serial ix
  in
  List.iter
    (fun lib ->
      checkb
        (Printf.sprintf "%s inlining jump (%.3f) exceeds omp (%.3f)" lib (jump lib)
           (jump "omp"))
        true
        (jump lib > jump "omp" +. 0.01))
    [ "kokkos"; "stdpar" ];
  checkb "cuda barely moves" true (Float.abs (jump "cuda") < 0.05);
  checkb "omp barely moves" true (Float.abs (jump "omp") < 0.05)

(* finding 4: offload models carry extra T_ir driver structure *)
let test_finding_ir_driver_inflation () =
  let serial = find stream "serial" in
  let dir id = d Tbmd.TIr serial (find stream id) in
  checkb "cuda T_ir above host omp" true (dir "cuda" > dir "omp");
  checkb "omp-target T_ir above host omp" true (dir "omp-target" > dir "omp")

(* finding 5: migration from CUDA costs more than from serial *)
let test_finding_migration_asymmetry () =
  let serial = find tea "serial" and cuda = find tea "cuda" in
  let targets = [ "omp-target"; "sycl-usm"; "sycl-acc"; "kokkos" ] in
  let worse =
    List.filter
      (fun id ->
        let t = find tea id in
        d Tbmd.TSem cuda t > d Tbmd.TSem serial t)
      targets
  in
  checkb
    (Printf.sprintf "CUDA-origin port costs more for %d/%d offload targets"
       (List.length worse) (List.length targets))
    true
    (List.length worse >= 3)

(* finding 5b: OpenMP target is the cheapest offload port from serial *)
let test_finding_omp_target_cheapest () =
  let serial = find tea "serial" in
  let targets =
    List.map (fun id -> find tea id)
      [ "omp-target"; "cuda"; "hip"; "sycl-usm"; "sycl-acc"; "kokkos" ]
  in
  let rows =
    Migration.divergence_from ~base:serial ~targets
      ~metrics:[ (Tbmd.TSem, Tbmd.Base) ]
  in
  match Migration.cheapest ~metric:Tbmd.TSem rows with
  | Some (name, _) -> Alcotest.(check string) "cheapest" "OpenMP target" name
  | None -> Alcotest.fail "no cheapest target"

(* finding 6: Fortran OpenACC introduces no parallel IR structure *)
let test_finding_fortran_acc () =
  let seq = find stream_f "sequential" in
  let d_acc = d Tbmd.TIr seq (find stream_f "acc") in
  let d_omp = d Tbmd.TIr seq (find stream_f "omp") in
  checkb
    (Printf.sprintf "acc T_ir (%.3f) below omp T_ir (%.3f)" d_acc d_omp)
    true (d_acc < d_omp)

let test_finding_fortran_array_similarity () =
  (* whole-array and acc-array models pair up, like sequential and acc *)
  let arr = find stream_f "array" and acc_arr = find stream_f "acc-array" in
  let between = d Tbmd.TSem arr acc_arr in
  let arr_to_omp = d Tbmd.TSem arr (find stream_f "omp") in
  checkb "array forms cluster" true (between < arr_to_omp)

(* stepping-stone conjecture of §V-D is measurable *)
let test_stepping_stone_api () =
  let serial = find tea "serial" in
  let via = find tea "omp-target" and target = find tea "sycl-usm" in
  let g = Migration.stepping_stone_gain ~base:serial ~via ~target ~metric:Tbmd.TSem in
  checkb "finite gain value" true (Float.is_finite g)

(* --- the indexing engine --- *)

module Index_engine = Sv_core.Index_engine
module Index_cache = Sv_db.Index_cache

(* Everything observable about an indexed codebase: the portable artifact
   bytes (trees, counts, lines, coverage-masked variants) plus the
   verdict and the coverage dump, which the artifact does not carry. *)
let ix_fingerprint (ix : Pipeline.indexed) =
  ( Sv_db.Codebase_db.save (Pipeline.to_db ix),
    ix.Pipeline.ix_verification,
    Option.map Sv_util.Coverage.dump ix.Pipeline.ix_coverage )

let engine_corpus () =
  (* mixed-language batch: MiniC codebases exercise both parallel grains,
     the MiniF one the serial fallback of the unit-grain path *)
  let c = Sv_corpus.Babelstream.all () in
  [ List.nth c 0; List.nth c 1; List.nth c 2;
    List.hd (Sv_corpus.Babelstream_f.all ()) ]

let with_cache cache f =
  Index_engine.set_cache cache;
  Fun.protect ~finally:(fun () -> Index_engine.set_cache None) f

let check_identical name reference ixs =
  List.iter2
    (fun (a : Pipeline.indexed) (b : Pipeline.indexed) ->
      checkb
        (Printf.sprintf "%s: %s byte-identical" name b.Pipeline.ix_model)
        true
        (ix_fingerprint a = ix_fingerprint b))
    reference ixs

let test_engine_parallel_model_grain () =
  let cbs = engine_corpus () in
  let reference = List.map Pipeline.index cbs in
  (* chunk:1 with jobs:2 over 4 misses takes the whole-codebase branch *)
  check_identical "model grain" reference
    (Index_engine.index_many ~jobs:2 ~chunk:1 cbs)

let test_engine_parallel_unit_grain () =
  let cbs = engine_corpus () in
  let reference = List.map Pipeline.index cbs in
  (* more workers than misses takes the per-unit branch *)
  check_identical "unit grain" reference
    (Index_engine.index_many ~jobs:8 cbs)

let test_engine_warm_cache () =
  let cbs = engine_corpus () in
  let reference = List.map Pipeline.index cbs in
  let cache = Index_cache.create () in
  with_cache (Some cache) (fun () ->
      check_identical "cold" reference (Index_engine.index_many ~jobs:1 cbs);
      checki "all misses recorded" (List.length cbs) (Index_cache.size cache);
      let hits_before = Index_cache.hits cache in
      check_identical "warm" reference (Index_engine.index_many ~jobs:1 cbs);
      checki "all hits" (hits_before + List.length cbs) (Index_cache.hits cache));
  (* the persisted cache serves an identical warm run in a fresh table *)
  let reloaded =
    match Index_cache.load (Index_cache.save cache) with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  with_cache (Some reloaded) (fun () ->
      check_identical "warm from disk" reference
        (Index_engine.index_many ~jobs:1 cbs);
      checki "no recompute" (List.length cbs) (Index_cache.hits reloaded))

let test_engine_key_invalidation () =
  let cb = List.hd (Sv_corpus.Babelstream.all ()) in
  let k = Index_engine.codebase_key ~run:true cb in
  let change name cb' =
    checkb (name ^ " changes the key") true
      (Index_engine.codebase_key ~run:true cb' <> k)
  in
  change "editing a source file"
    { cb with
      Sv_corpus.Emit.files =
        (match cb.Sv_corpus.Emit.files with
        | (f, src) :: rest -> (f, src ^ "\n") :: rest
        | [] -> assert false) };
  change "adding a define"
    { cb with Sv_corpus.Emit.defines = ("EXTRA", "1") :: cb.Sv_corpus.Emit.defines };
  change "switching dialect" { cb with Sv_corpus.Emit.lang = `F };
  checkb "disabling the run changes the key" true
    (Index_engine.codebase_key ~run:false cb <> k);
  checkb "same codebase, same key" true
    (Index_engine.codebase_key ~run:true cb = k)

let test_engine_corrupt_payload_recomputes () =
  (* an undecodable payload under the right key is treated as a miss and
     silently recomputed, never an error *)
  let cb = List.hd (Sv_corpus.Babelstream.all ()) in
  let reference = Pipeline.index cb in
  let cache = Index_cache.create () in
  Index_cache.add cache (Index_engine.codebase_key ~run:true cb) "garbage";
  with_cache (Some cache) (fun () ->
      checkb "recomputed identically" true
        (ix_fingerprint (Index_engine.index ~jobs:1 cb) = ix_fingerprint reference))

(* --- dendrogram integration --- *)

let test_dendrogram_runs () =
  let ixs = [ find stream "serial"; find stream "omp"; find stream "cuda"; find stream "hip" ] in
  let m, dendro = Tbmd.dendrogram Tbmd.TSem ixs in
  checki "labels" 4 (Array.length m.Sv_cluster.Cluster.labels);
  (* CUDA and HIP must merge before either joins anything else *)
  let rec find_pair = function
    | Sv_cluster.Cluster.Leaf _ -> None
    | Sv_cluster.Cluster.Merge (a, b, _) -> (
        match
          ( List.sort compare (Sv_cluster.Cluster.leaves a),
            List.sort compare (Sv_cluster.Cluster.leaves b) )
        with
        | [ 2 ], [ 3 ] | [ 3 ], [ 2 ] -> Some true
        | _ -> (
            match find_pair a with Some r -> Some r | None -> find_pair b))
  in
  checkb "cuda+hip merge directly" true (find_pair dendro = Some true)

let test_navigation_points () =
  let serial = find stream "serial" in
  let others =
    List.filter (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model <> "serial")
      (Lazy.force stream)
  in
  let pts =
    Sv_core.Navigation.points ~app:Sv_perf.Pmodel.babelstream ~serial ~codebases:others
      ~platforms:Sv_perf.Platform.all
  in
  checki "nine points" 9 (List.length pts);
  List.iter
    (fun (p : Sv_core.Navigation.point) ->
      checkb "phi in range" true (p.Sv_core.Navigation.phi >= 0.0 && p.phi <= 1.0);
      checkb "divergences in range" true
        (p.div_t_sem >= 0.0 && p.div_t_sem <= 1.0 && p.div_t_src >= 0.0
        && p.div_t_src <= 1.0))
    pts;
  let kokkos = List.find (fun (p : Sv_core.Navigation.point) -> p.model_id = "kokkos") pts in
  checkb "kokkos is portable" true (kokkos.Sv_core.Navigation.phi > 0.5)

let test_scenario_stages () =
  let serial = find stream "serial" in
  let others =
    List.filter (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model <> "serial")
      (Lazy.force stream)
  in
  let stages =
    Sv_core.Navigation.cuda_scenario ~app:Sv_perf.Pmodel.babelstream ~serial
      ~codebases:others
  in
  checki "three stages" 3 (List.length stages);
  let s1 = List.nth stages 0 and s2 = List.nth stages 1 in
  checkb "stage 1: cuda portable" true (s1.Sv_core.Navigation.phi_cuda > 0.99);
  checkb "stage 2: cuda collapses" true (s2.Sv_core.Navigation.phi_cuda = 0.0);
  checkb "stage 3 nominates an alternative" true
    ((List.nth stages 2).Sv_core.Navigation.best_alternative <> None)

let () =
  Alcotest.run "core"
    [
      ( "pipeline",
        [
          Alcotest.test_case "index populates" `Slow test_index_populates_everything;
          Alcotest.test_case "system headers masked" `Quick test_system_headers_masked;
          Alcotest.test_case "deps include shims" `Quick test_deps_include_shims;
          Alcotest.test_case "coverage mask shrinks" `Quick test_coverage_masking_shrinks;
          Alcotest.test_case "index without run" `Quick test_index_without_run;
        ] );
      ( "tbmd",
        [
          Alcotest.test_case "self divergence zero" `Quick test_self_divergence_zero;
          Alcotest.test_case "unit interval" `Slow test_divergence_in_unit_interval;
          Alcotest.test_case "raw symmetry" `Quick test_raw_distance_symmetric;
          Alcotest.test_case "cross-language rejected" `Quick test_cross_language_rejected;
          Alcotest.test_case "absolute metrics" `Quick test_absolute_metrics;
          Alcotest.test_case "metric parsing" `Quick test_metric_parsing;
          Alcotest.test_case "matrix shape" `Quick test_matrix_shape;
          Alcotest.test_case "ted algo byte identity" `Slow
            test_ted_algo_byte_identity;
        ] );
      ( "paper-findings",
        [
          Alcotest.test_case "omp hidden semantics" `Quick test_finding_omp_hidden_semantics;
          Alcotest.test_case "cuda/hip twins" `Quick test_finding_cuda_hip_twins;
          Alcotest.test_case "sycl variants cluster" `Quick test_finding_sycl_variants_cluster;
          Alcotest.test_case "serial near omp" `Slow test_finding_serial_near_omp;
          Alcotest.test_case "inlining jump" `Quick test_finding_inlining_jump;
          Alcotest.test_case "ir driver inflation" `Quick test_finding_ir_driver_inflation;
          Alcotest.test_case "migration asymmetry" `Slow test_finding_migration_asymmetry;
          Alcotest.test_case "omp-target cheapest" `Slow test_finding_omp_target_cheapest;
          Alcotest.test_case "fortran acc" `Quick test_finding_fortran_acc;
          Alcotest.test_case "fortran array forms" `Quick test_finding_fortran_array_similarity;
          Alcotest.test_case "stepping stone api" `Slow test_stepping_stone_api;
        ] );
      ( "index-engine",
        [
          Alcotest.test_case "parallel model grain identical" `Quick
            test_engine_parallel_model_grain;
          Alcotest.test_case "parallel unit grain identical" `Quick
            test_engine_parallel_unit_grain;
          Alcotest.test_case "warm cache identical" `Quick test_engine_warm_cache;
          Alcotest.test_case "key invalidation" `Quick test_engine_key_invalidation;
          Alcotest.test_case "corrupt payload recomputes" `Quick
            test_engine_corrupt_payload_recomputes;
        ] );
      ( "integration",
        [
          Alcotest.test_case "dendrogram" `Quick test_dendrogram_runs;
          Alcotest.test_case "navigation points" `Slow test_navigation_points;
          Alcotest.test_case "scenario stages" `Quick test_scenario_stages;
        ] );
    ]
