(* Chaos suite for the fault-tolerant pool (Sv_sched): every injected
   failure class — crash, hang, garbage frame, torn frame — alone and
   combined, driven by the deterministic Sv_sched.Sched.Fault layer.

   Two oracles anchor every test. First, results: a faulted batch must
   equal the serial run byte-for-byte, because recovery (respawn, retry,
   in-process degradation) may never change an answer. Second, the fault
   sequence itself: Fault.draw is a pure function of (seed, task,
   attempt), so the pool's recovery counters are compared against an
   exact replay computed without running anything.

   This suite runs under `dune runtest` but is deliberately left out of
   the `@quick` alias (hang injection waits out real timeouts).
   SV_PROP_ITERS=<n> scales the batch to ~n/10 tasks. *)

module Sched = Sv_sched.Sched
module Fault = Sv_sched.Sched.Fault
module M = Sv_msgpack.Msgpack
module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Cluster = Sv_cluster.Cluster
module Ted_cache = Sv_db.Codebase_db.Ted_cache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let chaos_tasks =
  match Sys.getenv_opt "SV_PROP_ITERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> max 32 (n / 10)
      | _ -> 48)
  | None -> 48

let encode_int i = M.Int i
let decode_int = function M.Int i -> i | _ -> failwith "expected Int"

(* --- the fault spec itself --- *)

let test_spec_parse_roundtrip () =
  match Fault.parse "crash:0.05, hang:0.02,garbage:0.03,trunc:0.01,seed:42" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok s ->
      checkb "crash rate" true (s.Fault.crash = 0.05);
      checkb "hang rate" true (s.Fault.hang = 0.02);
      checkb "garbage rate" true (s.Fault.garbage = 0.03);
      checkb "trunc rate" true (s.Fault.trunc = 0.01);
      checki "seed" 42 s.Fault.seed;
      (match Fault.parse (Fault.to_string s) with
      | Ok s' -> checkb "to_string round-trips" true (s = s')
      | Error e -> Alcotest.failf "round-trip parse failed: %s" e)

let test_spec_parse_errors () =
  let bad s = Result.is_error (Fault.parse s) in
  checkb "unknown key" true (bad "explode:0.5");
  checkb "rate above 1" true (bad "crash:1.5");
  checkb "negative rate" true (bad "crash:-0.1");
  checkb "rates sum above 1" true (bad "crash:0.6,hang:0.6");
  checkb "missing colon" true (bad "crash");
  checkb "bad seed" true (bad "seed:many");
  checkb "empty spec is none" true (Fault.parse "" = Ok Fault.none)

let test_draw_deterministic () =
  let spec =
    { Fault.crash = 0.2; hang = 0.2; garbage = 0.2; trunc = 0.2; seed = 7 }
  in
  let all_same = ref true in
  let varies = ref false in
  for t = 0 to 199 do
    let a = Fault.draw spec ~task:t ~attempt:0 in
    if a <> Fault.draw spec ~task:t ~attempt:0 then all_same := false;
    if a <> Fault.draw spec ~task:t ~attempt:1 then varies := true
  done;
  checkb "same (task, attempt) always draws the same action" true !all_same;
  checkb "attempts draw independently" true !varies;
  checkb "none never injects" true
    (Fault.draw Fault.none ~task:3 ~attempt:0 = Fault.Pass)

(* --- the chaos matrix: pool recovery vs the serial oracle --- *)

let policy =
  { Sched.task_timeout = 0.6; max_retries = 2; backoff = 0.01; degrade = true }

(* Replay the exact fault sequence the pool will see and derive the
   counters it must report. *)
let expected spec n =
  let e = Sched.fresh_stats () in
  for t = 0 to n - 1 do
    let rec go attempt =
      match Fault.draw spec ~task:t ~attempt with
      | Fault.Pass -> ()
      | a ->
          (match a with
          | Fault.Crash -> e.Sched.crashes <- e.Sched.crashes + 1
          | Fault.Hang -> e.Sched.timeouts <- e.Sched.timeouts + 1
          | Fault.Garbage | Fault.Trunc -> e.Sched.corrupt <- e.Sched.corrupt + 1
          | Fault.Pass -> ());
          e.Sched.respawns <- e.Sched.respawns + 1;
          if attempt >= policy.Sched.max_retries then
            e.Sched.degraded <- e.Sched.degraded + 1
          else begin
            e.Sched.retries <- e.Sched.retries + 1;
            go (attempt + 1)
          end
    in
    go 0
  done;
  e

let run_chaos spec () =
  let n = chaos_tasks in
  let tasks = Array.init n Fun.id in
  let f i = ((i * 37) mod 101) + (i * i) in
  let serial = Array.map f tasks in
  let stats = Sched.fresh_stats () in
  Fault.set spec;
  let out =
    Fun.protect ~finally:Fault.clear (fun () ->
        Sched.map ~jobs:4 ~policy ~stats ~encode:encode_int ~decode:decode_int
          ~f tasks)
  in
  checkb "chaos result equals the serial oracle" true (out = serial);
  let e = expected spec n in
  checki "crash strikes" e.Sched.crashes stats.Sched.crashes;
  checki "timeout strikes" e.Sched.timeouts stats.Sched.timeouts;
  checki "corrupt strikes" e.Sched.corrupt stats.Sched.corrupt;
  checki "retries" e.Sched.retries stats.Sched.retries;
  checki "respawns (one per strike)" e.Sched.respawns stats.Sched.respawns;
  checki "degraded tasks" e.Sched.degraded stats.Sched.degraded

let crash_only = { Fault.none with Fault.crash = 0.3; seed = 11 }
let hang_only = { Fault.none with Fault.hang = 0.1; seed = 7 }
let garbage_only = { Fault.none with Fault.garbage = 0.3; seed = 23 }
let trunc_only = { Fault.none with Fault.trunc = 0.3; seed = 31 }

let combined =
  { Fault.crash = 0.1; hang = 0.05; garbage = 0.1; trunc = 0.05; seed = 42 }

(* --- the TED engine under injected faults --- *)

(* A slice of the BabelStream corpus: four models give six pairwise
   tasks, enough to exercise retry and degradation while staying fast.
   Hangs are excluded here — they are covered by the pool-level matrix —
   so the engine tests never sit out a multi-second TED timeout. *)
let stream_slice =
  lazy
    (Sv_corpus.Babelstream.all ()
    |> List.filter (fun (cb : Sv_corpus.Emit.codebase) ->
           List.mem cb.Sv_corpus.Emit.model [ "serial"; "omp"; "kokkos"; "cuda" ])
    |> List.map Pipeline.index)

let engine_spec =
  { Fault.crash = 0.2; hang = 0.0; garbage = 0.15; trunc = 0.1; seed = 97 }

let matrix_with ~jobs ~cache ixs =
  Tbmd.clear_memo ();
  Tbmd.set_jobs jobs;
  Tbmd.set_ted_cache cache;
  Fun.protect
    ~finally:(fun () ->
      Tbmd.set_jobs 1;
      Tbmd.set_ted_cache None)
    (fun () -> Tbmd.matrix Tbmd.TSem ixs)

let render (m : Cluster.matrix) =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
          m.Cluster.data))

let test_faulted_matrix_identical () =
  let ixs = Lazy.force stream_slice in
  let serial = matrix_with ~jobs:1 ~cache:None ixs in
  Fault.set engine_spec;
  let faulted =
    Fun.protect ~finally:Fault.clear (fun () ->
        matrix_with ~jobs:3 ~cache:None ixs)
  in
  checkb "labels equal" true (serial.Cluster.labels = faulted.Cluster.labels);
  checkb "float data identical" true (serial.Cluster.data = faulted.Cluster.data);
  Alcotest.(check string) "rendered bytes identical" (render serial) (render faulted)

(* The same oracle over a generated (not hand-written) corpus: grown
   kernels for the fat models carry T_sem trees several times larger
   than the BabelStream slice, so the recovery paths — retry
   re-serialisation, in-process degradation — are exercised on
   non-trivial tree sizes. *)
let gen_slice =
  lazy
    (Option.get (Sv_core.Apps.corpus_of_app "gen:grow:cuda,hip,sycl-acc:29:8")
    |> List.map Pipeline.index)

let test_faulted_matrix_generated () =
  let ixs = Lazy.force gen_slice in
  let serial = matrix_with ~jobs:1 ~cache:None ixs in
  Fault.set { engine_spec with Fault.seed = 13 };
  let faulted =
    Fun.protect ~finally:Fault.clear (fun () ->
        matrix_with ~jobs:3 ~cache:None ixs)
  in
  checkb "labels equal" true (serial.Cluster.labels = faulted.Cluster.labels);
  checkb "float data identical" true (serial.Cluster.data = faulted.Cluster.data);
  Alcotest.(check string) "rendered bytes identical" (render serial) (render faulted)

(* A run that degrades mid-batch must leave the cache either absent or
   valid for every key — never torn. The strongest form: the artifact a
   faulted parallel run persists is byte-identical to a clean serial
   run's, and truncating it anywhere still never yields a torn entry
   (the PR 2 truncation fuzzer, pointed at a chaos-built artifact). *)
let test_cache_under_faults () =
  let ixs = Lazy.force stream_slice in
  let clean = Ted_cache.create () in
  let m_clean = matrix_with ~jobs:1 ~cache:(Some clean) ixs in
  let faulted = Ted_cache.create () in
  Fault.set { engine_spec with Fault.seed = 5 };
  let m_faulted =
    Fun.protect ~finally:Fault.clear (fun () ->
        matrix_with ~jobs:3 ~cache:(Some faulted) ixs)
  in
  checkb "faulted cached matrix identical" true
    (m_clean.Cluster.data = m_faulted.Cluster.data);
  checki "same entry count as the clean run" (Ted_cache.size clean)
    (Ted_cache.size faulted);
  checkb "persisted artifact byte-identical to the clean run's" true
    (Ted_cache.save clean = Ted_cache.save faulted);
  let art = Ted_cache.save faulted in
  let torn = ref 0 in
  for k = 1 to 16 do
    let cut = k * String.length art / 17 in
    match Ted_cache.load (String.sub art 0 cut) with
    | Error _ -> ()
    | Ok _ -> incr torn
  done;
  checki "every truncation of the artifact is rejected" 0 !torn

(* --- the daemon under faults --- *)

(* The service layer on top of the faulted pool: a `sv serve` daemon
   forked with fault injection armed and a parallel worker pool must
   stay byte-identical on the wire to a fault-free serial evaluation —
   the recovery machinery is invisible through one more layer of
   indirection (socket, framing, resident caches). *)
let test_daemon_under_faults () =
  let module Engine = Sv_serve.Engine in
  let module Server = Sv_serve.Server in
  let module Client = Sv_serve.Client in
  let module P = Sv_serve.Protocol in
  let cbs = Option.get (Sv_core.Apps.corpus_of_app "babelstream") in
  let find m = Option.get (Sv_core.Apps.find_codebase ~app:"babelstream" cbs m) in
  (* fault-free serial references, computed in this (parent) process *)
  let bix = Pipeline.index (find "serial") in
  let tix = Pipeline.index (find "kokkos") in
  let expect_compare =
    Engine.render_compare ~app:"babelstream" ~base:"serial" ~target:"kokkos"
      bix tix
  in
  let ixs = List.map Pipeline.index cbs in
  let expect_matrix = Engine.render_matrix Tbmd.TSem ixs in
  let socket = Filename.temp_file "sv_chaos_daemon" ".sock" in
  Sys.remove socket;
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       Sv_perf.Telemetry.reset_serve ();
       Fault.set { engine_spec with Fault.seed = 11 };
       Server.serve ~socket
         (Engine.create
            { (Engine.default_config ()) with Engine.jobs = 3; persist_every = 0 })
     with _ -> ());
    Unix._exit 0
  end;
  let rec wait n =
    match Client.connect ~socket ~timeout_s:120. () with
    | Ok c -> c
    | Error e ->
        if n = 0 then Alcotest.failf "daemon did not come up: %s" e
        else begin
          Unix.sleepf 0.05;
          wait (n - 1)
        end
  in
  let c = wait 200 in
  let output req =
    match Client.call c req with
    | Ok (P.Output { output; _ }) -> output
    | Ok (P.Error { kind; message }) ->
        Alcotest.failf "daemon error %s: %s" (P.kind_to_string kind) message
    | Ok _ -> Alcotest.fail "expected an output reply"
    | Error e -> Alcotest.failf "call failed: %s" e
  in
  let compare_req =
    P.Compare { app = "babelstream"; base = "serial"; target = "kokkos" }
  in
  let matrix_req = P.Matrix { app = "babelstream"; metric = "t_sem" } in
  Alcotest.(check string)
    "faulted daemon compare identical to fault-free serial" expect_compare
    (output compare_req);
  Alcotest.(check string)
    "faulted daemon matrix identical to fault-free serial" expect_matrix
    (output matrix_req);
  Alcotest.(check string)
    "warm faulted rerun still identical" expect_compare (output compare_req);
  (match Client.call c P.Shutdown with
  | Ok P.Shutdown_ack -> ()
  | Ok _ -> Alcotest.fail "expected a shutdown ack"
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  Client.close c;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon exited abnormally"

let () =
  Alcotest.run "chaos"
    [
      ( "fault-spec",
        [
          Alcotest.test_case "parse round-trip" `Quick test_spec_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_spec_parse_errors;
          Alcotest.test_case "draw deterministic" `Quick test_draw_deterministic;
        ] );
      ( "pool-chaos",
        [
          Alcotest.test_case "crash storm" `Slow (run_chaos crash_only);
          Alcotest.test_case "hang storm" `Slow (run_chaos hang_only);
          Alcotest.test_case "garbage storm" `Slow (run_chaos garbage_only);
          Alcotest.test_case "torn frames" `Slow (run_chaos trunc_only);
          Alcotest.test_case "combined" `Slow (run_chaos combined);
        ] );
      ( "engine-chaos",
        [
          Alcotest.test_case "faulted matrix identical" `Slow
            test_faulted_matrix_identical;
          Alcotest.test_case "faulted matrix on a generated corpus" `Slow
            test_faulted_matrix_generated;
          Alcotest.test_case "cache never torn under faults" `Slow
            test_cache_under_faults;
          Alcotest.test_case "daemon under faults" `Slow
            test_daemon_under_faults;
        ] );
    ]
