(* Generator suite: printer re-parse fidelity, corpus determinism,
   semantic preservation, operator coverage and shrinking. *)

module Printer = Sv_gen.Printer
module Ast_map = Sv_gen.Ast_map
module Parser = Sv_lang_c.Parser
module Preproc = Sv_lang_c.Preproc
module Pipeline = Sv_core.Pipeline

let prop_iters default =
  match Sys.getenv_opt "SV_PROP_ITERS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

(* Re-parse printed source the way the pipeline would: through the
   preprocessor (a pass-through here — printed source has no includes)
   and the parser. *)
let reparse ~file src =
  let pp = Preproc.run ~resolve:(fun _ -> None) ~defines:[] ~file src in
  Parser.parse_tokens ~file pp.Preproc.tokens

let c_codebases () =
  List.concat_map
    (fun corpus -> List.filter (fun cb -> cb.Sv_corpus.Emit.lang = `C) corpus)
    [
      Sv_corpus.Babelstream.all ();
      Sv_corpus.Tealeaf.all ();
      Sv_corpus.Cloverleaf.all ();
      Sv_corpus.Minibude.all ();
    ]

(* Tentpole oracle: for every translation unit of every bundled C
   codebase (shim headers spliced in, so templates, CUDA attributes,
   lambdas and directives are all exercised), print → re-parse must
   reproduce the AST modulo locations. *)
let test_printer_roundtrip () =
  let checked = ref 0 in
  List.iter
    (fun cb ->
      let ast = Pipeline.c_unit_ast cb cb.Sv_corpus.Emit.main_file in
      let printed = Printer.tops ast.Sv_lang_c.Ast.t_tops in
      let reparsed = reparse ~file:cb.Sv_corpus.Emit.main_file printed in
      if not (Ast_map.equal_tunit ast reparsed) then
        Alcotest.failf "round-trip mismatch for %s/%s"
          cb.Sv_corpus.Emit.app cb.Sv_corpus.Emit.model;
      (* printing must be a fixpoint: print (reparse (print ast)) is
         byte-identical to print ast *)
      let printed2 = Printer.tops reparsed.Sv_lang_c.Ast.t_tops in
      if printed <> printed2 then
        Alcotest.failf "printer not a fixpoint for %s/%s"
          cb.Sv_corpus.Emit.app cb.Sv_corpus.Emit.model;
      incr checked)
    (c_codebases ());
  Alcotest.(check bool) "checked some codebases" true (!checked > 20)

module Gen = Sv_gen.Gen
module Mutate = Sv_gen.Mutate

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let corpus_bytes cbs =
  String.concat "\x00"
    (List.concat_map
       (fun (cb : Sv_corpus.Emit.codebase) ->
         cb.model :: List.concat_map (fun (f, c) -> [ f; c ]) cb.files)
       cbs)

(* Same seed -> byte-identical corpus, independent generations. A
   different seed must diverge (collision odds are negligible). *)
let test_determinism () =
  let spec = { Gen.seed = 11; count = 6; mode = Gen.Mixed; base = "babelstream" } in
  let a = corpus_bytes (Gen.codebases spec) in
  let b = corpus_bytes (Gen.codebases spec) in
  Alcotest.(check bool) "same seed, same bytes" true (a = b);
  let c = corpus_bytes (Gen.codebases { spec with Gen.seed = 12 }) in
  Alcotest.(check bool) "different seed diverges" true (a <> c)

(* Every emitted variant must pass the pipeline's semantic check: the
   interpreter runs it and the built-in verification succeeds (mutants
   are observation-equivalent to verified seeds; grown programs carry
   their own mirror-computed gold). *)
let check_all_verify spec =
  List.iter
    (fun v ->
      let ix = Sv_core.Pipeline.index v.Gen.v_cb in
      match ix.Sv_core.Pipeline.ix_verification with
      | Some { v_ok = true; _ } -> ()
      | Some { v_output; _ } ->
          Alcotest.failf "variant %s fails verification (ops: %s): %s" v.Gen.v_id
            (String.concat ";" (List.map fst v.Gen.v_ops))
            v_output
      | None -> Alcotest.failf "variant %s was not executed" v.Gen.v_id)
    (Gen.generate spec)

let test_semantic_mutate () =
  let count = max 8 (prop_iters 800 / 100) in
  check_all_verify { Gen.seed = 21; count; mode = Gen.Mutate; base = "babelstream" }

let test_semantic_grow () =
  let count = max 8 (prop_iters 800 / 100) in
  check_all_verify { Gen.seed = 22; count; mode = Gen.Grow; base = "all" }

let test_semantic_fortran () =
  let count = max 4 (prop_iters 800 / 200) in
  check_all_verify { Gen.seed = 23; count; mode = Gen.Mutate; base = "babelstream-f" }

(* Operator coverage: across a decent sample every variant records its
   chain, and several distinct operators must actually fire. *)
let test_op_coverage () =
  let count = max 16 (prop_iters 800 / 40) in
  let spec = { Gen.seed = 31; count; mode = Gen.Mutate; base = "babelstream" } in
  let variants = Gen.generate spec in
  let counts = Gen.op_counts variants in
  let fired = List.length counts in
  if fired < 4 then
    Alcotest.failf "only %d distinct operators fired: %s" fired
      (String.concat ", " (List.map (fun (o, n) -> Printf.sprintf "%s=%d" o n) counts));
  let mutated = List.filter (fun v -> v.Gen.v_ops <> []) variants in
  Alcotest.(check bool)
    "most variants carry a non-empty chain" true
    (List.length mutated * 10 >= List.length variants * 7)

(* The shrinking report replays a variant and prints its seed and
   operator chain — the debugging entry point when a variant fails. *)
let test_shrink_report () =
  let spec = { Gen.seed = 41; count = 2; mode = Gen.Mutate; base = "babelstream" } in
  let report = Gen.diagnose spec 0 in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "report mentions %S" needle)
        true
        (contains ~sub:needle report))
    [ "spec gen:mutate:babelstream:41:2"; "seed codebase"; "attempt 1" ]

let () =
  Alcotest.run "gen"
    [
      ( "printer",
        [ Alcotest.test_case "corpus round-trip" `Quick test_printer_roundtrip ] );
      ( "generator",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "semantic preservation (mutate)" `Slow test_semantic_mutate;
          Alcotest.test_case "semantic preservation (grow)" `Slow test_semantic_grow;
          Alcotest.test_case "semantic preservation (minif)" `Slow test_semantic_fortran;
          Alcotest.test_case "operator coverage" `Slow test_op_coverage;
          Alcotest.test_case "shrink report" `Quick test_shrink_report;
        ] );
    ]
