(* Tests for Sv_sched: pool semantics (ordering, error shipping, serial
   fallback) and the differential guarantee the engine rests on — the
   parallel and cached divergence matrices are identical to the serial
   ones on the BabelStream corpus. *)

module Sched = Sv_sched.Sched
module M = Sv_msgpack.Msgpack
module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Cluster = Sv_cluster.Cluster
module Ted_cache = Sv_db.Codebase_db.Ted_cache

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let encode_int i = M.Int i
let decode_int = function M.Int i -> i | _ -> failwith "expected Int"

(* --- pool semantics --- *)

let test_map_matches_serial () =
  let tasks = Array.init 37 Fun.id in
  let f i = (i * i) + 1 in
  let serial = Array.map f tasks in
  let par =
    Sched.map ~jobs:4 ~encode:encode_int ~decode:decode_int ~f tasks
  in
  checkb "parallel map equals serial map" true (par = serial)

let test_map_order_under_skew () =
  (* earlier tasks are much more expensive, so with dynamic scheduling
     the results arrive out of order — reassembly must still be by index *)
  let tasks = Array.init 16 Fun.id in
  let f i =
    let spin = (16 - i) * 20000 in
    let acc = ref 0 in
    for k = 1 to spin do
      acc := (!acc + k) mod 9973
    done;
    (i * 10) + (!acc * 0)
  in
  let out = Sched.map ~jobs:3 ~encode:encode_int ~decode:decode_int ~f tasks in
  checkb "indices reassembled in order" true (out = Array.map f tasks)

let test_map_serial_fallback () =
  let tasks = [| 1; 2; 3 |] in
  let out = Sched.map ~jobs:1 ~encode:encode_int ~decode:decode_int ~f:succ tasks in
  checkb "jobs=1 runs in-process" true (out = [| 2; 3; 4 |]);
  let single =
    Sched.map ~jobs:8 ~encode:encode_int ~decode:decode_int ~f:succ [| 41 |]
  in
  checkb "single task runs in-process" true (single = [| 42 |])

let test_map_empty () =
  let out = Sched.map ~jobs:4 ~encode:encode_int ~decode:decode_int ~f:succ [||] in
  checki "empty input" 0 (Array.length out)

let contains_sub ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  scan 0

let test_worker_error_propagates () =
  let f i = if i = 5 then failwith "boom on five" else i in
  match
    Sched.map ~jobs:2 ~encode:encode_int ~decode:decode_int ~f (Array.init 9 Fun.id)
  with
  | _ -> Alcotest.fail "expected Worker_failed from a raising worker task"
  | exception Sched.Worker_failed { task; failure = Sched.Task_raised msg; _ } ->
      checki "failure names the task index" 5 task;
      checkb "error message carries the worker failure" true
        (contains_sub ~needle:"boom on five" msg)
  | exception e ->
      Alcotest.failf "expected Task_raised, got %s" (Printexc.to_string e)

(* A child killed by a signal (OOM-killer stand-in) must surface as a
   typed error naming the task index — never a hang on a closed pipe.
   Retries and degradation are disabled so the first strike is final. *)
let test_signal_death_is_typed () =
  let policy =
    { (Sched.default_policy ()) with Sched.max_retries = 0; degrade = false }
  in
  let f i =
    if i = 3 then Unix.kill (Unix.getpid ()) Sys.sigkill;
    i * 2
  in
  match
    Sched.map ~jobs:2 ~policy ~encode:encode_int ~decode:decode_int ~f
      (Array.init 8 Fun.id)
  with
  | _ -> Alcotest.fail "expected Worker_failed from a SIGKILLed worker"
  | exception Sched.Worker_failed { task; attempts; failure = Sched.Crashed detail } ->
      checki "failure names the task index" 3 task;
      checki "one attempt was made" 1 attempts;
      checkb "detail reports the signal" true (contains_sub ~needle:"signal" detail)
  | exception e ->
      Alcotest.failf "expected Crashed, got %s" (Printexc.to_string e)

(* With degradation on (the default), even a task whose worker dies on
   every attempt completes — in-process, with the serial answer — and the
   counters record the recovery. *)
let test_degraded_task_completes () =
  let parent = Unix.getpid () in
  let policy =
    { (Sched.default_policy ()) with Sched.max_retries = 1; backoff = 0.005 }
  in
  let stats = Sched.fresh_stats () in
  let f i =
    (* only child processes crash; the parent's in-process retry succeeds *)
    if i = 4 && Unix.getpid () <> parent then Unix.kill (Unix.getpid ()) Sys.sigkill;
    (i * 3) + 1
  in
  let tasks = Array.init 10 Fun.id in
  let out =
    Sched.map ~jobs:3 ~policy ~stats ~encode:encode_int ~decode:decode_int ~f tasks
  in
  checkb "degraded batch equals serial" true (out = Array.map (fun i -> (i * 3) + 1) tasks);
  checki "both worker attempts crashed" 2 stats.Sched.crashes;
  checki "one retry was dispatched" 1 stats.Sched.retries;
  checki "each strike respawned a worker" 2 stats.Sched.respawns;
  checki "the task finished in-process" 1 stats.Sched.degraded

let test_map_list () =
  let out =
    Sched.map_list ~jobs:3 ~encode:encode_int ~decode:decode_int
      ~f:(fun x -> x * 2)
      [ 5; 6; 7; 8 ]
  in
  Alcotest.(check (list int)) "map_list" [ 10; 12; 14; 16 ] out

let test_default_jobs_env () =
  checkb "default jobs positive" true (Sched.default_jobs () >= 1)

(* --- differential: serial vs parallel vs cached matrices --- *)

(* A slice of the BabelStream corpus keeps the test fast while still
   spanning model families (serial baseline, directives, library,
   offload). *)
let stream_slice =
  lazy
    (Sv_corpus.Babelstream.all ()
    |> List.filter (fun (cb : Sv_corpus.Emit.codebase) ->
           List.mem cb.Sv_corpus.Emit.model
             [ "serial"; "omp"; "kokkos"; "cuda"; "stdpar" ])
    |> List.map Pipeline.index)

let matrix_with ~jobs ~cache ixs =
  Tbmd.clear_memo ();
  Tbmd.set_jobs jobs;
  Tbmd.set_ted_cache cache;
  Fun.protect
    ~finally:(fun () ->
      Tbmd.set_jobs 1;
      Tbmd.set_ted_cache None)
    (fun () -> Tbmd.matrix Tbmd.TSem ixs)

(* Byte-identical, not approximately equal: render both matrices and
   compare the strings too, so even formatting-visible drift fails. *)
let render (m : Cluster.matrix) =
  String.concat "\n"
    (Array.to_list
       (Array.map
          (fun row ->
            String.concat " "
              (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
          m.Cluster.data))

let test_parallel_matrix_identical () =
  let ixs = Lazy.force stream_slice in
  let serial = matrix_with ~jobs:1 ~cache:None ixs in
  let parallel = matrix_with ~jobs:3 ~cache:None ixs in
  checkb "labels equal" true (serial.Cluster.labels = parallel.Cluster.labels);
  checkb "float data identical" true (serial.Cluster.data = parallel.Cluster.data);
  Alcotest.(check string) "rendered bytes identical" (render serial) (render parallel)

let test_cached_matrix_identical () =
  let ixs = Lazy.force stream_slice in
  let serial = matrix_with ~jobs:1 ~cache:None ixs in
  let cache = Ted_cache.create () in
  let cold = matrix_with ~jobs:2 ~cache:(Some cache) ixs in
  let entries_after_cold = Ted_cache.size cache in
  let warm = matrix_with ~jobs:1 ~cache:(Some cache) ixs in
  checkb "cold cached matrix identical" true (serial.Cluster.data = cold.Cluster.data);
  checkb "warm cached matrix identical" true (serial.Cluster.data = warm.Cluster.data);
  checkb "parallel workers shipped entries back" true (entries_after_cold > 0);
  checki "warm run added nothing" entries_after_cold (Ted_cache.size cache);
  checkb "warm run hit the cache" true (Ted_cache.hits cache > 0)

let test_cache_save_load_roundtrip () =
  let ixs = Lazy.force stream_slice in
  let cache = Ted_cache.create () in
  let m1 = matrix_with ~jobs:1 ~cache:(Some cache) ixs in
  let reloaded =
    match Ted_cache.load (Ted_cache.save cache) with
    | Ok c -> c
    | Error e -> Alcotest.failf "cache round-trip failed: %s" e
  in
  checki "entry count survives" (Ted_cache.size cache) (Ted_cache.size reloaded);
  let m2 = matrix_with ~jobs:1 ~cache:(Some reloaded) ixs in
  checkb "matrix from reloaded cache identical" true (m1.Cluster.data = m2.Cluster.data);
  checki "reloaded cache fully warm" 0 (Ted_cache.misses reloaded)

let () =
  Alcotest.run "sched"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches serial" `Quick test_map_matches_serial;
          Alcotest.test_case "order under skew" `Quick test_map_order_under_skew;
          Alcotest.test_case "serial fallback" `Quick test_map_serial_fallback;
          Alcotest.test_case "empty input" `Quick test_map_empty;
          Alcotest.test_case "worker error propagates" `Quick test_worker_error_propagates;
          Alcotest.test_case "signal death is typed" `Quick test_signal_death_is_typed;
          Alcotest.test_case "degraded task completes" `Quick test_degraded_task_completes;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
        ] );
      ( "differential",
        [
          Alcotest.test_case "parallel matrix identical" `Quick
            test_parallel_matrix_identical;
          Alcotest.test_case "cached matrix identical" `Quick
            test_cached_matrix_identical;
          Alcotest.test_case "cache save/load round-trip" `Quick
            test_cache_save_load_roundtrip;
        ] );
    ]
