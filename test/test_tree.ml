(* Tests for Sv_tree: rose-tree operations, labels, and the TED
   implementations (Zhang–Shasha vs brute-force oracle, metric
   properties). *)

module Tree = Sv_tree.Tree
module Ted = Sv_tree.Ted
module Flat = Sv_tree.Flat
module Label = Sv_tree.Label

let leaf = Tree.leaf
let node = Tree.node
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* a small deterministic example tree *)
let t_example = node 1 [ node 2 [ leaf 4; leaf 5 ]; leaf 3 ]

let test_size_depth () =
  checki "size" 5 (Tree.size t_example);
  checki "depth" 3 (Tree.depth t_example);
  checki "leaf size" 1 (Tree.size (leaf 0));
  checki "leaf depth" 1 (Tree.depth (leaf 0))

let test_orders () =
  Alcotest.(check (list int)) "preorder" [ 1; 2; 4; 5; 3 ] (Tree.preorder t_example);
  Alcotest.(check (list int)) "postorder" [ 4; 5; 2; 3; 1 ] (Tree.postorder t_example);
  Alcotest.(check (list int)) "leaves" [ 4; 5; 3 ] (Tree.leaves t_example)

let test_map_fold () =
  let doubled = Tree.map (fun x -> x * 2) t_example in
  Alcotest.(check (list int)) "mapped" [ 2; 4; 8; 10; 6 ] (Tree.preorder doubled);
  let sum = Tree.fold (fun x kids -> x + List.fold_left ( + ) 0 kids) t_example in
  checki "fold sum" 15 sum

let test_count_exists () =
  checki "count evens" 2 (Tree.count (fun x -> x mod 2 = 0) t_example);
  checkb "exists" true (Tree.exists (fun x -> x = 5) t_example);
  checkb "not exists" false (Tree.exists (fun x -> x = 9) t_example)

let test_filter_prune () =
  (* dropping node 2 removes its whole subtree *)
  match Tree.filter_prune (fun x -> x <> 2) t_example with
  | Some t ->
      Alcotest.(check (list int)) "subtree gone" [ 1; 3 ] (Tree.preorder t)
  | None -> Alcotest.fail "root should survive"

let test_filter_prune_root () =
  checkb "root dropped" true (Tree.filter_prune (fun x -> x <> 1) t_example = None)

let test_filter_splice () =
  (* dropping node 2 splices 4 and 5 into the root *)
  match Tree.filter_splice (fun x -> x <> 2) t_example with
  | Some t -> Alcotest.(check (list int)) "spliced" [ 1; 4; 5; 3 ] (Tree.preorder t)
  | None -> Alcotest.fail "root should survive"

let test_equal_hash () =
  let t2 = node 1 [ node 2 [ leaf 4; leaf 5 ]; leaf 3 ] in
  checkb "equal" true (Tree.equal Int.equal t_example t2);
  checki "hash equal" (Tree.hash Fun.id t_example) (Tree.hash Fun.id t2);
  let t3 = node 1 [ leaf 3; node 2 [ leaf 4; leaf 5 ] ] in
  checkb "order matters" false (Tree.equal Int.equal t_example t3)

let test_flatten_forest () =
  let f = Tree.flatten_forest 0 [ leaf 1; leaf 2 ] in
  checki "forest size" 3 (Tree.size f)

(* --- labels --- *)

let test_label_equal_ignores_loc () =
  let a = Label.v ~text:"x" ~loc:(Sv_util.Loc.make ~file:"f" ~line:1 ~col:0) "call" in
  let b = Label.v ~text:"x" ~loc:(Sv_util.Loc.make ~file:"g" ~line:9 ~col:4) "call" in
  checkb "loc ignored" true (Label.equal a b);
  checki "hash agrees" (Label.hash a) (Label.hash b);
  checkb "kind matters" false (Label.equal a (Label.v ~text:"x" "index"));
  checkb "text matters" false (Label.equal a (Label.v ~text:"y" "call"))

let test_label_spine () =
  let t = node (Label.v "a") [ leaf (Label.v "b") ] in
  Alcotest.(check (list string)) "spine" [ "a"; "b" ] (Label.spine t)

(* --- TED --- *)

let ted a b = Ted.distance ~eq:Int.equal a b

let test_ted_identity () = checki "self distance" 0 (ted t_example t_example)

let test_ted_leaf_relabel () = checki "relabel" 1 (ted (leaf 1) (leaf 2))

let test_ted_insert_delete () =
  checki "insert one" 1 (ted (leaf 1) (node 1 [ leaf 2 ]));
  checki "delete one" 1 (ted (node 1 [ leaf 2 ]) (leaf 1))

let test_ted_paper_figure () =
  (* Fig. 1 of the paper: two small ASTs at distance five — one relabel
     plus four inserted/deleted nodes. Modelled here with int labels. *)
  let t1 = node 0 [ leaf 8; node 1 [ leaf 2; leaf 3 ]; leaf 4 ] in
  let t2 = node 9 [ node 1 [ leaf 2; leaf 3; node 5 [ leaf 6 ] ]; leaf 4; leaf 7 ] in
  checki "distance five" 5 (ted t1 t2)

let test_ted_disjoint () =
  (* no shared labels: cheapest edit is relabel-all plus size delta *)
  let t1 = node 1 [ leaf 2 ] and t2 = node 3 [ leaf 4; leaf 5 ] in
  checki "disjoint" 3 (ted t1 t2)

(* random tree generator over a small label alphabet *)
let gen_tree =
  QCheck.Gen.(
    sized_size (int_bound 12) (fix (fun self n ->
        if n <= 0 then map Tree.leaf (int_bound 3)
        else
          map2 Tree.node (int_bound 3)
            (list_size (int_bound 3) (self (n / 2))))))

let arb_tree = QCheck.make ~print:(fun t ->
    Format.asprintf "%a" (Tree.pp Format.pp_print_int) t)
    gen_tree

let prop_ted_vs_brute =
  QCheck.Test.make ~name:"zhang-shasha agrees with brute force" ~count:200
    (QCheck.pair arb_tree arb_tree)
    (fun (a, b) -> ted a b = Ted.distance_brute ~eq:Int.equal a b)

let prop_ted_int_agrees =
  QCheck.Test.make ~name:"distance_int agrees with generic" ~count:200
    (QCheck.pair arb_tree arb_tree)
    (fun (a, b) -> Ted.distance_int a b = ted a b)

let prop_ted_symmetric =
  QCheck.Test.make ~name:"unit-cost TED is symmetric" ~count:200
    (QCheck.pair arb_tree arb_tree)
    (fun (a, b) -> ted a b = ted b a)

let prop_ted_identity =
  QCheck.Test.make ~name:"TED t t = 0" ~count:200 arb_tree (fun t -> ted t t = 0)

let prop_ted_bounds =
  QCheck.Test.make ~name:"TED bounded by sum of sizes" ~count:200
    (QCheck.pair arb_tree arb_tree)
    (fun (a, b) ->
      let d = ted a b in
      d >= 0
      && d <= Tree.size a + Tree.size b
      && d >= abs (Tree.size a - Tree.size b))

let prop_ted_triangle =
  QCheck.Test.make ~name:"TED triangle inequality" ~count:100
    (QCheck.triple arb_tree arb_tree arb_tree)
    (fun (a, b, c) -> ted a c <= ted a b + ted b c)

let prop_ted_zero_iff_equal =
  QCheck.Test.make ~name:"TED zero iff structurally equal" ~count:200
    (QCheck.pair arb_tree arb_tree)
    (fun (a, b) -> ted a b = 0 = Tree.equal Int.equal a b)

let prop_prune_shrinks =
  QCheck.Test.make ~name:"filter_prune never grows the tree" ~count:200 arb_tree
    (fun t ->
      match Tree.filter_prune (fun x -> x <> 1) t with
      | None -> true
      | Some t' -> Tree.size t' <= Tree.size t)

let prop_splice_preserves_kept_labels =
  QCheck.Test.make ~name:"filter_splice keeps exactly passing labels" ~count:200 arb_tree
    (fun t ->
      let keep x = x <> 2 in
      match Tree.filter_splice keep t with
      | None -> List.for_all (fun x -> not (keep x)) (Tree.preorder t)
      | Some t' ->
          List.sort compare (Tree.preorder t')
          = List.sort compare (List.filter keep (Tree.preorder t)))

let prop_size_is_preorder_length =
  QCheck.Test.make ~name:"size equals preorder length" ~count:200 arb_tree (fun t ->
      Tree.size t = List.length (Tree.preorder t))

(* --- costs-record validation --- *)

let test_costs_validation () =
  let bad_relabel =
    {
      Ted.delete = (fun _ -> 1);
      insert = (fun _ -> 1);
      relabel = (fun _ _ -> 1);
    }
  in
  Alcotest.check_raises "nonzero relabel on equal labels"
    (Invalid_argument "Ted.distance: costs.relabel must be 0 on equal labels")
    (fun () ->
      ignore (Ted.distance ~costs:bad_relabel ~eq:Int.equal t_example t_example));
  let neg_delete =
    {
      Ted.delete = (fun _ -> -1);
      insert = (fun _ -> 1);
      relabel = (fun x y -> if x = y then 0 else 1);
    }
  in
  Alcotest.check_raises "negative delete cost"
    (Invalid_argument "Ted.distance: costs.delete/insert must be non-negative")
    (fun () ->
      ignore (Ted.distance ~costs:neg_delete ~eq:Int.equal t_example t_example))

(* --- seeded oracle suite -------------------------------------------- *)

(* A Prng-seeded generator independent of QCheck, so the default run
   covers a guaranteed number of pairs (SV_PROP_ITERS, ≥ 500) and any
   failure reports the exact pair. *)

module Prng = Sv_util.Prng

let prop_iters =
  match Sys.getenv_opt "SV_PROP_ITERS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n > 0 -> n
      | _ -> 500)
  | None -> 500

let rec gen_tree_sized rng n =
  let label = Prng.int rng 4 in
  if n <= 1 then Tree.leaf label
  else begin
    let kids = ref [] and remaining = ref (n - 1) in
    while !remaining > 0 do
      let take = 1 + Prng.int rng !remaining in
      kids := gen_tree_sized rng take :: !kids;
      remaining := !remaining - take
    done;
    Tree.node label (List.rev !kids)
  end

let show_tree t = Format.asprintf "%a" (Tree.pp Format.pp_print_int) t

(* Every TED fact we promise, checked on one pair. [max_brute] bounds
   when the exponential brute-force oracle is consulted. *)
let check_pair ~max_brute i a b c =
  let ctx fmt =
    Printf.ksprintf
      (fun msg ->
        Alcotest.failf "pair %d (%s vs %s): %s" i (show_tree a) (show_tree b) msg)
      fmt
  in
  let d = ted a b in
  let sa = Tree.size a and sb = Tree.size b in
  if sa + sb <= max_brute then begin
    let oracle = Ted.distance_brute ~eq:Int.equal a b in
    if d <> oracle then ctx "distance %d but brute-force oracle %d" d oracle
  end;
  if Ted.distance_int a b <> d then ctx "distance_int disagrees with distance";
  if ted b a <> d then ctx "not symmetric: %d vs %d" d (ted b a);
  if d = 0 && not (Tree.equal Int.equal a b) then ctx "zero distance on unequal trees";
  if d <> 0 && Tree.equal Int.equal a b then ctx "nonzero distance %d on equal trees" d;
  if d < abs (sa - sb) then ctx "below the size-delta lower bound";
  if d > sa + sb then ctx "above the size-sum upper bound";
  let lb = Ted.lower_bound_int a b in
  if lb > d then ctx "histogram lower bound %d exceeds the distance %d" lb d;
  let fa = Flat.of_tree a and fb = Flat.of_tree b in
  let fd = Flat.distance fa fb in
  if fd <> d then ctx "flat kernel %d disagrees with distance %d" fd d;
  if Flat.distance fb fa <> d then
    ctx "flat kernel not symmetric: %d vs %d" (Flat.distance fb fa) d;
  let flb = Flat.lower_bound fa fb in
  if flb <> lb then
    ctx "Flat.lower_bound %d disagrees with Ted.lower_bound_int %d" flb lb;
  List.iter
    (fun cutoff ->
      (match Ted.distance_bounded ~eq:Int.equal ~cutoff a b with
      | Some bd ->
          if bd <> d then ctx "distance_bounded (cutoff %d) = %d, want %d" cutoff bd d;
          if d > cutoff then ctx "distance_bounded returned Some above cutoff %d" cutoff
      | None ->
          if d <= cutoff then
            ctx "distance_bounded refused a pair within cutoff %d (d = %d)" cutoff d);
      (match Ted.distance_bounded_int ~cutoff a b with
      | Some bd ->
          if bd <> d || d > cutoff then
            ctx "distance_bounded_int (cutoff %d) = %d, want %d" cutoff bd d
      | None ->
          if d <= cutoff then
            ctx "distance_bounded_int refused a pair within cutoff %d (d = %d)" cutoff d);
      match Flat.distance_bounded ~cutoff fa fb with
      | Some bd ->
          if bd <> d || d > cutoff then
            ctx "Flat.distance_bounded (cutoff %d) = %d, want %d" cutoff bd d
      | None ->
          if d <= cutoff then
            ctx "Flat.distance_bounded refused a pair within cutoff %d (d = %d)"
              cutoff d)
    [ d - 1; d; d + 3; 0; 64 ];
  let dac = ted a c and dbc = ted b c in
  if dac > d + dbc then
    ctx "triangle inequality violated via %s: %d > %d + %d" (show_tree c) dac d dbc

let run_oracle ~iters ~max_nodes ~max_brute () =
  let rng = Prng.create 0x7ed0_5eed in
  for i = 1 to iters do
    let size () = 1 + Prng.int rng max_nodes in
    let a = gen_tree_sized rng (size ()) in
    let b = gen_tree_sized rng (size ()) in
    let c = gen_tree_sized rng (size ()) in
    check_pair ~max_brute i a b c
  done

let test_oracle_default () = run_oracle ~iters:(max 500 prop_iters) ~max_nodes:10 ~max_brute:18 ()

(* Long mode: larger trees stress the keyroots decomposition and the
   bounded kernels' early exit; the brute oracle only sees pairs it can
   afford. Excluded from @quick via the `Slow speed level. *)
let test_oracle_long () =
  run_oracle ~iters:(max 500 prop_iters) ~max_nodes:26 ~max_brute:20 ()

(* Generated mode: the same differential, but over subtrees harvested
   from real T_sem trees of synthetic program variants (Sv_gen), so the
   kernels face realistic label alphabets, arities and depths — not just
   the uniform shapes gen_tree_sized produces. Labels are mapped to ints
   via an intern table keyed on (kind, text), matching Label.equal. *)
let test_oracle_generated () =
  let module Gen = Sv_gen.Gen in
  let module Pipeline = Sv_core.Pipeline in
  let spec = { Gen.seed = 0x5eed; count = 6; mode = Gen.Mixed; base = "babelstream" } in
  let intern = Hashtbl.create 256 in
  let int_label (l : Label.t) =
    let key = (l.Label.kind, l.Label.text) in
    match Hashtbl.find_opt intern key with
    | Some i -> i
    | None ->
        let i = Hashtbl.length intern in
        Hashtbl.add intern key i;
        i
  in
  let rec harvest acc t =
    let acc = if Tree.size t <= 30 then t :: acc else acc in
    List.fold_left harvest acc (Tree.children t)
  in
  let pool =
    List.concat_map
      (fun v ->
        let ix = Pipeline.index ~run:false v.Gen.v_cb in
        List.concat_map
          (fun u -> harvest [] (Tree.map int_label u.Pipeline.u_t_sem))
          ix.Pipeline.ix_units)
      (Gen.generate spec)
    |> Array.of_list
  in
  if Array.length pool < 100 then
    Alcotest.failf "only %d harvested subtrees; the differential would be thin"
      (Array.length pool);
  let rng = Prng.create 0x6e7_5eed in
  let pick () = pool.(Prng.int rng (Array.length pool)) in
  for i = 1 to max 500 prop_iters do
    check_pair ~max_brute:18 i (pick ()) (pick ()) (pick ())
  done

(* --- hash-consing --------------------------------------------------- *)

module Hc = Sv_tree.Hashcons

(* intern ∘ extern = id: the table must preserve the tree exactly (int
   labels, so label equality is structural). *)
let test_hashcons_extern_id () =
  let tbl = Hc.create ~hash:Hashtbl.hash ~equal:Int.equal () in
  let rng = Prng.create 0xca11_ab1e in
  for i = 1 to max 500 prop_iters do
    let t = gen_tree_sized rng (1 + Prng.int rng 24) in
    let n = Hc.intern tbl t in
    if not (Tree.equal Int.equal (Hc.extern n) t) then
      Alcotest.failf "tree %d: extern (intern t) <> t for %s" i (show_tree t);
    if Hc.size n <> Tree.size t then
      Alcotest.failf "tree %d: interned size %d <> %d" i (Hc.size n) (Tree.size t)
  done;
  let s = Hc.stats tbl in
  if s.Hc.labels > 4 then
    Alcotest.failf "label alphabet is 0..3 but table holds %d labels" s.Hc.labels

(* Tree.equal ⇔ id equality (and ⇒ digest equality) on seeded pairs.
   Pairs are drawn small so equal pairs actually occur. *)
let test_hashcons_equal_iff_id () =
  let tbl = Hc.create ~hash:Hashtbl.hash ~equal:Int.equal () in
  let rng = Prng.create 0x1d_c0de in
  let equal_pairs = ref 0 in
  for i = 1 to max 500 prop_iters do
    let a = gen_tree_sized rng (1 + Prng.int rng 5) in
    let b = gen_tree_sized rng (1 + Prng.int rng 5) in
    let na = Hc.intern tbl a and nb = Hc.intern tbl b in
    let structural = Tree.equal Int.equal a b in
    if structural then incr equal_pairs;
    if Hc.equal na nb <> structural then
      Alcotest.failf "pair %d: id equality %b but structural %b (%s vs %s)" i
        (Hc.equal na nb) structural (show_tree a) (show_tree b);
    if (Hc.id na = Hc.id nb) <> structural then
      Alcotest.failf "pair %d: Hc.equal and id comparison disagree" i;
    if structural && Hc.digest na <> Hc.digest nb then
      Alcotest.failf "pair %d: equal trees with different digests" i
  done;
  if !equal_pairs = 0 then
    Alcotest.fail "generator never produced an equal pair; test is vacuous"

(* Canonical int views feed the TED fast path: distances through canon
   must match the plain kernel (and the brute oracle transitively, since
   the plain kernel is oracle-checked above). *)
let test_hashcons_canon_ted_agrees () =
  let c = Hc.canonizer ~hash:Hashtbl.hash ~equal:Int.equal () in
  let rng = Prng.create 0x7ed0_5eed in
  for i = 1 to max 500 prop_iters do
    let a = gen_tree_sized rng (1 + Prng.int rng 10) in
    let b = gen_tree_sized rng (1 + Prng.int rng 10) in
    let ca = Hc.canon c a and cb = Hc.canon c b in
    (* physical sharing: equal trees canonise to the same pointer *)
    if Tree.equal Int.equal a b && not (ca == cb) then
      Alcotest.failf "pair %d: equal trees not physically shared" i;
    let d = ted a b in
    if Ted.distance_int ca cb <> d then
      Alcotest.failf "pair %d: TED through canon %d, direct %d (%s vs %s)" i
        (Ted.distance_int ca cb) d (show_tree a) (show_tree b);
    if Ted.distance_int ca ca <> 0 then
      Alcotest.failf "pair %d: fast path broke the identity distance" i;
    List.iter
      (fun cutoff ->
        let want = if d <= cutoff then Some d else None in
        if Ted.distance_bounded_int ~cutoff ca cb <> want then
          Alcotest.failf "pair %d: bounded TED through canon disagrees at cutoff %d"
            i cutoff)
      [ d - 1; d; d + 3 ]
  done

(* --- flat kernel ----------------------------------------------------- *)

module T = Sv_perf.Telemetry

(* Degenerate shapes where off-by-ones and empty histograms would bite:
   single nodes, uniform labels, and a chain vs a star (where only the
   leaf/height components of the lower bound are nonzero). *)
let test_flat_degenerate () =
  let chain n = List.fold_left (fun acc _ -> node 0 [ acc ]) (leaf 0) (List.init (n - 1) Fun.id) in
  let star n = node 0 (List.init (n - 1) (fun _ -> leaf 0)) in
  let pairs =
    [
      (leaf 0, leaf 0); (leaf 0, leaf 1); (leaf 0, chain 6); (chain 6, star 6);
      (star 6, star 6); (chain 9, chain 2); (t_example, leaf 1);
    ]
  in
  List.iteri
    (fun i (a, b) ->
      let want = Ted.distance_int a b in
      let fa = Flat.of_tree a and fb = Flat.of_tree b in
      if Flat.distance fa fb <> want then
        Alcotest.failf "degenerate pair %d: flat %d, zs %d" i (Flat.distance fa fb) want;
      let lb = Flat.lower_bound fa fb in
      if lb > want then
        Alcotest.failf "degenerate pair %d: lower bound %d above distance %d" i lb want;
      if Ted.lower_bound_int a b <> lb then
        Alcotest.failf "degenerate pair %d: flat and tree lower bounds disagree" i)
    pairs;
  (* chain vs star, same size and labels: the histogram/size components
     are 0, so only the strengthened leaf/height components can prune *)
  let lb = Flat.lower_bound (Flat.of_tree (chain 6)) (Flat.of_tree (star 6)) in
  checki "chain-vs-star bound from leaves/height" 4 lb

(* Left and right combs skew the keyroot costs maximally; the strategy
   rule must pick the cheap direction on both orders and the distances
   must be unchanged. *)
let test_flat_strategy_combs () =
  let rec left_comb n = if n <= 1 then leaf 7 else node 3 [ left_comb (n - 2); leaf 1 ] in
  let rec right_comb n = if n <= 1 then leaf 7 else node 3 [ leaf 1; right_comb (n - 2) ] in
  let a = left_comb 41 and b = right_comb 41 in
  (* zs references first: Ted.distance_int counts its own DP runs *)
  let zab = Ted.distance_int a b in
  let zaa = Ted.distance_int a (left_comb 39) in
  let zbb = Ted.distance_int b (right_comb 39) in
  let before = T.ted_snapshot () in
  let fa = Flat.of_tree a and fb = Flat.of_tree b in
  let fab = Flat.distance fa fb in
  let faa = Flat.distance fa (Flat.of_tree (left_comb 39)) in
  let fbb = Flat.distance fb (Flat.of_tree (right_comb 39)) in
  checki "comb distance flat=zs" zab fab;
  checki "left-comb pair flat=zs" zaa faa;
  checki "right-comb pair flat=zs" zbb fbb;
  let diff = T.ted_diff ~before ~after:(T.ted_snapshot ()) in
  (* the two same-leaning pairs must split one left, one right *)
  if diff.T.strategy_left < 1 || diff.T.strategy_right < 1 then
    Alcotest.failf "strategy never flipped (left %d, right %d)" diff.T.strategy_left
      diff.T.strategy_right;
  checki "every pair ran the DP" 3 diff.T.dp_runs

(* One scratch context across interleaved sizes: dirty buffers must never
   leak between pairs, and results must match fresh-scratch runs. *)
let test_flat_scratch_reuse () =
  let rng = Prng.create 0xf1a7_b0f5 in
  let s = Flat.scratch () in
  let flats =
    Array.init 24 (fun _ -> Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 30)))
  in
  Array.iteri
    (fun i fa ->
      Array.iteri
        (fun j fb ->
          let shared_scratch = Flat.distance ~scratch:s fa fb in
          let fresh = Flat.distance ~scratch:(Flat.scratch ()) fa fb in
          if shared_scratch <> fresh then
            Alcotest.failf "pair (%d,%d): reused scratch %d, fresh %d" i j
              shared_scratch fresh;
          let cutoff = Prng.int rng 12 in
          let bounded = Flat.distance_bounded ~scratch:s ~cutoff fa fb in
          let want = if fresh <= cutoff then Some fresh else None in
          if bounded <> want then
            Alcotest.failf "pair (%d,%d): bounded at %d disagrees after reuse" i j
              cutoff)
        flats)
    flats

(* [reserve] pre-grows; subsequent in-bound pairs must not grow again. *)
let test_flat_reserve () =
  let s = Flat.scratch () in
  Flat.reserve ~scratch:s 64 64;
  let rng = Prng.create 0xbeef in
  let before = T.ted_snapshot () in
  for _ = 1 to 20 do
    let a = Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 60)) in
    let b = Flat.of_tree (gen_tree_sized rng (1 + Prng.int rng 60)) in
    ignore (Flat.distance ~scratch:s a b)
  done;
  let diff = T.ted_diff ~before ~after:(T.ted_snapshot ()) in
  checki "no scratch growth after reserve" 0 diff.T.scratch_grows

(* canon_id: stable dense ids, equal trees share one id, and the id keys
   the same canonical view [canon] returns. *)
let test_hashcons_canon_id () =
  let c = Hc.canonizer ~hash:Hashtbl.hash ~equal:Int.equal () in
  let rng = Prng.create 0x0dd_1d5 in
  for i = 1 to max 500 prop_iters do
    let a = gen_tree_sized rng (1 + Prng.int rng 8) in
    let b = gen_tree_sized rng (1 + Prng.int rng 8) in
    let ida, va = Hc.canon_id c a in
    let idb, vb = Hc.canon_id c b in
    let ida', va' = Hc.canon_id c a in
    if ida <> ida' || not (va == va') then
      Alcotest.failf "pair %d: canon_id not stable across calls" i;
    if (ida = idb) <> Tree.equal Int.equal a b then
      Alcotest.failf "pair %d: id equality %b but structural %b" i (ida = idb)
        (Tree.equal Int.equal a b);
    if not (Hc.canon c a == va) then
      Alcotest.failf "pair %d: canon and canon_id views differ" i;
    if (va == vb) <> (ida = idb) then
      Alcotest.failf "pair %d: view sharing disagrees with id equality" i
  done

let prop_custom_costs_scale =
  QCheck.Test.make ~name:"doubled costs double the distance" ~count:100
    (QCheck.pair arb_tree arb_tree)
    (fun (a, b) ->
      let costs =
        {
          Ted.delete = (fun _ -> 2);
          insert = (fun _ -> 2);
          relabel = (fun x y -> if x = y then 0 else 2);
        }
      in
      Ted.distance ~costs ~eq:Int.equal a b = 2 * ted a b)

let () =
  Alcotest.run "tree"
    [
      ( "tree-ops",
        [
          Alcotest.test_case "size/depth" `Quick test_size_depth;
          Alcotest.test_case "traversal orders" `Quick test_orders;
          Alcotest.test_case "map/fold" `Quick test_map_fold;
          Alcotest.test_case "count/exists" `Quick test_count_exists;
          Alcotest.test_case "filter_prune" `Quick test_filter_prune;
          Alcotest.test_case "filter_prune root" `Quick test_filter_prune_root;
          Alcotest.test_case "filter_splice" `Quick test_filter_splice;
          Alcotest.test_case "equal/hash" `Quick test_equal_hash;
          Alcotest.test_case "flatten_forest" `Quick test_flatten_forest;
        ] );
      ( "labels",
        [
          Alcotest.test_case "equality ignores loc" `Quick test_label_equal_ignores_loc;
          Alcotest.test_case "spine" `Quick test_label_spine;
        ] );
      ( "ted-examples",
        [
          Alcotest.test_case "identity" `Quick test_ted_identity;
          Alcotest.test_case "leaf relabel" `Quick test_ted_leaf_relabel;
          Alcotest.test_case "insert/delete" `Quick test_ted_insert_delete;
          Alcotest.test_case "paper figure 1" `Quick test_ted_paper_figure;
          Alcotest.test_case "disjoint labels" `Quick test_ted_disjoint;
          Alcotest.test_case "costs validation" `Quick test_costs_validation;
        ] );
      ( "ted-oracle",
        [
          Alcotest.test_case "seeded suite (>=500 pairs)" `Quick test_oracle_default;
          Alcotest.test_case "long mode (bigger trees)" `Slow test_oracle_long;
          Alcotest.test_case "generated semantic trees (>=500 pairs)" `Slow
            test_oracle_generated;
        ] );
      ( "hashcons",
        [
          Alcotest.test_case "extern (intern t) = t" `Quick test_hashcons_extern_id;
          Alcotest.test_case "Tree.equal iff id equality" `Quick
            test_hashcons_equal_iff_id;
          Alcotest.test_case "TED through canon agrees" `Quick
            test_hashcons_canon_ted_agrees;
          Alcotest.test_case "canon_id stable and shared" `Quick
            test_hashcons_canon_id;
        ] );
      ( "flat-kernel",
        [
          Alcotest.test_case "degenerate shapes" `Quick test_flat_degenerate;
          Alcotest.test_case "strategy on combs" `Quick test_flat_strategy_combs;
          Alcotest.test_case "scratch reuse" `Quick test_flat_scratch_reuse;
          Alcotest.test_case "reserve pre-grows" `Quick test_flat_reserve;
        ] );
      ( "ted-properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_ted_vs_brute; prop_ted_int_agrees; prop_ted_symmetric;
            prop_ted_identity; prop_ted_bounds; prop_ted_triangle;
            prop_ted_zero_iff_equal; prop_custom_costs_scale;
          ] );
      ( "tree-properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_prune_shrinks; prop_splice_preserves_kept_labels;
            prop_size_is_preorder_length ] );
    ]
