(* The sv serve service layer: protocol conformance, differential
   byte-identity against the one-shot path, and a concurrency soak.

   The quick half never opens a socket — it drives the pure codec
   (framing, request/response grammar, the error taxonomy) and the
   engine's payload-in/payload-out step directly. The `Slow half forks
   real daemon processes and talks to them over Unix domain sockets:
   differential runs (resident/warm state must never change a byte),
   eviction-under-pressure identity, and a multi-client soak whose
   oracles are "every request gets exactly one well-formed reply with
   its id", "overload sheds as typed replies, not hangs" and "the serve
   counters are monotone". *)

module P = Sv_serve.Protocol
module Engine = Sv_serve.Engine
module Server = Sv_serve.Server
module Client = Sv_serve.Client
module Apps = Sv_core.Apps
module Pipeline = Sv_core.Pipeline
module J = Sv_jsonx.Jsonx

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let engine ?(jobs = 1) ?(lru_budget = 64 * 1024 * 1024) ?(high_water = 8)
    ?metric_cache_path () =
  Engine.create
    {
      Engine.jobs;
      lru_budget;
      high_water;
      ted_cache_path = None;
      index_cache_path = None;
      metric_cache_path;
      persist_every = 0;
    }

(* --- framing --- *)

let test_frame_roundtrip () =
  let r = P.Reader.create () in
  P.Reader.feed r (P.frame "hello" ^ P.frame "" ^ P.frame "world");
  (match P.Reader.next r with
  | `Frame p -> checks "first frame" "hello" p
  | _ -> Alcotest.fail "expected a frame");
  (match P.Reader.next r with
  | `Frame p -> checks "empty frame is legal" "" p
  | _ -> Alcotest.fail "expected the empty frame");
  (match P.Reader.next r with
  | `Frame p -> checks "third frame" "world" p
  | _ -> Alcotest.fail "expected a frame");
  checkb "then awaiting" true (P.Reader.next r = `Awaiting);
  checki "fully drained" 0 (P.Reader.buffered r)

let test_frame_byte_by_byte () =
  (* frames arrive whole no matter how the transport fragments them *)
  let r = P.Reader.create () in
  let bytes = P.frame "chunky" in
  String.iteri
    (fun i c ->
      checkb
        (Printf.sprintf "awaiting before byte %d" i)
        true
        (P.Reader.next r = `Awaiting);
      P.Reader.feed r (String.make 1 c))
    bytes;
  match P.Reader.next r with
  | `Frame p -> checks "reassembled" "chunky" p
  | _ -> Alcotest.fail "expected the reassembled frame"

let test_frame_truncated () =
  (* a truncated frame is never yielded: the reader just keeps waiting *)
  let r = P.Reader.create () in
  let bytes = P.frame "truncated payload" in
  P.Reader.feed r (String.sub bytes 0 (String.length bytes - 5));
  checkb "awaiting on truncation" true (P.Reader.next r = `Awaiting);
  checkb "still awaiting" true (P.Reader.next r = `Awaiting);
  P.Reader.feed r (String.sub bytes (String.length bytes - 5) 5);
  match P.Reader.next r with
  | `Frame p -> checks "completes once the rest arrives" "truncated payload" p
  | _ -> Alcotest.fail "expected the completed frame"

let test_frame_oversized_sticky () =
  let r = P.Reader.create ~max_frame:8 () in
  P.Reader.feed r (P.frame "123456789");
  (match P.Reader.next r with
  | `Oversized n -> checki "announced size reported" 9 n
  | _ -> Alcotest.fail "expected oversized");
  (* the stream cannot be resynchronised: the verdict is sticky even if
     more (well-formed) bytes arrive *)
  P.Reader.feed r (P.frame "ok");
  match P.Reader.next r with
  | `Oversized _ -> ()
  | _ -> Alcotest.fail "oversized must be sticky"

let test_frame_within_cap () =
  let r = P.Reader.create ~max_frame:8 () in
  P.Reader.feed r (P.frame "12345678");
  match P.Reader.next r with
  | `Frame p -> checks "cap is inclusive" "12345678" p
  | _ -> Alcotest.fail "expected a frame at exactly the cap"

(* --- request/response codec --- *)

let all_requests =
  [
    P.Index { app = "babelstream"; model = "omp" };
    P.Compare { app = "babelstream"; base = "serial"; target = "omp" };
    P.Matrix { app = "tealeaf"; metric = "t_sem" };
    P.Cluster { app = "minibude"; metric = "sloc" };
    P.Nearest
      {
        app = "babelstream";
        model = "omp";
        metric = "t_sem";
        k = 2;
        budget = None;
        epsilon = None;
      };
    P.Nearest
      {
        app = "babelstream";
        model = "omp";
        metric = "t_sem";
        k = 2;
        budget = Some 40;
        epsilon = Some 0.25;
      };
    P.Status;
    P.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun req ->
      match P.decode_request (P.encode_request ~id:7 req) with
      | Ok (Some 7, req') ->
          checkb ("round-trips: " ^ P.verb_of_request req) true (req = req')
      | Ok _ -> Alcotest.failf "id lost for %s" (P.verb_of_request req)
      | Error (_, m) -> Alcotest.failf "rejected own encoding: %s" m)
    all_requests;
  (match P.decode_request (P.encode_request P.Status) with
  | Ok (None, P.Status) -> ()
  | _ -> Alcotest.fail "id-less request must decode with id None");
  match
    P.decode_request {|{"verb":"nearest","app":"a","model":"m","metric":"t_sem"}|}
  with
  | Ok (None, P.Nearest { k = 3; budget = None; epsilon = None; _ }) -> ()
  | _ ->
      Alcotest.fail
        "nearest without \"k\"/\"budget\"/\"epsilon\" must default to an \
         exact k=3 search"

let test_request_taxonomy () =
  let kind payload =
    match P.decode_request payload with
    | Error (k, _) -> Some k
    | Ok _ -> None
  in
  checkb "malformed JSON" true (kind "{nope" = Some P.Bad_json);
  checkb "non-object" true (kind "[1,2]" = Some P.Bad_request);
  checkb "missing verb" true (kind {|{"id":3}|} = Some P.Bad_request);
  checkb "missing fields" true
    (kind {|{"id":4,"verb":"compare","app":"x"}|} = Some P.Bad_request);
  checkb "ill-typed field" true
    (kind {|{"verb":"matrix","app":1,"metric":"sloc"}|} = Some P.Bad_request);
  checkb "unknown verb" true (kind {|{"verb":"frobnicate"}|} = Some P.Unknown_verb);
  (* the id is recoverable whenever the payload parses to an object,
     even though the request itself is rejected *)
  checkb "id recovered from rejected request" true
    (P.request_id {|{"id":4,"verb":"compare","app":"x"}|} = Some 4);
  checkb "no id from malformed JSON" true (P.request_id "{nope" = None)

let test_kind_spelling_bijection () =
  let kinds =
    [
      P.Oversized; P.Bad_json; P.Bad_request; P.Unknown_verb; P.Unknown_app;
      P.Unknown_model; P.Unknown_metric; P.Invalid_request; P.Failed;
    ]
  in
  List.iter
    (fun k ->
      checkb (P.kind_to_string k) true (P.kind_of_string (P.kind_to_string k) = Some k))
    kinds;
  checkb "unknown spelling" true (P.kind_of_string "nope" = None)

let test_response_roundtrip () =
  let responses =
    [
      P.Output { verb = "compare"; warm = true; output = "line one\nline two\n" };
      P.Status_of [ ("requests", J.Int 3); ("served", J.Int 2) ];
      P.Shutdown_ack;
      P.Error { kind = P.Bad_json; message = "unexpected end of input" };
      P.Overloaded { queue = 9; high_water = 8 };
    ]
  in
  List.iter
    (fun resp ->
      match P.decode_response (P.encode_response ~id:(Some 1) resp) with
      | Ok (Some 1, resp') -> checkb "response round-trips" true (resp = resp')
      | Ok _ -> Alcotest.fail "id lost"
      | Error m -> Alcotest.failf "rejected own encoding: %s" m)
    responses;
  match P.decode_response (P.encode_response ~id:None P.Shutdown_ack) with
  | Ok (None, P.Shutdown_ack) -> ()
  | _ -> Alcotest.fail "null id must decode to None"

(* --- engine conformance (socket-free) --- *)

let reply e payload =
  match P.decode_response (Engine.handle_payload e payload) with
  | Ok r -> r
  | Error m -> Alcotest.failf "daemon produced an undecodable reply: %s" m

let test_conformance_errors () =
  let e = engine () in
  (match reply e "{nope" with
  | None, P.Error { kind = P.Bad_json; _ } -> ()
  | _ -> Alcotest.fail "expected bad-json with null id");
  (match reply e {|{"id":5,"verb":"zap"}|} with
  | Some 5, P.Error { kind = P.Unknown_verb; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-verb echoing id 5");
  (match reply e {|{"id":6,"verb":"compare","app":"x"}|} with
  | Some 6, P.Error { kind = P.Bad_request; _ } -> ()
  | _ -> Alcotest.fail "expected bad-request echoing id 6");
  (match
     reply e (P.encode_request ~id:1 (P.Index { app = "nope"; model = "omp" }))
   with
  | Some 1, P.Error { kind = P.Unknown_app; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-app");
  (match
     reply e
       (P.encode_request ~id:2 (P.Index { app = "babelstream"; model = "nope" }))
   with
  | Some 2, P.Error { kind = P.Unknown_model; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-model");
  match
    reply e
      (P.encode_request ~id:3 (P.Matrix { app = "babelstream"; metric = "nope" }))
  with
  | Some 3, P.Error { kind = P.Unknown_metric; _ } -> ()
  | _ -> Alcotest.fail "expected unknown-metric"

let test_conformance_overload_replies () =
  let e = engine () in
  (match
     P.decode_response
       (Engine.shed e ~queue:8 (P.encode_request ~id:9 P.Status))
   with
  | Ok (Some 9, P.Overloaded { queue = 8; high_water = 8 }) -> ()
  | _ -> Alcotest.fail "shed must echo the id in a typed overloaded reply");
  match P.decode_response (Engine.oversized e ~announced:999 ~cap:16) with
  | Ok (None, P.Error { kind = P.Oversized; _ }) -> ()
  | _ -> Alcotest.fail "oversized must be a typed error"

let int_field fields k =
  match List.assoc_opt k fields with
  | Some (J.Int i) -> i
  | _ -> Alcotest.failf "status lacks int field %S" k

let test_conformance_status () =
  let e = engine ~high_water:5 () in
  Engine.set_queue_depth e 3;
  match reply e (P.encode_request ~id:2 P.Status) with
  | Some 2, P.Status_of fields ->
      checki "queue depth reported" 3 (int_field fields "queue_depth");
      checki "high water reported" 5 (int_field fields "high_water");
      checki "jobs reported" 1 (int_field fields "jobs");
      checkb "serve counters present" true
        (List.for_all
           (fun k -> List.mem_assoc k fields)
           [ "requests"; "served"; "errors"; "overloaded"; "bytes_in";
             "bytes_out"; "warm_hits"; "cold_misses"; "usec_total" ]);
      checkb "cache stats present" true
        (List.for_all
           (fun k -> List.mem_assoc k fields)
           [ "lru_entries"; "lru_bytes"; "lru_budget"; "lru_evictions";
             "index_entries"; "ted_entries"; "metric_entries"; "vp_entries" ])
  | _ -> Alcotest.fail "expected a status reply"

let test_conformance_shutdown () =
  let e = engine () in
  checkb "running" false (Engine.shutting_down e);
  (match reply e (P.encode_request ~id:3 P.Shutdown) with
  | Some 3, P.Shutdown_ack -> ()
  | _ -> Alcotest.fail "expected a shutdown ack");
  checkb "flagged" true (Engine.shutting_down e)

let compare_req =
  P.Compare { app = "babelstream"; base = "serial"; target = "omp" }

let babel_codebase model =
  let cbs = Option.get (Apps.corpus_of_app "babelstream") in
  Option.get (Apps.find_codebase ~app:"babelstream" cbs model)

let output_reply e ?id req =
  match reply e (P.encode_request ?id req) with
  | _, P.Output { verb; warm; output } ->
      checks "verb echoed" (P.verb_of_request req) verb;
      (warm, output)
  | _, P.Error { kind; message } ->
      Alcotest.failf "unexpected error %s: %s" (P.kind_to_string kind) message
  | _ -> Alcotest.fail "expected an output reply"

let test_conformance_compare () =
  let e = engine () in
  let warm1, out1 = output_reply e ~id:1 compare_req in
  checkb "first evaluation is cold" false warm1;
  let warm2, out2 = output_reply e ~id:2 compare_req in
  checkb "second evaluation is warm" true warm2;
  checks "warm output byte-identical to cold" out1 out2;
  (* golden: the daemon's bytes are exactly what an independent one-shot
     evaluation through the plain pipeline renders *)
  let bix = Pipeline.index (babel_codebase "serial") in
  let tix = Pipeline.index (babel_codebase "omp") in
  checks "matches the one-shot render"
    (Engine.render_compare ~app:"babelstream" ~base:"serial" ~target:"omp" bix
       tix)
    out1

let test_conformance_index () =
  let e = engine () in
  let _, out = output_reply e ~id:1 (P.Index { app = "babelstream"; model = "omp" }) in
  checks "matches the one-shot render"
    (Engine.render_index (Pipeline.index (babel_codebase "omp")))
    out;
  checkb "verification verdict present" true
    (contains ~sub:"built-in verification:" out)

let test_eviction_reload_identity () =
  (* a 1-byte budget makes every admission evict its predecessor: each
     repeat must fall back through the eviction spill (decode from the
     persistent cache), and the bytes must never change *)
  let e = engine ~lru_budget:1 () in
  let _, out1 = output_reply e compare_req in
  let _, out2 = output_reply e compare_req in
  let _, out3 = output_reply e compare_req in
  checks "reload after eviction is byte-identical (1)" out1 out2;
  checks "reload after eviction is byte-identical (2)" out1 out3;
  match reply e (P.encode_request P.Status) with
  | _, P.Status_of fields ->
      checkb "evictions actually happened" true
        (int_field fields "lru_evictions" > 0);
      checkb "spills were reloaded from the index cache" true
        (int_field fields "index_hits" > 0)
  | _ -> Alcotest.fail "expected a status reply"

(* --- nearest: validation, resident index memo, persisted metric cache --- *)

let nearest_spec = "gen:grow:serial,omp:7:12"

let nearest_req ?budget ?epsilon ?(k = 3) model =
  P.Nearest { app = nearest_spec; model; metric = "t_sem"; k; budget; epsilon }

let test_invalid_request () =
  let e = engine () in
  let expect_invalid name req =
    match reply e (P.encode_request ~id:1 req) with
    | Some 1, P.Error { kind = P.Invalid_request; _ } -> ()
    | _, P.Error { kind; _ } ->
        Alcotest.failf "%s: wrong kind %s" name (P.kind_to_string kind)
    | _ -> Alcotest.failf "%s: expected invalid-request" name
  in
  expect_invalid "k = 0" (nearest_req ~k:0 "omp");
  expect_invalid "negative k" (nearest_req ~k:(-3) "omp");
  expect_invalid "negative budget" (nearest_req ~budget:(-1) "omp");
  expect_invalid "negative epsilon" (nearest_req ~epsilon:(-0.5) "omp");
  (* validation happens before app/model resolution: an out-of-domain
     value is classified as such, not as whatever lookup fails first *)
  expect_invalid "k = 0 beats unknown app"
    (P.Nearest
       {
         app = "nope";
         model = "m";
         metric = "t_sem";
         k = 0;
         budget = None;
         epsilon = None;
       })

let test_nearest_memo_and_approx () =
  let e = engine () in
  let cbs = Option.get (Apps.corpus_of_app nearest_spec) in
  let q = (List.hd cbs).Sv_corpus.Emit.model in
  let _, out1 = output_reply e ~id:1 (nearest_req q) in
  let _, out2 = output_reply e ~id:2 (nearest_req q) in
  checks "repeat nearest byte-identical" out1 out2;
  (match reply e (P.encode_request P.Status) with
  | _, P.Status_of fields ->
      checkb "second request reused the resident index" true
        (int_field fields "vp_hits" >= 1);
      checkb "index resident" true (int_field fields "vp_entries" >= 1)
  | _ -> Alcotest.fail "expected a status reply");
  (* golden: the daemon's bytes are exactly the one-shot render through
     an independent pipeline (no shared engine state) *)
  let ixs = List.map Pipeline.index cbs in
  let qix = List.hd ixs in
  let m = Option.get (Sv_core.Tbmd.metric_of_string "t_sem") in
  checks "matches the one-shot render"
    (Engine.render_nearest ~app:nearest_spec ~model:q ~k:3 m qix ixs)
    out1;
  (* an unconstraining budget keeps the search exact and says so *)
  let _, out_b = output_reply e ~id:3 (nearest_req ~budget:1_000_000 q) in
  checkb "unconstraining budget claims exactness" true
    (contains ~sub:"guaranteed_exact=true" out_b);
  (* a zero budget cannot claim exactness *)
  let _, out0 = output_reply e ~id:4 (nearest_req ~budget:0 q) in
  checkb "exhausted budget is confessed" true
    (contains ~sub:"guaranteed_exact=false" out0)

let test_metric_cache_warm_restart () =
  let path = Filename.temp_file "sv_metric_cache" ".svz" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let cbs = Option.get (Apps.corpus_of_app nearest_spec) in
  let q = (List.hd cbs).Sv_corpus.Emit.model in
  let e1 = engine ~metric_cache_path:path () in
  let _, out1 = output_reply e1 ~id:1 (nearest_req q) in
  Engine.persist e1;
  checkb "metric cache persisted" true (Sys.file_exists path);
  (* a fresh engine on the same path = a daemon restart: the index must
     come back from the persisted cache (a decode, not a rebuild) with
     byte-identical answers *)
  let e2 = engine ~metric_cache_path:path () in
  let _, out2 = output_reply e2 ~id:1 (nearest_req q) in
  checks "warm restart byte-identical" out1 out2;
  match reply e2 (P.encode_request P.Status) with
  | _, P.Status_of fields ->
      checkb "restart reloaded the persisted index" true
        (int_field fields "metric_hits" >= 1)
  | _ -> Alcotest.fail "expected a status reply"

(* --- daemon fixtures (`Slow) --- *)

let temp_socket () =
  let path = Filename.temp_file "sv_serve_test" ".sock" in
  Sys.remove path;
  path

let fork_daemon ?(jobs = 1) ?(high_water = 8) ?fault () =
  let socket = temp_socket () in
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       (* the child inherits whatever serve counters the in-process
          conformance tests accumulated; a daemon starts at zero *)
       Sv_perf.Telemetry.reset_serve ();
       (match fault with
       | Some spec -> Sv_sched.Sched.Fault.set spec
       | None -> ());
       Server.serve ~socket
         (Engine.create
            {
              (Engine.default_config ()) with
              Engine.jobs;
              high_water;
              ted_cache_path = None;
              index_cache_path = None;
              persist_every = 0;
            })
     with _ -> ());
    Unix._exit 0
  end
  else begin
    let rec wait n =
      match Client.connect ~socket ~timeout_s:120. () with
      | Ok c -> c
      | Error e ->
          if n = 0 then Alcotest.failf "daemon did not come up: %s" e
          else begin
            Unix.sleepf 0.05;
            wait (n - 1)
          end
    in
    let c = wait 200 in
    (pid, socket, c)
  end

let shutdown_daemon pid c =
  (match Client.call c P.Shutdown with
  | Ok P.Shutdown_ack -> ()
  | Ok _ -> Alcotest.fail "expected a shutdown ack"
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  Client.close c;
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon exited abnormally"

let daemon_output c req =
  match Client.call c req with
  | Ok (P.Output { output; _ }) -> output
  | Ok (P.Error { kind; message }) ->
      Alcotest.failf "daemon error %s: %s" (P.kind_to_string kind) message
  | Ok _ -> Alcotest.fail "expected an output reply"
  | Error e -> Alcotest.failf "call failed: %s" e

(* --- differential byte-identity over a real socket (`Slow) --- *)

let test_daemon_differential () =
  let pid, _socket, c = fork_daemon () in
  Fun.protect
    ~finally:(fun () -> shutdown_daemon pid c)
    (fun () ->
      (* independent one-shot evaluation in this (parent) process: fresh
         pipeline, no shared state with the daemon *)
      let bix = Pipeline.index (babel_codebase "serial") in
      let tix = Pipeline.index (babel_codebase "omp") in
      let expect =
        Engine.render_compare ~app:"babelstream" ~base:"serial" ~target:"omp"
          bix tix
      in
      checks "daemon compare matches one-shot" expect
        (daemon_output c compare_req);
      checks "warm rerun identical" expect (daemon_output c compare_req);
      let fixs =
        List.map Pipeline.index (Option.get (Apps.corpus_of_app "babelstream-f"))
      in
      let m = Option.get (Sv_core.Tbmd.metric_of_string "t_sem") in
      let matrix_req = P.Matrix { app = "babelstream-f"; metric = "t_sem" } in
      let cluster_req = P.Cluster { app = "babelstream-f"; metric = "t_sem" } in
      checks "daemon matrix matches one-shot"
        (Engine.render_matrix m fixs)
        (daemon_output c matrix_req);
      checks "daemon cluster matches one-shot"
        (Engine.render_cluster m fixs)
        (daemon_output c cluster_req);
      checks "warm cluster identical"
        (Engine.render_cluster m fixs)
        (daemon_output c cluster_req))

(* --- concurrency soak (`Slow) --- *)

let monotone_keys =
  [
    "connections"; "requests"; "served"; "errors"; "overloaded"; "queue_peak";
    "bytes_in"; "bytes_out"; "warm_hits"; "cold_misses"; "usec_total";
  ]

let status_fields c =
  match Client.call c P.Status with
  | Ok (P.Status_of fields) -> fields
  | Ok _ -> Alcotest.fail "expected a status reply"
  | Error e -> Alcotest.failf "status failed: %s" e

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

let test_soak () =
  let pid, socket, c0 = fork_daemon ~high_water:2 () in
  Fun.protect
    ~finally:(fun () -> shutdown_daemon pid c0)
    (fun () ->
      let before = status_fields c0 in
      (* phase 1: six clients, ten interleaved rounds each; every request
         must come back as exactly one well-formed reply carrying its id
         (a torn frame or lost request would fail decode or hang into the
         receive timeout). Sheds are legal — they are typed and counted. *)
      let conns =
        Array.init 6 (fun _ ->
            match Client.connect ~socket ~timeout_s:120. () with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect failed: %s" e)
      in
      let ok = ref 0 and shed = ref 0 in
      let rounds = 10 in
      for r = 0 to rounds - 1 do
        Array.iteri
          (fun i c ->
            match Client.send c ~id:((r * 100) + i) P.Status with
            | Ok () -> ()
            | Error e -> Alcotest.failf "send failed: %s" e)
          conns;
        Array.iteri
          (fun i c ->
            match Client.recv c with
            | Ok (Some id, P.Status_of _) ->
                checki "reply id echoes the request" ((r * 100) + i) id;
                incr ok
            | Ok (Some id, P.Overloaded _) ->
                checki "shed reply id echoes the request" ((r * 100) + i) id;
                incr shed
            | Ok _ -> Alcotest.fail "unexpected reply class"
            | Error e -> Alcotest.failf "recv failed: %s" e)
          conns
      done;
      Array.iter Client.close conns;
      checki "every request answered exactly once" (6 * rounds) (!ok + !shed);
      (* phase 2: a single-write pipelined burst far beyond the
         high-water mark. Admission control must shed the excess as
         immediate typed overloaded replies — not queue it, not hang. *)
      let burst_n = 40 in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 120.;
      write_all fd
        (String.concat ""
           (List.init burst_n (fun i ->
                P.frame (P.encode_request ~id:(1000 + i) P.Status))));
      let reader = P.Reader.create () in
      let buf = Bytes.create 65536 in
      let burst_ok = ref 0 and burst_shed = ref 0 and seen = ref [] in
      let rec read_replies () =
        if !burst_ok + !burst_shed < burst_n then
          match P.Reader.next reader with
          | `Frame payload ->
              (match P.decode_response payload with
              | Ok (Some id, P.Status_of _) ->
                  seen := id :: !seen;
                  incr burst_ok
              | Ok (Some id, P.Overloaded { high_water; _ }) ->
                  checki "sheds carry the configured mark" 2 high_water;
                  seen := id :: !seen;
                  incr burst_shed
              | Ok _ -> Alcotest.fail "unexpected burst reply"
              | Error e -> Alcotest.failf "torn/invalid reply frame: %s" e);
              read_replies ()
          | `Oversized _ -> Alcotest.fail "oversized reply"
          | `Awaiting -> (
              match Unix.read fd buf 0 (Bytes.length buf) with
              | 0 -> Alcotest.fail "daemon closed mid-burst"
              | n ->
                  P.Reader.feed reader (Bytes.sub_string buf 0 n);
                  read_replies ())
      in
      read_replies ();
      Unix.close fd;
      checki "burst fully answered" burst_n (!burst_ok + !burst_shed);
      checkb "admission control shed some of the burst" true (!burst_shed > 0);
      checkb "but admitted some too" true (!burst_ok > 0);
      checkb "all burst ids distinct and echoed" true
        (List.sort_uniq compare !seen = List.init burst_n (fun i -> 1000 + i));
      (* phase 3: the serve counters are monotone, and every received
         request is accounted to exactly one reply class. The +1 closes
         the books on the status request reporting itself: it is counted
         received, its own reply is not yet. *)
      let after = status_fields c0 in
      List.iter
        (fun k ->
          checkb
            (Printf.sprintf "counter %s is monotone" k)
            true
            (int_field after k >= int_field before k))
        monotone_keys;
      checki "requests = served + errors + overloaded + 1"
        (int_field after "requests")
        (int_field after "served" + int_field after "errors"
        + int_field after "overloaded" + 1);
      checkb "queue peak observed" true (int_field after "queue_peak" >= 2))

(* --- generator-driven soak (`Slow) --- *)

(* A daemon serving a 200-variant synthetic corpus (resolved through the
   Apps "gen:" registry hook) under admission pressure: four clients keep
   two index requests each in flight against high_water = 2, so sheds are
   part of normal service. Oracles: every variant's daemon render is
   byte-identical to an independent in-process evaluation; shed requests
   are retried without ever recomputing (cold evaluations = corpus size
   exactly); and a second pass over sampled variants is served entirely
   warm with unchanged bytes. *)

let gen_spec = "gen:grow:serial,omp:11:200"

let test_gen_soak () =
  let cbs = Option.get (Apps.corpus_of_app gen_spec) in
  let n = List.length cbs in
  checki "corpus size" 200 n;
  let models =
    Array.of_list (List.map (fun cb -> cb.Sv_corpus.Emit.model) cbs)
  in
  let goldens =
    Array.of_list (List.map (fun cb -> Engine.render_index (Pipeline.index cb)) cbs)
  in
  let pid, socket, c0 = fork_daemon ~high_water:2 () in
  Fun.protect
    ~finally:(fun () -> shutdown_daemon pid c0)
    (fun () ->
      let nclients = 4 in
      let conns =
        Array.init nclients (fun _ ->
            match Client.connect ~socket ~timeout_s:120. () with
            | Ok c -> c
            | Error e -> Alcotest.failf "connect failed: %s" e)
      in
      let outputs = Array.make n None in
      let sheds = ref 0 and answered = ref 0 in
      (* client i owns variants congruent to i; the id wires each reply
         back to its variant *)
      let pending =
        Array.init nclients (fun i ->
            ref (List.filter (fun k -> k mod nclients = i) (List.init n Fun.id)))
      in
      let inflight = Array.make nclients [] in
      let send_next i =
        match !(pending.(i)) with
        | [] -> ()
        | k :: rest -> (
            pending.(i) := rest;
            match
              Client.send conns.(i) ~id:k
                (P.Index { app = gen_spec; model = models.(k) })
            with
            | Ok () -> inflight.(i) <- k :: inflight.(i)
            | Error e -> Alcotest.failf "send failed: %s" e)
      in
      Array.iteri
        (fun i _ ->
          send_next i;
          send_next i)
        conns;
      while !answered < n do
        for i = 0 to nclients - 1 do
          if inflight.(i) <> [] then begin
            (match Client.recv conns.(i) with
            | Ok (Some id, P.Output { verb; output; _ }) ->
                checks "verb echoed" "index" verb;
                if not (List.mem id inflight.(i)) then
                  Alcotest.failf "reply id %d was not in flight" id;
                inflight.(i) <- List.filter (fun k -> k <> id) inflight.(i);
                (match outputs.(id) with
                | Some _ -> Alcotest.failf "variant %s answered twice" models.(id)
                | None -> outputs.(id) <- Some output);
                incr answered
            | Ok (Some id, P.Overloaded { high_water; _ }) ->
                checki "sheds carry the configured mark" 2 high_water;
                inflight.(i) <- List.filter (fun k -> k <> id) inflight.(i);
                pending.(i) := id :: !(pending.(i));
                incr sheds
            | Ok (_, P.Error { kind; message }) ->
                Alcotest.failf "daemon error %s: %s" (P.kind_to_string kind)
                  message
            | Ok _ -> Alcotest.fail "unexpected reply class"
            | Error e -> Alcotest.failf "recv failed: %s" e);
            send_next i
          end
        done
      done;
      Array.iter Client.close conns;
      Array.iteri
        (fun k out ->
          match out with
          | Some out ->
              if out <> goldens.(k) then
                Alcotest.failf "variant %s: daemon bytes differ from one-shot"
                  models.(k)
          | None -> Alcotest.failf "variant %s never answered" models.(k))
        outputs;
      (* cache conservation: sheds + retries must not have recomputed
         anything — exactly one cold evaluation per variant... *)
      let fields = status_fields c0 in
      checki "cold evaluations = corpus size" n (int_field fields "cold_misses");
      checkb "the daemon actually shed under pressure" true (!sheds > 0);
      checkb "queue pressure reached the mark" true
        (int_field fields "queue_peak" >= 2);
      (* ...and a revisit is pure cache: warm replies, unchanged bytes *)
      List.iter
        (fun k ->
          match
            Client.call c0 (P.Index { app = gen_spec; model = models.(k) })
          with
          | Ok (P.Output { warm; output; _ }) ->
              checkb "second pass is warm" true warm;
              if output <> goldens.(k) then
                Alcotest.failf "variant %s: warm bytes changed" models.(k)
          | Ok (P.Error { kind; message }) ->
              Alcotest.failf "daemon error %s: %s" (P.kind_to_string kind) message
          | Ok _ -> Alcotest.fail "expected an output reply"
          | Error e -> Alcotest.failf "call failed: %s" e)
        [ 0; 13; 59; 101; 137; 199 ])

let () =
  Alcotest.run "serve"
    [
      ( "framing",
        [
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "byte-by-byte reassembly" `Quick
            test_frame_byte_by_byte;
          Alcotest.test_case "truncated frame waits" `Quick test_frame_truncated;
          Alcotest.test_case "oversized is sticky" `Quick
            test_frame_oversized_sticky;
          Alcotest.test_case "cap is inclusive" `Quick test_frame_within_cap;
        ] );
      ( "codec",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_roundtrip;
          Alcotest.test_case "error taxonomy" `Quick test_request_taxonomy;
          Alcotest.test_case "kind spellings" `Quick test_kind_spelling_bijection;
          Alcotest.test_case "response round-trip" `Quick test_response_roundtrip;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "typed errors" `Quick test_conformance_errors;
          Alcotest.test_case "overload replies" `Quick
            test_conformance_overload_replies;
          Alcotest.test_case "status" `Quick test_conformance_status;
          Alcotest.test_case "shutdown" `Quick test_conformance_shutdown;
          Alcotest.test_case "compare golden + warm identity" `Quick
            test_conformance_compare;
          Alcotest.test_case "index golden" `Quick test_conformance_index;
          Alcotest.test_case "eviction + reload identity" `Quick
            test_eviction_reload_identity;
          Alcotest.test_case "invalid-request taxonomy" `Quick
            test_invalid_request;
          Alcotest.test_case "nearest memo + approximate ledger" `Quick
            test_nearest_memo_and_approx;
          Alcotest.test_case "metric cache warm restart" `Quick
            test_metric_cache_warm_restart;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "differential byte-identity" `Slow
            test_daemon_differential;
          Alcotest.test_case "concurrency soak" `Slow test_soak;
          Alcotest.test_case "generated-corpus soak (200 variants)" `Slow
            test_gen_soak;
        ] );
    ]
