(* Tests for Sv_perf: Φ arithmetic, the efficiency/support model's
   qualitative facts, cascades, and determinism. *)

module P = Sv_perf.Platform
module M = Sv_perf.Pmodel
module E = Sv_perf.Efficiency
module Phi = Sv_perf.Phi
module Cascade = Sv_perf.Cascade

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checki = Alcotest.(check int)
let app = M.tealeaf

(* --- phi arithmetic --- *)

let test_phi_harmonic_mean () =
  checkf "equal efficiencies" 0.5 (Phi.phi [ Some 0.5; Some 0.5 ]);
  checkf "harmonic of 1 and 0.5" (2.0 /. 3.0) (Phi.phi [ Some 1.0; Some 0.5 ]);
  checkf "single" 0.8 (Phi.phi [ Some 0.8 ])

let test_phi_zero_cases () =
  checkf "unsupported platform zeroes phi" 0.0 (Phi.phi [ Some 0.9; None ]);
  checkf "empty set" 0.0 (Phi.phi []);
  checkf "non-positive" 0.0 (Phi.phi [ Some 0.9; Some 0.0 ])

let prop_phi_between_min_max =
  QCheck.Test.make ~name:"phi lies between min and max efficiency" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range 0.01 1.0))
    (fun effs ->
      let phi = Phi.phi (List.map (fun e -> Some e) effs) in
      let mn = List.fold_left Float.min 1.0 effs in
      let mx = List.fold_left Float.max 0.0 effs in
      phi >= mn -. 1e-9 && phi <= mx +. 1e-9)

let prop_phi_le_arithmetic_mean =
  QCheck.Test.make ~name:"harmonic mean <= arithmetic mean" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range 0.01 1.0))
    (fun effs ->
      let phi = Phi.phi (List.map (fun e -> Some e) effs) in
      let am = List.fold_left ( +. ) 0.0 effs /. float_of_int (List.length effs) in
      phi <= am +. 1e-9)

(* --- the support/efficiency model --- *)

let test_first_party_support () =
  checkb "cuda only on nvidia" true (E.base M.cuda P.h100 <> None);
  checkb "cuda not on amd gpu" true (E.base M.cuda P.mi250x = None);
  checkb "cuda not on cpu" true (E.base M.cuda P.spr = None);
  checkb "hip on amd" true (E.base M.hip P.mi250x <> None);
  checkb "hip on nvidia too" true (E.base M.hip P.h100 <> None);
  checkb "hip not on intel gpu" true (E.base M.hip P.pvc = None)

let test_host_only_models () =
  List.iter
    (fun p ->
      checkb "omp on cpu" true (E.base M.omp p <> None);
      checkb "tbb on cpu" true (E.base M.tbb p <> None))
    [ P.spr; P.milan; P.g3e ];
  List.iter
    (fun p ->
      checkb "omp not on gpu" true (E.base M.omp p = None);
      checkb "tbb not on gpu" true (E.base M.tbb p = None))
    [ P.h100; P.mi250x; P.pvc ]

let test_portable_models_everywhere () =
  List.iter
    (fun p ->
      checkb "kokkos everywhere" true (E.base M.kokkos p <> None);
      checkb "sycl everywhere" true (E.base M.sycl_usm p <> None);
      checkb "omp-target everywhere" true (E.base M.omp_target p <> None))
    P.all

let test_vendor_peaks () =
  let eff m p = Option.get (E.efficiency ~app m p) in
  checkb "cuda best on h100" true
    (List.for_all
       (fun m -> m.M.id = "cuda" || eff M.cuda P.h100 >= eff m P.h100 -. 1e-9)
       (List.filter (fun m -> E.base m P.h100 <> None) M.all_parallel));
  checkb "sycl-acc best on pvc" true
    (List.for_all
       (fun m -> m.M.id = "sycl-acc" || eff M.sycl_acc P.pvc >= eff m P.pvc -. 1e-9)
       (List.filter (fun m -> E.base m P.pvc <> None) M.all_parallel))

let test_efficiency_deterministic () =
  List.iter
    (fun m ->
      List.iter
        (fun p ->
          checkb "repeatable" true (E.efficiency ~app m p = E.efficiency ~app m p))
        P.all)
    M.all_parallel

let test_efficiency_in_range () =
  List.iter
    (fun m ->
      List.iter
        (fun p ->
          match E.efficiency ~app m p with
          | None -> ()
          | Some e -> checkb "in (0,1]" true (e > 0.0 && e <= 1.0))
        P.all)
    M.all_parallel

let test_runtime_scales_with_work () =
  let small = { app with M.cells = 1e6 } and big = { app with M.cells = 4e6 } in
  let t size = Option.get (E.runtime_s ~app:size M.omp P.spr) in
  checkf "4x cells = 4x runtime" (4.0 *. t small) (t big)

(* --- app efficiency & cascade --- *)

let test_app_efficiency_normalised () =
  let models = M.all_parallel in
  List.iter
    (fun p ->
      let effs = List.filter_map (fun m -> Phi.app_efficiency ~app ~models m p) models in
      checkb "all within (0,1]" true (List.for_all (fun e -> e > 0.0 && e <= 1.0) effs);
      checkb "per-platform winner at 1.0" true
        (List.exists (fun e -> Float.abs (e -. 1.0) < 1e-9) effs))
    P.all

let test_cascade_shapes () =
  let series = Cascade.cascade ~app ~models:M.all_parallel ~platforms:P.all in
  Alcotest.(check int) "one series per model" (List.length M.all_parallel)
    (List.length series);
  List.iter
    (fun (s : Cascade.series) ->
      Alcotest.(check int) "full platform coverage" (List.length P.all)
        (List.length s.Cascade.ordered);
      (* Φ series is non-increasing: platforms arrive best-first *)
      let rec non_increasing = function
        | a :: (b :: _ as rest) -> a >= b -. 1e-9 && non_increasing rest
        | _ -> true
      in
      checkb "phi series non-increasing" true (non_increasing s.Cascade.phi_series);
      checkf "series ends at final phi"
        (List.nth s.Cascade.phi_series (List.length s.Cascade.phi_series - 1))
        s.Cascade.final_phi)
    series

let test_cascade_cuda_crashes () =
  let series = Cascade.cascade ~app ~models:M.all_parallel ~platforms:P.all in
  let cuda = List.find (fun s -> s.Cascade.model.M.id = "cuda") series in
  checkf "cuda final phi zero" 0.0 cuda.Cascade.final_phi;
  checkb "cuda starts at 1.0 (its own platform)" true
    (match cuda.Cascade.phi_series with v :: _ -> v > 0.99 | [] -> false)

let test_cascade_kokkos_survives () =
  let series = Cascade.cascade ~app ~models:M.all_parallel ~platforms:P.all in
  let kokkos = List.find (fun s -> s.Cascade.model.M.id = "kokkos") series in
  checkb "kokkos keeps nonzero phi" true (kokkos.Cascade.final_phi > 0.5)

(* --- telemetry ------------------------------------------------------- *)

module T = Sv_perf.Telemetry

let test_telemetry_reset_and_diff () =
  T.reset_ted ();
  let before = T.ted_snapshot () in
  T.ted.T.equal_prunes <- T.ted.T.equal_prunes + 3;
  T.ted.T.dp_runs <- T.ted.T.dp_runs + 2;
  T.ted.T.strategy_right <- T.ted.T.strategy_right + 1;
  let diff = T.ted_diff ~before ~after:(T.ted_snapshot ()) in
  checki "diff equal_prunes" 3 diff.T.equal_prunes;
  checki "diff dp_runs" 2 diff.T.dp_runs;
  checki "diff strategy_right" 1 diff.T.strategy_right;
  checki "untouched counter" 0 diff.T.size_prunes;
  checki "pruned total" 3 (T.ted_pruned diff);
  (* the snapshot is an independent copy, not an alias *)
  let snap = T.ted_snapshot () in
  T.ted.T.equal_prunes <- 0;
  checki "snapshot survives later writes" 3 snap.T.equal_prunes;
  T.reset_ted ();
  checki "reset zeroes" 0 (T.ted_pruned (T.ted_snapshot ()));
  checki "reset zeroes dp_runs" 0 T.ted.T.dp_runs

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let test_telemetry_rows_and_string () =
  T.reset_ted ();
  T.ted.T.size_prunes <- 5;
  T.ted.T.dp_runs <- 7;
  let rows = T.ted_rows (T.ted_snapshot ()) in
  checki "rows cover every counter" 12 (List.length rows);
  checkb "size prunes row carries its value" true
    (List.exists (fun (k, v) -> v = 5 && contains k "size") rows);
  let s = T.ted_to_string (T.ted_snapshot ()) in
  checkb "summary mentions the prune split" true (contains s "size 5");
  checkb "summary mentions DP runs" true (contains s "7 DP runs");
  T.reset_ted ()

let () =
  Alcotest.run "perf"
    [
      ( "phi",
        [
          Alcotest.test_case "harmonic mean" `Quick test_phi_harmonic_mean;
          Alcotest.test_case "zero cases" `Quick test_phi_zero_cases;
        ] );
      ( "efficiency-model",
        [
          Alcotest.test_case "first-party support" `Quick test_first_party_support;
          Alcotest.test_case "host-only models" `Quick test_host_only_models;
          Alcotest.test_case "portable models" `Quick test_portable_models_everywhere;
          Alcotest.test_case "vendor peaks" `Quick test_vendor_peaks;
          Alcotest.test_case "deterministic" `Quick test_efficiency_deterministic;
          Alcotest.test_case "range" `Quick test_efficiency_in_range;
          Alcotest.test_case "runtime scaling" `Quick test_runtime_scales_with_work;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "app efficiency normalised" `Quick test_app_efficiency_normalised;
          Alcotest.test_case "series shapes" `Quick test_cascade_shapes;
          Alcotest.test_case "cuda crashes" `Quick test_cascade_cuda_crashes;
          Alcotest.test_case "kokkos survives" `Quick test_cascade_kokkos_survives;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "reset, diff, snapshot" `Quick
            test_telemetry_reset_and_diff;
          Alcotest.test_case "rows and summary string" `Quick
            test_telemetry_rows_and_string;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_phi_between_min_max; prop_phi_le_arithmetic_mean ] );
    ]
