(* sv — the SilverVale-ML command line.

   Subcommands mirror the paper's workflow (§IV, Fig. 2):
     emit     write a mini-app port (sources + compile_commands.json) to disk
     index    run the pipeline on a port and save the Codebase DB artifact
     inspect  print the stats of a saved Codebase DB
     compare  divergence of one model from a base model, all metrics
     cluster  divergence matrix + dendrogram for an app under one metric
     nearest  k nearest ports to a model through the VP-tree metric index
     phi      cascade plot (performance portability)
     chart    navigation chart (Phi vs TBMD)
     verify   run every port's built-in verification
     gen      emit a seeded synthetic corpus of verified program variants
     models   list apps, models and platforms *)

open Cmdliner

module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Report = Sv_report.Report
module Apps = Sv_core.Apps
module Gen = Sv_gen.Gen
module Engine = Sv_serve.Engine
module Protocol = Sv_serve.Protocol

let perf_app_of = Apps.perf_app_of
let find_codebase = Apps.find_codebase
let app_names = Apps.app_names

let fail fmt = Printf.ksprintf (fun m -> `Error (false, m)) fmt

let with_app app f =
  match Apps.corpus_of_app app with
  | Some cbs -> f cbs
  | None -> fail "unknown app %S (expected one of: %s)" app (String.concat ", " app_names)

(* --- args --- *)

let app_arg =
  Arg.(required & opt (some string) None & info [ "app"; "a" ] ~docv:"APP"
         ~doc:"Mini-app: babelstream, babelstream-f, tealeaf, cloverleaf, minibude.")

let model_arg names doc =
  Arg.(required & opt (some string) None & info names ~docv:"MODEL" ~doc)

let metric_arg =
  Arg.(value & opt string "t_sem" & info [ "metric"; "m" ] ~docv:"METRIC"
         ~doc:"Metric: sloc, lloc, source, t_src, t_sem, t_sem+i, t_ir.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Worker processes for pairwise divergence jobs (0 = one per \
               core, 1 = serial in-process).")

let ted_cache_arg =
  Arg.(value & opt (some string) None & info [ "ted-cache" ] ~docv:"FILE"
         ~doc:"Persistent TED memo cache file. Loaded before the run (a \
               missing file is a cold start) and saved back after, so \
               re-runs over unchanged units skip the tree-edit-distance \
               DP entirely.")

let index_cache_arg =
  Arg.(value & opt (some string) None
       & info [ "index-cache" ]
           ~env:(Cmd.Env.info "SV_INDEX_CACHE") ~docv:"FILE"
           ~doc:"Persistent index cache file. Loaded before the run (a \
                 missing file is a cold start) and saved back after, so \
                 re-runs over unchanged sources skip preprocessing, \
                 parsing, lowering and interpretation entirely. Keyed on \
                 source digest, defines, dialect and pipeline version — \
                 any change is an automatic miss, never a stale result.")

let metric_cache_arg =
  Arg.(value & opt (some string) None
       & info [ "metric-cache" ]
           ~env:(Cmd.Env.info "SV_METRIC_CACHE") ~docv:"FILE"
           ~doc:"Persistent VP-tree metric-index cache file. Loaded before \
                 the run (a missing file is a cold start) and saved back \
                 after, so a re-run of $(b,nearest) over an unchanged \
                 corpus reloads the index with zero build evaluations and \
                 answers byte-identically to a cold build. Keyed on the \
                 corpus digest, metric, variant and schema version — any \
                 change is an automatic miss, never a stale index.")

let budget_arg =
  Arg.(value & opt (some int) None & info [ "budget" ] ~docv:"N"
         ~doc:"Cap the nearest-neighbour search at N distance evaluations \
               (best-first over lower bounds, so the budget goes to the \
               most promising subtrees first). The output's ledger line \
               reports guaranteed_exact=false only when the cap actually \
               cut the search short.")

let epsilon_arg =
  Arg.(value & opt (some float) None & info [ "epsilon" ] ~docv:"E"
         ~doc:"Relative slack for approximate nearest-neighbour search: \
               subtrees whose lower bound exceeds tau/(1+E) are skipped, \
               so every reported rank-i distance is at most (1+E) times \
               the true one. 0 keeps the search exact.")

let ted_algo_arg =
  Arg.(
    value
    & opt (enum [ ("flat", `Flat); ("zs", `Zs) ]) `Flat
    & info [ "ted-algo" ] ~docv:"ALGO"
        ~doc:
          "Tree-edit-distance kernel: $(b,flat) (default) compiles each \
           distinct tree once into contiguous int arrays and runs the \
           allocation-free kernel with per-pair strategy selection and a \
           pruning cascade; $(b,zs) is the pointer-tree Zhang\xE2\x80\x93Shasha \
           reference. Both produce identical distances.")

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Print TED engine counters after the run: pairs pruned by the \
           digest/size/histogram cascade, DP runs and abandons, flat \
           compiles, and left/right strategy picks.")

let pivots_arg =
  Arg.(value & opt (some int) None & info [ "pivots" ] ~docv:"K"
         ~doc:"Triangle-bounded matrix evaluation with exactly K pivots: \
               pivot rows are computed exactly, every remaining pair is \
               bracketed by the triangle inequality and only runs the \
               (bounded) DP when the bracket cannot resolve it. Output is \
               byte-identical to the exhaustive evaluation.")

let metric_index_arg =
  Arg.(value & flag
       & info [ "metric-index" ]
           ~doc:"Shorthand for --pivots with the automatic pivot count \
                 (about the square root of the model count).")

let fault_arg =
  Arg.(value & opt (some string) None & info [ "fault" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection for the worker pool (manual \
               chaos runs): comma-separated rates and a seed, e.g. \
               crash:0.05,hang:0.02,garbage:0.03,trunc:0.02,seed:42. \
               Workers then crash, hang or corrupt result frames at \
               those rates; the pool recovers by respawn, bounded retry \
               and in-process degradation, so the output is unchanged. \
               Also settable via SV_FAULT; hangs are reclaimed after the \
               per-task timeout (SV_TASK_TIMEOUT, default 20s).")

(* Configure the engines around [f]: resolve the worker count, install
   the fault-injection spec, load/install the persistent TED and index
   caches, and on the way out save the caches, report any recovery
   activity and reset both engines so one subcommand cannot leak state
   into a later library use of Tbmd or Index_engine. [f] receives the
   resolved worker count for the indexing fan-out. *)
let with_engine ?index_cache ?metric_cache ?(ted_algo = `Flat) ~jobs ~ted_cache
    ~fault f =
  let module F = Sv_sched.Sched.Fault in
  match
    match fault with
    | None -> Ok None
    | Some s -> Result.map Option.some (F.parse s)
  with
  | Error e -> fail "--fault: %s" e
  | Ok spec ->
      (match spec with Some s -> F.set s | None -> ());
      Sv_metrics.Divergence.set_ted_algo ted_algo;
      let jobs = if jobs <= 0 then Sv_sched.Sched.default_jobs () else jobs in
      Tbmd.set_jobs jobs;
      (match ted_cache with
      | Some path ->
          Tbmd.set_ted_cache (Some (Sv_db.Codebase_db.Ted_cache.load_file path))
      | None -> ());
      (match index_cache with
      | Some path ->
          Sv_core.Index_engine.set_cache (Some (Sv_db.Index_cache.load_file path))
      | None -> ());
      (match metric_cache with
      | Some path ->
          Tbmd.set_metric_cache (Some (Sv_db.Metric_cache.load_file path))
      | None -> ());
      let finish () =
        (match (ted_cache, Tbmd.ted_cache ()) with
        | Some path, Some c -> (
            match Sv_db.Codebase_db.Ted_cache.save_file path c with
            | () ->
                Printf.printf "%s (saved to %s)\n"
                  (Sv_db.Codebase_db.Ted_cache.stats c) path
            | exception Sys_error msg ->
                Printf.eprintf "sv: warning: ted-cache not saved: %s\n" msg)
        | _ -> ());
        (match (index_cache, Sv_core.Index_engine.cache ()) with
        | Some path, Some c -> (
            match Sv_db.Index_cache.save_file path c with
            | () ->
                Printf.printf "%s (saved to %s)\n" (Sv_db.Index_cache.stats c) path
            | exception Sys_error msg ->
                Printf.eprintf "sv: warning: index-cache not saved: %s\n" msg)
        | _ -> ());
        (match (metric_cache, Tbmd.metric_cache ()) with
        | Some path, Some c -> (
            match Sv_db.Metric_cache.save_file path c with
            | () ->
                Printf.printf "%s (saved to %s)\n" (Sv_db.Metric_cache.stats c)
                  path
            | exception Sys_error msg ->
                Printf.eprintf "sv: warning: metric-cache not saved: %s\n" msg)
        | _ -> ());
        (match spec with
        | Some s when not (F.is_none s) ->
            Printf.printf "fault injection %s: %s\n" (F.to_string s)
              (Sv_sched.Sched.stats_to_string (Sv_sched.Sched.last_stats ()))
        | _ -> ());
        F.clear ();
        Sv_core.Index_engine.set_cache None;
        Tbmd.set_metric_cache None;
        Tbmd.set_ted_cache None;
        Tbmd.set_jobs 1;
        Sv_metrics.Divergence.set_ted_algo `Flat
      in
      (match f jobs with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e)

(* --- commands --- *)

let models_cmd =
  let run () =
    print_endline "mini-apps:";
    List.iter (fun a -> Printf.printf "  %s\n" a) app_names;
    print_endline "\nC++ models:";
    List.iter
      (fun id ->
        match Sv_corpus.Emit.gen_for id with
        | Some g ->
            Printf.printf "  %-12s %s%s\n" id (Sv_corpus.Emit.model_name g)
              (if List.mem id Sv_corpus.Emit.all_ids then ""
               else " (extension, outside the paper's Table II)")
        | None -> ())
      Sv_corpus.Emit.extended_ids;
    print_endline "\nFortran models (babelstream-f):";
    List.iter
      (fun id -> Printf.printf "  %-12s %s\n" id (Sv_corpus.Babelstream_f.model_name id))
      Sv_corpus.Babelstream_f.model_ids;
    print_endline "\nplatforms:";
    List.iter
      (fun (p : Sv_perf.Platform.t) ->
        Printf.printf "  %-7s %s (%s)\n" p.Sv_perf.Platform.abbr p.Sv_perf.Platform.name
          p.Sv_perf.Platform.vendor)
      Sv_perf.Platform.all;
    `Ok ()
  in
  Cmd.v (Cmd.info "models" ~doc:"List mini-apps, programming models and platforms.")
    Term.(ret (const run $ const ()))

let emit_cmd =
  let run app model out =
    with_app app (fun cbs ->
        match find_codebase ~app cbs model with
        | None -> fail "app %s has no model %s" app model
        | Some cb ->
            (try Unix.mkdir out 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
            List.iter
              (fun (name, content) ->
                let oc = open_out (Filename.concat out name) in
                output_string oc content;
                close_out oc)
              cb.Sv_corpus.Emit.files;
            let entry =
              {
                Sv_db.Compdb.directory = out;
                file = cb.Sv_corpus.Emit.main_file;
                arguments =
                  [ "cc"; "-O3" ]
                  @ List.map (fun (k, v) -> Printf.sprintf "-D%s=%s" k v)
                      cb.Sv_corpus.Emit.defines
                  @ [ cb.Sv_corpus.Emit.main_file ];
              }
            in
            let oc = open_out (Filename.concat out "compile_commands.json") in
            output_string oc (Sv_db.Compdb.to_json_string [ entry ]);
            close_out oc;
            Printf.printf "wrote %d files + compile_commands.json to %s\n"
              (List.length cb.Sv_corpus.Emit.files) out;
            `Ok ())
  in
  let out =
    Arg.(value & opt string "." & info [ "out"; "o" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Write one mini-app port's sources and compilation DB to disk.")
    Term.(ret (const run $ app_arg $ model_arg [ "model" ] "Model id." $ out))

let index_cmd =
  let run app model out jobs index_cache =
    with_app app (fun cbs ->
        match find_codebase ~app cbs model with
        | None -> fail "app %s has no model %s" app model
        | Some cb ->
            with_engine ?index_cache ~jobs ~ted_cache:None ~fault:None
            @@ fun jobs ->
            let ix = Sv_core.Index_engine.index ~jobs cb in
            let bytes = Sv_db.Codebase_db.save (Pipeline.to_db ix) in
            let oc = open_out_bin out in
            output_string oc bytes;
            close_out oc;
            print_string (Engine.render_index ix);
            Printf.printf "saved Codebase DB to %s (%d bytes)\n" out (String.length bytes);
            `Ok ())
  in
  let out =
    Arg.(value & opt string "codebase.svdb" & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Output artifact path.")
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Index one port (preprocess, parse, lower, run) and save its Codebase DB.")
    Term.(
      ret
        (const run $ app_arg $ model_arg [ "model" ] "Model id." $ out $ jobs_arg
        $ index_cache_arg))

let inspect_cmd =
  let run path =
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let bytes = really_input_string ic len in
    close_in ic;
    match Sv_db.Codebase_db.load bytes with
    | Error e -> fail "cannot load %s: %s" path e
    | Ok db ->
        Printf.printf "%s\n" (Sv_db.Codebase_db.stats db);
        List.iter
          (fun (u : Sv_db.Codebase_db.unit_record) ->
            Printf.printf "  unit %s: sloc=%d lloc=%d deps=[%s]\n" u.ur_file u.ur_sloc
              u.ur_lloc
              (String.concat ", " u.ur_deps);
            List.iter
              (fun (name, t) ->
                Printf.printf "    %-12s %d nodes\n" name (Sv_tree.Tree.size t))
              u.ur_trees)
          db.Sv_db.Codebase_db.db_units;
        `Ok ()
  in
  let path = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v (Cmd.info "inspect" ~doc:"Print the contents of a saved Codebase DB.")
    Term.(ret (const run $ path))

let compare_cmd =
  let run app base target jobs ted_cache index_cache fault ted_algo stats =
    with_app app (fun cbs ->
        match (find_codebase ~app cbs base, find_codebase ~app cbs target) with
        | Some b, Some t ->
            with_engine ?index_cache ~ted_algo ~jobs ~ted_cache ~fault
            @@ fun jobs ->
            if stats then Sv_perf.Telemetry.reset_ted ();
            let bix, tix =
              match Sv_core.Index_engine.index_many ~jobs [ b; t ] with
              | [ bix; tix ] -> (bix, tix)
              | _ -> assert false
            in
            print_string (Engine.render_compare ~app ~base ~target bix tix);
            if stats then
              Printf.printf "%s\n"
                (Sv_perf.Telemetry.ted_to_string Sv_perf.Telemetry.ted);
            `Ok ()
        | _ -> fail "unknown model (base %s / target %s)" base target)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Divergence of a target model from a base model.")
    Term.(
      ret
        (const run $ app_arg
        $ model_arg [ "base"; "b" ] "Base model id (the port's origin)."
        $ model_arg [ "target"; "t" ] "Target model id."
        $ jobs_arg $ ted_cache_arg $ index_cache_arg $ fault_arg $ ted_algo_arg
        $ stats_arg))

let cluster_cmd =
  let run app metric jobs ted_cache index_cache fault ted_algo pivots metric_index =
    match Tbmd.metric_of_string metric with
    | None -> fail "unknown metric %S" metric
    | Some m ->
        with_app app (fun cbs ->
            let conf =
              match (pivots, metric_index) with
              | Some k, _ -> Tbmd.Pivots k
              | None, true -> Tbmd.Pivots_auto
              | None, false -> Tbmd.Pivots_off
            in
            Tbmd.set_pivots conf;
            Fun.protect ~finally:(fun () -> Tbmd.set_pivots Tbmd.Pivots_off)
            @@ fun () ->
            with_engine ?index_cache ~ted_algo ~jobs ~ted_cache ~fault
            @@ fun jobs ->
            let ixs = Sv_core.Index_engine.index_many ~jobs cbs in
            print_string (Engine.render_cluster m ixs);
            (match Tbmd.pivot_stats () with
            | Some s ->
                Printf.printf
                  "metric index: %d pivots, %d of %d pairs exact, %d \
                   interval, %d clamp, %d bounded\n"
                  (Array.length s.Sv_metric.Pivots.pivots)
                  s.Sv_metric.Pivots.pivot_pairs s.Sv_metric.Pivots.pairs
                  s.Sv_metric.Pivots.resolved_interval
                  s.Sv_metric.Pivots.resolved_clamp
                  s.Sv_metric.Pivots.bounded_pairs
            | None -> ());
            `Ok ())
  in
  Cmd.v
    (Cmd.info "cluster"
       ~doc:"Pairwise divergence matrix and dendrogram for every model of an app.")
    Term.(
      ret
        (const run $ app_arg $ metric_arg $ jobs_arg $ ted_cache_arg
        $ index_cache_arg $ fault_arg $ ted_algo_arg $ pivots_arg
        $ metric_index_arg))

let nearest_cmd =
  let run app model k metric budget epsilon jobs ted_cache index_cache
      metric_cache =
    match Tbmd.metric_of_string metric with
    | None -> fail "unknown metric %S" metric
    | Some m ->
        if k <= 0 then fail "--k must be at least 1 (got %d)" k
        else if (match budget with Some b -> b < 0 | None -> false) then
          fail "--budget must be non-negative (got %d)" (Option.get budget)
        else if
          match epsilon with
          | Some e -> (not (Float.is_finite e)) || e < 0.
          | None -> false
        then fail "--epsilon must be a finite number >= 0"
        else
          with_app app (fun cbs ->
              match find_codebase ~app cbs model with
              | None -> fail "app %s has no model %s" app model
              | Some cb ->
                  with_engine ?index_cache ?metric_cache ~jobs ~ted_cache
                    ~fault:None
                  @@ fun jobs ->
                  let ixs = Sv_core.Index_engine.index_many ~jobs cbs in
                  let qix = List.assq cb (List.combine cbs ixs) in
                  print_string
                    (Engine.render_nearest ~app ~model ~k ?budget ?epsilon m
                       qix ixs);
                  `Ok ())
  in
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K"
           ~doc:"Number of nearest ports to report (at least 1).")
  in
  Cmd.v
    (Cmd.info "nearest"
       ~doc:"The k ports nearest a model under a divergence metric, \
             answered through the VP-tree metric index (Fig. 15 \
             navigation). Without --budget/--epsilon the results are \
             exactly the brute-force ranking; with either, a best-first \
             search under the given evaluation budget and/or relative \
             slack reports its hits plus an honest exactness ledger.")
    Term.(
      ret
        (const run $ app_arg
        $ model_arg [ "model" ] "Query model id."
        $ k_arg $ metric_arg $ budget_arg $ epsilon_arg $ jobs_arg
        $ ted_cache_arg $ index_cache_arg $ metric_cache_arg))

let phi_cmd =
  let run app =
    print_string
      (Report.cascade
         (Sv_perf.Cascade.cascade ~app:(perf_app_of app)
            ~models:Sv_perf.Pmodel.all_parallel ~platforms:Sv_perf.Platform.all));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "phi" ~doc:"Cascade plot of the performance-portability metric Phi.")
    Term.(ret (const run $ app_arg))

let chart_cmd =
  let run app =
    with_app app (fun cbs ->
        let ixs = List.map Pipeline.index cbs in
        match
          List.find_opt (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = "serial") ixs
        with
        | None -> fail "app %s has no serial baseline for a navigation chart" app
        | Some serial ->
            let pts =
              Sv_core.Navigation.points ~app:(perf_app_of app) ~serial
                ~codebases:
                  (List.filter
                     (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model <> "serial")
                     ixs)
                ~platforms:Sv_perf.Platform.all
            in
            print_string (Sv_core.Navigation.render pts);
            `Ok ())
  in
  Cmd.v
    (Cmd.info "chart" ~doc:"Navigation chart: Phi against TBMD divergence from serial.")
    Term.(ret (const run $ app_arg))

let verify_cmd =
  let run app jobs index_cache =
    with_app app (fun cbs ->
        with_engine ?index_cache ~jobs ~ted_cache:None ~fault:None @@ fun jobs ->
        let all_ok = ref true in
        List.iter
          (fun (ix : Pipeline.indexed) ->
            let ok =
              match ix.Pipeline.ix_verification with
              | Some v -> v.Pipeline.v_ok
              | None -> false
            in
            if not ok then all_ok := false;
            Printf.printf "  %-14s %s\n" ix.Pipeline.ix_model
              (if ok then "PASSED" else "FAILED"))
          (Sv_core.Index_engine.index_many ~jobs cbs);
        if !all_ok then `Ok () else fail "some ports failed verification")
  in
  Cmd.v
    (Cmd.info "verify" ~doc:"Run every port's built-in verification under the interpreter.")
    Term.(ret (const run $ app_arg $ jobs_arg $ index_cache_arg))

let gen_cmd =
  let run seed count mode base spec out list_variants diagnose =
    let spec =
      match spec with
      | Some s -> (
          match Gen.parse_spec s with
          | Some sp -> Ok sp
          | None ->
              Error
                (Printf.sprintf
                   "bad --spec %S (expected gen:<mode>:<base>:<seed>:<count>)" s))
      | None -> (
          if count <= 0 then Error "--count must be positive"
          else
            match Gen.mode_of_name mode with
            | Some m -> Ok { Gen.seed; count; mode = m; base }
            | None ->
                Error (Printf.sprintf "unknown --mode %S (grow, mutate or mixed)" mode))
    in
    match spec with
    | Error m -> fail "%s" m
    | Ok spec -> (
        match diagnose with
        | Some k -> (
            match Gen.diagnose spec k with
            | report ->
                print_string report;
                `Ok ()
            | exception Invalid_argument m -> fail "%s" m)
        | None -> (
            match Gen.generate spec with
            | exception Invalid_argument m -> fail "%s" m
            | variants ->
                let chain v =
                  if v.Gen.v_kind = `Grown then "-"
                  else if v.Gen.v_ops = [] then "(seed reprint)"
                  else
                    String.concat ";"
                      (List.map
                         (fun (op, detail) ->
                           if detail = "" then op
                           else Printf.sprintf "%s(%s)" op detail)
                         v.Gen.v_ops)
                in
                if list_variants then
                  List.iter
                    (fun v ->
                      Printf.printf "%-18s %-7s %-12s tries=%d %s\n" v.Gen.v_id
                        (match v.Gen.v_kind with
                        | `Grown -> "grown"
                        | `Mutated -> "mutated")
                        (Option.value ~default:"-" v.Gen.v_seed_model)
                        v.Gen.v_tries (chain v))
                    variants;
                (match out with
                | None -> ()
                | Some dir ->
                    let mkdir d =
                      try Unix.mkdir d 0o755
                      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
                    in
                    mkdir dir;
                    let manifest = Buffer.create 1024 in
                    Buffer.add_string manifest (Gen.spec_string spec ^ "\n");
                    List.iter
                      (fun v ->
                        let cb = v.Gen.v_cb in
                        let vdir = Filename.concat dir v.Gen.v_id in
                        mkdir vdir;
                        List.iter
                          (fun (name, content) ->
                            let oc = open_out (Filename.concat vdir name) in
                            output_string oc content;
                            close_out oc)
                          cb.Sv_corpus.Emit.files;
                        Buffer.add_string manifest
                          (Printf.sprintf "%s\t%s\t%s\n" v.Gen.v_id
                             cb.Sv_corpus.Emit.main_file (chain v)))
                      variants;
                    let oc = open_out (Filename.concat dir "MANIFEST") in
                    Buffer.output_buffer oc manifest;
                    close_out oc;
                    Printf.printf "wrote %d variants + MANIFEST to %s\n"
                      (List.length variants) dir);
                if not list_variants then begin
                  let grown, mutated =
                    List.partition (fun v -> v.Gen.v_kind = `Grown) variants
                  in
                  Printf.printf
                    "%s: %d variants (%d grown, %d mutated), all verified\n"
                    (Gen.spec_string spec) (List.length variants)
                    (List.length grown) (List.length mutated);
                  List.iter
                    (fun (op, n) -> Printf.printf "  %-18s %d\n" op n)
                    (Gen.op_counts variants)
                end;
                `Ok ()))
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
           ~doc:"PRNG seed. The corpus is a pure function of the spec: same \
                 seed, byte-identical variants.")
  in
  let count =
    Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N"
           ~doc:"Number of variants to generate.")
  in
  let mode =
    Arg.(value & opt string "mixed" & info [ "mode" ] ~docv:"MODE"
           ~doc:"$(b,grow) fresh kernel chains, $(b,mutate) \
                 semantics-preserving rewrites of bundled ports, or \
                 $(b,mixed) (default) alternating both.")
  in
  let base =
    Arg.(value & opt string "babelstream" & info [ "base" ] ~docv:"BASE"
           ~doc:"Seed corpus for mutation (babelstream, babelstream-f, \
                 tealeaf, cloverleaf, minibude or all); model set for \
                 growth (a model id list or all).")
  in
  let spec =
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"SPEC"
           ~doc:"Full spec gen:<mode>:<base>:<seed>:<count>; overrides the \
                 individual flags. The same string is accepted as an app \
                 name by index, cluster, verify and the daemon.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"DIR"
           ~doc:"Write each variant's sources under DIR/<id>/ plus a \
                 MANIFEST (spec line, then one id/main-file/operator-chain \
                 row per variant).")
  in
  let list_variants =
    Arg.(value & flag
         & info [ "list" ]
             ~doc:"Print one line per variant: id, kind, seed model, \
                   attempts, operator chain.")
  in
  let diagnose =
    Arg.(value & opt (some int) None & info [ "diagnose" ] ~docv:"K"
           ~doc:"Replay variant K and print the shrinking report: the \
                 shortest operator-chain prefix that breaks the semantic \
                 check, for every rejected attempt.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate a seeded synthetic corpus of interpreter-verified \
             program variants.")
    Term.(
      ret
        (const run $ seed $ count $ mode $ base $ spec $ out $ list_variants
        $ diagnose))

(* --- service layer --- *)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket"; "s" ] ~env:(Cmd.Env.info "SV_SOCKET") ~docv:"PATH"
           ~doc:"Unix domain socket the daemon listens on (default: a \
                 per-user path under the temp directory).")

let resolve_socket = function
  | Some s -> s
  | None -> Sv_serve.Server.default_socket ()

let engine_config jobs lru_mb high_water ted_cache index_cache metric_cache =
  let base = Engine.default_config () in
  {
    base with
    Engine.jobs;
    lru_budget =
      (match lru_mb with
      | Some mb when mb > 0 -> mb * 1024 * 1024
      | _ -> base.Engine.lru_budget);
    high_water;
    ted_cache_path = ted_cache;
    index_cache_path = index_cache;
    metric_cache_path = metric_cache;
  }

let serve_cmd =
  let run socket jobs lru_mb high_water ted_cache index_cache metric_cache =
    let cfg =
      engine_config jobs lru_mb high_water ted_cache index_cache metric_cache
    in
    let socket = resolve_socket socket in
    match Sv_serve.Server.create ~socket (Engine.create cfg) with
    | exception Failure msg -> fail "%s" msg
    | server ->
        let cfg_jobs = if jobs <= 0 then Sv_sched.Sched.default_jobs () else jobs in
        Printf.printf "sv serve: listening on %s (jobs %d, lru %d MiB, high-water %d)\n%!"
          socket cfg_jobs
          (cfg.Engine.lru_budget / (1024 * 1024))
          high_water;
        Sv_serve.Server.run server;
        Printf.printf "sv serve: shut down\n%!";
        `Ok ()
  in
  let lru_mb =
    Arg.(value & opt (some int) None
         & info [ "lru-mb" ] ~env:(Cmd.Env.info "SV_LRU_MB") ~docv:"MB"
             ~doc:"Resident-codebase LRU budget in MiB (default 64). Evicted \
                   entries spill into the persistent index cache, so \
                   eviction costs a decode, never a re-index.")
  in
  let high_water =
    Arg.(value & opt int 8
         & info [ "high-water" ] ~docv:"N"
             ~doc:"Request-queue admission mark: frames arriving while N \
                   requests are already queued are answered with a typed \
                   overloaded reply instead of being admitted.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the resident divergence daemon on a Unix domain socket.")
    Term.(
      ret
        (const run $ socket_arg $ jobs_arg $ lru_mb $ high_water $ ted_cache_arg
        $ index_cache_arg $ metric_cache_arg))

let client_cmd =
  let run verb socket app model base target metric k budget epsilon jobs
      ted_cache index_cache metric_cache =
    let need name = function
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "verb %S needs --%s" verb name)
    in
    let request =
      match verb with
      | "index" ->
          Result.bind (need "app" app) (fun app ->
              Result.map (fun model -> Protocol.Index { app; model })
                (need "model" model))
      | "compare" ->
          Result.bind (need "app" app) (fun app ->
              Result.bind (need "base" base) (fun base ->
                  Result.map
                    (fun target -> Protocol.Compare { app; base; target })
                    (need "target" target)))
      | "matrix" ->
          Result.map (fun app -> Protocol.Matrix { app; metric }) (need "app" app)
      | "cluster" ->
          Result.map (fun app -> Protocol.Cluster { app; metric }) (need "app" app)
      | "nearest" ->
          Result.bind (need "app" app) (fun app ->
              Result.map
                (fun model ->
                  Protocol.Nearest { app; model; metric; k; budget; epsilon })
                (need "model" model))
      | "status" -> Ok Protocol.Status
      | "shutdown" -> Ok Protocol.Shutdown
      | v ->
          Error
            (Printf.sprintf
               "unknown verb %S (expected index, compare, matrix, cluster, \
                nearest, status or shutdown)"
               v)
    in
    match request with
    | Error msg -> fail "%s" msg
    | Ok req -> (
        let config =
          engine_config jobs None 8 ted_cache index_cache metric_cache
        in
        match
          Sv_serve.Client.call_or_fallback ~socket:(resolve_socket socket)
            ~config req
        with
        | Error msg -> fail "%s" msg
        | Ok (resp, path) -> (
            (match path with
            | `Local ->
                Printf.eprintf "sv client: no daemon; evaluated in-process\n%!"
            | `Daemon -> ());
            match resp with
            | Protocol.Output { output; _ } ->
                print_string output;
                `Ok ()
            | Protocol.Status_of fields ->
                List.iter
                  (fun (k, v) ->
                    Printf.printf "%-14s %s\n" k (Sv_jsonx.Jsonx.to_string v))
                  fields;
                `Ok ()
            | Protocol.Shutdown_ack ->
                print_endline "shutdown acknowledged";
                `Ok ()
            | Protocol.Error { kind; message } ->
                fail "%s: %s" (Protocol.kind_to_string kind) message
            | Protocol.Overloaded { queue; high_water } ->
                fail "daemon overloaded (queue %d at high-water %d); retry later"
                  queue high_water))
  in
  let verb =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"VERB"
           ~doc:"index, compare, matrix, cluster, nearest, status or shutdown.")
  in
  let k_arg =
    Arg.(value & opt int 3 & info [ "k" ] ~docv:"K"
           ~doc:"Number of nearest ports (nearest verb).")
  in
  let opt_model names doc =
    Arg.(value & opt (some string) None & info names ~docv:"MODEL" ~doc)
  in
  let app_opt =
    Arg.(value & opt (some string) None & info [ "app"; "a" ] ~docv:"APP"
           ~doc:"Mini-app: babelstream, babelstream-f, tealeaf, cloverleaf, \
                 minibude.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to the divergence daemon (in-process fallback \
             when no daemon is listening).")
    Term.(
      ret
        (const run $ verb $ socket_arg $ app_opt
        $ opt_model [ "model" ] "Model id (index and nearest verbs)."
        $ opt_model [ "base"; "b" ] "Base model id (compare verb)."
        $ opt_model [ "target"; "t" ] "Target model id (compare verb)."
        $ metric_arg $ k_arg $ budget_arg $ epsilon_arg $ jobs_arg
        $ ted_cache_arg $ index_cache_arg $ metric_cache_arg))

let main_cmd =
  let doc = "SilverVale-ML: tree-based programming-model productivity analysis" in
  Cmd.group (Cmd.info "sv" ~version:"1.0.0" ~doc)
    [
      models_cmd; emit_cmd; index_cmd; inspect_cmd; compare_cmd; cluster_cmd;
      nearest_cmd; phi_cmd; chart_cmd; verify_cmd; gen_cmd; serve_cmd;
      client_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
