module Emit = Sv_corpus.Emit
module Prng = Sv_util.Prng

(* Grammar-directed growth of fresh STREAM-style kernels, composed
   through the same {!Emit} vocabulary the hand-written mini-apps use, so
   every model's scaffolding (CUDA grids, SYCL queues, Kokkos views…)
   comes out idiomatic. Verification is self-contained: an OCaml mirror
   of the kernel sequence computes per-array checksums and the final
   reduction under the exact IEEE semantics the interpreter uses, and the
   emitted program compares against those constants ("Validation
   PASSED" / exit 0), which is what [Pipeline.index] already treats as
   the pass signal. *)

(* Kernel body expressions over index [i]: array reads, embedded
   constants, named scalar parameters, and +/-/*. Division is excluded
   (no zero hazards), and depth is bounded so value magnitudes stay
   finite through a whole kernel chain. *)
type gx =
  | XRead of string
  | XConst of float
  | XIdx
  | XScalar of string * float
  | XBin of [ `Add | `Sub | `Mul ] * gx * gx

let rec render_gx g = function
  | XRead a -> Emit.arr g a "i"
  | XConst f ->
      if f < 0.0 then "(0.0 - " ^ Printer.float_literal (-.f) ^ ")"
      else Printer.float_literal f
  | XIdx -> "i"
  | XScalar (name, _) -> name
  | XBin (op, a, b) ->
      let sym = match op with `Add -> "+" | `Sub -> "-" | `Mul -> "*" in
      Printf.sprintf "(%s %s %s)" (render_gx g a) sym (render_gx g b)

let rec eval_gx arrays i = function
  | XRead a -> (List.assoc a arrays).(i)
  | XConst f -> f
  | XIdx -> float_of_int i
  | XScalar (_, v) -> v
  | XBin (op, a, b) -> (
      let x = eval_gx arrays i a and y = eval_gx arrays i b in
      match op with `Add -> x +. y | `Sub -> x -. y | `Mul -> x *. y)

let rec gx_scalars = function
  | XScalar (name, v) -> [ (name, v) ]
  | XBin (_, a, b) -> gx_scalars a @ gx_scalars b
  | _ -> []

type kernel = { k_name : string; k_target : string; k_expr : gx }

type program = {
  p_n : int;
  p_arrays : string list;
  p_inits : (string * float * float) list;  (** array, c0, c1: a[i] = c0 + c1*i *)
  p_kernels : kernel list;
  p_reduce : gx;
}

(* ------------------------------------------------------------------ *)
(* Random program construction (all draws through the caller's PRNG)   *)

let array_pool = [| "a"; "b"; "c"; "d"; "e" |]

let rand_const rng = float_of_int (Prng.int rng 150 + 25) /. 100.0

let rec rand_expr rng ~arrays ~scalars ~depth =
  let leaf () =
    match Prng.int rng (if scalars = [] then 5 else 6) with
    | 0 | 1 -> XRead (Prng.pick rng (Array.of_list arrays))
    | 2 | 3 -> XConst (rand_const rng)
    | 4 -> XIdx
    | _ -> Prng.pick rng (Array.of_list scalars)
  in
  if depth = 0 then leaf ()
  else
    match Prng.int rng 4 with
    | 0 ->
        XBin
          ( (match Prng.int rng 3 with 0 -> `Add | 1 -> `Sub | _ -> `Mul),
            rand_expr rng ~arrays ~scalars ~depth:(depth - 1),
            rand_expr rng ~arrays ~scalars ~depth:(depth - 1) )
    | _ ->
        XBin
          ( (match Prng.int rng 2 with 0 -> `Add | _ -> `Sub),
            leaf (),
            rand_expr rng ~arrays ~scalars ~depth:(depth - 1) )

let rand_program rng =
  let n = (Prng.int rng 4 + 1) * 256 in
  let n_arrays = Prng.int rng 3 + 2 in
  let arrays = Array.to_list (Array.sub array_pool 0 n_arrays) in
  let inits =
    List.map
      (fun a ->
        let c0 = rand_const rng in
        let c1 = float_of_int (Prng.int rng 200) /. 100000.0 in
        (a, c0, c1))
      arrays
  in
  let n_kernels = Prng.int rng 3 + 1 in
  let kernels =
    List.init n_kernels (fun k ->
        let name = Printf.sprintf "kern%d" k in
        let target = Prng.pick rng (Array.of_list arrays) in
        let scalars =
          if Prng.bool rng then
            [ XScalar (Printf.sprintf "s%d" k, rand_const rng) ]
          else []
        in
        let expr = rand_expr rng ~arrays ~scalars ~depth:2 in
        { k_name = name; k_target = target; k_expr = expr })
  in
  let reduce =
    if n_arrays >= 2 && Prng.bool rng then
      XBin (`Mul, XRead (List.nth arrays 0), XRead (List.nth arrays 1))
    else XRead (List.nth arrays 0)
  in
  { p_n = n; p_arrays = arrays; p_inits = inits; p_kernels = kernels; p_reduce = reduce }

(* ------------------------------------------------------------------ *)
(* Mirror evaluation: the gold the emitted program must reproduce      *)

type gold = { g_checksums : (string * float) list; g_sum : float }

let mirror (p : program) : gold =
  let arrays =
    List.map (fun a -> (a, Array.make p.p_n 0.0)) p.p_arrays
  in
  List.iter
    (fun (a, c0, c1) ->
      let arr = List.assoc a arrays in
      for i = 0 to p.p_n - 1 do
        arr.(i) <- c0 +. (c1 *. float_of_int i)
      done)
    p.p_inits;
  List.iter
    (fun k ->
      let target = List.assoc k.k_target arrays in
      (* same-index map: reads use the value before this iteration's
         write, matching the emitted loop statement order *)
      for i = 0 to p.p_n - 1 do
        target.(i) <- eval_gx arrays i k.k_expr
      done)
    p.p_kernels;
  let sum = ref 0.0 in
  for i = 0 to p.p_n - 1 do
    sum := !sum +. eval_gx arrays i p.p_reduce
  done;
  let checksums =
    List.map
      (fun (a, arr) ->
        let c = ref 0.0 in
        for i = 0 to p.p_n - 1 do
          c := !c +. arr.(i)
        done;
        (a, !c))
      arrays
  in
  { g_checksums = checksums; g_sum = !sum }

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let c_float f =
  if f < 0.0 then "(0.0 - " ^ Printer.float_literal (-.f) ^ ")"
  else Printer.float_literal f

let emit ~variant_id (p : program) g : Emit.codebase =
  let gold = mirror p in
  let n = "n" in
  let k_init =
    Emit.map_kernel g ~name:"init_arrays" ~n ~arrays:p.p_arrays ~scalars:[]
      ~body:
        (List.map
           (fun (a, c0, c1) ->
             Printf.sprintf "%s = %s + (%s * i);" (Emit.arr g a "i") (c_float c0)
               (c_float c1))
           p.p_inits)
  in
  let compute =
    List.map
      (fun k ->
        let scalars = gx_scalars k.k_expr in
        Emit.map_kernel g ~name:k.k_name ~n ~arrays:p.p_arrays
          ~scalars:(List.map (fun (s, _) -> ("double", s)) scalars)
          ~body:
            [
              Printf.sprintf "%s = %s;" (Emit.arr g k.k_target "i")
                (render_gx g k.k_expr);
            ])
      p.p_kernels
  in
  let k_dot =
    Emit.reduce_kernel g ~name:"dot" ~n ~arrays:p.p_arrays ~scalars:[]
      ~result:"sum" ~expr:(render_gx g p.p_reduce)
  in
  let kernels = (k_init :: compute) @ [ k_dot ] in
  let tops = List.concat_map fst kernels in
  let rb a = Emit.read_back g ~host:("h_" ^ a) ~dev:a ~n in
  let staged = rb (List.hd p.p_arrays) <> [] in
  let vread a i =
    if staged then Printf.sprintf "h_%s[%s]" a i else Emit.arr g a i
  in
  let scalar_decls =
    List.concat_map
      (fun k ->
        List.map
          (fun (s, v) -> Printf.sprintf "const double %s = %s;" s (c_float v))
          (gx_scalars k.k_expr))
      p.p_kernels
  in
  let checksum a =
    [
      Printf.sprintf "double chk_%s = 0.0;" a;
      Printf.sprintf "for (int i = 0; i < %s; i++) {" n;
      Printf.sprintf "  chk_%s += %s;" a (vread a "i");
      "}";
    ]
  in
  let check_one lhs gold_v =
    Printf.sprintf
      "if (fabs(%s - (%s)) > tol * (1.0 + fabs(%s))) { errs = errs + 1; }" lhs
      (c_float gold_v) (c_float gold_v)
  in
  let main_body =
    [
      Printf.sprintf "const int n = %d;" p.p_n;
      "double sum = 0.0;";
    ]
    @ List.concat_map (fun a -> Emit.alloc g ~name:a ~n) p.p_arrays
    @ scalar_decls
    @ List.concat_map snd kernels
    @ (if staged then List.concat_map rb p.p_arrays else [])
    @ List.concat_map checksum p.p_arrays
    @ [ "const double tol = 1.0e-6;"; "int errs = 0;" ]
    @ List.map
        (fun (a, gv) -> check_one (Printf.sprintf "chk_%s" a) gv)
        gold.g_checksums
    @ [ check_one "sum" gold.g_sum ]
    @ [
        "if (errs == 0) {";
        "  printf(\"Validation PASSED\\n\");";
        "} else {";
        "  printf(\"Validation FAILED\\n\");";
        "  return 1;";
        "}";
      ]
    @ List.concat_map (fun a -> Emit.dealloc g ~name:a ~n) p.p_arrays
  in
  let header =
    Printf.sprintf "%s: generated kernel chain (%d arrays, %d kernels, n=%d)"
      variant_id (List.length p.p_arrays) (List.length p.p_kernels) p.p_n
  in
  let source = Emit.render ~header_comment:header ~tops ~main_body g in
  Emit.wrap ~app:"gen" g ~source
    ~main_file:(Printf.sprintf "%s.cpp" variant_id)
    ()
