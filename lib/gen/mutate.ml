open Sv_lang_c.Ast
module Loc = Sv_util.Loc
module Prng = Sv_util.Prng
module SS = Set.Make (String)

(* Every operator below is {e conservative}: it only fires on sites whose
   rewrite it can argue is observation-preserving, and the generator
   still re-runs the interpreter on every emitted variant (the semantic
   backstop), so a wrong argument costs a discarded variant, never a
   corrupted corpus. *)

type op =
  | Rename
  | Commute
  | Reassoc
  | SwapStmts
  | Fission
  | Tile
  | Interchange
  | DirectivePermute
  | DirectiveHoist
  | Extract
  | Inline

let all_ops =
  [
    Rename; Commute; Reassoc; SwapStmts; Fission; Tile; Interchange;
    DirectivePermute; DirectiveHoist; Extract; Inline;
  ]

let op_name = function
  | Rename -> "rename"
  | Commute -> "commute"
  | Reassoc -> "reassoc"
  | SwapStmts -> "swap-stmts"
  | Fission -> "fission"
  | Tile -> "tile"
  | Interchange -> "interchange"
  | DirectivePermute -> "directive-permute"
  | DirectiveHoist -> "directive-hoist"
  | Extract -> "extract"
  | Inline -> "inline"

let op_of_name s = List.find_opt (fun o -> op_name o = s) all_ops

type applied = { ap_op : op; ap_site : int; ap_sites : int; ap_detail : string }

let mk_e node = { e = node; eloc = Loc.none }
let mk_s node = { s = node; sloc = Loc.none }

(* ------------------------------------------------------------------ *)
(* Purity and read/write analysis                                      *)

exception Opaque

let pure_builtins =
  SS.of_list
    [
      "sqrt"; "fabs"; "pow"; "exp"; "log"; "cos"; "sin"; "floor"; "ceil";
      "fmin"; "fmax"; "fmod"; "min"; "max"; "abs";
    ]

(* Variables a side-effect-free expression reads; raises [Opaque] on any
   construct that could write or that we cannot see through. *)
let rec expr_reads acc (e : expr) =
  match e.e with
  | IntE _ | FloatE _ | BoolE _ | StrE _ | CharE _ | NullE | SizeofT _ -> acc
  | Var n -> SS.add n acc
  | Unary ((PreInc | PreDec | PostInc | PostDec), _) -> raise Opaque
  | Unary (_, a) -> expr_reads acc a
  | Binary (_, a, b) -> expr_reads (expr_reads acc a) b
  | Ternary (c, a, b) -> expr_reads (expr_reads (expr_reads acc c) a) b
  | Index (a, i) -> expr_reads (expr_reads acc a) i
  | Member (a, _, `Dot) -> expr_reads acc a
  | Member (_, _, `Arrow) -> raise Opaque
  | Cast (_, a) -> expr_reads acc a
  | Call ({ e = Var f; _ }, [], args) when SS.mem f pure_builtins ->
      List.fold_left expr_reads acc args
  | Assign _ | Call _ | KernelLaunch _ | Lambda _ | New _ | InitList _ ->
      raise Opaque

let is_pure e = match expr_reads SS.empty e with _ -> true | exception Opaque -> false
let reads_of e = expr_reads SS.empty e

(* Reads/writes of a "simple" statement (plain assignment or
   declaration); [None] when the statement is not analyzable. *)
let simple_stmt_rw (st : stmt) : (SS.t * SS.t) option =
  try
    match st.s with
    | ExprS { e = Assign (op, lhs, rhs); _ } ->
        let reads = expr_reads SS.empty rhs in
        let reads, writes =
          match lhs.e with
          | Var n ->
              ((if op = None then reads else SS.add n reads), SS.singleton n)
          | Index ({ e = Var a; _ }, idx) ->
              let reads = expr_reads reads idx in
              ((if op = None then reads else SS.add a reads), SS.singleton a)
          | _ -> raise Opaque
        in
        Some (reads, writes)
    | Decl (_, names) ->
        let writes = SS.of_list (List.map fst names) in
        let reads =
          List.fold_left
            (fun acc (_, init) ->
              match init with None -> acc | Some e -> expr_reads acc e)
            SS.empty names
        in
        Some (reads, writes)
    | _ -> None
  with Opaque -> None

(* Scalar names written directly ([x = ..], [x++]) vs. array bases
   written through an index ([a\[i\] = ..]) anywhere under a statement
   list. Raises [Opaque] on address-taking (aliases defeat the split). *)
let deep_writes (body : stmt list) : SS.t * SS.t =
  let direct = ref SS.empty and element = ref SS.empty in
  let note_lhs (lhs : expr) =
    match lhs.e with
    | Var n -> direct := SS.add n !direct
    | Index ({ e = Var a; _ }, _) -> element := SS.add a !element
    | Member ({ e = Var o; _ }, _, _) -> direct := SS.add o !direct
    | _ -> raise Opaque
  in
  let expr m (e : expr) =
    (match e.e with
    | Assign (_, lhs, _) -> note_lhs lhs
    | Unary ((PreInc | PreDec | PostInc | PostDec), t) -> note_lhs t
    | Unary (AddrOf, _) -> raise Opaque
    | _ -> ());
    Ast_map.default_expr m e
  in
  ignore (Ast_map.map_stmts { Ast_map.default with expr } body);
  (!direct, !element)

let contains_return (body : stmt list) =
  let found = ref false in
  let stmt m (st : stmt) =
    (match st.s with Return _ -> found := true | _ -> ());
    Ast_map.default_stmt m st
  in
  ignore (Ast_map.map_stmts { Ast_map.default with stmt } body);
  !found

(* All identifiers occurring anywhere under a function — the freshness
   universe for renames. *)
let idents_of_func (f : func) : SS.t =
  let acc = ref SS.empty in
  let add n = acc := SS.add n !acc in
  List.iter (fun p -> add p.p_name) f.f_params;
  let expr m (e : expr) =
    (match e.e with Var n -> add n | Member (_, n, _) -> add n | _ -> ());
    Ast_map.default_expr m e
  in
  let stmt m (st : stmt) =
    (match st.s with
    | Decl (_, names) -> List.iter (fun (n, _) -> add n) names
    | _ -> ());
    Ast_map.default_stmt m st
  in
  (match f.f_body with
  | Some body -> ignore (Ast_map.map_stmts { Ast_map.default with expr; stmt } body)
  | None -> ());
  !acc

(* Flat name -> type environment of a function (params + every local
   declaration); a name declared at two different types poisons to
   [None]. *)
let func_env (f : func) : (string, ty option) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  let add n t =
    match Hashtbl.find_opt tbl n with
    | None -> Hashtbl.replace tbl n (Some t)
    | Some (Some t') when t' = t -> ()
    | Some _ -> Hashtbl.replace tbl n None
  in
  List.iter (fun p -> add p.p_name p.p_ty) f.f_params;
  let stmt m (st : stmt) =
    (match st.s with
    | Decl (t, names) -> List.iter (fun (n, _) -> add n t) names
    | _ -> ());
    Ast_map.default_stmt m st
  in
  (match f.f_body with
  | Some body -> ignore (Ast_map.map_stmts { Ast_map.default with stmt } body)
  | None -> ());
  tbl

let rec int_typed env (e : expr) =
  match e.e with
  | IntE _ -> true
  | Var n -> (
      match Hashtbl.find_opt env n with
      | Some (Some (TInt | TLong | TSizeT)) -> true
      | _ -> false)
  | Binary ((Add | Sub | Mul | Div | Mod), a, b) ->
      int_typed env a && int_typed env b
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Canonical counted loops                                             *)

type canon = {
  c_ity : ty;
  c_iv : string;
  c_lo : int;
  c_bound : expr;
  c_body : stmt list;
}

let step_incr iv (step : expr) =
  match step.e with
  | Unary ((PreInc | PostInc), { e = Var v; _ }) -> v = iv
  | Assign (Some Add, { e = Var v; _ }, { e = IntE 1; _ }) -> v = iv
  | _ -> false

let canon_loop (st : stmt) : canon option =
  match st.s with
  | For
      ( Some { s = Decl (((TInt | TLong | TSizeT) as ity), [ (iv, Some { e = IntE lo; _ }) ]); _ },
        Some { e = Binary (Lt, { e = Var iv2; _ }, bound); _ },
        Some step,
        body )
    when iv = iv2 && step_incr iv step && is_pure bound ->
      Some { c_ity = ity; c_iv = iv; c_lo = lo; c_bound = bound; c_body = body }
  | _ -> None

let rebuild_canon c =
  mk_s
    (For
       ( Some (mk_s (Decl (c.c_ity, [ (c.c_iv, Some (mk_e (IntE c.c_lo))) ]))),
         Some (mk_e (Binary (Lt, mk_e (Var c.c_iv), c.c_bound))),
         Some (mk_e (Unary (PostInc, mk_e (Var c.c_iv)))),
         c.c_body ))

(* The loop's data accesses touch only [a\[iv\]] cells (exact index
   variable) and read-only scalars: every split of the body is then
   observation-equivalent (all dependences are same-iteration). *)
let same_index_only c =
  let ok = ref true in
  let expr m (e : expr) =
    (match e.e with
    | Index ({ e = Var _; _ }, { e = Var v; _ }) when v = c.c_iv -> ()
    | Index _ -> ok := false
    | _ -> ());
    Ast_map.default_expr m e
  in
  let all_assign_to_elem =
    List.for_all
      (fun (st : stmt) ->
        match st.s with
        | ExprS { e = Assign (_, { e = Index ({ e = Var _; _ }, { e = Var v; _ }); _ }, rhs); _ }
          ->
            v = c.c_iv && is_pure rhs
        | _ -> false)
      c.c_body
  in
  ignore (Ast_map.map_stmts { Ast_map.default with expr } c.c_body);
  all_assign_to_elem && !ok

(* ------------------------------------------------------------------ *)
(* Site-counting framework                                             *)

(* Each operator is a single traversal that increments a site counter at
   every candidate and rewrites exactly the site whose ordinal equals
   [target] ([-1] counts without rewriting). The RNG is consulted only
   at the chosen site, so the counting pass never perturbs the stream. *)
let make_counter target =
  let n = ref 0 in
  let here () =
    let k = !n in
    incr n;
    k = target
  in
  (n, here)

let fresh_name rng ~suffix ~used base =
  let rec go () =
    let cand = Printf.sprintf "%s_%s%d" base suffix (Prng.int rng 900 + 100) in
    if SS.mem cand used then go () else cand
  in
  go ()

let top_level_names (u : tunit) =
  List.fold_left
    (fun acc t ->
      match t with
      | Func f -> SS.add f.f_name acc
      | GlobalVar (_, _, n, _, _) -> SS.add n acc
      | Record r -> SS.add r.r_name acc
      | Using _ | TopDirective _ -> acc)
    SS.empty u.t_tops

(* --- commute: a OP b -> b OP a for pure operands of + and * (IEEE
   addition and multiplication are commutative bitwise) --- *)
let run_commute ~rng:_ ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let expr m (e : expr) =
    let e = Ast_map.default_expr m e in
    match e.e with
    | Binary (((Add | Mul) as op), a, b) when is_pure a && is_pure b ->
        if here () then (
          detail := Printf.sprintf "commute %s" (binop_name op);
          { e with e = Binary (op, b, a) })
        else e
    | _ -> e
  in
  let u' = Ast_map.map_tunit { Ast_map.default with expr } u in
  (!n, u')

(* --- reassoc: (a OP b) OP c <-> a OP (b OP c), integer-typed operands
   only (native OCaml ints neither trap nor round) --- *)
let run_reassoc ~rng:_ ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let rewrite_func f =
    match f.f_body with
    | None -> f
    | Some body ->
        let env = func_env f in
        let expr m (e : expr) =
          let e = Ast_map.default_expr m e in
          match e.e with
          | Binary (((Add | Mul) as op), { e = Binary (op2, a, b); _ }, c)
            when op = op2 && int_typed env a && int_typed env b && int_typed env c
                 && is_pure a && is_pure b && is_pure c ->
              if here () then (
                detail := Printf.sprintf "reassoc-right %s" (binop_name op);
                { e with e = Binary (op, a, mk_e (Binary (op, b, c))) })
              else e
          | Binary (((Add | Mul) as op), a, { e = Binary (op2, b, c); _ })
            when op = op2 && int_typed env a && int_typed env b && int_typed env c
                 && is_pure a && is_pure b && is_pure c ->
              if here () then (
                detail := Printf.sprintf "reassoc-left %s" (binop_name op);
                { e with e = Binary (op, mk_e (Binary (op, a, b)), c) })
              else e
          | _ -> e
        in
        { f with f_body = Some (Ast_map.map_stmts { Ast_map.default with expr } body) }
  in
  let tops =
    List.map (function Func f -> Func (rewrite_func f) | t -> t) u.t_tops
  in
  (!n, { u with t_tops = tops })

(* --- rename: one local (param or declared name) of one function,
   uniformly, to a fresh name --- *)
let run_rename ~rng ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let globals = top_level_names u in
  let rename_in_func f old fresh =
    let expr m (e : expr) =
      let e = Ast_map.default_expr m e in
      match e.e with Var v when v = old -> { e with e = Var fresh } | _ -> e
    in
    let stmt m (st : stmt) =
      let st = Ast_map.default_stmt m st in
      match st.s with
      | Decl (t, names) ->
          let names =
            List.map (fun (nm, init) -> ((if nm = old then fresh else nm), init)) names
          in
          { st with s = Decl (t, names) }
      | _ -> st
    in
    let mapper = { Ast_map.default with expr; stmt } in
    {
      f with
      f_params =
        List.map
          (fun p -> if p.p_name = old then { p with p_name = fresh } else p)
          f.f_params;
      f_body = Option.map (Ast_map.map_stmts mapper) f.f_body;
    }
  in
  let rewrite_func f =
    match f.f_body with
    | None -> f
    | Some _ ->
        let env = func_env f in
        let candidates =
          List.filter
            (fun nm -> not (SS.mem nm globals))
            (List.sort_uniq String.compare
               (Hashtbl.fold (fun k _ acc -> k :: acc) env []))
        in
        List.fold_left
          (fun f nm ->
            if here () then (
              let used = SS.union globals (idents_of_func f) in
              let fresh = fresh_name rng ~suffix:"r" ~used nm in
              detail := Printf.sprintf "rename %s->%s" nm fresh;
              rename_in_func f nm fresh)
            else f)
          f candidates
  in
  let tops =
    List.map (function Func f -> Func (rewrite_func f) | t -> t) u.t_tops
  in
  (!n, { u with t_tops = tops })

(* --- swap-stmts: exchange two adjacent simple statements with disjoint
   read/write footprints --- *)
let run_swap ~rng:_ ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let independent a b =
    match (simple_stmt_rw a, simple_stmt_rw b) with
    | Some (ra, wa), Some (rb, wb) ->
        SS.is_empty (SS.inter wa wb)
        && SS.is_empty (SS.inter wa rb)
        && SS.is_empty (SS.inter ra wb)
    | _ -> false
  in
  let stmts m ss =
    let ss = Ast_map.default_stmts m ss in
    let rec scan = function
      | a :: b :: rest when independent a b ->
          if here () then (
            detail := "swap adjacent stmts";
            b :: a :: rest)
          else a :: scan (b :: rest)
      | st :: rest -> st :: scan rest
      | [] -> []
    in
    scan ss
  in
  let u' = Ast_map.map_tunit { Ast_map.default with stmts } u in
  (!n, u')

(* --- fission: split a same-index-only counted loop into two loops ---
   All dependences are same-iteration (proved by [same_index_only]), so
   any split preserves the final store. *)
let run_fission ~rng ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let stmts m ss =
    let ss = Ast_map.default_stmts m ss in
    let rec scan = function
      | st :: rest -> (
          match canon_loop st with
          | Some c when List.length c.c_body >= 2 && same_index_only c ->
              if here () then (
                let cut = Prng.range rng 1 (List.length c.c_body - 1) in
                detail := Printf.sprintf "fission at %d/%d" cut (List.length c.c_body);
                let before = List.filteri (fun i _ -> i < cut) c.c_body in
                let after = List.filteri (fun i _ -> i >= cut) c.c_body in
                rebuild_canon { c with c_body = before }
                :: rebuild_canon { c with c_body = after }
                :: rest)
              else st :: scan rest
          | _ -> st :: scan rest)
      | [] -> []
    in
    scan ss
  in
  let u' = Ast_map.map_tunit { Ast_map.default with stmts } u in
  (!n, u')

(* --- tile: strip-mine a counted loop; the iteration sequence is
   unchanged, so this is unconditionally observation-preserving as long
   as the body never writes the index or the bound --- *)
let run_tile ~rng ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let stmt m (st : stmt) =
    let st = Ast_map.default_stmt m st in
    match canon_loop st with
    | Some c -> (
        match deep_writes c.c_body with
        | exception Opaque -> st
        | direct, _ ->
            let bound_vars = reads_of c.c_bound in
            if SS.mem c.c_iv direct || not (SS.is_empty (SS.inter bound_vars direct))
            then st
            else if here () then (
              let tile = Prng.pick rng [| 4; 8; 16; 32 |] in
              let used = SS.add c.c_iv (SS.union bound_vars direct) in
              let outer = fresh_name rng ~suffix:"t" ~used c.c_iv in
              detail := Printf.sprintf "tile %s by %d" c.c_iv tile;
              let inner =
                mk_s
                  (For
                     ( Some (mk_s (Decl (c.c_ity, [ (c.c_iv, Some (mk_e (Var outer))) ]))),
                       Some
                         (mk_e
                            (Binary
                               ( LAnd,
                                 mk_e
                                   (Binary
                                      ( Lt,
                                        mk_e (Var c.c_iv),
                                        mk_e (Binary (Add, mk_e (Var outer), mk_e (IntE tile)))
                                      )),
                                 mk_e (Binary (Lt, mk_e (Var c.c_iv), c.c_bound)) ))),
                       Some (mk_e (Unary (PostInc, mk_e (Var c.c_iv)))),
                       c.c_body ))
              in
              mk_s
                (For
                   ( Some (mk_s (Decl (c.c_ity, [ (outer, Some (mk_e (IntE c.c_lo))) ]))),
                     Some (mk_e (Binary (Lt, mk_e (Var outer), c.c_bound))),
                     Some (mk_e (Assign (Some Add, mk_e (Var outer), mk_e (IntE tile)))),
                     [ inner ] )))
            else st)
    | None -> st
  in
  let u' = Ast_map.map_tunit { Ast_map.default with stmt } u in
  (!n, u')

(* --- interchange: swap two perfectly nested rectangular counted loops
   whose iterations are fully independent (writes only to array cells
   addressed by both index variables; written arrays never read; no
   scalar writes) --- *)
let run_interchange ~rng:_ ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let body_independent outer inner =
    let written = ref SS.empty in
    let ok =
      List.for_all
        (fun (st : stmt) ->
          match st.s with
          | ExprS { e = Assign (None, { e = Index ({ e = Var a; _ }, idx); _ }, rhs); _ }
            when is_pure idx && is_pure rhs ->
              let iv = reads_of idx in
              written := SS.add a !written;
              SS.mem outer.c_iv iv && SS.mem inner.c_iv iv
          | _ -> false)
        inner.c_body
    in
    ok
    && List.for_all
         (fun (st : stmt) ->
           match st.s with
           | ExprS { e = Assign (None, { e = Index (_, idx); _ }, rhs); _ } ->
               SS.is_empty (SS.inter !written (reads_of rhs))
               && SS.is_empty (SS.inter !written (reads_of idx))
           | _ -> false)
         inner.c_body
  in
  let stmt m (st : stmt) =
    let st = Ast_map.default_stmt m st in
    match canon_loop st with
    | Some outer -> (
        match outer.c_body with
        | [ only ] -> (
            match canon_loop only with
            | Some inner
              when (not (SS.mem outer.c_iv (reads_of inner.c_bound)))
                   && (not (SS.mem inner.c_iv (reads_of outer.c_bound)))
                   && body_independent outer inner ->
                if here () then (
                  detail :=
                    Printf.sprintf "interchange %s<->%s" outer.c_iv inner.c_iv;
                  rebuild_canon
                    {
                      inner with
                      c_body = [ rebuild_canon { outer with c_body = inner.c_body } ];
                    })
                else st
            | _ -> st)
        | _ -> st)
    | None -> st
  in
  let u' = Ast_map.map_tunit { Ast_map.default with stmt } u in
  (!n, u')

(* --- directive clause permutation: reorder the clause tail after the
   construct head words (clause order is semantically irrelevant; the
   interpreter executes directives serially either way) --- *)
let head_words =
  SS.of_list
    [
      "parallel"; "for"; "simd"; "target"; "teams"; "distribute"; "loop";
      "kernels"; "data"; "enter"; "exit"; "declare"; "end"; "do"; "sections";
      "section"; "single"; "task"; "serial";
    ]

let split_head clauses =
  let rec go acc = function
    | ((w, None) as c) :: rest when SS.mem w head_words -> go (c :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  go [] clauses

let run_dir_permute ~rng ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let rewrite_directive d =
    let head, tail = split_head d.d_clauses in
    if List.length tail >= 2 && here () then (
      let arr = Array.of_list tail in
      Prng.shuffle rng arr;
      let tail' = Array.to_list arr in
      let tail' =
        if tail' = tail then List.tl tail @ [ List.hd tail ] else tail'
      in
      detail := Printf.sprintf "permute %d clauses" (List.length tail);
      { d with d_clauses = head @ tail' })
    else d
  in
  let stmt m (st : stmt) =
    let st = Ast_map.default_stmt m st in
    match st.s with
    | Directive (d, body) -> { st with s = Directive (rewrite_directive d, body) }
    | _ -> st
  in
  let u' = Ast_map.map_tunit { Ast_map.default with stmt } u in
  (!n, u')

(* --- directive hoist/fuse: [parallel for] <-> [parallel { for }]
   (and the OpenACC [parallel loop] analogue). The interpreter runs
   directive bodies serially, so both spellings execute identically. *)
let run_dir_hoist ~rng:_ ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let stmt m (st : stmt) =
    let st = Ast_map.default_stmt m st in
    match st.s with
    | Directive (d, Some body) -> (
        match d.d_clauses with
        | ("parallel", None) :: (((("for" | "loop"), None) :: _) as inner_clauses) ->
            if here () then (
              detail := "hoist parallel";
              let inner = { d with d_clauses = inner_clauses } in
              {
                st with
                s =
                  Directive
                    ( { d with d_clauses = [ ("parallel", None) ] },
                      Some (mk_s (Directive (inner, Some body))) );
              })
            else st
        | [ ("parallel", None) ] -> (
            match body.s with
            | Directive (({ d_clauses = (("for" | "loop"), None) :: _; _ } as inner), Some governed)
              when inner.d_origin = d.d_origin ->
                if here () then (
                  detail := "fuse parallel";
                  {
                    st with
                    s =
                      Directive
                        ( { d with d_clauses = ("parallel", None) :: inner.d_clauses },
                          Some governed );
                  })
                else st
            | _ -> st)
        | _ -> st)
    | _ -> st
  in
  let u' = Ast_map.map_tunit { Ast_map.default with stmt } u in
  (!n, u')

(* --- extract: outline a counted loop into a fresh void function ---
   Arrays travel as pointers (the interpreter's array values alias, like
   C pointers), scalars by value (hence must be read-only inside). *)
let scalar_ty = function
  | TBool | TChar | TInt | TLong | TSizeT | TFloat | TDouble -> true
  | _ -> false

let rec base_passable = function
  | TPtr t -> ( match t with TConst t -> scalar_ty t | t -> scalar_ty t)
  | TArr (t, _) -> base_passable (TPtr t)
  | TConst t -> base_passable t
  | t -> scalar_ty t

let param_ty_of = function TArr (t, _) -> TPtr t | t -> t

(* Free variables of a loop, in first-occurrence order, minus callee
   positions and names bound inside. *)
let loop_free_vars (c : canon) =
  let order = ref [] in
  let seen = ref SS.empty in
  let bound = ref (SS.singleton c.c_iv) in
  let note n =
    if (not (SS.mem n !seen)) && not (SS.mem n !bound) then (
      seen := SS.add n !seen;
      order := n :: !order)
  in
  let expr m (e : expr) =
    match e.e with
    | Var n ->
        note n;
        e
    | Call ({ e = Var _; _ }, _, args) ->
        (* a named callee is a global function reference, not a free
           variable to pass — visit only the arguments *)
        List.iter (fun a -> ignore (Ast_map.map_expr m a)) args;
        e
    | _ -> Ast_map.default_expr m e
  in
  let stmt m (st : stmt) =
    (match st.s with
    | Decl (_, names) -> List.iter (fun (n, _) -> bound := SS.add n !bound) names
    | _ -> ());
    Ast_map.default_stmt m st
  in
  ignore (Ast_map.map_stmts { Ast_map.default with expr; stmt } c.c_body);
  ignore (Ast_map.map_expr { Ast_map.default with expr; stmt } c.c_bound);
  List.rev !order

let run_extract ~rng ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let globals = top_level_names u in
  let new_tops = ref [] in
  let rewrite_func f =
    match f.f_body with
    | None -> f
    | Some _ when List.exists (fun a -> a = AGlobal || a = ADevice) f.f_attrs -> f
    | Some body ->
        let env = func_env f in
        let stmt m (st : stmt) =
          let st = Ast_map.default_stmt m st in
          match canon_loop st with
          | Some c -> (
              match deep_writes c.c_body with
              | exception Opaque -> st
              | direct, _ when contains_return c.c_body -> ignore direct; st
              | direct, _ ->
                  let free = loop_free_vars c in
                  (* a direct write ([v = ..], [v++]) to any free name
                     would be lost across the by-value call boundary (or
                     rebind a pointer copy), so reject those outright *)
                  let params_ok =
                    List.for_all
                      (fun v ->
                        (not (SS.mem v direct))
                        &&
                        match Hashtbl.find_opt env v with
                        | Some (Some t) -> base_passable t
                        | Some None -> false
                        | None -> true)
                      free
                  in
                  let typed_free =
                    List.filter (fun v -> Hashtbl.mem env v) free
                  in
                  if not params_ok then st
                  else if here () then (
                    let used = SS.union globals (idents_of_func f) in
                    let fname = fresh_name rng ~suffix:"kex" ~used "fn" in
                    detail :=
                      Printf.sprintf "extract %s(%s)" fname
                        (String.concat "," typed_free);
                    let params =
                      List.map
                        (fun v ->
                          let t =
                            match Hashtbl.find_opt env v with
                            | Some (Some t) -> param_ty_of t
                            | _ -> assert false
                          in
                          { p_ty = t; p_name = v; p_loc = Loc.none })
                        typed_free
                    in
                    new_tops :=
                      Func
                        {
                          f_attrs = [];
                          f_tparams = [];
                          f_ret = TVoid;
                          f_name = fname;
                          f_params = params;
                          f_body = Some [ rebuild_canon c ];
                          f_loc = Loc.none;
                        }
                      :: !new_tops;
                    mk_s
                      (ExprS
                         (mk_e
                            (Call
                               ( mk_e (Var fname),
                                 [],
                                 List.map (fun v -> mk_e (Var v)) typed_free )))))
                  else st)
          | None -> st
        in
        { f with f_body = Some (Ast_map.map_stmts { Ast_map.default with stmt } body) }
  in
  let tops =
    List.concat_map
      (function
        | Func f ->
            new_tops := [];
            let f' = rewrite_func f in
            List.rev !new_tops @ [ Func f' ]
        | t -> [ t ])
      u.t_tops
  in
  (!n, { u with t_tops = tops })

(* --- inline: substitute a call to a local void helper with its body,
   parameters replaced by the (pure) argument expressions and body
   locals freshened --- *)
let run_inline ~rng ~target ~detail (u : tunit) =
  let n, here = make_counter target in
  let inlinable =
    List.filter_map
      (function
        | Func f -> (
            match f.f_body with
            | Some body
              when f.f_ret = TVoid && f.f_tparams = []
                   && List.for_all (fun a -> a = AInline || a = AStatic) f.f_attrs
                   && not (contains_return body) -> (
                match deep_writes body with
                | exception Opaque -> None
                | direct, _
                  when List.exists (fun p -> SS.mem p.p_name direct) f.f_params ->
                    None
                | _ -> Some (f.f_name, f))
            | _ -> None)
        | _ -> None)
      u.t_tops
  in
  let substitute body subst rename =
    let expr m (e : expr) =
      match e.e with
      | Var v -> (
          match List.assoc_opt v subst with
          | Some arg -> arg
          | None -> (
              match List.assoc_opt v rename with
              | Some v' -> { e with e = Var v' }
              | None -> e))
      | _ -> Ast_map.default_expr m e
    in
    let stmt m (st : stmt) =
      let st = Ast_map.default_stmt m st in
      match st.s with
      | Decl (t, names) ->
          let names =
            List.map
              (fun (nm, init) ->
                ((match List.assoc_opt nm rename with Some v -> v | None -> nm), init))
              names
          in
          { st with s = Decl (t, names) }
      | _ -> st
    in
    Ast_map.map_stmts { Ast_map.default with expr; stmt } body
  in
  let local_names body =
    let acc = ref [] in
    let stmt m (st : stmt) =
      (match st.s with
      | Decl (_, names) -> List.iter (fun (nm, _) -> acc := nm :: !acc) names
      | _ -> ());
      Ast_map.default_stmt m st
    in
    ignore (Ast_map.map_stmts { Ast_map.default with stmt } body);
    List.sort_uniq String.compare !acc
  in
  let rewrite_caller caller =
    match caller.f_body with
    | None -> caller
    | Some body ->
        let stmt m (st : stmt) =
          let st = Ast_map.default_stmt m st in
          match st.s with
          | ExprS { e = Call ({ e = Var fn; _ }, [], args); _ } -> (
              match List.assoc_opt fn inlinable with
              | Some callee
                when callee.f_name <> caller.f_name
                     && List.length args = List.length callee.f_params
                     && List.for_all is_pure args ->
                  if here () then (
                    detail := Printf.sprintf "inline %s" fn;
                    let cbody = Option.get callee.f_body in
                    let used =
                      SS.union (top_level_names u)
                        (SS.union (idents_of_func caller) (idents_of_func callee))
                    in
                    let rename =
                      List.map
                        (fun nm -> (nm, fresh_name rng ~suffix:"i" ~used nm))
                        (local_names cbody)
                    in
                    let subst =
                      List.map2 (fun p a -> (p.p_name, a)) callee.f_params args
                    in
                    { st with s = Block (substitute cbody subst rename) })
                  else st
              | _ -> st)
          | _ -> st
        in
        { caller with f_body = Some (Ast_map.map_stmts { Ast_map.default with stmt } body) }
  in
  let tops =
    List.map (function Func f -> Func (rewrite_caller f) | t -> t) u.t_tops
  in
  (!n, { u with t_tops = tops })

(* ------------------------------------------------------------------ *)

let runner_of = function
  | Rename -> run_rename
  | Commute -> run_commute
  | Reassoc -> run_reassoc
  | SwapStmts -> run_swap
  | Fission -> run_fission
  | Tile -> run_tile
  | Interchange -> run_interchange
  | DirectivePermute -> run_dir_permute
  | DirectiveHoist -> run_dir_hoist
  | Extract -> run_extract
  | Inline -> run_inline

let sites op (u : tunit) =
  let detail = ref "" in
  let rng = Prng.create 0 in
  let count, _ = (runner_of op) ~rng ~target:(-1) ~detail u in
  count

let apply rng op (u : tunit) : (tunit * applied) option =
  let total = sites op u in
  if total = 0 then None
  else
    let site = Prng.int rng total in
    let detail = ref "" in
    let _, u' = (runner_of op) ~rng ~target:site ~detail u in
    Some (u', { ap_op = op; ap_site = site; ap_sites = total; ap_detail = !detail })
