open Sv_lang_c.Ast
module Loc = Sv_util.Loc

type t = {
  expr : t -> expr -> expr;
  stmt : t -> stmt -> stmt;
  stmts : t -> stmt list -> stmt list;
  loc : Loc.t -> Loc.t;
}

let map_expr m e = m.expr m e
let map_stmt m s = m.stmt m s
let map_stmts m ss = m.stmts m ss

let default_expr m (e : expr) : expr =
  let go = map_expr m in
  let node =
    match e.e with
    | (IntE _ | FloatE _ | BoolE _ | StrE _ | CharE _ | NullE | Var _ | SizeofT _)
      as atom ->
        atom
    | Unary (op, a) -> Unary (op, go a)
    | Binary (op, a, b) -> Binary (op, go a, go b)
    | Assign (op, l, r) -> Assign (op, go l, go r)
    | Ternary (c, a, b) -> Ternary (go c, go a, go b)
    | Call (callee, targs, args) -> Call (go callee, targs, List.map go args)
    | KernelLaunch (callee, cfg, args) ->
        KernelLaunch (go callee, List.map go cfg, List.map go args)
    | Index (a, i) -> Index (go a, go i)
    | Member (a, f, k) -> Member (go a, f, k)
    | Lambda (cap, params, body) ->
        let params =
          List.map (fun p -> { p with p_loc = m.loc p.p_loc }) params
        in
        Lambda (cap, params, map_stmts m body)
    | Cast (t, a) -> Cast (t, go a)
    | New (t, n) -> New (t, Option.map go n)
    | InitList es -> InitList (List.map go es)
  in
  { e = node; eloc = m.loc e.eloc }

let default_stmt m (s : stmt) : stmt =
  let go_e = map_expr m in
  let go_ss = map_stmts m in
  let node =
    match s.s with
    | Decl (t, names) ->
        Decl (t, List.map (fun (n, init) -> (n, Option.map go_e init)) names)
    | ExprS e -> ExprS (go_e e)
    | If (c, a, b) -> If (go_e c, go_ss a, go_ss b)
    | For (init, cond, step, body) ->
        For
          ( Option.map (map_stmt m) init,
            Option.map go_e cond,
            Option.map go_e step,
            go_ss body )
    | While (c, body) -> While (go_e c, go_ss body)
    | DoWhile (body, c) -> DoWhile (go_ss body, go_e c)
    | Return e -> Return (Option.map go_e e)
    | (Break | Continue) as leaf -> leaf
    | Block body -> Block (go_ss body)
    | Directive (d, body) ->
        Directive ({ d with d_loc = m.loc d.d_loc }, Option.map (map_stmt m) body)
    | DeleteS (e, arr) -> DeleteS (go_e e, arr)
  in
  { s = node; sloc = m.loc s.sloc }

let default_stmts m ss = List.map (map_stmt m) ss

let default =
  {
    expr = default_expr;
    stmt = default_stmt;
    stmts = default_stmts;
    loc = Fun.id;
  }

let map_func m (f : func) : func =
  {
    f with
    f_params = List.map (fun p -> { p with p_loc = m.loc p.p_loc }) f.f_params;
    f_body = Option.map (map_stmts m) f.f_body;
    f_loc = m.loc f.f_loc;
  }

let map_top m (t : top) : top =
  match t with
  | Func f -> Func (map_func m f)
  | Record r -> Record { r with r_loc = m.loc r.r_loc }
  | GlobalVar (attrs, ty, name, init, loc) ->
      GlobalVar (attrs, ty, name, Option.map (map_expr m) init, m.loc loc)
  | Using (name, loc) -> Using (name, m.loc loc)
  | TopDirective d -> TopDirective { d with d_loc = m.loc d.d_loc }

let map_tunit m (u : tunit) : tunit =
  { u with t_tops = List.map (map_top m) u.t_tops }

let strip_locs_tunit u = map_tunit { default with loc = (fun _ -> Loc.none) } u

let equal_tunit a b = strip_locs_tunit a = strip_locs_tunit b
