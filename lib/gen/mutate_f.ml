module Prng = Sv_util.Prng
module Dsyn = Sv_util.Directive_syntax

(* MiniF mutations work at the source-line level (the Fortran frontend
   has no printer), which keeps them honest: only rewrites that are easy
   to prove at that level are attempted — uniform identifier renames and
   directive clause permutations — and the interpreter backstop still
   re-verifies every variant. *)

type applied = { af_op : string; af_detail : string }

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

(* Replace whole-identifier occurrences of [old] outside 'quoted'
   strings. *)
let replace_ident ~old ~fresh src =
  let b = Buffer.create (String.length src) in
  let n = String.length src in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\'' then (
      (* copy the quoted string verbatim *)
      Buffer.add_char b c;
      incr i;
      while !i < n && src.[!i] <> '\'' do
        Buffer.add_char b src.[!i];
        incr i
      done;
      if !i < n then (
        Buffer.add_char b '\'';
        incr i))
    else if is_ident_start c then (
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      Buffer.add_string b (if word = old then fresh else word))
    else (
      Buffer.add_char b c;
      incr i)
  done;
  Buffer.contents b

let contains_ident ~ident src =
  let marked = replace_ident ~old:ident ~fresh:"\x00" src in
  String.contains marked '\x00'

(* Declared names: everything after a [::] on a declaration line, split
   on commas, dimension suffixes stripped. *)
let declared_names src =
  let names = ref [] in
  String.split_on_char '\n' src
  |> List.iter (fun line ->
         match String.index_opt line ':' with
         | Some i
           when i + 1 < String.length line
                && line.[i + 1] = ':'
                && not (String.length (String.trim line) > 0
                        && (String.trim line).[0] = '!') ->
             let rhs = String.sub line (i + 2) (String.length line - i - 2) in
             (* strip dimension parens so "a(:), b(:)" yields a, b *)
             let depth = ref 0 in
             let cleaned = Buffer.create 16 in
             String.iter
               (fun c ->
                 if c = '(' then incr depth
                 else if c = ')' then decr depth
                 else if !depth = 0 then Buffer.add_char cleaned c)
               rhs;
             String.split_on_char ',' (Buffer.contents cleaned)
             |> List.iter (fun piece ->
                    let nm = String.trim piece in
                    if
                      nm <> ""
                      && is_ident_start nm.[0]
                      && String.for_all is_ident_char nm
                      && not (List.mem nm !names)
                    then names := !names @ [ nm ])
         | _ -> ())
  |> ignore;
  !names

let head_words =
  [
    "parallel"; "do"; "loop"; "kernels"; "target"; "teams"; "distribute";
    "taskloop"; "single"; "end"; "concurrent"; "simd"; "data"; "enter"; "exit";
  ]

(* Directive lines whose clause tail (after the construct head words) has
   at least two reorderable clauses. *)
let directive_sites src =
  String.split_on_char '\n' src
  |> List.mapi (fun i line -> (i, line))
  |> List.filter_map (fun (i, line) ->
         let t = String.trim line in
         let sentinel p = String.length t > String.length p && String.sub t 0 (String.length p) = p in
         if (sentinel "!$omp " || sentinel "!$acc ") && not (String.contains t '&')
         then
           let prefix = String.sub t 0 6 in
           let body = String.sub t 6 (String.length t - 6) in
           let clauses = Dsyn.split body in
           let rec split_head acc = function
             | ((w, None) as c) :: rest when List.mem w head_words ->
                 split_head (c :: acc) rest
             | rest -> (List.rev acc, rest)
           in
           let head, tail = split_head [] clauses in
           if List.length tail >= 2 then Some (i, prefix, head, tail) else None
         else None)

let render_clauses cs =
  String.concat " "
    (List.map (fun (w, a) -> match a with None -> w | Some x -> w ^ x) cs)

let rename_op rng src =
  let candidates = declared_names src in
  if candidates = [] then None
  else
    let old = Prng.pick rng (Array.of_list candidates) in
    let rec fresh () =
      let cand = Printf.sprintf "%s_r%d" old (Prng.int rng 900 + 100) in
      if contains_ident ~ident:cand src then fresh () else cand
    in
    let fresh = fresh () in
    Some
      ( replace_ident ~old ~fresh src,
        { af_op = "rename"; af_detail = Printf.sprintf "%s->%s" old fresh } )

let permute_op rng src =
  match directive_sites src with
  | [] -> None
  | sites ->
      let i, prefix, head, tail = Prng.pick rng (Array.of_list sites) in
      let arr = Array.of_list tail in
      Prng.shuffle rng arr;
      let tail' = Array.to_list arr in
      let tail' = if tail' = tail then List.tl tail @ [ List.hd tail ] else tail' in
      let lines = String.split_on_char '\n' src in
      let lines =
        List.mapi
          (fun j line ->
            if j = i then
              let indent_len =
                let k = ref 0 in
                while !k < String.length line && line.[!k] = ' ' do incr k done;
                !k
              in
              String.make indent_len ' ' ^ prefix
              ^ render_clauses (head @ tail')
            else line)
          lines
      in
      Some
        ( String.concat "\n" lines,
          {
            af_op = "directive-permute";
            af_detail = Printf.sprintf "line %d" (i + 1);
          } )

let apply rng src : (string * applied) option =
  match Prng.int rng 2 with
  | 0 -> ( match rename_op rng src with Some r -> Some r | None -> permute_op rng src)
  | _ -> ( match permute_op rng src with Some r -> Some r | None -> rename_op rng src)
