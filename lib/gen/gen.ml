module Emit = Sv_corpus.Emit
module Prng = Sv_util.Prng
module Parser = Sv_lang_c.Parser
module Preproc = Sv_lang_c.Preproc
module Interp_c = Sv_interp.Interp_c
module Interp_f = Sv_interp.Interp_f

type mode = Grow | Mutate | Mixed

type spec = { seed : int; count : int; mode : mode; base : string }

let mode_name = function Grow -> "grow" | Mutate -> "mutate" | Mixed -> "mixed"

let mode_of_name = function
  | "grow" -> Some Grow
  | "mutate" -> Some Mutate
  | "mixed" -> Some Mixed
  | _ -> None

let spec_string s =
  Printf.sprintf "gen:%s:%s:%d:%d" (mode_name s.mode) s.base s.seed s.count

let parse_spec str =
  match String.split_on_char ':' str with
  | [ "gen"; m; base; seed; count ] -> (
      match (mode_of_name m, int_of_string_opt seed, int_of_string_opt count) with
      | Some mode, Some seed, Some count when count > 0 && base <> "" ->
          Some { seed; count; mode; base }
      | _ -> None)
  | _ -> None

type variant = {
  v_id : string;
  v_cb : Emit.codebase;
  v_kind : [ `Grown | `Mutated ];
  v_seed_model : string option;
  v_ops : (string * string) list;  (** (operator, detail) chain, in order *)
  v_tries : int;  (** attempts before the accepted variant (1 = first try) *)
}

(* ------------------------------------------------------------------ *)
(* Base corpora for mutation mode                                      *)

let base_corpus = function
  | "all" -> Sv_corpus.Babelstream.all () @ Sv_corpus.Babelstream_f.all ()
  | name -> (
      match Sv_corpus.Registry.corpus name with
      | Some cbs -> cbs
      | None -> invalid_arg (Printf.sprintf "Gen: unknown base corpus %S" name))

(* ------------------------------------------------------------------ *)
(* Semantic check: observable behaviour (result + printed output)      *)

let run_c (cb : Emit.codebase) =
  let resolve name = List.assoc_opt name cb.files in
  let units =
    List.map
      (fun f ->
        let src = List.assoc f cb.files in
        let pp = Preproc.run ~resolve ~defines:cb.defines ~file:f src in
        Parser.parse_tokens ~file:f pp.Preproc.tokens)
      (cb.main_file :: cb.extra_units)
  in
  Interp_c.run units

let obs_c = Interp_c.observation

let run_f (cb : Emit.codebase) =
  let src = List.assoc cb.main_file cb.files in
  Interp_f.run (Sv_lang_f.Parser.parse ~file:cb.main_file src)

let obs_f = Interp_f.observation

let contains_substring ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* ------------------------------------------------------------------ *)
(* C mutation pipeline                                                 *)

(* Parse the main unit standalone (no include splicing), so every top
   belongs to the main file and the whole unit can be printed back.
   Object-like macros from the model shims (e.g. [KOKKOS_LAMBDA]) are
   prepended textually — the preprocessor treats them exactly as it
   would when splicing, and function-like defines are ignored on both
   paths. *)
let parse_main (cb : Emit.codebase) =
  let src = List.assoc cb.main_file cb.files in
  let shim_defines =
    List.concat_map
      (fun (f, content) ->
        if f = cb.Emit.main_file then []
        else
          String.split_on_char '\n' content
          |> List.filter (fun l ->
                 Sv_util.Xstring.starts_with ~prefix:"#define" (String.trim l)))
      cb.Emit.files
  in
  let src = String.concat "\n" (shim_defines @ [ src ]) in
  let pp =
    Preproc.run ~resolve:(fun _ -> None) ~defines:cb.defines ~file:cb.main_file src
  in
  Parser.parse_tokens ~file:cb.main_file pp.Preproc.tokens

let preprocessor_lines (cb : Emit.codebase) =
  let src = List.assoc cb.main_file cb.files in
  String.split_on_char '\n' src
  |> List.filter (fun l ->
         let t = String.trim l in
         String.length t > 0 && t.[0] = '#')

let rebuild_main (cb : Emit.codebase) ~id source =
  {
    cb with
    Emit.model = id;
    model_name = id;
    files =
      List.map
        (fun (f, c) -> if f = cb.Emit.main_file then (f, source) else (f, c))
        cb.Emit.files;
  }

let render_variant_source includes (u : Sv_lang_c.Ast.tunit) =
  String.concat "\n" includes ^ "\n\n" ^ Printer.tops u.Sv_lang_c.Ast.t_tops

(* One mutation attempt: 1–3 operator applications, each recorded with
   the intermediate AST it produced (the trace [diagnose] shrinks on). *)
let c_attempt sub (seed_ast : Sv_lang_c.Ast.tunit) =
  let rounds = 1 + Prng.int sub 3 in
  let ops = Array.of_list Mutate.all_ops in
  let rec go u trace r =
    if r = 0 then (u, List.rev trace)
    else
      let rec try_ops tries =
        if tries = 0 then None
        else
          let op = Prng.pick sub ops in
          match Mutate.apply sub op u with
          | Some r -> Some r
          | None -> try_ops (tries - 1)
      in
      match try_ops 8 with
      | None -> (u, List.rev trace)
      | Some (u', ap) -> go u' ((ap, u') :: trace) (r - 1)
  in
  go seed_ast [] rounds

let max_tries = 20

let c_variant ~cb ~seed_ast ~includes ~seed_obs ~id sub =
  let check u =
    let cb' = rebuild_main cb ~id (render_variant_source includes u) in
    match obs_c (run_c cb') with
    | obs -> if obs = seed_obs then Some cb' else None
    | exception _ -> None
  in
  let rec attempt t =
    if t > max_tries then
      (* reprint of the seed: identical AST, so identical behaviour —
         guarantees progress with an empty operator chain *)
      match check seed_ast with
      | Some cb' -> (cb', [], max_tries)
      | None ->
          failwith
            (Printf.sprintf "Gen: seed reprint of %s/%s fails its own check"
               cb.Emit.app cb.Emit.model)
    else
      let u, trace = c_attempt sub seed_ast in
      match check u with
      | Some cb' ->
          ( cb',
            List.map
              (fun (ap, _) -> (Mutate.op_name ap.Mutate.ap_op, ap.Mutate.ap_detail))
              trace,
            t )
      | None -> attempt (t + 1)
  in
  attempt 1

(* ------------------------------------------------------------------ *)
(* F mutation pipeline                                                 *)

let f_variant ~cb ~seed_obs ~id sub =
  let seed_src = List.assoc cb.Emit.main_file cb.Emit.files in
  let check src =
    let cb' = rebuild_main cb ~id src in
    match obs_f (run_f cb') with
    | obs -> if obs = seed_obs then Some cb' else None
    | exception _ -> None
  in
  let attempt_once () =
    let rounds = 1 + Prng.int sub 2 in
    let rec go src chain r =
      if r = 0 then (src, List.rev chain)
      else
        match Mutate_f.apply sub src with
        | Some (src', ap) ->
            go src' ((ap.Mutate_f.af_op, ap.Mutate_f.af_detail) :: chain) (r - 1)
        | None -> (src, List.rev chain)
    in
    go seed_src [] rounds
  in
  let rec attempt t =
    if t > max_tries then
      match check seed_src with
      | Some cb' -> (cb', [], max_tries)
      | None -> failwith (Printf.sprintf "Gen: F seed %s fails reprint" cb.Emit.model)
    else
      let src, chain = attempt_once () in
      match check src with
      | Some cb' -> (cb', chain, t)
      | None -> attempt (t + 1)
  in
  attempt 1

(* ------------------------------------------------------------------ *)
(* Grow pipeline                                                       *)

let grow_models base =
  match base with
  | "all" -> Emit.all_ids
  | models -> (
      let ids = String.split_on_char ',' models in
      match List.filter (fun id -> Emit.gen_for id = None) ids with
      | [] -> ids
      | bad ->
          invalid_arg
            (Printf.sprintf "Gen: unknown grow models %s" (String.concat "," bad)))

let grow_variant ~model ~id sub =
  let g =
    match Emit.gen_for model with
    | Some g -> g
    | None -> invalid_arg (Printf.sprintf "Gen: unknown model %s" model)
  in
  let rec attempt t =
    if t > max_tries then
      failwith (Printf.sprintf "Gen: grown variant %s never validated" id)
    else
      let p = Grow.rand_program sub in
      let cb = Grow.emit ~variant_id:id p g in
      match run_c cb with
      | o
        when o.Interp_c.result = Ok (Interp_c.VInt 0)
             && contains_substring ~sub:"Validation PASSED" o.Interp_c.output ->
          ({ cb with Emit.model = id; model_name = id }, t)
      | _ -> attempt (t + 1)
      | exception _ -> attempt (t + 1)
  in
  attempt 1

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

(* Every variant runs off its own sub-generator seeded from the master
   stream, so variant [k] is reproducible in isolation (the [diagnose]
   hook depends on this) and no variant's number of draws perturbs its
   neighbours. *)
let variant_seeds spec =
  let master = Prng.create spec.seed in
  Array.init spec.count (fun _ -> Int64.to_int (Prng.next_int64 master) land max_int)

type seed_entry = {
  se_cb : Emit.codebase;
  se_ast : Sv_lang_c.Ast.tunit option;  (** None for MiniF seeds *)
  se_includes : string list;
  se_obs_c : ((Interp_c.value, string) result * string) option Lazy.t;
  se_obs_f : ((unit, string) result * string) option Lazy.t;
}

let seed_entries base =
  List.map
    (fun (cb : Emit.codebase) ->
      match cb.Emit.lang with
      | `C ->
          {
            se_cb = cb;
            se_ast = Some (parse_main cb);
            se_includes = preprocessor_lines cb;
            se_obs_c = lazy (try Some (obs_c (run_c cb)) with _ -> None);
            se_obs_f = lazy None;
          }
      | `F ->
          {
            se_cb = cb;
            se_ast = None;
            se_includes = [];
            se_obs_c = lazy None;
            se_obs_f = lazy (try Some (obs_f (run_f cb)) with _ -> None);
          })
    (base_corpus base)

let mutate_one entries sub k =
  let entry = List.nth entries (Prng.int sub (List.length entries)) in
  let cb = entry.se_cb in
  let id = Printf.sprintf "m%04d-%s" k cb.Emit.model in
  match entry.se_ast with
  | Some seed_ast ->
      let seed_obs =
        match Lazy.force entry.se_obs_c with
        | Some o -> o
        | None -> failwith (Printf.sprintf "Gen: seed %s does not run" cb.Emit.model)
      in
      let cb', ops, tries =
        c_variant ~cb ~seed_ast ~includes:entry.se_includes ~seed_obs ~id sub
      in
      {
        v_id = id;
        v_cb = cb';
        v_kind = `Mutated;
        v_seed_model = Some cb.Emit.model;
        v_ops = ops;
        v_tries = tries;
      }
  | None ->
      let seed_obs =
        match Lazy.force entry.se_obs_f with
        | Some o -> o
        | None -> failwith (Printf.sprintf "Gen: F seed %s does not run" cb.Emit.model)
      in
      let cb', ops, tries = f_variant ~cb ~seed_obs ~id sub in
      {
        v_id = id;
        v_cb = cb';
        v_kind = `Mutated;
        v_seed_model = Some cb.Emit.model;
        v_ops = ops;
        v_tries = tries;
      }

let grow_one models sub k =
  let model = List.nth models (k mod List.length models) in
  let id = Printf.sprintf "g%04d-%s" k model in
  let cb, tries = grow_variant ~model ~id sub in
  {
    v_id = id;
    v_cb = cb;
    v_kind = `Grown;
    v_seed_model = None;
    v_ops = [];
    v_tries = tries;
  }

let generate spec =
  let seeds = variant_seeds spec in
  match spec.mode with
  | Mutate ->
      let entries = seed_entries spec.base in
      List.init spec.count (fun k -> mutate_one entries (Prng.create seeds.(k)) k)
  | Grow ->
      let models = grow_models spec.base in
      List.init spec.count (fun k -> grow_one models (Prng.create seeds.(k)) k)
  | Mixed ->
      let entries = seed_entries spec.base in
      let models = Emit.all_ids in
      List.init spec.count (fun k ->
          let sub = Prng.create seeds.(k) in
          if k mod 2 = 0 then mutate_one entries sub k else grow_one models sub k)

let codebases spec = List.map (fun v -> v.v_cb) (generate spec)

(* Registry lookups ("gen:" app names) funnel through here, and a
   resident daemon resolves the app on every request — generation is
   deterministic, so memoising by spec string keeps a server from
   re-deriving (and re-verifying) the same corpus per request. The table
   is reset once it holds a handful of corpora to bound memory. *)
let memo : (string, Emit.codebase list) Hashtbl.t = Hashtbl.create 4

let corpus_of_spec str =
  match Hashtbl.find_opt memo str with
  | Some cbs -> Some cbs
  | None -> (
      match parse_spec str with
      | Some s -> (
          try
            let cbs = codebases s in
            if Hashtbl.length memo >= 8 then Hashtbl.reset memo;
            Hashtbl.add memo str cbs;
            Some cbs
          with Invalid_argument _ -> None)
      | None -> None)

let op_counts variants =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun v ->
      List.iter
        (fun (op, _) ->
          Hashtbl.replace tbl op (1 + Option.value ~default:0 (Hashtbl.find_opt tbl op)))
        v.v_ops)
    variants;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

(* ------------------------------------------------------------------ *)
(* Shrinking diagnosis                                                 *)

(* Replays variant [k] of a mutate-mode spec and, for every failing
   attempt, finds the shortest operator-chain prefix that already breaks
   the semantic check — the generator's equivalent of QuickCheck
   shrinking, printed with everything needed to reproduce: spec, variant
   seed, seed model, and the (operator, site, detail) chain. *)
let diagnose spec k =
  if k < 0 || k >= spec.count then invalid_arg "Gen.diagnose: variant out of range";
  let seeds = variant_seeds spec in
  let buf = Buffer.create 256 in
  let outf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  outf "spec %s variant %d (sub-seed %d)" (spec_string spec) k seeds.(k);
  let entries = seed_entries spec.base in
  let sub = Prng.create seeds.(k) in
  let entry = List.nth entries (Prng.int sub (List.length entries)) in
  let cb = entry.se_cb in
  outf "seed codebase %s/%s" cb.Emit.app cb.Emit.model;
  (match entry.se_ast with
  | None -> outf "MiniF seed: source-level ops, no prefix shrinking"
  | Some seed_ast -> (
      match Lazy.force entry.se_obs_c with
      | None -> outf "seed itself fails to run"
      | Some seed_obs ->
          let id = Printf.sprintf "m%04d-%s" k cb.Emit.model in
          let check u =
            let cb' =
              rebuild_main cb ~id (render_variant_source entry.se_includes u)
            in
            match obs_c (run_c cb') with
            | obs -> obs = seed_obs
            | exception _ -> false
          in
          let rec attempts t =
            if t > max_tries then outf "all attempts exhausted"
            else
              let u, trace = c_attempt sub seed_ast in
              let chain =
                String.concat " ; "
                  (List.map
                     (fun (ap, _) ->
                       Printf.sprintf "%s[site %d/%d: %s]"
                         (Mutate.op_name ap.Mutate.ap_op) ap.Mutate.ap_site
                         ap.Mutate.ap_sites ap.Mutate.ap_detail)
                     trace)
              in
              if check u then
                outf "attempt %d PASSED: %s" t
                  (if chain = "" then "(empty chain)" else chain)
              else (
                outf "attempt %d FAILED: %s" t chain;
                (* shrink: first failing prefix *)
                let rec first_fail i = function
                  | [] -> ()
                  | (ap, u_i) :: rest ->
                      if not (check u_i) then
                        outf
                          "  minimal failing prefix: %d op(s), last = %s[site %d/%d: %s]"
                          i (Mutate.op_name ap.Mutate.ap_op) ap.Mutate.ap_site
                          ap.Mutate.ap_sites ap.Mutate.ap_detail
                      else first_fail (i + 1) rest
                in
                first_fail 1 trace;
                attempts (t + 1))
          in
          attempts 1));
  Buffer.contents buf
