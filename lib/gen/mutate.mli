(** Semantics-preserving mutation operators over the MiniC AST.

    Each operator enumerates its candidate sites in deterministic
    traversal order and rewrites exactly one, chosen by the caller's
    PRNG. Operators are conservative — they fire only where the rewrite
    is arguably observation-preserving (IEEE-exact commutations,
    same-iteration loop splits, serial-interpreter-neutral directive
    edits…) — and the generator re-verifies every variant through the
    interpreter regardless, so a failed argument costs a discarded
    variant, never a wrong corpus entry. *)

type op =
  | Rename             (** uniform fresh rename of one local *)
  | Commute            (** [a + b -> b + a], [a * b -> b * a], pure operands *)
  | Reassoc            (** [(a+b)+c <-> a+(b+c)], integer-typed only *)
  | SwapStmts          (** exchange adjacent independent simple statements *)
  | Fission            (** split a same-index counted loop in two *)
  | Tile               (** strip-mine a counted loop (order-preserving) *)
  | Interchange        (** swap independent perfectly nested counted loops *)
  | DirectivePermute   (** reorder a pragma's clause tail *)
  | DirectiveHoist     (** [parallel for] <-> [parallel { for }] *)
  | Extract            (** outline a counted loop into a fresh function *)
  | Inline             (** substitute a call to a local void helper *)

val all_ops : op list
val op_name : op -> string
val op_of_name : string -> op option

type applied = {
  ap_op : op;
  ap_site : int;    (** ordinal of the rewritten site *)
  ap_sites : int;   (** total candidate sites of this operator *)
  ap_detail : string;
}

val sites : op -> Sv_lang_c.Ast.tunit -> int
(** Number of candidate sites (no RNG consumed). *)

val apply :
  Sv_util.Prng.t ->
  op ->
  Sv_lang_c.Ast.tunit ->
  (Sv_lang_c.Ast.tunit * applied) option
(** Rewrite one PRNG-chosen site; [None] when the operator has no site
    in this unit. The RNG is consulted only for the site choice and any
    rewrite-local draws (fresh names, split points, tile sizes). *)
