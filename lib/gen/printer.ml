open Sv_lang_c.Ast

(* Re-parse fidelity is the whole game here (see the interface). Two
   parser facts carry the design:
   - a parenthesised expression is returned as the inner node, so parens
     are free insurance: every non-atomic operand gets a pair, which
     neutralises precedence, the template-call backtrack on [<], and the
     [x * y;] declaration ambiguity;
   - the declaration backtrack claims an expression statement only when
     it starts with a (possibly qualified) name followed by a name or
     [*]; atoms and parenthesised forms can never match it. *)

let indent_unit = "  "

let float_literal f =
  if not (Float.is_finite f) then invalid_arg "Printer.float_literal: not finite";
  if f < 0.0 then invalid_arg "Printer.float_literal: negative literal";
  let shortest =
    (* shortest decimal spelling that round-trips to the same double *)
    let s15 = Printf.sprintf "%.15g" f in
    if float_of_string s15 = f then s15
    else
      let s16 = Printf.sprintf "%.16g" f in
      if float_of_string s16 = f then s16 else Printf.sprintf "%.17g" f
  in
  (* the lexer only makes a FloatLit of "d.d" or "dEd": "1." alone would
     lex as IntLit followed by Op [.] *)
  let has_marker =
    String.exists (fun c -> c = '.' || c = 'e' || c = 'E') shortest
  in
  if has_marker then
    (* "1.e3" never appears from %g; "1.5" and "1e+06" both lex fine *)
    shortest
  else shortest ^ ".0"

let int_literal n =
  if n < 0 then invalid_arg "Printer.int_literal: negative literal";
  string_of_int n

let char_literal c =
  match c with
  | '\n' -> "'\\n'"
  | '\t' -> "'\\t'"
  | '\\' -> "'\\\\'"
  | c when Char.code c >= 32 && Char.code c <= 126 && c <> '\'' ->
      Printf.sprintf "'%c'" c
  | _ -> invalid_arg "Printer.char_literal: unprintable char"

let unop_spelling = function
  | Neg -> "-"
  | Not -> "!"
  | BitNot -> "~"
  | PreInc | PostInc -> "++"
  | PreDec | PostDec -> "--"
  | Deref -> "*"
  | AddrOf -> "&"

let binop_spelling = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"
  | BitAnd -> "&" | BitOr -> "|" | BitXor -> "^" | Shl -> "<<" | Shr -> ">>"

let rec ty t =
  match t with
  | TVoid -> "void"
  | TBool -> "bool"
  | TChar -> "char"
  | TInt -> "int"
  | TLong -> "long"
  | TSizeT -> "size_t"
  | TFloat -> "float"
  | TDouble -> "double"
  | TAuto -> "auto"
  | TPtr t -> ty t ^ "*"
  | TRef t -> ty t ^ "&"
  | TConst t -> "const " ^ ty t
  | TNamed (name, []) -> name
  | TNamed (name, targs) ->
      let args = String.concat ", " (List.map targ targs) in
      (* nested template arguments need the [> >] split (the parser does
         not handle [>>]) *)
      let args =
        if String.length args > 0 && args.[String.length args - 1] = '>' then
          args ^ " "
        else args
      in
      Printf.sprintf "%s<%s>" name args
  | TArr (t, _) ->
      (* the [n] suffix belongs to the declarator; callers print it *)
      ty t

and targ = function TyArg t -> ty t | IntArg n -> string_of_int n

(* Atoms are self-delimiting and safe to print bare in any operand
   position; everything else is wrapped in parentheses (AST-neutral). *)
let is_atom (e : expr) =
  match e.e with
  | IntE _ | FloatE _ | BoolE _ | StrE _ | CharE _ | NullE | Var _ | SizeofT _ ->
      true
  | _ -> false

let rec expr (e : expr) = if is_atom e then bare e else "(" ^ bare e ^ ")"

and bare (e : expr) =
  match e.e with
  | IntE n -> int_literal n
  | FloatE f -> float_literal f
  | BoolE b -> if b then "true" else "false"
  | StrE s -> "\"" ^ String.escaped s ^ "\""
  | CharE c -> char_literal c
  | NullE -> "nullptr"
  | Var name -> name
  | Unary ((PostInc | PostDec) as op, a) -> expr a ^ unop_spelling op
  | Unary (op, a) -> unop_spelling op ^ expr a
  | Binary (op, a, b) ->
      Printf.sprintf "%s %s %s" (expr a) (binop_spelling op) (expr b)
  | Assign (None, l, r) -> Printf.sprintf "%s = %s" (expr l) (expr r)
  | Assign (Some op, l, r) ->
      Printf.sprintf "%s %s= %s" (expr l) (binop_spelling op) (expr r)
  | Ternary (c, a, b) ->
      Printf.sprintf "%s ? %s : %s" (expr c) (expr a) (expr b)
  | Call (callee, [], args) ->
      Printf.sprintf "%s(%s)" (expr callee) (String.concat ", " (List.map expr args))
  | Call (callee, targs, args) ->
      let targ_str = String.concat ", " (List.map targ targs) in
      let targ_str =
        if String.length targ_str > 0 && targ_str.[String.length targ_str - 1] = '>'
        then targ_str ^ " "
        else targ_str
      in
      Printf.sprintf "%s<%s>(%s)" (expr callee) targ_str
        (String.concat ", " (List.map expr args))
  | KernelLaunch (callee, cfg, args) ->
      Printf.sprintf "%s<<<%s>>>(%s)" (expr callee)
        (String.concat ", " (List.map expr cfg))
        (String.concat ", " (List.map expr args))
  | Index (a, i) -> Printf.sprintf "%s[%s]" (expr a) (expr i)
  | Member (a, f, `Dot) -> Printf.sprintf "%s.%s" (expr a) f
  | Member (a, f, `Arrow) -> Printf.sprintf "%s->%s" (expr a) f
  | Lambda (cap, params, body) ->
      let intro = match cap with ByValue -> "[=]" | ByRef -> "[&]" in
      let ps =
        String.concat ", "
          (List.map (fun p -> ty p.p_ty ^ " " ^ p.p_name) params)
      in
      let body_lines = List.concat_map (stmt ~indent:0) body in
      Printf.sprintf "%s(%s) { %s }" intro ps (String.concat " " body_lines)
  | Cast (t, a) -> Printf.sprintf "(%s)%s" (ty t) (expr a)
  | New (t, Some n) -> Printf.sprintf "new %s[%s]" (ty t) (expr n)
  | New (t, None) -> "new " ^ ty t
  | InitList es -> "{" ^ String.concat ", " (List.map expr es) ^ "}"
  | SizeofT t -> Printf.sprintf "sizeof(%s)" (ty t)

(* Declarations: the shared base type plus per-declarator array suffix
   and initialiser. Constructor-style initialisers were parsed into
   [InitList], which the brace spelling reproduces exactly. *)
and decl_line t names =
  let base, suffix =
    match t with
    | TArr (elem, Some n) -> (ty elem, Printf.sprintf "[%d]" n)
    | TArr (elem, None) -> (ty elem, "[]")
    | t -> (ty t, "")
  in
  let declarator (name, init) =
    let init_str =
      match init with None -> "" | Some e -> " = " ^ expr e
    in
    name ^ suffix ^ init_str
  in
  Printf.sprintf "%s %s;" base (String.concat ", " (List.map declarator names))

and directive (d : directive) =
  let origin = match d.d_origin with `Omp -> "omp" | `Acc -> "acc" in
  let clause (word, args) =
    match args with None -> word | Some a -> word ^ a
  in
  let body = String.concat " " (List.map clause d.d_clauses) in
  if body = "" then Printf.sprintf "#pragma %s" origin
  else Printf.sprintf "#pragma %s %s" origin body

and stmt ~indent (s : stmt) : string list =
  let pfx = String.concat "" (List.init indent (fun _ -> indent_unit)) in
  let line l = pfx ^ l in
  let block body = List.concat_map (stmt ~indent:(indent + 1)) body in
  match s.s with
  | Decl (t, names) -> [ line (decl_line t names) ]
  | ExprS e ->
      (* the operand form already parenthesises every shape the
         declaration backtrack could claim ([x * y;], [T x(..);]) *)
      [ line (expr e ^ ";") ]
  | If (c, then_, else_) ->
      [ line (Printf.sprintf "if (%s) {" (expr c)) ]
      @ block then_
      @ (if else_ = [] then [ line "}" ]
         else (line "} else {" :: block else_) @ [ line "}" ])
  | For (init, cond, step, body) ->
      let init_str =
        match init with
        | None -> ";"
        | Some { s = Decl (t, names); _ } -> decl_line t names
        | Some { s = ExprS e; _ } -> expr e ^ ";"
        | Some _ -> invalid_arg "Printer.stmt: non-decl/expr for-initialiser"
      in
      let cond_str = match cond with None -> "" | Some e -> " " ^ expr e in
      let step_str = match step with None -> "" | Some e -> " " ^ expr e in
      [ line (Printf.sprintf "for (%s%s;%s) {" init_str cond_str step_str) ]
      @ block body @ [ line "}" ]
  | While (c, body) ->
      [ line (Printf.sprintf "while (%s) {" (expr c)) ] @ block body @ [ line "}" ]
  | DoWhile (body, c) ->
      [ line "do {" ] @ block body
      @ [ line (Printf.sprintf "} while (%s);" (expr c)) ]
  | Return None -> [ line "return;" ]
  | Return (Some e) -> [ line (Printf.sprintf "return %s;" (expr e)) ]
  | Break -> [ line "break;" ]
  | Continue -> [ line "continue;" ]
  | Block body -> [ line "{" ] @ block body @ [ line "}" ]
  | Directive (d, body) -> (
      line (directive d)
      ::
      (match body with
      | None -> []
      | Some b -> stmt ~indent b))
  | DeleteS (e, arr) ->
      [ line (Printf.sprintf "delete%s %s;" (if arr then "[]" else "") (expr e)) ]

let attr_spelling = function
  | AGlobal -> "__global__"
  | ADevice -> "__device__"
  | AHost -> "__host__"
  | AShared -> "__shared__"
  | AStatic -> "static"
  | AInline -> "inline"
  | AExtern -> "extern"
  | AConstant -> "__constant__"

let top (t : top) : string list =
  match t with
  | Func f ->
      let tmpl =
        if f.f_tparams = [] then ""
        else
          Printf.sprintf "template<%s> "
            (String.concat ", "
               (List.map (fun p -> "typename " ^ p) f.f_tparams))
      in
      let attrs =
        String.concat "" (List.map (fun a -> attr_spelling a ^ " ") f.f_attrs)
      in
      let params =
        String.concat ", "
          (List.map (fun p -> ty p.p_ty ^ " " ^ p.p_name) f.f_params)
      in
      let head =
        Printf.sprintf "%s%s%s %s(%s)" tmpl attrs (ty f.f_ret) f.f_name params
      in
      (match f.f_body with
      | None -> [ head ^ ";" ]
      | Some body ->
          [ head ^ " {" ] @ List.concat_map (stmt ~indent:1) body @ [ "}" ])
  | Record r ->
      if r.r_fields = [] then [ Printf.sprintf "struct %s;" r.r_name ]
      else
        [ Printf.sprintf "struct %s {" r.r_name ]
        @ List.map
            (fun (ft, fname) ->
              Printf.sprintf "%s%s %s;" indent_unit (ty ft) fname)
            r.r_fields
        @ [ "};" ]
  | GlobalVar (attrs, t, name, init, _) ->
      let attr_str =
        String.concat "" (List.map (fun a -> attr_spelling a ^ " ") attrs)
      in
      let base, suffix =
        match t with
        | TArr (elem, Some n) -> (ty elem, Printf.sprintf "[%d]" n)
        | TArr (elem, None) -> (ty elem, "[]")
        | t -> (ty t, "")
      in
      let init_str = match init with None -> "" | Some e -> " = " ^ expr e in
      [ Printf.sprintf "%s%s %s%s%s;" attr_str base name suffix init_str ]
  | Using (name, _) -> [ Printf.sprintf "using namespace %s;" name ]
  | TopDirective d -> [ directive d ]

let tops ts =
  String.concat "\n" (List.concat_map (fun t -> top t @ [ "" ]) ts)
