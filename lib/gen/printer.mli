(** MiniC AST pretty-printer, the inverse of [Sv_lang_c.Parser].

    The generator mutates parsed ASTs and must re-emit source that the
    standard pipeline (preprocessor, parser, interpreter) consumes, so
    the single contract of this module is {e re-parse fidelity}: for any
    AST the parser can produce, [Parser.parse ~file (print ast)] yields a
    structurally identical AST (locations excepted).

    The strategy leans on two parser properties verified in
    [test_gen.ml]:
    - parenthesised expressions return the inner node unchanged, so
      every non-atomic operand is printed inside parentheses (which
      sidesteps precedence, template-argument backtracking and the
      [x * y;] declaration ambiguity at once);
    - expression statements are printed with an outer parenthesis
      whenever the declaration backtrack could otherwise claim them. *)

val ty : Sv_lang_c.Ast.ty -> string
(** Type spelling; array declarators ([TArr]) print only their element
    type — the [\[n\]] suffix belongs to the declarator and is emitted
    by {!stmt}/{!top}. *)

val expr : Sv_lang_c.Ast.expr -> string
(** Operand form: atoms (literals, names) bare, everything else
    parenthesised. *)

val stmt : indent:int -> Sv_lang_c.Ast.stmt -> string list
(** Statement as source lines at the given indentation depth (two
    spaces per level). *)

val top : Sv_lang_c.Ast.top -> string list
(** One top-level declaration as source lines. *)

val tops : Sv_lang_c.Ast.top list -> string
(** A whole translation-unit body (no includes — the caller re-emits
    the original preprocessor lines in front). *)

val directive : Sv_lang_c.Ast.directive -> string
(** The [#pragma omp ...] / [#pragma acc ...] line, single-spaced, as
    {!Sv_lang_c.Cst.directive_label} expects it. *)

val float_literal : float -> string
(** Shortest literal that re-parses to the exact same IEEE double and
    always lexes as a [FloatLit] (a ['.'] or exponent is guaranteed).
    Raises [Invalid_argument] for negatives, infinities and NaN — the
    parser never produces those as literals. *)
