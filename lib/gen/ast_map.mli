(** Generic bottom-up rewriting over the MiniC AST.

    A {!t} bundles the traversal hooks; {!default} recurses everywhere
    and changes nothing. Mutation operators override a single hook (most
    often [stmts], since loop fission and statement permutation rewrite
    statement {e lists}) and inherit full recursion for everything
    else. *)

type t = {
  expr : t -> Sv_lang_c.Ast.expr -> Sv_lang_c.Ast.expr;
  stmt : t -> Sv_lang_c.Ast.stmt -> Sv_lang_c.Ast.stmt;
  stmts : t -> Sv_lang_c.Ast.stmt list -> Sv_lang_c.Ast.stmt list;
  loc : Sv_util.Loc.t -> Sv_util.Loc.t;
}

val default : t

val default_expr : t -> Sv_lang_c.Ast.expr -> Sv_lang_c.Ast.expr
(** One level of structural recursion — an overriding hook calls this to
    descend into children after (or instead of) its own rewrite. *)

val default_stmt : t -> Sv_lang_c.Ast.stmt -> Sv_lang_c.Ast.stmt
val default_stmts : t -> Sv_lang_c.Ast.stmt list -> Sv_lang_c.Ast.stmt list

val map_expr : t -> Sv_lang_c.Ast.expr -> Sv_lang_c.Ast.expr
val map_stmt : t -> Sv_lang_c.Ast.stmt -> Sv_lang_c.Ast.stmt
val map_stmts : t -> Sv_lang_c.Ast.stmt list -> Sv_lang_c.Ast.stmt list
val map_func : t -> Sv_lang_c.Ast.func -> Sv_lang_c.Ast.func
val map_top : t -> Sv_lang_c.Ast.top -> Sv_lang_c.Ast.top
val map_tunit : t -> Sv_lang_c.Ast.tunit -> Sv_lang_c.Ast.tunit

val strip_locs_tunit : Sv_lang_c.Ast.tunit -> Sv_lang_c.Ast.tunit
(** Every location replaced by [Loc.none]. *)

val equal_tunit : Sv_lang_c.Ast.tunit -> Sv_lang_c.Ast.tunit -> bool
(** Structural equality modulo locations — the re-parse fidelity oracle
    for {!Printer}. *)
