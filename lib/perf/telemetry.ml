type ted = {
  mutable equal_prunes : int;
  mutable size_prunes : int;
  mutable hist_prunes : int;
  mutable pqg_prunes : int;
  mutable pq_prunes : int;
  mutable cutoff_abandons : int;
  mutable tri_resolved : int;
  mutable dp_runs : int;
  mutable flat_compiles : int;
  mutable scratch_grows : int;
  mutable strategy_left : int;
  mutable strategy_right : int;
}

let zero () =
  {
    equal_prunes = 0;
    size_prunes = 0;
    hist_prunes = 0;
    pqg_prunes = 0;
    pq_prunes = 0;
    cutoff_abandons = 0;
    tri_resolved = 0;
    dp_runs = 0;
    flat_compiles = 0;
    scratch_grows = 0;
    strategy_left = 0;
    strategy_right = 0;
  }

let ted = zero ()

let reset_ted () =
  ted.equal_prunes <- 0;
  ted.size_prunes <- 0;
  ted.hist_prunes <- 0;
  ted.pqg_prunes <- 0;
  ted.pq_prunes <- 0;
  ted.cutoff_abandons <- 0;
  ted.tri_resolved <- 0;
  ted.dp_runs <- 0;
  ted.flat_compiles <- 0;
  ted.scratch_grows <- 0;
  ted.strategy_left <- 0;
  ted.strategy_right <- 0

let ted_snapshot () = { ted with equal_prunes = ted.equal_prunes }

let ted_diff ~before ~after =
  {
    equal_prunes = after.equal_prunes - before.equal_prunes;
    size_prunes = after.size_prunes - before.size_prunes;
    hist_prunes = after.hist_prunes - before.hist_prunes;
    pqg_prunes = after.pqg_prunes - before.pqg_prunes;
    pq_prunes = after.pq_prunes - before.pq_prunes;
    cutoff_abandons = after.cutoff_abandons - before.cutoff_abandons;
    tri_resolved = after.tri_resolved - before.tri_resolved;
    dp_runs = after.dp_runs - before.dp_runs;
    flat_compiles = after.flat_compiles - before.flat_compiles;
    scratch_grows = after.scratch_grows - before.scratch_grows;
    strategy_left = after.strategy_left - before.strategy_left;
    strategy_right = after.strategy_right - before.strategy_right;
  }

let ted_pruned t =
  t.equal_prunes + t.size_prunes + t.hist_prunes + t.pqg_prunes + t.pq_prunes

let ted_rows t =
  [
    ("pruned: equal/digest", t.equal_prunes);
    ("pruned: size bound", t.size_prunes);
    ("pruned: label histogram", t.hist_prunes);
    ("pruned: pq-gram profile", t.pqg_prunes);
    ("pruned: branch profile", t.pq_prunes);
    ("DP abandoned at cutoff", t.cutoff_abandons);
    ("resolved: triangle bound", t.tri_resolved);
    ("DP runs", t.dp_runs);
    ("flat compiles", t.flat_compiles);
    ("scratch growths", t.scratch_grows);
    ("strategy: left path", t.strategy_left);
    ("strategy: right path", t.strategy_right);
  ]

let ted_to_string t =
  let queries = ted_pruned t + t.dp_runs in
  Printf.sprintf
    "ted: %d bounded queries pruned of %d (equal %d, size %d, hist %d, pqgram \
     %d, branch %d), %d triangle-resolved, %d DP runs (%d abandoned), %d \
     flats, strategy L/R %d/%d"
    (ted_pruned t) queries t.equal_prunes t.size_prunes t.hist_prunes
    t.pqg_prunes t.pq_prunes t.tri_resolved t.dp_runs t.cutoff_abandons
    t.flat_compiles t.strategy_left t.strategy_right

(* --- service counters --- *)

type serve = {
  mutable connections : int;
  mutable requests : int;
  mutable served : int;
  mutable errors : int;
  mutable overloaded : int;
  mutable queue_peak : int;
  mutable bytes_in : int;
  mutable bytes_out : int;
  mutable warm_hits : int;
  mutable cold_misses : int;
  mutable usec_total : int;
}

let serve =
  {
    connections = 0;
    requests = 0;
    served = 0;
    errors = 0;
    overloaded = 0;
    queue_peak = 0;
    bytes_in = 0;
    bytes_out = 0;
    warm_hits = 0;
    cold_misses = 0;
    usec_total = 0;
  }

let reset_serve () =
  serve.connections <- 0;
  serve.requests <- 0;
  serve.served <- 0;
  serve.errors <- 0;
  serve.overloaded <- 0;
  serve.queue_peak <- 0;
  serve.bytes_in <- 0;
  serve.bytes_out <- 0;
  serve.warm_hits <- 0;
  serve.cold_misses <- 0;
  serve.usec_total <- 0

let serve_snapshot () = { serve with connections = serve.connections }

let note_queue_depth d = if d > serve.queue_peak then serve.queue_peak <- d

let serve_rows s =
  [
    ("connections", s.connections);
    ("requests", s.requests);
    ("served", s.served);
    ("errors", s.errors);
    ("overloaded", s.overloaded);
    ("queue_peak", s.queue_peak);
    ("bytes_in", s.bytes_in);
    ("bytes_out", s.bytes_out);
    ("warm_hits", s.warm_hits);
    ("cold_misses", s.cold_misses);
    ("usec_total", s.usec_total);
  ]

let serve_to_string s =
  Printf.sprintf
    "serve: %d conns, %d reqs (%d ok, %d err, %d shed), queue peak %d, %d/%d \
     B in/out, warm %d / cold %d, %d us total"
    s.connections s.requests s.served s.errors s.overloaded s.queue_peak
    s.bytes_in s.bytes_out s.warm_hits s.cold_misses s.usec_total
