(** Process-wide performance counters for the hot engines.

    The TED pruning cascade (digest equality, size bound, label-histogram
    lower bound) decides per pair whether the DP runs at all; these
    counters record those decisions so `sv compare --stats` and the bench
    harness can report prune rates next to wall-clock numbers. Counters
    are plain mutable ints — monotone within a process, reset explicitly,
    and private to each forked worker (children inherit a copy; their
    increments do not flow back, so parent-side reports describe
    parent-side work only). *)

type ted = {
  mutable equal_prunes : int;
      (** pairs answered 0 by pointer/digest equality, no DP *)
  mutable size_prunes : int;
      (** bounded queries rejected by the size-difference bound alone *)
  mutable hist_prunes : int;
      (** bounded queries rejected by the label-histogram lower bound *)
  mutable pqg_prunes : int;
      (** bounded queries rejected by the pq-gram profile bound (the
          parent-extended Augsten-style label-tuple L1/9 distance) after
          the histogram passed; sits ahead of the branch profile in the
          cascade so the two stages' prune counts attribute cleanly *)
  mutable pq_prunes : int;
      (** bounded queries rejected by the binary-branch profile bound
          (the Yang–Kalnis–Tung triple L1/5 distance) after the pq-gram
          profile passed *)
  mutable cutoff_abandons : int;
      (** DP runs abandoned mid-flight once the cutoff became unreachable *)
  mutable tri_resolved : int;
      (** matrix pairs settled by pivot triangle bounds (interval collapse
          or clamp) without touching the kernel at all *)
  mutable dp_runs : int;  (** full kernel runs (flat or Zhang–Shasha) *)
  mutable flat_compiles : int;  (** trees compiled to flat form *)
  mutable scratch_grows : int;  (** geometric growths of the DP scratch *)
  mutable strategy_left : int;  (** pairs decomposed along the left path *)
  mutable strategy_right : int;  (** pairs decomposed along the right path *)
}

val ted : ted
(** The process-global TED counter block, incremented by the kernels in
    [Sv_tree]. *)

val reset_ted : unit -> unit
(** Zero every TED counter. *)

val ted_snapshot : unit -> ted
(** An independent copy of the current counters (for before/after diffs). *)

val ted_diff : before:ted -> after:ted -> ted
(** Field-wise [after - before]. *)

val ted_pruned : ted -> int
(** Total pairs settled without running the DP. *)

val ted_rows : ted -> (string * int) list
(** Label/value rows for tabular reports, cascade order first. *)

val ted_to_string : ted -> string
(** One-line summary for CLI [--stats] output. *)

(** {2 Service counters}

    The `sv serve` daemon's per-request telemetry: connections accepted,
    frames decoded, replies by class, queue pressure, wire volume, and
    whether requests were answered from resident state. All counters are
    monotone within a process (the soak test's oracle) except none —
    there is no decrement anywhere; {!reset_serve} is the only way down.
    The daemon's [status] verb reports them next to cache hit rates. *)

type serve = {
  mutable connections : int;  (** connections accepted *)
  mutable requests : int;  (** complete frames received *)
  mutable served : int;  (** [ok] replies sent *)
  mutable errors : int;  (** [error] replies sent *)
  mutable overloaded : int;  (** requests shed by admission control *)
  mutable queue_peak : int;  (** deepest request queue observed *)
  mutable bytes_in : int;  (** payload bytes received (frames, sans headers) *)
  mutable bytes_out : int;  (** payload bytes sent *)
  mutable warm_hits : int;  (** requests served entirely from resident state *)
  mutable cold_misses : int;  (** requests that had to index at least one codebase *)
  mutable usec_total : int;  (** cumulative request-handling microseconds *)
}

val serve : serve
(** The process-global service counter block. *)

val reset_serve : unit -> unit
val serve_snapshot : unit -> serve

val note_queue_depth : int -> unit
(** Raise [queue_peak] to the given depth if deeper than seen before. *)

val serve_rows : serve -> (string * int) list
(** Label/value rows in a fixed order (the [status] verb's payload). *)

val serve_to_string : serve -> string
