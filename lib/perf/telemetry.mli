(** Process-wide performance counters for the hot engines.

    The TED pruning cascade (digest equality, size bound, label-histogram
    lower bound) decides per pair whether the DP runs at all; these
    counters record those decisions so `sv compare --stats` and the bench
    harness can report prune rates next to wall-clock numbers. Counters
    are plain mutable ints — monotone within a process, reset explicitly,
    and private to each forked worker (children inherit a copy; their
    increments do not flow back, so parent-side reports describe
    parent-side work only). *)

type ted = {
  mutable equal_prunes : int;
      (** pairs answered 0 by pointer/digest equality, no DP *)
  mutable size_prunes : int;
      (** bounded queries rejected by the size-difference bound alone *)
  mutable hist_prunes : int;
      (** bounded queries rejected by the label-histogram lower bound *)
  mutable cutoff_abandons : int;
      (** DP runs abandoned mid-flight once the cutoff became unreachable *)
  mutable dp_runs : int;  (** full kernel runs (flat or Zhang–Shasha) *)
  mutable flat_compiles : int;  (** trees compiled to flat form *)
  mutable scratch_grows : int;  (** geometric growths of the DP scratch *)
  mutable strategy_left : int;  (** pairs decomposed along the left path *)
  mutable strategy_right : int;  (** pairs decomposed along the right path *)
}

val ted : ted
(** The process-global TED counter block, incremented by the kernels in
    [Sv_tree]. *)

val reset_ted : unit -> unit
(** Zero every TED counter. *)

val ted_snapshot : unit -> ted
(** An independent copy of the current counters (for before/after diffs). *)

val ted_diff : before:ted -> after:ted -> ted
(** Field-wise [after - before]. *)

val ted_pruned : ted -> int
(** Total pairs settled without running the DP. *)

val ted_rows : ted -> (string * int) list
(** Label/value rows for tabular reports, cascade order first. *)

val ted_to_string : ted -> string
(** One-line summary for CLI [--stats] output. *)
