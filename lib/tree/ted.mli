(** Tree Edit Distance (TED).

    TED is the minimum-cost sequence of node deletions, insertions and
    relabellings transforming one ordered tree into another (§III-B;
    Bille's survey). The paper uses APTED; we implement the classic
    Zhang–Shasha algorithm, which computes the identical distance (the
    value is algorithm-independent) with the keyroots decomposition in
    O(n₁·n₂·min(d₁,l₁)·min(d₂,l₂)) time and O(n₁·n₂) space — comfortably
    enough for per-unit trees of a few thousand nodes.

    Costs follow the paper: unit weight for every operation, relabelling a
    node to an equal label is free. A custom cost model can be supplied for
    the weighted variants the paper lists as future work. *)

type 'a costs = {
  delete : 'a -> int;  (** cost of deleting a node of the first tree *)
  insert : 'a -> int;  (** cost of inserting a node of the second tree *)
  relabel : 'a -> 'a -> int;
      (** cost of turning a label of the first tree into one of the
          second; must be 0 on equal labels for [distance] to be 0 on
          identical trees *)
}

val unit_costs : ('a -> 'a -> bool) -> 'a costs
(** [unit_costs eq] is the paper's cost model: delete = insert = 1,
    relabel = 0 when [eq] holds and 1 otherwise. *)

val distance : ?costs:'a costs -> eq:('a -> 'a -> bool) -> 'a Tree.t -> 'a Tree.t -> int
(** [distance ~eq t1 t2] is the Zhang–Shasha tree edit distance under
    [costs] (default [unit_costs eq]). Symmetric under unit costs, zero
    iff the trees are equal, and bounded by [Tree.size t1 + Tree.size t2].

    Raises [Invalid_argument] if a custom [costs] record violates its
    contract on the labels actually present — a negative delete/insert
    cost, or a nonzero [relabel] on equal labels. *)

val distance_int : int Tree.t -> int Tree.t -> int
(** [distance_int t1 t2] is {!distance} specialised to interned integer
    labels under unit costs — the fast path the metric layer uses (direct
    integer compares, one reused forest-distance buffer). Equal trees
    short-circuit to 0 before the DP: physically equal in O(1) — the case
    {!Hashcons.canon} arranges — structurally equal after a walk that
    bails on the first mismatch. *)

val lower_bound_int : int Tree.t -> int Tree.t -> int
(** [lower_bound_int t1 t2] is a cheap (O(n₁+n₂)) admissible lower bound
    on the unit-cost distance: the largest of [|size t1 − size t2|],
    [max n₁ n₂ − Σ_l min(count₁ l, count₂ l)] (every mapped pair with
    unequal labels and every unmapped node costs at least one edit),
    [|leaves t1 − leaves t2|], [|height t1 − height t2|] (each edit
    operation moves each of those quantities by at most one), the
    pq-gram profile bound {!pqgram_bound_int} and the binary-branch
    profile bound {!branch_bound_int}. Holds on degenerate
    inputs — single-node trees, uniform labels — and is property-tested
    ([lower_bound_int ≤ distance]) against the oracle. The bounded engine
    uses it to skip the full DP outright. *)

val branch_bound_int : int Tree.t -> int Tree.t -> int
(** The binary-branch (pq-gram-style) component alone: hash every
    (label, first-child label, next-sibling label) triple of each tree
    and take ⌈L1/5⌉ of the multiset difference — one edit operation
    rewrites at most five triples (Yang–Kalnis–Tung, SIGMOD'05), so this
    is admissible; hashing bins can only shrink the L1. Often far
    tighter than the histogram components on same-size, same-alphabet
    trees that differ structurally. *)

val pqgram_bound_int : int Tree.t -> int Tree.t -> int
(** The pq-gram profile component alone: Augsten-style label tuples —
    each binary-branch triple extended with the node's parent in the
    first-child/next-sibling transform (label plus which slot the node
    fills there) — hashed and diffed as multisets, ⌈L1/9⌉. A relabel
    moves the profile L1 by at most 8 and a delete/insert by at most 9
    (the node's own tuple plus its ≤ 4 structurally affected
    neighbours), so this is admissible; property-tested against the
    oracle. It sits {e ahead} of {!branch_bound_int} in the bounded
    cascade with its own telemetry counter, so prune attribution between
    the two profiles stays clean. *)

val distance_bounded :
  ?costs:'a costs ->
  eq:('a -> 'a -> bool) ->
  cutoff:int ->
  'a Tree.t ->
  'a Tree.t ->
  int option
(** [distance_bounded ~eq ~cutoff t1 t2] is [Some d] iff
    [distance ~eq t1 t2 = d] and [d <= cutoff], and [None] otherwise.
    Under unit costs the engine prefilters with the size-delta lower
    bound and abandons the DP as soon as the running cost provably
    exceeds [cutoff], so a [None] is usually much cheaper than a full
    {!distance} call. With custom [costs] those bounds do not hold and
    the full distance is computed, then thresholded. *)

val distance_bounded_int : cutoff:int -> int Tree.t -> int Tree.t -> int option
(** {!distance_bounded} specialised to interned integer labels under unit
    costs, with the stronger {!lower_bound_int} histogram prefilter —
    the clustering layer's fast path. Shares {!distance_int}'s
    equal-subtree short-circuit ([Some 0] for any non-negative cutoff). *)

val distance_brute : eq:('a -> 'a -> bool) -> 'a Tree.t -> 'a Tree.t -> int
(** [distance_brute ~eq t1 t2] computes the same unit-cost distance with
    the direct forest recursion plus memoisation. Exponential state space
    in the worst case — only for small trees; it serves as the
    property-test oracle for {!distance}. *)
