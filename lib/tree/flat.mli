(** Flat post-order TED kernel.

    [Tree.t] is a pointer forest; the Zhang–Shasha DP only ever needs a
    handful of per-node integers, so each tree is compiled {e once} into
    contiguous [Bigarray] int arrays — postorder labels, leftmost-leaf
    indices and keyroots, in both decomposition directions — and every
    pairwise distance runs over those plus a reusable scratch buffer:
    zero allocation and no polymorphic-compare calls in the O(n₁·n₂·…)
    inner loops. Per pair the kernel picks the cheaper direction (left
    path, or right path via the mirror decomposition — the distance is
    mirror-invariant), and bounded queries pass a pruning cascade (digest
    equality, size bound, label-histogram/leaves/height lower bound,
    pq-gram profile bound, binary-branch profile bound) before any DP
    cell is touched. Distances are exactly those of
    {!Ted.distance_int}; the bench harness checks the two kernels
    byte-identical over whole corpora.

    Counters for prunes, DP runs, compiles and strategy picks accumulate
    in {!Sv_perf.Telemetry.ted}. *)

type t
(** A compiled tree. Immutable; safe to share across any number of
    distance calls (and, via fork, across worker processes). *)

type scratch
(** Reusable DP buffers (the td and fd tables), grown geometrically and
    never cleared. One scratch must not be used concurrently; one per
    worker is the intended shape. *)

val of_tree : int Tree.t -> t
(** [of_tree t] compiles [t]. O(n log n) (histogram sort); performed once
    per distinct tree by the callers that cache flats. *)

val size : t -> int
val digest : t -> int64
(** Structural splitmix64 digest; equal trees have equal digests, and a
    flat compiled from a {!Hashcons} canonical int view carries the
    table's digest (same mixer, label ids {e are} the labels there). *)

val scratch : unit -> scratch
(** A fresh, empty scratch context. *)

val reserve : ?scratch:scratch -> int -> int -> unit
(** [reserve n1 n2] pre-grows the buffers for a pair of sizes [n1], [n2]
    — warm this with the two largest trees of a matrix and the row never
    reallocates. Defaults to the process-shared scratch. *)

val lower_bound : t -> t -> int
(** Admissible lower bound on the unit-cost TED from compile-time
    summaries only (O(k₁+k₂) in distinct labels / profile bins): the
    maximum of the size delta, the unmatched label mass, the leaf-count
    delta, the height delta, the binary-branch profile bound
    ⌈‖BRV₁−BRV₂‖₁ / 5⌉ (Yang–Kalnis–Tung): one edit operation rewrites at
    most five (label, first-child, next-sibling) triples, so the L1
    distance between the triple multisets is ≤ 5·TED — and the pq-gram
    profile bound ⌈‖PQ₁−PQ₂‖₁ / 9⌉ over the parent-extended tuples (one
    edit rewrites at most nine of those). Dominates the old
    four-component bound pointwise. *)

val branch_bound : t -> t -> int
(** The binary-branch component of {!lower_bound} alone (for telemetry
    and property tests). *)

val pqgram_bound : t -> t -> int
(** The pq-gram component of {!lower_bound} alone: Augsten-style label
    tuples (binary parent + side, label, first-child, next-sibling) over
    the first-child/next-sibling transform, ⌈L1/9⌉ of the profile
    difference. Admissible — see the factor-9 argument at the profile
    builder; property-tested against the brute oracle. Runs ahead of
    {!branch_bound} in the bounded cascade with its own prune counter. *)

val distance : ?scratch:scratch -> t -> t -> int
(** Exact unit-cost TED; equals [Ted.distance_int] on the source trees.
    Equal flats (pointer or digest) short-circuit to 0. [scratch]
    defaults to the process-shared context. *)

val distance_bounded : ?scratch:scratch -> cutoff:int -> t -> t -> int option
(** [distance_bounded ~cutoff a b] is [Some d] iff [distance a b = d] and
    [d <= cutoff]. Runs the pruning cascade first, so most far pairs are
    rejected without touching the DP; pairs that do reach the DP abandon
    as soon as the cutoff is provably unreachable. *)
