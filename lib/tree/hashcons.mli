(** Hash-consed (interned) trees.

    The indexing engine derives the same subtrees over and over — model
    ports share their numerical core, units share headers, and the bench
    harness re-indexes whole corpora. Interning gives every distinct
    subtree (under a caller-supplied label equality) a unique small id
    and a 64-bit digest, so:

    - subtree equality is the O(1) comparison [id a = id b];
    - shared structure is deduplicated in memory (one node per distinct
      subtree, children physically shared);
    - consumers can build derived views memoised by id — see
      {!canonizer}, which hands [Ted.distance_int] physically-shared
      int-labelled trees so its equal-subtree fast path fires on a
      pointer compare.

    Interning is exact: ids are assigned through a table keyed by
    (label id, child ids), so two subtrees receive the same id iff they
    are equal under the label equality. The digest is a splitmix64 hash
    over the same key — collisions cannot produce wrong ids (the digest
    never decides equality), it only keys external artifacts. *)

type 'a t
(** An intern table ("cons table"). *)

type 'a node
(** An interned subtree. Physically unique per table: two nodes of the
    same table are equal iff they are the same pointer. *)

type stats = {
  distinct : int;  (** distinct subtrees interned *)
  labels : int;    (** distinct labels interned *)
  hits : int;      (** intern calls answered from the table *)
  misses : int;    (** intern calls that allocated a new node *)
}

val create :
  ?init:int -> hash:('a -> int) -> equal:('a -> 'a -> bool) -> unit -> 'a t
(** [create ~hash ~equal ()] makes an empty table. [equal] may be coarser
    than structural equality ([Label.equal] ignores locations); [hash]
    must agree with it. *)

val intern : 'a t -> 'a Tree.t -> 'a node
(** [intern t tree] interns every subtree bottom-up and returns the root
    node. O(size) label hashing on every call; already-known subtrees
    allocate nothing. *)

val extern : 'a node -> 'a Tree.t
(** [extern n] rebuilds a plain tree. [extern (intern t x)] is equal to
    [x] up to the table's label equality (a representative label is kept
    per equivalence class — for [Label.equal], locations come from the
    first occurrence). *)

val equal : 'a node -> 'a node -> bool
(** O(1) subtree equality: id comparison. Only meaningful between nodes
    of the same table. *)

val id : 'a node -> int
val label_id : 'a node -> int
(** The interned label's id — a dense 0-based label alphabet. *)

val digest : 'a node -> int64
(** 64-bit structural digest (splitmix64 over label ids and child
    digests, order-significant). Equal nodes have equal digests. *)

val size : 'a node -> int
(** Subtree size, computed once at intern time. *)

val label : 'a node -> 'a
val kids : 'a node -> 'a node list

val stats : 'a t -> stats

(** {2 Canonical int-labelled views}

    The TED kernels run on [int Tree.t]. A canonizer pairs an intern
    table with an id-keyed memo of int-labelled trees, so equal trees
    (under the label equality) come back as the {e same physical} value:
    [canon c a == canon c b] iff the trees are equal. *)

type 'a canonizer

val canonizer :
  ?init:int -> hash:('a -> int) -> equal:('a -> 'a -> bool) -> unit -> 'a canonizer

val canon : 'a canonizer -> 'a Tree.t -> int Tree.t
(** [canon c tree] is the physically-shared int-labelled view of [tree];
    labels are the dense {!label_id}s, so label equality maps to integer
    equality exactly. *)

val canon_id : 'a canonizer -> 'a Tree.t -> int * int Tree.t
(** [canon_id c tree] is [canon c tree] paired with the interned root's
    {!id} — a stable dense key for caches of per-tree derived artifacts
    (the metric layer memoises compiled {!Flat.t} kernels by it). Equal
    trees return equal ids. *)

val canonizer_stats : 'a canonizer -> stats
