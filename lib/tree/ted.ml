module T = Sv_perf.Telemetry

type 'a costs = {
  delete : 'a -> int;
  insert : 'a -> int;
  relabel : 'a -> 'a -> int;
}

let unit_costs eq =
  {
    delete = (fun _ -> 1);
    insert = (fun _ -> 1);
    relabel = (fun a b -> if eq a b then 0 else 1);
  }

(* Postorder decomposition used by Zhang–Shasha: [labels] in postorder
   (1-based), [lml.(i)] the postorder index of node i's leftmost leaf, and
   the keyroots (nodes that start a new leftmost path, in ascending
   order). *)
type 'a decomp = { labels : 'a array; lml : int array; keyroots : int list }

let decompose t =
  let n = Tree.size t in
  let labels = Array.make (n + 1) (Tree.label t) in
  let lml = Array.make (n + 1) 0 in
  let counter = ref 0 in
  let rec go (Tree.Node (x, cs)) =
    let first_leaf = ref 0 in
    List.iteri
      (fun k c ->
        let leftmost = go c in
        if k = 0 then first_leaf := leftmost)
      cs;
    incr counter;
    let i = !counter in
    labels.(i) <- x;
    lml.(i) <- (if cs = [] then i else !first_leaf);
    if cs = [] then i else !first_leaf
  in
  ignore (go t);
  (* A node is a keyroot iff it is the highest node for its leftmost
     leaf. *)
  let seen = Hashtbl.create 16 in
  let keyroots = ref [] in
  for i = n downto 1 do
    if not (Hashtbl.mem seen lml.(i)) then begin
      Hashtbl.add seen lml.(i) ();
      keyroots := i :: !keyroots
    end
  done;
  { labels; lml; keyroots = !keyroots }

(* Specialised unit-cost kernel: no per-cell closure calls, unchecked
   array accesses in the O(n₁·n₂·…) inner loops. This is the path every
   metric comparison takes, so it is written for speed. *)
let distance_unit ~eq t1 t2 =
  let d1 = decompose t1 and d2 = decompose t2 in
  let n1 = Array.length d1.labels - 1 and n2 = Array.length d2.labels - 1 in
  let td = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
  let l1 = d1.lml and l2 = d2.lml in
  let lab1 = d1.labels and lab2 = d2.labels in
  let treedist i j =
    let li = Array.unsafe_get l1 i and lj = Array.unsafe_get l2 j in
    let w = i - li + 2 and h = j - lj + 2 in
    let fd = Array.make_matrix w h 0 in
    let fd0 = Array.unsafe_get fd 0 in
    for dj = 1 to h - 1 do
      Array.unsafe_set fd0 dj dj
    done;
    for di = 1 to w - 1 do
      let row = Array.unsafe_get fd di in
      let prev = Array.unsafe_get fd (di - 1) in
      Array.unsafe_set row 0 di;
      let ni = li + di - 1 in
      let lni = Array.unsafe_get l1 ni in
      let labi = Array.unsafe_get lab1 ni in
      let tdi = Array.unsafe_get td ni in
      if lni = li then
        (* both prefixes are whole trees on this row iff also l2 matches *)
        for dj = 1 to h - 1 do
          let nj = lj + dj - 1 in
          let del = Array.unsafe_get prev dj + 1 in
          let ins = Array.unsafe_get row (dj - 1) + 1 in
          if Array.unsafe_get l2 nj = lj then begin
            let rel =
              Array.unsafe_get prev (dj - 1)
              + if eq labi (Array.unsafe_get lab2 nj) then 0 else 1
            in
            let v = min del (min ins rel) in
            Array.unsafe_set row dj v;
            Array.unsafe_set tdi nj v
          end
          else
            let sub =
              Array.unsafe_get (Array.unsafe_get fd (lni - li)) (Array.unsafe_get l2 nj - lj)
              + Array.unsafe_get tdi nj
            in
            Array.unsafe_set row dj (min del (min ins sub))
        done
      else
        for dj = 1 to h - 1 do
          let nj = lj + dj - 1 in
          let del = Array.unsafe_get prev dj + 1 in
          let ins = Array.unsafe_get row (dj - 1) + 1 in
          if Array.unsafe_get l2 nj = lj && lni = li then begin
            let rel =
              Array.unsafe_get prev (dj - 1)
              + if eq labi (Array.unsafe_get lab2 nj) then 0 else 1
            in
            let v = min del (min ins rel) in
            Array.unsafe_set row dj v;
            Array.unsafe_set tdi nj v
          end
          else
            let sub =
              Array.unsafe_get (Array.unsafe_get fd (lni - li)) (Array.unsafe_get l2 nj - lj)
              + Array.unsafe_get tdi nj
            in
            Array.unsafe_set row dj (min del (min ins sub))
        done
    done
  in
  List.iter (fun i -> List.iter (fun j -> treedist i j) d2.keyroots) d1.keyroots;
  if n1 = 0 then n2 else if n2 = 0 then n1 else td.(n1).(n2)

(* Equal-subtree fast path: equal trees have distance 0, so skip the DP
   entirely. Canonical trees from [Hashcons.canon] make this a pointer
   compare; otherwise the structural walk bails on the first mismatch,
   so the miss cost is one comparison per shared prefix node. *)
let equal_int (t1 : int Tree.t) (t2 : int Tree.t) =
  t1 == t2 || Tree.equal (fun (a : int) b -> a = b) t1 t2

(* Int-labelled unit-cost kernel: direct integer compares and a single
   preallocated forest-distance buffer reused across keyroot pairs. *)
let distance_int (t1 : int Tree.t) (t2 : int Tree.t) =
  if equal_int t1 t2 then begin
    T.ted.equal_prunes <- T.ted.equal_prunes + 1;
    0
  end
  else
  let () = T.ted.dp_runs <- T.ted.dp_runs + 1 in
  let d1 = decompose t1 and d2 = decompose t2 in
  let n1 = Array.length d1.labels - 1 and n2 = Array.length d2.labels - 1 in
  let td = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
  let l1 = d1.lml and l2 = d2.lml in
  let lab1 = d1.labels and lab2 = d2.labels in
  (* one buffer big enough for every keyroot pair *)
  let fd = Array.make_matrix (n1 + 2) (n2 + 2) 0 in
  let treedist i j =
    let li = Array.unsafe_get l1 i and lj = Array.unsafe_get l2 j in
    let w = i - li + 2 and h = j - lj + 2 in
    let fd0 = Array.unsafe_get fd 0 in
    for dj = 0 to h - 1 do
      Array.unsafe_set fd0 dj dj
    done;
    for di = 1 to w - 1 do
      let row = Array.unsafe_get fd di in
      let prev = Array.unsafe_get fd (di - 1) in
      Array.unsafe_set row 0 di;
      let ni = li + di - 1 in
      let lni = Array.unsafe_get l1 ni in
      let labi : int = Array.unsafe_get lab1 ni in
      let tdi = Array.unsafe_get td ni in
      let whole_i = lni = li in
      let sub_row = Array.unsafe_get fd (lni - li) in
      for dj = 1 to h - 1 do
        let nj = lj + dj - 1 in
        let del = Array.unsafe_get prev dj + 1 in
        let ins = Array.unsafe_get row (dj - 1) + 1 in
        if whole_i && Array.unsafe_get l2 nj = lj then begin
          let rel =
            Array.unsafe_get prev (dj - 1)
            + if labi = Array.unsafe_get lab2 nj then 0 else 1
          in
          let v = min del (min ins rel) in
          Array.unsafe_set row dj v;
          Array.unsafe_set tdi nj v
        end
        else
          let sub =
            Array.unsafe_get sub_row (Array.unsafe_get l2 nj - lj)
            + Array.unsafe_get tdi nj
          in
          Array.unsafe_set row dj (min del (min ins sub))
      done
    done
  in
  List.iter (fun i -> List.iter (fun j -> treedist i j) d2.keyroots) d1.keyroots;
  if n1 = 0 then n2 else if n2 = 0 then n1 else td.(n1).(n2)

(* The DP is only correct for non-negative operations with free
   relabelling of equal labels; a costs record violating that silently
   yields nonsense (e.g. a nonzero self-distance), so it is rejected
   loudly.  Labels are checked against themselves: [eq] is reflexive for
   every cost model the metric layer builds, so this covers the
   documented "0 on equal labels" precondition at O(n) closure calls. *)
let validate_costs c t1 t2 =
  let check l =
    if c.delete l < 0 || c.insert l < 0 then
      invalid_arg "Ted.distance: costs.delete/insert must be non-negative";
    if c.relabel l l <> 0 then
      invalid_arg "Ted.distance: costs.relabel must be 0 on equal labels"
  in
  List.iter check (Tree.preorder t1);
  List.iter check (Tree.preorder t2)

let distance ?costs ~eq t1 t2 =
  match costs with
  | None -> distance_unit ~eq t1 t2
  | Some _ ->
  let c = match costs with Some c -> c | None -> unit_costs eq in
  validate_costs c t1 t2;
  let d1 = decompose t1 and d2 = decompose t2 in
  let n1 = Array.length d1.labels - 1 and n2 = Array.length d2.labels - 1 in
  let td = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
  let treedist i j =
    (* Forest-distance table over postorder slices [l1(i)-1 .. i] and
       [l2(j)-1 .. j], stored with offsets so index 0 means "empty
       forest". *)
    let li = d1.lml.(i) and lj = d2.lml.(j) in
    let w = i - li + 2 and h = j - lj + 2 in
    let fd = Array.make_matrix w h 0 in
    for di = 1 to w - 1 do
      fd.(di).(0) <- fd.(di - 1).(0) + c.delete d1.labels.(li + di - 1)
    done;
    for dj = 1 to h - 1 do
      fd.(0).(dj) <- fd.(0).(dj - 1) + c.insert d2.labels.(lj + dj - 1)
    done;
    for di = 1 to w - 1 do
      let ni = li + di - 1 in
      for dj = 1 to h - 1 do
        let nj = lj + dj - 1 in
        let del = fd.(di - 1).(dj) + c.delete d1.labels.(ni) in
        let ins = fd.(di).(dj - 1) + c.insert d2.labels.(nj) in
        if d1.lml.(ni) = li && d2.lml.(nj) = lj then begin
          let rel = fd.(di - 1).(dj - 1) + c.relabel d1.labels.(ni) d2.labels.(nj) in
          let v = min del (min ins rel) in
          fd.(di).(dj) <- v;
          td.(ni).(nj) <- v
        end
        else
          let sub = fd.(d1.lml.(ni) - li).(d2.lml.(nj) - lj) + td.(ni).(nj) in
          fd.(di).(dj) <- min del (min ins sub)
      done
    done
  in
  List.iter (fun i -> List.iter (fun j -> treedist i j) d2.keyroots) d1.keyroots;
  if n1 = 0 then n2
  else if n2 = 0 then n1
  else td.(n1).(n2)

(* --- bounded variants ---------------------------------------------- *)

exception Cutoff

(* Lower bound from per-tree summaries, each admissible on its own:

   - label multiset: every mapped pair with unequal labels and every
     unmapped node costs one edit; at most Σ_l min(count₁ l, count₂ l)
     mapped pairs are free, and at most min(n₁,n₂) pairs exist, so
     TED ≥ max(n₁,n₂) − Σ_l min(count₁, count₂) (subsumes |n₁ − n₂|,
     kept explicit for clarity);
   - leaf count: a delete removes at most one leaf (splicing children
     cannot create more than it destroys), an insert adds at most one,
     a relabel none, so TED ≥ |leaves₁ − leaves₂|;
   - height: deleting a node lowers its descendants exactly one level
     and no other, so every operation moves the height by at most one
     and TED ≥ |height₁ − height₂|.

   All hold for degenerate inputs too — a single node has one leaf,
   height 1 and a one-entry histogram, so every component is 0 against an
   equal tree. O(n₁+n₂); lets the bounded engine skip the full DP when
   even the bound exceeds its cutoff. Admissibility (lb ≤ distance) is
   property-tested against the brute-force oracle. *)
let summary_bound_int (t1 : int Tree.t) (t2 : int Tree.t) =
  let summary t =
    let n = ref 0 and leaves = ref 0 in
    let rec go depth (Tree.Node (_, cs)) =
      incr n;
      match cs with
      | [] ->
          incr leaves;
          depth
      | _ -> List.fold_left (fun acc c -> max acc (go (depth + 1) c)) depth cs
    in
    let height = go 1 t in
    (!n, !leaves, height)
  in
  let n1, leaves1, height1 = summary t1 in
  let n2, leaves2, height2 = summary t2 in
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let rec fill (Tree.Node (x, cs)) =
    (match Hashtbl.find_opt counts x with
    | Some r -> incr r
    | None -> Hashtbl.add counts x (ref 1));
    List.iter fill cs
  in
  fill t1;
  let common = ref 0 in
  let rec drain (Tree.Node (x, cs)) =
    (match Hashtbl.find_opt counts x with
    | Some r when !r > 0 ->
        decr r;
        incr common
    | _ -> ());
    List.iter drain cs
  in
  drain t2;
  let lb = max (abs (n1 - n2)) (max n1 n2 - !common) in
  let lb = max lb (abs (leaves1 - leaves2)) in
  max lb (abs (height1 - height2))

(* Binary-branch profile bound, computed on the fly (the flat kernel
   precomputes the same profile per compiled tree — see [Flat.bb_profile]
   for the admissibility argument): hash every (label, first-child,
   next-sibling) triple, accumulate +1 for t1 and −1 for t2, and the L1
   residue is ≤ 5·TED, so ⌈L1/5⌉ is admissible. *)
let bb_mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let bb_key x cp c sp s =
  let open Int64 in
  let step h v = bb_mix (logxor (mul h 0x100000001B3L) (of_int v)) in
  let h = bb_mix (add (of_int x) 0x9E3779B97F4A7C15L) in
  let h = step (step (step (step h cp) c) sp) s in
  to_int (shift_right_logical h 2)

let branch_bound_int (t1 : int Tree.t) (t2 : int Tree.t) =
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let bump sgn t =
    let rec go sp s (Tree.Node (x, cs)) =
      let cp, c =
        match cs with [] -> (0, 0) | Tree.Node (y, _) :: _ -> (1, y)
      in
      let k = bb_key x cp c sp s in
      (match Hashtbl.find_opt counts k with
      | Some r -> r := !r + sgn
      | None -> Hashtbl.add counts k (ref sgn));
      let rec kids = function
        | [] -> ()
        | [ last ] -> go 0 0 last
        | a :: (Tree.Node (y, _) :: _ as rest) ->
            go 1 y a;
            kids rest
      in
      kids cs
    in
    go 0 0 t
  in
  bump 1 t1;
  bump (-1) t2;
  let l1 = Hashtbl.fold (fun _ r acc -> acc + abs !r) counts 0 in
  (l1 + 4) / 5

(* pq-gram profile bound, computed on the fly (the flat kernel
   precomputes the same profile per compiled tree — see [Flat.pq_profile]
   for the factor-9 admissibility argument): the binary-branch triple
   extended with the node's binary parent (label + which slot the node
   fills there), hashed, +1/−1 accumulated, ⌈L1/9⌉. Finer tuples carry
   more mismatch mass than the raw triples, so this frequently beats
   ⌈L1/5⌉ despite the larger divisor; the cascade runs it first. *)
let pq_key x cp c sp s pp pl side =
  let open Int64 in
  let step h v = bb_mix (logxor (mul h 0x100000001B3L) (of_int v)) in
  let h = bb_mix (add (of_int x) 0x243F6A8885A308D3L) in
  let h = step (step (step (step h cp) c) sp) s in
  let h = step (step (step h pp) pl) side in
  to_int (shift_right_logical h 2)

let pqgram_bound_int (t1 : int Tree.t) (t2 : int Tree.t) =
  let counts : (int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let bump sgn t =
    let rec go pp pl side sp s (Tree.Node (x, cs)) =
      let cp, c =
        match cs with [] -> (0, 0) | Tree.Node (y, _) :: _ -> (1, y)
      in
      let k = pq_key x cp c sp s pp pl side in
      (match Hashtbl.find_opt counts k with
      | Some r -> r := !r + sgn
      | None -> Hashtbl.add counts k (ref sgn));
      let rec kids side' pl' = function
        | [] -> ()
        | [ last ] -> go 1 pl' side' 0 0 last
        | (Tree.Node (y, _) as a) :: (Tree.Node (z, _) :: _ as rest) ->
            go 1 pl' side' 1 z a;
            kids 2 y rest
      in
      kids 1 x cs
    in
    go 0 0 0 0 0 t
  in
  bump 1 t1;
  bump (-1) t2;
  let l1 = Hashtbl.fold (fun _ r acc -> acc + abs !r) counts 0 in
  (l1 + 8) / 9

let lower_bound_int t1 t2 =
  max
    (summary_bound_int t1 t2)
    (max (pqgram_bound_int t1 t2) (branch_bound_int t1 t2))

(* Early-abandon check shared by the bounded kernels.  Valid only for the
   final keyroot pair (whole tree vs whole tree, li = lj = 1): there the
   forest cells are genuine postorder-prefix distances, and restricting an
   optimal edit mapping to the first [di] nodes of t1 shows the final
   distance is at least [fd(di,dj)] for the column the mapping induces,
   plus the size imbalance of the remaining suffixes.  If every column's
   floor exceeds the cutoff the pair can never come in under it. *)
let row_floor_exceeds row h ~rem1 ~cutoff =
  let best = ref max_int in
  for dj = 0 to h - 1 do
    let floor = Array.unsafe_get row dj + abs (rem1 - (h - 1 - dj)) in
    if floor < !best then best := floor
  done;
  !best > cutoff

(* Generic-label unit-cost kernel with the early abandon; raises [Cutoff]
   as soon as the running cost provably exceeds [cutoff]. *)
let distance_unit_bounded ~eq ~cutoff t1 t2 =
  let d1 = decompose t1 and d2 = decompose t2 in
  let n1 = Array.length d1.labels - 1 and n2 = Array.length d2.labels - 1 in
  if n1 = 0 || n2 = 0 then begin
    let d = max n1 n2 in
    if d > cutoff then raise Cutoff;
    d
  end
  else begin
    let td = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
    let treedist i j =
      let li = d1.lml.(i) and lj = d2.lml.(j) in
      let w = i - li + 2 and h = j - lj + 2 in
      let final = i = n1 && j = n2 in
      let fd = Array.make_matrix w h 0 in
      for di = 1 to w - 1 do
        fd.(di).(0) <- di
      done;
      for dj = 1 to h - 1 do
        fd.(0).(dj) <- dj
      done;
      for di = 1 to w - 1 do
        let ni = li + di - 1 in
        let row = fd.(di) and prev = fd.(di - 1) in
        for dj = 1 to h - 1 do
          let nj = lj + dj - 1 in
          let del = prev.(dj) + 1 and ins = row.(dj - 1) + 1 in
          if d1.lml.(ni) = li && d2.lml.(nj) = lj then begin
            let rel =
              prev.(dj - 1) + if eq d1.labels.(ni) d2.labels.(nj) then 0 else 1
            in
            let v = min del (min ins rel) in
            row.(dj) <- v;
            td.(ni).(nj) <- v
          end
          else
            row.(dj) <-
              min del
                (min ins (fd.(d1.lml.(ni) - li).(d2.lml.(nj) - lj) + td.(ni).(nj)))
        done;
        if final && row_floor_exceeds row h ~rem1:(w - 1 - di) ~cutoff then
          raise Cutoff
      done
    in
    List.iter (fun i -> List.iter (fun j -> treedist i j) d2.keyroots) d1.keyroots;
    td.(n1).(n2)
  end

(* Int-labelled bounded kernel: the shared-buffer fast path of
   [distance_int] plus the same early abandon. *)
let distance_int_bounded ~cutoff (t1 : int Tree.t) (t2 : int Tree.t) =
  T.ted.dp_runs <- T.ted.dp_runs + 1;
  let d1 = decompose t1 and d2 = decompose t2 in
  let n1 = Array.length d1.labels - 1 and n2 = Array.length d2.labels - 1 in
  if n1 = 0 || n2 = 0 then begin
    let d = max n1 n2 in
    if d > cutoff then raise Cutoff;
    d
  end
  else begin
    let td = Array.make_matrix (n1 + 1) (n2 + 1) 0 in
    let l1 = d1.lml and l2 = d2.lml in
    let lab1 = d1.labels and lab2 = d2.labels in
    let fd = Array.make_matrix (n1 + 2) (n2 + 2) 0 in
    let treedist i j =
      let li = Array.unsafe_get l1 i and lj = Array.unsafe_get l2 j in
      let w = i - li + 2 and h = j - lj + 2 in
      let final = i = n1 && j = n2 in
      let fd0 = Array.unsafe_get fd 0 in
      for dj = 0 to h - 1 do
        Array.unsafe_set fd0 dj dj
      done;
      for di = 1 to w - 1 do
        let row = Array.unsafe_get fd di in
        let prev = Array.unsafe_get fd (di - 1) in
        Array.unsafe_set row 0 di;
        let ni = li + di - 1 in
        let lni = Array.unsafe_get l1 ni in
        let labi : int = Array.unsafe_get lab1 ni in
        let tdi = Array.unsafe_get td ni in
        let whole_i = lni = li in
        let sub_row = Array.unsafe_get fd (lni - li) in
        for dj = 1 to h - 1 do
          let nj = lj + dj - 1 in
          let del = Array.unsafe_get prev dj + 1 in
          let ins = Array.unsafe_get row (dj - 1) + 1 in
          if whole_i && Array.unsafe_get l2 nj = lj then begin
            let rel =
              Array.unsafe_get prev (dj - 1)
              + if labi = Array.unsafe_get lab2 nj then 0 else 1
            in
            let v = min del (min ins rel) in
            Array.unsafe_set row dj v;
            Array.unsafe_set tdi nj v
          end
          else
            let sub =
              Array.unsafe_get sub_row (Array.unsafe_get l2 nj - lj)
              + Array.unsafe_get tdi nj
            in
            Array.unsafe_set row dj (min del (min ins sub))
        done;
        if final && row_floor_exceeds row h ~rem1:(w - 1 - di) ~cutoff then
          raise Cutoff
      done
    in
    List.iter (fun i -> List.iter (fun j -> treedist i j) d2.keyroots) d1.keyroots;
    td.(n1).(n2)
  end

let distance_bounded ?costs ~eq ~cutoff t1 t2 =
  if cutoff < 0 then None
  else
    match costs with
    | Some c ->
        (* custom operations break the unit-cost bounds, so no prefilter
           and no in-DP abandon — compute, then threshold *)
        let d = distance ~costs:c ~eq t1 t2 in
        if d <= cutoff then Some d else None
    | None -> (
        let n1 = Tree.size t1 and n2 = Tree.size t2 in
        if abs (n1 - n2) > cutoff then None
        else if n1 + n2 <= cutoff then Some (distance_unit ~eq t1 t2)
        else
          match distance_unit_bounded ~eq ~cutoff t1 t2 with
          | d -> if d <= cutoff then Some d else None
          | exception Cutoff -> None)

let distance_bounded_int ~cutoff t1 t2 =
  if cutoff < 0 then None
  else if equal_int t1 t2 then begin
    T.ted.equal_prunes <- T.ted.equal_prunes + 1;
    Some 0
  end
  else if abs (Tree.size t1 - Tree.size t2) > cutoff then begin
    T.ted.size_prunes <- T.ted.size_prunes + 1;
    None
  end
  else if summary_bound_int t1 t2 > cutoff then begin
    T.ted.hist_prunes <- T.ted.hist_prunes + 1;
    None
  end
  else if pqgram_bound_int t1 t2 > cutoff then begin
    T.ted.pqg_prunes <- T.ted.pqg_prunes + 1;
    None
  end
  else if branch_bound_int t1 t2 > cutoff then begin
    T.ted.pq_prunes <- T.ted.pq_prunes + 1;
    None
  end
  else if Tree.size t1 + Tree.size t2 <= cutoff then Some (distance_int t1 t2)
  else
    match distance_int_bounded ~cutoff t1 t2 with
    | d -> if d <= cutoff then Some d else None
    | exception Cutoff ->
        T.ted.cutoff_abandons <- T.ted.cutoff_abandons + 1;
        None

(* Direct forest recursion with memoisation; the oracle assumes [eq]
   agrees with structural equality so memo keys (polymorphic hashing of
   forests) are sound. Only used on small trees in tests. *)
let distance_brute ~eq t1 t2 =
  let memo : (Obj.t * Obj.t, int) Hashtbl.t = Hashtbl.create 256 in
  let forest_size f = List.fold_left (fun a t -> a + Tree.size t) 0 f in
  let rec forests f g =
    match (f, g) with
    | [], [] -> 0
    | _, [] -> forest_size f
    | [], _ -> forest_size g
    | _ ->
        let key = (Obj.repr f, Obj.repr g) in
        (match Hashtbl.find_opt memo key with
        | Some v -> v
        | None ->
            (* Split off the rightmost tree on each side. *)
            let split xs =
              match List.rev xs with
              | last :: rest -> (List.rev rest, last)
              | [] -> assert false
            in
            let f', Tree.Node (v, fv) = split f in
            let g', Tree.Node (w, gw) = split g in
            let del = forests (f' @ fv) g + 1 in
            let ins = forests f (g' @ gw) + 1 in
            let rel = forests f' g' + forests fv gw + (if eq v w then 0 else 1) in
            let r = min del (min ins rel) in
            Hashtbl.add memo key r;
            r)
  in
  forests [ t1 ] [ t2 ]
