module A = Bigarray.Array1
module T = Sv_perf.Telemetry

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) A.t

let buf n : buf = A.create Bigarray.int Bigarray.c_layout n

(* One Zhang–Shasha decomposition direction: postorder labels and
   leftmost-leaf indices (1-based, slot 0 unused), the keyroots in
   ascending order, and the total keyroot span Σ (i − lml(i) + 1). The
   right direction is the left decomposition of the mirror tree, so both
   share this shape. Subtree sizes are implicit: the subtree of node i
   occupies the postorder slice [lml(i), i], hence |i| = i − lml(i) + 1. *)
type dir = { labels : buf; lml : buf; keyroots : buf; kcost : int }

type t = {
  size : int;
  digest : int64;
  nleaves : int;
  height : int;
  left : dir;
  right : dir;
  hist_labels : int array;
  hist_counts : int array;
  bb_keys : int array;
  bb_counts : int array;
  pq_keys : int array;
  pq_counts : int array;
}

(* splitmix64 avalanche, the same mixer (and fold) as [Hashcons], so a
   flat compiled from a canonical int view carries the table's digest. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rec digest_tree (Tree.Node (x, cs)) =
  let seed = mix64 (Int64.add (Int64.of_int x) 0x9E3779B97F4A7C15L) in
  List.fold_left
    (fun acc c -> mix64 (Int64.logxor (Int64.mul acc 0x100000001B3L) (digest_tree c)))
    seed cs

let compile_dir ~mirror t n =
  let labels = buf (n + 1) and lml = buf (n + 1) in
  A.unsafe_set labels 0 0;
  A.unsafe_set lml 0 0;
  let counter = ref 0 in
  let rec go (Tree.Node (x, cs)) =
    let cs = if mirror then List.rev cs else cs in
    let first_leaf = ref 0 in
    List.iteri
      (fun k c ->
        let leftmost = go c in
        if k = 0 then first_leaf := leftmost)
      cs;
    incr counter;
    let i = !counter in
    A.unsafe_set labels i x;
    let lm = if cs = [] then i else !first_leaf in
    A.unsafe_set lml i lm;
    lm
  in
  ignore (go t);
  (* a node is a keyroot iff it is the highest node for its leftmost leaf;
     scanning downward and pushing front leaves the list ascending *)
  let seen = Array.make (n + 1) false in
  let krs = ref [] and nkr = ref 0 in
  for i = n downto 1 do
    let l = A.unsafe_get lml i in
    if not seen.(l) then begin
      seen.(l) <- true;
      krs := i :: !krs;
      incr nkr
    end
  done;
  let keyroots = buf !nkr in
  let kcost = ref 0 in
  List.iteri
    (fun k i ->
      A.unsafe_set keyroots k i;
      kcost := !kcost + (i - A.unsafe_get lml i + 1))
    !krs;
  { labels; lml; keyroots; kcost = !kcost }

(* Binary-branch profile (Yang, Kalnis & Tung, SIGMOD'05): under the
   first-child/next-sibling transform every node contributes the triple
   (label, first-child label or ε, next-sibling label or ε), and the L1
   distance between the two triple multisets is at most 5× the unit-cost
   TED — any single edit operation rewrites at most five triples. Triples
   are hashed to 62-bit keys: merging distinct triples into one bin can
   only cancel mass, i.e. shrink the L1, so hashing preserves
   admissibility (and collisions are vanishing at 62 bits anyway). *)
let bb_key x cp c sp s =
  let open Int64 in
  let step h v = mix64 (logxor (mul h 0x100000001B3L) (of_int v)) in
  let h = mix64 (add (of_int x) 0x9E3779B97F4A7C15L) in
  let h = step (step (step (step h cp) c) sp) s in
  to_int (shift_right_logical h 2)

(* Sorted run-length encoding of a key multiset: (distinct keys ascending,
   matching counts). Shared by the branch and pq-gram profiles. *)
let rle_sorted keys =
  Array.sort compare keys;
  let runs = ref 0 in
  Array.iteri (fun i x -> if i = 0 || keys.(i - 1) <> x then incr runs) keys;
  let out_keys = Array.make !runs 0 and out_counts = Array.make !runs 0 in
  let r = ref (-1) in
  Array.iteri
    (fun i x ->
      if i = 0 || keys.(i - 1) <> x then begin
        incr r;
        out_keys.(!r) <- x
      end;
      out_counts.(!r) <- out_counts.(!r) + 1)
    keys;
  (out_keys, out_counts)

let bb_profile t n =
  let keys = Array.make n 0 in
  let next = ref 0 in
  let rec go sp s (Tree.Node (x, cs)) =
    let cp, c = match cs with [] -> (0, 0) | Tree.Node (y, _) :: _ -> (1, y) in
    keys.(!next) <- bb_key x cp c sp s;
    incr next;
    let rec kids = function
      | [] -> ()
      | [ last ] -> go 0 0 last
      | a :: (Tree.Node (y, _) :: _ as rest) ->
          go 1 y a;
          kids rest
    in
    kids cs
  in
  go 0 0 t;
  rle_sorted keys

(* pq-gram profile (Augsten, Böhlen & Gamper style label tuples): the
   binary-branch triple of each node, extended one level up the
   first-child/next-sibling transform with the node's binary parent —
   (bparent label, which side, label, first-child label, next-sibling
   label), ε slots encoded as presence bits. Each node's label occurs in
   at most 4 tuples (its own, its binary parent's child slot, and the pl
   slot of its ≤2 binary children), so a relabel moves the profile L1 by
   ≤ 8; a delete/insert rewrites the tuples of the ≤ 4 structurally
   affected neighbours (binary parent, first child, last child, next
   sibling) and removes/adds the node's own, moving the L1 by ≤ 9. Hence
   ⌈L1/9⌉ is an admissible TED lower bound. The finer tuples carry more
   mismatch mass than the raw triples, so despite the larger divisor this
   bound frequently beats ⌈L1_bb/5⌉ on locally-permuted trees; the
   cascade runs it first and attributes its prunes separately. Hashing
   tuples into 62-bit bins only ever cancels mass, preserving
   admissibility exactly as for [bb_key]. *)
let pq_key x cp c sp s pp pl side =
  let open Int64 in
  let step h v = mix64 (logxor (mul h 0x100000001B3L) (of_int v)) in
  let h = mix64 (add (of_int x) 0x243F6A8885A308D3L) in
  let h = step (step (step (step h cp) c) sp) s in
  let h = step (step (step h pp) pl) side in
  to_int (shift_right_logical h 2)

let pq_profile t n =
  let keys = Array.make n 0 in
  let next = ref 0 in
  (* [pp]/[pl]/[side]: binary-parent presence, label, and which slot this
     node fills there (1 = first child of its tree parent, 2 = next
     sibling of its previous sibling, 0 = root). *)
  let rec go pp pl side sp s (Tree.Node (x, cs)) =
    let cp, c = match cs with [] -> (0, 0) | Tree.Node (y, _) :: _ -> (1, y) in
    keys.(!next) <- pq_key x cp c sp s pp pl side;
    incr next;
    let rec kids side' pl' = function
      | [] -> ()
      | [ last ] -> go 1 pl' side' 0 0 last
      | (Tree.Node (y, _) as a) :: (Tree.Node (z, _) :: _ as rest) ->
          go 1 pl' side' 1 z a;
          kids 2 y rest
    in
    kids 1 x cs
  in
  go 0 0 0 0 0 t;
  rle_sorted keys

let of_tree t =
  T.ted.T.flat_compiles <- T.ted.T.flat_compiles + 1;
  let n = Tree.size t in
  let left = compile_dir ~mirror:false t n in
  let right = compile_dir ~mirror:true t n in
  let nleaves = ref 0 in
  let rec stats depth (Tree.Node (_, cs)) =
    match cs with
    | [] ->
        incr nleaves;
        depth
    | _ -> List.fold_left (fun acc c -> max acc (stats (depth + 1) c)) depth cs
  in
  let height = stats 1 t in
  (* label histogram straight off the postorder array, sorted and
     run-length encoded so the lower bound intersects in O(k₁+k₂) *)
  let sorted = Array.init n (fun i -> A.unsafe_get left.labels (i + 1)) in
  Array.sort compare sorted;
  let runs = ref 0 in
  Array.iteri (fun i x -> if i = 0 || sorted.(i - 1) <> x then incr runs) sorted;
  let hist_labels = Array.make !runs 0 and hist_counts = Array.make !runs 0 in
  let r = ref (-1) in
  Array.iteri
    (fun i x ->
      if i = 0 || sorted.(i - 1) <> x then begin
        incr r;
        hist_labels.(!r) <- x
      end;
      hist_counts.(!r) <- hist_counts.(!r) + 1)
    sorted;
  let bb_keys, bb_counts = bb_profile t n in
  let pq_keys, pq_counts = pq_profile t n in
  {
    size = n;
    digest = digest_tree t;
    nleaves = !nleaves;
    height;
    left;
    right;
    hist_labels;
    hist_counts;
    bb_keys;
    bb_counts;
    pq_keys;
    pq_counts;
  }

let size f = f.size
let digest f = f.digest

(* Admissible lower bound on the unit-cost TED, from compile-time
   summaries only. Each component counts edits a single operation can
   reduce by at most one: size delta (insert/delete change |T| by 1),
   unmatched label mass (max n − Σ_l min(count₁ l, count₂ l): at most
   min(n₁,n₂) nodes map, and only label-equal mapped pairs are free),
   leaf-count delta and height delta (no operation moves either by more
   than one). *)
let summary_bound a b =
  let common = ref 0 in
  let i = ref 0 and j = ref 0 in
  let ka = Array.length a.hist_labels and kb = Array.length b.hist_labels in
  while !i < ka && !j < kb do
    let la = a.hist_labels.(!i) and lb = b.hist_labels.(!j) in
    if la < lb then incr i
    else if lb < la then incr j
    else begin
      common := !common + min a.hist_counts.(!i) b.hist_counts.(!j);
      incr i;
      incr j
    end
  done;
  let m = abs (a.size - b.size) in
  let m = max m (max a.size b.size - !common) in
  let m = max m (abs (a.nleaves - b.nleaves)) in
  max m (abs (a.height - b.height))

(* L1 distance between sorted run-length-encoded profiles: a merge walk
   over the key arrays, unmatched bins contribute their whole count. *)
let l1_rle ak ac bk bc =
  let l1 = ref 0 in
  let i = ref 0 and j = ref 0 in
  let ka = Array.length ak and kb = Array.length bk in
  while !i < ka && !j < kb do
    let la = ak.(!i) and lb = bk.(!j) in
    if la < lb then begin
      l1 := !l1 + ac.(!i);
      incr i
    end
    else if lb < la then begin
      l1 := !l1 + bc.(!j);
      incr j
    end
    else begin
      l1 := !l1 + abs (ac.(!i) - bc.(!j));
      incr i;
      incr j
    end
  done;
  while !i < ka do
    l1 := !l1 + ac.(!i);
    incr i
  done;
  while !j < kb do
    l1 := !l1 + bc.(!j);
    incr j
  done;
  !l1

let bb_l1 a b = l1_rle a.bb_keys a.bb_counts b.bb_keys b.bb_counts
let pq_l1 a b = l1_rle a.pq_keys a.pq_counts b.pq_keys b.pq_counts
let branch_bound a b = (bb_l1 a b + 4) / 5
let pqgram_bound a b = (pq_l1 a b + 8) / 9

let lower_bound a b =
  max (summary_bound a b) (max (pqgram_bound a b) (branch_bound a b))

(* --- scratch buffers -------------------------------------------------- *)

(* One td + one fd buffer per context, grown geometrically and never
   shrunk or cleared: every td cell the DP reads was written earlier in
   the same pair (keyroots ascend), and fd rows are (re)initialised per
   keyroot pair, so dirty contents are harmless. One context serves a
   whole matrix row — zero per-pair allocation.

   These are plain [int array]s, not Bigarrays: the DP's critical
   dependency chain is load → compare → store on these two tables, and
   OCaml int arrays do that with tagged loads/stores and no boxing,
   where a Bigarray int access pays an extra indirection plus an
   untag/retag on every cell. The compiled [dir] arrays stay Bigarrays —
   they are read-only and off the dependency chain. *)
type scratch = { mutable td : int array; mutable fd : int array }

let scratch () = { td = [||]; fd = [||] }
let shared = scratch ()

let grow cur need =
  let cap = max need (2 * Array.length cur) in
  T.ted.T.scratch_grows <- T.ted.T.scratch_grows + 1;
  Array.make cap 0

let reserve ?(scratch = shared) n1 n2 =
  let need_td = (n1 + 1) * (n2 + 1) and need_fd = (n1 + 2) * (n2 + 2) in
  if Array.length scratch.td < need_td then scratch.td <- grow scratch.td need_td;
  if Array.length scratch.fd < need_fd then scratch.fd <- grow scratch.fd need_fd

(* --- the kernel ------------------------------------------------------- *)

exception Cutoff

(* Zhang–Shasha over flat arrays. [st]/[sf] are the row strides of the td
   and fd buffers. Integer mins are written out as compares: without
   flambda a [Stdlib.min] per cell is a generic-compare call, and this
   loop runs billions of cells per matrix. [cutoff < max_int] additionally
   early-abandons on the final keyroot pair exactly as
   [Ted.row_floor_exceeds] does — each fd row cell is a genuine
   postorder-prefix distance there, so if every column's floor (cell plus
   remaining size imbalance) exceeds the cutoff, no completion can come
   in under it. *)
let zs ~td ~fd ~cutoff d1 d2 n1 n2 =
  let st = n2 + 1 and sf = n2 + 2 in
  let l1 = d1.lml and l2 = d2.lml in
  let lab1 = d1.labels and lab2 = d2.labels in
  let kr1 = d1.keyroots and kr2 = d2.keyroots in
  let nk1 = A.dim kr1 and nk2 = A.dim kr2 in
  for ki = 0 to nk1 - 1 do
    let i = A.unsafe_get kr1 ki in
    let li = A.unsafe_get l1 i in
    let w = i - li + 2 in
    for kj = 0 to nk2 - 1 do
      let j = A.unsafe_get kr2 kj in
      let lj = A.unsafe_get l2 j in
      let h = j - lj + 2 in
      let final = cutoff < max_int && i = n1 && j = n2 in
      for dj = 0 to h - 1 do
        Array.unsafe_set fd dj dj
      done;
      for di = 1 to w - 1 do
        let row = di * sf and prev = (di - 1) * sf in
        Array.unsafe_set fd row di;
        let ni = li + di - 1 in
        let lni = A.unsafe_get l1 ni in
        let tdi = ni * st in
        if lni = li then begin
          (* keyroot-aligned row: a cell is a tree–tree distance exactly
             when the column prefix is a whole subtree too. The previous
             cell and the diagonal ride in registers, and the sub path's
             forest row is row 0, which always holds 0..h-1 — so that
             lookup is pure arithmetic. *)
          let labi = A.unsafe_get lab1 ni in
          let left = ref di and diag = ref (Array.unsafe_get fd prev) in
          for dj = 1 to h - 1 do
            let nj = lj + dj - 1 in
            let above = Array.unsafe_get fd (prev + dj) in
            let l2v = A.unsafe_get l2 nj in
            let del = above + 1 and ins = !left + 1 in
            let v =
              if l2v = lj then begin
                let rel =
                  !diag + if labi = A.unsafe_get lab2 nj then 0 else 1
                in
                let v = if del <= ins then del else ins in
                let v = if v <= rel then v else rel in
                Array.unsafe_set td (tdi + nj) v;
                v
              end
              else begin
                let sub = l2v - lj + Array.unsafe_get td (tdi + nj) in
                let v = if del <= ins then del else ins in
                if v <= sub then v else sub
              end
            in
            Array.unsafe_set fd (row + dj) v;
            diag := above;
            left := v
          done
        end
        else begin
          (* interior row: every cell takes the sub path *)
          let sub_row = (lni - li) * sf in
          let left = ref di in
          for dj = 1 to h - 1 do
            let nj = lj + dj - 1 in
            let above = Array.unsafe_get fd (prev + dj) in
            let l2v = A.unsafe_get l2 nj in
            let del = above + 1 and ins = !left + 1 in
            let sub =
              Array.unsafe_get fd (sub_row + (l2v - lj))
              + Array.unsafe_get td (tdi + nj)
            in
            let v = if del <= ins then del else ins in
            let v = if v <= sub then v else sub in
            Array.unsafe_set fd (row + dj) v;
            left := v
          done
        end;
        if final then begin
          let rem1 = w - 1 - di in
          let best = ref max_int in
          for dj = 0 to h - 1 do
            let imb = rem1 - (h - 1 - dj) in
            let imb = if imb >= 0 then imb else -imb in
            let floor = Array.unsafe_get fd (row + dj) + imb in
            if floor < !best then best := floor
          done;
          if !best > cutoff then raise Cutoff
        end
      done
    done
  done;
  Array.unsafe_get td ((n1 * st) + n2)

(* The distance is invariant under mirroring both trees (an edit mapping
   stays valid with ancestor and sibling orders both reversed), so per
   pair the cheaper decomposition direction wins: ZS work is proportional
   to kcost₁ · kcost₂, which left- and right-leaning trees skew by large
   factors. Ties go left, keeping the choice deterministic. *)
let run_dp ~scratch ~cutoff a b =
  reserve ~scratch a.size b.size;
  let use_left = a.left.kcost * b.left.kcost <= a.right.kcost * b.right.kcost in
  if use_left then T.ted.T.strategy_left <- T.ted.T.strategy_left + 1
  else T.ted.T.strategy_right <- T.ted.T.strategy_right + 1;
  T.ted.T.dp_runs <- T.ted.T.dp_runs + 1;
  let d1 = if use_left then a.left else a.right in
  let d2 = if use_left then b.left else b.right in
  zs ~td:scratch.td ~fd:scratch.fd ~cutoff d1 d2 a.size b.size

let equal_flat a b = a == b || (a.digest = b.digest && a.size = b.size)

let distance ?(scratch = shared) a b =
  if equal_flat a b then begin
    T.ted.T.equal_prunes <- T.ted.T.equal_prunes + 1;
    0
  end
  else run_dp ~scratch ~cutoff:max_int a b

(* The pruning cascade, cheapest test first: digest equality (free), the
   size-difference bound, the histogram/leaves/height lower bound, the
   pq-gram profile bound, the binary-branch profile bound, then — only
   for pairs no bound settles — the DP with in-flight abandon. *)
let distance_bounded ?(scratch = shared) ~cutoff a b =
  if cutoff < 0 then None
  else if equal_flat a b then begin
    T.ted.T.equal_prunes <- T.ted.T.equal_prunes + 1;
    Some 0
  end
  else if abs (a.size - b.size) > cutoff then begin
    T.ted.T.size_prunes <- T.ted.T.size_prunes + 1;
    None
  end
  else if summary_bound a b > cutoff then begin
    T.ted.T.hist_prunes <- T.ted.T.hist_prunes + 1;
    None
  end
  else if pqgram_bound a b > cutoff then begin
    T.ted.T.pqg_prunes <- T.ted.T.pqg_prunes + 1;
    None
  end
  else if branch_bound a b > cutoff then begin
    T.ted.T.pq_prunes <- T.ted.T.pq_prunes + 1;
    None
  end
  else if a.size + b.size <= cutoff then
    (* the size-sum upper bound already fits: never abandons *)
    Some (run_dp ~scratch ~cutoff:max_int a b)
  else
    match run_dp ~scratch ~cutoff a b with
    | d -> if d <= cutoff then Some d else None
    | exception Cutoff ->
        T.ted.T.cutoff_abandons <- T.ted.T.cutoff_abandons + 1;
        None
