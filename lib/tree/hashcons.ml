type 'a node = {
  id : int;
  label_id : int;
  digest : int64;
  hsize : int;
  label : 'a;
  kids : 'a node list;
}

type stats = { distinct : int; labels : int; hits : int; misses : int }

type 'a t = {
  lhash : 'a -> int;
  lequal : 'a -> 'a -> bool;
  (* label buckets: structural hash -> (label, label id) alist. A custom
     association because Hashtbl cannot carry a user equality, and label
     equality (e.g. [Label.equal]) is coarser than structural equality
     (it ignores locations). *)
  label_tbl : (int, ('a * int) list ref) Hashtbl.t;
  mutable n_labels : int;
  (* subtree table: (label id, child ids) -> node. Child ids are already
     canonical, so polymorphic hashing/equality on int keys is exact. *)
  node_tbl : (int * int list, 'a node) Hashtbl.t;
  mutable next_id : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(init = 1024) ~hash ~equal () =
  {
    lhash = hash;
    lequal = equal;
    label_tbl = Hashtbl.create (max 16 (init / 8));
    n_labels = 0;
    node_tbl = Hashtbl.create init;
    next_id = 0;
    hits = 0;
    misses = 0;
  }

let intern_label t x =
  let h = t.lhash x in
  let bucket =
    match Hashtbl.find_opt t.label_tbl h with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add t.label_tbl h b;
        b
  in
  match List.find_opt (fun (y, _) -> t.lequal x y) !bucket with
  | Some (_, id) -> id
  | None ->
      let id = t.n_labels in
      t.n_labels <- id + 1;
      bucket := (x, id) :: !bucket;
      id

(* splitmix64 avalanche — the same mixer the fault layer and Prng use,
   chosen for dispersion, not cryptography. Id equality is the exact
   subtree-equality test; the digest only keys external artifacts. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let node_digest label_id kids =
  let seed = mix64 (Int64.add (Int64.of_int label_id) 0x9E3779B97F4A7C15L) in
  (* a multiplicative fold keeps child order significant *)
  List.fold_left
    (fun acc k -> mix64 (Int64.logxor (Int64.mul acc 0x100000001B3L) k.digest))
    seed kids

let rec intern t (Tree.Node (x, cs)) =
  let kids = List.map (intern t) cs in
  let label_id = intern_label t x in
  let key = (label_id, List.map (fun k -> k.id) kids) in
  match Hashtbl.find_opt t.node_tbl key with
  | Some n ->
      t.hits <- t.hits + 1;
      n
  | None ->
      t.misses <- t.misses + 1;
      let n =
        {
          id = t.next_id;
          label_id;
          digest = node_digest label_id kids;
          hsize = List.fold_left (fun acc k -> acc + k.hsize) 1 kids;
          label = x;
          kids;
        }
      in
      t.next_id <- t.next_id + 1;
      Hashtbl.add t.node_tbl key n;
      n

let rec extern n = Tree.Node (n.label, List.map extern n.kids)

let equal a b = a.id = b.id
let id n = n.id
let label_id n = n.label_id
let digest n = n.digest
let size n = n.hsize
let label n = n.label
let kids n = n.kids

let stats t =
  { distinct = Hashtbl.length t.node_tbl; labels = t.n_labels; hits = t.hits;
    misses = t.misses }

(* Canonical int-labelled view: equal subtrees (under the table's label
   equality) map to the *same physical* [int Tree.t], so downstream
   consumers — notably [Ted.distance_int]'s equal-subtree fast path —
   recognise shared structure with a pointer compare. *)
type 'a canonizer = { table : 'a t; memo : (int, int Tree.t) Hashtbl.t }

let canonizer ?init ~hash ~equal () =
  { table = create ?init ~hash ~equal (); memo = Hashtbl.create 4096 }

let rec canon_node c n =
  match Hashtbl.find_opt c.memo n.id with
  | Some t -> t
  | None ->
      let t = Tree.Node (n.label_id, List.map (canon_node c) n.kids) in
      Hashtbl.add c.memo n.id t;
      t

let canon c tree = canon_node c (intern c.table tree)

let canon_id c tree =
  let n = intern c.table tree in
  (n.id, canon_node c n)

let canonizer_stats c = stats c.table
