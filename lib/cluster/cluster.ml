type matrix = { labels : string array; data : float array array }

let of_fn ?(symmetric = false) labels f =
  let n = Array.length labels in
  let data =
    if not symmetric then Array.init n (fun i -> Array.init n (fun j -> f i j))
    else begin
      (* evaluate each unordered pair once and mirror — for expensive
         symmetric divergences this halves the number of [f] calls *)
      let data = Array.make_matrix n n 0.0 in
      for i = 0 to n - 1 do
        for j = i to n - 1 do
          let d = f i j in
          data.(i).(j) <- d;
          data.(j).(i) <- d
        done
      done;
      data
    end
  in
  { labels; data }

(* Same tabulation with a caller-owned context threaded through every
   cell. [init] runs exactly once, before the first evaluation, so an
   expensive per-matrix resource — a TED scratch buffer, a cache handle —
   is shared by the whole row sweep instead of re-created per cell.
   Evaluation order is identical to [of_fn] (row-major; upper triangle
   row-major when symmetric), so matrices come out byte-identical. *)
let of_fn_ctx ?(symmetric = false) ~init ~f labels =
  let ctx = init () in
  of_fn ~symmetric labels (fun i j -> f ctx i j)

let row_euclidean m =
  let n = Array.length m.labels in
  let dist i j =
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      let d = m.data.(i).(k) -. m.data.(j).(k) in
      s := !s +. (d *. d)
    done;
    sqrt !s
  in
  (* row distance is symmetric by construction and zero on the diagonal,
     so only the strict upper triangle is ever computed *)
  let data = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let d = dist i j in
      data.(i).(j) <- d;
      data.(j).(i) <- d
    done
  done;
  { labels = m.labels; data }

type linkage = Single | Complete | Average

type dendro = Leaf of int | Merge of dendro * dendro * float

(* Cluster state: each active cluster is a (dendrogram, member list). The
   inter-cluster distance is recomputed from the base matrix under the
   chosen linkage — O(n³) overall, which is plenty for model counts. *)
let cluster linkage m =
  let n = Array.length m.labels in
  if n = 0 then invalid_arg "Cluster.cluster: empty matrix";
  let base = m.data in
  let dist members_a members_b =
    let pairs =
      List.concat_map (fun i -> List.map (fun j -> base.(i).(j)) members_b) members_a
    in
    match linkage with
    | Single -> List.fold_left Float.min infinity pairs
    | Complete -> List.fold_left Float.max neg_infinity pairs
    | Average ->
        List.fold_left ( +. ) 0.0 pairs /. float_of_int (List.length pairs)
  in
  let active = ref (List.init n (fun i -> (Leaf i, [ i ]))) in
  while List.length !active > 1 do
    (* find the closest pair, breaking ties on lowest indices *)
    let best = ref None in
    let arr = Array.of_list !active in
    for i = 0 to Array.length arr - 1 do
      for j = i + 1 to Array.length arr - 1 do
        let _, mi = arr.(i) and _, mj = arr.(j) in
        let d = dist mi mj in
        match !best with
        | Some (bd, _, _) when bd <= d -> ()
        | _ -> best := Some (d, i, j)
      done
    done;
    match !best with
    | None -> assert false
    | Some (d, i, j) ->
        let di, mi = arr.(i) and dj, mj = arr.(j) in
        let merged = (Merge (di, dj, d), mi @ mj) in
        let remaining =
          Array.to_list arr
          |> List.filteri (fun k _ -> k <> i && k <> j)
        in
        active := merged :: remaining
  done;
  match !active with [ (d, _) ] -> d | _ -> assert false

let rec leaves = function
  | Leaf i -> [ i ]
  | Merge (a, b, _) -> leaves a @ leaves b

(* Exact equality, heights compared bit-for-bit (Float.equal, not =, so
   the result is well-defined even if a NaN ever reached a height). The
   byte-identity harnesses' oracle: a pruned or parallel matrix path must
   reproduce the serial dendrogram exactly, not approximately. *)
let rec equal a b =
  match (a, b) with
  | Leaf i, Leaf j -> i = j
  | Merge (a1, b1, h1), Merge (a2, b2, h2) ->
      Float.equal h1 h2 && equal a1 a2 && equal b1 b2
  | _ -> false

let merge_heights d =
  let rec go acc = function
    | Leaf _ -> acc
    | Merge (a, b, h) -> go (go (h :: acc) a) b
  in
  List.sort compare (go [] d)

let cophenetic d n =
  let m = Array.make_matrix n n 0.0 in
  let rec go = function
    | Leaf _ -> ()
    | Merge (a, b, h) ->
        let la = leaves a and lb = leaves b in
        List.iter
          (fun i ->
            List.iter
              (fun j ->
                m.(i).(j) <- h;
                m.(j).(i) <- h)
              lb)
          la;
        go a;
        go b
  in
  go d;
  m

let cut d h =
  let rec go node =
    match node with
    | Leaf i -> [ [ i ] ]
    | Merge (a, b, mh) -> if mh <= h then [ leaves node ] else go a @ go b
  in
  go d
