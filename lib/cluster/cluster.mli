(** Agglomerative hierarchical clustering and dendrograms.

    The paper clusters programming models by their pairwise divergences:
    the N×N divergence matrix is treated as N feature vectors (one row per
    model), row distances are Euclidean, and the dendrogram uses complete
    linkage (§V-A, Fig. 4). This module implements that workflow, plus
    single and average linkage for comparison. *)

type matrix = {
  labels : string array;        (** row/column names, e.g. model names *)
  data : float array array;     (** square; [data.(i).(j)] ≥ 0 *)
}

val of_fn : ?symmetric:bool -> string array -> (int -> int -> float) -> matrix
(** [of_fn labels f] tabulates [f] over the full cartesian product (the
    matrix need not be symmetric — model divergence is directional).

    With [~symmetric:true] the caller asserts [f i j = f j i]: each
    unordered pair is evaluated once ([j >= i]) and mirrored, halving
    the number of [f] calls while producing the identical matrix. *)

val of_fn_ctx :
  ?symmetric:bool ->
  init:(unit -> 'ctx) ->
  f:('ctx -> int -> int -> float) ->
  string array ->
  matrix
(** [of_fn_ctx ~init ~f labels] is {!of_fn} with a per-matrix context:
    [init ()] runs exactly once and its result is passed to every [f]
    call, so an expensive resource (a DP scratch buffer, a cache handle)
    is allocated once for the whole sweep rather than per cell. Cell
    evaluation order is identical to {!of_fn}, so for the same underlying
    function the matrices are byte-identical. *)

val row_euclidean : matrix -> matrix
(** [row_euclidean m] is the symmetric matrix of Euclidean distances
    between rows of [m] — the "Euclidean distance between points" step
    that turns a divergence matrix into clustering input. Only the strict
    upper triangle is computed; the diagonal is exactly [0.] and the
    lower triangle is mirrored. *)

type linkage = Single | Complete | Average

type dendro =
  | Leaf of int                       (** index into [labels] *)
  | Merge of dendro * dendro * float  (** children and merge height *)

val cluster : linkage -> matrix -> dendro
(** [cluster linkage m] agglomerates greedily from the symmetric distance
    matrix [m] (naive O(n³), fine for tens of items). Ties break on the
    lowest pair of cluster indices, so results are deterministic.
    Raises [Invalid_argument] on an empty matrix. *)

val equal : dendro -> dendro -> bool
(** Exact structural equality with bit-for-bit merge heights
    ([Float.equal]) — the oracle the byte-identity harnesses use to check
    a pruned or parallel evaluation reproduced the serial dendrogram
    exactly. *)

val leaves : dendro -> int list
(** Left-to-right leaf order — the display order of the clustered axis. *)

val merge_heights : dendro -> float list
(** All merge heights, bottom-up (sorted ascending). *)

val cophenetic : dendro -> int -> float array array
(** [cophenetic d n] is the n×n matrix of cophenetic distances (height of
    the lowest common merge). For complete and average linkage on a
    metric input this is ultrametric — checked by property tests. *)

val cut : dendro -> float -> int list list
(** [cut d h] returns the clusters obtained by cutting the dendrogram at
    height [h] (groups of leaf indices, in leaf order). *)
