(** MessagePack encoding and decoding.

    SilverVale's Codebase DB stores semantic-bearing trees "in a Zstd
    compressed MessagePack format" (§IV). This is a pure-OCaml
    implementation of the MessagePack binary format covering the types the
    Codebase DB needs: nil, booleans, integers, 64-bit floats, strings,
    binary blobs, arrays and maps (including all fixint/fix-length and
    8/16/32-bit length encodings; 64-bit integers are supported within
    OCaml's 63-bit [int] range). *)

type t =
  | Nil
  | Bool of bool
  | Int of int              (** encoded with the smallest format that fits *)
  | Float of float          (** always encoded as float64 *)
  | Str of string           (** UTF-8 text *)
  | Bin of string           (** raw bytes *)
  | Arr of t list
  | Map of (t * t) list

exception Decode_error of string
(** Raised by {!decode} on malformed input, with a position message. *)

val encode : t -> string
(** [encode v] is the canonical MessagePack byte serialisation of [v]:
    integers and length prefixes use the smallest representation. *)

val encode_to : Buffer.t -> t -> unit
(** [encode_to b v] appends the encoding of [v] to [b] — lets callers
    frame several values into one buffer (the scheduler's pipe protocol,
    the Codebase DB writer) without intermediate strings. *)

val decode : string -> t
(** [decode s] parses exactly one value occupying the whole string.
    Raises {!Decode_error} on malformed or trailing input. *)

val decode_result : string -> (t, string) result
(** Exception-free {!decode} — frame validation for callers that must
    treat malformed input as data, not control flow (the scheduler's
    result pipes, where a corrupt frame from a faulted worker is a
    strike to recover from, never an exception or a blocked read). *)

val decode_prefix : string -> int -> t * int
(** [decode_prefix s pos] parses one value starting at [pos], returning it
    together with the offset just past it — for streaming several values
    out of one buffer. *)

val equal : t -> t -> bool
(** Structural equality. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering in a JSON-like notation. *)
