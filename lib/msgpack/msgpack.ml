type t =
  | Nil
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Bin of string
  | Arr of t list
  | Map of (t * t) list

exception Decode_error of string

(* --- encoding ------------------------------------------------------ *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let add_u16 b v =
  add_u8 b (v lsr 8);
  add_u8 b v

let add_u32 b v =
  add_u16 b (v lsr 16);
  add_u16 b v

let add_u64 b (v : int64) =
  for i = 0 to 7 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical v ((7 - i) * 8)) land 0xFF)
  done

let encode_int b i =
  if i >= 0 then begin
    if i < 0x80 then add_u8 b i
    else if i < 0x100 then begin add_u8 b 0xCC; add_u8 b i end
    else if i < 0x10000 then begin add_u8 b 0xCD; add_u16 b i end
    else if i < 0x100000000 then begin add_u8 b 0xCE; add_u32 b i end
    else begin add_u8 b 0xCF; add_u64 b (Int64.of_int i) end
  end
  else if i >= -32 then add_u8 b (i land 0xFF)
  else if i >= -0x80 then begin add_u8 b 0xD0; add_u8 b i end
  else if i >= -0x8000 then begin add_u8 b 0xD1; add_u16 b i end
  else if i >= -0x80000000 then begin add_u8 b 0xD2; add_u32 b i end
  else begin add_u8 b 0xD3; add_u64 b (Int64.of_int i) end

let encode_len b ~fix_tag ~fix_max ~tag8 ~tag16 ~tag32 n =
  if fix_max >= 0 && n <= fix_max then add_u8 b (fix_tag lor n)
  else if tag8 >= 0 && n < 0x100 then begin add_u8 b tag8; add_u8 b n end
  else if n < 0x10000 then begin add_u8 b tag16; add_u16 b n end
  else begin add_u8 b tag32; add_u32 b n end

let rec encode_value b v =
  match v with
  | Nil -> add_u8 b 0xC0
  | Bool false -> add_u8 b 0xC2
  | Bool true -> add_u8 b 0xC3
  | Int i -> encode_int b i
  | Float f ->
      add_u8 b 0xCB;
      add_u64 b (Int64.bits_of_float f)
  | Str s ->
      encode_len b ~fix_tag:0xA0 ~fix_max:31 ~tag8:0xD9 ~tag16:0xDA ~tag32:0xDB
        (String.length s);
      Buffer.add_string b s
  | Bin s ->
      encode_len b ~fix_tag:0 ~fix_max:(-1) ~tag8:0xC4 ~tag16:0xC5 ~tag32:0xC6
        (String.length s);
      Buffer.add_string b s
  | Arr xs ->
      encode_len b ~fix_tag:0x90 ~fix_max:15 ~tag8:(-1) ~tag16:0xDC ~tag32:0xDD
        (List.length xs);
      List.iter (encode_value b) xs
  | Map kvs ->
      encode_len b ~fix_tag:0x80 ~fix_max:15 ~tag8:(-1) ~tag16:0xDE ~tag32:0xDF
        (List.length kvs);
      List.iter
        (fun (k, v) ->
          encode_value b k;
          encode_value b v)
        kvs

let encode_to b v = encode_value b v

let encode v =
  let b = Buffer.create 256 in
  encode_value b v;
  Buffer.contents b

(* --- decoding ------------------------------------------------------ *)

type reader = { src : string; mutable pos : int }

let rfail r msg = raise (Decode_error (Printf.sprintf "%s at offset %d" msg r.pos))

let ru8 r =
  if r.pos >= String.length r.src then rfail r "truncated input";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let ru16 r =
  let hi = ru8 r in
  (hi lsl 8) lor ru8 r

let ru32 r =
  let hi = ru16 r in
  (hi lsl 16) lor ru16 r

let ru64 r =
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (ru8 r))
  done;
  !v

let rbytes r n =
  if r.pos + n > String.length r.src then rfail r "truncated payload";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let int64_to_int r v =
  let i = Int64.to_int v in
  if Int64.of_int i <> v then rfail r "64-bit value out of OCaml int range";
  i

let rec decode_value r =
  let tag = ru8 r in
  if tag < 0x80 then Int tag
  else if tag >= 0xE0 then Int (tag - 0x100)
  else if tag land 0xF0 = 0x80 then decode_map r (tag land 0x0F)
  else if tag land 0xF0 = 0x90 then decode_arr r (tag land 0x0F)
  else if tag land 0xE0 = 0xA0 then Str (rbytes r (tag land 0x1F))
  else
    match tag with
    | 0xC0 -> Nil
    | 0xC2 -> Bool false
    | 0xC3 -> Bool true
    | 0xC4 -> Bin (rbytes r (ru8 r))
    | 0xC5 -> Bin (rbytes r (ru16 r))
    | 0xC6 -> Bin (rbytes r (ru32 r))
    | 0xCA ->
        (* float32: widen to float64 *)
        let bits = ru32 r in
        Float (Int32.float_of_bits (Int32.of_int bits))
    | 0xCB -> Float (Int64.float_of_bits (ru64 r))
    | 0xCC -> Int (ru8 r)
    | 0xCD -> Int (ru16 r)
    | 0xCE -> Int (ru32 r)
    | 0xCF ->
        let v = ru64 r in
        if Int64.compare v 0L < 0 then rfail r "uint64 out of OCaml int range";
        Int (int64_to_int r v)
    | 0xD0 ->
        let v = ru8 r in
        Int (if v >= 0x80 then v - 0x100 else v)
    | 0xD1 ->
        let v = ru16 r in
        Int (if v >= 0x8000 then v - 0x10000 else v)
    | 0xD2 ->
        let v = ru32 r in
        Int (if v >= 0x80000000 then v - 0x100000000 else v)
    | 0xD3 -> Int (int64_to_int r (ru64 r))
    | 0xD9 -> Str (rbytes r (ru8 r))
    | 0xDA -> Str (rbytes r (ru16 r))
    | 0xDB -> Str (rbytes r (ru32 r))
    | 0xDC -> decode_arr r (ru16 r)
    | 0xDD -> decode_arr r (ru32 r)
    | 0xDE -> decode_map r (ru16 r)
    | 0xDF -> decode_map r (ru32 r)
    | _ -> rfail r (Printf.sprintf "unsupported tag 0x%02X" tag)

and decode_arr r n = Arr (List.init n (fun _ -> decode_value r))

and decode_map r n =
  Map
    (List.init n (fun _ ->
         let k = decode_value r in
         let v = decode_value r in
         (k, v)))

let decode_prefix s pos =
  let r = { src = s; pos } in
  let v = decode_value r in
  (v, r.pos)

let decode s =
  let v, stop = decode_prefix s 0 in
  if stop <> String.length s then
    raise (Decode_error (Printf.sprintf "trailing bytes at offset %d" stop));
  v

let decode_result s =
  match decode s with v -> Ok v | exception Decode_error msg -> Error msg

let equal (a : t) (b : t) = a = b

let rec pp fmt v =
  match v with
  | Nil -> Format.pp_print_string fmt "null"
  | Bool b -> Format.pp_print_bool fmt b
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Bin s -> Format.fprintf fmt "<bin:%d>" (String.length s)
  | Arr xs ->
      Format.fprintf fmt "[@[%a@]]"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp)
        xs
  | Map kvs ->
      let pp_kv fmt (k, v) = Format.fprintf fmt "%a: %a" pp k pp v in
      Format.fprintf fmt "{@[%a@]}"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ",@ ") pp_kv)
        kvs
