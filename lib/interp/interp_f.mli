(** Tree-walking interpreter for MiniF.

    Executes the Fortran BabelStream family for verification and coverage
    (the GCov stand-in of §IV-D). Semantics follow serial Fortran: arrays
    are 1-based, whole-array expressions evaluate elementwise with scalar
    broadcasting, [do concurrent] iterates in order, directive regions run
    serially, and subroutine arguments pass by reference. *)

type value =
  | FUnit
  | FIntV of int
  | FFloatV of float
  | FBoolV of bool
  | FStrV of string
  | FArrV of float array  (** 1-based externally; stored 0-based *)
  | FRefV of value ref

exception Runtime_error of string * Sv_util.Loc.t

type outcome = {
  result : (unit, string) Result.t;
  coverage : Sv_util.Coverage.t;
  output : string;   (** accumulated [print] text *)
  steps : int;
}

val run : ?max_steps:int -> Sv_lang_f.Ast.file -> outcome
(** [run f] executes the file's [program] unit. [max_steps] defaults to
    [50_000_000]. Never raises; failures land in [result]. *)

val value_to_float : value -> float option
(** Numeric view, for test assertions. *)

val observation : outcome -> (unit, string) Result.t * string
(** [observation o] projects the behaviour a semantics-preserving
    transformation must keep: the program's result and the accumulated
    output — the equivalence the corpus generator's semantic check
    compares. *)
