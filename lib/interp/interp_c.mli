(** Tree-walking interpreter for MiniC.

    Serves two purposes from the paper's artifact appendix: it runs each
    mini-app's built-in verification ("each mini-app contains built-in
    verification for correctness"), and it produces the line-coverage
    profile that SilverVale's coverage variant consumes (§IV-D) — this
    container has no GCov/Clang coverage, so execution itself is the
    profiler.

    Every dialect executes with serial semantics: OpenMP directives run
    their statement; CUDA/HIP launches iterate the grid with
    [blockIdx]/[threadIdx] bound per iteration; SYCL queues, Kokkos
    [parallel_for]/[parallel_reduce], TBB ranges and StdPar algorithms are
    interpreted through a builtin model of each runtime. Parallel loops
    therefore execute in a fixed sequential order, which keeps
    verification deterministic. *)

type value =
  | VUnit
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VArrF of float array   (** double/float data *)
  | VArrI of int array     (** int data *)
  | VRef of value ref      (** address-of result / out-parameter *)
  | VFun of Sv_lang_c.Ast.func
  | VClosure of closure
  | VObj of string * (string, value) Hashtbl.t
      (** library object (queue, handler, range, blocked_range, dim3…) *)

and closure

exception Runtime_error of string * Sv_util.Loc.t
(** Execution error: unknown name, bad operand, step-budget exhausted… *)

type outcome = {
  result : (value, string) Result.t;  (** entry function's return value *)
  coverage : Sv_util.Coverage.t;      (** per-line execution profile *)
  output : string;                    (** accumulated [printf] text *)
  steps : int;                        (** statements executed *)
}

val run :
  ?max_steps:int ->
  ?entry:string ->
  ?args:value list ->
  Sv_lang_c.Ast.tunit list ->
  outcome
(** [run units] executes [entry] (default ["main"], default no arguments;
    a missing [argc]/[argv] pair is tolerated) across the translation
    units of one program. [max_steps] (default [50_000_000]) bounds
    execution. Never raises: errors are reported in [result]. *)

val value_to_float : value -> float option
(** Numeric view of a value, for assertions in tests and benches. *)

val observation : outcome -> (value, string) Result.t * string
(** [observation o] projects the behaviour a semantics-preserving
    transformation must keep: the entry function's result and the
    accumulated output. Coverage and step counts are execution detail,
    free to change. This is the equivalence the corpus generator's
    semantic check compares. *)

val pp_value : Format.formatter -> value -> unit
(** Debug printer. *)
