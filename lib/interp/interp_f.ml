module Loc = Sv_util.Loc
module Coverage = Sv_util.Coverage
open Sv_lang_f.Ast

type value =
  | FUnit
  | FIntV of int
  | FFloatV of float
  | FBoolV of bool
  | FStrV of string
  | FArrV of float array
  | FRefV of value ref

exception Runtime_error of string * Loc.t
exception Exit_loop
exception Cycle_loop
exception Return_unit
exception Stop_program

type scope = (string, value ref) Hashtbl.t

type state = {
  units : (string, prog_unit) Hashtbl.t;
  cov : Coverage.t;
  out : Buffer.t;
  mutable steps : int;
  max_steps : int;
}

type outcome = {
  result : (unit, string) Result.t;
  coverage : Coverage.t;
  output : string;
  steps : int;
}

let err loc fmt = Printf.ksprintf (fun m -> raise (Runtime_error (m, loc))) fmt

let value_to_float = function
  | FIntV n -> Some (float_of_int n)
  | FFloatV f -> Some f
  | FBoolV b -> Some (if b then 1.0 else 0.0)
  | _ -> None

let observation o = (o.result, o.output)

let to_float loc v =
  match value_to_float v with Some f -> f | None -> err loc "expected a number"

let to_int loc v =
  match v with
  | FIntV n -> n
  | FFloatV f -> int_of_float f
  | _ -> err loc "expected an integer"

let to_bool loc v =
  match v with
  | FBoolV b -> b
  | FIntV n -> n <> 0
  | _ -> err loc "expected a logical"

let record_line (st : state) (loc : Loc.t) =
  if not (Loc.is_none loc) then
    Coverage.hit st.cov ~file:loc.Loc.file ~line:loc.Loc.start.Loc.line

let tick (st : state) loc =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then err loc "step budget exhausted (%d)" st.max_steps

let lookup (env : scope) name = Hashtbl.find_opt env name

let get_ref loc env name =
  match lookup env name with
  | Some r -> r
  | None -> err loc "unknown name %s" name

(* --- elementwise array arithmetic ------------------------------------- *)

let binf loc op a b =
  match op with
  | "+" -> a +. b
  | "-" -> a -. b
  | "*" -> a *. b
  | "/" -> a /. b
  | "**" -> a ** b
  | _ -> err loc "operator %s is not arithmetic" op

let rec eval (st : state) (env : scope) (e : expr) : value =
  let loc = e.eloc in
  match e.e with
  | FInt n -> FIntV n
  | FRealLit f -> FFloatV f
  | FStr s -> FStrV s
  | FBool b -> FBoolV b
  | FVar name -> (
      match lookup env name with
      | Some r -> !r
      | None -> err loc "unknown name %s" name)
  | FUn ("-", a) -> (
      match eval st env a with
      | FIntV n -> FIntV (-n)
      | FFloatV f -> FFloatV (-.f)
      | FArrV arr -> FArrV (Array.map (fun x -> -.x) arr)
      | _ -> err loc "cannot negate value")
  | FUn (".not.", a) -> FBoolV (not (to_bool loc (eval st env a)))
  | FUn (op, _) -> err loc "unknown unary %s" op
  | FBin (op, a, b) -> eval_bin st env loc op a b
  | FRef (name, args) -> eval_ref st env loc name args

and eval_bin st env loc op a b =
  let va = eval st env a and vb = eval st env b in
  match op with
  | ".and." -> FBoolV (to_bool loc va && to_bool loc vb)
  | ".or." -> FBoolV (to_bool loc va || to_bool loc vb)
  | "==" | "/=" | "<" | ">" | "<=" | ">=" ->
      let fa = to_float loc va and fb = to_float loc vb in
      let r =
        match op with
        | "==" -> fa = fb
        | "/=" -> fa <> fb
        | "<" -> fa < fb
        | ">" -> fa > fb
        | "<=" -> fa <= fb
        | _ -> fa >= fb
      in
      FBoolV r
  | _ -> (
      (* arithmetic, possibly elementwise with broadcasting *)
      match (va, vb) with
      | FArrV x, FArrV y ->
          let n = min (Array.length x) (Array.length y) in
          FArrV (Array.init n (fun i -> binf loc op x.(i) y.(i)))
      | FArrV x, v ->
          let s = to_float loc v in
          FArrV (Array.map (fun e -> binf loc op e s) x)
      | v, FArrV y ->
          let s = to_float loc v in
          FArrV (Array.map (fun e -> binf loc op s e) y)
      | FIntV x, FIntV y when op <> "/" || (y <> 0 && x mod y = 0) -> (
          match op with
          | "+" -> FIntV (x + y)
          | "-" -> FIntV (x - y)
          | "*" -> FIntV (x * y)
          | "/" -> FIntV (x / y)
          | "**" -> FFloatV (float_of_int x ** float_of_int y)
          | _ -> err loc "unknown operator %s" op)
      | _ -> FFloatV (binf loc op (to_float loc va) (to_float loc vb)))

and eval_ref st env loc name args =
  match lookup env name with
  | Some r -> (
      match (!r, args) with
      | FArrV arr, [ AExpr i ] ->
          let idx = to_int loc (eval st env i) in
          if idx < 1 || idx > Array.length arr then
            err loc "index %d out of bounds [1,%d]" idx (Array.length arr);
          FFloatV arr.(idx - 1)
      | FArrV arr, [ ARange (None, None) ] -> FArrV arr
      | FArrV arr, [ ARange (lo, hi) ] ->
          let l = match lo with Some e -> to_int loc (eval st env e) | None -> 1 in
          let h =
            match hi with Some e -> to_int loc (eval st env e) | None -> Array.length arr
          in
          FArrV (Array.sub arr (l - 1) (h - l + 1))
      | v, [] -> v
      | _ -> err loc "bad reference to %s" name)
  | None -> eval_intrinsic st env loc name args

and eval_intrinsic st env loc name args =
  let ev = function
    | AExpr e -> eval st env e
    | ARange _ -> err loc "range in intrinsic argument"
  in
  let one () =
    match args with [ a ] -> ev a | _ -> err loc "%s expects one argument" name
  in
  let two () =
    match args with
    | [ a; b ] -> (ev a, ev b)
    | _ -> err loc "%s expects two arguments" name
  in
  match name with
  | "sqrt" -> (
      match one () with
      | FArrV arr -> FArrV (Array.map sqrt arr)
      | v -> FFloatV (sqrt (to_float loc v)))
  | "abs" -> (
      (* elemental intrinsic: applies elementwise to array arguments *)
      match one () with
      | FIntV n -> FIntV (Stdlib.abs n)
      | FArrV arr -> FArrV (Array.map Float.abs arr)
      | v -> FFloatV (Float.abs (to_float loc v)))
  | "exp" -> FFloatV (exp (to_float loc (one ())))
  | "mod" ->
      let a, b = two () in
      FIntV (to_int loc a mod to_int loc b)
  | "max" ->
      let a, b = two () in
      FFloatV (Float.max (to_float loc a) (to_float loc b))
  | "min" ->
      let a, b = two () in
      FFloatV (Float.min (to_float loc a) (to_float loc b))
  | "real" | "dble" -> (
      match args with
      | [ a ] | [ a; _ ] -> FFloatV (to_float loc (ev a))
      | _ -> err loc "real expects one or two arguments")
  | "int" -> FIntV (to_int loc (one ()))
  | "epsilon" -> FFloatV epsilon_float
  | "huge" -> FFloatV max_float
  | "size" -> (
      match one () with
      | FArrV arr -> FIntV (Array.length arr)
      | _ -> err loc "size expects an array")
  | "sum" -> (
      match one () with
      | FArrV arr -> FFloatV (Array.fold_left ( +. ) 0.0 arr)
      | v -> v)
  | "maxval" -> (
      match one () with
      | FArrV arr -> FFloatV (Array.fold_left Float.max neg_infinity arr)
      | _ -> err loc "maxval expects an array")
  | "minval" -> (
      match one () with
      | FArrV arr -> FFloatV (Array.fold_left Float.min infinity arr)
      | _ -> err loc "minval expects an array")
  | "dot_product" -> (
      match two () with
      | FArrV a, FArrV b ->
          let n = min (Array.length a) (Array.length b) in
          let s = ref 0.0 in
          for i = 0 to n - 1 do
            s := !s +. (a.(i) *. b.(i))
          done;
          FFloatV !s
      | _ -> err loc "dot_product expects two arrays")
  | "omp_get_num_threads" | "omp_get_max_threads" -> FIntV 1
  | "omp_get_thread_num" -> FIntV 0
  | _ -> err loc "unknown function %s" name

(* --- statements -------------------------------------------------------- *)

let rec exec_stmts st env stmts = List.iter (exec_stmt st env) stmts

and exec_stmt st env (s : stmt) =
  tick st s.sloc;
  record_line st s.sloc;
  let loc = s.sloc in
  match s.s with
  | FAssign (lhs, rhs) -> assign st env loc lhs rhs
  | FCallS (name, args) -> call_subroutine st env loc name args
  | FIf (c, t, f) ->
      if to_bool c.eloc (eval st env c) then exec_stmts st env t else exec_stmts st env f
  | FDo (v, lo, hi, step, body) ->
      let l = to_int loc (eval st env lo) and h = to_int loc (eval st env hi) in
      let stp = match step with Some e -> to_int loc (eval st env e) | None -> 1 in
      let r = get_or_bind env v in
      (try
         let i = ref l in
         while (stp > 0 && !i <= h) || (stp < 0 && !i >= h) do
           r := FIntV !i;
           (try exec_stmts st env body with Cycle_loop -> ());
           i := !i + stp
         done
       with Exit_loop -> ())
  | FDoConcurrent (v, lo, hi, body) ->
      let l = to_int loc (eval st env lo) and h = to_int loc (eval st env hi) in
      let r = get_or_bind env v in
      (try
         for i = l to h do
           r := FIntV i;
           try exec_stmts st env body with Cycle_loop -> ()
         done
       with Exit_loop -> ())
  | FDoWhile (c, body) -> (
      try
        while to_bool c.eloc (eval st env c) do
          try exec_stmts st env body with Cycle_loop -> ()
        done
      with Exit_loop -> ())
  | FAllocate allocs ->
      List.iter
        (fun (name, dims) ->
          let n =
            List.fold_left (fun acc d -> acc * to_int loc (eval st env d)) 1 dims
          in
          let r = get_or_bind env name in
          r := FArrV (Array.make n 0.0))
        allocs
  | FDeallocate names ->
      List.iter
        (fun name ->
          let r = get_or_bind env name in
          r := FUnit)
        names
  | FDirective (_, body) -> exec_stmts st env body
  | FPrint args ->
      let parts =
        List.map
          (fun a ->
            match eval st env a with
            | FStrV s -> s
            | FIntV n -> string_of_int n
            | FFloatV f -> Printf.sprintf "%.6f" f
            | FBoolV b -> if b then "T" else "F"
            | FArrV arr -> Printf.sprintf "<array[%d]>" (Array.length arr)
            | _ -> "?")
          args
      in
      Buffer.add_string st.out (String.concat " " parts);
      Buffer.add_char st.out '\n'
  | FReturn -> raise Return_unit
  | FExit -> raise Exit_loop
  | FCycle -> raise Cycle_loop
  | FStop _ -> raise Stop_program

and get_or_bind env name =
  match Hashtbl.find_opt env name with
  | Some r -> r
  | None ->
      let r = ref FUnit in
      Hashtbl.replace env name r;
      r

and assign st env loc lhs rhs =
  let v = eval st env rhs in
  match lhs.e with
  | FVar name -> (
      let r = get_or_bind env name in
      match (!r, v) with
      | FArrV dst, FArrV src -> Array.blit src 0 dst 0 (min (Array.length src) (Array.length dst))
      | FArrV dst, other -> Array.fill dst 0 (Array.length dst) (to_float loc other)
      | _ -> r := v)
  | FRef (name, [ AExpr i ]) -> (
      let r = get_or_bind env name in
      match !r with
      | FArrV arr ->
          let idx = to_int loc (eval st env i) in
          if idx < 1 || idx > Array.length arr then
            err loc "index %d out of bounds [1,%d]" idx (Array.length arr);
          arr.(idx - 1) <- to_float loc v
      | _ -> err loc "%s is not an array" name)
  | FRef (name, [ ARange (lo, hi) ]) -> (
      let r = get_or_bind env name in
      match !r with
      | FArrV arr ->
          let l = match lo with Some e -> to_int loc (eval st env e) | None -> 1 in
          let h =
            match hi with Some e -> to_int loc (eval st env e) | None -> Array.length arr
          in
          (match v with
          | FArrV src ->
              for k = l to h do
                arr.(k - 1) <- src.(k - l)
              done
          | other ->
              let x = to_float loc other in
              for k = l to h do
                arr.(k - 1) <- x
              done)
      | _ -> err loc "%s is not an array" name)
  | _ -> err loc "left-hand side is not assignable"

and call_subroutine st env loc name args =
  match Hashtbl.find_opt st.units name with
  | None -> (
      (* intrinsic subroutines *)
      match name with
      | "random_number" -> (
          match args with
          | [ { e = FVar n; _ } ] ->
              let r = get_ref loc env n in
              (* deterministic pseudo-random fill *)
              (match !r with
              | FArrV arr ->
                  Array.iteri (fun i _ -> arr.(i) <- float_of_int ((i * 37) mod 100) /. 100.0) arr
              | _ -> r := FFloatV 0.5);
              ()
          | _ -> err loc "random_number expects a variable")
      | "cpu_time" | "system_clock" -> ()
      | _ -> err loc "unknown subroutine %s" name)
  | Some u -> (
      let params = match u.u_kind with Subroutine ps -> ps | Program -> [] in
      if List.length params <> List.length args then
        err loc "subroutine %s arity mismatch" name;
      let callee_env : scope = Hashtbl.create 16 in
      (* pass-by-reference for variable arguments, by value otherwise *)
      List.iter2
        (fun p a ->
          match a.e with
          | FVar n -> Hashtbl.replace callee_env p (get_ref loc env n)
          | _ -> Hashtbl.replace callee_env p (ref (eval st env a)))
        params args;
      declare st callee_env u;
      record_line st u.u_loc;
      try exec_stmts st callee_env u.u_body with Return_unit -> ())

and declare st (env : scope) (u : prog_unit) =
  List.iter
    (fun d ->
      record_line st d.d_loc;
      List.iter
        (fun (name, rank, init) ->
          if not (Hashtbl.mem env name) then begin
            let v =
              match init with
              | Some e -> eval st env e
              | None ->
                  let has_alloc = List.mem Allocatable d.d_attrs in
                  let attr_rank =
                    List.fold_left
                      (fun acc a -> match a with Dimension r -> max acc r | _ -> acc)
                      0 d.d_attrs
                  in
                  if has_alloc || max rank attr_rank > 0 then FUnit (* allocated later or dummy *)
                  else (
                    match d.d_ty with
                    | FReal _ -> FFloatV 0.0
                    | FInteger -> FIntV 0
                    | FLogical -> FBoolV false
                    | FCharacter -> FStrV "")
            in
            Hashtbl.replace env name (ref v)
          end)
        d.d_names)
    u.u_decls

let run ?(max_steps = 50_000_000) (f : file) =
  let st =
    {
      units = Hashtbl.create 8;
      cov = Coverage.create ();
      out = Buffer.create 256;
      steps = 0;
      max_steps;
    }
  in
  List.iter (fun u -> Hashtbl.replace st.units u.u_name u) f.f_units;
  let result =
    match main_program f with
    | None -> Error "no program unit"
    | Some u -> (
        let env : scope = Hashtbl.create 32 in
        declare st env u;
        record_line st u.u_loc;
        try
          exec_stmts st env u.u_body;
          Ok ()
        with
        | Stop_program | Return_unit -> Ok ()
        | Runtime_error (msg, loc) ->
            Error (Printf.sprintf "%s at %s" msg (Loc.to_string loc))
        | Exit_loop | Cycle_loop -> Error "exit/cycle escaped a loop")
  in
  { result; coverage = st.cov; output = Buffer.contents st.out; steps = st.steps }
