module Loc = Sv_util.Loc
module Coverage = Sv_util.Coverage
open Sv_lang_c.Ast

type value =
  | VUnit
  | VInt of int
  | VFloat of float
  | VBool of bool
  | VStr of string
  | VArrF of float array
  | VArrI of int array
  | VRef of value ref
  | VFun of func
  | VClosure of closure
  | VObj of string * (string, value) Hashtbl.t

and closure = { c_params : param list; c_body : stmt list; c_env : scope list }
and scope = (string, value ref) Hashtbl.t

exception Runtime_error of string * Loc.t

(* Internal control flow. *)
exception Return_exc of value
exception Break_exc
exception Continue_exc

type state = {
  funcs : (string, func) Hashtbl.t;
  records : (string, record) Hashtbl.t;
  globals : scope;
  cov : Coverage.t;
  out : Buffer.t;
  mutable steps : int;
  max_steps : int;
}

type outcome = {
  result : (value, string) Result.t;
  coverage : Coverage.t;
  output : string;
  steps : int;
}

let err loc fmt = Printf.ksprintf (fun m -> raise (Runtime_error (m, loc))) fmt

let value_to_float = function
  | VInt n -> Some (float_of_int n)
  | VFloat f -> Some f
  | VBool b -> Some (if b then 1.0 else 0.0)
  | _ -> None

let observation o = (o.result, o.output)

let rec pp_value fmt = function
  | VUnit -> Format.pp_print_string fmt "()"
  | VInt n -> Format.pp_print_int fmt n
  | VFloat f -> Format.fprintf fmt "%g" f
  | VBool b -> Format.pp_print_bool fmt b
  | VStr s -> Format.fprintf fmt "%S" s
  | VArrF a -> Format.fprintf fmt "<f64[%d]>" (Array.length a)
  | VArrI a -> Format.fprintf fmt "<i32[%d]>" (Array.length a)
  | VRef r -> Format.fprintf fmt "&%a" pp_value !r
  | VFun f -> Format.fprintf fmt "<fun %s>" f.f_name
  | VClosure _ -> Format.pp_print_string fmt "<lambda>"
  | VObj (tag, _) -> Format.fprintf fmt "<%s>" tag

(* --- numeric helpers -------------------------------------------------- *)

let to_float loc v =
  match value_to_float v with
  | Some f -> f
  | None -> err loc "expected a number, got %s" (Format.asprintf "%a" pp_value v)

let to_int loc v =
  match v with
  | VInt n -> n
  | VFloat f -> int_of_float f
  | VBool b -> if b then 1 else 0
  | _ -> err loc "expected an integer, got %s" (Format.asprintf "%a" pp_value v)

let to_bool loc v =
  match v with
  | VBool b -> b
  | VInt n -> n <> 0
  | VFloat f -> f <> 0.0
  | _ -> err loc "expected a boolean"

let is_float_v = function VFloat _ -> true | _ -> false

(* --- environments ----------------------------------------------------- *)

let lookup st (env : scope list) name : value ref option =
  let rec go = function
    | [] -> Hashtbl.find_opt st.globals name
    | sc :: rest -> (
        match Hashtbl.find_opt sc name with Some r -> Some r | None -> go rest)
  in
  go env

let bind (env : scope list) name v =
  match env with
  | sc :: _ -> Hashtbl.replace sc name (ref v)
  | [] -> invalid_arg "bind: empty environment"

let bind_ref (env : scope list) name r =
  match env with
  | sc :: _ -> Hashtbl.replace sc name r
  | [] -> invalid_arg "bind_ref: empty environment"

let obj tag fields =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) fields;
  VObj (tag, tbl)

(* --- arithmetic -------------------------------------------------------- *)

let arith loc op a b =
  match op with
  (* RAJA-style reducer objects absorb += : operator+= on ReduceSum *)
  | Add when (match a with VObj (_, f) -> Hashtbl.mem f "acc" | _ -> false) -> (
      match a with
      | VObj (_, fields) ->
          let cur = to_float loc (Hashtbl.find fields "acc") in
          Hashtbl.replace fields "acc" (VFloat (cur +. to_float loc b));
          a
      | _ -> assert false)
  | LAnd -> VBool (to_bool loc a && to_bool loc b)
  | LOr -> VBool (to_bool loc a || to_bool loc b)
  | Eq | Ne | Lt | Gt | Le | Ge ->
      let fa = to_float loc a and fb = to_float loc b in
      let r =
        match op with
        | Eq -> fa = fb
        | Ne -> fa <> fb
        | Lt -> fa < fb
        | Gt -> fa > fb
        | Le -> fa <= fb
        | Ge -> fa >= fb
        | _ -> assert false
      in
      VBool r
  | Add | Sub | Mul | Div | Mod | BitAnd | BitOr | BitXor | Shl | Shr ->
      if is_float_v a || is_float_v b then begin
        let fa = to_float loc a and fb = to_float loc b in
        match op with
        | Add -> VFloat (fa +. fb)
        | Sub -> VFloat (fa -. fb)
        | Mul -> VFloat (fa *. fb)
        | Div -> VFloat (fa /. fb)
        | Mod -> VFloat (Float.rem fa fb)
        | _ -> err loc "bitwise operator on float"
      end
      else begin
        let ia = to_int loc a and ib = to_int loc b in
        match op with
        | Add -> VInt (ia + ib)
        | Sub -> VInt (ia - ib)
        | Mul -> VInt (ia * ib)
        | Div -> if ib = 0 then err loc "integer division by zero" else VInt (ia / ib)
        | Mod -> if ib = 0 then err loc "integer modulo by zero" else VInt (ia mod ib)
        | BitAnd -> VInt (ia land ib)
        | BitOr -> VInt (ia lor ib)
        | BitXor -> VInt (ia lxor ib)
        | Shl -> VInt (ia lsl ib)
        | Shr -> VInt (ia asr ib)
        | _ -> assert false
      end

(* --- default values ---------------------------------------------------- *)

let rec default_value st ty loc =
  match ty with
  | TVoid -> VUnit
  | TBool -> VBool false
  | TChar | TInt | TLong | TSizeT -> VInt 0
  | TFloat | TDouble | TAuto -> VFloat 0.0
  | TPtr _ | TRef _ -> VUnit
  | TConst t -> default_value st t loc
  | TArr (elem, Some n) -> (
      match elem with
      | TInt | TLong | TSizeT | TConst TInt -> VArrI (Array.make n 0)
      | _ -> VArrF (Array.make n 0.0))
  | TArr (_, None) -> VUnit
  | TNamed (name, _) -> (
      match Hashtbl.find_opt st.records name with
      | Some r ->
          obj name (List.map (fun (fty, fname) -> (fname, default_value st fty loc)) r.r_fields)
      | None -> VUnit)

let elem_count loc ty bytes =
  (* translate a byte count from [n * sizeof(T)] into an element count *)
  let sz = match ty with TInt | TConst TInt -> 4 | TFloat -> 4 | _ -> 8 in
  let b = to_int loc bytes in
  if b mod sz <> 0 then err loc "byte count %d not divisible by %d" b sz else b / sz

(* Find the sizeof type mentioned in an allocation-size expression, to
   decide between int and float storage. *)
let rec sizeof_type_of (e : expr) =
  match e.e with
  | SizeofT ty -> Some ty
  | Binary (_, a, b) -> (
      match sizeof_type_of a with Some t -> Some t | None -> sizeof_type_of b)
  | Cast (_, a) -> sizeof_type_of a
  | _ -> None

let alloc_array loc ty_opt bytes =
  match ty_opt with
  | Some (TInt | TConst TInt) -> VArrI (Array.make (elem_count loc TInt bytes) 0)
  | Some (TFloat | TConst TFloat) -> VArrF (Array.make (elem_count loc TFloat bytes) 0.0)
  | _ -> VArrF (Array.make (elem_count loc TDouble bytes) 0.0)

(* --- interpreter core --------------------------------------------------- *)

let record_line (st : state) (loc : Loc.t) =
  if not (Loc.is_none loc) then Coverage.hit st.cov ~file:loc.Loc.file ~line:loc.Loc.start.Loc.line

let tick (st : state) loc =
  st.steps <- st.steps + 1;
  if st.steps > st.max_steps then err loc "step budget exhausted (%d)" st.max_steps

let rec eval (st : state) env (e : expr) : value =
  let loc = e.eloc in
  match e.e with
  | IntE n -> VInt n
  | FloatE f -> VFloat f
  | BoolE b -> VBool b
  | StrE s -> VStr s
  | CharE c -> VInt (Char.code c)
  | NullE -> VUnit
  | Var name -> (
      match lookup st env name with
      | Some r -> !r
      | None -> (
          match Hashtbl.find_opt st.funcs name with
          | Some f -> VFun f
          | None -> eval_builtin_const st env loc name))
  | Unary (op, a) -> eval_unary st env loc op a
  | Binary (LAnd, a, b) ->
      if to_bool loc (eval st env a) then VBool (to_bool loc (eval st env b))
      else VBool false
  | Binary (LOr, a, b) ->
      if to_bool loc (eval st env a) then VBool true
      else VBool (to_bool loc (eval st env b))
  | Binary (op, a, b) -> arith loc op (eval st env a) (eval st env b)
  | Assign (op, lhs, rhs) ->
      let v = eval st env rhs in
      let get, set = lvalue st env lhs in
      let stored =
        match op with None -> v | Some bop -> arith loc bop (get ()) v
      in
      set stored;
      stored
  | Ternary (c, a, b) -> if to_bool loc (eval st env c) then eval st env a else eval st env b
  | Call (callee, _, args) -> eval_call st env loc callee args
  | KernelLaunch (callee, cfg, args) -> eval_launch st env loc callee cfg args
  | Index (a, i) -> (
      let va = eval st env a in
      let idx = to_int loc (eval st env i) in
      match va with
      | VArrF arr ->
          if idx < 0 || idx >= Array.length arr then err loc "index %d out of bounds [0,%d)" idx (Array.length arr);
          VFloat arr.(idx)
      | VArrI arr ->
          if idx < 0 || idx >= Array.length arr then err loc "index %d out of bounds [0,%d)" idx (Array.length arr);
          VInt arr.(idx)
      | VRef r -> (
          match !r with
          | VArrF arr -> VFloat arr.(idx)
          | VArrI arr -> VInt arr.(idx)
          | _ -> err loc "cannot index through this reference")
      | _ -> err loc "cannot index a non-array value")
  | Member (a, fieldname, _) -> (
      let va = eval st env a in
      match va with
      | VObj (_, fields) -> (
          match Hashtbl.find_opt fields fieldname with
          | Some v -> v
          | None -> err loc "object has no field %s" fieldname)
      | _ -> err loc "member access on non-object")
  | Lambda (_, params, body) -> VClosure { c_params = params; c_body = body; c_env = env }
  | Cast (ty, a) -> (
      let v = eval st env a in
      match ty with
      | TInt | TLong | TSizeT | TConst (TInt | TLong | TSizeT) -> VInt (to_int loc v)
      | TFloat | TDouble | TConst (TFloat | TDouble) -> VFloat (to_float loc v)
      | _ -> v)
  | New (ty, n) -> (
      match n with
      | Some n -> (
          let count = to_int loc (eval st env n) in
          match ty with
          | TInt | TConst TInt -> VArrI (Array.make count 0)
          | _ -> VArrF (Array.make count 0.0))
      | None -> default_value st ty loc)
  | InitList es ->
      (* bare brace initialiser: keep evaluated elements in an object *)
      let vs = List.map (eval st env) es in
      obj "init-list" (List.mapi (fun i v -> (string_of_int i, v)) vs)
  | SizeofT ty -> (
      match ty with
      | TInt | TFloat | TConst (TInt | TFloat) -> VInt 4
      | TChar | TBool -> VInt 1
      | _ -> VInt 8)

and eval_builtin_const _st _env loc name =
  (* names that resolve without declaration *)
  match name with
  | "std::execution::par_unseq" | "std::execution::par" | "std::execution::seq" ->
      VStr "execution-policy"
  | "RAND_MAX" -> VInt 0x7FFFFFFF
  | "M_PI" -> VFloat Float.pi
  | _ -> err loc "unknown name %s" name

and eval_unary st env loc op a =
  match op with
  | Neg -> (
      match eval st env a with
      | VInt n -> VInt (-n)
      | VFloat f -> VFloat (-.f)
      | v -> err loc "cannot negate %s" (Format.asprintf "%a" pp_value v))
  | Not -> VBool (not (to_bool loc (eval st env a)))
  | BitNot -> VInt (lnot (to_int loc (eval st env a)))
  | PreInc | PreDec | PostInc | PostDec ->
      let get, set = lvalue st env a in
      let old = get () in
      let delta = match op with PreInc | PostInc -> 1 | _ -> -1 in
      let updated = arith loc Add old (VInt delta) in
      set updated;
      (match op with PostInc | PostDec -> old | _ -> updated)
  | Deref -> (
      match eval st env a with
      | VRef r -> !r
      | VArrF arr -> VFloat arr.(0)
      | VArrI arr -> VInt arr.(0)
      | v -> err loc "cannot dereference %s" (Format.asprintf "%a" pp_value v))
  | AddrOf -> (
      match a.e with
      | Var name -> (
          match lookup st env name with
          | Some r -> VRef r
          | None -> err loc "address of unknown variable %s" name)
      | _ ->
          let v = eval st env a in
          VRef (ref v))

(* lvalue = (getter, setter) pair *)
and lvalue st env (e : expr) : (unit -> value) * (value -> unit) =
  let loc = e.eloc in
  match e.e with
  | Var name -> (
      match lookup st env name with
      | Some r -> ((fun () -> !r), fun v -> r := v)
      | None -> err loc "assignment to unknown variable %s" name)
  | Index (a, i) -> (
      let va = eval st env a in
      let idx = to_int loc (eval st env i) in
      let elem arr_get arr_set =
        ((fun () -> arr_get idx), fun v -> arr_set idx v)
      in
      match va with
      | VArrF arr ->
          if idx < 0 || idx >= Array.length arr then err loc "index %d out of bounds [0,%d)" idx (Array.length arr);
          elem (fun i -> VFloat arr.(i)) (fun i v -> arr.(i) <- to_float loc v)
      | VArrI arr ->
          if idx < 0 || idx >= Array.length arr then err loc "index %d out of bounds [0,%d)" idx (Array.length arr);
          elem (fun i -> VInt arr.(i)) (fun i v -> arr.(i) <- to_int loc v)
      | VRef r -> (
          match !r with
          | VArrF arr -> elem (fun i -> VFloat arr.(i)) (fun i v -> arr.(i) <- to_float loc v)
          | VArrI arr -> elem (fun i -> VInt arr.(i)) (fun i v -> arr.(i) <- to_int loc v)
          | _ -> err loc "cannot index through this reference")
      | _ -> err loc "cannot index non-array")
  | Member (a, fieldname, _) -> (
      let va = eval st env a in
      match va with
      | VObj (_, fields) ->
          ( (fun () ->
              match Hashtbl.find_opt fields fieldname with
              | Some v -> v
              | None -> err loc "object has no field %s" fieldname),
            fun v -> Hashtbl.replace fields fieldname v )
      | _ -> err loc "member assignment on non-object")
  | Unary (Deref, a) -> (
      match eval st env a with
      | VRef r -> ((fun () -> !r), fun v -> r := v)
      | VArrF arr -> ((fun () -> VFloat arr.(0)), fun v -> arr.(0) <- to_float loc v)
      | _ -> err loc "cannot assign through this pointer")
  | Call (callee, _, [ idx ]) -> (
      (* Kokkos view element access: a(i) = v *)
      let va = eval st env callee in
      let i = to_int loc (eval st env idx) in
      match va with
      | VArrF arr -> ((fun () -> VFloat arr.(i)), fun v -> arr.(i) <- to_float loc v)
      | VArrI arr -> ((fun () -> VInt arr.(i)), fun v -> arr.(i) <- to_int loc v)
      | _ -> err loc "call-form assignment on non-view value")
  | _ -> err loc "expression is not assignable"

(* --- calls ------------------------------------------------------------- *)

and call_value st loc callee args =
  match callee with
  | VFun f -> call_func st f args loc
  | VClosure c -> call_closure st c args loc
  | VArrF arr -> (
      (* Kokkos view read access a(i) *)
      match args with
      | [ VInt i ] -> VFloat arr.(i)
      | _ -> err loc "bad view access")
  | VArrI arr -> (
      match args with
      | [ VInt i ] -> VInt arr.(i)
      | _ -> err loc "bad view access")
  | v -> err loc "cannot call %s" (Format.asprintf "%a" pp_value v)

and bind_params st env_scopes params args loc =
  let sc : scope = Hashtbl.create 8 in
  let env = sc :: env_scopes in
  let rec go params args =
    match (params, args) with
    | [], [] -> ()
    | p :: ps, a :: as_ ->
        (match (p.p_ty, a) with
        | (TRef _ | TConst (TRef _)), VRef r -> bind_ref env p.p_name r
        | _, VRef r -> bind env p.p_name !r
        | _, v -> bind env p.p_name v);
        go ps as_
    | p :: ps, [] ->
        (* tolerate missing trailing args (e.g. main's argc/argv) *)
        bind env p.p_name (default_value st p.p_ty loc);
        go ps []
    | [], _ :: _ -> err loc "too many arguments"
  in
  go params args;
  env

and call_func st (f : func) args loc =
  record_line st f.f_loc;
  match f.f_body with
  | None -> err loc "call to undefined function %s" f.f_name
  | Some body -> (
      let env = bind_params st [] f.f_params args loc in
      try
        exec_stmts st env body;
        VUnit
      with Return_exc v -> v)

and call_closure st (c : closure) args loc =
  let env = bind_params st c.c_env c.c_params args loc in
  try
    exec_stmts st env c.c_body;
    VUnit
  with Return_exc v -> v

and eval_call st env loc callee args =
  (* Member-method dispatch first, then named builtins, then user code. *)
  match callee.e with
  | Member (recv, meth, _) ->
      let vrecv = eval st env recv in
      eval_method st env loc vrecv meth args
  | Var name -> (
      match lookup st env name with
      | Some r -> call_value st loc !r (List.map (eval st env) args)
      | None -> (
          match Hashtbl.find_opt st.funcs name with
          | Some f when f.f_body <> None ->
              call_func st f (List.map (eval_arg st env) args) loc
          | _ -> eval_builtin st env loc name args))
  | _ ->
      let vcallee = eval st env callee in
      call_value st loc vcallee (List.map (eval st env) args)

(* Reference-producing argument evaluation: [&x] stays a reference, and a
   bare variable holding an array passes the array (aliasing). *)
and eval_arg st env (a : expr) = eval st env a

and eval_method st env loc vrecv meth args =
  let evargs () = List.map (eval st env) args in
  match (vrecv, meth) with
  (* SYCL queue *)
  | VObj ("sycl::queue", _), "submit" -> (
      match evargs () with
      | [ VClosure c ] -> call_closure st c [ obj "sycl::handler" [] ] loc
      | _ -> err loc "queue.submit expects a lambda")
  | VObj ("sycl::queue", _), ("wait" | "wait_and_throw") -> VUnit
  | VObj ("sycl::queue", _), "memcpy" -> (
      match evargs () with
      | [ dst; src; _bytes ] ->
          copy_array loc ~dst ~src;
          VUnit
      | _ -> err loc "queue.memcpy expects three arguments")
  | VObj ("sycl::queue", _), "parallel_for" -> sycl_parallel_for st loc (evargs ())
  | VObj ("sycl::queue", _), "copy" -> (
      match evargs () with
      | [ src; dst; _n ] ->
          copy_array loc ~dst ~src;
          VUnit
      | _ -> err loc "queue.copy expects three arguments")
  (* SYCL handler *)
  | VObj ("sycl::handler", _), "parallel_for" -> sycl_parallel_for st loc (evargs ())
  | VObj ("sycl::handler", _), "copy" -> (
      match evargs () with
      | [ src; dst ] ->
          copy_array loc ~dst ~src;
          VUnit
      | _ -> err loc "handler.copy expects two arguments")
  (* SYCL buffer / accessor *)
  | VObj ("sycl::buffer", fields), ("get_access" | "get_host_access") ->
      Hashtbl.find fields "data"
  | VObj ("sycl::buffer", fields), "size" -> (
      match Hashtbl.find fields "data" with
      | VArrF a -> VInt (Array.length a)
      | VArrI a -> VInt (Array.length a)
      | _ -> VInt 0)
  (* RAJA reducers *)
  | VObj ("RAJA::ReduceSum", fields), "get" -> Hashtbl.find fields "acc"
  (* TBB blocked_range *)
  | VObj ("tbb::blocked_range", fields), "begin" -> Hashtbl.find fields "b"
  | VObj ("tbb::blocked_range", fields), "end" -> Hashtbl.find fields "e"
  (* dim3-like structs and Kokkos views fall through to errors *)
  | VObj (tag, _), m -> err loc "unknown method %s on %s" m tag
  | VArrF _, "size" -> (
      match vrecv with VArrF a -> VInt (Array.length a) | _ -> VUnit)
  | _, m -> err loc "method call %s on non-object" m

and sycl_parallel_for st loc args =
  match args with
  | [ VObj ("sycl::range", fields); VClosure c ] | [ VObj ("sycl::nd_range", fields); VClosure c ]
    ->
      let n = to_int loc (Hashtbl.find fields "n") in
      for i = 0 to n - 1 do
        ignore (call_closure st c [ VInt i ] loc)
      done;
      VUnit
  | [ VInt n; VClosure c ] ->
      for i = 0 to n - 1 do
        ignore (call_closure st c [ VInt i ] loc)
      done;
      VUnit
  | _ -> err loc "parallel_for expects (range, lambda)"

and copy_array loc ~dst ~src =
  match (dst, src) with
  | VArrF d, VArrF s -> Array.blit s 0 d 0 (min (Array.length s) (Array.length d))
  | VArrI d, VArrI s -> Array.blit s 0 d 0 (min (Array.length s) (Array.length d))
  | VRef d, s -> (
      match (!d, s) with
      | VArrF d, VArrF s -> Array.blit s 0 d 0 (min (Array.length s) (Array.length d))
      | VArrI d, VArrI s -> Array.blit s 0 d 0 (min (Array.length s) (Array.length d))
      | _ -> err loc "incompatible copy")
  | _ -> err loc "incompatible copy"

and eval_launch st env loc callee cfg args =
  (* CUDA/HIP triple-chevron launch: iterate the grid sequentially. *)
  let grid = to_int loc (eval st env (List.nth cfg 0)) in
  let block = to_int loc (eval st env (List.hd (List.tl cfg))) in
  let f =
    match callee.e with
    | Var name -> (
        match Hashtbl.find_opt st.funcs name with
        | Some f -> f
        | None -> err loc "unknown kernel %s" name)
    | _ -> err loc "kernel launch callee must be a function name"
  in
  let vargs = List.map (eval st env) args in
  let dim3 x = obj "dim3" [ ("x", VInt x); ("y", VInt 1); ("z", VInt 1) ] in
  Hashtbl.replace st.globals "gridDim" (ref (dim3 grid));
  Hashtbl.replace st.globals "blockDim" (ref (dim3 block));
  for b = 0 to grid - 1 do
    Hashtbl.replace st.globals "blockIdx" (ref (dim3 b));
    for t = 0 to block - 1 do
      Hashtbl.replace st.globals "threadIdx" (ref (dim3 t));
      ignore (call_func st f vargs loc)
    done
  done;
  VUnit

(* --- named builtins ------------------------------------------------------ *)

and eval_builtin st env loc name args =
  let ev () = List.map (eval st env) args in
  let f1 fn =
    match ev () with
    | [ v ] -> VFloat (fn (to_float loc v))
    | _ -> err loc "%s expects one argument" name
  in
  let f2 fn =
    match ev () with
    | [ a; b ] -> VFloat (fn (to_float loc a) (to_float loc b))
    | _ -> err loc "%s expects two arguments" name
  in
  match name with
  (* math *)
  | "sqrt" | "std::sqrt" | "sycl::sqrt" -> f1 sqrt
  | "fabs" | "std::fabs" | "std::abs" | "sycl::fabs" -> f1 Float.abs
  | "abs" -> (
      match ev () with
      | [ VInt n ] -> VInt (Stdlib.abs n)
      | [ v ] -> VFloat (Float.abs (to_float loc v))
      | _ -> err loc "abs expects one argument")
  | "exp" | "std::exp" -> f1 exp
  | "log" | "std::log" -> f1 log
  | "cos" | "std::cos" -> f1 cos
  | "sin" | "std::sin" -> f1 sin
  | "floor" | "std::floor" -> f1 Float.floor
  | "ceil" | "std::ceil" -> f1 Float.ceil
  | "pow" | "std::pow" -> f2 ( ** )
  | "fmin" | "std::fmin" -> f2 Float.min
  | "fmax" | "std::fmax" -> f2 Float.max
  | "fmod" -> f2 Float.rem
  | "min" | "std::min" -> (
      match ev () with
      | [ VInt a; VInt b ] -> VInt (Stdlib.min a b)
      | [ a; b ] -> VFloat (Float.min (to_float loc a) (to_float loc b))
      | _ -> err loc "min expects two arguments")
  | "max" | "std::max" -> (
      match ev () with
      | [ VInt a; VInt b ] -> VInt (Stdlib.max a b)
      | [ a; b ] -> VFloat (Float.max (to_float loc a) (to_float loc b))
      | _ -> err loc "max expects two arguments")
  (* io *)
  | "printf" | "fprintf" -> (
      match ev () with
      | VStr fmtstr :: rest ->
          Buffer.add_string st.out (format_printf loc fmtstr rest);
          VInt 0
      | _ :: VStr fmtstr :: rest ->
          Buffer.add_string st.out (format_printf loc fmtstr rest);
          VInt 0
      | _ -> err loc "printf expects a format string")
  | "exit" -> raise (Return_exc (match ev () with [ v ] -> v | _ -> VInt 0))
  (* allocation *)
  | "malloc" -> (
      match (args, ev ()) with
      | [ size_expr ], [ bytes ] -> alloc_array loc (sizeof_type_of size_expr) bytes
      | _ -> err loc "malloc expects one argument")
  | "free" -> VUnit
  (* CUDA / HIP runtime *)
  | "cudaMalloc" | "hipMalloc" -> (
      match (args, ev ()) with
      | [ _; size_expr ], [ VRef r; bytes ] ->
          r := alloc_array loc (sizeof_type_of size_expr) bytes;
          VInt 0
      | _ -> err loc "%s expects (&ptr, bytes)" name)
  | "cudaMemcpy" | "hipMemcpy" -> (
      match ev () with
      | dst :: src :: _ ->
          copy_array loc ~dst ~src;
          VInt 0
      | _ -> err loc "%s expects (dst, src, bytes, kind)" name)
  | "cudaFree" | "hipFree" | "cudaDeviceSynchronize" | "hipDeviceSynchronize"
  | "cudaGetLastError" | "hipGetLastError" ->
      VInt 0
  | "cudaMemset" | "hipMemset" -> (
      match ev () with
      | [ VArrF arr; v; _bytes ] ->
          Array.fill arr 0 (Array.length arr) (to_float loc v);
          VInt 0
      | [ VArrI arr; v; _bytes ] ->
          Array.fill arr 0 (Array.length arr) (to_int loc v);
          VInt 0
      | _ -> err loc "%s expects (ptr, value, bytes)" name)
  | "atomicAdd" | "atomicAdd_system" -> (
      match ev () with
      | [ VRef r; v ] ->
          let cur = to_float loc !r in
          r := VFloat (cur +. to_float loc v);
          VFloat cur
      | _ -> err loc "atomicAdd expects (&x, v)")
  (* OpenMP runtime *)
  | "omp_get_num_threads" | "omp_get_max_threads" -> VInt 1
  | "omp_get_thread_num" -> VInt 0
  | "omp_get_wtime" ->
      st.steps <- st.steps + 1;
      VFloat (float_of_int st.steps *. 1e-9)
  (* SYCL free functions *)
  | "sycl::malloc_shared" | "sycl::malloc_device" | "sycl::malloc_host" -> (
      match (args, ev ()) with
      | [ size_expr; _ ], [ bytes; _ ] -> alloc_array loc (sizeof_type_of size_expr) bytes
      | _ -> err loc "%s expects (bytes, queue)" name)
  | "sycl::free" -> VUnit
  (* Kokkos *)
  | "Kokkos::initialize" | "Kokkos::finalize" | "Kokkos::fence" -> VUnit
  | "Kokkos::parallel_for" -> (
      match ev () with
      | [ VStr _; VInt n; VClosure c ] | [ VInt n; VClosure c ] ->
          for i = 0 to n - 1 do
            ignore (call_closure st c [ VInt i ] loc)
          done;
          VUnit
      | _ -> err loc "Kokkos::parallel_for expects (label, n, lambda)")
  | "Kokkos::parallel_reduce" -> (
      match ev () with
      | [ VStr _; VInt n; VClosure c; acc ] | [ VInt n; VClosure c; acc ] ->
          let accr = match acc with VRef r -> r | _ -> ref acc in
          accr := VFloat 0.0;
          for i = 0 to n - 1 do
            ignore (call_closure st c [ VInt i; VRef accr ] loc)
          done;
          VUnit
      | _ -> err loc "Kokkos::parallel_reduce expects (label, n, lambda, result)")
  | "Kokkos::deep_copy" -> (
      match ev () with
      | [ dst; src ] ->
          copy_array loc ~dst ~src;
          VUnit
      | _ -> err loc "Kokkos::deep_copy expects (dst, src)")
  (* RAJA *)
  | "RAJA::forall" -> (
      match ev () with
      | [ VObj ("RAJA::RangeSegment", fields); VClosure c ] ->
          let b = to_int loc (Hashtbl.find fields "b") in
          let e = to_int loc (Hashtbl.find fields "e") in
          for i = b to e - 1 do
            ignore (call_closure st c [ VInt i ] loc)
          done;
          VUnit
      | _ -> err loc "RAJA::forall expects (range, lambda)")
  (* TBB *)
  | "tbb::parallel_for" -> (
      match ev () with
      | [ range; VClosure c ] ->
          ignore (call_closure st c [ range ] loc);
          VUnit
      | _ -> err loc "tbb::parallel_for expects (range, lambda)")
  | "tbb::parallel_reduce" -> (
      match ev () with
      | [ range; init; VClosure body; VClosure join ] ->
          let partial = call_closure st body [ range; init ] loc in
          call_closure st join [ partial; init ] loc
      | _ -> err loc "tbb::parallel_reduce expects (range, init, body, join)")
  (* StdPar *)
  | "std::for_each" -> (
      match ev () with
      | [ _policy; VInt first; VInt last; VClosure c ] ->
          for i = first to last - 1 do
            ignore (call_closure st c [ VInt i ] loc)
          done;
          VUnit
      | _ -> err loc "std::for_each expects (policy, first, last, lambda)")
  | "std::transform_reduce" -> (
      match ev () with
      | [ _policy; VInt first; VInt last; init; VClosure reduce; VClosure transform ] ->
          let acc = ref init in
          for i = first to last - 1 do
            let t = call_closure st transform [ VInt i ] loc in
            acc := call_closure st reduce [ !acc; t ] loc
          done;
          !acc
      | _ ->
          err loc
            "std::transform_reduce expects (policy, first, last, init, reduce, transform)")
  | "counting_iterator" | "thrust::counting_iterator" -> (
      match ev () with [ v ] -> v | _ -> err loc "counting_iterator expects one argument")
  (* misc *)
  | "assert" -> (
      match ev () with
      | [ v ] -> if to_bool loc v then VUnit else err loc "assertion failed"
      | _ -> err loc "assert expects one argument")
  | "__syncthreads" | "__threadfence" -> VUnit
  | _ -> (
      (* constructor syntax in expression position: sycl::range<1>(n),
         tbb::blocked_range<int>(0, n), dim3(g), struct literals... *)
      match construct st env loc (TNamed (name, [])) args with
      | v -> v
      | exception Runtime_error _ -> err loc "unknown function %s" name)

and format_printf loc fmtstr args =
  (* tiny %d / %g / %f / %e / %s / %% support *)
  let b = Buffer.create 64 in
  let args = ref args in
  let pop () =
    match !args with
    | a :: rest ->
        args := rest;
        a
    | [] -> err loc "printf: not enough arguments"
  in
  let n = String.length fmtstr in
  let i = ref 0 in
  while !i < n do
    if fmtstr.[!i] = '%' && !i + 1 < n then begin
      (* skip width/precision chars *)
      let j = ref (!i + 1) in
      while
        !j < n
        && (match fmtstr.[!j] with
           | '0' .. '9' | '.' | '-' | '+' | 'l' -> true
           | _ -> false)
      do
        incr j
      done;
      (if !j < n then
         match fmtstr.[!j] with
         | 'd' | 'i' | 'u' -> Buffer.add_string b (string_of_int (to_int loc (pop ())))
         | 'f' | 'g' | 'e' ->
             Buffer.add_string b (Printf.sprintf "%.6f" (to_float loc (pop ())))
         | 's' -> (
             match pop () with
             | VStr s -> Buffer.add_string b s
             | v -> Buffer.add_string b (Format.asprintf "%a" pp_value v))
         | '%' -> Buffer.add_char b '%'
         | c -> Buffer.add_char b c);
      i := !j + 1
    end
    else begin
      Buffer.add_char b fmtstr.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* --- statements ----------------------------------------------------------- *)

and exec_stmts st env stmts = List.iter (exec_stmt st env) stmts

and exec_stmt st env (s : stmt) =
  tick st s.sloc;
  record_line st s.sloc;
  match s.s with
  | Decl (ty, names) ->
      List.iter
        (fun (name, init) ->
          let v =
            match init with
            | Some ({ e = InitList ctor_args; _ } as e) -> construct st env e.eloc ty ctor_args
            | Some e -> eval st env e
            | None -> (
                match ty with
                | TNamed _ | TConst (TNamed _) -> (
                    (* a default-constructed library/record object *)
                    try construct st env s.sloc ty []
                    with Runtime_error _ -> default_value st ty s.sloc)
                | _ -> default_value st ty s.sloc)
          in
          bind env name v)
        names
  | ExprS e -> ignore (eval st env e)
  | If (c, t, f) ->
      if to_bool c.eloc (eval st env c) then exec_block st env t
      else exec_block st env f
  | For (init, cond, step, body) ->
      let sc : scope = Hashtbl.create 4 in
      let env' = sc :: env in
      (match init with Some i -> exec_stmt st env' i | None -> ());
      let continue = ref true in
      while !continue do
        let go =
          match cond with Some c -> to_bool c.eloc (eval st env' c) | None -> true
        in
        if not go then continue := false
        else begin
          (try exec_block st env' body with
          | Break_exc -> continue := false
          | Continue_exc -> ());
          if !continue then
            match step with Some e -> ignore (eval st env' e) | None -> ()
        end
      done
  | While (c, body) ->
      let continue = ref true in
      while !continue && to_bool c.eloc (eval st env c) do
        try exec_block st env body with
        | Break_exc -> continue := false
        | Continue_exc -> ()
      done
  | DoWhile (body, c) ->
      let continue = ref true in
      while !continue do
        (try exec_block st env body with
        | Break_exc -> continue := false
        | Continue_exc -> ());
        if !continue && not (to_bool c.eloc (eval st env c)) then continue := false
      done
  | Return e -> raise (Return_exc (match e with Some e -> eval st env e | None -> VUnit))
  | Break -> raise Break_exc
  | Continue -> raise Continue_exc
  | Block body -> exec_block st env body
  | Directive (_, body) -> (
      (* directives execute their governed statement serially *)
      match body with Some b -> exec_stmt st env b | None -> ())
  | DeleteS (e, _) ->
      ignore (eval st env e)

and exec_block st env stmts =
  let sc : scope = Hashtbl.create 4 in
  exec_stmts st (sc :: env) stmts

(* Constructor-style initialisers for library types. *)
and construct st env loc ty ctor_args =
  let evargs () = List.map (eval st env) ctor_args in
  match ty with
  | TNamed (name, targs) -> (
      match name with
      | "sycl::queue" -> obj "sycl::queue" []
      | "sycl::range" | "sycl::nd_range" -> (
          match evargs () with
          | [ n ] -> obj "sycl::range" [ ("n", n) ]
          | [ n; _ ] -> obj "sycl::range" [ ("n", n) ]
          | _ -> err loc "sycl::range expects a size")
      | "sycl::buffer" -> (
          match evargs () with
          | [ VInt n ] ->
              let data =
                match targs with
                | TyArg TInt :: _ -> VArrI (Array.make n 0)
                | _ -> VArrF (Array.make n 0.0)
              in
              obj "sycl::buffer" [ ("data", data) ]
          | [ (VArrF _ | VArrI _) as data; _ ] | [ (VArrF _ | VArrI _) as data ] ->
              obj "sycl::buffer" [ ("data", data) ]
          | _ -> err loc "sycl::buffer expects a size or host data")
      | "Kokkos::View" -> (
          match evargs () with
          | [ VStr _; VInt n ] | [ VInt n ] -> (
              match targs with
              | TyArg (TPtr TInt) :: _ -> VArrI (Array.make n 0)
              | _ -> VArrF (Array.make n 0.0))
          | _ -> err loc "Kokkos::View expects (label, n)")
      | "RAJA::RangeSegment" -> (
          match evargs () with
          | [ b; e ] -> obj "RAJA::RangeSegment" [ ("b", b); ("e", e) ]
          | _ -> err loc "RAJA::RangeSegment expects (begin, end)")
      | "RAJA::ReduceSum" -> (
          match evargs () with
          | [ init ] -> obj "RAJA::ReduceSum" [ ("acc", init) ]
          | [] -> obj "RAJA::ReduceSum" [ ("acc", VFloat 0.0) ]
          | _ -> err loc "RAJA::ReduceSum expects an initial value")
      | "tbb::blocked_range" -> (
          match evargs () with
          | [ b; e ] -> obj "tbb::blocked_range" [ ("b", b); ("e", e) ]
          | _ -> err loc "tbb::blocked_range expects (begin, end)")
      | "dim3" -> (
          match evargs () with
          | [ x ] -> obj "dim3" [ ("x", x); ("y", VInt 1); ("z", VInt 1) ]
          | _ -> err loc "dim3 expects one argument")
      | _ -> (
          match Hashtbl.find_opt st.records name with
          | Some r ->
              let vs = evargs () in
              obj name
                (List.mapi
                   (fun i (fty, fname) ->
                     ( fname,
                       match List.nth_opt vs i with
                       | Some v -> v
                       | None -> default_value st fty loc ))
                   r.r_fields)
          | None -> err loc "cannot construct unknown type %s" name))
  | _ -> err loc "constructor initialiser on non-class type"

(* --- entry ------------------------------------------------------------- *)

let run ?(max_steps = 50_000_000) ?(entry = "main") ?(args = []) units =
  let st =
    {
      funcs = Hashtbl.create 64;
      records = Hashtbl.create 16;
      globals = Hashtbl.create 16;
      cov = Coverage.create ();
      out = Buffer.create 256;
      steps = 0;
      max_steps;
    }
  in
  (* Collect functions, records and globals across all units; later
     definitions win (prototype then definition). *)
  List.iter
    (fun u ->
      List.iter
        (fun top ->
          match top with
          | Func f ->
              if
                f.f_body <> None
                ||
                match Hashtbl.find_opt st.funcs f.f_name with
                | Some prev -> prev.f_body = None
                | None -> true
              then Hashtbl.replace st.funcs f.f_name f
          | Record r -> Hashtbl.replace st.records r.r_name r
          | GlobalVar (_, ty, name, init, loc) ->
              let v =
                match init with
                | Some e -> ( try eval st [] e with Runtime_error _ -> default_value st ty loc)
                | None -> default_value st ty loc
              in
              Hashtbl.replace st.globals name (ref v)
          | Using _ | TopDirective _ -> ())
        u.t_tops)
    units;
  let result =
    match Hashtbl.find_opt st.funcs entry with
    | None -> Error (Printf.sprintf "entry function %s not found" entry)
    | Some f -> (
        try Ok (call_func st f args f.f_loc) with
        | Runtime_error (msg, loc) ->
            Error (Printf.sprintf "%s at %s" msg (Loc.to_string loc))
        | Return_exc v -> Ok v
        | Break_exc | Continue_exc -> Error "break/continue escaped a loop")
  in
  { result; coverage = st.cov; output = Buffer.contents st.out; steps = st.steps }
