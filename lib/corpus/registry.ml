let names = [ "babelstream"; "babelstream-f"; "tealeaf"; "cloverleaf"; "minibude" ]

let corpus name =
  match String.lowercase_ascii name with
  | "babelstream" -> Some (Babelstream.all ())
  | "babelstream-f" | "babelstream-fortran" -> Some (Babelstream_f.all ())
  | "tealeaf" -> Some (Tealeaf.all ())
  | "cloverleaf" -> Some (Cloverleaf.all ())
  | "minibude" -> Some (Minibude.all ())
  | _ -> None

let builder name =
  match String.lowercase_ascii name with
  | "babelstream" -> Some (fun ~model -> Babelstream.codebase ~model)
  | "babelstream-f" | "babelstream-fortran" ->
      Some (fun ~model -> Babelstream_f.codebase ~model)
  | "tealeaf" -> Some (fun ~model -> Tealeaf.codebase ~model)
  | "cloverleaf" -> Some (fun ~model -> Cloverleaf.codebase ~model)
  | "minibude" -> Some (fun ~model -> Minibude.codebase ~model)
  | _ -> None
