(** The bundled mini-app corpora, by name.

    One table shared by every layer that resolves an app name — the
    CLI/daemon registry ({!Sv_core.Apps}) and the synthetic-corpus
    generator's mutation seeds ([Sv_gen.Gen]) — so adding a mini-app is
    a change here, not in each consumer. All lookups are
    case-insensitive and recognise the ["babelstream-fortran"] alias. *)

val names : string list
(** Canonical app names, ["babelstream"] first. *)

val corpus : string -> Emit.codebase list option
(** [corpus name] is the app's full bundled model set. *)

val builder : string -> (model:string -> Emit.codebase option) option
(** [builder name] is the app's on-demand single-model emitter, the
    hook through which extension models outside the bundled set are
    built. *)
