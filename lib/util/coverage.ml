type t = (string, (int, int) Hashtbl.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let file_table t file =
  match Hashtbl.find_opt t file with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 64 in
      Hashtbl.replace t file tbl;
      tbl

let hit t ~file ~line =
  let tbl = file_table t file in
  Hashtbl.replace tbl line (1 + Option.value ~default:0 (Hashtbl.find_opt tbl line))

let merge a b =
  let out = create () in
  let add src =
    Hashtbl.iter
      (fun file tbl ->
        let dst = file_table out file in
        Hashtbl.iter
          (fun line n ->
            Hashtbl.replace dst line (n + Option.value ~default:0 (Hashtbl.find_opt dst line)))
          tbl)
      src
  in
  add a;
  add b;
  out

let count t ~file ~line =
  match Hashtbl.find_opt t file with
  | None -> 0
  | Some tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl line)

let covered t ~file ~line = count t ~file ~line > 0

let files t =
  Hashtbl.fold (fun f _ acc -> f :: acc) t [] |> List.sort String.compare

let lines_hit t ~file =
  match Hashtbl.find_opt t file with
  | None -> []
  | Some tbl -> Hashtbl.fold (fun l _ acc -> l :: acc) tbl [] |> List.sort compare

(* Sorted dump so serialising a recording is deterministic: Hashtbl
   iteration order depends on insertion history, which differs between a
   fresh interpreter run and a cache restore. *)
let dump t =
  files t
  |> List.map (fun file ->
         let tbl = Hashtbl.find t file in
         let lines =
           Hashtbl.fold (fun l n acc -> (l, n) :: acc) tbl []
           |> List.sort compare
         in
         (file, lines))

let restore entries =
  let t = create () in
  List.iter
    (fun (file, lines) ->
      List.iter
        (fun (line, n) ->
          if n > 0 then
            let tbl = file_table t file in
            Hashtbl.replace tbl line
              (n + Option.value ~default:0 (Hashtbl.find_opt tbl line)))
        lines)
    entries;
  t

let keep_loc t loc =
  if Loc.is_none loc then true
  else List.exists (fun line -> covered t ~file:loc.Loc.file ~line) (Loc.lines_covered loc)
