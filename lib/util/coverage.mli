(** Line-coverage data.

    The paper's coverage variant (§IV-D) converts runtime profile data
    into "a line-based mask that can be toggled for any tree structure or
    source file". This is that mask: per-file executed-line sets with hit
    counts, produced by the interpreter (standing in for GCov / Clang
    source-based coverage) and consumed by the metric layer to prune
    never-executed tree regions. *)

type t

val create : unit -> t
(** An empty recording. *)

val hit : t -> file:string -> line:int -> unit
(** [hit t ~file ~line] increments the execution count of a line. *)

val merge : t -> t -> t
(** [merge a b] sums two recordings (e.g. several benchmark runs). *)

val covered : t -> file:string -> line:int -> bool
(** [covered t ~file ~line] is true when the line executed at least
    once. *)

val count : t -> file:string -> line:int -> int
(** Execution count (0 when never hit). *)

val files : t -> string list
(** Files with at least one hit, sorted. *)

val lines_hit : t -> file:string -> int list
(** Sorted executed lines of one file. *)

val dump : t -> (string * (int * int) list) list
(** Full contents as [(file, (line, count) list)], sorted by file and
    line — the deterministic form the index cache serialises. *)

val restore : (string * (int * int) list) list -> t
(** Inverse of {!dump}: rebuild a recording. [restore (dump t)] observes
    identically to [t]; non-positive counts are dropped. *)

val keep_loc : t -> Loc.t -> bool
(** [keep_loc t loc] is the tree-mask predicate: true when [loc] is a
    synthesised location ({!Loc.none} — always kept) or when at least one
    line of the span executed. Everything else — including whole files
    that were compiled in but never ran, the way GCov reports
    zero-count inline header code — masks away. Container nodes whose own
    span never "executes" (function headers, braces) are protected one
    level up, by {!Sv_metrics.Divergence.mask_tree}'s keep-ancestors
    rule. *)
