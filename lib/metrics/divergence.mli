(** Relative divergence measures (§III-B/C, Eq. 4–7).

    [Source] compares normalised line sequences with the O(NP) diff
    distance; the tree metrics ([T_src], [T_sem], [T_sem+i], [T_ir])
    compare semantic-bearing trees with unit-cost TED. [dmax] (Eq. 7) is
    the size of the target tree — the distance at which no similarity
    remains — used to normalise divergences for cross-model
    comparability. *)

val source_distance : string list -> string list -> int
(** [source_distance a b] is the insert+delete edit distance between two
    normalised line lists (Eq. 4's summand). *)

type ted_algo = [ `Flat | `Zs ]
(** Kernel behind {!tree_distance}: [`Flat] (default) compiles each
    distinct canonical tree once into {!Sv_tree.Flat} contiguous arrays
    and runs the allocation-free kernel with per-pair strategy selection;
    [`Zs] is the pointer-tree Zhang–Shasha kernel, kept as the reference
    baseline. Both compute the identical distance — the bench harness
    checks whole matrices byte-for-byte. *)

val set_ted_algo : ted_algo -> unit
val ted_algo : unit -> ted_algo

val warm_flat : Sv_tree.Label.tree -> unit
(** [warm_flat t] canonises [t] and compiles its flat kernel into the
    process-global memo (keyed by intern id) if not already present.
    Call before forking a worker pool so children inherit the compiled
    kernels copy-on-write instead of each recompiling them. *)

val flat_count : unit -> int
(** Number of distinct trees with a compiled flat kernel in the memo. *)

val tree_distance : Sv_tree.Label.tree -> Sv_tree.Label.tree -> int
(** Unit-cost TED with the paper's label equality ({!Sv_tree.Label.equal}:
    kind and retained text; locations ignored). Operands are canonised
    through a process-global {!Sv_tree.Hashcons} table, so equal trees
    cost a pointer compare and repeated operands skip re-interning; the
    selected {!ted_algo} kernel computes the rest. *)

val tree_distance_bounded :
  cutoff:int -> Sv_tree.Label.tree -> Sv_tree.Label.tree -> int option
(** [tree_distance_bounded ~cutoff t1 t2] is [Some d] iff
    [tree_distance t1 t2 = d <= cutoff]. Uses the histogram lower-bound
    prefilter and in-DP early exit of {!Sv_tree.Ted.distance_bounded_int},
    so rejections are far cheaper than a full TED — the clustering
    fast path when only "within threshold?" matters. *)

val tree_lower_bound :
  Sv_tree.Label.tree -> Sv_tree.Label.tree -> int
(** Admissible lower bound on {!tree_distance} from compile-time
    summaries only ({!Sv_tree.Flat.lower_bound}: size / histogram /
    leaves / height deltas and the binary-branch profile bound), through
    the same process-global canonizer and flat memo as the kernels —
    never runs a DP. The metric scheduler's prefilter. *)

val tree_distance_matched : Sv_tree.Label.tree -> Sv_tree.Label.tree -> int
(** [tree_distance_matched t1 t2] approximates {!tree_distance} by the
    paper's [match] acceleration (§III-C) pushed one level down: the
    roots' children are paired positionally and their TEDs summed (plus
    the root relabel and the unmatched tails). Any restricted alignment is
    a valid edit script, so the result is an {e upper bound} of the exact
    distance — the trade-off the paper describes between whole-tree TED
    and per-unit matching, exposed for the ablation bench. *)

val dmax_tree : Sv_tree.Label.tree -> int
(** [dmax_tree t2] = |t2| (Eq. 7's summand). *)

val dmax_source : string list -> int
(** Line-count analogue of [dmax] for the [Source] metric. *)

val normalised : d:int -> dmax:int -> float
(** [normalised ~d ~dmax] is [d / dmax] clamped to [0, 1] — the value the
    paper's heatmaps plot (Figs. 7–8). [dmax = 0] maps to 0 when [d = 0]
    and 1 otherwise. *)

val mask_tree :
  Sv_util.Coverage.t -> Sv_tree.Label.tree -> Sv_tree.Label.tree
(** [mask_tree cov t] prunes subtrees whose source span never executed —
    the [+coverage] variant (§IV-D). The root always survives. *)

val intern_stats : unit -> Sv_tree.Hashcons.stats
(** Counters of the process-global intern table behind {!tree_distance}:
    distinct subtrees/labels seen and intern hit/miss totals — the
    structure-sharing rate the bench harness reports. *)
