module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let source_distance a b =
  Sv_diff.Diff.edit_distance ~eq:String.equal (Array.of_list a) (Array.of_list b)

(* TED spends its time in label comparisons; a process-global hash-consing
   canonizer interns every distinct subtree once and hands the kernels
   physically shared int-labelled views ([Label.equal] classes, so
   locations never reach the DP). Equal trees — repeated matrix cells,
   shared headers, identical ports — hit [Ted.distance_int]'s
   pointer-compare fast path, and repeated operands skip re-interning of
   everything already seen. Forked workers each inherit a private copy of
   the table, so the pool stays deterministic. *)
let canonizer : Label.t Sv_tree.Hashcons.canonizer =
  Sv_tree.Hashcons.canonizer ~init:4096 ~hash:Label.hash ~equal:Label.equal ()

let canon t = Sv_tree.Hashcons.canon canonizer t
let intern_stats () = Sv_tree.Hashcons.canonizer_stats canonizer

let tree_distance t1 t2 = Sv_tree.Ted.distance_int (canon t1) (canon t2)

let tree_distance_bounded ~cutoff t1 t2 =
  Sv_tree.Ted.distance_bounded_int ~cutoff (canon t1) (canon t2)

let tree_distance_matched t1 t2 =
  let root_cost = if Label.equal (Tree.label t1) (Tree.label t2) then 0 else 1 in
  (* Align the children sequences by an LCS over coarse fingerprints
     (root kind + size bucket) so an inserted declaration — a CUDA kernel,
     a shim function — is charged wholesale instead of shifting every
     later pair. The alignment is order-preserving, hence still a valid
     edit script and an upper bound of exact TED. *)
  let alike a b =
    let la : Label.t = Tree.label a and lb : Label.t = Tree.label b in
    la.Label.kind = lb.Label.kind
    && la.Label.text = lb.Label.text
    &&
    let sa = Tree.size a and sb = Tree.size b in
    (* same shape class: sizes within 2x (tiny subtrees always match) *)
    (sa < 16 && sb < 16) || (sa <= 2 * sb && sb <= 2 * sa)
  in
  let c1 = Array.of_list (Tree.children t1) in
  let c2 = Array.of_list (Tree.children t2) in
  let script = Sv_diff.Diff.script ~eq:alike c1 c2 in
  (* Walk the script with explicit cursors so each Keep pairs the aligned
     children; the paired exact TED then refines the coarse match. *)
  let i = ref 0 and j = ref 0 and acc = ref root_cost in
  List.iter
    (fun op ->
      match op with
      | Sv_diff.Diff.Keep _ ->
          acc := !acc + tree_distance c1.(!i) c2.(!j);
          incr i;
          incr j
      | Sv_diff.Diff.Delete _ ->
          acc := !acc + Tree.size c1.(!i);
          incr i
      | Sv_diff.Diff.Insert _ ->
          acc := !acc + Tree.size c2.(!j);
          incr j)
    script;
  !acc

let dmax_tree t2 = Tree.size t2
let dmax_source lines = List.length lines

let normalised ~d ~dmax =
  if dmax = 0 then if d = 0 then 0.0 else 1.0
  else Float.min 1.0 (float_of_int d /. float_of_int dmax)

(* A node survives when its own span executed OR any descendant did:
   structural nodes (function headers, unit roots) live on lines the
   profiler never marks, but they are on the path to executed code and
   must stay, exactly as GCov keeps a function whose body ran. *)
let mask_tree cov t =
  let rec go (Tree.Node (l, cs)) =
    let kept = List.filter_map go cs in
    if kept <> [] || Sv_util.Coverage.keep_loc cov l.Label.loc then
      Some (Tree.Node (l, kept))
    else None
  in
  match go t with
  | Some t' -> t'
  | None -> Tree.leaf (Tree.label t)
