module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let source_distance a b =
  Sv_diff.Diff.edit_distance ~eq:String.equal (Array.of_list a) (Array.of_list b)

(* TED spends its time in label comparisons; a process-global hash-consing
   canonizer interns every distinct subtree once and hands the kernels
   physically shared int-labelled views ([Label.equal] classes, so
   locations never reach the DP). Equal trees — repeated matrix cells,
   shared headers, identical ports — hit [Ted.distance_int]'s
   pointer-compare fast path, and repeated operands skip re-interning of
   everything already seen. Forked workers each inherit a private copy of
   the table, so the pool stays deterministic. *)
let canonizer : Label.t Sv_tree.Hashcons.canonizer =
  Sv_tree.Hashcons.canonizer ~init:4096 ~hash:Label.hash ~equal:Label.equal ()

let canon t = Sv_tree.Hashcons.canon canonizer t
let intern_stats () = Sv_tree.Hashcons.canonizer_stats canonizer

(* Which TED kernel answers [tree_distance]. [`Flat] compiles each
   distinct canonical tree once into Flat's contiguous arrays (memoised
   below by intern id) and runs the allocation-free flat kernel; [`Zs] is
   the pointer-tree Zhang–Shasha of PR 4, kept as the reference the bench
   harness compares against byte-for-byte. Both compute the identical
   distance. *)
type ted_algo = [ `Flat | `Zs ]

let algo : ted_algo ref = ref `Flat
let set_ted_algo a = algo := a
let ted_algo () = !algo

(* Flat kernels memoised by intern id: one compile per distinct tree for
   the life of the process, shared by every matrix cell that mentions it.
   Forked workers inherit the parent's memo copy-on-write, so pre-warming
   the memo before a fan-out (see [Index_engine.warm_ted]) means no
   worker recompiles what the parent already has. *)
let flat_memo : (int, Sv_tree.Flat.t) Hashtbl.t = Hashtbl.create 1024

let flat_of_id id view =
  match Hashtbl.find_opt flat_memo id with
  | Some f -> f
  | None ->
      let f = Sv_tree.Flat.of_tree view in
      Hashtbl.add flat_memo id f;
      f

let warm_flat t =
  let id, view = Sv_tree.Hashcons.canon_id canonizer t in
  ignore (flat_of_id id view)

let flat_count () = Hashtbl.length flat_memo

let tree_distance t1 t2 =
  match !algo with
  | `Zs -> Sv_tree.Ted.distance_int (canon t1) (canon t2)
  | `Flat ->
      let id1, v1 = Sv_tree.Hashcons.canon_id canonizer t1 in
      let id2, v2 = Sv_tree.Hashcons.canon_id canonizer t2 in
      if id1 = id2 then begin
        let open Sv_perf.Telemetry in
        ted.equal_prunes <- ted.equal_prunes + 1;
        0
      end
      else Sv_tree.Flat.distance (flat_of_id id1 v1) (flat_of_id id2 v2)

let tree_distance_bounded ~cutoff t1 t2 =
  match !algo with
  | `Zs -> Sv_tree.Ted.distance_bounded_int ~cutoff (canon t1) (canon t2)
  | `Flat ->
      if cutoff < 0 then None
      else
        let id1, v1 = Sv_tree.Hashcons.canon_id canonizer t1 in
        let id2, v2 = Sv_tree.Hashcons.canon_id canonizer t2 in
        if id1 = id2 then begin
          let open Sv_perf.Telemetry in
          ted.equal_prunes <- ted.equal_prunes + 1;
          Some 0
        end
        else
          Sv_tree.Flat.distance_bounded ~cutoff (flat_of_id id1 v1)
            (flat_of_id id2 v2)

(* Cheap admissible lower bound through the same canonizer/flat memo as
   the kernels, so the metric scheduler's bound calls share every compile
   with the distance calls that follow. Always flat-based (both kernels
   compute the identical distance, so one bound serves both). *)
let tree_lower_bound t1 t2 =
  let id1, v1 = Sv_tree.Hashcons.canon_id canonizer t1 in
  let id2, v2 = Sv_tree.Hashcons.canon_id canonizer t2 in
  if id1 = id2 then 0
  else Sv_tree.Flat.lower_bound (flat_of_id id1 v1) (flat_of_id id2 v2)

let tree_distance_matched t1 t2 =
  let root_cost = if Label.equal (Tree.label t1) (Tree.label t2) then 0 else 1 in
  (* Align the children sequences by an LCS over coarse fingerprints
     (root kind + size bucket) so an inserted declaration — a CUDA kernel,
     a shim function — is charged wholesale instead of shifting every
     later pair. The alignment is order-preserving, hence still a valid
     edit script and an upper bound of exact TED. *)
  let alike a b =
    let la : Label.t = Tree.label a and lb : Label.t = Tree.label b in
    la.Label.kind = lb.Label.kind
    && la.Label.text = lb.Label.text
    &&
    let sa = Tree.size a and sb = Tree.size b in
    (* same shape class: sizes within 2x (tiny subtrees always match) *)
    (sa < 16 && sb < 16) || (sa <= 2 * sb && sb <= 2 * sa)
  in
  let c1 = Array.of_list (Tree.children t1) in
  let c2 = Array.of_list (Tree.children t2) in
  let script = Sv_diff.Diff.script ~eq:alike c1 c2 in
  (* Walk the script with explicit cursors so each Keep pairs the aligned
     children; the paired exact TED then refines the coarse match. *)
  let i = ref 0 and j = ref 0 and acc = ref root_cost in
  List.iter
    (fun op ->
      match op with
      | Sv_diff.Diff.Keep _ ->
          acc := !acc + tree_distance c1.(!i) c2.(!j);
          incr i;
          incr j
      | Sv_diff.Diff.Delete _ ->
          acc := !acc + Tree.size c1.(!i);
          incr i
      | Sv_diff.Diff.Insert _ ->
          acc := !acc + Tree.size c2.(!j);
          incr j)
    script;
  !acc

let dmax_tree t2 = Tree.size t2
let dmax_source lines = List.length lines

let normalised ~d ~dmax =
  if dmax = 0 then if d = 0 then 0.0 else 1.0
  else Float.min 1.0 (float_of_int d /. float_of_int dmax)

(* A node survives when its own span executed OR any descendant did:
   structural nodes (function headers, unit roots) live on lines the
   profiler never marks, but they are on the path to executed code and
   must stay, exactly as GCov keeps a function whose body ran. *)
let mask_tree cov t =
  let rec go (Tree.Node (l, cs)) =
    let kept = List.filter_map go cs in
    if kept <> [] || Sv_util.Coverage.keep_loc cov l.Label.loc then
      Some (Tree.Node (l, kept))
    else None
  in
  match go t with
  | Some t' -> t'
  | None -> Tree.leaf (Tree.label t)
