let app_names = [ "babelstream"; "babelstream-f"; "tealeaf"; "cloverleaf"; "minibude" ]

let corpus_of_app app =
  match String.lowercase_ascii app with
  | "babelstream" -> Some (Sv_corpus.Babelstream.all ())
  | "babelstream-f" | "babelstream-fortran" -> Some (Sv_corpus.Babelstream_f.all ())
  | "tealeaf" -> Some (Sv_corpus.Tealeaf.all ())
  | "cloverleaf" -> Some (Sv_corpus.Cloverleaf.all ())
  | "minibude" -> Some (Sv_corpus.Minibude.all ())
  | _ -> None

let codebase_builder_of app =
  match String.lowercase_ascii app with
  | "babelstream" -> Some (fun model -> Sv_corpus.Babelstream.codebase ~model)
  | "tealeaf" -> Some (fun model -> Sv_corpus.Tealeaf.codebase ~model)
  | "cloverleaf" -> Some (fun model -> Sv_corpus.Cloverleaf.codebase ~model)
  | "minibude" -> Some (fun model -> Sv_corpus.Minibude.codebase ~model)
  | "babelstream-f" | "babelstream-fortran" ->
      Some (fun model -> Sv_corpus.Babelstream_f.codebase ~model)
  | _ -> None

let find_codebase ?app cbs model =
  match
    List.find_opt (fun (cb : Sv_corpus.Emit.codebase) -> cb.Sv_corpus.Emit.model = model) cbs
  with
  | Some cb -> Some cb
  | None -> (
      (* extension models (e.g. raja) are built on demand *)
      match Option.bind app codebase_builder_of with
      | Some build -> build model
      | None -> None)

let perf_app_of app =
  match String.lowercase_ascii app with
  | "babelstream" -> Sv_perf.Pmodel.babelstream
  | "tealeaf" -> Sv_perf.Pmodel.tealeaf
  | "cloverleaf" -> Sv_perf.Pmodel.cloverleaf
  | "minibude" -> Sv_perf.Pmodel.minibude
  | _ -> Sv_perf.Pmodel.tealeaf
