let app_names = Sv_corpus.Registry.names

let corpus_of_app app =
  match String.lowercase_ascii app with
  | g when String.length g >= 4 && String.sub g 0 4 = "gen:" ->
      (* synthetic corpora: "gen:<mode>:<base>:<seed>:<count>" resolves to
         a freshly generated (deterministic, interpreter-verified) variant
         set — every consumer of the registry (CLI, daemon, benches) can
         name one exactly like a bundled mini-app *)
      Sv_gen.Gen.corpus_of_spec g
  | name -> Sv_corpus.Registry.corpus name

let codebase_builder_of app =
  Option.map
    (fun build model -> build ~model)
    (Sv_corpus.Registry.builder app)

let find_codebase ?app cbs model =
  match
    List.find_opt (fun (cb : Sv_corpus.Emit.codebase) -> cb.Sv_corpus.Emit.model = model) cbs
  with
  | Some cb -> Some cb
  | None -> (
      (* extension models (e.g. raja) are built on demand *)
      match Option.bind app codebase_builder_of with
      | Some build -> build model
      | None -> None)

let perf_app_of app =
  match String.lowercase_ascii app with
  | "babelstream" -> Sv_perf.Pmodel.babelstream
  | "tealeaf" -> Sv_perf.Pmodel.tealeaf
  | "cloverleaf" -> Sv_perf.Pmodel.cloverleaf
  | "minibude" -> Sv_perf.Pmodel.minibude
  | _ -> Sv_perf.Pmodel.tealeaf
