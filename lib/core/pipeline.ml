module Tree = Sv_tree.Tree
module Label = Sv_tree.Label
module Loc = Sv_util.Loc
module Coverage = Sv_util.Coverage
module Emit = Sv_corpus.Emit

type unit_info = {
  u_file : string;
  u_deps : string list;
  u_sloc : int;
  u_sloc_pp : int;
  u_lloc : int;
  u_lloc_pp : int;
  u_lines : string list;
  u_lines_pp : string list;
  u_t_src : Label.tree;
  u_t_src_pp : Label.tree;
  u_t_sem : Label.tree;
  u_t_sem_i : Label.tree;
  u_t_ir : Label.tree;
}

type verification = { v_ok : bool; v_output : string; v_steps : int }

type indexed = {
  ix_app : string;
  ix_model : string;
  ix_model_name : string;
  ix_lang : [ `C | `F ];
  ix_units : unit_info list;
  ix_coverage : Coverage.t option;
  ix_verification : verification option;
  ix_mask_memo : (string, Label.tree) Hashtbl.t;
}

(* Prune every node located in a system header (§III-C: "those can simply
   be masked out during the analysis phase"). *)
let mask_system_files system tree =
  let keep (l : Label.t) =
    Loc.is_none l.Label.loc || not (List.mem l.Label.loc.Loc.file system)
  in
  match Tree.filter_prune keep tree with
  | Some t -> t
  | None -> Tree.leaf (Tree.label tree)

(* The inliner resolves a qualified call [ns::f] against a shim definition
   named [ns_f] (MiniC cannot define qualified names). *)
let inline_env units name =
  let underscored =
    String.concat "_"
      (List.filter (fun s -> s <> "") (String.split_on_char ':' name))
  in
  let find n =
    List.fold_left
      (fun acc (u : Sv_lang_c.Ast.tunit) ->
        match acc with
        | Some _ -> acc
        | None -> Sv_lang_c.Ast.find_function u n)
      None units
  in
  match find name with Some f -> Some f | None -> find underscored

let index_c_unit (cb : Emit.codebase) file =
  let resolve name = List.assoc_opt name cb.Emit.files in
  let src =
    match List.assoc_opt file cb.Emit.files with
    | Some s -> s
    | None -> failwith (Printf.sprintf "unit %s not among the codebase files" file)
  in
  let pp = Sv_lang_c.Preproc.run ~resolve ~defines:cb.Emit.defines ~file src in
  let system = cb.Emit.system_headers in
  (* pre-preprocessor view: the unit is the file plus every non-system
     dependency, each contributing its own CST and normalised lines *)
  let unit_files =
    (file, src)
    :: List.filter_map
         (fun d ->
           if List.mem d system then None
           else Option.map (fun content -> (d, content)) (resolve d))
         pp.Sv_lang_c.Preproc.deps
  in
  let t_src =
    Tree.flatten_forest
      (Label.v ~loc:(Loc.make ~file ~line:1 ~col:0) "unit")
      (List.map (fun (f, content) -> Sv_lang_c.Cst.t_src ~file:f content) unit_files)
  in
  let t_src_pp =
    mask_system_files system
      (Sv_lang_c.Cst.t_src_of_tokens ~file pp.Sv_lang_c.Preproc.tokens)
  in
  let ast = Sv_lang_c.Parser.parse_tokens ~file pp.Sv_lang_c.Preproc.tokens in
  let t_sem = mask_system_files system (Sv_lang_c.Sem_tree.of_tunit ast) in
  let ast_inlined =
    Sv_lang_c.Sem_tree.inline_calls ~env:(inline_env [ ast ]) ~depth:3 ast
  in
  let t_sem_i = mask_system_files system (Sv_lang_c.Sem_tree.of_tunit ast_inlined) in
  let ir = Sv_lang_c.Lower.lower ~file [ ast ] in
  (match Sv_ir.Ir.validate ir with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%s: invalid IR: %s" file e));
  let t_ir = mask_system_files system (Sv_ir.Ir.to_tree ir) in
  let lines =
    List.concat_map
      (fun (f, content) -> Sv_metrics.Normalize.c_lines ~file:f content)
      unit_files
  in
  let lines_pp = Sv_metrics.Normalize.c_lines_of_tokens pp.Sv_lang_c.Preproc.tokens in
  let lloc =
    List.fold_left
      (fun acc (f, content) ->
        acc + Sv_metrics.Counts.lloc_c (Sv_lang_c.Token.lex ~file:f content))
      0 unit_files
  in
  let lloc_pp = Sv_metrics.Counts.lloc_c pp.Sv_lang_c.Preproc.tokens in
  ( {
      u_file = file;
      u_deps = pp.Sv_lang_c.Preproc.deps;
      u_sloc = Sv_metrics.Counts.sloc_of_lines lines;
      u_sloc_pp = Sv_metrics.Counts.sloc_of_lines lines_pp;
      u_lloc = lloc;
      u_lloc_pp = lloc_pp;
      u_lines = lines;
      u_lines_pp = lines_pp;
      u_t_src = t_src;
      u_t_src_pp = t_src_pp;
      u_t_sem = t_sem;
      u_t_sem_i = t_sem_i;
      u_t_ir = t_ir;
    },
    ast )

let index_c_unit_info cb file = fst (index_c_unit cb file)

(* Just the AST of one unit — preprocess + parse, no trees, no IR, no
   counts. The parallel engine uses it to rerun the interpreter in the
   parent over units whose [unit_info]s were computed in workers: ASTs
   carry closures-free but deeply shared structure that is cheaper to
   re-derive than to ship over a pipe. *)
let c_unit_ast (cb : Emit.codebase) file =
  let resolve name = List.assoc_opt name cb.Emit.files in
  let src =
    match List.assoc_opt file cb.Emit.files with
    | Some s -> s
    | None -> failwith (Printf.sprintf "unit %s not among the codebase files" file)
  in
  let pp = Sv_lang_c.Preproc.run ~resolve ~defines:cb.Emit.defines ~file src in
  Sv_lang_c.Parser.parse_tokens ~file pp.Sv_lang_c.Preproc.tokens

let index_c ?unit_indexer (cb : Emit.codebase) ~run =
  let files = cb.Emit.main_file :: cb.Emit.extra_units in
  let unit_infos, asts =
    match unit_indexer with
    | None ->
        let unit_results = List.map (index_c_unit cb) files in
        (List.map fst unit_results, lazy (List.map snd unit_results))
    | Some indexer ->
        (* unit_infos come from the hook (workers, a cache); the ASTs the
           interpreter needs are re-derived lazily, so a no-run index
           never parses in the parent at all *)
        (indexer files, lazy (List.map (c_unit_ast cb) files))
  in
  let coverage, verification =
    if not run then (None, None)
    else begin
      (* every translation unit links into one program; the interpreter
         sees them all and enters main *)
      let o = Sv_interp.Interp_c.run (Lazy.force asts) in
      let ok =
        match o.Sv_interp.Interp_c.result with
        | Ok (Sv_interp.Interp_c.VInt 0) -> true
        | _ -> false
      in
      ( Some o.Sv_interp.Interp_c.coverage,
        Some
          {
            v_ok = ok;
            v_output = o.Sv_interp.Interp_c.output;
            v_steps = o.Sv_interp.Interp_c.steps;
          } )
    end
  in
  (unit_infos, coverage, verification)

let index_f (cb : Emit.codebase) ~run =
  let file = cb.Emit.main_file in
  let src = List.assoc file cb.Emit.files in
  let ast = Sv_lang_f.Parser.parse ~file src in
  let t_src = Sv_lang_f.Cst.t_src ~file src in
  let t_sem = Sv_lang_f.Sem_tree.of_file ast in
  let ir = Sv_lang_f.Lower.lower ~file ast in
  (match Sv_ir.Ir.validate ir with
  | Ok () -> ()
  | Error e -> failwith (Printf.sprintf "%s: invalid IR: %s" file e));
  let t_ir = Sv_ir.Ir.to_tree ir in
  let lines = Sv_metrics.Normalize.f_lines ~file src in
  let lloc = Sv_metrics.Counts.lloc_f (Sv_lang_f.Token.lex ~file src) in
  let unit_info =
    {
      u_file = file;
      u_deps = [];
      u_sloc = Sv_metrics.Counts.sloc_of_lines lines;
      u_sloc_pp = Sv_metrics.Counts.sloc_of_lines lines;
      u_lloc = lloc;
      u_lloc_pp = lloc;
      u_lines = lines;
      u_lines_pp = lines;
      u_t_src = t_src;
      (* Fortran has no preprocessor in MiniF; GFortran's GENERIC path has
         no tree-level inliner either (§IV-B), so both variants coincide
         with the base trees. *)
      u_t_src_pp = t_src;
      u_t_sem = t_sem;
      u_t_sem_i = t_sem;
      u_t_ir = t_ir;
    }
  in
  let coverage, verification =
    if not run then (None, None)
    else begin
      let o = Sv_interp.Interp_f.run ast in
      let passed =
        match o.Sv_interp.Interp_f.result with
        | Ok () ->
            (* Fortran ports report via printed validation text *)
            let contains_pass =
              let s = o.Sv_interp.Interp_f.output in
              let needle = "Validation PASSED" in
              let n = String.length needle and m = String.length s in
              let rec scan i = i + n <= m && (String.sub s i n = needle || scan (i + 1)) in
              scan 0
            in
            contains_pass
        | Error _ -> false
      in
      ( Some o.Sv_interp.Interp_f.coverage,
        Some
          {
            v_ok = passed;
            v_output = o.Sv_interp.Interp_f.output;
            v_steps = o.Sv_interp.Interp_f.steps;
          } )
    end
  in
  ([ unit_info ], coverage, verification)

let index ?(run = true) ?unit_indexer (cb : Emit.codebase) =
  let units, coverage, verification =
    match cb.Emit.lang with
    | `C -> index_c ?unit_indexer cb ~run
    | `F -> index_f cb ~run
  in
  {
    ix_app = cb.Emit.app;
    ix_model = cb.Emit.model;
    ix_model_name = cb.Emit.model_name;
    ix_lang = cb.Emit.lang;
    ix_units = units;
    ix_coverage = coverage;
    ix_verification = verification;
    ix_mask_memo = Hashtbl.create 32;
  }

let metric_tag = function
  | `TSrc -> "t_src"
  | `TSrcPP -> "t_src_pp"
  | `TSem -> "t_sem"
  | `TSemI -> "t_sem_i"
  | `TIr -> "t_ir"

let unit_tree ~metric ~coverage ix u =
  let base =
    match metric with
    | `TSrc -> u.u_t_src
    | `TSrcPP -> u.u_t_src_pp
    | `TSem -> u.u_t_sem
    | `TSemI -> u.u_t_sem_i
    | `TIr -> u.u_t_ir
  in
  if not coverage then base
  else
    match ix.ix_coverage with
    | Some cov -> (
        (* Every +cov comparison used to re-prune the tree per pair; the
           mask depends only on (unit, metric), so memoise it on the
           codebase. Unit files are unique within one codebase. *)
        let key = u.u_file ^ "#" ^ metric_tag metric in
        match Hashtbl.find_opt ix.ix_mask_memo key with
        | Some t -> t
        | None ->
            let t = Sv_metrics.Divergence.mask_tree cov base in
            Hashtbl.add ix.ix_mask_memo key t;
            t)
    | None -> base

let to_db ix =
  let unit_record (u : unit_info) =
    let base_trees =
      [
        ("t_src", u.u_t_src);
        ("t_src_pp", u.u_t_src_pp);
        ("t_sem", u.u_t_sem);
        ("t_sem_i", u.u_t_sem_i);
        ("t_ir", u.u_t_ir);
      ]
    in
    let cov_trees =
      match ix.ix_coverage with
      | None -> []
      | Some cov ->
          List.map
            (fun (name, t) -> (name ^ "+cov", Sv_metrics.Divergence.mask_tree cov t))
            base_trees
    in
    {
      Sv_db.Codebase_db.ur_file = u.u_file;
      ur_deps = u.u_deps;
      ur_sloc = u.u_sloc;
      ur_lloc = u.u_lloc;
      ur_lines = u.u_lines;
      ur_trees = base_trees @ cov_trees;
    }
  in
  {
    Sv_db.Codebase_db.db_app = ix.ix_app;
    db_model = ix.ix_model;
    db_units = List.map unit_record ix.ix_units;
  }
