(** The Tree-Based Model Divergence metric (§III-C) over indexed
    codebases.

    Implements Eq. (2)–(7): absolute counts (SLOC/LLOC) summed across
    units; relative measures ([Source] via O(NP) edit distance, the tree
    metrics via TED) summed over matched unit pairs, normalised by the
    maximum divergence [dmax] (the target codebase's size), clamped to
    [0, 1] like the paper's heatmaps.

    The [match] function of Eq. (4)/(6) pairs units positionally: every
    corpus port has the same unit structure, which is exactly the
    "units with the same purpose" pairing the paper requires. Comparing
    codebases of different languages is a programming error
    ([Invalid_argument]) — §IV-B: frontend trees are not comparable
    across compilers. *)

type metric = SLOC | LLOC | Source | TSrc | TSem | TSemI | TIr

type variant =
  | Base  (** as written *)
  | PP    (** after the preprocessor ([+preprocessor]) *)
  | Cov   (** coverage-masked ([+coverage]) *)

val all_metrics : metric list
(** Table I order. *)

val metric_label : metric -> string
(** e.g. ["T_sem+i"]. *)

val variant_label : variant -> string
(** [""], ["+pp"], ["+cov"]. *)

val metric_of_string : string -> metric option
(** Parse a CLI spelling (["sloc"], ["t_sem"], ["t_sem+i"], ...). *)

(** {2 Engine configuration}

    [matrix] computes each unordered codebase pair once. With
    [set_jobs n], n ≥ 2, those pairwise jobs fan out over a forked
    worker pool ({!Sv_sched.Sched}) with deterministic reassembly — the
    matrix is identical to a serial run. With a persistent TED cache
    installed ([set_ted_cache]), every pairwise tree comparison first
    consults the digest-keyed table; entries computed inside workers are
    shipped back and merged, so the parent's cache warms up even in
    parallel runs. *)

val set_jobs : int -> unit
(** Worker processes used by {!matrix} (clamped to ≥ 1; default 1 =
    serial, in-process). *)

val jobs : unit -> int

val set_ted_cache : Sv_db.Codebase_db.Ted_cache.cache option -> unit
(** Install (or remove, with [None]) the persistent TED memo consulted
    by every pairwise tree comparison. *)

val ted_cache : unit -> Sv_db.Codebase_db.Ted_cache.cache option

val clear_memo : unit -> unit
(** Drop the in-process divergence memo — for benchmarks and tests that
    must measure or observe cold recomputation. *)

(** {2 Triangle-bounded evaluation}

    The unnormalized integer divergence of the tree metrics is a true
    metric (per-slot TED is; a positional sum of metrics is), so
    {!matrix} can schedule through {!Sv_metric.Pivots}: pivot rows are
    computed exactly, every other pair is bracketed by triangle
    intervals and either resolved outright or computed by the bounded
    kernel seeded with its interval upper bound — which always returns
    the exact distance, keeping matrices and dendrograms byte-identical
    to the exhaustive run by construction. Normalisation (which breaks
    metricity — see DESIGN.md) happens only at the edge, on the final
    integer cells. *)

type pivot_conf =
  | Pivots_off  (** exhaustive evaluation (default) *)
  | Pivots_auto  (** ⌈√n⌉ pivots *)
  | Pivots of int  (** explicit pivot count (clamped to ≥ 1) *)

val set_pivots : pivot_conf -> unit
(** Configure the scheduler for subsequent {!matrix} calls. Applies to
    tree metrics with n ≥ 2; the schedule runs in-process (it takes
    precedence over [set_jobs]). *)

val pivots : unit -> pivot_conf

val pivot_stats : unit -> Sv_metric.Pivots.stats option
(** Scheduler statistics of the most recent {!matrix} call ([None] if it
    did not use the pivot path). *)

val set_metric_cache : Sv_db.Metric_cache.cache option -> unit
(** Install (or remove, with [None]) the persistent VP-tree cache
    consulted by {!vp_index}: a hit skips construction entirely (zero
    build evaluations, hits byte-identical to a cold build — the tree
    structure is a deterministic function of the corpus), a miss
    records the freshly built tree for the next process. Keys commit to
    the corpus digest, metric, variant and schema version. *)

val metric_cache : unit -> Sv_db.Metric_cache.cache option

val vp_key : ?variant:variant -> metric -> Pipeline.indexed list -> string
(** The metric-cache key {!vp_index} would use for this corpus — for
    callers that memoise decoded indexes keyed the same way. *)

val raw_divergence_bounded :
  ?variant:variant ->
  metric ->
  cutoff:int ->
  Pipeline.indexed ->
  Pipeline.indexed ->
  int option
(** [raw_divergence_bounded m ~cutoff c1 c2] is [Some d] iff the raw
    divergence is [d ≤ cutoff], driving each matched unit pair through
    the bounded TED kernel with the remaining budget as its cutoff.
    Tree metrics only ([Invalid_argument] otherwise). *)

val absolute : metric -> Pipeline.indexed -> int option
(** [absolute m ix] is the codebase-level value for absolute metrics
    (Eq. 2–3); [None] for relative metrics. *)

val raw_divergence :
  ?variant:variant -> metric -> Pipeline.indexed -> Pipeline.indexed -> int * int
(** [raw_divergence m c1 c2] is [(d, dmax)] summed over matched units.
    For SLOC/LLOC, [d] is the absolute difference of totals and [dmax]
    the target's total. *)

val divergence :
  ?variant:variant -> metric -> Pipeline.indexed -> Pipeline.indexed -> float
(** Normalised divergence in [0, 1]: [d / dmax] clamped (Figs. 7–8's cell
    value). Zero iff the codebases are metric-identical. *)

val matrix :
  ?variant:variant ->
  metric ->
  Pipeline.indexed list ->
  Sv_cluster.Cluster.matrix
(** Pairwise divergence over the cartesian product (Fig. 4's input),
    labelled with model display names. *)

val dendrogram :
  ?variant:variant ->
  ?linkage:Sv_cluster.Cluster.linkage ->
  metric ->
  Pipeline.indexed list ->
  Sv_cluster.Cluster.matrix * Sv_cluster.Cluster.dendro
(** The paper's clustering recipe: divergence matrix → Euclidean row
    distance → agglomerative clustering (complete linkage by default). *)

(** {2 k-NN navigation (Fig. 15)}

    "Find the nearest existing port": a VP-tree over the candidate
    codebases under the {e unnormalized} integer divergence (the true
    metric), queried with the bounded kernel so far candidates are
    rejected by the cheap-bound cascade instead of full DPs. Results are
    exact — identical to a brute-force scan, ties broken by index. *)

type vp
(** A built index over a fixed candidate list. *)

val vp_index :
  ?variant:variant -> metric -> Pipeline.indexed list -> vp
(** Build the index (deterministic; O(n log n) exact distances), or —
    with a metric cache installed ({!set_metric_cache}) — reload the
    persisted tree for this exact corpus/metric/variant with zero build
    evaluations. The candidate order defines the ids reported in
    stats. *)

val vp_build_evals : vp -> int
(** Exact distance evaluations spent building (and inserting into) the
    index; 0 for an index reloaded from the metric cache. *)

val vp_insert : vp -> Pipeline.indexed -> vp
(** [vp_insert t c] extends the index with one more candidate
    incrementally (metric-routed leaf insertion, amortised scapegoat
    rebuilds — see {!Sv_metric.Vptree.insert}) instead of rebuilding
    over the whole corpus. Query results afterwards are identical to a
    fresh build over the extended list. The underlying tree is mutated:
    the old handle is consumed. *)

val vp_nearest :
  vp ->
  k:int ->
  Pipeline.indexed ->
  (Pipeline.indexed * int * float) list * int
(** [vp_nearest t ~k q] is the k candidates nearest to [q] in ascending
    order as [(codebase, raw d, normalised)] — normalisation against
    each hit's own dmax, at the edge only — plus the bounded-evaluator
    call count (the work actually spent; compare against a brute-force
    n). *)

val vp_nearest_budgeted :
  vp ->
  k:int ->
  ?budget:int ->
  ?epsilon:float ->
  Pipeline.indexed ->
  (Pipeline.indexed * int * float) list * Sv_metric.Vptree.ledger
(** Best-first k-NN with an optional evaluator budget and/or
    multiplicative ε, plus the honest per-query exactness ledger
    ({!Sv_metric.Vptree.nearest_budgeted}): [guaranteed_exact] is false
    only when the budget or ε actually cut the search, and whenever it
    is true the hits equal brute force. With neither option the hits
    equal {!vp_nearest}. *)

val vp_range :
  vp ->
  radius:int ->
  Pipeline.indexed ->
  (Pipeline.indexed * int * float) list * int
(** All candidates within raw distance [radius] of the query. *)

val nearest :
  ?variant:variant ->
  metric ->
  k:int ->
  query:Pipeline.indexed ->
  Pipeline.indexed list ->
  (Pipeline.indexed * int * float) list
(** One-shot convenience: build and query. *)
