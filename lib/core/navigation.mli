(** Navigation charts: Φ against TBMD (§VI, Figs. 13–15).

    Combines the performance-portability metric with model divergence
    into one picture: the x axis is proximity to the serial baseline
    (1 − normalised divergence, so right = productive), the y axis is Φ.
    Each model contributes two linked points — [T_sem] (semantic) and
    [T_src] (perceived) — whose gap is the paper's model-bloat signal. *)

type point = {
  model_id : string;
  model_name : string;
  marker : char;          (** letter used in the ASCII chart *)
  phi : float;
  div_t_sem : float;      (** normalised T_sem divergence from serial *)
  div_t_src : float;
}

val points :
  app:Sv_perf.Pmodel.app ->
  serial:Pipeline.indexed ->
  codebases:Pipeline.indexed list ->
  platforms:Sv_perf.Platform.t list ->
  point list
(** [points ~app ~serial ~codebases ~platforms] — one point per non-serial
    codebase whose model id the performance model knows. Φ is computed
    over [platforms]; divergences against [serial]. *)

val render : point list -> string
(** The chart plus its legend. Each model plots its [T_sem] position with
    an uppercase marker and its [T_src] position with the lowercase one. *)

(** {2 Nearest existing port}

    Fig. 15's navigation question as an interactive query: which of the
    candidate ports is closest to this codebase? Exact k-NN through
    {!Tbmd.vp_index} on the unnormalized integer divergence — or, with
    a budget/ε, the best-first approximate search — plus the per-query
    {!Sv_metric.Vptree.ledger}: the bounded-evaluation count the index
    spent (compare against the candidate count for the brute-force
    baseline) and the honest exactness claim. *)

type nearest_hit = {
  nh_model : string;
  nh_model_name : string;
  nh_d : int;  (** raw integer divergence *)
  nh_div : float;  (** normalised against the hit's own dmax *)
}

val nearest_candidates :
  query:Pipeline.indexed -> Pipeline.indexed list -> Pipeline.indexed list
(** Candidates sharing the query's model id are excluded (the port
    itself is not an answer). The result's order — hence its
    {!Tbmd.vp_key} — is what a resident daemon should key a memoised
    index on. *)

val nearest_index :
  ?variant:Tbmd.variant ->
  ?metric:Tbmd.metric ->
  Pipeline.indexed list ->
  Tbmd.vp option
(** Build (or, with a metric cache installed, reload) the VP-tree over
    an already-filtered candidate list; [None] iff the list is empty.
    Split from {!nearest_in} so a resident engine can build once and
    answer many queries. Default metric [T_sem]. *)

val nearest_in :
  Tbmd.vp ->
  k:int ->
  ?budget:int ->
  ?epsilon:float ->
  Pipeline.indexed ->
  nearest_hit list * Sv_metric.Vptree.ledger
(** Query a built index. With neither [budget] nor [epsilon] this is the
    exact traversal — hits and evaluation count identical to what
    {!nearest_ports} has always reported, and [guaranteed_exact = true].
    With either option it is the budgeted best-first search with its
    honest ledger ({!Tbmd.vp_nearest_budgeted}). *)

val nearest_ports :
  ?variant:Tbmd.variant ->
  ?metric:Tbmd.metric ->
  ?budget:int ->
  ?epsilon:float ->
  k:int ->
  query:Pipeline.indexed ->
  Pipeline.indexed list ->
  nearest_hit list * Sv_metric.Vptree.ledger
(** [nearest_ports ~k ~query codebases] composes the three pieces above:
    filter, index, query. No candidates yields [([], {evals = 0;
    guaranteed_exact = true})]. Default metric [T_sem]. *)

type scenario_stage = {
  stage : int;
  description : string;
  platform_abbrs : string list;
  phi_cuda : float;
  best_alternative : (string * float) option;
      (** highest-Φ model over the stage's platform set *)
}

val cuda_scenario :
  app:Sv_perf.Pmodel.app ->
  serial:Pipeline.indexed ->
  codebases:Pipeline.indexed list ->
  scenario_stage list
(** Fig. 15's story: stage 1 — NVIDIA-only world, CUDA has Φ = 1; stage 2
    — an AMD platform arrives and CUDA's Φ collapses to 0; stage 3 — the
    chart nominates the portable model to move to. *)
