module M = Sv_msgpack.Msgpack
module Emit = Sv_corpus.Emit
module Coverage = Sv_util.Coverage
module Index_cache = Sv_db.Index_cache
module Sched = Sv_sched.Sched

(* --- engine-wide cache ----------------------------------------------- *)

let cache_ref : Index_cache.cache option ref = ref None
let set_cache c = cache_ref := c
let cache () = !cache_ref

(* --- payload codecs --------------------------------------------------- *)

(* The cache stores a fully indexed codebase: every tree, every count,
   the normalised lines, and the interpreter's verdict + coverage when it
   ran. Trees reuse the Codebase DB codec so the payload shares its
   locations-included exactness (the warm path must reproduce [to_db]
   bytes, coverage masks and all). *)

let tree_to_msgpack = Sv_db.Codebase_db.tree_to_msgpack
let tree_of_msgpack = Sv_db.Codebase_db.tree_of_msgpack
let ( let* ) = Result.bind

let str_list xs = M.Arr (List.map (fun s -> M.Str s) xs)

let str_list_of = function
  | M.Arr xs ->
      List.fold_left
        (fun acc x ->
          let* acc = acc in
          match x with M.Str s -> Ok (s :: acc) | _ -> Error "expected string")
        (Ok []) xs
      |> Result.map List.rev
  | _ -> Error "expected an array of strings"

let unit_info_to_msgpack (u : Pipeline.unit_info) =
  M.Arr
    [
      M.Str u.Pipeline.u_file;
      str_list u.u_deps;
      M.Int u.u_sloc;
      M.Int u.u_sloc_pp;
      M.Int u.u_lloc;
      M.Int u.u_lloc_pp;
      str_list u.u_lines;
      str_list u.u_lines_pp;
      tree_to_msgpack u.u_t_src;
      tree_to_msgpack u.u_t_src_pp;
      tree_to_msgpack u.u_t_sem;
      tree_to_msgpack u.u_t_sem_i;
      tree_to_msgpack u.u_t_ir;
    ]

let unit_info_of_msgpack = function
  | M.Arr
      [
        M.Str file; deps; M.Int sloc; M.Int sloc_pp; M.Int lloc; M.Int lloc_pp;
        lines; lines_pp; t_src; t_src_pp; t_sem; t_sem_i; t_ir;
      ] ->
      let* deps = str_list_of deps in
      let* lines = str_list_of lines in
      let* lines_pp = str_list_of lines_pp in
      let* t_src = tree_of_msgpack t_src in
      let* t_src_pp = tree_of_msgpack t_src_pp in
      let* t_sem = tree_of_msgpack t_sem in
      let* t_sem_i = tree_of_msgpack t_sem_i in
      let* t_ir = tree_of_msgpack t_ir in
      Ok
        {
          Pipeline.u_file = file;
          u_deps = deps;
          u_sloc = sloc;
          u_sloc_pp = sloc_pp;
          u_lloc = lloc;
          u_lloc_pp = lloc_pp;
          u_lines = lines;
          u_lines_pp = lines_pp;
          u_t_src = t_src;
          u_t_src_pp = t_src_pp;
          u_t_sem = t_sem;
          u_t_sem_i = t_sem_i;
          u_t_ir = t_ir;
        }
  | _ -> Error "malformed unit_info"

let coverage_to_msgpack cov =
  M.Arr
    (List.map
       (fun (file, lines) ->
         M.Arr
           [
             M.Str file;
             M.Arr (List.map (fun (l, n) -> M.Arr [ M.Int l; M.Int n ]) lines);
           ])
       (Coverage.dump cov))

let coverage_of_msgpack = function
  | M.Arr files ->
      let* entries =
        List.fold_left
          (fun acc f ->
            let* acc = acc in
            match f with
            | M.Arr [ M.Str file; M.Arr lines ] ->
                let* lines =
                  List.fold_left
                    (fun acc l ->
                      let* acc = acc in
                      match l with
                      | M.Arr [ M.Int line; M.Int n ] -> Ok ((line, n) :: acc)
                      | _ -> Error "malformed coverage line")
                    (Ok []) lines
                  |> Result.map List.rev
                in
                Ok ((file, lines) :: acc)
            | _ -> Error "malformed coverage file")
          (Ok []) files
        |> Result.map List.rev
      in
      Ok (Coverage.restore entries)
  | _ -> Error "malformed coverage"

let verification_to_msgpack (v : Pipeline.verification) =
  M.Arr [ M.Bool v.Pipeline.v_ok; M.Str v.v_output; M.Int v.v_steps ]

let verification_of_msgpack = function
  | M.Arr [ M.Bool ok; M.Str output; M.Int steps ] ->
      Ok { Pipeline.v_ok = ok; v_output = output; v_steps = steps }
  | _ -> Error "malformed verification"

let opt_to_msgpack f = function None -> M.Nil | Some x -> f x

let opt_of_msgpack f = function
  | M.Nil -> Ok None
  | v -> Result.map Option.some (f v)

let indexed_to_msgpack (ix : Pipeline.indexed) =
  M.Arr
    [
      M.Str ix.Pipeline.ix_app;
      M.Str ix.ix_model;
      M.Str ix.ix_model_name;
      M.Str (match ix.ix_lang with `C -> "c" | `F -> "f");
      M.Arr (List.map unit_info_to_msgpack ix.ix_units);
      opt_to_msgpack coverage_to_msgpack ix.ix_coverage;
      opt_to_msgpack verification_to_msgpack ix.ix_verification;
    ]

let indexed_of_msgpack = function
  | M.Arr [ M.Str app; M.Str model; M.Str model_name; M.Str lang; M.Arr units;
            cov; verif ] ->
      let* lang =
        match lang with
        | "c" -> Ok `C
        | "f" -> Ok `F
        | _ -> Error "malformed language tag"
      in
      let* units =
        List.fold_left
          (fun acc u ->
            let* acc = acc in
            let* u = unit_info_of_msgpack u in
            Ok (u :: acc))
          (Ok []) units
        |> Result.map List.rev
      in
      let* coverage = opt_of_msgpack coverage_of_msgpack cov in
      let* verification = opt_of_msgpack verification_of_msgpack verif in
      Ok
        {
          Pipeline.ix_app = app;
          ix_model = model;
          ix_model_name = model_name;
          ix_lang = lang;
          ix_units = units;
          ix_coverage = coverage;
          ix_verification = verification;
          (* the mask memo is a per-process performance artifact, rebuilt
             lazily — never serialised *)
          ix_mask_memo = Hashtbl.create 32;
        }
  | _ -> Error "malformed indexed codebase"

(* --- cache keys ------------------------------------------------------- *)

(* The source digest covers everything that selects or shapes the
   indexing inputs: identity metadata, the unit list, every file name and
   content, the system-header mask, and whether the interpreter runs
   (a run:false payload has no coverage to serve a run:true request). The
   preprocessor defines and dialect travel as their own key components so
   invalidation tests can flip them independently. *)
let codebase_key ~run (cb : Emit.codebase) =
  let source_digest =
    Digest.string
      (M.encode
         (M.Arr
            [
              M.Str cb.Emit.app;
              M.Str cb.Emit.model;
              M.Str cb.Emit.model_name;
              M.Str cb.Emit.main_file;
              str_list cb.Emit.extra_units;
              M.Arr
                (List.map
                   (fun (name, content) -> M.Arr [ M.Str name; M.Str content ])
                   cb.Emit.files);
              str_list cb.Emit.system_headers;
              M.Bool run;
            ]))
  in
  Index_cache.key ~source_digest
    ~defines:(List.map (fun (k, v) -> k ^ "=" ^ v) cb.Emit.defines)
    ~dialect:(match cb.Emit.lang with `C -> "minic" | `F -> "minif")
    ()

(* --- the engine ------------------------------------------------------- *)

let decode_payload payload =
  match M.decode payload with
  | exception M.Decode_error _ -> None
  | v -> (
      match indexed_of_msgpack v with Ok ix -> Some ix | Error _ -> None)

(* Ship one indexed codebase (or a chunk of them) across the worker pipe. *)
let encode_indexed_list ixs = M.Arr (List.map indexed_to_msgpack ixs)

let decode_indexed_list = function
  | M.Arr vs ->
      List.map
        (fun v ->
          match indexed_of_msgpack v with
          | Ok ix -> ix
          | Error e -> failwith ("index worker frame: " ^ e))
        vs
  | _ -> failwith "index worker frame: not an array"

(* --- fan-out grain ---------------------------------------------------- *)

(* Forked indexing ships every result back as a msgpack frame the parent
   must decode — work proportional to the payload, which is itself
   proportional to the source text. For small translation units that
   decode (plus fork/pipe overhead) costs more than indexing outright:
   the PR 8 corpus study measured jobs=2 indexing of 1000 generated
   single-unit codebases at 4.5× the serial wall. So the codebase-grain
   fan-out only engages when the average source size of the missing
   codebases clears a floor; below it the serial loop is the fast path,
   not a fallback. An explicit [?chunk] argument bypasses the heuristic
   (the caller is asking for the parallel shape, e.g. conformance
   tests). Override the floor with SV_INDEX_GRAIN_BYTES. *)
let default_grain_bytes = 16384

let grain_bytes () =
  match Sys.getenv_opt "SV_INDEX_GRAIN_BYTES" with
  | Some s -> ( match int_of_string_opt s with Some n -> n | None -> default_grain_bytes)
  | None -> default_grain_bytes

let source_bytes (cb : Emit.codebase) =
  List.fold_left (fun acc (_, c) -> acc + String.length c) 0 cb.Emit.files

type grain = [ `Serial | `Codebase | `Unit ]

let plan_grain ~jobs ?chunk (misses : Emit.codebase list) : grain =
  let nmiss = List.length misses in
  if jobs <= 1 || nmiss <= 1 then `Serial
  else if nmiss >= jobs then
    if chunk <> None then `Codebase
    else begin
      let total = List.fold_left (fun acc cb -> acc + source_bytes cb) 0 misses in
      if total / nmiss < grain_bytes () then `Serial else `Codebase
    end
  else `Unit

let index_many ?(run = true) ?jobs ?chunk (cbs : Emit.codebase list) =
  let jobs = match jobs with Some j -> j | None -> Sched.default_jobs () in
  let cbs = Array.of_list cbs in
  let n = Array.length cbs in
  let out : Pipeline.indexed option array = Array.make n None in
  (* cache probe *)
  let keys = Array.make n "" in
  (match !cache_ref with
  | None -> ()
  | Some c ->
      Array.iteri
        (fun i cb ->
          let k = codebase_key ~run cb in
          keys.(i) <- k;
          match Index_cache.find c k with
          | None -> ()
          | Some payload -> out.(i) <- decode_payload payload)
        cbs);
  let misses =
    Array.to_list (Array.mapi (fun i cb -> (i, cb)) cbs)
    |> List.filter (fun (i, _) -> out.(i) = None)
  in
  let record i ix =
    out.(i) <- Some ix;
    match !cache_ref with
    | None -> ()
    | Some c ->
        let k = if keys.(i) <> "" then keys.(i) else codebase_key ~run cbs.(i) in
        Index_cache.add c k (M.encode (indexed_to_msgpack ix))
  in
  let nmiss = List.length misses in
  if nmiss > 0 then begin
    match plan_grain ~jobs ?chunk (List.map snd misses) with
    | `Serial ->
        (* the serial reference path: single miss, jobs=1, or misses too
           small for the fan-out to beat its own IPC *)
        List.iter (fun (i, cb) -> record i (Pipeline.index ~run cb)) misses
    | `Codebase -> begin
      (* whole-codebase grain: enough misses to keep every worker busy.
         Chunked submission amortises fork/pipe overhead; results are
         reassembled by chunk index, so order — hence output — matches
         the serial path byte for byte. *)
      let chunk =
        match chunk with
        | Some c -> max 1 c
        | None -> max 1 (nmiss / (2 * jobs))
      in
      let miss_arr = Array.of_list misses in
      let tasks =
        Array.init
          ((nmiss + chunk - 1) / chunk)
          (fun t ->
            Array.to_list (Array.sub miss_arr (t * chunk)
                             (min chunk (nmiss - (t * chunk)))))
      in
      let results =
        Sched.map
          ~jobs
          ~encode:encode_indexed_list
          ~decode:decode_indexed_list
          ~f:(fun chunk -> List.map (fun (_, cb) -> Pipeline.index ~run cb) chunk)
          tasks
      in
      Array.iteri
        (fun t ixs ->
          List.iter2 (fun (i, _) ix -> record i ix) tasks.(t) ixs)
        results
    end
    | `Unit -> begin
      (* unit grain: fewer codebases than workers, so split MiniC
         codebases into per-unit tasks and let the parent reassemble via
         the [unit_indexer] hook (re-running the interpreter in-process —
         the linked program is cheap to re-parse, and coverage recording
         in a forked child would be lost anyway). MiniF codebases are
         single-unit and interpreter-dominated: they stay serial. *)
      let c_misses = List.filter (fun (_, cb) -> cb.Emit.lang = `C) misses in
      let f_misses = List.filter (fun (_, cb) -> cb.Emit.lang = `F) misses in
      let tasks =
        Array.of_list
          (List.concat_map
             (fun (i, cb) ->
               List.map
                 (fun file -> (i, file))
                 (cb.Emit.main_file :: cb.Emit.extra_units))
             c_misses)
      in
      let results =
        Sched.map
          ~jobs
          ~encode:unit_info_to_msgpack
          ~decode:(fun v ->
            match unit_info_of_msgpack v with
            | Ok u -> u
            | Error e -> failwith ("index worker frame: " ^ e))
          ~f:(fun (i, file) -> Pipeline.index_c_unit_info cbs.(i) file)
          tasks
      in
      let by_key = Hashtbl.create 64 in
      Array.iteri (fun t u -> Hashtbl.replace by_key tasks.(t) u) results;
      List.iter
        (fun (i, cb) ->
          let unit_indexer files =
            List.map
              (fun file ->
                match Hashtbl.find_opt by_key (i, file) with
                | Some u -> u
                | None -> Pipeline.index_c_unit_info cb file)
              files
          in
          record i (Pipeline.index ~run ~unit_indexer cb))
        c_misses;
      List.iter (fun (i, cb) -> record i (Pipeline.index ~run cb)) f_misses
    end
  end;
  Array.to_list
    (Array.map
       (function
         | Some ix -> ix
         | None -> assert false (* every index is a hit or a recorded miss *))
       out)

let index ?run ?jobs ?chunk cb =
  match index_many ?run ?jobs ?chunk [ cb ] with
  | [ ix ] -> ix
  | _ -> assert false

(* --- TED warm-up ------------------------------------------------------ *)

(* Compile the flat TED kernel of every tree a matrix sweep will touch,
   before any pair is evaluated (and before any worker forks — children
   then inherit the compiled kernels copy-on-write instead of each
   recompiling them). Ascending size order keeps compile locality cheap;
   reserving scratch for the two largest trees means no DP buffer ever
   regrows mid-sweep. Distances are unaffected — this is purely a
   warming pass. *)
let warm_ted (trees : Sv_tree.Label.tree list) =
  let sorted =
    List.stable_sort
      (fun a b -> compare (Sv_tree.Tree.size a) (Sv_tree.Tree.size b))
      trees
  in
  List.iter Sv_metrics.Divergence.warm_flat sorted;
  match List.rev sorted with
  | a :: b :: _ ->
      Sv_tree.Flat.reserve (Sv_tree.Tree.size a) (Sv_tree.Tree.size b)
  | [ a ] ->
      let n = Sv_tree.Tree.size a in
      Sv_tree.Flat.reserve n n
  | [] -> ()
