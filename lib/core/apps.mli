(** The mini-app registry: one place that maps CLI/protocol app and
    model names onto corpus codebases and performance models.

    Previously private to [bin/sv.ml]; hoisted here so the `sv serve`
    daemon, the thin client's in-process fallback and the CLI resolve
    names through exactly the same code — a prerequisite for the
    daemon-vs-one-shot byte-identity guarantee. *)

val app_names : string list
(** Canonical app spellings, in listing order. *)

val corpus_of_app : string -> Sv_corpus.Emit.codebase list option
(** [corpus_of_app app] is the full model corpus of a mini-app
    (case-insensitive; accepts the ["babelstream-fortran"] alias), or
    [None] for an unknown app.

    Names of the form ["gen:<mode>:<base>:<seed>:<count>"] (see
    {!Sv_gen.Gen.parse_spec}) resolve to a synthetic corpus generated on
    the spot: deterministic in the seed and interpreter-verified, so a
    generated corpus is addressable wherever a mini-app name is. *)

val find_codebase :
  ?app:string ->
  Sv_corpus.Emit.codebase list ->
  string ->
  Sv_corpus.Emit.codebase option
(** [find_codebase ?app cbs model] finds a model in a corpus list;
    with [?app], extension models outside the paper's Table II set
    (e.g. ["raja"]) are built on demand. *)

val perf_app_of : string -> Sv_perf.Pmodel.app
(** Performance-model app for the Φ experiments (TeaLeaf for apps
    without one, matching the CLI's historical behaviour). *)
