module Tree = Sv_tree.Tree
module Div = Sv_metrics.Divergence
module Db = Sv_db.Codebase_db
module M = Sv_msgpack.Msgpack
module Sched = Sv_sched.Sched

type metric = SLOC | LLOC | Source | TSrc | TSem | TSemI | TIr
type variant = Base | PP | Cov

let all_metrics = [ SLOC; LLOC; Source; TSrc; TSem; TSemI; TIr ]

let metric_label = function
  | SLOC -> "SLOC"
  | LLOC -> "LLOC"
  | Source -> "Source"
  | TSrc -> "T_src"
  | TSem -> "T_sem"
  | TSemI -> "T_sem+i"
  | TIr -> "T_ir"

let variant_label = function Base -> "" | PP -> "+pp" | Cov -> "+cov"

let metric_of_string s =
  match String.lowercase_ascii s with
  | "sloc" -> Some SLOC
  | "lloc" -> Some LLOC
  | "source" -> Some Source
  | "t_src" | "tsrc" -> Some TSrc
  | "t_sem" | "tsem" -> Some TSem
  | "t_sem+i" | "tsemi" | "t_sem_i" -> Some TSemI
  | "t_ir" | "tir" -> Some TIr
  | _ -> None

open Pipeline

let check_lang c1 c2 =
  if c1.ix_lang <> c2.ix_lang then
    invalid_arg "Tbmd: cannot compare codebases of different languages"

let unit_pairs c1 c2 =
  (* positional match; unmatched tails count fully against dmax later *)
  let rec zip a b =
    match (a, b) with
    | x :: xs, y :: ys -> (Some x, Some y) :: zip xs ys
    | x :: xs, [] -> (Some x, None) :: zip xs []
    | [], y :: ys -> (None, Some y) :: zip [] ys
    | [], [] -> []
  in
  zip c1.ix_units c2.ix_units

let count_of metric variant (u : unit_info) =
  match (metric, variant) with
  | SLOC, PP -> u.u_sloc_pp
  | SLOC, _ -> u.u_sloc
  | LLOC, PP -> u.u_lloc_pp
  | LLOC, _ -> u.u_lloc
  | _ -> invalid_arg "count_of: not an absolute metric"

let lines_of variant (u : unit_info) =
  match variant with PP -> u.u_lines_pp | _ -> u.u_lines

let tree_metric_tag = function
  | TSrc -> `TSrc
  | TSem -> `TSem
  | TSemI -> `TSemI
  | TIr -> `TIr
  | _ -> invalid_arg "tree_metric_tag"

let tree_of metric variant ix u =
  match (metric, variant) with
  | TSrc, PP -> Pipeline.unit_tree ~metric:`TSrcPP ~coverage:false ix u
  | m, Cov -> Pipeline.unit_tree ~metric:(tree_metric_tag m) ~coverage:true ix u
  | m, _ -> Pipeline.unit_tree ~metric:(tree_metric_tag m) ~coverage:false ix u

let absolute metric ix =
  match metric with
  | SLOC -> Some (List.fold_left (fun acc u -> acc + count_of SLOC Base u) 0 ix.ix_units)
  | LLOC -> Some (List.fold_left (fun acc u -> acc + count_of LLOC Base u) 0 ix.ix_units)
  | Source | TSrc | TSem | TSemI | TIr -> None

(* The bench harness recomputes many pairs across figures (Fig. 4 and 5
   share every TeaLeaf pair; Figs. 9–10 reuse them again), so raw
   distances are memoised. The key carries a structural fingerprint of
   both codebases, so re-indexing the same corpus hits while modified
   codebases with recycled ids miss. *)
let cache : (string, int * int) Hashtbl.t = Hashtbl.create 512
let clear_memo () = Hashtbl.reset cache

let fingerprint c =
  List.fold_left
    (fun acc u ->
      acc + u.u_sloc + (31 * Tree.size u.u_t_sem) + (17 * Tree.size u.u_t_src))
    (Hashtbl.hash (c.ix_app, c.ix_model))
    c.ix_units

let memo_key ~variant metric c1 c2 =
  Printf.sprintf "%s|%s|%s/%s#%d|%s/%s#%d" (metric_label metric)
    (variant_label variant) c1.ix_app c1.ix_model (fingerprint c1) c2.ix_app
    c2.ix_model (fingerprint c2)

(* --- engine configuration ------------------------------------------- *)

(* [matrix] fans its pairwise jobs over this many forked workers; 1 (the
   default) keeps everything in-process. *)
let engine_jobs = ref 1
let set_jobs j = engine_jobs := max 1 j
let jobs () = !engine_jobs

(* When set, every pairwise TED first consults the persistent
   digest-keyed cache and records what it had to compute. *)
let engine_cache : Db.Ted_cache.cache option ref = ref None
let set_ted_cache c = engine_cache := c
let ted_cache () = !engine_cache

(* Triangle-bounded matrix evaluation (lib/metric): off by default; auto
   picks ⌈√n⌉ pivots. Applies to tree metrics only (the others are
   near-free to evaluate exhaustively) and schedules in-process — when
   both pivots and jobs>1 are configured, pivots win. *)
type pivot_conf = Pivots_off | Pivots_auto | Pivots of int

let engine_pivots = ref Pivots_off
let set_pivots p = engine_pivots := p
let pivots () = !engine_pivots
let last_pivot_stats : Sv_metric.Pivots.stats option ref = ref None
let pivot_stats () = !last_pivot_stats

(* When set, [vp_index] first probes the persistent metric cache for a
   VP-tree persisted under this corpus/metric/variant, and records cold
   builds into it — `sv nearest` and the daemon's nearest verb become
   warm across restarts. *)
let engine_metric_cache : Sv_db.Metric_cache.cache option ref = ref None
let set_metric_cache c = engine_metric_cache := c
let metric_cache () = !engine_metric_cache

let ted_distance t1 t2 =
  match !engine_cache with
  | None -> Div.tree_distance t1 t2
  | Some c -> (
      let da = Db.Ted_cache.digest t1 and db = Db.Ted_cache.digest t2 in
      match Db.Ted_cache.find c da db with
      | Some d -> d
      | None ->
          let d = Div.tree_distance t1 t2 in
          Db.Ted_cache.add c da db d;
          d)

let ted_distance_bounded ~cutoff t1 t2 =
  match !engine_cache with
  | None -> Div.tree_distance_bounded ~cutoff t1 t2
  | Some c -> (
      let da = Db.Ted_cache.digest t1 and db = Db.Ted_cache.digest t2 in
      match Db.Ted_cache.find c da db with
      | Some d -> if d <= cutoff then Some d else None
      | None -> (
          match Div.tree_distance_bounded ~cutoff t1 t2 with
          | Some d ->
              Db.Ted_cache.add c da db d;
              Some d
          | None -> None))

let rec raw_divergence ?(variant = Base) metric c1 c2 =
  let key = memo_key ~variant metric c1 c2 in
  match Hashtbl.find_opt cache key with
  | Some r -> r
  | None ->
      let r = raw_divergence_uncached ~variant metric c1 c2 in
      Hashtbl.replace cache key r;
      r

and raw_divergence_uncached ?(variant = Base) metric c1 c2 =
  check_lang c1 c2;
  match metric with
  | SLOC | LLOC ->
      let total c = List.fold_left (fun acc u -> acc + count_of metric variant u) 0 c.ix_units in
      let t1 = total c1 and t2 = total c2 in
      (abs (t1 - t2), max t2 1)
  | Source ->
      List.fold_left
        (fun (d, dmax) pair ->
          match pair with
          | Some u1, Some u2 ->
              ( d + Div.source_distance (lines_of variant u1) (lines_of variant u2),
                dmax + Div.dmax_source (lines_of variant u2) )
          | Some u1, None -> (d + List.length (lines_of variant u1), dmax)
          | None, Some u2 ->
              let n = List.length (lines_of variant u2) in
              (d + n, dmax + n)
          | None, None -> (d, dmax))
        (0, 0) (unit_pairs c1 c2)
  | TSrc | TSem | TSemI | TIr ->
      List.fold_left
        (fun (d, dmax) pair ->
          match pair with
          | Some u1, Some u2 ->
              let t1 = tree_of metric variant c1 u1 in
              let t2 = tree_of metric variant c2 u2 in
              (d + ted_distance t1 t2, dmax + Div.dmax_tree t2)
          | Some u1, None -> (d + Tree.size (tree_of metric variant c1 u1), dmax)
          | None, Some u2 ->
              let n = Tree.size (tree_of metric variant c2 u2) in
              (d + n, dmax + n)
          | None, None -> (d, dmax))
        (0, 0) (unit_pairs c1 c2)

(* Admissible codebase-level lower bound for tree metrics: per matched
   slot the flat summary bound, unmatched units at full size — each slot
   term bounds its slot distance from below, so the sum bounds the raw
   divergence. Never runs a DP. *)
let codebase_lower ~variant metric c1 c2 =
  List.fold_left
    (fun acc pair ->
      match pair with
      | Some u1, Some u2 ->
          acc
          + Div.tree_lower_bound
              (tree_of metric variant c1 u1)
              (tree_of metric variant c2 u2)
      | Some u1, None -> acc + Tree.size (tree_of metric variant c1 u1)
      | None, Some u2 -> acc + Tree.size (tree_of metric variant c2 u2)
      | None, None -> acc)
    0 (unit_pairs c1 c2)

(* Bounded raw divergence for tree metrics: the per-slot bounded kernel
   with the remaining budget as its cutoff. [Some d] iff the exact raw
   divergence is [d ≤ cutoff]; a [None] from any slot proves the running
   total must exceed the budget, hence the pair distance does too. *)
let raw_divergence_bounded ?(variant = Base) metric ~cutoff c1 c2 =
  check_lang c1 c2;
  (match metric with
  | TSrc | TSem | TSemI | TIr -> ()
  | _ -> invalid_arg "raw_divergence_bounded: tree metrics only");
  if cutoff < 0 then None
  else begin
    let rec go acc = function
      | [] -> Some acc
      | pair :: rest -> (
          let budget = cutoff - acc in
          match pair with
          | Some u1, Some u2 -> (
              let t1 = tree_of metric variant c1 u1 in
              let t2 = tree_of metric variant c2 u2 in
              match ted_distance_bounded ~cutoff:budget t1 t2 with
              | None -> None
              | Some v -> go (acc + v) rest)
          | Some u1, None ->
              let s = Tree.size (tree_of metric variant c1 u1) in
              if s > budget then None else go (acc + s) rest
          | None, Some u2 ->
              let s = Tree.size (tree_of metric variant c2 u2) in
              if s > budget then None else go (acc + s) rest
          | None, None -> go acc rest)
    in
    go 0 (unit_pairs c1 c2)
  end

let divergence ?(variant = Base) metric c1 c2 =
  let d, dmax = raw_divergence ~variant metric c1 c2 in
  Div.normalised ~d ~dmax

(* dmax depends only on the target codebase (Eq. 7). *)
let target_size ?(variant = Base) metric c =
  match metric with
  | SLOC | LLOC ->
      max 1 (List.fold_left (fun acc u -> acc + count_of metric variant u) 0 c.ix_units)
  | Source ->
      List.fold_left (fun acc u -> acc + Div.dmax_source (lines_of variant u)) 0 c.ix_units
  | TSrc | TSem | TSemI | TIr ->
      List.fold_left
        (fun acc u -> acc + Div.dmax_tree (tree_of metric variant c u))
        0 c.ix_units

(* Pipe codec for one pairwise result: the raw (d, dmax) pair plus the
   TED cache entries the worker had to compute, so warm-cache state built
   in children flows back to the parent. *)
let pair_result_to_msgpack (dij, dmaxij, adds) =
  M.Arr
    [
      M.Int dij;
      M.Int dmaxij;
      M.Arr (List.map (fun (a, b, dd) -> M.Arr [ M.Bin a; M.Bin b; M.Int dd ]) adds);
    ]

let pair_result_of_msgpack = function
  | M.Arr [ M.Int dij; M.Int dmaxij; M.Arr adds ] ->
      let adds =
        List.map
          (function
            | M.Arr [ M.Bin a; M.Bin b; M.Int dd ] -> (a, b, dd)
            | _ -> failwith "Tbmd: malformed cache addition")
          adds
      in
      (dij, dmaxij, adds)
  | _ -> failwith "Tbmd: malformed pair result"

let matrix ?(variant = Base) metric codebases =
  (* every raw distance (TED, O(NP), |ΔSLOC|) is symmetric; only dmax is
     directional, so each unordered pair is computed once *)
  let arr = Array.of_list codebases in
  let n = Array.length arr in
  let labels = Array.map (fun c -> c.ix_model_name) arr in
  let dmax = Array.map (fun c -> target_size ~variant metric c) arr in
  let d = Array.make_matrix n n 0 in
  let pairs =
    Array.init (n * (n - 1) / 2) (fun _ -> (0, 0))
  in
  let idx = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      pairs.(!idx) <- (i, j);
      incr idx
    done
  done;
  (* Tree metrics on the flat kernel: compile every tree's flat form and
     size the DP scratch up front, so neither the serial loop nor any
     forked worker (which inherits the warm memo copy-on-write) compiles
     or reallocates mid-pair. Pair order below is untouched — results,
     memo and cache contents stay byte-identical. *)
  (match metric with
  | (TSrc | TSem | TSemI | TIr) when Div.ted_algo () = `Flat ->
      Index_engine.warm_ted
        (List.concat_map
           (fun c -> List.map (fun u -> tree_of metric variant c u) c.ix_units)
           codebases)
  | _ -> ());
  let tree_metric =
    match metric with TSrc | TSem | TSemI | TIr -> true | _ -> false
  in
  let pivk =
    match !engine_pivots with
    | Pivots_off -> 0
    | Pivots_auto -> Sv_metric.Pivots.auto_pivots n
    | Pivots k -> max 1 k
  in
  last_pivot_stats := None;
  let jobs = !engine_jobs in
  if tree_metric && pivk > 0 && n >= 2 then begin
    (* Triangle-bounded schedule (serial, in-process): pivot rows exact,
       every other pair either resolved from the pivot intervals — a
       collapsed interval is the distance; a lower bound at or above
       max(dmax_i, dmax_j) normalises to exactly 1.0 in both directions,
       same as the true distance would — or computed by the bounded
       kernel seeded with the interval's upper bound, which always
       returns the exact distance. Every cell therefore yields the same
       float as the exhaustive loop: matrices and dendrograms are
       byte-identical by construction. *)
    let o =
      {
        Sv_metric.Pivots.n;
        size = (fun i -> dmax.(i));
        lower = (fun i j -> codebase_lower ~variant metric arr.(i) arr.(j));
        dist =
          (fun i j -> fst (raw_divergence ~variant metric arr.(i) arr.(j)));
        dist_bounded =
          (fun i j ~cutoff ->
            raw_divergence_bounded ~variant metric ~cutoff arr.(i) arr.(j));
      }
    in
    let dd, st =
      Sv_metric.Pivots.schedule ~pivots:pivk
        ~clamp:(fun i j -> max dmax.(i) dmax.(j))
        o
    in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        d.(i).(j) <- dd.(i).(j)
      done
    done;
    last_pivot_stats := Some st
  end
  else if jobs <= 1 || Array.length pairs < 2 then
    Array.iter
      (fun (i, j) ->
        let dij, _ = raw_divergence ~variant metric arr.(i) arr.(j) in
        d.(i).(j) <- dij;
        d.(j).(i) <- dij)
      pairs
  else begin
    (* Entries journalled before the fan-out belong to the parent; drop
       them from the journal (they are already in the table) so the first
       task of each worker ships only what it computed itself. *)
    (match !engine_cache with
    | Some c -> ignore (Db.Ted_cache.drain_additions c)
    | None -> ());
    let f (i, j) =
      let dij, dmaxij = raw_divergence ~variant metric arr.(i) arr.(j) in
      let adds =
        match !engine_cache with
        | Some c -> Db.Ted_cache.drain_additions c
        | None -> []
      in
      (dij, dmaxij, adds)
    in
    let results =
      Sched.map ~jobs ~encode:pair_result_to_msgpack
        ~decode:pair_result_of_msgpack ~f pairs
    in
    (* Reassembly in pair order keeps everything deterministic: the
       matrix trivially, but also the memo and cache contents. *)
    Array.iteri
      (fun k (dij, dmaxij, adds) ->
        let i, j = pairs.(k) in
        d.(i).(j) <- dij;
        d.(j).(i) <- dij;
        Hashtbl.replace cache (memo_key ~variant metric arr.(i) arr.(j)) (dij, dmaxij);
        match !engine_cache with
        | Some c -> Db.Ted_cache.merge c adds
        | None -> ())
      results
  end;
  Sv_cluster.Cluster.of_fn labels (fun i j ->
      if i = j then 0.0 else Div.normalised ~d:d.(i).(j) ~dmax:dmax.(j))

let dendrogram ?(variant = Base) ?(linkage = Sv_cluster.Cluster.Complete) metric codebases =
  let m = matrix ~variant metric codebases in
  let dist = Sv_cluster.Cluster.row_euclidean m in
  (m, Sv_cluster.Cluster.cluster linkage dist)

(* --- VP-tree k-NN over codebases (Fig. 15's navigation scenario) ------ *)

type vp = {
  vt : Sv_metric.Vptree.t;
  vp_arr : indexed array;
  vp_variant : variant;
  vp_metric : metric;
}

(* The persisted-tree key commits to the full indexed payload of every
   candidate, in order — element ids are positions into that order — so
   any change to any codebase, the candidate set, or its order yields a
   fresh key and the stale tree is merely unreachable. *)
let corpus_digest codebases =
  Digest.string
    (M.encode (M.Arr (List.map Index_engine.indexed_to_msgpack codebases)))

let vp_key ?(variant = Base) metric codebases =
  Sv_db.Metric_cache.key
    ~corpus_digest:(corpus_digest codebases)
    ~metric:(metric_label metric) ~variant:(variant_label variant) ()

let warm_vp_trees metric variant codebases =
  match metric with
  | (TSrc | TSem | TSemI | TIr) when Div.ted_algo () = `Flat ->
      Index_engine.warm_ted
        (List.concat_map
           (fun c -> List.map (fun u -> tree_of metric variant c u) c.ix_units)
           codebases)
  | _ -> ()

let vp_index ?(variant = Base) metric codebases =
  let arr = Array.of_list codebases in
  let build () =
    warm_vp_trees metric variant codebases;
    let dist i j = fst (raw_divergence ~variant metric arr.(i) arr.(j)) in
    Sv_metric.Vptree.build ~dist (Array.init (Array.length arr) Fun.id)
  in
  let vt =
    match !engine_metric_cache with
    | None -> build ()
    | Some mc -> (
        let key = vp_key ~variant metric codebases in
        match Sv_db.Metric_cache.find mc key with
        | Some vt when Sv_metric.Vptree.size vt = Array.length arr ->
            (* warm: zero build evaluations; queries compile flats
               lazily through the divergence memo *)
            vt
        | _ ->
            let vt = build () in
            Sv_db.Metric_cache.add mc key vt;
            vt)
  in
  { vt; vp_arr = arr; vp_variant = variant; vp_metric = metric }

let vp_build_evals t = Sv_metric.Vptree.build_evals t.vt

(* Incremental extension: route the new codebase into the existing tree
   (amortised partial rebuilds keep it canonical) instead of rebuilding
   the whole index — the watch-mode / growing-corpus path. The returned
   handle shares the (mutated) tree; treat the old handle as consumed. *)
let vp_insert t codebase =
  let n = Array.length t.vp_arr in
  let arr = Array.append t.vp_arr [| codebase |] in
  let dist i j =
    fst (raw_divergence ~variant:t.vp_variant t.vp_metric arr.(i) arr.(j))
  in
  Sv_metric.Vptree.insert ~dist t.vt n;
  { t with vp_arr = arr }

(* Bounded query evaluator: tree metrics go through the real bounded
   cascade (size / histogram / branch-profile prunes fire per unit); the
   near-free metrics just compute and threshold. *)
let vp_bounded t query id ~cutoff =
  match t.vp_metric with
  | TSrc | TSem | TSemI | TIr ->
      raw_divergence_bounded ~variant:t.vp_variant t.vp_metric ~cutoff query
        t.vp_arr.(id)
  | _ ->
      let d = fst (raw_divergence ~variant:t.vp_variant t.vp_metric query t.vp_arr.(id)) in
      if d <= cutoff then Some d else None

let vp_nearest t ~k query =
  let hits, evals =
    Sv_metric.Vptree.nearest ~dist_bounded:(vp_bounded t query) ~k t.vt
  in
  ( List.map
      (fun (dv, id) ->
        let c = t.vp_arr.(id) in
        (c, dv, Div.normalised ~d:dv ~dmax:(target_size ~variant:t.vp_variant t.vp_metric c)))
      hits,
    evals )

(* Budgeted / ε-approximate variant: same hit shape plus the per-query
   exactness ledger. With neither budget nor ε the hits equal
   [vp_nearest] (and brute force) exactly and the ledger says so. *)
let vp_nearest_budgeted t ~k ?budget ?epsilon query =
  let hits, ledger =
    Sv_metric.Vptree.nearest_budgeted
      ~dist_bounded:(vp_bounded t query)
      ~k ?budget ?epsilon t.vt
  in
  ( List.map
      (fun (dv, id) ->
        let c = t.vp_arr.(id) in
        (c, dv, Div.normalised ~d:dv ~dmax:(target_size ~variant:t.vp_variant t.vp_metric c)))
      hits,
    ledger )

let vp_range t ~radius query =
  let hits, evals =
    Sv_metric.Vptree.range ~dist_bounded:(vp_bounded t query) ~radius t.vt
  in
  ( List.map
      (fun (dv, id) ->
        let c = t.vp_arr.(id) in
        (c, dv, Div.normalised ~d:dv ~dmax:(target_size ~variant:t.vp_variant t.vp_metric c)))
      hits,
    evals )

let nearest ?(variant = Base) metric ~k ~query codebases =
  let t = vp_index ~variant metric codebases in
  let hits, _ = vp_nearest t ~k query in
  hits
