(** The end-to-end SilverVale pipeline (§IV, Fig. 2–3).

    Takes a codebase (sources + model metadata, as produced by the corpus
    emitters or read back from a Compilation DB), runs the frontend
    stages, and yields every semantic-bearing tree and count the metric
    layer consumes:

    - MiniC units: preprocess (include splicing, macros, [-D] defines) →
      CST ([T_src], pre- and post-preprocessor) → AST ([T_sem], plus the
      inlined [T_sem+i]) → IR ([T_ir]); system-header content is masked
      out of every post-preprocessor tree.
    - MiniF units: lex → CST ([T_src]) → AST ([T_sem]) → IR ([T_ir]).
    - Optionally, the interpreter executes the codebase to (a) check the
      mini-app's built-in verification and (b) record the line coverage
      behind every [+coverage] variant.

    Indexing is pure parsing/lowering — it never fails on the bundled
    corpus (enforced by tests); [index] raises [Failure] with a located
    message on malformed input. *)

type unit_info = {
  u_file : string;
  u_deps : string list;            (** headers spliced in, system included *)
  u_sloc : int;                    (** pre-preprocessor, system masked *)
  u_sloc_pp : int;
  u_lloc : int;
  u_lloc_pp : int;
  u_lines : string list;           (** normalised lines (pre-pp, system masked) *)
  u_lines_pp : string list;
  u_t_src : Sv_tree.Label.tree;
  u_t_src_pp : Sv_tree.Label.tree;
  u_t_sem : Sv_tree.Label.tree;
  u_t_sem_i : Sv_tree.Label.tree;
  u_t_ir : Sv_tree.Label.tree;
}

type verification = {
  v_ok : bool;       (** the port's built-in verification passed *)
  v_output : string; (** program output *)
  v_steps : int;
}

type indexed = {
  ix_app : string;
  ix_model : string;
  ix_model_name : string;
  ix_lang : [ `C | `F ];
  ix_units : unit_info list;
  ix_coverage : Sv_util.Coverage.t option;
  ix_verification : verification option;
  ix_mask_memo : (string, Sv_tree.Label.tree) Hashtbl.t;
      (** per-codebase memo of coverage-masked trees, keyed by
          ["<unit file>#<metric tag>"] — masking is pure in (unit,
          metric), so it is computed once instead of once per pair *)
}

val index :
  ?run:bool ->
  ?unit_indexer:(string list -> unit_info list) ->
  Sv_corpus.Emit.codebase ->
  indexed
(** [index cb] runs the pipeline; with [~run:true] (default) the
    interpreter also executes the codebase for verification + coverage.

    [?unit_indexer], given the unit file list (main first), supplies the
    per-unit results instead of the serial {!index_c_unit_info} map — the
    hook through which {!Index_engine} injects worker-computed units.
    Only consulted for MiniC codebases; when the interpreter runs, the
    unit ASTs are re-derived in-process (preprocess + parse only), which
    yields the same program the serial path executes. The hook must
    return exactly what [List.map (index_c_unit_info cb) files] would,
    or the byte-identity guarantee is the caller's loss. *)

val index_c_unit_info : Sv_corpus.Emit.codebase -> string -> unit_info
(** One MiniC translation unit through every front-end stage — the
    work item the parallel engine fans out. *)

val c_unit_ast : Sv_corpus.Emit.codebase -> string -> Sv_lang_c.Ast.tunit
(** Preprocess + parse only (no trees, IR or counts) — how the parent
    cheaply reconstitutes the linked program for the interpreter when
    units were indexed elsewhere. *)

val to_db : indexed -> Sv_db.Codebase_db.t
(** Convert to the portable Codebase DB artifact (trees + metadata,
    §IV). Coverage-masked tree variants are stored alongside the base
    trees when coverage ran. *)

val unit_tree :
  metric:[ `TSrc | `TSrcPP | `TSem | `TSemI | `TIr ] ->
  coverage:bool ->
  indexed ->
  unit_info ->
  Sv_tree.Label.tree
(** Select a unit's tree for a tree metric, optionally coverage-masked
    (masking without recorded coverage returns the tree unchanged). *)
