(** The indexing engine: parallel, cache-aware front-end driving
    {!Pipeline.index}.

    Three coordinated layers make re-indexing cheap while leaving the
    answers untouched:

    - {b Parallel front-end.} Misses are fanned over the {!Sv_sched}
      fork/pipe pool — whole codebases in chunks when there are at least
      as many misses as workers, per-unit jobs (stitched back through
      {!Pipeline.index}'s [unit_indexer] hook) when codebases are scarce.
      Results are reassembled in input order, so output is byte-identical
      to the serial path; the pool's timeout/retry/degradation machinery
      applies unchanged.
    - {b Persistent cache.} When a {!Sv_db.Index_cache} is installed
      ({!set_cache}; the CLI's [--index-cache] / [SV_INDEX_CACHE]),
      every result is stored under {!codebase_key} and a warm run skips
      preprocessing, parsing, lowering and interpretation wholesale.
    - {b Hash-consed trees} live below, in {!Sv_tree.Hashcons} /
      {!Sv_metrics.Divergence} — decoded or freshly built trees are
      interned on first comparison, so the warm path feeds the same
      fast-path-friendly structures to TED as the cold one. *)

val set_cache : Sv_db.Index_cache.cache option -> unit
(** Install (or clear) the process-wide index cache consulted by
    {!index} / {!index_many}. *)

val cache : unit -> Sv_db.Index_cache.cache option

val codebase_key : run:bool -> Sv_corpus.Emit.codebase -> string
(** The {!Sv_db.Index_cache.key} for one codebase: the source digest
    spans identity metadata, the unit list, every file name and content,
    the system-header mask and the [run] flag; defines and dialect are
    separate key components. Any change to any of them is a miss. *)

type grain = [ `Serial | `Codebase | `Unit ]
(** How a batch of cache misses is executed: in-process, fanned out at
    whole-codebase grain, or fanned out per translation unit. *)

val plan_grain :
  jobs:int -> ?chunk:int -> Sv_corpus.Emit.codebase list -> grain
(** The grain {!index_many} will pick for the given {e missing}
    codebases. Serial when [jobs <= 1] or a single miss — and also when
    there are enough misses for the codebase-grain fan-out but their
    average source size is below the IPC floor (default 16 KiB,
    override with [SV_INDEX_GRAIN_BYTES]): shipping a fully indexed
    small codebase through the fork pipe and decoding it in the parent
    costs more than indexing it in-process (the PR 8 corpus-study
    regression, jobs=2 at 4.5× serial on 1000 tiny generated units). An
    explicit [?chunk] bypasses the floor — the caller is asking for the
    parallel shape. Exposed so benches and tests can assert which path a
    corpus takes. *)

val index :
  ?run:bool ->
  ?jobs:int ->
  ?chunk:int ->
  Sv_corpus.Emit.codebase ->
  Pipeline.indexed
(** Cache-aware {!Pipeline.index} ([run] defaults to [true]). *)

val index_many :
  ?run:bool ->
  ?jobs:int ->
  ?chunk:int ->
  Sv_corpus.Emit.codebase list ->
  Pipeline.indexed list
(** [index_many cbs] indexes a batch, in order. Cache hits are served
    directly (an undecodable payload counts as a miss, never an error);
    misses run at the grain {!plan_grain} picks — serially, in the
    worker pool at whole-codebase grain (submission chunk [?chunk],
    default [max 1 (misses / (2 * jobs))]), or at unit grain when misses
    are scarcer than workers. Every freshly computed result is added to
    the installed cache. [jobs] defaults to
    {!Sv_sched.Sched.default_jobs}. The result is byte-identical to
    [List.map (Pipeline.index ~run) cbs] in all configurations. *)

val warm_ted : Sv_tree.Label.tree list -> unit
(** [warm_ted trees] pre-compiles the flat TED kernel of every tree
    (ascending by size, memoised by intern id in
    {!Sv_metrics.Divergence}) and pre-grows the shared DP scratch for the
    two largest, so a following matrix sweep — serial or fanned over
    forked workers, which inherit the compiled kernels copy-on-write —
    never compiles or reallocates mid-pair. Purely a warming pass;
    distances are unchanged. *)

(** {2 Payload codecs}

    Exposed for tests and the bench harness: the exact serialisation the
    cache stores. *)

val indexed_to_msgpack : Pipeline.indexed -> Sv_msgpack.Msgpack.t

val indexed_of_msgpack :
  Sv_msgpack.Msgpack.t -> (Pipeline.indexed, string) Result.t
(** Inverse of {!indexed_to_msgpack} up to the per-process mask memo
    (rebuilt empty) and coverage table layout (observationally equal). *)

val unit_info_to_msgpack : Pipeline.unit_info -> Sv_msgpack.Msgpack.t

val unit_info_of_msgpack :
  Sv_msgpack.Msgpack.t -> (Pipeline.unit_info, string) Result.t
