module Pmodel = Sv_perf.Pmodel
module Platform = Sv_perf.Platform
module Phi = Sv_perf.Phi

type point = {
  model_id : string;
  model_name : string;
  marker : char;
  phi : float;
  div_t_sem : float;
  div_t_src : float;
}

(* positional markers following Pmodel.all_parallel order:
   Omp, Target, Cuda, Hip, Usm, Accessors, Kokkos, tBb, stdPar *)
let markers = "OTCHUAKBP"

let points ~app ~serial ~codebases ~platforms =
  let models = Pmodel.all_parallel in
  List.filteri (fun _ _ -> true) codebases
  |> List.filter_map (fun (c : Pipeline.indexed) ->
         match Pmodel.find c.Pipeline.ix_model with
         | Some m when m.Pmodel.id <> "serial" ->
             let phi = Phi.phi_of_model ~app ~models ~platforms m in
             let idx =
               match
                 List.find_index (fun (x : Pmodel.t) -> x.Pmodel.id = m.Pmodel.id) models
               with
               | Some i -> i
               | None -> 0
             in
             Some
               {
                 model_id = m.Pmodel.id;
                 model_name = m.Pmodel.name;
                 marker = markers.[idx mod String.length markers];
                 phi;
                 div_t_sem = Tbmd.divergence Tbmd.TSem serial c;
                 div_t_src = Tbmd.divergence Tbmd.TSrc serial c;
               }
         | _ -> None)

let render pts =
  let chart_points =
    List.concat_map
      (fun p ->
        [
          (1.0 -. p.div_t_sem, p.phi, p.marker);
          (1.0 -. p.div_t_src, p.phi, Char.lowercase_ascii p.marker);
        ])
      pts
  in
  let legend =
    List.map
      (fun p ->
        Printf.sprintf "  %c/%c %-18s Phi=%.3f  T_sem=%.2f  T_src=%.2f" p.marker
          (Char.lowercase_ascii p.marker) p.model_name p.phi p.div_t_sem p.div_t_src)
      pts
  in
  Sv_report.Report.scatter ~xlabel:"proximity to serial (1 - divergence)"
    ~ylabel:"Phi" chart_points
  ^ "legend (uppercase = T_sem, lowercase = T_src):\n"
  ^ String.concat "\n" legend ^ "\n"

(* Fig. 15's "find the nearest existing port" as a query primitive: the
   k candidates nearest the query codebase under the unnormalized
   integer divergence, through [Tbmd]'s VP-tree, with the eval count the
   index actually spent (vs a brute-force scan of all candidates). *)
type nearest_hit = {
  nh_model : string;
  nh_model_name : string;
  nh_d : int;
  nh_div : float;
}

let nearest_candidates ~query codebases =
  List.filter
    (fun (c : Pipeline.indexed) ->
      c.Pipeline.ix_model <> query.Pipeline.ix_model)
    codebases

let nearest_index ?variant ?(metric = Tbmd.TSem) cands =
  match cands with [] -> None | _ -> Some (Tbmd.vp_index ?variant metric cands)

let hit_of ((c : Pipeline.indexed), d, div) =
  {
    nh_model = c.Pipeline.ix_model;
    nh_model_name = c.Pipeline.ix_model_name;
    nh_d = d;
    nh_div = div;
  }

let nearest_in idx ~k ?budget ?epsilon query =
  match (budget, epsilon) with
  | None, None ->
      (* The exact recursive traversal: same hits as the budgeted path
         with no constraints, but also the same evaluation count as it
         has always reported — approximate mode must not perturb the
         exact mode's receipts. *)
      let hits, evals = Tbmd.vp_nearest idx ~k query in
      ( List.map hit_of hits,
        { Sv_metric.Vptree.evals; guaranteed_exact = true } )
  | _ ->
      let hits, ledger = Tbmd.vp_nearest_budgeted idx ~k ?budget ?epsilon query in
      (List.map hit_of hits, ledger)

let nearest_ports ?variant ?metric ?budget ?epsilon ~k ~query codebases =
  match nearest_index ?variant ?metric (nearest_candidates ~query codebases) with
  | None -> ([], { Sv_metric.Vptree.evals = 0; guaranteed_exact = true })
  | Some idx -> nearest_in idx ~k ?budget ?epsilon query

type scenario_stage = {
  stage : int;
  description : string;
  platform_abbrs : string list;
  phi_cuda : float;
  best_alternative : (string * float) option;
}

let cuda_scenario ~app ~serial ~codebases =
  let models = Pmodel.all_parallel in
  (* Divergence from the existing CUDA port — stage 3 weighs migration
     cost, not greenfield productivity. *)
  let cuda_cb =
    List.find_opt (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = "cuda") codebases
  in
  let divergence_from_cuda id =
    match
      ( cuda_cb,
        List.find_opt (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = id) codebases )
    with
    | Some base, Some target -> Tbmd.divergence Tbmd.TSem base target
    | _ -> Tbmd.divergence Tbmd.TSem serial serial (* 0.0 fallback *)
  in
  let stage_of n description platforms ~weigh_migration =
    let phi m = Phi.phi_of_model ~app ~models ~platforms m in
    let phi_cuda = phi Pmodel.cuda in
    let score (m : Pmodel.t) =
      if weigh_migration then phi m *. (1.0 -. divergence_from_cuda m.Pmodel.id)
      else phi m
    in
    let best_alternative =
      List.fold_left
        (fun best (m : Pmodel.t) ->
          if m.Pmodel.id = "cuda" then best
          else
            let v = score m in
            match best with
            | Some (_, bv) when bv >= v -> best
            | _ -> Some (m.Pmodel.name, v))
        None models
    in
    {
      stage = n;
      description;
      platform_abbrs = List.map (fun (p : Platform.t) -> p.Platform.abbr) platforms;
      phi_cuda;
      best_alternative;
    }
  in
  [
    stage_of 1 "NVIDIA GPUs are the only platform; the CUDA port covers it"
      [ Platform.h100 ] ~weigh_migration:false;
    stage_of 2 "an AMD system arrives; the CUDA-only codebase stops being portable"
      [ Platform.h100; Platform.mi250x ] ~weigh_migration:false;
    stage_of 3
      "pick by Phi weighted by porting proximity to the existing CUDA code"
      [ Platform.h100; Platform.mi250x ] ~weigh_migration:true;
  ]
