(** Minimal JSON parsing and printing.

    SilverVale ingests Compilation Databases — the single
    [compile_commands.json] file CMake/Meson/Bear emit (§IV). This module
    is a small, dependency-free JSON implementation sufficient for that
    format plus the framework's own report exports. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list
      (** Object members in source order; duplicate keys are preserved
          (last wins in {!member}). *)

exception Parse_error of string
(** Raised by {!of_string} with a human-readable position message. *)

val of_string : string -> t
(** [of_string s] parses one JSON value; trailing whitespace is allowed,
    trailing content is not. Raises {!Parse_error}. *)

val to_string : ?indent:int -> t -> string
(** [to_string v] serialises [v]; with [~indent] the output is
    pretty-printed with that many spaces per level. *)

val member : string -> t -> t option
(** [member k v] looks up key [k] when [v] is an object ([None]
    otherwise or when absent). For duplicate keys the last entry wins. *)

val to_list : t -> t list
(** [to_list v] is the element list of an array, or [[]] for any other
    value. *)

val string_value : t -> string option
(** [string_value v] extracts a [String] payload. *)

val int_value : t -> int option
(** [int_value v] extracts an [Int] payload (floats are not coerced). *)

val float_value : t -> float option
(** [float_value v] extracts a [Float] payload; [Int] is coerced (JSON
    does not distinguish [1] from [1.0]). *)

val bool_value : t -> bool option
(** [bool_value v] extracts a [Bool] payload. *)

val equal : t -> t -> bool
(** Structural equality; object key order is significant (round-trip
    equality). *)
