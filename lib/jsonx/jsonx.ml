type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- parsing ------------------------------------------------------- *)

type state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_hex4 st =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek st with
    | Some c ->
        let d =
          match c with
          | '0' .. '9' -> Char.code c - Char.code '0'
          | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
          | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
          | _ -> fail st "invalid \\u escape"
        in
        v := (!v * 16) + d
    | None -> fail st "truncated \\u escape");
    advance st
  done;
  !v

let utf8_encode b cp =
  if cp < 0x80 then Buffer.add_char b (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
        advance st;
        (match peek st with
        | Some 'n' -> Buffer.add_char b '\n'; advance st
        | Some 't' -> Buffer.add_char b '\t'; advance st
        | Some 'r' -> Buffer.add_char b '\r'; advance st
        | Some 'b' -> Buffer.add_char b '\b'; advance st
        | Some 'f' -> Buffer.add_char b '\012'; advance st
        | Some '"' -> Buffer.add_char b '"'; advance st
        | Some '\\' -> Buffer.add_char b '\\'; advance st
        | Some '/' -> Buffer.add_char b '/'; advance st
        | Some 'u' ->
            advance st;
            utf8_encode b (parse_hex4 st)
        | _ -> fail st "invalid escape");
        go ()
    | Some c ->
        Buffer.add_char b c;
        advance st;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec consume () =
    match peek st with
    | Some c when is_num c ->
        advance st;
        consume ()
    | _ -> ()
  in
  consume ();
  let text = String.sub st.src start (st.pos - start) in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st "invalid number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> fail st "invalid number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | Some '{' -> parse_obj st
  | Some '[' -> parse_list st
  | Some '"' -> String (parse_string st)
  | Some 't' -> parse_lit st "true" (Bool true)
  | Some 'f' -> parse_lit st "false" (Bool false)
  | Some 'n' -> parse_lit st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | _ -> fail st "expected a JSON value"

and parse_lit st lit v =
  String.iter (fun c -> expect st c) lit;
  v

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let members = ref [] in
    let rec go () =
      skip_ws st;
      let k = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      members := (k, v) :: !members;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          go ()
      | Some '}' -> advance st
      | _ -> fail st "expected ',' or '}'"
    in
    go ();
    Obj (List.rev !members)
  end

and parse_list st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    List []
  end
  else begin
    let elems = ref [] in
    let rec go () =
      let v = parse_value st in
      elems := v :: !elems;
      skip_ws st;
      match peek st with
      | Some ',' ->
          advance st;
          go ()
      | Some ']' -> advance st
      | _ -> fail st "expected ',' or ']'"
    in
    go ();
    List (List.rev !elems)
  end

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing content";
  v

(* --- printing ------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string ?indent v =
  let b = Buffer.create 256 in
  let nl level =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make (n * level) ' ')
  in
  let sep () = match indent with None -> () | Some _ -> Buffer.add_char b ' ' in
  let rec go level v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string b (Printf.sprintf "%.1f" f)
        else Buffer.add_string b (Printf.sprintf "%.17g" f)
    | String s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | List [] -> Buffer.add_string b "[]"
    | List xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            nl (level + 1);
            go (level + 1) x)
          xs;
        nl level;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj kvs ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, x) ->
            if i > 0 then Buffer.add_char b ',';
            nl (level + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            sep ();
            go (level + 1) x)
          kvs;
        nl level;
        Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let member k = function
  | Obj kvs ->
      List.fold_left (fun acc (k', v) -> if k' = k then Some v else acc) None kvs
  | _ -> None

let to_list = function List xs -> xs | _ -> []
let string_value = function String s -> Some s | _ -> None
let int_value = function Int i -> Some i | _ -> None
let float_value = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let bool_value = function Bool b -> Some b | _ -> None
let equal (a : t) (b : t) = a = b
