module J = Sv_jsonx.Jsonx
module M = Sv_msgpack.Msgpack
module T = Sv_perf.Telemetry
module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Apps = Sv_core.Apps
module Navigation = Sv_core.Navigation
module Index_engine = Sv_core.Index_engine
module Index_cache = Sv_db.Index_cache
module Ted_cache = Sv_db.Codebase_db.Ted_cache
module Metric_cache = Sv_db.Metric_cache
module Lru = Sv_db.Lru
module Report = Sv_report.Report

type config = {
  jobs : int;
  lru_budget : int;
  high_water : int;
  ted_cache_path : string option;
  index_cache_path : string option;
  metric_cache_path : string option;
  persist_every : int;
}

let default_lru_budget () =
  match Sys.getenv_opt "SV_LRU_MB" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some mb when mb > 0 -> mb * 1024 * 1024
      | _ -> 64 * 1024 * 1024)
  | None -> 64 * 1024 * 1024

let default_config () =
  {
    jobs = 1;
    lru_budget = default_lru_budget ();
    high_water = 8;
    ted_cache_path = None;
    index_cache_path = None;
    metric_cache_path = None;
    persist_every = 32;
  }

(* A resident codebase keeps its cache payload next to the decoded form:
   the payload is the byte size the LRU budgets, and the bytes the
   eviction callback spills into the persistent index cache. *)
type resident = { ix : Pipeline.indexed; payload : string }

(* A resident VP-tree metric index: built (or reloaded) once per
   (filtered candidate corpus, metric, variant) and reused across
   nearest requests instead of being rebuilt per call. Keyed by
   {!Tbmd.vp_key}, which commits to the candidate payload digests in
   order — any corpus change is a structural miss. Eviction is safe:
   the persistent metric cache already holds the encoded tree, so a
   re-probe decodes instead of re-measuring. *)
type vp_resident = { vp : Tbmd.vp; vp_bytes : int }

type t = {
  cfg : config;
  lru : resident Lru.t;
  vp_lru : vp_resident Lru.t;
  index_cache : Index_cache.cache;
  ted_cache : Ted_cache.cache;
  metric_cache : Metric_cache.cache;
  mutable queue_depth : int;
  mutable shutting_down : bool;
  mutable since_persist : int;
}

let create cfg =
  let cfg =
    { cfg with jobs = (if cfg.jobs <= 0 then Sv_sched.Sched.default_jobs () else cfg.jobs) }
  in
  let index_cache =
    match cfg.index_cache_path with
    | Some path -> Index_cache.load_file path
    | None -> Index_cache.create ()
  in
  let ted_cache =
    match cfg.ted_cache_path with
    | Some path -> Ted_cache.load_file path
    | None -> Ted_cache.create ()
  in
  let metric_cache =
    match cfg.metric_cache_path with
    | Some path -> Metric_cache.load_file path
    | None -> Metric_cache.create ()
  in
  let lru =
    Lru.create
      ~on_evict:(fun key r -> Index_cache.add index_cache key r.payload)
      ~budget:cfg.lru_budget
      ~size_of:(fun r -> String.length r.payload)
      ()
  in
  let vp_lru =
    Lru.create ~budget:cfg.lru_budget ~size_of:(fun r -> r.vp_bytes) ()
  in
  {
    cfg;
    lru;
    vp_lru;
    index_cache;
    ted_cache;
    metric_cache;
    queue_depth = 0;
    shutting_down = false;
    since_persist = 0;
  }

let config t = t.cfg
let set_queue_depth t d = t.queue_depth <- d
let shutting_down t = t.shutting_down

(* Install the resident caches and worker count into the process-wide
   engine hooks for the duration of [f], restoring whatever was there
   before — an in-process fallback evaluation must not leak state into
   the caller's later library use. *)
let with_installed t f =
  let prev_jobs = Tbmd.jobs () in
  let prev_ted = Tbmd.ted_cache () in
  let prev_index = Index_engine.cache () in
  let prev_metric = Tbmd.metric_cache () in
  Tbmd.set_jobs t.cfg.jobs;
  Tbmd.set_ted_cache (Some t.ted_cache);
  Index_engine.set_cache (Some t.index_cache);
  Tbmd.set_metric_cache (Some t.metric_cache);
  let restore () =
    Tbmd.set_jobs prev_jobs;
    Tbmd.set_ted_cache prev_ted;
    Index_engine.set_cache prev_index;
    Tbmd.set_metric_cache prev_metric
  in
  match f () with
  | r ->
      restore ();
      r
  | exception e ->
      restore ();
      raise e

(* --- residency --- *)

let encode_payload ix = M.encode (Index_engine.indexed_to_msgpack ix)

(* Resolve a list of codebases against the LRU; misses go through the
   cache-aware engine (the resident index cache is installed, so a miss
   here may still be a persistent-cache hit) and become resident.
   [warm] is true iff everything was already decoded and live. *)
let obtain t cbs =
  let keyed =
    List.map (fun cb -> (Index_engine.codebase_key ~run:true cb, cb)) cbs
  in
  let probed = List.map (fun (key, cb) -> (key, cb, Lru.find t.lru key)) keyed in
  let missing =
    List.filter_map
      (fun (key, cb, hit) -> if hit = None then Some (key, cb) else None)
      probed
  in
  let fresh =
    match missing with
    | [] -> []
    | _ ->
        let ixs =
          Index_engine.index_many ~jobs:t.cfg.jobs (List.map snd missing)
        in
        List.map2
          (fun (key, _) ix ->
            let r = { ix; payload = encode_payload ix } in
            Lru.add t.lru key r;
            (key, ix))
          missing ixs
  in
  let ixs =
    List.map
      (fun (key, _, hit) ->
        match hit with
        | Some r -> r.ix
        | None -> List.assoc key fresh)
      probed
  in
  (ixs, missing = [])

(* --- renderers (the CLI's exact output) --- *)

let render_compare ~app ~base ~target bix tix =
  let rows =
    List.map
      (fun m ->
        let d, dmax = Tbmd.raw_divergence m bix tix in
        [
          Tbmd.metric_label m;
          string_of_int d;
          string_of_int dmax;
          Printf.sprintf "%.3f" (Tbmd.divergence m bix tix);
        ])
      Tbmd.all_metrics
  in
  Printf.sprintf "divergence %s: %s -> %s\n" app base target
  ^ Report.table ~headers:[ "metric"; "d"; "dmax"; "normalised" ] ~rows

let render_matrix m ixs =
  let matrix = Tbmd.matrix m ixs in
  Report.heatmap
    ~row_labels:(Array.to_list matrix.Sv_cluster.Cluster.labels)
    ~col_labels:(Array.to_list matrix.Sv_cluster.Cluster.labels)
    matrix.Sv_cluster.Cluster.data

let render_cluster m ixs =
  let matrix, dendro = Tbmd.dendrogram m ixs in
  Report.heatmap
    ~row_labels:(Array.to_list matrix.Sv_cluster.Cluster.labels)
    ~col_labels:(Array.to_list matrix.Sv_cluster.Cluster.labels)
    matrix.Sv_cluster.Cluster.data
  ^ Report.dendrogram ~labels:matrix.Sv_cluster.Cluster.labels dendro

let render_nearest ~app ~model ~k ?budget ?epsilon ?index m qix ixs =
  let cands = List.length (Navigation.nearest_candidates ~query:qix ixs) in
  let hits, ledger =
    match index with
    | Some idx -> Navigation.nearest_in idx ~k ?budget ?epsilon qix
    | None -> Navigation.nearest_ports ~metric:m ?budget ?epsilon ~k ~query:qix ixs
  in
  let rows =
    List.map
      (fun (h : Navigation.nearest_hit) ->
        [
          h.Navigation.nh_model;
          h.Navigation.nh_model_name;
          string_of_int h.Navigation.nh_d;
          Printf.sprintf "%.3f" h.Navigation.nh_div;
        ])
      hits
  in
  let approx =
    match (budget, epsilon) with
    | None, None -> ""
    | _ ->
        Printf.sprintf "approximation: budget=%s epsilon=%s guaranteed_exact=%b\n"
          (match budget with Some b -> string_of_int b | None -> "none")
          (match epsilon with Some e -> Printf.sprintf "%g" e | None -> "none")
          ledger.Sv_metric.Vptree.guaranteed_exact
  in
  Printf.sprintf "nearest %s: %s (%s, k=%d)\n" app model (Tbmd.metric_label m) k
  ^ Report.table ~headers:[ "model"; "name"; "d"; "normalised" ] ~rows
  ^ Printf.sprintf "index evaluations: %d of %d candidates\n"
      ledger.Sv_metric.Vptree.evals cands
  ^ approx

let render_index ix =
  let db = Pipeline.to_db ix in
  Sv_db.Codebase_db.stats db ^ "\n"
  ^
  match ix.Pipeline.ix_verification with
  | Some v ->
      Printf.sprintf "built-in verification: %s\n"
        (if v.Pipeline.v_ok then "PASSED" else "FAILED")
  | None -> ""

(* --- status --- *)

let status_fields t =
  let serve = List.map (fun (k, v) -> (k, J.Int v)) (T.serve_rows T.serve) in
  serve
  @ [
      ("queue_depth", J.Int t.queue_depth);
      ("high_water", J.Int t.cfg.high_water);
      ("jobs", J.Int t.cfg.jobs);
      ("lru_entries", J.Int (Lru.count t.lru));
      ("lru_bytes", J.Int (Lru.bytes t.lru));
      ("lru_budget", J.Int (Lru.budget t.lru));
      ("lru_hits", J.Int (Lru.hits t.lru));
      ("lru_misses", J.Int (Lru.misses t.lru));
      ("lru_evictions", J.Int (Lru.evictions t.lru));
      ("index_entries", J.Int (Index_cache.size t.index_cache));
      ("index_hits", J.Int (Index_cache.hits t.index_cache));
      ("index_misses", J.Int (Index_cache.misses t.index_cache));
      ("ted_entries", J.Int (Ted_cache.size t.ted_cache));
      ("ted_hits", J.Int (Ted_cache.hits t.ted_cache));
      ("ted_misses", J.Int (Ted_cache.misses t.ted_cache));
      ("metric_entries", J.Int (Metric_cache.size t.metric_cache));
      ("metric_hits", J.Int (Metric_cache.hits t.metric_cache));
      ("metric_misses", J.Int (Metric_cache.misses t.metric_cache));
      ("vp_entries", J.Int (Lru.count t.vp_lru));
      ("vp_hits", J.Int (Lru.hits t.vp_lru));
      ("vp_misses", J.Int (Lru.misses t.vp_lru));
    ]

let shed t ~queue payload =
  T.serve.T.requests <- T.serve.T.requests + 1;
  T.serve.T.bytes_in <- T.serve.T.bytes_in + String.length payload;
  T.serve.T.overloaded <- T.serve.T.overloaded + 1;
  let out =
    Protocol.encode_response
      ~id:(Protocol.request_id payload)
      (Protocol.Overloaded { queue; high_water = t.cfg.high_water })
  in
  T.serve.T.bytes_out <- T.serve.T.bytes_out + String.length out;
  out

let oversized _t ~announced ~cap =
  T.serve.T.errors <- T.serve.T.errors + 1;
  let out =
    Protocol.encode_response ~id:None
      (Protocol.Error
         {
           kind = Protocol.Oversized;
           message =
             Printf.sprintf "frame announces %d payload bytes; the cap is %d"
               announced cap;
         })
  in
  T.serve.T.bytes_out <- T.serve.T.bytes_out + String.length out;
  out

let persist t =
  let save what path save_file cache =
    match save_file path cache with
    | () -> ()
    | exception Sys_error msg ->
        Printf.eprintf "sv serve: warning: %s not saved: %s\n%!" what msg
  in
  (match t.cfg.ted_cache_path with
  | Some path -> save "ted-cache" path Ted_cache.save_file t.ted_cache
  | None -> ());
  (match t.cfg.index_cache_path with
  | Some path -> save "index-cache" path Index_cache.save_file t.index_cache
  | None -> ());
  match t.cfg.metric_cache_path with
  | Some path -> save "metric-cache" path Metric_cache.save_file t.metric_cache
  | None -> ()

(* --- evaluation --- *)

let unknown_app app =
  Protocol.Error
    {
      kind = Protocol.Unknown_app;
      message =
        Printf.sprintf "unknown app %S (expected one of: %s)" app
          (String.concat ", " Apps.app_names);
    }

let unknown_model app model =
  Protocol.Error
    {
      kind = Protocol.Unknown_model;
      message = Printf.sprintf "app %s has no model %s" app model;
    }

let unknown_metric metric =
  Protocol.Error
    {
      kind = Protocol.Unknown_metric;
      message = Printf.sprintf "unknown metric %S" metric;
    }

let invalid_request fmt =
  Printf.ksprintf
    (fun message -> Protocol.Error { kind = Protocol.Invalid_request; message })
    fmt

(* The approximate-search knobs are validated before any work: a
   nonsensical request earns a typed reply, not a [Failed] raise and
   not a silently clamped answer. *)
let check_nearest ~k ~budget ~epsilon =
  if k <= 0 then Some (invalid_request "k must be at least 1 (got %d)" k)
  else
    match budget with
    | Some b when b < 0 ->
        Some (invalid_request "budget must be non-negative (got %d)" b)
    | _ -> (
        match epsilon with
        | Some e when (not (Float.is_finite e)) || e < 0. ->
            Some (invalid_request "epsilon must be a finite number >= 0 (got %g)" e)
        | _ -> None)

let with_metric metric k =
  match Tbmd.metric_of_string metric with
  | None -> unknown_metric metric
  | Some m -> k m

let with_app app k =
  match Apps.corpus_of_app app with
  | None -> unknown_app app
  | Some cbs -> k cbs

let output verb warm out = Protocol.Output { verb; warm; output = out }

let evaluate t req =
  match req with
  | Protocol.Status -> Protocol.Status_of (status_fields t)
  | Protocol.Shutdown ->
      t.shutting_down <- true;
      persist t;
      Protocol.Shutdown_ack
  | Protocol.Index { app; model } ->
      with_app app (fun cbs ->
          match Apps.find_codebase ~app cbs model with
          | None -> unknown_model app model
          | Some cb ->
              with_installed t (fun () ->
                  let ixs, warm = obtain t [ cb ] in
                  output "index" warm (render_index (List.hd ixs))))
  | Protocol.Compare { app; base; target } ->
      with_app app (fun cbs ->
          match
            (Apps.find_codebase ~app cbs base, Apps.find_codebase ~app cbs target)
          with
          | Some b, Some tg ->
              with_installed t (fun () ->
                  let ixs, warm = obtain t [ b; tg ] in
                  match ixs with
                  | [ bix; tix ] ->
                      output "compare" warm
                        (render_compare ~app ~base ~target bix tix)
                  | _ -> assert false)
          | None, _ -> unknown_model app base
          | _, None -> unknown_model app target)
  | Protocol.Matrix { app; metric } ->
      with_metric metric (fun m ->
          with_app app (fun cbs ->
              with_installed t (fun () ->
                  let ixs, warm = obtain t cbs in
                  output "matrix" warm (render_matrix m ixs))))
  | Protocol.Cluster { app; metric } ->
      with_metric metric (fun m ->
          with_app app (fun cbs ->
              with_installed t (fun () ->
                  let ixs, warm = obtain t cbs in
                  output "cluster" warm (render_cluster m ixs))))
  | Protocol.Nearest { app; model; metric; k; budget; epsilon } -> (
      match check_nearest ~k ~budget ~epsilon with
      | Some err -> err
      | None ->
          with_metric metric (fun m ->
              with_app app (fun cbs ->
                  match Apps.find_codebase ~app cbs model with
                  | None -> unknown_model app model
                  | Some cb ->
                      with_installed t (fun () ->
                          let ixs, warm = obtain t cbs in
                          let qix = List.assq cb (List.combine cbs ixs) in
                          let cands = Navigation.nearest_candidates ~query:qix ixs in
                          let index =
                            match cands with
                            | [] -> None
                            | _ -> (
                                let key = Tbmd.vp_key m cands in
                                match Lru.find t.vp_lru key with
                                | Some r -> Some r.vp
                                | None ->
                                    Option.map
                                      (fun vp ->
                                        (* words of repr, roughly: the
                                           budget heuristic, not an
                                           exact account *)
                                        let vp_bytes =
                                          8 * 9 * List.length cands
                                        in
                                        Lru.add t.vp_lru key { vp; vp_bytes };
                                        vp)
                                      (Navigation.nearest_index ~metric:m cands))
                          in
                          output "nearest" warm
                            (render_nearest ~app ~model ~k ?budget ?epsilon
                               ?index m qix ixs)))))

let handle t req =
  match evaluate t req with
  | resp -> resp
  | exception e ->
      Protocol.Error { kind = Protocol.Failed; message = Printexc.to_string e }

let handle_payload t payload =
  let t0 = Unix.gettimeofday () in
  T.serve.T.requests <- T.serve.T.requests + 1;
  T.serve.T.bytes_in <- T.serve.T.bytes_in + String.length payload;
  let id, resp =
    match Protocol.decode_request payload with
    | Error (kind, message) ->
        (Protocol.request_id payload, Protocol.Error { kind; message })
    | Ok (id, req) -> (id, handle t req)
  in
  (match resp with
  | Protocol.Output { warm; _ } ->
      T.serve.T.served <- T.serve.T.served + 1;
      if warm then T.serve.T.warm_hits <- T.serve.T.warm_hits + 1
      else T.serve.T.cold_misses <- T.serve.T.cold_misses + 1
  | Protocol.Status_of _ | Protocol.Shutdown_ack ->
      T.serve.T.served <- T.serve.T.served + 1
  | Protocol.Error _ -> T.serve.T.errors <- T.serve.T.errors + 1
  | Protocol.Overloaded _ -> T.serve.T.overloaded <- T.serve.T.overloaded + 1);
  let out = Protocol.encode_response ~id resp in
  T.serve.T.bytes_out <- T.serve.T.bytes_out + String.length out;
  T.serve.T.usec_total <-
    T.serve.T.usec_total
    + int_of_float ((Unix.gettimeofday () -. t0) *. 1e6);
  t.since_persist <- t.since_persist + 1;
  if t.cfg.persist_every > 0 && t.since_persist >= t.cfg.persist_every then begin
    t.since_persist <- 0;
    persist t
  end;
  out
