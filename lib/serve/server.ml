module T = Sv_perf.Telemetry

let default_socket () =
  match Sys.getenv_opt "SV_SOCKET" with
  | Some s when s <> "" -> s
  | _ ->
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "sv-serve-%d.sock" (Unix.getuid ()))

type conn = {
  fd : Unix.file_descr;
  reader : Protocol.Reader.t;
  mutable alive : bool;
}

type t = {
  listen_fd : Unix.file_descr;
  sock_path : string;
  max_frame : int;
  engine : Engine.t;
  mutable conns : conn list;
  queue : (conn * string) Queue.t;
}

let socket t = t.sock_path

(* Replace a stale socket file; refuse to displace a live daemon. *)
let bind_socket path =
  (match Unix.stat path with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | _ ->
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error (_, _, _) -> false
      in
      Unix.close probe;
      if live then
        failwith (Printf.sprintf "%s: a daemon is already listening" path)
      else Unix.unlink path);
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let create ?(max_frame = Protocol.default_max_frame) ~socket engine =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  {
    listen_fd = bind_socket socket;
    sock_path = socket;
    max_frame;
    engine;
    conns = [];
    queue = Queue.create ();
  }

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ());
    t.conns <- List.filter (fun c' -> c' != c) t.conns
  end

(* Whole-frame blocking write by the one loop thread: no torn frames.
   A peer that vanished mid-write just loses its connection. *)
let reply t c payload =
  if c.alive then begin
    let bytes = Protocol.frame payload in
    let n = String.length bytes in
    let rec go off =
      if off < n then
        let w = Unix.write_substring c.fd bytes off (n - off) in
        go (off + w)
    in
    match go 0 with
    | () -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        close_conn t c
  end

let accept_all t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.clear_nonblock fd;
        T.serve.T.connections <- T.serve.T.connections + 1;
        t.conns <-
          { fd; reader = Protocol.Reader.create ~max_frame:t.max_frame (); alive = true }
          :: t.conns;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let high_water t = (Engine.config t.engine).Engine.high_water

(* Pull every complete frame out of a connection's reader: admit to the
   queue below the high-water mark, shed with a typed reply at it, and
   poison-close on an oversized announcement. *)
let drain_frames t c =
  let rec go () =
    if c.alive then
      match Protocol.Reader.next c.reader with
      | `Awaiting -> ()
      | `Oversized n ->
          reply t c (Engine.oversized t.engine ~announced:n ~cap:t.max_frame);
          close_conn t c
      | `Frame payload ->
          let depth = Queue.length t.queue in
          if depth >= high_water t then
            reply t c (Engine.shed t.engine ~queue:depth payload)
          else begin
            Queue.add (c, payload) t.queue;
            T.note_queue_depth (Queue.length t.queue)
          end;
          go ()
  in
  go ()

let read_step t c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | 0 -> close_conn t c
  | n ->
      Protocol.Reader.feed c.reader (Bytes.sub_string buf 0 n);
      drain_frames t c
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      close_conn t c

let service_one t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some (c, payload) ->
      Engine.set_queue_depth t.engine (Queue.length t.queue);
      let out = Engine.handle_payload t.engine payload in
      reply t c out

let run t =
  let rec loop () =
    if Engine.shutting_down t.engine then drain ()
    else begin
      let fds = t.listen_fd :: List.map (fun c -> c.fd) t.conns in
      let timeout = if Queue.is_empty t.queue then 0.5 else 0.0 in
      let readable, _, _ =
        match Unix.select fds [] [] timeout with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.listen_fd readable then accept_all t;
      List.iter
        (fun c -> if c.alive && List.mem c.fd readable then read_step t c)
        t.conns;
      service_one t;
      loop ()
    end
  and drain () =
    if not (Queue.is_empty t.queue) then begin
      service_one t;
      drain ()
    end
  in
  loop ();
  List.iter (fun c -> close_conn t c) t.conns;
  (try Unix.close t.listen_fd with Unix.Unix_error (_, _, _) -> ());
  (try Unix.unlink t.sock_path with Unix.Unix_error (_, _, _) | Sys_error _ -> ());
  Engine.persist t.engine

let serve ?max_frame ~socket engine = run (create ?max_frame ~socket engine)
