(** The `sv serve` wire protocol: length-prefixed JSON frames.

    One frame is a 4-byte big-endian payload length followed by exactly
    that many bytes of UTF-8 JSON — the same framing discipline as the
    scheduler's msgpack pipes ({!Sv_sched}), with JSON payloads
    ({!Sv_jsonx}) because requests are written by humans and foreign
    clients. The codec here is pure (no sockets, no I/O): the
    conformance suite drives it directly, and {!Server}/{!Client} only
    add file descriptors.

    Request grammar (one JSON object per frame):
    {v
      { "id": <int>?, "verb": "index",    "app": <s>, "model": <s> }
      { "id": <int>?, "verb": "compare",  "app": <s>, "base": <s>, "target": <s> }
      { "id": <int>?, "verb": "matrix",   "app": <s>, "metric": <s> }
      { "id": <int>?, "verb": "cluster",  "app": <s>, "metric": <s> }
      { "id": <int>?, "verb": "nearest",  "app": <s>, "model": <s>, "metric": <s>,
                      "k": <int>?, "budget": <int>?, "epsilon": <number>? }
      { "id": <int>?, "verb": "status" }
      { "id": <int>?, "verb": "shutdown" }
    v}

    Replies echo the [id] (or [null] when the request's could not be
    read) and carry a [status] of ["ok"], ["error"] or ["overloaded"]:
    {v
      { "id": .., "status": "ok", "verb": <s>, "warm": <bool>, "output": <s> }
      { "id": .., "status": "ok", "verb": "status", <counter fields...> }
      { "id": .., "status": "ok", "verb": "shutdown" }
      { "id": .., "status": "error", "kind": <s>, "message": <s> }
      { "id": .., "status": "overloaded", "queue": <int>, "high_water": <int> }
    v} *)

val default_max_frame : int
(** Payload-size cap (16 MiB): larger frames are rejected without
    buffering the payload. *)

(** {2 Requests} *)

type request =
  | Index of { app : string; model : string }
  | Compare of { app : string; base : string; target : string }
  | Matrix of { app : string; metric : string }
  | Cluster of { app : string; metric : string }
  | Nearest of {
      app : string;
      model : string;
      metric : string;
      k : int;
      budget : int option;
      epsilon : float option;
    }
      (** k-NN over the VP-tree index ({!Sv_core.Tbmd.vp_index}); the
          wire field ["k"] is optional and defaults to 3. [budget] and
          [epsilon] (absent = exact search) select the budgeted
          best-first mode, whose reply reports the honest exactness
          ledger in its rendered output. *)
  | Status
  | Shutdown

val verb_of_request : request -> string

(** Typed reply-error taxonomy. The first four arise in the codec /
    transport layer, the rest in request evaluation. *)
type error_kind =
  | Oversized      (** frame length beyond the cap *)
  | Bad_json       (** payload is not valid JSON *)
  | Bad_request    (** JSON is not a request object (missing/ill-typed fields) *)
  | Unknown_verb
  | Unknown_app
  | Unknown_model
  | Unknown_metric
  | Invalid_request  (** well-formed request with out-of-domain values (k < 1, negative budget, bad ε) *)
  | Failed         (** evaluation raised *)

val kind_to_string : error_kind -> string
(** Wire spelling, e.g. ["unknown-verb"]. *)

val kind_of_string : string -> error_kind option

type response =
  | Output of { verb : string; warm : bool; output : string }
      (** [index]/[compare]/[matrix]/[cluster]/[nearest] result: [output] is
          byte-identical to what the one-shot CLI prints for the same
          request; [warm] is true when no codebase had to be indexed. *)
  | Status_of of (string * Sv_jsonx.Jsonx.t) list
      (** Telemetry fields in report order. *)
  | Shutdown_ack
  | Error of { kind : error_kind; message : string }
  | Overloaded of { queue : int; high_water : int }

(** {2 Payload codec (JSON bytes, unframed)} *)

val encode_request : ?id:int -> request -> string

val decode_request : string -> (int option * request, error_kind * string) result
(** Classify malformed payloads per the taxonomy above; the [id] is
    recovered whenever the payload parses to an object, even if the
    request itself is rejected. *)

val request_id : string -> int option
(** Best-effort [id] extraction from a raw payload (for replies that
    must be produced without decoding, e.g. admission-control sheds). *)

val encode_response : id:int option -> response -> string

val decode_response : string -> (int option * response, string) result

(** {2 Framing} *)

val frame : string -> string
(** [frame payload] prefixes the 4-byte big-endian length. *)

(** Incremental defragmenter for a byte stream of frames. Feed it
    whatever [read] returned; it yields complete payloads in order.
    Frames are only ever yielded whole — a reader can never observe a
    torn frame, only an [`Awaiting] that resolves once the rest
    arrives. *)
module Reader : sig
  type t

  val create : ?max_frame:int -> unit -> t

  val feed : t -> string -> unit

  val next : t -> [ `Frame of string | `Awaiting | `Oversized of int ]
  (** [`Oversized n] reports a frame announcing [n] payload bytes beyond
      the cap; the stream cannot be resynchronised after it (callers
      should reply with an {!Oversized} error and drop the connection).
      Once reported, the reader keeps reporting it. *)

  val buffered : t -> int
  (** Bytes fed but not yet yielded. *)
end
