(** The `sv serve` daemon: a single-threaded [select] loop over a Unix
    domain socket.

    Concurrency model — chosen for byte-level determinism, not raw
    throughput:

    - One process, no threads. The loop multiplexes the listener and
      every client connection through [Unix.select]; request
      {e evaluation} still fans out over the {!Sv_sched} fork pool, so
      parallelism lives below the protocol, where byte-identity is
      already guaranteed.
    - Complete frames enter a FIFO request queue; one request is
      serviced per loop iteration. Admission control is at enqueue
      time: a frame arriving while the queue is at the engine's
      high-water mark is answered immediately with a typed
      [overloaded] reply (echoing the request id when parseable) and
      never queued — load sheds as fast typed replies, not as forks or
      hangs.
    - Replies are written whole by the one loop thread, so a client can
      never observe a torn frame.
    - An oversized frame poisons its connection (the stream cannot be
      resynchronised): the daemon replies with a typed [oversized]
      error and closes that connection; everyone else is unaffected.

    A [shutdown] request flags the engine; the loop then stops
    accepting, drains the already-admitted queue, replies to each,
    persists the resident caches and removes the socket. *)

val default_socket : unit -> string
(** [SV_SOCKET] if set, else a per-user path under the temp dir. *)

type t

val create : ?max_frame:int -> socket:string -> Engine.t -> t
(** Bind and listen. A stale socket file (no listener behind it) is
    replaced; a live one raises [Failure] — two daemons on one socket
    would split the resident state. *)

val socket : t -> string

val run : t -> unit
(** Serve until a [shutdown] request has been evaluated and the queue
    drained; then close every connection, remove the socket file and
    persist the caches. *)

val serve : ?max_frame:int -> socket:string -> Engine.t -> unit
(** [create] then [run]. *)
