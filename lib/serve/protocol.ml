module J = Sv_jsonx.Jsonx

let default_max_frame = 16 * 1024 * 1024

type request =
  | Index of { app : string; model : string }
  | Compare of { app : string; base : string; target : string }
  | Matrix of { app : string; metric : string }
  | Cluster of { app : string; metric : string }
  | Nearest of {
      app : string;
      model : string;
      metric : string;
      k : int;
      budget : int option;
      epsilon : float option;
    }
  | Status
  | Shutdown

let verb_of_request = function
  | Index _ -> "index"
  | Compare _ -> "compare"
  | Matrix _ -> "matrix"
  | Cluster _ -> "cluster"
  | Nearest _ -> "nearest"
  | Status -> "status"
  | Shutdown -> "shutdown"

type error_kind =
  | Oversized
  | Bad_json
  | Bad_request
  | Unknown_verb
  | Unknown_app
  | Unknown_model
  | Unknown_metric
  | Invalid_request
  | Failed

let kind_to_string = function
  | Oversized -> "oversized"
  | Bad_json -> "bad-json"
  | Bad_request -> "bad-request"
  | Unknown_verb -> "unknown-verb"
  | Unknown_app -> "unknown-app"
  | Unknown_model -> "unknown-model"
  | Unknown_metric -> "unknown-metric"
  | Invalid_request -> "invalid-request"
  | Failed -> "failed"

let kind_of_string = function
  | "oversized" -> Some Oversized
  | "bad-json" -> Some Bad_json
  | "bad-request" -> Some Bad_request
  | "unknown-verb" -> Some Unknown_verb
  | "unknown-app" -> Some Unknown_app
  | "unknown-model" -> Some Unknown_model
  | "unknown-metric" -> Some Unknown_metric
  | "invalid-request" -> Some Invalid_request
  | "failed" -> Some Failed
  | _ -> None

type response =
  | Output of { verb : string; warm : bool; output : string }
  | Status_of of (string * J.t) list
  | Shutdown_ack
  | Error of { kind : error_kind; message : string }
  | Overloaded of { queue : int; high_water : int }

(* --- requests --- *)

let id_field = function None -> [] | Some id -> [ ("id", J.Int id) ]

let encode_request ?id req =
  let fields =
    match req with
    | Index { app; model } -> [ ("app", J.String app); ("model", J.String model) ]
    | Compare { app; base; target } ->
        [ ("app", J.String app); ("base", J.String base); ("target", J.String target) ]
    | Matrix { app; metric } -> [ ("app", J.String app); ("metric", J.String metric) ]
    | Cluster { app; metric } -> [ ("app", J.String app); ("metric", J.String metric) ]
    | Nearest { app; model; metric; k; budget; epsilon } ->
        [
          ("app", J.String app);
          ("model", J.String model);
          ("metric", J.String metric);
          ("k", J.Int k);
        ]
        @ (match budget with Some b -> [ ("budget", J.Int b) ] | None -> [])
        @ (match epsilon with
          | Some e -> [ ("epsilon", J.Float e) ]
          | None -> [])
    | Status | Shutdown -> []
  in
  J.to_string
    (J.Obj (id_field id @ (("verb", J.String (verb_of_request req)) :: fields)))

let obj_id v = Option.bind (J.member "id" v) J.int_value

let request_id payload =
  match J.of_string payload with
  | exception J.Parse_error _ -> None
  | v -> obj_id v

let decode_request payload =
  match J.of_string payload with
  | exception J.Parse_error msg -> Stdlib.Error (Bad_json, msg)
  | J.Obj _ as v -> (
      let id = obj_id v in
      let str k = Option.bind (J.member k v) J.string_value in
      match str "verb" with
      | None -> Stdlib.Error (Bad_request, "missing string field \"verb\"")
      | Some verb -> (
          let need fields k =
            match List.map (fun f -> (f, str f)) fields with
            | pairs when List.for_all (fun (_, v) -> v <> None) pairs ->
                Stdlib.Ok (id, k (List.map (fun (_, v) -> Option.get v) pairs))
            | pairs ->
                let missing =
                  List.filter_map
                    (fun (f, v) -> if v = None then Some f else None)
                    pairs
                in
                Stdlib.Error
                  ( Bad_request,
                    Printf.sprintf "verb %S needs string fields: %s" verb
                      (String.concat ", " missing) )
          in
          match verb with
          | "index" ->
              need [ "app"; "model" ] (function
                | [ app; model ] -> Index { app; model }
                | _ -> assert false)
          | "compare" ->
              need [ "app"; "base"; "target" ] (function
                | [ app; base; target ] -> Compare { app; base; target }
                | _ -> assert false)
          | "matrix" ->
              need [ "app"; "metric" ] (function
                | [ app; metric ] -> Matrix { app; metric }
                | _ -> assert false)
          | "cluster" ->
              need [ "app"; "metric" ] (function
                | [ app; metric ] -> Cluster { app; metric }
                | _ -> assert false)
          | "nearest" ->
              (* optional fields: integer "k" (default 3), integer
                 "budget", number "epsilon" — the approximate-search
                 knobs travel as absent-or-present, never as sentinel
                 values *)
              let k =
                match Option.bind (J.member "k" v) J.int_value with
                | Some k -> k
                | None -> 3
              in
              let budget = Option.bind (J.member "budget" v) J.int_value in
              let epsilon = Option.bind (J.member "epsilon" v) J.float_value in
              need [ "app"; "model"; "metric" ] (function
                | [ app; model; metric ] ->
                    Nearest { app; model; metric; k; budget; epsilon }
                | _ -> assert false)
          | "status" -> Stdlib.Ok (id, Status)
          | "shutdown" -> Stdlib.Ok (id, Shutdown)
          | v -> Stdlib.Error (Unknown_verb, Printf.sprintf "unknown verb %S" v)))
  | _ -> Stdlib.Error (Bad_request, "request is not a JSON object")

(* --- responses --- *)

let encode_response ~id resp =
  let id_kv = ("id", match id with Some i -> J.Int i | None -> J.Null) in
  let fields =
    match resp with
    | Output { verb; warm; output } ->
        [
          ("status", J.String "ok");
          ("verb", J.String verb);
          ("warm", J.Bool warm);
          ("output", J.String output);
        ]
    | Status_of kvs ->
        [ ("status", J.String "ok"); ("verb", J.String "status") ] @ kvs
    | Shutdown_ack -> [ ("status", J.String "ok"); ("verb", J.String "shutdown") ]
    | Error { kind; message } ->
        [
          ("status", J.String "error");
          ("kind", J.String (kind_to_string kind));
          ("message", J.String message);
        ]
    | Overloaded { queue; high_water } ->
        [
          ("status", J.String "overloaded");
          ("queue", J.Int queue);
          ("high_water", J.Int high_water);
        ]
  in
  J.to_string (J.Obj (id_kv :: fields))

let decode_response payload =
  match J.of_string payload with
  | exception J.Parse_error msg -> Stdlib.Error ("response is not JSON: " ^ msg)
  | J.Obj kvs as v -> (
      let id = obj_id v in
      let str k = Option.bind (J.member k v) J.string_value in
      let int k = Option.bind (J.member k v) J.int_value in
      match str "status" with
      | Some "ok" -> (
          match str "verb" with
          | Some "status" ->
              let counters =
                List.filter
                  (fun (k, _) -> k <> "id" && k <> "status" && k <> "verb")
                  kvs
              in
              Stdlib.Ok (id, Status_of counters)
          | Some "shutdown" -> Stdlib.Ok (id, Shutdown_ack)
          | Some verb -> (
              match (str "output", Option.bind (J.member "warm" v) J.bool_value) with
              | Some output, Some warm -> Stdlib.Ok (id, Output { verb; warm; output })
              | _ -> Stdlib.Error "ok response lacks output/warm fields")
          | None -> Stdlib.Error "ok response lacks a verb")
      | Some "error" -> (
          match (Option.bind (str "kind") kind_of_string, str "message") with
          | Some kind, Some message -> Stdlib.Ok (id, Error { kind; message })
          | _ -> Stdlib.Error "error response lacks kind/message fields")
      | Some "overloaded" -> (
          match (int "queue", int "high_water") with
          | Some queue, Some high_water -> Stdlib.Ok (id, Overloaded { queue; high_water })
          | _ -> Stdlib.Error "overloaded response lacks queue/high_water fields")
      | Some s -> Stdlib.Error (Printf.sprintf "unknown status %S" s)
      | None -> Stdlib.Error "response lacks a status")
  | _ -> Stdlib.Error "response is not a JSON object"

(* --- framing --- *)

let frame payload =
  let n = String.length payload in
  let b = Bytes.create (4 + n) in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 b 4 n;
  Bytes.unsafe_to_string b

module Reader = struct
  type t = {
    max_frame : int;
    buf : Buffer.t;
    mutable pos : int;  (* consumed prefix of [buf] *)
    mutable poisoned : int option;  (* oversized announcement, sticky *)
  }

  let create ?(max_frame = default_max_frame) () =
    { max_frame; buf = Buffer.create 4096; pos = 0; poisoned = None }

  let feed t s = Buffer.add_string t.buf s

  (* Drop the consumed prefix once it dominates the buffer, so a
     long-lived connection cannot grow its buffer without bound. *)
  let compact t =
    if t.pos > 65536 && t.pos * 2 > Buffer.length t.buf then begin
      let rest = Buffer.sub t.buf t.pos (Buffer.length t.buf - t.pos) in
      Buffer.clear t.buf;
      Buffer.add_string t.buf rest;
      t.pos <- 0
    end

  let next t =
    match t.poisoned with
    | Some n -> `Oversized n
    | None ->
        let avail = Buffer.length t.buf - t.pos in
        if avail < 4 then `Awaiting
        else
          let b i = Char.code (Buffer.nth t.buf (t.pos + i)) in
          let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
          if n > t.max_frame then begin
            t.poisoned <- Some n;
            `Oversized n
          end
          else if avail < 4 + n then `Awaiting
          else begin
            let payload = Buffer.sub t.buf (t.pos + 4) n in
            t.pos <- t.pos + 4 + n;
            compact t;
            `Frame payload
          end

  let buffered t = Buffer.length t.buf - t.pos
end
