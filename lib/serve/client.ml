type conn = { fd : Unix.file_descr; reader : Protocol.Reader.t }

let connect ?socket ?timeout_s () =
  let path = match socket with Some s -> s | None -> Server.default_socket () in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (match timeout_s with
    | Some s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s
    | None -> ());
    Unix.connect fd (Unix.ADDR_UNIX path)
  with
  | () -> Ok { fd; reader = Protocol.Reader.create () }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let close c = try Unix.close c.fd with Unix.Unix_error (_, _, _) -> ()

let send c ?id req =
  let bytes = Protocol.frame (Protocol.encode_request ?id req) in
  let n = String.length bytes in
  let rec go off =
    if off < n then
      let w = Unix.write_substring c.fd bytes off (n - off) in
      go (off + w)
  in
  match go 0 with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "send: %s" (Unix.error_message e))

let recv c =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Protocol.Reader.next c.reader with
    | `Frame payload -> Protocol.decode_response payload
    | `Oversized n -> Error (Printf.sprintf "oversized reply frame (%d bytes)" n)
    | `Awaiting -> (
        match Unix.read c.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed by daemon"
        | n ->
            Protocol.Reader.feed c.reader (Bytes.sub_string buf 0 n);
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            Error "timed out waiting for a reply"
        | exception Unix.Unix_error (e, _, _) ->
            Error (Printf.sprintf "recv: %s" (Unix.error_message e)))
  in
  go ()

let call c ?id req =
  match send c ?id req with
  | Error m -> Error m
  | Ok () -> Result.map snd (recv c)

let call_or_fallback ?socket ~config req =
  match connect ?socket () with
  | Ok c ->
      let r = call c req in
      close c;
      Result.map (fun resp -> (resp, `Daemon)) r
  | Error _ ->
      let engine = Engine.create config in
      let resp = Engine.handle engine req in
      Engine.persist engine;
      Ok (resp, `Local)
