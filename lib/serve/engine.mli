(** Request evaluation against resident state — the daemon's core, and
    the thin client's in-process fallback.

    One {!t} owns everything `sv serve` keeps warm between requests:

    - a size-bounded {!Sv_db.Lru} of decoded {!Sv_core.Pipeline.indexed}
      codebases, keyed by {!Sv_core.Index_engine.codebase_key} (so a
      corpus edit is a structural miss, never a stale hit), spilling
      evicted entries into the index cache;
    - a resident {!Sv_db.Index_cache}, {!Sv_db.Codebase_db.Ted_cache}
      and {!Sv_db.Metric_cache}, loaded from disk at creation and
      persisted back periodically and at shutdown;
    - a second {!Sv_db.Lru} of built VP-tree metric indexes keyed by
      {!Sv_core.Tbmd.vp_key}, so repeated `nearest` requests reuse the
      resident tree instead of rebuilding it per call;
    - the engine configuration (worker count for the {!Sv_sched} pool).

    Every evaluation installs this state into the process-wide engine
    hooks ({!Sv_core.Tbmd}, {!Sv_core.Index_engine}) and restores the
    previous hooks after — so an in-process fallback evaluation inside
    the CLI cannot leak state into later library use.

    The render functions are the {e single} source of the textual output
    for both the daemon and the one-shot CLI — which is what makes the
    byte-identity guarantee structural rather than aspirational. *)

module Pipeline = Sv_core.Pipeline

type config = {
  jobs : int;  (** worker processes for indexing fan-out and TED matrices *)
  lru_budget : int;  (** resident-codebase budget, bytes of encoded payload *)
  high_water : int;  (** request-queue admission mark (enforced by {!Server}) *)
  ted_cache_path : string option;
  index_cache_path : string option;
  metric_cache_path : string option;
      (** persistent VP-tree metric-index cache ({!Sv_db.Metric_cache}):
          a warm `nearest` pays zero index-build evaluations *)
  persist_every : int;  (** persist caches every N served requests; 0 = only at shutdown *)
}

val default_config : unit -> config
(** Defaults: [jobs = 1], [lru_budget] from [SV_LRU_MB] (default 64 MiB),
    [high_water = 8], no cache paths, [persist_every = 32]. *)

type t

val create : config -> t
(** Load the configured caches (missing files are cold starts) and start
    with an empty LRU. *)

val config : t -> config

val set_queue_depth : t -> int -> unit
(** The server's live queue depth, reported by the [status] verb. *)

val shutting_down : t -> bool
(** True once a [shutdown] request has been acknowledged. *)

val handle : t -> Protocol.request -> Protocol.response
(** Evaluate one decoded request. Never raises: evaluation failures
    become [Error {kind = Failed; _}] replies. *)

val handle_payload : t -> string -> string
(** [handle_payload t payload] is the full payload-in/payload-out step
    the server runs per frame: decode (classifying malformed payloads),
    evaluate, encode, and account telemetry ({!Sv_perf.Telemetry.serve})
    including request latency. The pure-codec conformance suite drives
    this directly — no socket required. *)

val shed : t -> queue:int -> string -> string
(** [shed t ~queue payload] is the encoded [overloaded] reply for a
    frame refused by admission control (echoing the request id when the
    payload parses), with the refusal accounted in the serve counters. *)

val oversized : t -> announced:int -> cap:int -> string
(** The encoded typed error for a frame announcing more payload bytes
    than the cap allows, accounted as an error reply. *)

val persist : t -> unit
(** Save the resident TED and index caches to their configured paths
    (no-op for unconfigured paths; save failures are reported on stderr,
    never raised — a daemon must not die because a disk filled). *)

val status_fields : t -> (string * Sv_jsonx.Jsonx.t) list
(** The [status] verb's payload: serve counters, queue depth and
    high-water mark, LRU occupancy, cache hit rates, worker count. *)

(** {2 Shared renderers}

    Exactly what the one-shot CLI prints for the corresponding
    subcommand (modulo cache-save banners, which belong to the CLI). *)

val render_compare :
  app:string -> base:string -> target:string ->
  Pipeline.indexed -> Pipeline.indexed -> string

val render_matrix : Sv_core.Tbmd.metric -> Pipeline.indexed list -> string
(** The divergence heatmap alone. *)

val render_cluster : Sv_core.Tbmd.metric -> Pipeline.indexed list -> string
(** Heatmap followed by the dendrogram — `sv cluster`'s output. *)

val render_index : Pipeline.indexed -> string
(** Codebase DB stats line plus the built-in verification verdict —
    `sv index`'s output up to the artifact-save banner. *)

val render_nearest :
  app:string ->
  model:string ->
  k:int ->
  ?budget:int ->
  ?epsilon:float ->
  ?index:Sv_core.Tbmd.vp ->
  Sv_core.Tbmd.metric ->
  Pipeline.indexed ->
  Pipeline.indexed list ->
  string
(** `sv nearest`'s output: the query's k nearest ports (other models
    only) by raw and normalised divergence, through the VP-tree index
    ({!Sv_core.Navigation.nearest_ports}), plus the bounded-evaluation
    count the index spent against the candidate total. [index] is an
    already-built tree over {e exactly} the filtered candidate list
    (the daemon's resident memo); construction is deterministic, so
    passing it cannot change a byte of the output. With [budget] or
    [epsilon] the search is the budgeted best-first mode and a final
    line reports the knobs plus the honest [guaranteed_exact] claim. *)
