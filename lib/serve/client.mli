(** Thin client for the `sv serve` daemon.

    [send]/[recv] are split so tests can pipeline bursts (the soak
    harness drives admission control by writing faster than the daemon
    services); [call] is the one-request convenience. [call_or_fallback]
    is what `sv client` uses: talk to a running daemon if there is one,
    else evaluate in-process through the very same {!Engine} — so the
    caller gets byte-identical output either way. *)

type conn

val connect :
  ?socket:string -> ?timeout_s:float -> unit -> (conn, string) result
(** Connect to the daemon ([socket] defaults to
    {!Server.default_socket}). [timeout_s] arms a receive timeout on the
    connection, so a wedged daemon surfaces as an error instead of a
    hang (the soak test's guard). *)

val close : conn -> unit

val send : conn -> ?id:int -> Protocol.request -> (unit, string) result
(** Write one framed request (does not wait for the reply). *)

val recv : conn -> (int option * Protocol.response, string) result
(** Read the next complete reply frame. *)

val call :
  conn -> ?id:int -> Protocol.request -> (Protocol.response, string) result
(** [send] then [recv]. *)

val call_or_fallback :
  ?socket:string ->
  config:Engine.config ->
  Protocol.request ->
  (Protocol.response * [ `Daemon | `Local ], string) result
(** Try the daemon first; when no daemon is listening, evaluate the
    request in-process against a fresh {!Engine.t} built from [config]
    (persisting its caches afterwards) and report which path answered. *)
