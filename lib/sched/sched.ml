module M = Sv_msgpack.Msgpack

let default_jobs () =
  match Sys.getenv_opt "SV_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* --- deterministic fault injection ---------------------------------- *)

module Fault = struct
  type spec = {
    crash : float;
    hang : float;
    garbage : float;
    trunc : float;
    seed : int;
  }

  let none = { crash = 0.0; hang = 0.0; garbage = 0.0; trunc = 0.0; seed = 0 }

  let is_none s =
    s.crash = 0.0 && s.hang = 0.0 && s.garbage = 0.0 && s.trunc = 0.0

  let to_string s =
    if is_none s then "none"
    else
      let rate k v = if v > 0.0 then Some (Printf.sprintf "%s:%g" k v) else None in
      String.concat ","
        (List.filter_map Fun.id
           [
             rate "crash" s.crash;
             rate "hang" s.hang;
             rate "garbage" s.garbage;
             rate "trunc" s.trunc;
             Some (Printf.sprintf "seed:%d" s.seed);
           ])

  let parse s =
    let fields =
      String.split_on_char ',' s
      |> List.map String.trim
      |> List.filter (fun f -> f <> "")
    in
    let rec go spec = function
      | [] ->
          if spec.crash +. spec.hang +. spec.garbage +. spec.trunc > 1.0 then
            Error "fault rates sum to more than 1"
          else Ok spec
      | field :: rest -> (
          match String.index_opt field ':' with
          | None ->
              Error
                (Printf.sprintf "bad fault field %S (expected key:value)" field)
          | Some i ->
              let k = String.trim (String.sub field 0 i) in
              let v =
                String.trim
                  (String.sub field (i + 1) (String.length field - i - 1))
              in
              let rate set =
                match float_of_string_opt v with
                | Some r when r >= 0.0 && r <= 1.0 -> go (set r) rest
                | _ ->
                    Error
                      (Printf.sprintf "bad rate %S for %s (expected 0..1)" v k)
              in
              (match k with
              | "crash" -> rate (fun r -> { spec with crash = r })
              | "hang" -> rate (fun r -> { spec with hang = r })
              | "garbage" -> rate (fun r -> { spec with garbage = r })
              | "trunc" -> rate (fun r -> { spec with trunc = r })
              | "seed" -> (
                  match int_of_string_opt v with
                  | Some seed -> go { spec with seed } rest
                  | None -> Error (Printf.sprintf "bad seed %S" v))
              | _ ->
                  Error
                    (Printf.sprintf
                       "unknown fault key %S (crash|hang|garbage|trunc|seed)" k)))
    in
    go none fields

  let of_env_exn () =
    match Sys.getenv_opt "SV_FAULT" with
    | None -> none
    | Some s -> (
        match parse s with
        | Ok spec -> spec
        | Error e -> failwith ("SV_FAULT: " ^ e))

  let override = ref None
  let env_spec = lazy (of_env_exn ())
  let set s = override := Some s
  let clear () = override := None

  let active () =
    match !override with Some s -> s | None -> Lazy.force env_spec

  type action = Pass | Crash | Hang | Garbage | Trunc

  (* splitmix64-style avalanche; the draw is a pure function of
     (seed, task, attempt), so which worker happens to run a task — or
     how often the batch is re-run — never changes the injected faults. *)
  let mix64 z =
    let open Int64 in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let uniform spec ~task ~attempt =
    let open Int64 in
    let h = mix64 (add (of_int spec.seed) 0x9E3779B97F4A7C15L) in
    let h = mix64 (logxor h (mul (of_int (task + 1)) 0xD1B54A32D192ED03L)) in
    let h = mix64 (logxor h (mul (of_int (attempt + 1)) 0x8CB92BA72F3D8DD7L)) in
    Int64.to_float (shift_right_logical h 11) /. 9007199254740992.0

  let draw spec ~task ~attempt =
    if is_none spec then Pass
    else
      let u = uniform spec ~task ~attempt in
      let c1 = spec.crash in
      let c2 = c1 +. spec.hang in
      let c3 = c2 +. spec.garbage in
      let c4 = c3 +. spec.trunc in
      if u < c1 then Crash
      else if u < c2 then Hang
      else if u < c3 then Garbage
      else if u < c4 then Trunc
      else Pass
end

(* --- recovery policy and accounting ---------------------------------- *)

type policy = {
  task_timeout : float;
  max_retries : int;
  backoff : float;
  degrade : bool;
}

let default_policy () =
  let task_timeout =
    match Sys.getenv_opt "SV_TASK_TIMEOUT" with
    | Some s -> (
        match float_of_string_opt (String.trim s) with
        | Some t -> t
        | None -> 20.0)
    | None -> 20.0
  in
  { task_timeout; max_retries = 2; backoff = 0.05; degrade = true }

type stats = {
  mutable crashes : int;
  mutable timeouts : int;
  mutable corrupt : int;
  mutable retries : int;
  mutable respawns : int;
  mutable degraded : int;
}

let fresh_stats () =
  { crashes = 0; timeouts = 0; corrupt = 0; retries = 0; respawns = 0; degraded = 0 }

let last = ref (fresh_stats ())
let last_stats () = !last

let stats_to_string s =
  Printf.sprintf
    "crashes:%d timeouts:%d corrupt:%d retries:%d respawns:%d degraded:%d"
    s.crashes s.timeouts s.corrupt s.retries s.respawns s.degraded

type failure =
  | Crashed of string
  | Timed_out of float
  | Corrupt_frame of string
  | Task_raised of string

let failure_to_string = function
  | Crashed detail -> Printf.sprintf "worker crashed (%s)" detail
  | Timed_out t -> Printf.sprintf "task exceeded its %gs timeout" t
  | Corrupt_frame msg -> Printf.sprintf "corrupt result frame: %s" msg
  | Task_raised msg -> Printf.sprintf "task raised: %s" msg

exception Worker_failed of { task : int; attempts : int; failure : failure }

let () =
  Printexc.register_printer (function
    | Worker_failed { task; attempts; failure } ->
        Some
          (Printf.sprintf "Sv_sched.Sched.Worker_failed(task %d, %d attempt%s: %s)"
             task attempts
             (if attempts = 1 then "" else "s")
             (failure_to_string failure))
    | _ -> None)

let status_string = function
  | Unix.WEXITED c -> Printf.sprintf "exit %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s

(* --- pipe framing ---------------------------------------------------- *)

(* Each frame is a 4-byte big-endian length followed by one msgpack
   value. Writes under PIPE_BUF would be atomic anyway, but both ends
   loop regardless so oversized results (a full divergence row) are
   carried correctly. The parent never trusts a frame: lengths are
   bounded, payloads are decoded with {!M.decode_result}, and anything
   malformed is a strike against the worker, not an exception or a hang. *)

let max_frame_len = 1 lsl 28

let rec write_all fd b off len =
  if len > 0 then
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)

let write_frame fd payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b 0 (4 + len)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k = Unix.read fd b off (n - off) in
      if k = 0 then raise End_of_file;
      go (off + k)
    end
  in
  go 0;
  b

(* Blocking read, child side only: the parent reads through per-worker
   buffers so a truncated or slow frame can never block it. *)
let read_frame fd =
  let hdr = read_exact fd 4 in
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  Bytes.unsafe_to_string (read_exact fd len)

(* --- workers ---------------------------------------------------------- *)

type worker = {
  mutable pid : int;
  mutable job_w : Unix.file_descr;
  mutable res_r : Unix.file_descr;
  mutable task : int;  (** task index being computed, or -1 when idle *)
  mutable deadline : float;  (** absolute wall-clock timeout for [task] *)
  rbuf : Buffer.t;  (** bytes received but not yet framing a whole result *)
}

(* Child side: pull (index, attempt) jobs until the job pipe closes, push
   framed results — consulting the fault-injection spec at each task
   boundary so chaos tests and `--fault` runs exercise every failure
   class reproducibly. Exits with [Unix._exit] so the parent's buffered
   channels and at_exit hooks (alcotest's reporter, bench writers) never
   run twice. *)
let worker_loop ~encode ~f (tasks : _ array) job_r res_w =
  let spec = Fault.active () in
  (try
     let rec loop () =
       match read_frame job_r with
       | exception End_of_file -> ()
       | frame ->
           let idx, attempt =
             match M.decode frame with
             | M.Arr [ M.Int i; M.Int a ] -> (i, a)
             | _ -> raise Exit
           in
           (match Fault.draw spec ~task:idx ~attempt with
           | Fault.Crash ->
               (* die by signal, exercising the parent's signal-death path *)
               Unix.kill (Unix.getpid ()) Sys.sigkill
           | Fault.Hang ->
               while true do
                 Unix.sleepf 3600.0
               done
           | Fault.Garbage ->
               (* a well-framed but undecodable payload: 0xC1 is the one
                  tag MessagePack reserves as never-used *)
               write_frame res_w "\xc1chaos"
           | Fault.Trunc ->
               (* claim 64 payload bytes, deliver 5, die: a torn frame *)
               let b = Bytes.make 9 '\000' in
               Bytes.set b 3 '\064';
               Bytes.blit_string "torn!" 0 b 4 5;
               write_all res_w b 0 9;
               Unix._exit 1
           | Fault.Pass ->
               let reply =
                 match encode (f tasks.(idx)) with
                 | payload -> M.Arr [ M.Int idx; M.Bool true; payload ]
                 | exception e ->
                     M.Arr [ M.Int idx; M.Bool false; M.Str (Printexc.to_string e) ]
               in
               write_frame res_w (M.encode reply));
           loop ()
     in
     loop ()
   with _ -> ());
  Unix._exit 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Fork one worker. [others] is the parent-side descriptor pairs of every
   other live worker: the child closes them first, because a stray
   inherited [job_w] would keep a sibling's job pipe from ever signalling
   EOF (and a stray [res_r] is a leak). Workers are always spawned one at
   a time — initial pool and respawns alike — so a child can only ever
   inherit parent-side ends of workers that already exist. *)
let spawn_worker ~encode ~f tasks others =
  let job_r, job_w = Unix.pipe () in
  let res_r, res_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      List.iter
        (fun (jw, rr) ->
          close_quiet jw;
          close_quiet rr)
        others;
      close_quiet job_w;
      close_quiet res_r;
      worker_loop ~encode ~f tasks job_r res_w
  | pid ->
      Unix.close job_r;
      Unix.close res_w;
      (pid, job_w, res_r)

(* --- parent scheduler ------------------------------------------------- *)

let map ?jobs ?policy ?stats ~encode ~decode ~f tasks =
  let n = Array.length tasks in
  let pol = match policy with Some p -> p | None -> default_policy () in
  let st = match stats with Some s -> s | None -> fresh_stats () in
  last := st;
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let jobs = min jobs n in
  if jobs <= 1 || n < 2 then Array.map f tasks
  else begin
    (* a malformed SV_FAULT spec must fail loudly here, in the parent,
       not crash-loop every forked child *)
    ignore (Fault.active ());
    let previous_sigpipe =
      (* a worker that died mid-batch must surface as a strike, not kill
         the parent on the next dispatch write *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let restore_sigpipe () =
      match previous_sigpipe with
      | Some h -> Sys.set_signal Sys.sigpipe h
      | None -> ()
    in
    let now () = Unix.gettimeofday () in
    let results = Array.make n None in
    let attempts = Array.make n 0 in
    let ready_at = Array.make n 0.0 in
    let retryq = ref [] in
    let cursor = ref 0 in
    let completed = ref 0 in
    let workers =
      let others = ref [] in
      Array.init jobs (fun _ ->
          let pid, job_w, res_r = spawn_worker ~encode ~f tasks !others in
          others := (job_w, res_r) :: !others;
          { pid; job_w; res_r; task = -1; deadline = infinity; rbuf = Buffer.create 256 })
    in
    let live_others w =
      Array.fold_left
        (fun acc w' -> if w' == w then acc else (w'.job_w, w'.res_r) :: acc)
        [] workers
    in
    (* Close the parent ends, make sure the child is dead, and reap it,
       returning its exit status (the child's own death, not our SIGKILL,
       when it was already a zombie). *)
    let reclaim w =
      close_quiet w.job_w;
      close_quiet w.res_r;
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      try snd (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> Unix.WEXITED 0
    in
    let respawn w =
      let pid, job_w, res_r = spawn_worker ~encode ~f tasks (live_others w) in
      w.pid <- pid;
      w.job_w <- job_w;
      w.res_r <- res_r;
      w.task <- -1;
      w.deadline <- infinity;
      Buffer.clear w.rbuf;
      st.respawns <- st.respawns + 1
    in
    let shutdown ~kill =
      Array.iter
        (fun w ->
          close_quiet w.job_w;
          close_quiet w.res_r;
          if kill then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
        workers;
      restore_sigpipe ()
    in
    (* One failed attempt of the task on worker [w]: reclaim and replace
       the worker, then either re-dispatch the task after an exponential
       backoff, degrade it to an in-process run (so the batch still
       completes, byte-identical to serial), or — when degradation is
       disabled — surface a typed error naming the task. *)
    let strike w failure =
      let t = w.task in
      let status = reclaim w in
      let failure =
        match failure with
        | Crashed _ -> Crashed (status_string status)
        | f -> f
      in
      (match failure with
      | Crashed _ -> st.crashes <- st.crashes + 1
      | Timed_out _ -> st.timeouts <- st.timeouts + 1
      | Corrupt_frame _ -> st.corrupt <- st.corrupt + 1
      | Task_raised _ -> ());
      attempts.(t) <- attempts.(t) + 1;
      if attempts.(t) > pol.max_retries && not pol.degrade then begin
        w.task <- -1;
        shutdown ~kill:true;
        raise (Worker_failed { task = t; attempts = attempts.(t); failure })
      end;
      respawn w;
      if attempts.(t) > pol.max_retries then begin
        (* out of strikes: the parent computes the task itself — [f] is
           pure CPU, so this is exactly the serial path for this task *)
        results.(t) <- Some (f tasks.(t));
        st.degraded <- st.degraded + 1;
        incr completed
      end
      else begin
        st.retries <- st.retries + 1;
        ready_at.(t) <-
          now () +. (pol.backoff *. (2.0 ** float_of_int (attempts.(t) - 1)));
        retryq := !retryq @ [ t ]
      end
    in
    let pick_ready t_now =
      let rec scan acc = function
        | [] -> None
        | t :: rest when ready_at.(t) <= t_now ->
            retryq := List.rev_append acc rest;
            Some t
        | t :: rest -> scan (t :: acc) rest
      in
      match scan [] !retryq with
      | Some t -> Some t
      | None ->
          if !cursor < n then begin
            let t = !cursor in
            incr cursor;
            Some t
          end
          else None
    in
    let dispatch w =
      match pick_ready (now ()) with
      | None -> ()
      | Some t -> (
          match write_frame w.job_w (M.encode (M.Arr [ M.Int t; M.Int attempts.(t) ])) with
          | () ->
              w.task <- t;
              w.deadline <-
                (if pol.task_timeout > 0.0 then now () +. pol.task_timeout
                 else infinity)
          | exception Unix.Unix_error _ ->
              (* the worker died while idle (never received the task):
                 replace it and put the task back, unpenalised *)
              ignore (reclaim w);
              respawn w;
              retryq := t :: !retryq)
    in
    let complete w idx v =
      results.(idx) <- Some v;
      incr completed;
      w.task <- -1;
      w.deadline <- infinity
    in
    let handle_frame w payload =
      match M.decode_result payload with
      | Error msg -> strike w (Corrupt_frame ("undecodable: " ^ msg))
      | Ok (M.Arr [ M.Int idx; M.Bool true; res ]) when idx = w.task -> (
          match decode res with
          | v -> complete w idx v
          | exception e ->
              strike w
                (Corrupt_frame ("payload rejected by decode: " ^ Printexc.to_string e)))
      | Ok (M.Arr [ M.Int idx; M.Bool false; M.Str msg ]) when idx = w.task ->
          (* the task itself raised: deterministic, so retrying or running
             it in-process would fail the same way — surface it typed *)
          let att = attempts.(idx) + 1 in
          w.task <- -1;
          shutdown ~kill:true;
          raise (Worker_failed { task = idx; attempts = att; failure = Task_raised msg })
      | Ok _ -> strike w (Corrupt_frame "malformed result frame")
    in
    let rec drain_frames w =
      if w.task >= 0 then begin
        let s = Buffer.contents w.rbuf in
        let len_s = String.length s in
        if len_s >= 4 then begin
          let flen =
            (Char.code s.[0] lsl 24)
            lor (Char.code s.[1] lsl 16)
            lor (Char.code s.[2] lsl 8)
            lor Char.code s.[3]
          in
          if flen < 0 || flen > max_frame_len then
            strike w (Corrupt_frame (Printf.sprintf "implausible frame length %d" flen))
          else if len_s >= 4 + flen then begin
            let payload = String.sub s 4 flen in
            Buffer.clear w.rbuf;
            Buffer.add_substring w.rbuf s (4 + flen) (len_s - 4 - flen);
            handle_frame w payload;
            drain_frames w
          end
        end
      end
    in
    let chunk = Bytes.create 65536 in
    let handle_readable w =
      match Unix.read w.res_r chunk 0 (Bytes.length chunk) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | 0 ->
          (* EOF: death between frames is a crash; death mid-frame left a
             torn result behind *)
          if Buffer.length w.rbuf = 0 then strike w (Crashed "eof")
          else strike w (Corrupt_frame "truncated result frame (worker died mid-frame)")
      | k ->
          Buffer.add_subbytes w.rbuf chunk 0 k;
          drain_frames w
    in
    (try
       while !completed < n do
         Array.iter (fun w -> if w.task < 0 then dispatch w) workers;
         if !completed < n then begin
           let t_now = now () in
           let busy =
             Array.fold_left
               (fun acc w -> if w.task >= 0 then w :: acc else acc)
               [] workers
           in
           let wake =
             let acc =
               List.fold_left (fun acc w -> min acc w.deadline) infinity busy
             in
             if Array.exists (fun w -> w.task < 0) workers then
               List.fold_left (fun acc t -> min acc ready_at.(t)) acc !retryq
             else acc
           in
           let timeout = if wake = infinity then -1.0 else max 0.0 (wake -. t_now) in
           let ready, _, _ =
             try Unix.select (List.map (fun w -> w.res_r) busy) [] [] timeout
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
           in
           (* snapshot (worker, pid): a worker respawned while handling an
              earlier fd may reuse a descriptor number, and must not be
              confused with the one select reported on *)
           let hits =
             List.filter_map
               (fun fd ->
                 List.find_opt (fun w -> w.res_r = fd) busy
                 |> Option.map (fun w -> (w, w.pid)))
               ready
           in
           List.iter
             (fun (w, pid) -> if w.pid = pid && w.task >= 0 then handle_readable w)
             hits;
           let t_now = now () in
           Array.iter
             (fun w ->
               if w.task >= 0 && w.deadline <= t_now then begin
                 (* a result that arrived at the deadline still wins: only
                    strike when the pipe really has nothing for us *)
                 match Unix.select [ w.res_r ] [] [] 0.0 with
                 | [], _, _ -> strike w (Timed_out pol.task_timeout)
                 | _ -> handle_readable w
                 | exception Unix.Unix_error _ -> strike w (Timed_out pol.task_timeout)
               end)
             workers
         end
       done
     with e ->
       shutdown ~kill:true;
       raise e);
    shutdown ~kill:false;
    Array.map
      (function
        | Some r -> r
        | None -> failwith "sched: missing result (worker lost a task)")
      results
  end

let map_list ?jobs ?policy ?stats ~encode ~decode ~f xs =
  Array.to_list (map ?jobs ?policy ?stats ~encode ~decode ~f (Array.of_list xs))
