(** Fault-tolerant multi-process work pool for CPU-bound batch jobs.

    The TED engine's unit of work — one pairwise tree comparison — is
    pure CPU with a small result, which makes a classic fork/pipe pool
    the right shape under OCaml's runtime: workers are forked {e after}
    the task array is built, so every child sees the inputs via
    copy-on-write memory and only the (tiny) results travel back over a
    pipe, framed as length-prefixed msgpack values.

    Scheduling is dynamic self-balancing in the work-stealing spirit:
    the parent hands each worker one task index at a time and refills
    whichever worker finishes first, so a few expensive pairs cannot
    stall the batch the way a static block split would. Results are
    reassembled by task index, so the output order is deterministic and
    byte-identical to a serial run regardless of worker timing.

    Worker failure is treated as routine, not fatal. The parent detects
    four failure classes — a worker that crashes between frames (exit or
    signal death, e.g. OOM-kill), one that hangs past the per-task
    wall-clock timeout, one that ships a corrupt or truncated result
    frame, and a task that raises — and recovers per {!policy}: the
    worker is killed, reaped and respawned, and the task is re-dispatched
    after an exponential backoff, up to [max_retries] extra attempts.
    A task that exhausts its strikes is (by default) {e degraded}: the
    parent computes it in-process, exactly as the serial path would, so a
    batch always completes with results byte-identical to serial. With
    [degrade = false] the pool instead raises {!Worker_failed}, a typed
    error naming the task index and failure class. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [SV_JOBS] environment
    variable if set to a positive integer, otherwise the number of cores
    the runtime recommends ([Domain.recommended_domain_count]). *)

(** Deterministic fault injection, consulted by forked workers at task
    boundaries. A spec gives independent probabilities for each failure
    class plus a seed; the draw for a given (task, attempt) is a pure
    function of the spec, so a chaos run is exactly reproducible no
    matter which worker picks a task up or how the pool is timed.
    Injection only ever happens inside forked children — serial
    ([jobs <= 1]) runs and in-process degraded retries are never
    faulted — so the recovery machinery, not the results, is what a
    chaos run stresses. *)
module Fault : sig
  type spec = {
    crash : float;  (** P(worker kills itself with SIGKILL) *)
    hang : float;  (** P(worker sleeps forever; reclaimed by timeout) *)
    garbage : float;  (** P(worker ships an undecodable result frame) *)
    trunc : float;  (** P(worker ships a torn frame, then exits) *)
    seed : int;
  }

  val none : spec
  (** All rates zero: no injection. *)

  val is_none : spec -> bool

  val parse : string -> (spec, string) result
  (** [parse "crash:0.05,hang:0.02,garbage:0.03,trunc:0.01,seed:42"].
      Unknown keys, rates outside [0..1] and rate sums above 1 are
      errors. Missing keys default to 0 (and seed 0). *)

  val to_string : spec -> string
  (** Inverse of {!parse} for non-zero fields; ["none"] for {!none}. *)

  val set : spec -> unit
  (** Install a process-wide spec (the CLI's [--fault]). Overrides the
      [SV_FAULT] environment variable until {!clear}. *)

  val clear : unit -> unit
  (** Drop the {!set} override, falling back to [SV_FAULT] (parsed once,
      lazily; a malformed value raises [Failure] from the first parallel
      {!val:map}) or {!none}. *)

  val active : unit -> spec
  (** The spec workers will consult: the {!set} override, else
      [SV_FAULT], else {!none}. *)

  type action = Pass | Crash | Hang | Garbage | Trunc

  val draw : spec -> task:int -> attempt:int -> action
  (** The deterministic verdict for one attempt of one task — exposed so
      chaos tests can replay the exact fault sequence a pool run saw and
      assert its retry counters against it. *)
end

type policy = {
  task_timeout : float;
      (** wall-clock seconds one attempt may take before the worker is
          killed and the task struck; [<= 0.] disables the timeout *)
  max_retries : int;
      (** extra worker attempts after the first before a task is
          degraded (or {!Worker_failed} is raised) *)
  backoff : float;
      (** base re-dispatch delay; attempt [k] waits [backoff * 2^(k-1)] *)
  degrade : bool;
      (** after the strikes are exhausted, compute the task in-process
          (guaranteeing completion) instead of raising *)
}

val default_policy : unit -> policy
(** Timeout from [SV_TASK_TIMEOUT] (default 20s), [max_retries = 2],
    [backoff = 50ms], [degrade = true]. *)

type stats = {
  mutable crashes : int;  (** workers that died between result frames *)
  mutable timeouts : int;  (** tasks reclaimed by the per-task timeout *)
  mutable corrupt : int;  (** garbage or truncated result frames *)
  mutable retries : int;  (** re-dispatches of a struck task to a worker *)
  mutable respawns : int;  (** replacement workers forked (one per strike) *)
  mutable degraded : int;  (** tasks completed in-process after max strikes *)
}

val fresh_stats : unit -> stats

val last_stats : unit -> stats
(** The counters of the most recent {!val:map} call (all zero for a
    serial run) — how `bench ted-engine` reports recovery activity
    without threading a record through [Tbmd]. *)

val stats_to_string : stats -> string

type failure =
  | Crashed of string  (** exit status, e.g. ["killed by signal -7"] *)
  | Timed_out of float
  | Corrupt_frame of string
  | Task_raised of string  (** [f] raised inside the worker *)

val failure_to_string : failure -> string

exception Worker_failed of { task : int; attempts : int; failure : failure }
(** Raised (after the pool is shut down and every child reaped) when a
    task raised in a worker, or when its strikes are exhausted under
    [degrade = false] — always naming the task index, never hanging on a
    closed pipe. A printer is registered, so the message is readable in
    uncaught-exception reports. *)

val map :
  ?jobs:int ->
  ?policy:policy ->
  ?stats:stats ->
  encode:('b -> Sv_msgpack.Msgpack.t) ->
  decode:(Sv_msgpack.Msgpack.t -> 'b) ->
  f:('a -> 'b) ->
  'a array ->
  'b array
(** [map ~encode ~decode ~f tasks] is [Array.map f tasks] computed by a
    pool of forked workers. [encode]/[decode] carry each result across
    the worker→parent pipe; they must round-trip ([decode (encode b)]
    observationally equal to [b]) for the parallel result to match the
    serial one.

    [jobs] (default {!default_jobs}) caps the pool; it is further capped
    by the task count, and [jobs <= 1] (or fewer than two tasks) runs
    serially in-process — no fork, identical semantics. [policy]
    (default {!default_policy}) governs timeouts, retry budget, backoff
    and degradation; [stats] (mutated in place when provided) exposes
    the recovery counters.

    If [f] raises in a worker, the exception's description is shipped
    back and [map] raises {!Worker_failed} with [Task_raised] in the
    parent after shutting the pool down — a failing task is
    deterministic, so it is never retried. Transport-level failures
    (crash, hang, corrupt frame) are retried per [policy] and can only
    surface as {!Worker_failed} when [policy.degrade] is [false].

    [f] runs in forked children: mutations it makes to shared state are
    invisible to the parent (ship state back through the result value),
    and it must not rely on threads or open channels of the parent.
    Under degradation [f] also runs in the parent for struck tasks, so
    it must not deliberately kill its own process. *)

val map_list :
  ?jobs:int ->
  ?policy:policy ->
  ?stats:stats ->
  encode:('b -> Sv_msgpack.Msgpack.t) ->
  decode:(Sv_msgpack.Msgpack.t -> 'b) ->
  f:('a -> 'b) ->
  'a list ->
  'b list
(** List interface over {!map}, same ordering guarantee. *)
