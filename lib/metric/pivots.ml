module T = Sv_perf.Telemetry

type oracle = {
  n : int;
  size : int -> int;
  lower : int -> int -> int;
  dist : int -> int -> int;
  dist_bounded : int -> int -> cutoff:int -> int option;
}

type stats = {
  n : int;
  pairs : int;
  pivots : int array;
  pivot_pairs : int;
  resolved_interval : int;
  resolved_clamp : int;
  bounded_pairs : int;
}

let auto_pivots n = if n <= 1 then 0 else int_of_float (ceil (sqrt (float n)))

let schedule ?(pivots = 0) ?clamp (o : oracle) =
  let n = o.n in
  let k = min n (if pivots > 0 then pivots else auto_pivots n) in
  let d = Array.make_matrix n n (-1) in
  for i = 0 to n - 1 do
    d.(i).(i) <- 0
  done;
  let pivot = Array.make k 0 in
  let is_pivot = Array.make n false in
  let mind = Array.make n max_int in
  let pivot_pairs = ref 0 in
  (* Farthest-first pivot selection: start at index 0, then repeatedly
     take the point maximising the distance to its nearest pivot (ties to
     the lowest index) — deterministic, and it spreads pivots so the
     derived intervals are as tight as a k-subset of rows can make them.
     Pivot rows are computed exactly (the only unbounded DP the schedule
     ever requests). *)
  let cur = ref 0 in
  for pi = 0 to k - 1 do
    let p = !cur in
    pivot.(pi) <- p;
    is_pivot.(p) <- true;
    mind.(p) <- 0;
    for x = 0 to n - 1 do
      if x <> p then begin
        if d.(p).(x) < 0 then begin
          let v = o.dist p x in
          d.(p).(x) <- v;
          d.(x).(p) <- v;
          incr pivot_pairs
        end;
        if d.(p).(x) < mind.(x) then mind.(x) <- d.(p).(x)
      end
    done;
    if pi + 1 < k then begin
      let best = ref p and bestv = ref (-1) in
      for x = 0 to n - 1 do
        if (not is_pivot.(x)) && mind.(x) > !bestv then begin
          bestv := mind.(x);
          best := x
        end
      done;
      cur := !best
    end
  done;
  (* Every remaining pair: triangle interval from the pivot rows,
     |d(i,p) − d(j,p)| ≤ d(i,j) ≤ d(i,p) + d(j,p), intersected over all
     pivots and with the oracle's own cheap lower bound and the
     size-sum upper bound. A collapsed interval is the distance; a clamp
     hit stores the lower bound (callers opt in only when downstream
     consumers cannot distinguish, e.g. normalisation saturates); the
     rest run the bounded kernel seeded with the upper bound, which by
     construction always returns the exact distance (d ≤ hi). *)
  let resolved_interval = ref 0 and resolved_clamp = ref 0 in
  let bounded_pairs = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if d.(i).(j) < 0 then begin
        let lo = ref (o.lower i j) and hi = ref (o.size i + o.size j) in
        for pi = 0 to k - 1 do
          let p = pivot.(pi) in
          let a = d.(p).(i) and b = d.(p).(j) in
          let l = abs (a - b) and h = a + b in
          if l > !lo then lo := l;
          if h < !hi then hi := h
        done;
        let store v = d.(i).(j) <- v; d.(j).(i) <- v in
        if !lo >= !hi then begin
          store !hi;
          incr resolved_interval;
          T.ted.T.tri_resolved <- T.ted.T.tri_resolved + 1
        end
        else
          match clamp with
          | Some thr when !lo >= thr i j ->
              store !lo;
              incr resolved_clamp;
              T.ted.T.tri_resolved <- T.ted.T.tri_resolved + 1
          | _ ->
              incr bounded_pairs;
              store
                (match o.dist_bounded i j ~cutoff:(!hi - 1) with
                | Some v -> v
                | None -> !hi)
      end
    done
  done;
  ( d,
    {
      n;
      pairs = n * (n - 1) / 2;
      pivots = pivot;
      pivot_pairs = !pivot_pairs;
      resolved_interval = !resolved_interval;
      resolved_clamp = !resolved_clamp;
      bounded_pairs = !bounded_pairs;
    } )
