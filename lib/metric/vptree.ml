type node =
  | Leaf of int array
  | Node of { v : int; mu : int; inside : node; outside : node }

type t = { root : node; n : int; build_evals : int }

let leaf_cap = 4
let size t = t.n
let build_evals t = t.build_evals

let build ~dist ids =
  let evals = ref 0 in
  let d a b =
    incr evals;
    dist a b
  in
  (* Vantage = lowest id of the subset (deterministic); μ = lower median
     of the distances to the rest; inside holds d ≤ μ, outside d > μ.
     Even when every distance equals μ the vantage leaves the subset, so
     the recursion strictly shrinks and terminates. Partition preserves
     the ascending id order of the input. *)
  let rec make ids =
    if Array.length ids <= leaf_cap then Leaf ids
    else begin
      let v = ids.(0) in
      let rest = Array.sub ids 1 (Array.length ids - 1) in
      let ds = Array.map (fun x -> d v x) rest in
      let sorted = Array.copy ds in
      Array.sort compare sorted;
      let mu = sorted.((Array.length sorted - 1) / 2) in
      let nin = ref 0 in
      Array.iter (fun dv -> if dv <= mu then incr nin) ds;
      let inside = Array.make !nin 0
      and outside = Array.make (Array.length rest - !nin) 0 in
      let i = ref 0 and o = ref 0 in
      Array.iteri
        (fun idx x ->
          if ds.(idx) <= mu then begin
            inside.(!i) <- x;
            incr i
          end
          else begin
            outside.(!o) <- x;
            incr o
          end)
        rest;
      Node { v; mu; inside = make inside; outside = make outside }
    end
  in
  let ids = Array.copy ids in
  Array.sort compare ids;
  let root = make ids in
  { root; n = Array.length ids; build_evals = !evals }

(* Saturating add: cutoffs near max_int must not wrap. *)
let sat_add a b = if a >= max_int - b then max_int else a + b

let nearest ~dist_bounded ~k t =
  if k <= 0 then ([], 0)
  else begin
    let evals = ref 0 in
    let dq id ~cutoff =
      incr evals;
      dist_bounded id ~cutoff
    in
    (* best: ascending (d, id) list, ≤ k long. τ = the kth key; a
       candidate or subtree survives only if it can beat τ under the
       lexicographic (d, id) order, which makes the result the exact k
       smallest keys independent of traversal order. *)
    let best = ref [] and nbest = ref 0 in
    let tau_key () =
      if !nbest < k then (max_int, max_int)
      else List.nth !best (!nbest - 1)
    in
    let tau_d () = fst (tau_key ()) in
    let consider id dv =
      let key = (dv, id) in
      if !nbest < k || key < tau_key () then begin
        let rec ins = function
          | [] -> [ key ]
          | x :: rest -> if key < x then key :: x :: rest else x :: ins rest
        in
        let merged = ins !best in
        if !nbest < k then begin
          best := merged;
          incr nbest
        end
        else
          (* drop the previous kth *)
          best := List.filteri (fun i _ -> i < k) merged
      end
    in
    let try_candidate id =
      match dq id ~cutoff:(tau_d ()) with
      | Some dv -> consider id dv
      | None -> ()
    in
    let rec visit = function
      | Leaf ids -> Array.iter try_candidate ids
      | Node { v; mu; inside; outside } -> (
          (* One bounded eval serves both the candidate check and the
             routing: cutoff τ+μ. [None] proves d(q,v) > τ+μ, hence
             d(q,v) − μ > τ and the inside ball cannot beat τ; the
             outside shell still can (μ − d(q,v) < 0 ≤ τ). *)
          match dq v ~cutoff:(sat_add (tau_d ()) mu) with
          | None -> visit outside
          | Some dv ->
              if dv <= tau_d () then consider v dv;
              if dv <= mu then begin
                visit inside;
                if mu - dv <= tau_d () then visit outside
              end
              else begin
                visit outside;
                if dv - mu <= tau_d () then visit inside
              end)
    in
    visit t.root;
    (!best, !evals)
  end

let range ~dist_bounded ~radius t =
  if radius < 0 then ([], 0)
  else begin
    let evals = ref 0 in
    let dq id ~cutoff =
      incr evals;
      dist_bounded id ~cutoff
    in
    let hits = ref [] in
    let rec visit = function
      | Leaf ids ->
          Array.iter
            (fun id ->
              match dq id ~cutoff:radius with
              | Some dv -> hits := (dv, id) :: !hits
              | None -> ())
            ids
      | Node { v; mu; inside; outside } -> (
          match dq v ~cutoff:(sat_add radius mu) with
          | None -> visit outside
          | Some dv ->
              if dv <= radius then hits := (dv, v) :: !hits;
              if dv - mu <= radius then visit inside;
              if mu - dv <= radius then visit outside)
    in
    visit t.root;
    (List.sort compare !hits, !evals)
  end
