type node =
  | Leaf of int array
  | Node of {
      v : int;
      mu : int;
      count : int;  (** current subtree size, vantage included *)
      built : int;  (** subtree size when this node was last (re)built *)
      inside : node;
      outside : node;
    }

type t = {
  mutable root : node;
  mutable n : int;
  mutable build_evals : int;
  mutable rebuilds : int;
}

let leaf_cap = 4
let size t = t.n
let build_evals t = t.build_evals
let rebuilds t = t.rebuilds

let node_size = function Leaf ids -> Array.length ids | Node n -> n.count

let rec iter_node f = function
  | Leaf ids -> Array.iter f ids
  | Node { v; inside; outside; _ } ->
      f v;
      iter_node f inside;
      iter_node f outside

let elements t =
  let out = Array.make t.n 0 in
  let i = ref 0 in
  iter_node
    (fun id ->
      out.(!i) <- id;
      incr i)
    t.root;
  Array.sort compare out;
  out

(* Vantage = lowest id of the subset (deterministic); μ = lower median
   of the distances to the rest; inside holds d ≤ μ, outside d > μ.
   Even when every distance equals μ the vantage leaves the subset, so
   the recursion strictly shrinks and terminates. Partition preserves
   the ascending id order of the input, so the whole structure is a
   function of the id set and the metric alone — a rebuilt subtree is
   byte-identical to a freshly built one over the same ids. *)
let rec make ~d ids =
  if Array.length ids <= leaf_cap then Leaf ids
  else begin
    let v = ids.(0) in
    let rest = Array.sub ids 1 (Array.length ids - 1) in
    let ds = Array.map (fun x -> d v x) rest in
    let sorted = Array.copy ds in
    Array.sort compare sorted;
    let mu = sorted.((Array.length sorted - 1) / 2) in
    let nin = ref 0 in
    Array.iter (fun dv -> if dv <= mu then incr nin) ds;
    let inside = Array.make !nin 0
    and outside = Array.make (Array.length rest - !nin) 0 in
    let i = ref 0 and o = ref 0 in
    Array.iteri
      (fun idx x ->
        if ds.(idx) <= mu then begin
          inside.(!i) <- x;
          incr i
        end
        else begin
          outside.(!o) <- x;
          incr o
        end)
      rest;
    let count = Array.length ids in
    Node
      {
        v;
        mu;
        count;
        built = count;
        inside = make ~d inside;
        outside = make ~d outside;
      }
  end

let build ~dist ids =
  let evals = ref 0 in
  let d a b =
    incr evals;
    dist a b
  in
  let ids = Array.copy ids in
  Array.sort compare ids;
  let root = make ~d ids in
  { root; n = Array.length ids; build_evals = !evals; rebuilds = 0 }

(* --- incremental insert ----------------------------------------------- *)

let collect node =
  let acc = ref [] in
  let rec go = function
    | Leaf ids -> Array.iter (fun i -> acc := i :: !acc) ids
    | Node { v; inside; outside; _ } ->
        acc := v :: !acc;
        go inside;
        go outside
  in
  go node;
  !acc

(* Scapegoat-style amortisation: route the new id down by the metric
   (inside iff d(v,x) ≤ μ, which preserves the partition invariant the
   queries rely on), appending at a leaf; but once a subtree has grown
   past twice the size it was built at — or a leaf past 2·leaf_cap — give
   up on patching and rebuild that whole subtree from its sorted id set.
   The rebuild is [make] over sorted ids, i.e. exactly the structure a
   fresh [build] would produce there, so repeated inserts can degrade a
   subtree's balance only by a bounded factor before it snaps back to
   canonical form; total rebuild work telescopes to O(log n) amortised
   evaluations per insert on top of the O(depth) routing evaluations. *)
let insert ~dist t x =
  let evals = ref 0 in
  let d a b =
    incr evals;
    dist a b
  in
  let rebuild node =
    t.rebuilds <- t.rebuilds + 1;
    let ids = Array.of_list (x :: collect node) in
    Array.sort compare ids;
    make ~d ids
  in
  let rec ins node =
    match node with
    | Leaf ids ->
        if Array.length ids >= 2 * leaf_cap then rebuild node
        else begin
          let ids' = Array.append ids [| x |] in
          Array.sort compare ids';
          Leaf ids'
        end
    | Node { v; mu; count; built; inside; outside } ->
        if count + 1 > 2 * built then rebuild node
        else begin
          let dv = d v x in
          if dv <= mu then
            Node { v; mu; count = count + 1; built; inside = ins inside; outside }
          else
            Node { v; mu; count = count + 1; built; inside; outside = ins outside }
        end
  in
  t.root <- ins t.root;
  t.n <- t.n + 1;
  t.build_evals <- t.build_evals + !evals

(* --- plain-data representation ---------------------------------------- *)

(* Preorder flattening into an int array, for callers that persist the
   index (the codec and the digest-keyed cache live in [Sv_db], which
   this library must not depend on):
     header  [n]
     leaf    [0; len; id…]
     node    [1; v; mu; count; built; inside…; outside…]
   [of_repr] re-validates everything structural — tags, lengths, the
   count bookkeeping, the rebuild invariant count ≤ 2·built, μ ≥ 0,
   distinct ids, no trailing words — so a decoded-but-mangled payload
   yields [None] (cold rebuild) rather than a tree that breaks the
   query invariants. Metric facts (μ really is the inside radius) are
   not checkable without the evaluator; the cache layer guards those by
   keying payloads on the corpus digest. *)
let to_repr t =
  let out = ref [] in
  let push x = out := x :: !out in
  let rec go = function
    | Leaf ids ->
        push 0;
        push (Array.length ids);
        Array.iter push ids
    | Node { v; mu; count; built; inside; outside } ->
        push 1;
        push v;
        push mu;
        push count;
        push built;
        go inside;
        go outside
  in
  push t.n;
  go t.root;
  let l = List.rev !out in
  Array.of_list l

let of_repr a =
  let len = Array.length a in
  let pos = ref 0 in
  let exception Bad in
  let take () =
    if !pos >= len then raise Bad
    else begin
      let x = a.(!pos) in
      incr pos;
      x
    end
  in
  let rec node () =
    match take () with
    | 0 ->
        let l = take () in
        if l < 0 || l > 2 * leaf_cap || !pos + l > len then raise Bad;
        let ids = Array.sub a !pos l in
        pos := !pos + l;
        Leaf ids
    | 1 ->
        let v = take () in
        let mu = take () in
        let count = take () in
        let built = take () in
        if mu < 0 || built < 1 || count < built || count > 2 * built then
          raise Bad;
        let inside = node () in
        let outside = node () in
        if count <> 1 + node_size inside + node_size outside then raise Bad;
        Node { v; mu; count; built; inside; outside }
    | _ -> raise Bad
  in
  match
    let n = take () in
    let root = node () in
    if !pos <> len then raise Bad;
    if node_size root <> n then raise Bad;
    (* ids must be distinct: duplicates would silently double-count *)
    let ids = Array.of_list (collect root) in
    Array.sort compare ids;
    for i = 1 to n - 1 do
      if ids.(i) = ids.(i - 1) then raise Bad
    done;
    { root; n; build_evals = 0; rebuilds = 0 }
  with
  | t -> Some t
  | exception Bad -> None

(* --- queries ----------------------------------------------------------- *)

(* Saturating add: cutoffs near max_int must not wrap. *)
let sat_add a b = if a >= max_int - b then max_int else a + b

(* best: ascending (d, id) list, ≤ k long. τ = the kth key; a candidate
   or subtree survives only if it can beat τ under the lexicographic
   (d, id) order, which makes the result the exact k smallest keys
   independent of traversal order. *)
module Best = struct
  type b = { k : int; mutable xs : (int * int) list; mutable n : int }

  let create k = { k; xs = []; n = 0 }
  let tau_key b = if b.n < b.k then (max_int, max_int) else List.nth b.xs (b.n - 1)
  let tau_d b = fst (tau_key b)

  let consider b id dv =
    let key = (dv, id) in
    if b.n < b.k || key < tau_key b then begin
      let rec ins = function
        | [] -> [ key ]
        | x :: rest -> if key < x then key :: x :: rest else x :: ins rest
      in
      let merged = ins b.xs in
      if b.n < b.k then begin
        b.xs <- merged;
        b.n <- b.n + 1
      end
      else
        (* drop the previous kth *)
        b.xs <- List.filteri (fun i _ -> i < b.k) merged
    end
end

let nearest ~dist_bounded ~k t =
  if k <= 0 then ([], 0)
  else begin
    let evals = ref 0 in
    let dq id ~cutoff =
      incr evals;
      dist_bounded id ~cutoff
    in
    let best = Best.create k in
    let try_candidate id =
      match dq id ~cutoff:(Best.tau_d best) with
      | Some dv -> Best.consider best id dv
      | None -> ()
    in
    let rec visit = function
      | Leaf ids -> Array.iter try_candidate ids
      | Node { v; mu; inside; outside; _ } -> (
          (* One bounded eval serves both the candidate check and the
             routing: cutoff τ+μ. [None] proves d(q,v) > τ+μ, hence
             d(q,v) − μ > τ and the inside ball cannot beat τ; the
             outside shell still can (μ − d(q,v) < 0 ≤ τ). *)
          match dq v ~cutoff:(sat_add (Best.tau_d best) mu) with
          | None -> visit outside
          | Some dv ->
              if dv <= Best.tau_d best then Best.consider best v dv;
              if dv <= mu then begin
                visit inside;
                if mu - dv <= Best.tau_d best then visit outside
              end
              else begin
                visit outside;
                if dv - mu <= Best.tau_d best then visit inside
              end)
    in
    visit t.root;
    (best.Best.xs, !evals)
  end

(* --- budgeted / ε-approximate k-NN ------------------------------------- *)

type ledger = { evals : int; guaranteed_exact : bool }

(* Binary min-heap over ((lower bound, sequence number), node): the
   sequence number makes pop order — hence the whole traversal — a
   deterministic function of the tree and the query. *)
module Heap = struct
  type 'a h = { mutable arr : ((int * int) * 'a) array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let is_empty h = h.len = 0

  let push h x =
    if h.len = Array.length h.arr then begin
      let cap = max 16 (2 * h.len) in
      let arr = Array.make cap x in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    h.arr.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while
      !i > 0
      && fst h.arr.((!i - 1) / 2) > fst h.arr.(!i)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let pop h =
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.arr.(0) <- h.arr.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.len && fst h.arr.(l) < fst h.arr.(!m) then m := l;
        if r < h.len && fst h.arr.(r) < fst h.arr.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tmp = h.arr.(!m) in
          h.arr.(!m) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !m
        end
      done
    end;
    top
end

(* Best-first traversal: pop the frontier subtree with the least
   admissible lower bound on its distance to the query, so bounds only
   ever ascend and the first pop whose bound exceeds τ proves the search
   complete. The exact pruning rule is lb > τ (a point at distance
   exactly τ with a smaller id can still displace the kth under the
   (d, id) order); ε > 0 strengthens it to lb·(1+ε) > τ, and a budget
   caps evaluator calls outright. The ledger is honest by construction:
   [guaranteed_exact] is false only when the search actually stopped —
   by budget or by an ε-cut — while the frontier still held a subtree
   the exact rule would have visited. With no budget and ε = 0 the
   result equals [nearest] equals brute force, and the ledger says so. *)
let nearest_budgeted ~dist_bounded ~k ?budget ?(epsilon = 0.) t =
  if k <= 0 then ([], { evals = 0; guaranteed_exact = true })
  else begin
    let limit =
      match budget with Some b when b >= 0 -> b | Some _ -> 0 | None -> max_int
    in
    let evals = ref 0 in
    let dq id ~cutoff =
      incr evals;
      dist_bounded id ~cutoff
    in
    let best = Best.create k in
    let budget_cut = ref false and eps_cut = ref false in
    let heap = Heap.create () in
    let seq = ref 0 in
    let push lb node =
      Heap.push heap ((lb, !seq), node);
      incr seq
    in
    push 0 t.root;
    let exception Stop in
    (try
       while not (Heap.is_empty heap) do
         let (lb, _), node = Heap.pop heap in
         let tau = Best.tau_d best in
         if lb > tau then raise Stop (* every other frontier bound ≥ lb *)
         else if
           epsilon > 0.
           && float_of_int lb *. (1. +. epsilon) > float_of_int tau
         then begin
           (* viable under the exact rule but pruned by ε; the remaining
              frontier bounds are all ≥ lb, so the same cut applies —
              stop, and say the answer is no longer guaranteed. Any point
              skipped here has d ≥ lb > τ/(1+ε), which is exactly the
              multiplicative guarantee on every returned rank. *)
           eps_cut := true;
           raise Stop
         end
         else begin
           match node with
           | Leaf ids ->
               let len = Array.length ids in
               let i = ref 0 in
               while !i < len do
                 if !evals >= limit then begin
                   budget_cut := true;
                   raise Stop
                 end;
                 let id = ids.(!i) in
                 (match dq id ~cutoff:(Best.tau_d best) with
                 | Some dv -> Best.consider best id dv
                 | None -> ());
                 incr i
               done
           | Node { v; mu; inside; outside; _ } ->
               if !evals >= limit then begin
                 budget_cut := true;
                 raise Stop
               end;
               (match dq v ~cutoff:(sat_add (Best.tau_d best) mu) with
               | None ->
                   (* d(q,v) > τ+μ: the inside ball cannot beat τ; the
                      outside shell keeps the parent's bound. *)
                   push lb outside
               | Some dv ->
                   if dv <= Best.tau_d best then Best.consider best v dv;
                   (* inside points have d(v,·) ≤ μ, outside d(v,·) ≥ μ+1
                      (integer metric), so by the triangle inequality: *)
                   push (max lb (dv - mu)) inside;
                   push (max lb (mu + 1 - dv)) outside)
         end
       done
     with Stop -> ());
    ( best.Best.xs,
      { evals = !evals; guaranteed_exact = not (!budget_cut || !eps_cut) } )
  end

let range ~dist_bounded ~radius t =
  if radius < 0 then ([], 0)
  else begin
    let evals = ref 0 in
    let dq id ~cutoff =
      incr evals;
      dist_bounded id ~cutoff
    in
    let hits = ref [] in
    let rec visit = function
      | Leaf ids ->
          Array.iter
            (fun id ->
              match dq id ~cutoff:radius with
              | Some dv -> hits := (dv, id) :: !hits
              | None -> ())
            ids
      | Node { v; mu; inside; outside; _ } -> (
          match dq v ~cutoff:(sat_add radius mu) with
          | None -> visit outside
          | Some dv ->
              if dv <= radius then hits := (dv, v) :: !hits;
              if dv - mu <= radius then visit inside;
              if mu - dv <= radius then visit outside)
    in
    visit t.root;
    (List.sort compare !hits, !evals)
  end
