(** Pivot-based triangle-bounded evaluation of all-pairs distance
    matrices over a metric.

    Works for any integer metric presented as an {!oracle}; in this
    codebase that is the unnormalized integer TED (a true metric — the
    normalized divergence is not, see DESIGN.md "Metric index"). A small
    set of pivot rows is computed exactly; every remaining pair gets the
    interval [max_p |d(i,p) − d(j,p)| , min_p (d(i,p) + d(j,p))], and
    only pairs whose interval neither collapses nor clears the caller's
    clamp threshold run the DP — through the bounded kernel, seeded with
    the interval's upper bound, which therefore {e always} returns the
    exact distance. The resulting matrix is exact (clamped cells
    excepted, and those are opt-in), so dendrograms built from it are
    byte-identical to an exhaustive run by construction. *)

type oracle = {
  n : int;  (** number of points, indexed 0..n−1 *)
  size : int -> int;
      (** d(x, ⊥): the distance to the empty point — for TED the tree
          size — giving the a-priori upper bound d(i,j) ≤ size i + size j *)
  lower : int -> int -> int;  (** admissible cheap lower bound *)
  dist : int -> int -> int;  (** exact distance (unbounded DP) *)
  dist_bounded : int -> int -> cutoff:int -> int option;
      (** [Some d] iff the exact distance is [d ≤ cutoff]; [None]
          guarantees the distance exceeds [cutoff] *)
}

type stats = {
  n : int;
  pairs : int;  (** n·(n−1)/2 *)
  pivots : int array;  (** chosen pivot indices, selection order *)
  pivot_pairs : int;  (** pairs computed exactly in pivot rows *)
  resolved_interval : int;  (** pairs whose interval collapsed (lo = hi) *)
  resolved_clamp : int;  (** pairs settled by the clamp threshold *)
  bounded_pairs : int;  (** pairs sent to the bounded kernel *)
}

val auto_pivots : int -> int
(** ⌈√n⌉ — the default pivot count, making exact pivot-row work
    O(n^1.5) pairs out of O(n²). *)

val schedule :
  ?pivots:int ->
  ?clamp:(int -> int -> int) ->
  oracle ->
  int array array * stats
(** [schedule o] computes the full symmetric distance matrix. [pivots]
    overrides the pivot count (default {!auto_pivots}); pivot selection
    is deterministic farthest-first from index 0, ties to the lowest
    index. With [clamp], a pair whose interval lower bound reaches
    [clamp i j] stores that lower bound instead of the exact distance —
    sound only when the caller's downstream use saturates at the
    threshold (e.g. normalisation clamping at d ≥ dmax). Triangle
    resolutions are counted in [Sv_perf.Telemetry.ted.tri_resolved]. *)
