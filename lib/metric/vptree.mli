(** Vantage-point tree over an integer metric: exact k-NN and range
    queries with triangle-inequality pruning, incremental insert with
    deterministic partial rebuilds, a budgeted/ε-approximate best-first
    mode with an honest exactness ledger, and a plain-data
    representation for persistence.

    Elements are caller-side integer ids; the tree stores no payloads.
    Construction and queries are fully deterministic (vantage = lowest
    id, μ = lower median, ties in results broken by id), so query
    answers are {e exactly} the brute-force answers — the k smallest
    (distance, id) pairs, or all elements within the radius — not an
    approximation, unless the caller explicitly asks for the budgeted
    mode. Queries take a {e bounded} distance evaluator so the caller's
    cheap-bound cascade (size / histogram / pq-gram / binary-branch
    profile, for TED) fires on every pruned comparison; the second
    component of each result is the number of evaluator calls, the
    honest measure of work against the brute-force n. *)

type t

val build : dist:(int -> int -> int) -> int array -> t
(** [build ~dist ids] builds the index over [ids] (order-insensitive;
    duplicates are the caller's concern). [dist] must be a metric.
    O(n log n) evaluations in the balanced case. *)

val size : t -> int

val elements : t -> int array
(** The element ids, ascending. O(n log n); for validation by callers
    that persist trees keyed positionally into a candidate array. *)

val build_evals : t -> int
(** Exact-distance evaluations spent building and inserting (amortised
    over queries). A tree decoded from {!of_repr} reports 0 — queries
    against a persisted index pay no construction evaluations at all. *)

val rebuilds : t -> int
(** Partial rebuilds triggered by {!insert}'s imbalance threshold. *)

val insert : dist:(int -> int -> int) -> t -> int -> unit
(** [insert ~dist t id] adds [id] to the index in place. The new id is
    routed down by the metric (preserving the partition invariant every
    query relies on) and appended at a leaf; any subtree that has grown
    past twice the size it was last built at — or a leaf past twice the
    leaf capacity — is instead rebuilt from its sorted id set, which is
    {e exactly} the structure a fresh {!build} would produce there
    (scapegoat-style amortisation: O(log n) amortised evaluations per
    insert on top of O(depth) routing evaluations). [dist] must be the
    same metric the tree was built with. Query results after any
    sequence of inserts are identical to brute force, hence to a fresh
    build over the union — property-tested. *)

val to_repr : t -> int array
(** Flatten to a plain preorder int array (sizes, radii, ids — no
    closures), suitable for serialisation by a layer that may not
    depend on this one. [build_evals]/[rebuilds] are working-set
    telemetry and deliberately not part of the representation. *)

val of_repr : int array -> t option
(** Rebuild a tree from {!to_repr} output. Defensively validates every
    structural invariant — tags, leaf lengths, subtree-count
    bookkeeping, the rebuild invariant, μ ≥ 0, distinct ids, no
    trailing data — and returns [None] on any violation, so corrupt
    payloads degrade to a cold rebuild instead of wrong answers.
    Metric-dependent facts (that μ really brackets the inside ball) are
    not checkable without the evaluator; persist under a key that
    commits to the corpus and metric. The decoded tree is structurally
    identical to the encoded one, so its query answers and evaluator
    counts are byte-identical; its [build_evals] is 0. *)

val nearest :
  dist_bounded:(int -> cutoff:int -> int option) ->
  k:int ->
  t ->
  (int * int) list * int
(** [nearest ~dist_bounded ~k t] is the k nearest elements to the
    implicit query point as ascending [(distance, id)] pairs, plus the
    evaluator-call count. [dist_bounded id ~cutoff] must return [Some d]
    iff the exact query–element distance is [d ≤ cutoff] and [None]
    otherwise (proving d > cutoff). *)

type ledger = { evals : int; guaranteed_exact : bool }
(** Per-query work receipt for {!nearest_budgeted}.
    [guaranteed_exact = false] {e only} when the budget or ε actually
    cut the search while the frontier still held a subtree the exact
    rule would have visited; in particular, with no budget and ε = 0 it
    is always [true], and whenever it is [true] the hits are exactly
    the brute-force answer. *)

val nearest_budgeted :
  dist_bounded:(int -> cutoff:int -> int option) ->
  k:int ->
  ?budget:int ->
  ?epsilon:float ->
  t ->
  (int * int) list * ledger
(** Best-first k-NN over a priority queue of (admissible lower bound,
    subtree), deterministic (FIFO tie-break on equal bounds). [budget]
    caps evaluator calls; [epsilon] ≥ 0 relaxes the pruning rule from
    [lb > τ] to [lb·(1+ε) > τ]. Every point skipped by an ε-cut has
    distance > τ/(1+ε), so each returned rank-i distance is at most
    (1+ε)× the true rank-i distance; a budget stop makes no distance
    promise beyond the ledger's honesty. With neither given, results
    equal {!nearest} (and brute force) exactly. *)

val range :
  dist_bounded:(int -> cutoff:int -> int option) ->
  radius:int ->
  t ->
  (int * int) list * int
(** All elements within [radius] of the query point, ascending
    [(distance, id)], plus the evaluator-call count. *)
