(** Vantage-point tree over an integer metric: exact k-NN and range
    queries with triangle-inequality pruning.

    Elements are caller-side integer ids; the tree stores no payloads.
    Construction and queries are fully deterministic (vantage = lowest
    id, μ = lower median, ties in results broken by id), so query
    answers are {e exactly} the brute-force answers — the k smallest
    (distance, id) pairs, or all elements within the radius — not an
    approximation. Queries take a {e bounded} distance evaluator so the
    caller's cheap-bound cascade (size / histogram / binary-branch
    profile, for TED) fires on every pruned comparison; the second
    component of each result is the number of evaluator calls, the
    honest measure of work against the brute-force n. *)

type t

val build : dist:(int -> int -> int) -> int array -> t
(** [build ~dist ids] builds the index over [ids] (order-insensitive;
    duplicates are the caller's concern). [dist] must be a metric.
    O(n log n) evaluations in the balanced case. *)

val size : t -> int
val build_evals : t -> int
(** Exact-distance evaluations spent building (amortised over queries). *)

val nearest :
  dist_bounded:(int -> cutoff:int -> int option) ->
  k:int ->
  t ->
  (int * int) list * int
(** [nearest ~dist_bounded ~k t] is the k nearest elements to the
    implicit query point as ascending [(distance, id)] pairs, plus the
    evaluator-call count. [dist_bounded id ~cutoff] must return [Some d]
    iff the exact query–element distance is [d ≤ cutoff] and [None]
    otherwise (proving d > cutoff). *)

val range :
  dist_bounded:(int -> cutoff:int -> int option) ->
  radius:int ->
  t ->
  (int * int) list * int
(** All elements within [radius] of the query point, ascending
    [(distance, id)], plus the evaluator-call count. *)
