(** Size-bounded LRU over string keys — the residency policy of the
    `sv serve` daemon.

    The persistent caches ({!Index_cache}, {!Codebase_db.Ted_cache}) are
    unbounded maps: correct for one-shot runs, but a resident service
    would grow without limit. This table bounds the {e decoded, live}
    working set: each entry carries a caller-measured byte size, the
    table holds entries in recency order, and inserting past the byte
    budget evicts from the least-recently-used end, invoking an optional
    [on_evict] callback first — which is how the daemon spills evicted
    indexing results into the persistent cache instead of losing them
    (eviction + reload must yield identical results; the `lru` suite in
    `test/test_db.ml` holds that regression).

    The most recently inserted or touched entry is never evicted, even
    when it alone exceeds the budget — a single oversized entry degrades
    to a cache of one rather than thrashing to zero. *)

type 'a t

val create :
  ?on_evict:(string -> 'a -> unit) ->
  budget:int ->
  size_of:('a -> int) ->
  unit ->
  'a t
(** [create ~budget ~size_of ()] is an empty table that will hold at
    most [budget] bytes as measured by [size_of] (clamped to ≥ 0).
    [on_evict] runs after the entry is unlinked, so a callback looking
    the key up sees a miss, and a callback raising leaves the table
    consistent (the entry is already gone; the exception propagates). *)

val find : 'a t -> string -> 'a option
(** Look up a key, moving a hit to the most-recent position and bumping
    the hit/miss counters. *)

val mem : 'a t -> string -> bool
(** Presence test without touching recency or counters. *)

val add : 'a t -> string -> 'a -> unit
(** [add t k v] inserts or replaces the binding for [k] at the
    most-recent position, then evicts least-recent entries (calling
    [on_evict] on each) until the table fits the budget again or only
    the new entry remains. *)

val remove : 'a t -> string -> unit
(** Drop a binding without invoking [on_evict] (removal is explicit,
    not pressure). Missing keys are ignored. *)

val count : 'a t -> int
(** Number of resident entries. *)

val bytes : 'a t -> int
(** Sum of [size_of] over resident entries. *)

val budget : 'a t -> int

val hits : 'a t -> int
val misses : 'a t -> int
val evictions : 'a t -> int

val keys_newest_first : 'a t -> string list
(** Resident keys in recency order, most recent first — the observable
    the eviction-order tests pin down. *)

val stats : 'a t -> string
(** One-line entries/bytes/budget/hit/miss/eviction summary. *)
