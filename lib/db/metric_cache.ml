module M = Sv_msgpack.Msgpack
module Vptree = Sv_metric.Vptree

(* Bump when the VP-tree representation, the distance semantics feeding
   it, or the payload layout changes meaning: stale indexes must never
   decode as current ones. *)
let metric_schema = 1

type cache = {
  tbl : (string, string) Hashtbl.t;  (* 16-byte key -> encoded repr *)
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 16; hits = 0; misses = 0 }

(* The key commits to everything that can change the persisted tree: the
   corpus digest (which itself spans every codebase's indexed payload, in
   candidate order — ids are positional), the metric and variant names,
   and the schema version. Any of them changing yields a fresh key, so
   invalidation is automatic and stale entries are merely unreachable. *)
let key ?(version = metric_schema) ~corpus_digest ~metric ~variant () =
  Digest.string
    (M.encode
       (M.Arr
          [
            M.Int version;
            M.Bin corpus_digest;
            M.Str metric;
            M.Str variant;
          ]))

let valid_entry k payload = String.length k = 16 && String.length payload > 0

let encode_tree t =
  let repr = Vptree.to_repr t in
  M.encode (M.Arr (Array.to_list (Array.map (fun i -> M.Int i) repr)))

(* Full defensive decode: msgpack shape, then [Vptree.of_repr]'s
   structural validation, then — because ids are positional into the
   candidate array — the requirement that the element set is exactly
   0..n−1. Any failure reads as a miss, so a mangled payload costs a
   cold rebuild, never a crash or a tree whose ids point outside the
   corpus. *)
let decode_tree payload =
  match M.decode payload with
  | exception M.Decode_error _ -> None
  | M.Arr items -> (
      let ok = ref true in
      let repr =
        Array.of_list
          (List.map
             (function
               | M.Int i -> i
               | _ ->
                   ok := false;
                   0)
             items)
      in
      if not !ok then None
      else
        match Vptree.of_repr repr with
        | None -> None
        | Some t ->
            let els = Vptree.elements t in
            let dense = ref true in
            Array.iteri (fun i x -> if x <> i then dense := false) els;
            if !dense then Some t else None)
  | _ -> None

let find c k =
  match Hashtbl.find_opt c.tbl k with
  | Some payload -> (
      match decode_tree payload with
      | Some t ->
          c.hits <- c.hits + 1;
          Some t
      | None ->
          c.misses <- c.misses + 1;
          None)
  | None ->
      c.misses <- c.misses + 1;
      None

let add c k t =
  let payload = encode_tree t in
  if valid_entry k payload && not (Hashtbl.mem c.tbl k) then
    Hashtbl.replace c.tbl k payload

(* Same defensive posture as [Index_cache.merge]: malformed entries are
   dropped and existing keys never overwritten, so merging twice is a
   no-op. Raw payloads (not trees) so merge never pays a decode. *)
let merge c entries =
  List.iter
    (fun (k, payload) ->
      if valid_entry k payload && not (Hashtbl.mem c.tbl k) then
        Hashtbl.replace c.tbl k payload)
    entries

let size c = Hashtbl.length c.tbl
let hits c = c.hits
let misses c = c.misses

(* Sorted serialisation: the artifact is a pure function of the contents,
   so runs that populated the cache in different orders write
   byte-identical files. *)
let to_msgpack c =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.tbl []
    |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
  in
  M.Map
    [
      (M.Str "schema", M.Int metric_schema);
      ( M.Str "metric",
        M.Arr (List.map (fun (k, v) -> M.Arr [ M.Bin k; M.Bin v ]) entries) );
    ]

let ( let* ) = Result.bind

let of_msgpack = function
  | M.Map fields -> (
      let get name =
        match List.assoc_opt (M.Str name) fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %s" name)
      in
      let* schema = get "schema" in
      let* () =
        match schema with
        | M.Int v when v = metric_schema -> Ok ()
        | M.Int v ->
            Error (Printf.sprintf "unsupported metric-cache schema %d" v)
        | _ -> Error "schema not an int"
      in
      let* entries_m = get "metric" in
      match entries_m with
      | M.Arr es ->
          let c = create () in
          let* () =
            List.fold_left
              (fun acc e ->
                let* () = acc in
                match e with
                | M.Arr [ M.Bin k; M.Bin v ] when valid_entry k v ->
                    Hashtbl.replace c.tbl k v;
                    Ok ()
                | _ -> Error "malformed metric-cache entry")
              (Ok ()) es
          in
          Ok c
      | _ -> Error "metric not an array")
  | _ -> Error "cache root not a map"

let save c = Sv_svz.Svz.compress (M.encode (to_msgpack c))

let load bytes =
  match Sv_svz.Svz.decompress bytes with
  | exception Sv_svz.Svz.Corrupt msg -> Error ("corrupt cache: " ^ msg)
  | raw -> (
      match M.decode raw with
      | exception M.Decode_error msg -> Error ("malformed msgpack: " ^ msg)
      | v -> of_msgpack v)

let save_file path c =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (save c))

(* A missing or damaged cache file just means a cold start. *)
let load_file path =
  if not (Sys.file_exists path) then create ()
  else
    let ic = open_in_bin path in
    let bytes =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match load bytes with Ok c -> c | Error _ -> create ()

let stats c =
  Printf.sprintf "metric-cache: %d entries, %d hits / %d misses this run"
    (size c) c.hits c.misses
