module M = Sv_msgpack.Msgpack

(* Bump when any indexing stage (preprocess, parse, lowering, inlining,
   interpreter-driven coverage, or the serialised payload layout) changes
   meaning: stale payloads must never decode as current ones. *)
let pipeline_version = 1

type cache = {
  tbl : (string, string) Hashtbl.t;  (* 16-byte key -> encoded payload *)
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

(* The key commits to everything that can change an indexing result: the
   sources themselves (the caller's digest spans file names and contents),
   the preprocessor define set, the language dialect, and the pipeline
   version. Any of them changing yields a fresh key, so invalidation is
   automatic and stale entries are merely unreachable. *)
let key ?(version = pipeline_version) ~source_digest ~defines ~dialect () =
  Digest.string
    (M.encode
       (M.Arr
          [
            M.Int version;
            M.Bin source_digest;
            M.Arr (List.map (fun d -> M.Str d) defines);
            M.Str dialect;
          ]))

let find c k =
  match Hashtbl.find_opt c.tbl k with
  | Some payload ->
      c.hits <- c.hits + 1;
      Some payload
  | None ->
      c.misses <- c.misses + 1;
      None

let valid_entry k payload = String.length k = 16 && String.length payload > 0

let add c k payload =
  if valid_entry k payload && not (Hashtbl.mem c.tbl k) then
    Hashtbl.replace c.tbl k payload

(* Same defensive posture as [Ted_cache.merge]: entries may arrive from a
   faulted worker pipe or a twice-shipped degraded batch, so malformed
   ones are dropped and existing keys are never overwritten — merging the
   same batch twice is a no-op. *)
let merge c entries = List.iter (fun (k, payload) -> add c k payload) entries
let size c = Hashtbl.length c.tbl
let hits c = c.hits
let misses c = c.misses

(* Sorted serialisation: the artifact is a pure function of the contents,
   so runs that populated the cache in different orders write
   byte-identical files. *)
let to_msgpack c =
  let entries =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.tbl []
    |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
  in
  M.Map
    [
      (M.Str "schema", M.Int pipeline_version);
      ( M.Str "index",
        M.Arr (List.map (fun (k, v) -> M.Arr [ M.Bin k; M.Bin v ]) entries) );
    ]

let ( let* ) = Result.bind

let of_msgpack = function
  | M.Map fields -> (
      let get name =
        match List.assoc_opt (M.Str name) fields with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "missing field %s" name)
      in
      let* schema = get "schema" in
      let* () =
        match schema with
        | M.Int v when v = pipeline_version -> Ok ()
        | M.Int v -> Error (Printf.sprintf "unsupported index-cache schema %d" v)
        | _ -> Error "schema not an int"
      in
      let* entries_m = get "index" in
      match entries_m with
      | M.Arr es ->
          let c = create () in
          let* () =
            List.fold_left
              (fun acc e ->
                let* () = acc in
                match e with
                | M.Arr [ M.Bin k; M.Bin v ] when valid_entry k v ->
                    Hashtbl.replace c.tbl k v;
                    Ok ()
                | _ -> Error "malformed index-cache entry")
              (Ok ()) es
          in
          Ok c
      | _ -> Error "index not an array")
  | _ -> Error "cache root not a map"

let save c = Sv_svz.Svz.compress (M.encode (to_msgpack c))

let load bytes =
  match Sv_svz.Svz.decompress bytes with
  | exception Sv_svz.Svz.Corrupt msg -> Error ("corrupt cache: " ^ msg)
  | raw -> (
      match M.decode raw with
      | exception M.Decode_error msg -> Error ("malformed msgpack: " ^ msg)
      | v -> of_msgpack v)

let save_file path c =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (save c))

(* A missing or damaged cache file just means a cold start. *)
let load_file path =
  if not (Sys.file_exists path) then create ()
  else
    let ic = open_in_bin path in
    let bytes =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match load bytes with Ok c -> c | Error _ -> create ()

let stats c =
  Printf.sprintf "index-cache: %d entries, %d hits / %d misses this run"
    (size c) c.hits c.misses
