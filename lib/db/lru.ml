(* Doubly-linked recency list + hashtable of nodes. The list order is
   the single source of truth for eviction; [bytes] is maintained
   incrementally and re-derivable from the nodes (asserted by tests). *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable size : int;
  mutable prev : 'a node option;  (* towards most-recent *)
  mutable next : 'a node option;  (* towards least-recent *)
}

type 'a t = {
  table : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recent *)
  mutable tail : 'a node option;  (* least recent *)
  mutable used : int;
  budget : int;
  size_of : 'a -> int;
  on_evict : (string -> 'a -> unit) option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ?on_evict ~budget ~size_of () =
  {
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    used = 0;
    budget = max 0 budget;
    size_of;
    on_evict;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.prev <- None;
  n.next <- t.head;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find t k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value

let mem t k = Hashtbl.mem t.table k

(* Evict from the tail until the budget fits or only the head remains.
   The entry is fully unlinked before [on_evict] runs, so the callback
   observes a consistent table (and a raising callback loses nothing
   but its own entry). *)
let rec shed t =
  if t.used > t.budget then
    match t.tail with
    (* compare nodes, not the option cells around them: [head] and
       [tail] hold physically distinct [Some] blocks even when both
       point at the same lone node *)
    | Some n when (match t.head with Some h -> h != n | None -> false) ->
        unlink t n;
        Hashtbl.remove t.table n.key;
        t.used <- t.used - n.size;
        t.evictions <- t.evictions + 1;
        (match t.on_evict with Some f -> f n.key n.value | None -> ());
        shed t
    | _ -> ()

let add t k v =
  let sz = t.size_of v in
  (match Hashtbl.find_opt t.table k with
  | Some n ->
      t.used <- t.used - n.size + sz;
      n.value <- v;
      n.size <- sz;
      unlink t n;
      push_front t n
  | None ->
      let n = { key = k; value = v; size = sz; prev = None; next = None } in
      Hashtbl.add t.table k n;
      t.used <- t.used + sz;
      push_front t n);
  shed t

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table k;
      t.used <- t.used - n.size

let count t = Hashtbl.length t.table
let bytes t = t.used
let budget t = t.budget
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let keys_newest_first t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.head

let stats t =
  Printf.sprintf "lru: %d entries, %d/%d bytes, %d hits / %d misses, %d evictions"
    (count t) t.used t.budget t.hits t.misses t.evictions
