(** The Codebase DB — SilverVale's portable analysis artifact (§IV).

    The index step turns a compiled codebase into "a portable set of
    semantic-bearing trees and metadata files all stored in a Zstd
    compressed MessagePack format". This module is that store: trees plus
    per-unit metadata, serialised to MessagePack ({!Sv_msgpack}) and
    compressed with the LZ77 codec ({!Sv_svz}, the Zstd stand-in). *)

type unit_record = {
  ur_file : string;                     (** unit main file *)
  ur_deps : string list;                (** headers spliced into the unit *)
  ur_sloc : int;
  ur_lloc : int;
  ur_lines : string list;               (** normalised source lines *)
  ur_trees : (string * Sv_tree.Label.tree) list;
      (** named trees: ["t_src"], ["t_src_pp"], ["t_sem"], ["t_sem_i"],
          ["t_ir"], and their ["+cov"] variants when coverage ran *)
}

type t = {
  db_app : string;    (** application name, e.g. ["tealeaf"] *)
  db_model : string;  (** programming model id *)
  db_units : unit_record list;
}

val save : t -> string
(** [save db] is the compressed binary artifact. *)

val load : string -> (t, string) Result.t
(** [load bytes] decodes an artifact produced by {!save}; reports
    corruption and schema mismatches as [Error]. *)

val tree_to_msgpack : Sv_tree.Label.tree -> Sv_msgpack.Msgpack.t
(** Tree codec, exposed for tests: node → [\[kind; text; loc; children\]]. *)

val tree_of_msgpack : Sv_msgpack.Msgpack.t -> (Sv_tree.Label.tree, string) Result.t
(** Inverse of {!tree_to_msgpack}. *)

val stats : t -> string
(** One-line summary: unit count, total tree nodes, compressed and
    uncompressed artifact sizes and ratio. *)

(** Persistent memo table for pairwise TED results.

    Keys are the two trees' structural digests (MD5 of the msgpack tree
    encoding with locations stripped, matching {!Sv_tree.Label.equal}'s
    blindness to locations), ordered so the symmetric distance is stored
    once. The on-disk format is an SVZ-compressed msgpack map
    [{schema; ted: \[\[digest₁; digest₂; d\]; ...\]}] with entries
    sorted by key, so identical contents serialise to identical bytes. *)
module Ted_cache : sig
  type cache

  val create : unit -> cache
  (** Empty cache with zeroed hit/miss counters. *)

  val digest : Sv_tree.Label.tree -> string
  (** Structural digest of a tree (16 raw MD5 bytes). Location-blind:
      trees equal under {!Sv_tree.Label.equal} share a digest. *)

  val find : cache -> string -> string -> int option
  (** [find c da db] looks up the distance for a digest pair, in either
      order, bumping the hit/miss counters. *)

  val add : cache -> string -> string -> int -> unit
  (** Record a computed distance. New entries are also appended to the
      additions journal (see {!drain_additions}). *)

  val merge : cache -> (string * string * int) list -> unit
  (** Fold entries from another process into the table {e without}
      journalling them — how the parent absorbs worker additions.
      Defensive against faulted or degraded pool runs: entries that are
      not (16-byte digest, 16-byte digest, non-negative distance) are
      dropped, and an existing key is never overwritten, so merging the
      same batch twice — or a batch recomputed in-process after worker
      strikes — cannot tear or duplicate an entry. *)

  val drain_additions : cache -> (string * string * int) list
  (** Entries added since the last drain, oldest first, clearing the
      journal — what a forked worker ships back with its results. *)

  val size : cache -> int
  val hits : cache -> int
  val misses : cache -> int

  val save : cache -> string
  (** Compressed artifact bytes (deterministic for given contents). *)

  val load : string -> (cache, string) Result.t
  (** Decode an artifact produced by {!save}. *)

  val save_file : string -> cache -> unit
  val load_file : string -> cache
  (** [load_file path] reads a cache file; a missing or corrupt file
      yields an empty cache (a cold start, never an error). *)

  val stats : cache -> string
  (** One-line entry/hit/miss summary. *)
end
