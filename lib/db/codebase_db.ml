module M = Sv_msgpack.Msgpack
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label
module Loc = Sv_util.Loc

type unit_record = {
  ur_file : string;
  ur_deps : string list;
  ur_sloc : int;
  ur_lloc : int;
  ur_lines : string list;
  ur_trees : (string * Label.tree) list;
}

type t = { db_app : string; db_model : string; db_units : unit_record list }

let loc_to_msgpack (l : Loc.t) =
  if Loc.is_none l then M.Nil
  else
    M.Arr
      [
        M.Str l.Loc.file;
        M.Int l.Loc.start.Loc.line;
        M.Int l.Loc.start.Loc.col;
        M.Int l.Loc.stop.Loc.line;
        M.Int l.Loc.stop.Loc.col;
      ]

let loc_of_msgpack = function
  | M.Nil -> Ok Loc.none
  | M.Arr [ M.Str file; M.Int sl; M.Int sc; M.Int el; M.Int ec ] ->
      Ok
        {
          Loc.file;
          start = { Loc.line = sl; col = sc };
          stop = { Loc.line = el; col = ec };
        }
  | _ -> Error "malformed location"

let rec tree_to_msgpack (Tree.Node (l, cs)) =
  M.Arr
    [ M.Str l.Label.kind; M.Str l.Label.text; loc_to_msgpack l.Label.loc;
      M.Arr (List.map tree_to_msgpack cs) ]

let ( let* ) = Result.bind

let rec tree_of_msgpack = function
  | M.Arr [ M.Str kind; M.Str text; loc; M.Arr children ] ->
      let* loc = loc_of_msgpack loc in
      let* kids =
        List.fold_left
          (fun acc c ->
            let* acc = acc in
            let* t = tree_of_msgpack c in
            Ok (t :: acc))
          (Ok []) children
      in
      Ok (Tree.Node ({ Label.kind; text; loc }, List.rev kids))
  | _ -> Error "malformed tree node"

let unit_to_msgpack u =
  M.Map
    [
      (M.Str "file", M.Str u.ur_file);
      (M.Str "deps", M.Arr (List.map (fun d -> M.Str d) u.ur_deps));
      (M.Str "sloc", M.Int u.ur_sloc);
      (M.Str "lloc", M.Int u.ur_lloc);
      (M.Str "lines", M.Arr (List.map (fun l -> M.Str l) u.ur_lines));
      ( M.Str "trees",
        M.Map (List.map (fun (name, t) -> (M.Str name, tree_to_msgpack t)) u.ur_trees) );
    ]

let get_field fields name =
  match List.assoc_opt (M.Str name) fields with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %s" name)

let str_list = function
  | M.Arr xs ->
      Ok (List.filter_map (function M.Str s -> Some s | _ -> None) xs)
  | _ -> Error "expected an array of strings"

let unit_of_msgpack = function
  | M.Map fields ->
      let* file = get_field fields "file" in
      let* file = match file with M.Str s -> Ok s | _ -> Error "file not a string" in
      let* deps = Result.bind (get_field fields "deps") str_list in
      let* sloc = get_field fields "sloc" in
      let* sloc = match sloc with M.Int n -> Ok n | _ -> Error "sloc not an int" in
      let* lloc = get_field fields "lloc" in
      let* lloc = match lloc with M.Int n -> Ok n | _ -> Error "lloc not an int" in
      let* lines = Result.bind (get_field fields "lines") str_list in
      let* trees_m = get_field fields "trees" in
      let* trees =
        match trees_m with
        | M.Map kvs ->
            List.fold_left
              (fun acc (k, v) ->
                let* acc = acc in
                match k with
                | M.Str name ->
                    let* t = tree_of_msgpack v in
                    Ok ((name, t) :: acc)
                | _ -> Error "tree name not a string")
              (Ok []) kvs
            |> Result.map List.rev
        | _ -> Error "trees not a map"
      in
      Ok { ur_file = file; ur_deps = deps; ur_sloc = sloc; ur_lloc = lloc;
           ur_lines = lines; ur_trees = trees }
  | _ -> Error "unit record not a map"

let schema_version = 1

let to_msgpack db =
  M.Map
    [
      (M.Str "schema", M.Int schema_version);
      (M.Str "app", M.Str db.db_app);
      (M.Str "model", M.Str db.db_model);
      (M.Str "units", M.Arr (List.map unit_to_msgpack db.db_units));
    ]

let of_msgpack = function
  | M.Map fields ->
      let* schema = get_field fields "schema" in
      let* () =
        match schema with
        | M.Int v when v = schema_version -> Ok ()
        | M.Int v -> Error (Printf.sprintf "unsupported schema version %d" v)
        | _ -> Error "schema not an int"
      in
      let* app = get_field fields "app" in
      let* app = match app with M.Str s -> Ok s | _ -> Error "app not a string" in
      let* model = get_field fields "model" in
      let* model = match model with M.Str s -> Ok s | _ -> Error "model not a string" in
      let* units_m = get_field fields "units" in
      let* units =
        match units_m with
        | M.Arr us ->
            List.fold_left
              (fun acc u ->
                let* acc = acc in
                let* u = unit_of_msgpack u in
                Ok (u :: acc))
              (Ok []) us
            |> Result.map List.rev
        | _ -> Error "units not an array"
      in
      Ok { db_app = app; db_model = model; db_units = units }
  | _ -> Error "database root not a map"

let save db = Sv_svz.Svz.compress (M.encode (to_msgpack db))

let load bytes =
  match Sv_svz.Svz.decompress bytes with
  | exception Sv_svz.Svz.Corrupt msg -> Error ("corrupt artifact: " ^ msg)
  | raw -> (
      match M.decode raw with
      | exception M.Decode_error msg -> Error ("malformed msgpack: " ^ msg)
      | v -> of_msgpack v)

(* --- persistent TED memo cache -------------------------------------- *)

module Ted_cache = struct
  type cache = {
    tbl : (string * string, int) Hashtbl.t;
    mutable additions : (string * string * int) list;
        (** entries recorded since the last {!drain_additions} — the
            journal forked workers ship back to the parent process *)
    mutable hits : int;
    mutable misses : int;
  }

  let create () = { tbl = Hashtbl.create 1024; additions = []; hits = 0; misses = 0 }

  (* The digest ignores locations because Label.equal does: two trees
     that TED cannot tell apart must hash to the same key, or a
     re-indexed corpus with shifted line numbers would never hit. *)
  let digest t = Digest.string (M.encode (tree_to_msgpack (Label.strip_locs t)))

  (* TED under unit costs is symmetric, so the key is the ordered pair. *)
  let key a b = if String.compare a b <= 0 then (a, b) else (b, a)

  let find c a b =
    match Hashtbl.find_opt c.tbl (key a b) with
    | Some d ->
        c.hits <- c.hits + 1;
        Some d
    | None ->
        c.misses <- c.misses + 1;
        None

  let add c a b d =
    let k = key a b in
    if not (Hashtbl.mem c.tbl k) then begin
      Hashtbl.replace c.tbl k d;
      let ka, kb = k in
      c.additions <- (ka, kb, d) :: c.additions
    end

  (* Entries arriving here have crossed a worker pipe that may have been
     faulted mid-batch, and a degraded run can hand the same pair over
     twice (once journalled by the parent's in-process retry, once in the
     shipped additions). Accept only well-formed entries — raw 16-byte
     MD5 digests and a non-negative distance — and never overwrite or
     re-journal an existing key, so the persisted cache can hold a torn
     or duplicated entry under no failure mode. *)
  let valid_entry a b d = String.length a = 16 && String.length b = 16 && d >= 0

  let merge c entries =
    List.iter
      (fun (a, b, d) ->
        if valid_entry a b d then
          let k = key a b in
          if not (Hashtbl.mem c.tbl k) then Hashtbl.replace c.tbl k d)
      entries

  let drain_additions c =
    let xs = List.rev c.additions in
    c.additions <- [];
    xs

  let size c = Hashtbl.length c.tbl
  let hits c = c.hits
  let misses c = c.misses

  let entry_to_msgpack (a, b) d = M.Arr [ M.Bin a; M.Bin b; M.Int d ]

  let entry_of_msgpack = function
    | M.Arr [ M.Bin a; M.Bin b; M.Int d ] when d >= 0 -> Ok (a, b, d)
    | _ -> Error "malformed cache entry"

  (* Entries are sorted before serialisation so the artifact is a pure
     function of the cache contents — two runs that computed the same
     pairs in different orders write byte-identical files. *)
  let to_msgpack c =
    let entries =
      Hashtbl.fold (fun k d acc -> (k, d) :: acc) c.tbl []
      |> List.sort (fun (ka, _) (kb, _) -> compare ka kb)
    in
    M.Map
      [
        (M.Str "schema", M.Int schema_version);
        (M.Str "ted", M.Arr (List.map (fun (k, d) -> entry_to_msgpack k d) entries));
      ]

  let of_msgpack = function
    | M.Map fields ->
        let* schema = get_field fields "schema" in
        let* () =
          match schema with
          | M.Int v when v = schema_version -> Ok ()
          | M.Int v -> Error (Printf.sprintf "unsupported cache schema %d" v)
          | _ -> Error "schema not an int"
        in
        let* entries_m = get_field fields "ted" in
        let* entries =
          match entries_m with
          | M.Arr es ->
              List.fold_left
                (fun acc e ->
                  let* acc = acc in
                  let* e = entry_of_msgpack e in
                  Ok (e :: acc))
                (Ok []) es
          | _ -> Error "ted not an array"
        in
        let c = create () in
        List.iter (fun (a, b, d) -> Hashtbl.replace c.tbl (key a b) d) entries;
        Ok c
    | _ -> Error "cache root not a map"

  let save c = Sv_svz.Svz.compress (M.encode (to_msgpack c))

  let load bytes =
    match Sv_svz.Svz.decompress bytes with
    | exception Sv_svz.Svz.Corrupt msg -> Error ("corrupt cache: " ^ msg)
    | raw -> (
        match M.decode raw with
        | exception M.Decode_error msg -> Error ("malformed msgpack: " ^ msg)
        | v -> of_msgpack v)

  let save_file path c =
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (save c))

  (* A missing or damaged cache file is not an error condition for the
     pipeline — it just means a cold start. *)
  let load_file path =
    if not (Sys.file_exists path) then create ()
    else
      let ic = open_in_bin path in
      let bytes =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match load bytes with Ok c -> c | Error _ -> create ()

  let stats c =
    Printf.sprintf "ted-cache: %d entries, %d hits / %d misses this run"
      (size c) c.hits c.misses
end

let stats db =
  let raw = M.encode (to_msgpack db) in
  let packed = Sv_svz.Svz.compress raw in
  let nodes =
    List.fold_left
      (fun acc u ->
        acc + List.fold_left (fun a (_, t) -> a + Tree.size t) 0 u.ur_trees)
      0 db.db_units
  in
  Printf.sprintf "%s/%s: %d units, %d tree nodes, %d B raw, %d B compressed (%.2fx)"
    db.db_app db.db_model (List.length db.db_units) nodes (String.length raw)
    (String.length packed)
    (float_of_int (String.length raw) /. float_of_int (max 1 (String.length packed)))
