(** Persistent, digest-keyed cache of VP-tree metric indexes.

    Phase 2 of the metric layer: a built {!Sv_metric.Vptree} is a pure
    function of (corpus, metric, variant), so it is persisted exactly
    like {!Index_cache} payloads — msgpack inside svz, 16-byte digest
    keys, a schema version, sorted byte-identical serialisation — and
    reloaded on the next run or daemon restart, making `sv nearest`
    warm across processes: a cache hit performs {e zero} build
    evaluations and answers queries byte-identically to a cold build.

    Defence in depth on the load path: the svz envelope checksums the
    file, msgpack decoding validates the framing, and
    {!Sv_metric.Vptree.of_repr} re-validates every structural invariant
    of each tree, plus a final check that the element ids are exactly
    0..n−1 (they index the candidate array positionally). Any failure
    anywhere degrades to a miss — a cold rebuild — never a crash or a
    wrong answer. Truncated or bit-flipped cache files fall back to an
    empty cache ({!load_file}). *)

type cache

val metric_schema : int
(** Payload schema version; part of every key. *)

val create : unit -> cache

val key :
  ?version:int -> corpus_digest:string -> metric:string -> variant:string ->
  unit -> string
(** 16-byte digest committing to the corpus (candidate payloads in
    order — ids are positional), the metric and variant names, and the
    schema version, so any change makes stale entries unreachable. *)

val find : cache -> string -> Sv_metric.Vptree.t option
(** Decode-on-demand probe. [Some t] only if the payload passes the full
    validation stack; counts a hit. Any malformed payload counts a miss. *)

val add : cache -> string -> Sv_metric.Vptree.t -> unit
(** Encode and store under [key]. Existing keys are never overwritten
    (re-adding after a concurrent populate is a no-op). *)

val merge : cache -> (string * string) list -> unit
(** Merge raw (key, payload) entries defensively: malformed entries are
    dropped, existing keys never overwritten — merging the same batch
    twice is a no-op. *)

val size : cache -> int
val hits : cache -> int
val misses : cache -> int

val to_msgpack : cache -> Sv_msgpack.Msgpack.t
(** Sorted, deterministic: equal contents serialise byte-identically. *)

val of_msgpack : Sv_msgpack.Msgpack.t -> (cache, string) result
val save : cache -> string
val load : string -> (cache, string) result

val save_file : string -> cache -> unit
val load_file : string -> cache
(** Missing or corrupt files yield an empty cache (cold start). *)

val stats : cache -> string
