(** Persistent cache of indexing results.

    Sibling of {!Codebase_db.Ted_cache}, one layer earlier in the
    pipeline: where the TED cache memoises pairwise distances, this one
    memoises the {e front-end} — the serialised trees, SLOC/LLOC counts
    and verification/coverage results a codebase indexes to — so a warm
    rerun of `sv index/compare/cluster` or the bench harness skips
    preprocessing, parsing, lowering and interpretation entirely.

    The cache itself is payload-agnostic: it maps 16-byte keys to opaque
    encoded payloads. The codecs for indexed codebases live in
    {!Sv_core.Index_engine} (this library cannot depend on the core).

    Invalidation is structural, not explicit: {!key} commits to the
    source digest, the preprocessor defines, the language dialect and
    {!pipeline_version}, so any change produces a different key and the
    stale entry is simply never found again. *)

type cache

val pipeline_version : int
(** Version stamp of the indexing pipeline + payload layout. Baked into
    every {!key}, and doubles as the on-disk schema version, so bumping
    it orphans all previously cached results at once. *)

val create : unit -> cache
(** Empty cache with zeroed hit/miss counters. *)

val key :
  ?version:int ->
  source_digest:string ->
  defines:string list ->
  dialect:string ->
  unit ->
  string
(** [key ~source_digest ~defines ~dialect ()] is the 16-byte MD5 cache
    key. [source_digest] must cover every input file's name and contents
    (and anything else that selects what gets indexed); [defines] and
    [dialect] are the front-end configuration. [?version] defaults to
    {!pipeline_version} and exists for invalidation tests. *)

val find : cache -> string -> string option
(** Look up a payload, bumping the hit/miss counters. *)

val add : cache -> string -> string -> unit
(** [add c k payload] records a payload. Malformed entries (key not 16
    bytes, empty payload) are dropped and an existing key is never
    overwritten. *)

val merge : cache -> (string * string) list -> unit
(** Fold entries from another process or file into the table, with the
    same defensive rules as {!Codebase_db.Ted_cache.merge}: malformed
    entries dropped, never overwrite, hence idempotent. *)

val size : cache -> int
val hits : cache -> int
val misses : cache -> int

val save : cache -> string
(** Compressed artifact bytes — entries sorted by key, so identical
    contents serialise to identical bytes. *)

val load : string -> (cache, string) Result.t
(** Decode an artifact produced by {!save}; corruption, truncation and
    schema mismatches are [Error]s. *)

val save_file : string -> cache -> unit

val load_file : string -> cache
(** [load_file path] reads a cache file; a missing or corrupt file
    yields an empty cache (a cold start, never an error). *)

val stats : cache -> string
(** One-line entry/hit/miss summary. *)
