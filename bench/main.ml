(* Reproduction harness: regenerates every table and figure of the
   paper's evaluation (Tables I-III, Figs. 4-15), plus the artifact
   checks (corpus verification, Codebase DB stats) and Bechamel timings
   of the computational kernels.

   Usage: main.exe [experiment ...]
   with experiments in {table1 table2 table3 fig4 ... fig15 verify db
   kernels all}. Default: all. *)

module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Report = Sv_report.Report
module Pmodel = Sv_perf.Pmodel
module Platform = Sv_perf.Platform
module Cluster = Sv_cluster.Cluster

let section title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 72 '=') title (String.make 72 '=')

(* ------------------------------------------------------------------ *)
(* machine-readable timings                                            *)
(* ------------------------------------------------------------------ *)

(* Experiments that measure something append an entry here; the run is
   written as one JSON object on exit (SV_BENCH_JSON, default
   BENCH_PR4.json), so the perf trajectory is tracked across PRs instead
   of only printed to stdout. *)
module J = Sv_jsonx.Jsonx

let bench_records : (string * J.t) list ref = ref []
let record name v = bench_records := (name, v) :: !bench_records

(* `--smoke` (stripped from argv before experiment lookup) shrinks the
   experiments that have a size knob — today the corpus study — to
   seconds, which is how @bench-smoke runs them. *)
let smoke_flag = ref false

let () =
  at_exit (fun () ->
      match List.rev !bench_records with
      | [] -> ()
      | entries -> (
          let path =
            Option.value ~default:"BENCH_PR10.json" (Sys.getenv_opt "SV_BENCH_JSON")
          in
          try
            let oc = open_out path in
            output_string oc (J.to_string ~indent:2 (J.Obj entries));
            output_string oc "\n";
            close_out oc;
            Printf.eprintf "[bench] wrote %s\n%!" path
          with Sys_error msg ->
            Printf.eprintf "[bench] warning: %s not written: %s\n%!" path msg))

(* ------------------------------------------------------------------ *)
(* corpora, indexed once                                               *)
(* ------------------------------------------------------------------ *)

(* Corpus indexing goes through the engine: SV_INDEX_CACHE persists
   indexing results across bench invocations, SV_JOBS fans cold misses
   over the worker pool. Neither changes a byte of any experiment. *)
let () =
  match Sys.getenv_opt "SV_INDEX_CACHE" with
  | None -> ()
  | Some path ->
      Sv_core.Index_engine.set_cache (Some (Sv_db.Index_cache.load_file path));
      at_exit (fun () ->
          match Sv_core.Index_engine.cache () with
          | Some c ->
              Sv_db.Index_cache.save_file path c;
              Printf.eprintf "[bench] %s (saved to %s)\n%!"
                (Sv_db.Index_cache.stats c) path
          | None -> ())

let index_all name cbs =
  let t0 = Unix.gettimeofday () in
  let jobs =
    match Sys.getenv_opt "SV_JOBS" with
    | Some _ -> Sv_sched.Sched.default_jobs ()
    | None -> 1
  in
  let ixs = Sv_core.Index_engine.index_many ~jobs cbs in
  Printf.eprintf "[bench] indexed %s (%d models) in %.1fs\n%!" name (List.length ixs)
    (Unix.gettimeofday () -. t0);
  ixs

let tealeaf = lazy (index_all "TeaLeaf" (Sv_corpus.Tealeaf.all ()))
let cloverleaf = lazy (index_all "CloverLeaf" (Sv_corpus.Cloverleaf.all ()))
let minibude = lazy (index_all "miniBUDE" (Sv_corpus.Minibude.all ()))
let babelstream = lazy (index_all "BabelStream" (Sv_corpus.Babelstream.all ()))
let babelstream_f = lazy (index_all "BabelStream-Fortran" (Sv_corpus.Babelstream_f.all ()))

let find_model ixs id = List.find (fun (c : Pipeline.indexed) -> c.ix_model = id) ixs

(* ------------------------------------------------------------------ *)
(* tables                                                              *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table I: codebase summarisation metrics";
  let module C = Sv_metrics.Catalog in
  let rows =
    List.map
      (fun (e : C.entry) ->
        [
          e.C.name;
          C.measure_name e.C.measure;
          String.concat ", "
            (List.map C.domain_name e.C.domains
            @ if e.C.language_agnostic then [ "Language agnostic" ] else []);
          String.concat " " e.C.variants;
        ])
      C.all
  in
  print_string (Report.table ~headers:[ "Metric"; "Measure"; "Domain"; "Variants" ] ~rows)

let table2 () =
  section "Table II: mini-apps and models";
  let row app ty models = [ app; ty; String.concat ", " models ] in
  let c_models =
    List.filter_map
      (fun id -> Option.map Sv_corpus.Emit.model_name (Sv_corpus.Emit.gen_for id))
      Sv_corpus.Emit.all_ids
  in
  let f_models = List.map Sv_corpus.Babelstream_f.model_name Sv_corpus.Babelstream_f.model_ids in
  print_string
    (Report.table
       ~headers:[ "Mini-app"; "Type"; "Models" ]
       ~rows:
         [
           row "BabelStream Fortran" "Memory BW" f_models;
           row "BabelStream C++" "Memory BW" c_models;
           row "miniBUDE" "Compute" c_models;
           row "TeaLeaf" "Structured grid" c_models;
           row "CloverLeaf" "Memory BW" c_models;
         ])

let table3 () =
  section "Table III: platform details for Phi benchmarks";
  let rows =
    List.map
      (fun (p : Platform.t) ->
        [
          p.Platform.vendor;
          p.Platform.name;
          p.Platform.abbr;
          p.Platform.topology;
          Printf.sprintf "%.0f GB/s" p.Platform.peak_bw_gbs;
          Printf.sprintf "%.0f GFLOP/s" p.Platform.peak_gflops;
        ])
      Platform.all
  in
  print_string
    (Report.table
       ~headers:[ "Vendor"; "Name"; "Abbr."; "Topology"; "Peak BW"; "Peak FP64" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* clustering figures                                                  *)
(* ------------------------------------------------------------------ *)

let clustering_figure ~title ~metrics ixs =
  section title;
  List.iter
    (fun metric ->
      let m, d = Tbmd.dendrogram metric ixs in
      Printf.printf "\n--- %s ---\n" (Tbmd.metric_label metric);
      (match metric with
      | Tbmd.SLOC | Tbmd.LLOC ->
          (* absolute metrics: also show the raw values the clustering uses *)
          List.iter
            (fun (c : Pipeline.indexed) ->
              match Tbmd.absolute metric c with
              | Some v -> Printf.printf "  %-18s %d\n" c.ix_model_name v
              | None -> ())
            ixs
      | _ -> ());
      print_string (Report.dendrogram ~labels:m.Sv_cluster.Cluster.labels d))
    metrics

let fig4 () =
  let ixs = Lazy.force tealeaf in
  section "Fig. 4: TeaLeaf model clustering, using T_sem";
  let m, d = Tbmd.dendrogram Tbmd.TSem ixs in
  print_string
    (Report.heatmap
       ~row_labels:(Array.to_list m.Sv_cluster.Cluster.labels)
       ~col_labels:(Array.to_list m.Sv_cluster.Cluster.labels)
       m.Sv_cluster.Cluster.data);
  print_string (Report.dendrogram ~labels:m.Sv_cluster.Cluster.labels d)

let fig5 () =
  clustering_figure
    ~title:"Fig. 5: TeaLeaf model clustering dendrograms (6 metrics)"
    ~metrics:[ Tbmd.LLOC; Tbmd.SLOC; Tbmd.Source; Tbmd.TSrc; Tbmd.TSem; Tbmd.TIr ]
    (Lazy.force tealeaf)

let fig6 () =
  clustering_figure
    ~title:"Fig. 6: BabelStream Fortran model clustering dendrograms (6 metrics)"
    ~metrics:[ Tbmd.LLOC; Tbmd.SLOC; Tbmd.Source; Tbmd.TSrc; Tbmd.TSem; Tbmd.TIr ]
    (Lazy.force babelstream_f)

(* ------------------------------------------------------------------ *)
(* divergence-from-serial heatmaps (Figs. 7-8)                          *)
(* ------------------------------------------------------------------ *)

let divergence_heatmap ~title ixs =
  section title;
  let serial = find_model ixs "serial" in
  let models = List.filter (fun (c : Pipeline.indexed) -> c.ix_model <> "serial") ixs in
  let columns =
    [
      ("SLOC", (Tbmd.SLOC, Tbmd.Base));
      ("LLOC", (Tbmd.LLOC, Tbmd.Base));
      ("Source", (Tbmd.Source, Tbmd.Base));
      ("Source+pp", (Tbmd.Source, Tbmd.PP));
      ("T_src", (Tbmd.TSrc, Tbmd.Base));
      ("T_src+cov", (Tbmd.TSrc, Tbmd.Cov));
      ("T_sem", (Tbmd.TSem, Tbmd.Base));
      ("T_sem+i", (Tbmd.TSemI, Tbmd.Base));
      ("T_sem+cov", (Tbmd.TSem, Tbmd.Cov));
      ("T_ir", (Tbmd.TIr, Tbmd.Base));
    ]
  in
  let data =
    Array.of_list
      (List.map
         (fun c ->
           Array.of_list
             (List.map
                (fun (_, (m, v)) -> Tbmd.divergence ~variant:v m serial c)
                columns))
         models)
  in
  print_string
    (Report.heatmap
       ~row_labels:(List.map (fun (c : Pipeline.indexed) -> c.ix_model_name) models)
       ~col_labels:(List.map fst columns) data);
  (* the serial-vs-itself sanity column of §V-C *)
  let self =
    List.map (fun (_, (m, v)) -> Tbmd.divergence ~variant:v m serial serial) columns
  in
  Printf.printf "serial vs itself (all metrics): [%s]\n"
    (String.concat "; " (List.map (Printf.sprintf "%.2f") self))

let fig7 () =
  divergence_heatmap
    ~title:"Fig. 7: miniBUDE models, divergence from serial (0..1)"
    (Lazy.force minibude)

let fig8 () =
  divergence_heatmap
    ~title:"Fig. 8: CloverLeaf models, divergence from serial (0..1)"
    (Lazy.force cloverleaf)

(* ------------------------------------------------------------------ *)
(* migration (Figs. 9-10)                                               *)
(* ------------------------------------------------------------------ *)

let offload_ids = [ "omp-target"; "cuda"; "hip"; "sycl-usm"; "sycl-acc"; "kokkos" ]

let migration_figure ~title ~base_id () =
  let ixs = Lazy.force tealeaf in
  section title;
  let base = find_model ixs base_id in
  let targets =
    List.filter
      (fun (c : Pipeline.indexed) ->
        List.mem c.ix_model offload_ids && c.ix_model <> base_id)
      ixs
  in
  let metrics =
    [ (Tbmd.Source, Tbmd.Base); (Tbmd.TSrc, Tbmd.Base); (Tbmd.TSem, Tbmd.Base) ]
  in
  let rows = Sv_core.Migration.divergence_from ~base ~targets ~metrics in
  List.iter
    (fun (r : Sv_core.Migration.row) ->
      Printf.printf "\n%s:\n" r.Sv_core.Migration.target;
      print_string (Report.bars r.Sv_core.Migration.values))
    rows;
  (match Sv_core.Migration.cheapest ~metric:Tbmd.TSem rows with
  | Some (m, v) -> Printf.printf "\nlowest T_sem divergence from %s: %s (%.3f)\n" base_id m v
  | None -> ())

let fig9 = migration_figure ~title:"Fig. 9: model divergence from the serial TeaLeaf" ~base_id:"serial"
let fig10 = migration_figure ~title:"Fig. 10: model divergence from the CUDA TeaLeaf" ~base_id:"cuda"

(* ------------------------------------------------------------------ *)
(* performance portability (Figs. 11-15)                                *)
(* ------------------------------------------------------------------ *)

let cascade_figure ~title ~app () =
  section title;
  print_string
    (Report.cascade
       (Sv_perf.Cascade.cascade ~app ~models:Pmodel.all_parallel
          ~platforms:Platform.all))

let fig11 = cascade_figure ~title:"Fig. 11: TeaLeaf cascade plot (6 platforms)" ~app:Pmodel.tealeaf
let fig12 = cascade_figure ~title:"Fig. 12: CloverLeaf cascade plot (6 platforms)" ~app:Pmodel.cloverleaf

let navigation_figure ~title ~app ixs_lazy () =
  section title;
  let ixs = Lazy.force ixs_lazy in
  let serial = find_model ixs "serial" in
  let pts =
    Sv_core.Navigation.points ~app ~serial
      ~codebases:(List.filter (fun (c : Pipeline.indexed) -> c.ix_model <> "serial") ixs)
      ~platforms:Platform.all
  in
  print_string (Sv_core.Navigation.render pts)

let fig13 =
  navigation_figure ~title:"Fig. 13: CloverLeaf navigation chart (Phi vs TBMD)"
    ~app:Pmodel.cloverleaf cloverleaf

let fig14 =
  navigation_figure ~title:"Fig. 14: TeaLeaf navigation chart (Phi vs TBMD)"
    ~app:Pmodel.tealeaf tealeaf

let fig15 () =
  section "Fig. 15: navigation chart scenario — escaping an unportable model";
  let ixs = Lazy.force tealeaf in
  let serial = find_model ixs "serial" in
  let stages =
    Sv_core.Navigation.cuda_scenario ~app:Pmodel.tealeaf ~serial
      ~codebases:(List.filter (fun (c : Pipeline.indexed) -> c.ix_model <> "serial") ixs)
  in
  List.iter
    (fun (s : Sv_core.Navigation.scenario_stage) ->
      Printf.printf "stage %d (%s): %s\n" s.Sv_core.Navigation.stage
        (String.concat "+" s.Sv_core.Navigation.platform_abbrs)
        s.Sv_core.Navigation.description;
      Printf.printf "  Phi(CUDA) = %.3f" s.Sv_core.Navigation.phi_cuda;
      (match s.Sv_core.Navigation.best_alternative with
      | Some (m, v) -> Printf.printf "; best alternative: %s (Phi = %.3f)\n" m v
      | None -> print_newline ()))
    stages;
  (* the stage-3 chart over the two-GPU platform set *)
  let pts =
    Sv_core.Navigation.points ~app:Pmodel.tealeaf ~serial
      ~codebases:(List.filter (fun (c : Pipeline.indexed) -> c.ix_model <> "serial") ixs)
      ~platforms:[ Platform.h100; Platform.mi250x ]
  in
  print_string (Sv_core.Navigation.render pts)

(* ------------------------------------------------------------------ *)
(* artifact checks                                                     *)
(* ------------------------------------------------------------------ *)

let verify () =
  section "Artifact check: built-in verification of every port";
  let check name ixs =
    List.iter
      (fun (c : Pipeline.indexed) ->
        let ok, steps =
          match c.Pipeline.ix_verification with
          | Some v -> (v.Pipeline.v_ok, v.Pipeline.v_steps)
          | None -> (false, 0)
        in
        Printf.printf "  %-22s %-14s %-6s (%d steps)\n" name c.ix_model
          (if ok then "PASSED" else "FAILED")
          steps)
      ixs
  in
  check "BabelStream (C++)" (Lazy.force babelstream);
  check "BabelStream (Fortran)" (Lazy.force babelstream_f);
  check "miniBUDE" (Lazy.force minibude);
  check "TeaLeaf" (Lazy.force tealeaf);
  check "CloverLeaf" (Lazy.force cloverleaf)

let db () =
  section "Artifact check: Codebase DB round-trip and compression";
  List.iter
    (fun (c : Pipeline.indexed) ->
      let artifact = Pipeline.to_db c in
      let bytes = Sv_db.Codebase_db.save artifact in
      let reread = Sv_db.Codebase_db.load bytes in
      let ok =
        match reread with
        | Ok db -> db = artifact
        | Error _ -> false
      in
      Printf.printf "  %s  round-trip:%s\n" (Sv_db.Codebase_db.stats artifact)
        (if ok then "OK" else "FAILED"))
    (Lazy.force tealeaf)

(* ------------------------------------------------------------------ *)
(* kernel timings (bechamel)                                           *)
(* ------------------------------------------------------------------ *)

(* The engine tentpole: one full divergence matrix, timed serial, then
   fanned over the worker pool, then against a cold and a warm
   persistent TED cache — with a cross-check that every configuration
   produces the identical matrix. Under SV_FAULT (or `sv --fault`) the
   parallel run doubles as a chaos run: workers crash, hang and corrupt
   frames at the injected rates, the pool recovers, and the
   byte-identity check still must hold. *)
let ted_engine () =
  section "TED engine: serial vs parallel vs cached (BabelStream, T_sem)";
  let fault = Sv_sched.Sched.Fault.active () in
  let render (m : Cluster.matrix) =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun row ->
              String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
            m.Cluster.data))
  in
  let ixs = Lazy.force babelstream in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run ~jobs ~cache () =
    (* each configuration must recompute from scratch (modulo the TED
       cache under test), so the in-process memo is dropped every time *)
    Tbmd.clear_memo ();
    Tbmd.set_jobs jobs;
    Tbmd.set_ted_cache cache;
    Fun.protect
      ~finally:(fun () ->
        Tbmd.set_jobs 1;
        Tbmd.set_ted_cache None)
      (fun () -> Tbmd.matrix Tbmd.TSem ixs)
  in
  let serial_m, t_serial = wall (run ~jobs:1 ~cache:None) in
  let jobs = Sv_sched.Sched.default_jobs () in
  let par_m, t_par = wall (run ~jobs ~cache:None) in
  let pool = Sv_sched.Sched.last_stats () in
  let cache = Sv_db.Codebase_db.Ted_cache.create () in
  let cold_m, t_cold = wall (run ~jobs:1 ~cache:(Some cache)) in
  let warm_m, t_warm = wall (run ~jobs:1 ~cache:(Some cache)) in
  let same (a : Cluster.matrix) (b : Cluster.matrix) = a.Cluster.data = b.Cluster.data in
  Printf.printf "  %-24s %9.3fs\n" "serial (1 worker)" t_serial;
  Printf.printf "  %-24s %9.3fs  (%d workers, %.2fx)\n" "parallel" t_par jobs
    (t_serial /. Float.max 1e-9 t_par);
  Printf.printf "  %-24s %9.3fs\n" "cold TED cache" t_cold;
  Printf.printf "  %-24s %9.3fs  (%.2fx vs serial; %s)\n" "warm TED cache" t_warm
    (t_serial /. Float.max 1e-9 t_warm)
    (Sv_db.Codebase_db.Ted_cache.stats cache);
  if not (Sv_sched.Sched.Fault.is_none fault) then
    Printf.printf "  fault injection %s: %s\n"
      (Sv_sched.Sched.Fault.to_string fault)
      (Sv_sched.Sched.stats_to_string pool);
  let identical =
    same serial_m par_m && same serial_m cold_m && same serial_m warm_m
    && render serial_m = render par_m
  in
  Printf.printf "  matrices identical across configurations: %s\n"
    (if identical then "OK" else "MISMATCH");
  record "ted-engine"
    (J.Obj
       [
         ("serial_s", J.Float t_serial);
         ("parallel_s", J.Float t_par);
         ("jobs", J.Int jobs);
         ("cold_cache_s", J.Float t_cold);
         ("warm_cache_s", J.Float t_warm);
         ("warm_speedup_vs_serial", J.Float (t_serial /. Float.max 1e-9 t_warm));
         ("identical", J.Bool identical);
       ])

(* The PR 4 tentpole: run the indexing front-end over a BabelStream
   subset serially, through the worker pool, and against a cold and a
   warm persistent index cache, asserting every configuration yields
   byte-identical database artifacts. This is the @bench-smoke contract:
   a mismatch exits nonzero. SV_PROP_ITERS scales the model count the
   same way it scales the property suites. *)
let index_engine () =
  section "Index engine: serial vs parallel vs cached (BabelStream)";
  let all = Sv_corpus.Babelstream.all () in
  let prop_iters =
    match Sys.getenv_opt "SV_PROP_ITERS" with
    | Some s -> ( try int_of_string s with Failure _ -> 500)
    | None -> 500
  in
  let n = max 2 (min (List.length all) (prop_iters / 100)) in
  let cbs = List.filteri (fun i _ -> i < n) all in
  let artifact_bytes ixs =
    String.concat ""
      (List.map (fun ix -> Sv_db.Codebase_db.save (Pipeline.to_db ix)) ixs)
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run ~jobs ~cache () =
    Sv_core.Index_engine.set_cache cache;
    Fun.protect
      ~finally:(fun () -> Sv_core.Index_engine.set_cache None)
      (fun () -> Sv_core.Index_engine.index_many ~jobs cbs)
  in
  let serial_ixs, t_serial = wall (run ~jobs:1 ~cache:None) in
  let jobs = max 2 (Sv_sched.Sched.default_jobs ()) in
  let par_ixs, t_par = wall (run ~jobs ~cache:None) in
  let pool = Sv_sched.Sched.last_stats () in
  let cache = Sv_db.Index_cache.create () in
  let cold_ixs, t_cold = wall (run ~jobs:1 ~cache:(Some cache)) in
  let warm_ixs, t_warm = wall (run ~jobs:1 ~cache:(Some cache)) in
  let sb = artifact_bytes serial_ixs in
  let identical =
    artifact_bytes par_ixs = sb
    && artifact_bytes cold_ixs = sb
    && artifact_bytes warm_ixs = sb
  in
  (* push the freshly indexed trees through the hash-consing layer (via a
     small distance matrix) and report the structure-sharing rate *)
  let (_ : Cluster.matrix) = Tbmd.matrix Tbmd.TSem serial_ixs in
  let istats = Sv_metrics.Divergence.intern_stats () in
  let warm_speedup = t_cold /. Float.max 1e-9 t_warm in
  Printf.printf "  %-26s %9.3fs  (%d models)\n" "cold index, serial" t_serial n;
  Printf.printf "  %-26s %9.3fs  (%d workers, %.2fx)\n" "cold index, parallel"
    t_par jobs
    (t_serial /. Float.max 1e-9 t_par);
  Printf.printf "  %-26s %9.3fs\n" "cold index cache" t_cold;
  Printf.printf "  %-26s %9.3fs  (%.2fx vs cold; %s)\n" "warm index cache"
    t_warm warm_speedup
    (Sv_db.Index_cache.stats cache);
  Printf.printf "  pool: %s\n" (Sv_sched.Sched.stats_to_string pool);
  let open Sv_tree.Hashcons in
  let shared =
    100.0 *. float_of_int istats.hits
    /. Float.max 1.0 (float_of_int (istats.hits + istats.misses))
  in
  Printf.printf
    "  intern table: %d distinct subtrees, %d labels, %d hits / %d misses \
     (%.1f%% shared)\n"
    istats.distinct istats.labels istats.hits istats.misses shared;
  Printf.printf "  artifacts byte-identical across configurations: %s\n"
    (if identical then "OK" else "MISMATCH");
  record "index-engine"
    (J.Obj
       [
         ("models", J.Int n);
         ("cold_serial_s", J.Float t_serial);
         ("cold_parallel_s", J.Float t_par);
         ("jobs", J.Int jobs);
         ("cold_cache_s", J.Float t_cold);
         ("warm_cache_s", J.Float t_warm);
         ("warm_speedup_vs_cold", J.Float warm_speedup);
         ("index_cache_hits", J.Int (Sv_db.Index_cache.hits cache));
         ("index_cache_misses", J.Int (Sv_db.Index_cache.misses cache));
         ("intern_distinct", J.Int istats.distinct);
         ("intern_hits", J.Int istats.hits);
         ("intern_misses", J.Int istats.misses);
         ("identical", J.Bool identical);
       ]);
  if not identical then begin
    Printf.eprintf "[bench] index-engine: artifact mismatch\n%!";
    exit 1
  end

(* The PR 5 tentpole: the flat-array TED kernel against the pointer-tree
   Zhang–Shasha reference. One full T_sem matrix per kernel (the in-process
   memo dropped in between, algorithms alternated through the public
   switch), rendered to text and compared byte-for-byte — a mismatch exits
   nonzero, which makes this part of the @bench-smoke contract. A
   single-pair microbenchmark isolates the kernels from indexing noise,
   and a bounded sweep exercises the pruning cascade; both the timings and
   the prune counters land in the JSON report. *)
let ted_core () =
  section "TED core: flat kernel vs Zhang\xe2\x80\x93Shasha (BabelStream, T_sem)";
  let module T = Sv_perf.Telemetry in
  let module Div = Sv_metrics.Divergence in
  let render (m : Cluster.matrix) =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun row ->
              String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
            m.Cluster.data))
  in
  let ixs = Lazy.force babelstream in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let run algo () =
    Div.set_ted_algo algo;
    Tbmd.clear_memo ();
    Fun.protect
      ~finally:(fun () -> Div.set_ted_algo `Flat)
      (fun () -> Tbmd.matrix Tbmd.TSem ixs)
  in
  (* one untimed warm-up so indexing, canonisation and flat compilation
     never pollute either timed run *)
  let (_ : Cluster.matrix) = run `Zs () in
  let (_ : Cluster.matrix) = run `Flat () in
  let zs_m, t_zs = wall (run `Zs) in
  T.reset_ted ();
  let flat_m, t_flat = wall (run `Flat) in
  let mtx = T.ted_snapshot () in
  let n = Array.length zs_m.Cluster.labels in
  let matrix_speedup = t_zs /. Float.max 1e-9 t_flat in
  let matrix_identical = render zs_m = render flat_m in
  Printf.printf "  %-28s %9.3fs  (%d models, %d pairs)\n" "matrix, zs kernel"
    t_zs n
    (n * (n - 1) / 2);
  Printf.printf "  %-28s %9.3fs  (%.2fx)\n" "matrix, flat kernel" t_flat
    matrix_speedup;
  Printf.printf "  matrices byte-identical: %s\n"
    (if matrix_identical then "OK" else "MISMATCH");
  Printf.printf "  %s\n" (T.ted_to_string mtx);
  (* single-pair microbenchmark: the largest cross-model unit pair,
     repeated until stable, so the two kernels are compared with zero
     indexing or matrix bookkeeping in the loop *)
  let u1 = (List.hd (List.hd ixs).Pipeline.ix_units).Pipeline.u_t_sem in
  let u2 =
    (List.hd (List.nth ixs 1).Pipeline.ix_units).Pipeline.u_t_sem
  in
  let time_pair algo =
    Div.set_ted_algo algo;
    Fun.protect
      ~finally:(fun () -> Div.set_ted_algo `Flat)
      (fun () ->
        let d = Div.tree_distance u1 u2 in
        let t0 = Unix.gettimeofday () in
        let once = Div.tree_distance u1 u2 in
        let t_once = Unix.gettimeofday () -. t0 in
        assert (once = d);
        let reps =
          max 5 (min 500 (int_of_float (0.3 /. Float.max 1e-6 t_once)))
        in
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps do
          ignore (Div.tree_distance u1 u2)
        done;
        (d, (Unix.gettimeofday () -. t0) /. float_of_int reps, reps))
  in
  let d_zs, pair_zs_s, reps_zs = time_pair `Zs in
  let d_flat, pair_flat_s, reps_flat = time_pair `Flat in
  let pair_speedup = pair_zs_s /. Float.max 1e-9 pair_flat_s in
  let pair_identical = d_zs = d_flat in
  Printf.printf "  %-28s %9.0fns  (d=%d, %d reps)\n" "pair, zs kernel"
    (pair_zs_s *. 1e9) d_zs reps_zs;
  Printf.printf "  %-28s %9.0fns  (%.2fx, %d reps)\n" "pair, flat kernel"
    (pair_flat_s *. 1e9) pair_speedup reps_flat;
  Printf.printf "  pair distances identical: %s\n"
    (if pair_identical then "OK" else "MISMATCH");
  (* bounded sweep: every cross-model unit pair under a tight cutoff —
     most pairs are far apart, so the cascade should settle nearly all of
     them without a DP run *)
  let trees =
    List.concat_map
      (fun (c : Pipeline.indexed) ->
        List.map (fun u -> u.Pipeline.u_t_sem) c.Pipeline.ix_units)
      ixs
  in
  let tarr = Array.of_list trees in
  let nt = Array.length tarr in
  T.reset_ted ();
  let bounded_total = ref 0 and bounded_kept = ref 0 in
  for i = 0 to nt - 1 do
    for j = i + 1 to nt - 1 do
      incr bounded_total;
      match Div.tree_distance_bounded ~cutoff:8 tarr.(i) tarr.(j) with
      | Some _ -> incr bounded_kept
      | None -> ()
    done
  done;
  let bnd = T.ted_snapshot () in
  Printf.printf
    "  bounded sweep (cutoff 8): %d pairs, %d within cutoff, %d pruned \
     without DP\n"
    !bounded_total !bounded_kept (T.ted_pruned bnd);
  Printf.printf "  %s\n" (T.ted_to_string bnd);
  record "ted-core"
    (J.Obj
       ([
          ("models", J.Int n);
          ("matrix_zs_s", J.Float t_zs);
          ("matrix_flat_s", J.Float t_flat);
          ("matrix_speedup", J.Float matrix_speedup);
          ("pair_zs_ns", J.Float (pair_zs_s *. 1e9));
          ("pair_flat_ns", J.Float (pair_flat_s *. 1e9));
          ("pair_speedup", J.Float pair_speedup);
          ("identical", J.Bool (matrix_identical && pair_identical));
          ("bounded_pairs", J.Int !bounded_total);
          ("bounded_within_cutoff", J.Int !bounded_kept);
          ("bounded_pruned_without_dp", J.Int (T.ted_pruned bnd));
        ]
       @
       let counters prefix (t : T.ted) =
         [
           (prefix ^ "equal_prunes", J.Int t.T.equal_prunes);
           (prefix ^ "size_prunes", J.Int t.T.size_prunes);
           (prefix ^ "hist_prunes", J.Int t.T.hist_prunes);
           (prefix ^ "cutoff_abandons", J.Int t.T.cutoff_abandons);
           (prefix ^ "dp_runs", J.Int t.T.dp_runs);
           (prefix ^ "flat_compiles", J.Int t.T.flat_compiles);
           (prefix ^ "scratch_grows", J.Int t.T.scratch_grows);
           (prefix ^ "strategy_left", J.Int t.T.strategy_left);
           (prefix ^ "strategy_right", J.Int t.T.strategy_right);
         ]
       in
       counters "matrix_" mtx @ counters "bounded_" bnd));
  if not (matrix_identical && pair_identical) then begin
    Printf.eprintf "[bench] ted-core: flat/zs mismatch\n%!";
    exit 1
  end

let kernels () =
  section "Kernel timings (Bechamel)";
  let open Bechamel in
  let ixs = Lazy.force tealeaf in
  let serial = find_model ixs "serial" in
  let sycl = find_model ixs "sycl-usm" in
  let u1 = List.hd serial.ix_units and u2 = List.hd sycl.ix_units in
  let src = List.assoc "tea_serial.cpp" ((List.hd (Sv_corpus.Tealeaf.all ())).files) in
  let tests =
    [
      Test.make ~name:"ted/t_sem(serial,sycl)" (Staged.stage (fun () ->
          Sv_metrics.Divergence.tree_distance u1.Pipeline.u_t_sem u2.Pipeline.u_t_sem));
      Test.make ~name:"diff/source(serial,sycl)" (Staged.stage (fun () ->
          Sv_metrics.Divergence.source_distance u1.Pipeline.u_lines u2.Pipeline.u_lines));
      Test.make ~name:"lex+parse/tealeaf-serial" (Staged.stage (fun () ->
          Sv_lang_c.Parser.parse ~file:"tea.cpp" src));
      Test.make ~name:"lower/tealeaf-serial" (Staged.stage (fun () ->
          Sv_lang_c.Lower.lower ~file:"tea.cpp"
            [ Sv_lang_c.Parser.parse ~file:"tea.cpp" src ]));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    Benchmark.all cfg instances test
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          let stats =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
              Toolkit.Instance.monotonic_clock raw
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "  %-36s %12.0f ns/run\n" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n" name)
        results)
    tests;
  (* wall-clock engine comparison rides along with the kernel timings *)
  ted_engine ()

(* ------------------------------------------------------------------ *)
(* ablations (design choices called out in DESIGN.md / the paper)      *)
(* ------------------------------------------------------------------ *)

(* §III-C: the match function trades exactness for speed. How tight is
   the matched upper bound, and how much faster is it? *)
let ablation_match () =
  section "Ablation: whole-tree TED vs matched decomposition (the paper's `match`)";
  let ixs = Lazy.force tealeaf in
  let serial = find_model ixs "serial" in
  let su = (List.hd serial.ix_units).Pipeline.u_t_sem in
  Printf.printf "%-18s %8s %8s %8s %9s %9s\n" "model" "exact" "matched" "ratio"
    "t_exact" "t_match";
  List.iter
    (fun (c : Pipeline.indexed) ->
      if c.ix_model <> "serial" then begin
        let t = (List.hd c.ix_units).Pipeline.u_t_sem in
        let time f =
          let t0 = Sys.time () in
          let v = f () in
          (v, Sys.time () -. t0)
        in
        let exact, te = time (fun () -> Sv_metrics.Divergence.tree_distance su t) in
        let matched, tm =
          time (fun () -> Sv_metrics.Divergence.tree_distance_matched su t)
        in
        Printf.printf "%-18s %8d %8d %8.3f %8.2fs %8.2fs\n" c.ix_model_name exact
          matched
          (float_of_int matched /. float_of_int (max 1 exact))
          te tm
      end)
    ixs

(* §III-B: unit costs vs weighted operations ("adding new code may have a
   different productivity impact than removing existing code"). *)
let ablation_weights () =
  section "Ablation: unit-cost vs insertion-weighted TED";
  let ixs = Lazy.force babelstream in
  let serial = find_model ixs "serial" in
  let su = (List.hd serial.ix_units).Pipeline.u_t_sem in
  let weighted =
    {
      Sv_tree.Ted.delete = (fun _ -> 1);
      insert = (fun _ -> 2);  (* writing new code costs double *)
      relabel =
        (fun a b -> if Sv_tree.Label.equal a b then 0 else 2);
    }
  in
  Printf.printf "%-18s %10s %10s\n" "model" "unit" "ins-weighted";
  List.iter
    (fun (c : Pipeline.indexed) ->
      if c.ix_model <> "serial" then begin
        let t = (List.hd c.ix_units).Pipeline.u_t_sem in
        let unit_d = Sv_metrics.Divergence.tree_distance su t in
        let w =
          Sv_tree.Ted.distance ~costs:weighted ~eq:Sv_tree.Label.equal su t
        in
        Printf.printf "%-18s %10d %10d\n" c.ix_model_name unit_d w
      end)
    ixs

(* Fig. 4 uses complete linkage; how sensitive is the clustering? *)
let ablation_linkage () =
  section "Ablation: dendrogram linkage (complete vs average vs single)";
  let ixs = Lazy.force babelstream in
  List.iter
    (fun (name, linkage) ->
      Printf.printf "\n--- %s linkage, T_sem ---\n" name;
      let m, d = Tbmd.dendrogram ~linkage Tbmd.TSem ixs in
      print_string (Report.dendrogram ~labels:m.Sv_cluster.Cluster.labels d))
    [
      ("complete", Sv_cluster.Cluster.Complete);
      ("average", Sv_cluster.Cluster.Average);
      ("single", Sv_cluster.Cluster.Single);
    ]

(* §III-A's secondary metrics over the corpus *)
let structure () =
  section "Secondary metrics: module coupling and tree complexity (§III-A)";
  let ixs = Lazy.force tealeaf in
  List.iter
    (fun (c : Pipeline.indexed) ->
      let u = List.hd c.ix_units in
      let coupling =
        Sv_metrics.Structure.coupling_of_deps ~root:u.Pipeline.u_file
          [ (u.Pipeline.u_file, u.Pipeline.u_deps) ]
      in
      let cx = Sv_metrics.Structure.complexity u.Pipeline.u_t_sem in
      Printf.printf "  %-18s deps=%d coupling=%.2f  T_sem %s\n" c.ix_model_name
        coupling.Sv_metrics.Structure.edges
        coupling.Sv_metrics.Structure.coupling_ratio
        (Format.asprintf "%a" Sv_metrics.Structure.pp_complexity cx))
    ixs

(* RAJA: mentioned in the paper's introduction next to Kokkos but outside
   its Table II evaluation — included here as an extension model. *)
let extension_raja () =
  section "Extension: the RAJA model (beyond the paper's Table II set)";
  let cbs =
    List.filter_map
      (fun m -> Sv_corpus.Babelstream.codebase ~model:m)
      Sv_corpus.Emit.extended_ids
  in
  let ixs = List.map Pipeline.index cbs in
  let serial = find_model ixs "serial" in
  Printf.printf "divergence from serial (BabelStream):\n";
  List.iter
    (fun (c : Pipeline.indexed) ->
      if c.ix_model <> "serial" then
        Printf.printf "  %-18s T_src %.3f  T_sem %.3f  T_sem+i %.3f\n" c.ix_model_name
          (Tbmd.divergence Tbmd.TSrc serial c)
          (Tbmd.divergence Tbmd.TSem serial c)
          (Tbmd.divergence Tbmd.TSemI serial c))
    ixs;
  Printf.printf "\nclustering with RAJA included (T_sem):\n";
  let m, d = Tbmd.dendrogram Tbmd.TSem ixs in
  print_string (Report.dendrogram ~labels:m.Sv_cluster.Cluster.labels d)

(* The PR 7 tentpole: the resident `sv serve` daemon against the
   one-shot path, on the canonical BabelStream serial->omp compare.

   Cold baseline: the real CLI when SV_BIN is set (the bench-smoke rule
   sets it), a forked fresh-process evaluation otherwise — either way a
   process that must index both codebases from scratch. Warm: repeated
   requests against a resident daemon that answers from its decoded LRU.
   Then sustained throughput at 1/4/16 pipelined clients. Every daemon
   reply is compared byte-for-byte against the one-shot output; any
   mismatch exits nonzero (the @bench-smoke contract). *)
let serve_bench () =
  let module Engine = Sv_serve.Engine in
  let module Server = Sv_serve.Server in
  let module Client = Sv_serve.Client in
  let module P = Sv_serve.Protocol in
  section "Service layer: resident daemon vs one-shot (BabelStream serial->omp)";
  let req = P.Compare { app = "babelstream"; base = "serial"; target = "omp" } in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* one cold evaluation in a fresh process: (output, seconds) *)
  let cold_cli bin () =
    let cmd =
      String.concat " "
        (List.map Filename.quote
           [ bin; "compare"; "--app"; "babelstream"; "-b"; "serial"; "-t"; "omp" ])
    in
    let (out : string), dt =
      wall (fun () ->
          let ic = Unix.open_process_in cmd in
          let buf = Buffer.create 4096 in
          (try
             while true do
               Buffer.add_channel buf ic 4096
             done
           with End_of_file -> ());
          match Unix.close_process_in ic with
          | Unix.WEXITED 0 -> Buffer.contents buf
          | _ -> failwith ("command failed: " ^ cmd))
    in
    (out, dt)
  in
  let cold_fork () =
    let r, w = Unix.pipe () in
    flush stdout;
    flush stderr;
    let pid = Unix.fork () in
    if pid = 0 then begin
      Unix.close r;
      let (out : string), dt =
        wall (fun () ->
            let e =
              Engine.create
                { (Engine.default_config ()) with Engine.persist_every = 0 }
            in
            match Engine.handle e req with
            | P.Output { output; _ } -> output
            | _ -> "")
      in
      let oc = Unix.out_channel_of_descr w in
      output_value oc (out, dt);
      flush oc;
      Unix._exit 0
    end;
    Unix.close w;
    let ic = Unix.in_channel_of_descr r in
    let ((out, dt) : string * float) = input_value ic in
    close_in ic;
    ignore (Unix.waitpid [] pid);
    (out, dt)
  in
  let cold_once, cold_source =
    match Sys.getenv_opt "SV_BIN" with
    | Some bin when bin <> "" -> (cold_cli bin, "cli")
    | _ -> (cold_fork, "fork")
  in
  let cold_runs = List.init 3 (fun _ -> cold_once ()) in
  let expect = fst (List.hd cold_runs) in
  let t_cold =
    List.fold_left (fun acc (_, dt) -> Float.min acc dt) infinity cold_runs
  in
  let mismatch = ref false in
  let check out =
    if out <> expect then begin
      mismatch := true;
      Printf.eprintf "[bench] serve: daemon output differs from one-shot\n%!"
    end
  in
  List.iter (fun (out, _) -> check out) cold_runs;
  (* resident daemon on a private socket *)
  let socket = Filename.temp_file "sv_bench_serve" ".sock" in
  Sys.remove socket;
  flush stdout;
  flush stderr;
  let pid = Unix.fork () in
  if pid = 0 then begin
    (try
       Sv_perf.Telemetry.reset_serve ();
       Server.serve ~socket
         (Engine.create
            {
              (Engine.default_config ()) with
              Engine.high_water = 128;
              persist_every = 0;
            })
     with _ -> ());
    Unix._exit 0
  end;
  let connect () =
    let rec go n =
      match Client.connect ~socket ~timeout_s:120. () with
      | Ok c -> c
      | Error e ->
          if n = 0 then failwith ("daemon did not come up: " ^ e)
          else begin
            Unix.sleepf 0.05;
            go (n - 1)
          end
    in
    go 200
  in
  let c0 = connect () in
  let daemon_output c =
    match Client.call c req with
    | Ok (P.Output { output; _ }) -> output
    | Ok _ -> failwith "serve: unexpected reply class"
    | Error e -> failwith ("serve: " ^ e)
  in
  let out_cold, t_daemon_cold = wall (fun () -> daemon_output c0) in
  check out_cold;
  let warm_runs = 20 in
  let warm_times =
    List.init warm_runs (fun _ ->
        let out, dt = wall (fun () -> daemon_output c0) in
        check out;
        dt)
  in
  let t_warm_mean =
    List.fold_left ( +. ) 0.0 warm_times /. float_of_int warm_runs
  in
  let t_warm_min = List.fold_left Float.min infinity warm_times in
  let warm_speedup = t_cold /. Float.max 1e-9 t_warm_mean in
  (* sustained throughput: [total] warm compares pipelined over
     [clients] connections (the daemon services one request per loop
     iteration, so this measures service rate under interleaving, not
     parallel evaluation) *)
  let throughput clients =
    let total = 64 in
    let quota = total / clients in
    let conns = Array.init clients (fun _ -> connect ()) in
    let (), dt =
      wall (fun () ->
          Array.iter
            (fun c ->
              for _ = 1 to quota do
                match Client.send c req with
                | Ok () -> ()
                | Error e -> failwith ("serve: " ^ e)
              done)
            conns;
          Array.iter
            (fun c ->
              for _ = 1 to quota do
                match Client.recv c with
                | Ok (_, P.Output { output; _ }) -> check output
                | Ok (_, P.Overloaded _) -> failwith "serve: shed during bench"
                | Ok _ -> failwith "serve: unexpected reply class"
                | Error e -> failwith ("serve: " ^ e)
              done)
            conns)
    in
    Array.iter Client.close conns;
    float_of_int (quota * clients) /. Float.max 1e-9 dt
  in
  let rps_1 = throughput 1 in
  let rps_4 = throughput 4 in
  let rps_16 = throughput 16 in
  (match Client.call c0 P.Shutdown with
  | Ok P.Shutdown_ack -> ()
  | _ -> failwith "serve: shutdown failed");
  Client.close c0;
  ignore (Unix.waitpid [] pid);
  Printf.printf "  %-30s %9.3fs  (best of 3, %s)\n" "cold one-shot compare"
    t_cold cold_source;
  Printf.printf "  %-30s %9.3fs\n" "daemon first request (cold)" t_daemon_cold;
  Printf.printf "  %-30s %9.5fs  (min %.5fs over %d, %.1fx vs one-shot)\n"
    "daemon warm compare" t_warm_mean t_warm_min warm_runs warm_speedup;
  Printf.printf "  %-30s %9.1f rps\n" "throughput, 1 client" rps_1;
  Printf.printf "  %-30s %9.1f rps\n" "throughput, 4 clients" rps_4;
  Printf.printf "  %-30s %9.1f rps\n" "throughput, 16 clients" rps_16;
  Printf.printf "  daemon byte-identical to one-shot: %s\n"
    (if !mismatch then "MISMATCH" else "OK");
  record "serve"
    (J.Obj
       [
         ("pair", J.String "babelstream serial->omp");
         ("cold_oneshot_s", J.Float t_cold);
         ("cold_oneshot_source", J.String cold_source);
         ("daemon_cold_s", J.Float t_daemon_cold);
         ("daemon_warm_mean_s", J.Float t_warm_mean);
         ("daemon_warm_min_s", J.Float t_warm_min);
         ("warm_speedup_vs_cold_oneshot", J.Float warm_speedup);
         ("rps_1_client", J.Float rps_1);
         ("rps_4_clients", J.Float rps_4);
         ("rps_16_clients", J.Float rps_16);
         ("identical", J.Bool (not !mismatch));
       ]);
  if !mismatch then begin
    Printf.eprintf "[bench] serve: daemon/one-shot mismatch\n%!";
    exit 1
  end

(* The PR 8 tentpole: a statistical divergence study over a generated
   corpus. A seeded synthetic corpus (mutants of BabelStream ports plus
   grown kernel chains, every variant interpreter-verified at birth) is
   pushed through the whole engine stack — index (serial vs pool), T_sem
   matrix (serial vs pool vs cold/warm persistent TED cache) — with the
   usual byte-identity contract (mismatch exits nonzero), and the
   resulting distance distribution is characterised: moments and a
   histogram of all pairwise divergences, triangle-inequality tightness
   over sampled triples (normalised divergence is not guaranteed
   metric — violations are counted, not assumed away), the paper's
   clustering recipe over the variant matrix, and the stability of the
   distribution across generator seeds. `--smoke` runs ~60 variants;
   the full study defaults to 1000 (SV_GEN_VARIANTS overrides). *)
let corpus_study () =
  let module Gen = Sv_gen.Gen in
  let module Prng = Sv_util.Prng in
  section "Corpus study: generated variants through index -> TED matrix -> cluster";
  let smoke = !smoke_flag in
  let count =
    if smoke then 60
    else
      match Sys.getenv_opt "SV_GEN_VARIANTS" with
      | Some s -> ( match int_of_string_opt s with Some n when n >= 10 -> n | _ -> 1000)
      | None -> 1000
  in
  (* Smoke exercises both generator modes (mutants of full BabelStream
     ports have ~3x the tree size of grown kernels, so they are the
     expensive path). The full-scale study is grow-mode over the
     lean-scaffold models: the point at 1000+ programs is the geometry
     of the distance distribution — Sporring & Larsen's random-program
     shape — and grown kernel chains keep the n^2 exact-TED bill
     affordable on one core while mutation stays covered by smoke and
     the property suites. *)
  let spec =
    if smoke then { Gen.seed = 8; count; mode = Gen.Mixed; base = "babelstream" }
    else { Gen.seed = 8; count; mode = Gen.Grow; base = "serial,omp,stdpar,tbb,kokkos" }
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  (* generation (every variant re-verified through the interpreter) *)
  let variants, t_gen = wall (fun () -> Gen.generate spec) in
  let grown = List.length (List.filter (fun v -> v.Gen.v_kind = `Grown) variants) in
  Printf.printf "  %s: %d variants (%d grown, %d mutated) generated in %.1fs\n"
    (Gen.spec_string spec) count grown (count - grown) t_gen;
  List.iter
    (fun (op, n) -> Printf.printf "    %-18s %d\n" op n)
    (Gen.op_counts variants);
  let cbs = List.map (fun v -> v.Gen.v_cb) variants in
  (* index: serial vs pool, byte-identical artifacts *)
  let artifact_bytes ixs =
    String.concat ""
      (List.map (fun ix -> Sv_db.Codebase_db.save (Pipeline.to_db ix)) ixs)
  in
  let serial_ixs, t_ix_serial = wall (fun () -> Sv_core.Index_engine.index_many ~jobs:1 cbs) in
  let jobs = max 2 (Sv_sched.Sched.default_jobs ()) in
  let par_ixs, t_ix_par = wall (fun () -> Sv_core.Index_engine.index_many ~jobs cbs) in
  let index_identical = artifact_bytes par_ixs = artifact_bytes serial_ixs in
  Printf.printf "  %-30s %9.1fs\n" "index, serial" t_ix_serial;
  Printf.printf "  %-30s %9.1fs  (%d workers, %.2fx)\n" "index, parallel" t_ix_par
    jobs
    (t_ix_serial /. Float.max 1e-9 t_ix_par);
  Printf.printf "  index artifacts byte-identical: %s\n"
    (if index_identical then "OK" else "MISMATCH");
  let ixs = serial_ixs in
  (* T_sem matrix: serial vs pool vs cold/warm persistent TED cache *)
  let render (m : Cluster.matrix) =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun row ->
              String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
            m.Cluster.data))
  in
  let run_matrix ~jobs ~cache () =
    Tbmd.clear_memo ();
    Tbmd.set_jobs jobs;
    Tbmd.set_ted_cache cache;
    Fun.protect
      ~finally:(fun () ->
        Tbmd.set_jobs 1;
        Tbmd.set_ted_cache None)
      (fun () -> Tbmd.matrix Tbmd.TSem ixs)
  in
  let serial_m, t_m_serial = wall (run_matrix ~jobs:1 ~cache:None) in
  (* the parallel run doubles as the cold-cache run: workers ship their
     TED entries back, so it both checks pool identity and leaves a warm
     persistent cache for the third configuration *)
  let cache = Sv_db.Codebase_db.Ted_cache.create () in
  let par_m, t_m_par = wall (run_matrix ~jobs ~cache:(Some cache)) in
  let warm_m, t_m_warm = wall (run_matrix ~jobs:1 ~cache:(Some cache)) in
  let sr = render serial_m in
  let matrix_identical = render par_m = sr && render warm_m = sr in
  Printf.printf "  %-30s %9.1fs  (%d^2 divergences)\n" "matrix, serial" t_m_serial
    count;
  Printf.printf "  %-30s %9.1fs  (%d workers, cold TED cache)\n"
    "matrix, parallel" t_m_par jobs;
  Printf.printf "  %-30s %9.1fs  (%s)\n" "matrix, warm TED cache" t_m_warm
    (Sv_db.Codebase_db.Ted_cache.stats cache);
  Printf.printf "  matrices byte-identical: %s\n"
    (if matrix_identical then "OK" else "MISMATCH");
  (* distance distribution: all off-diagonal divergences *)
  let d = serial_m.Cluster.data in
  let n = Array.length d in
  let values = ref [] and sum = ref 0.0 and sq = ref 0.0 and nv = ref 0 in
  let dmin = ref infinity and dmax = ref neg_infinity in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let v = d.(i).(j) in
        values := v :: !values;
        sum := !sum +. v;
        sq := !sq +. (v *. v);
        incr nv;
        if v < !dmin then dmin := v;
        if v > !dmax then dmax := v
      end
    done
  done;
  let mean = !sum /. float_of_int !nv in
  let variance = (!sq /. float_of_int !nv) -. (mean *. mean) in
  let bins = 16 in
  let hist = Array.make bins 0 in
  List.iter
    (fun v ->
      let b = int_of_float (v *. float_of_int bins) in
      hist.(min (bins - 1) (max 0 b)) <- hist.(min (bins - 1) (max 0 b)) + 1)
    !values;
  Printf.printf
    "  distances: n=%d mean=%.4f var=%.5f min=%.4f max=%.4f\n" !nv mean variance
    !dmin !dmax;
  Printf.printf "  histogram [0,1) x%d: %s\n" bins
    (String.concat " " (Array.to_list (Array.map string_of_int hist)));
  (* triangle-inequality tightness over sampled triples: normalised
     divergence need not be a metric, so violations are measured *)
  let rng = Prng.create (spec.Gen.seed lxor 0x7ea) in
  let triples = min 20000 (n * (n - 1) * (n - 2)) in
  let violations = ref 0 and worst = ref 0.0 and tight_sum = ref 0.0 in
  for _ = 1 to triples do
    let i = Prng.int rng n in
    let j = (i + 1 + Prng.int rng (n - 1)) mod n in
    let k = ref (Prng.int rng n) in
    while !k = i || !k = j do
      k := Prng.int rng n
    done;
    let lhs = d.(i).(!k) and rhs = d.(i).(j) +. d.(j).(!k) in
    let ratio = lhs /. Float.max 1e-12 rhs in
    tight_sum := !tight_sum +. Float.min 1.0 ratio;
    if lhs > rhs +. 1e-12 then begin
      incr violations;
      if ratio > !worst then worst := ratio
    end
  done;
  Printf.printf
    "  triangle inequality: %d/%d sampled triples violate (worst ratio %.3f, \
     mean tightness %.3f)\n"
    !violations triples !worst
    (!tight_sum /. float_of_int triples);
  (* the paper's clustering recipe over the variant matrix *)
  let (dm, dendro), t_cluster = wall (fun () -> Tbmd.dendrogram Tbmd.TSem ixs) in
  let heights = Cluster.merge_heights dendro in
  let hmax = List.fold_left Float.max 0.0 heights in
  let cut = hmax /. 2.0 in
  let clusters_at_cut = 1 + List.length (List.filter (fun h -> h > cut) heights) in
  Printf.printf
    "  clustering: %d leaves in %.1fs, max merge height %.3f, %d clusters at \
     height %.3f\n"
    (Array.length dm.Cluster.labels)
    t_cluster hmax clusters_at_cut cut;
  (* stability: re-run a smaller study under neighbouring seeds and
     compare distribution moments and dendrogram scale *)
  let stab_count = max 10 (count / 10) in
  let stability =
    List.map
      (fun seed ->
        let sspec = { spec with Gen.seed; count = stab_count } in
        let sixs =
          Sv_core.Index_engine.index_many ~jobs
            (List.map (fun v -> v.Gen.v_cb) (Gen.generate sspec))
        in
        Tbmd.clear_memo ();
        let sm, sd = Tbmd.dendrogram Tbmd.TSem sixs in
        let data = sm.Cluster.data in
        let sn = Array.length data in
        let s = ref 0.0 and c = ref 0 in
        for i = 0 to sn - 1 do
          for j = 0 to sn - 1 do
            if i <> j then begin
              s := !s +. data.(i).(j);
              incr c
            end
          done
        done;
        let smean = !s /. float_of_int (max 1 !c) in
        let shmax = List.fold_left Float.max 0.0 (Cluster.merge_heights sd) in
        Printf.printf "  seed %-4d (%d variants): mean distance %.4f, dendrogram \
                       height %.3f\n"
          seed stab_count smean shmax;
        (seed, smean, shmax))
      [ spec.Gen.seed; spec.Gen.seed + 1; spec.Gen.seed + 2 ]
  in
  let means = List.map (fun (_, m, _) -> m) stability in
  let mmin = List.fold_left Float.min infinity means in
  let mmax = List.fold_left Float.max neg_infinity means in
  let mavg = List.fold_left ( +. ) 0.0 means /. float_of_int (List.length means) in
  let spread = (mmax -. mmin) /. Float.max 1e-9 mavg in
  Printf.printf "  stability: mean-distance spread %.1f%% across %d seeds\n"
    (100.0 *. spread) (List.length stability);
  record "corpus-study"
    (J.Obj
       [
         ("spec", J.String (Gen.spec_string spec));
         ("variants", J.Int count);
         ("grown", J.Int grown);
         ("mutated", J.Int (count - grown));
         ("gen_s", J.Float t_gen);
         ("index_serial_s", J.Float t_ix_serial);
         ("index_parallel_s", J.Float t_ix_par);
         ("jobs", J.Int jobs);
         ("matrix_serial_s", J.Float t_m_serial);
         ("matrix_parallel_cold_cache_s", J.Float t_m_par);
         ("matrix_warm_cache_s", J.Float t_m_warm);
         ("cluster_s", J.Float t_cluster);
         ("pairs", J.Int !nv);
         ("distance_mean", J.Float mean);
         ("distance_variance", J.Float variance);
         ("distance_min", J.Float !dmin);
         ("distance_max", J.Float !dmax);
         ( "histogram",
           J.List (Array.to_list (Array.map (fun c -> J.Int c) hist)) );
         ("triangle_triples", J.Int triples);
         ("triangle_violations", J.Int !violations);
         ("triangle_worst_ratio", J.Float !worst);
         ("triangle_mean_tightness", J.Float (!tight_sum /. float_of_int triples));
         ("dendrogram_height", J.Float hmax);
         ("clusters_at_half_height", J.Int clusters_at_cut);
         ( "stability",
           J.List
             (List.map
                (fun (seed, m, h) ->
                  J.Obj
                    [
                      ("seed", J.Int seed);
                      ("mean_distance", J.Float m);
                      ("dendrogram_height", J.Float h);
                    ])
                stability) );
         ("stability_mean_spread", J.Float spread);
         ("index_identical", J.Bool index_identical);
         ("matrix_identical", J.Bool matrix_identical);
       ]);
  if not (index_identical && matrix_identical) then begin
    Printf.eprintf "[bench] corpus-study: serial/parallel/cached mismatch\n%!";
    exit 1
  end

(* The PR 9 tentpole: metric-space acceleration over a generated corpus.
   For each corpus size in the grid, the full T_sem dendrogram is
   computed twice — exhaustively, then under the triangle-bounded pivot
   scheduler — and the two must agree to the last byte (matrix floats
   and dendrogram structure; a mismatch exits nonzero). The scheduler's
   ledger (pivot rows computed by exact DP, pairs resolved by the
   triangle bracket or the normalisation clamp, pairs that ran the
   bounded kernel) and the TED telemetry split land in the JSON report;
   the exact-DP fraction must fall as the corpus grows (pivot rows are
   ~2k/(n-1) of all pairs at k ~ sqrt n). A VP-tree k-NN sweep then
   answers every variant's 5-nearest query through the index and checks
   the ranking against brute force, counting bounded evaluations per
   query. Sampled triples check the integer-TED triangle inequality (the
   metric the index relies on — violations exit nonzero), and the
   index-grain heuristic row times serial vs pool indexing of the tiny
   generated codebases, recording which grain [plan_grain] picked (the
   PR 8 parallel-indexing regression: IPC loses below the source-size
   floor, so the pool path must now match serial within noise).
   `--smoke` runs n in {12, 24}; the full grid is {50, 100, 200}
   (SV_METRIC_GRID overrides, comma-separated). *)
let metric_study () =
  let module Gen = Sv_gen.Gen in
  let module Prng = Sv_util.Prng in
  let module T = Sv_perf.Telemetry in
  let module P = Sv_metric.Pivots in
  section "Metric study: triangle-bounded matrices and VP-tree k-NN";
  let grid =
    match Sys.getenv_opt "SV_METRIC_GRID" with
    | Some s ->
        List.filter_map int_of_string_opt
          (String.split_on_char ',' (String.trim s))
    | None -> if !smoke_flag then [ 12; 24 ] else [ 50; 100; 200 ]
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let render (m : Cluster.matrix) =
    String.concat "\n"
      (Array.to_list
         (Array.map
            (fun row ->
              String.concat " "
                (Array.to_list (Array.map (Printf.sprintf "%.17g") row)))
            m.Cluster.data))
  in
  let mismatch = ref false in
  let rows =
    List.map
      (fun n ->
        let spec =
          {
            Gen.seed = 8;
            count = n;
            mode = Gen.Grow;
            base = "serial,omp,stdpar,tbb,kokkos";
          }
        in
        let cbs = List.map (fun v -> v.Gen.v_cb) (Gen.generate spec) in
        (* satellite row: the grain heuristic on these tiny codebases —
           the pool must no longer lose to serial now that [plan_grain]
           keeps sub-floor corpora in-process *)
        let grain = Sv_core.Index_engine.plan_grain ~jobs:2 cbs in
        let _, t_ix_serial =
          wall (fun () -> Sv_core.Index_engine.index_many ~jobs:1 cbs)
        in
        let ixs, t_ix_j2 =
          wall (fun () -> Sv_core.Index_engine.index_many ~jobs:2 cbs)
        in
        (* exhaustive dendrogram *)
        Tbmd.clear_memo ();
        T.reset_ted ();
        let (ex_m, ex_d), t_exhaustive =
          wall (fun () -> Tbmd.dendrogram Tbmd.TSem ixs)
        in
        let dp_exhaustive = (T.ted_snapshot ()).T.dp_runs in
        (* pivot-scheduled dendrogram, identical by construction *)
        Tbmd.clear_memo ();
        T.reset_ted ();
        Tbmd.set_pivots Tbmd.Pivots_auto;
        let (pv_m, pv_d), t_pivoted =
          Fun.protect
            ~finally:(fun () -> Tbmd.set_pivots Tbmd.Pivots_off)
            (fun () -> wall (fun () -> Tbmd.dendrogram Tbmd.TSem ixs))
        in
        let tel = T.ted_snapshot () in
        let stats =
          match Tbmd.pivot_stats () with
          | Some s -> s
          | None -> failwith "metric-study: pivot scheduler did not run"
        in
        let identical =
          render ex_m = render pv_m && Cluster.equal ex_d pv_d
        in
        if not identical then begin
          mismatch := true;
          Printf.eprintf
            "[bench] metric-study: pivoted dendrogram differs at n=%d\n%!" n
        end;
        let exact_frac =
          float_of_int stats.P.pivot_pairs /. float_of_int (max 1 stats.P.pairs)
        in
        (* VP-tree k-NN: every variant's 5-nearest, checked against brute
           force over the (memo-warm) distances *)
        let arr = Array.of_list ixs in
        let vp = Tbmd.vp_index Tbmd.TSem ixs in
        let k = 5 in
        let evals_total = ref 0 and knn_ok = ref true in
        Array.iter
          (fun q ->
            let hits, evals = Tbmd.vp_nearest vp ~k q in
            evals_total := !evals_total + evals;
            let brute =
              List.sort compare
                (Array.to_list
                   (Array.mapi
                      (fun i c -> (fst (Tbmd.raw_divergence Tbmd.TSem c q), i))
                      arr))
            in
            let brute_k = List.filteri (fun i _ -> i < k) brute in
            let vp_k =
              List.map
                (fun (c, d, _) ->
                  ( d,
                    let rec find i = if arr.(i) == c then i else find (i + 1) in
                    find 0 ))
                hits
            in
            if vp_k <> brute_k then knn_ok := false)
          arr;
        if not !knn_ok then begin
          mismatch := true;
          Printf.eprintf
            "[bench] metric-study: VP-tree k-NN differs from brute force at \
             n=%d\n%!"
            n
        end;
        let avg_evals = float_of_int !evals_total /. float_of_int n in
        (* the integer TED the index relies on must be a true metric *)
        let rng = Prng.create (spec.Gen.seed lxor 0x913) in
        let triples = 2000 in
        let tri_violations = ref 0 in
        let raw i j = fst (Tbmd.raw_divergence Tbmd.TSem arr.(i) arr.(j)) in
        for _ = 1 to triples do
          let i = Prng.int rng n in
          let j = (i + 1 + Prng.int rng (n - 1)) mod n in
          let l = ref (Prng.int rng n) in
          while !l = i || !l = j do
            l := Prng.int rng n
          done;
          if raw i !l > raw i j + raw j !l then incr tri_violations
        done;
        if !tri_violations > 0 then begin
          mismatch := true;
          Printf.eprintf
            "[bench] metric-study: %d integer-TED triangle violations at \
             n=%d\n%!"
            !tri_violations n
        end;
        Printf.printf
          "  n=%-4d exhaustive %6.1fs (%d DP)  pivoted %6.1fs (%d DP, %d \
           pivots, %.1f%% exact, %d interval, %d clamp, %d bounded)  %s\n"
          n t_exhaustive dp_exhaustive t_pivoted tel.T.dp_runs
          (Array.length stats.P.pivots)
          (100.0 *. exact_frac) stats.P.resolved_interval
          stats.P.resolved_clamp stats.P.bounded_pairs
          (if identical then "identical" else "MISMATCH");
        Printf.printf
          "         k-NN k=%d: %.1f evals/query (brute %d), ranking %s; \
           triangle %d/%d violations\n"
          k avg_evals n
          (if !knn_ok then "identical" else "MISMATCH")
          !tri_violations triples;
        Printf.printf
          "         index: serial %.2fs, jobs=2 %.2fs (grain %s)\n" t_ix_serial
          t_ix_j2
          (match grain with
          | `Serial -> "serial"
          | `Codebase -> "codebase"
          | `Unit -> "unit");
        ( n,
          exact_frac,
          J.Obj
            [
              ("n", J.Int n);
              ("exhaustive_s", J.Float t_exhaustive);
              ("exhaustive_dp_runs", J.Int dp_exhaustive);
              ("pivoted_s", J.Float t_pivoted);
              ("pivoted_dp_runs", J.Int tel.T.dp_runs);
              ("pivots", J.Int (Array.length stats.P.pivots));
              ("pairs", J.Int stats.P.pairs);
              ("pivot_pairs", J.Int stats.P.pivot_pairs);
              ("exact_dp_fraction", J.Float exact_frac);
              ("resolved_interval", J.Int stats.P.resolved_interval);
              ("resolved_clamp", J.Int stats.P.resolved_clamp);
              ("bounded_pairs", J.Int stats.P.bounded_pairs);
              ("triangle_resolved", J.Int tel.T.tri_resolved);
              ("branch_prunes", J.Int tel.T.pq_prunes);
              ("pqgram_prunes", J.Int tel.T.pqg_prunes);
              ("hist_prunes", J.Int tel.T.hist_prunes);
              ("cutoff_abandons", J.Int tel.T.cutoff_abandons);
              ("identical", J.Bool identical);
              ("knn_k", J.Int k);
              ("knn_avg_evals_per_query", J.Float avg_evals);
              ("knn_brute_evals_per_query", J.Int n);
              ("knn_identical", J.Bool !knn_ok);
              ("vp_build_evals", J.Int (Tbmd.vp_build_evals vp));
              ("triangle_triples", J.Int triples);
              ("triangle_violations", J.Int !tri_violations);
              ("index_serial_s", J.Float t_ix_serial);
              ("index_jobs2_s", J.Float t_ix_j2);
              ( "index_grain",
                J.String
                  (match grain with
                  | `Serial -> "serial"
                  | `Codebase -> "codebase"
                  | `Unit -> "unit") );
            ] ))
      grid
  in
  (* the headline claim: the exact-DP fraction falls as the corpus grows *)
  let fracs = List.map (fun (_, f, _) -> f) rows in
  let falling =
    let rec go = function
      | a :: (b :: _ as rest) -> a > b && go rest
      | _ -> true
    in
    go fracs
  in
  Printf.printf "  exact-DP fraction across grid: %s (%s)\n"
    (String.concat " -> " (List.map (Printf.sprintf "%.3f") fracs))
    (if falling then "falling" else "NOT FALLING");
  record "metric-study"
    (J.Obj
       [
         ("grid", J.List (List.map (fun (n, _, _) -> J.Int n) rows));
         ("results", J.List (List.map (fun (_, _, o) -> o) rows));
         ("exact_dp_fraction_falling", J.Bool falling);
         ("identical", J.Bool (not !mismatch));
       ]);
  if !mismatch then begin
    Printf.eprintf "[bench] metric-study: identity contract violated\n%!";
    exit 1
  end

(* The PR 10 tentpole: the phase-2 metric index — persistent,
   incremental, budgeted-approximate. Over a grown corpus (smoke: 60
   variants; full: 1000, SV_GEN_VARIANTS overrides):

   - cold vs warm `nearest`: the VP-tree is built once against an empty
     metric cache, the cache round-trips through bytes (a daemon
     restart), and the reloaded tree must answer every sampled query
     byte-identically with zero build evaluations — either violation
     exits nonzero.
   - incremental insert: the final few variants arrive via [vp_insert]
     instead of a rebuild; queries must still equal the fresh build.
   - recall@k vs budget: every sampled query runs under a grid of
     evaluation budgets (and an ε grid); recall against the exact
     answer is recorded per point, and any run whose ledger still
     claims [guaranteed_exact] must in fact equal the exact answer —
     the honesty contract, violation exits nonzero.
   - per-bound prune attribution: the exact query sweep runs under
     reset telemetry, so the equal/size/histogram/pq-gram/branch/
     abandon split shows which cascade stage paid for the pruning. *)
let metric_phase2 () =
  let module Gen = Sv_gen.Gen in
  let module T = Sv_perf.Telemetry in
  let module Vp = Sv_metric.Vptree in
  let module Mc = Sv_db.Metric_cache in
  section "Metric phase 2: persistent, incremental, budgeted VP-tree";
  let count =
    if !smoke_flag then 60
    else
      match Sys.getenv_opt "SV_GEN_VARIANTS" with
      | Some s -> ( match int_of_string_opt s with Some n when n >= 10 -> n | _ -> 1000)
      | None -> 1000
  in
  let spec =
    { Gen.seed = 8; count; mode = Gen.Grow; base = "serial,omp,stdpar,tbb,kokkos" }
  in
  let wall f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  let variants, t_gen = wall (fun () -> Gen.generate spec) in
  let cbs = List.map (fun v -> v.Gen.v_cb) variants in
  let ixs, t_ix = wall (fun () -> Sv_core.Index_engine.index_many ~jobs:1 cbs) in
  Printf.printf "  %s: %d variants generated in %.1fs, indexed in %.1fs\n"
    (Gen.spec_string spec) count t_gen t_ix;
  let arr = Array.of_list ixs in
  let n = Array.length arr in
  let k = 5 in
  let mismatch = ref false in
  (* query sample: every variant in smoke, a stride sample at full scale *)
  let qn = min n 200 in
  let queries = Array.init qn (fun i -> arr.(i * n / qn)) in
  let hit_key ((c : Pipeline.indexed), d, dv) = (c.Pipeline.ix_model, d, dv) in
  let answers vp =
    Array.map (fun q -> List.map hit_key (fst (Tbmd.vp_nearest vp ~k q))) queries
  in
  (* cold build against an empty metric cache, then a byte round-trip
     (a daemon restart) and a warm reload from the persisted file *)
  let cache = Mc.create () in
  let tmp = Filename.temp_file "sv_bench_metric" ".cache" in
  let vp_cold, vp_warm, warm_cache, t_cold, t_warm =
    Fun.protect
      ~finally:(fun () ->
        Tbmd.set_metric_cache None;
        if Sys.file_exists tmp then Sys.remove tmp)
      (fun () ->
        Tbmd.set_metric_cache (Some cache);
        Tbmd.clear_memo ();
        let vp_cold, t_cold = wall (fun () -> Tbmd.vp_index Tbmd.TSem ixs) in
        Mc.save_file tmp cache;
        let warm_cache = Mc.load_file tmp in
        Tbmd.set_metric_cache (Some warm_cache);
        Tbmd.clear_memo ();
        let vp_warm, t_warm = wall (fun () -> Tbmd.vp_index Tbmd.TSem ixs) in
        (vp_cold, vp_warm, warm_cache, t_cold, t_warm))
  in
  let cold_evals = Tbmd.vp_build_evals vp_cold in
  let warm_evals = Tbmd.vp_build_evals vp_warm in
  let exact = answers vp_cold in
  let warm_identical = answers vp_warm = exact && warm_evals = 0 in
  if not warm_identical then begin
    mismatch := true;
    Printf.eprintf
      "[bench] metric-phase2: warm reload differs (%d build evals)\n%!"
      warm_evals
  end;
  Printf.printf "  %-30s %9.3fs  (%d build evals)\n" "cold VP-tree build" t_cold
    cold_evals;
  Printf.printf "  %-30s %9.3fs  (%d build evals, %s; %s)\n"
    "warm reload (persisted)" t_warm warm_evals
    (if warm_identical then "byte-identical" else "MISMATCH")
    (Mc.stats warm_cache);
  (* incremental insert: hold out the tail, add it one codebase at a
     time — candidate order is preserved, so answers must be identical *)
  let m_ins = min 8 (n / 4) in
  let base = Array.to_list (Array.sub arr 0 (n - m_ins)) in
  let tail = Array.to_list (Array.sub arr (n - m_ins) m_ins) in
  let vp_inc, t_inc =
    wall (fun () -> List.fold_left Tbmd.vp_insert (Tbmd.vp_index Tbmd.TSem base) tail)
  in
  let inc_identical = answers vp_inc = exact in
  if not inc_identical then begin
    mismatch := true;
    Printf.eprintf "[bench] metric-phase2: incremental insert diverged\n%!"
  end;
  Printf.printf "  %-30s %9.3fs  (+%d inserts, %d total evals, %s)\n"
    "incremental insert" t_inc m_ins (Tbmd.vp_build_evals vp_inc)
    (if inc_identical then "identical" else "MISMATCH");
  (* exact k-NN sweep under reset telemetry: who pruned what? *)
  Tbmd.clear_memo ();
  T.reset_ted ();
  let sweep_evals, t_sweep =
    wall (fun () ->
        Array.fold_left (fun acc q -> acc + snd (Tbmd.vp_nearest vp_cold ~k q)) 0 queries)
  in
  let tel = T.ted_snapshot () in
  let avg_evals = float_of_int sweep_evals /. float_of_int qn in
  Printf.printf "  %-30s %9.3fs  (k=%d, %.1f evals/query, brute %d)\n"
    (Printf.sprintf "exact sweep (%d queries)" qn)
    t_sweep k avg_evals n;
  Printf.printf
    "  cascade: equal=%d size=%d hist=%d pqgram=%d branch=%d abandoned=%d \
     dp=%d\n"
    tel.T.equal_prunes tel.T.size_prunes tel.T.hist_prunes tel.T.pqg_prunes
    tel.T.pq_prunes tel.T.cutoff_abandons tel.T.dp_runs;
  (* bounded-pair attribution: the same cascade under fixed cutoffs, on
     a mutation corpus. Query-driven cutoffs above are usually generous
     (the k-th best distance), so the size bound dominates; the profile
     bounds (pq-gram, then binary branch) win on near-identical pairs
     whose label multisets agree but whose structure moved — which a
     mutant population has and a grown one mostly lacks. *)
  let att_spec = { Gen.seed = 8; count = 60; mode = Gen.Mixed; base = "babelstream" } in
  let att_arr =
    Array.of_list
      (Sv_core.Index_engine.index_many ~jobs:1
         (List.map (fun v -> v.Gen.v_cb) (Gen.generate att_spec)))
  in
  let an = Array.length att_arr in
  let pair_sample =
    let all = ref [] in
    for i = 0 to an - 1 do
      for j = i + 1 to an - 1 do
        all := (i, j) :: !all
      done
    done;
    let pairs = Array.of_list !all in
    let np = Array.length pairs in
    let target = 2000 in
    if np <= target then pairs
    else Array.init target (fun i -> pairs.(i * np / target))
  in
  Printf.printf "  bounded-pair attribution (%s, %d sampled pairs):\n"
    (Gen.spec_string att_spec) (Array.length pair_sample);
  let attribution =
    List.map
      (fun cutoff ->
        Tbmd.clear_memo ();
        T.reset_ted ();
        let within = ref 0 in
        Array.iter
          (fun (i, j) ->
            match
              Tbmd.raw_divergence_bounded Tbmd.TSem ~cutoff att_arr.(i)
                att_arr.(j)
            with
            | Some _ -> incr within
            | None -> ())
          pair_sample;
        let t = T.ted_snapshot () in
        Printf.printf
          "    cutoff %-4d %4d within; equal=%d size=%d hist=%d pqgram=%d \
           branch=%d abandoned=%d dp=%d\n"
          cutoff !within t.T.equal_prunes t.T.size_prunes t.T.hist_prunes
          t.T.pqg_prunes t.T.pq_prunes t.T.cutoff_abandons t.T.dp_runs;
        (cutoff, !within, t))
      [ 2; 8; 32 ]
  in
  (* recall@k vs budget (and ε): the honesty contract is checked on
     every single run — a ledger that claims exactness must be right *)
  let honest = ref true in
  let sweep label runs =
    List.map
      (fun (name, query_once) ->
        let recall_sum = ref 0.0
        and evals_sum = ref 0
        and exact_claims = ref 0 in
        Array.iteri
          (fun qi q ->
            let hits, (ledger : Vp.ledger) = query_once q in
            let got = List.map hit_key hits in
            let want = exact.(qi) in
            let inter = List.filter (fun h -> List.mem h want) got in
            recall_sum :=
              !recall_sum
              +. float_of_int (List.length inter)
                 /. float_of_int (List.length want);
            evals_sum := !evals_sum + ledger.Vp.evals;
            if ledger.Vp.guaranteed_exact then begin
              incr exact_claims;
              if got <> want then begin
                honest := false;
                Printf.eprintf
                  "[bench] metric-phase2: ledger claimed exact but %s hits \
                   differ (%s)\n%!"
                  label name
              end
            end)
          queries;
        let recall = !recall_sum /. float_of_int qn in
        let evals_q = float_of_int !evals_sum /. float_of_int qn in
        let exact_frac = float_of_int !exact_claims /. float_of_int qn in
        Printf.printf
          "    %s %-8s recall@%d %.3f  %7.1f evals/query  %5.1f%% guaranteed \
           exact\n"
          label name k recall evals_q (100.0 *. exact_frac);
        (name, recall, evals_q, exact_frac))
      runs
  in
  Printf.printf "  approximate mode:\n";
  let budgets =
    List.sort_uniq compare
      (List.filter (fun b -> b > 0) [ k; n / 16; n / 8; n / 4; n / 2; n ])
  in
  let budget_curve =
    sweep "budget"
      (List.map
         (fun b ->
           (string_of_int b, fun q -> Tbmd.vp_nearest_budgeted vp_cold ~k ~budget:b q))
         budgets)
  in
  let eps_curve =
    sweep "epsilon"
      (List.map
         (fun e ->
           (Printf.sprintf "%g" e, fun q -> Tbmd.vp_nearest_budgeted vp_cold ~k ~epsilon:e q))
         [ 0.05; 0.25; 1.0 ])
  in
  if not !honest then mismatch := true;
  Printf.printf "  exactness ledger honest on every run: %s\n"
    (if !honest then "OK" else "VIOLATED");
  let curve_json curve =
    J.List
      (List.map
         (fun (name, recall, evals_q, exact_frac) ->
           J.Obj
             [
               ("point", J.String name);
               ("recall", J.Float recall);
               ("evals_per_query", J.Float evals_q);
               ("guaranteed_exact_fraction", J.Float exact_frac);
             ])
         curve)
  in
  record "metric-phase2"
    (J.Obj
       [
         ("spec", J.String (Gen.spec_string spec));
         ("variants", J.Int n);
         ("queries", J.Int qn);
         ("k", J.Int k);
         ("cold_build_s", J.Float t_cold);
         ("cold_build_evals", J.Int cold_evals);
         ("warm_reload_s", J.Float t_warm);
         ("warm_build_evals", J.Int warm_evals);
         ("warm_identical", J.Bool warm_identical);
         ("insert_count", J.Int m_ins);
         ("insert_s", J.Float t_inc);
         ("insert_total_evals", J.Int (Tbmd.vp_build_evals vp_inc));
         ("insert_identical", J.Bool inc_identical);
         ("exact_sweep_s", J.Float t_sweep);
         ("exact_avg_evals_per_query", J.Float avg_evals);
         ("equal_prunes", J.Int tel.T.equal_prunes);
         ("size_prunes", J.Int tel.T.size_prunes);
         ("hist_prunes", J.Int tel.T.hist_prunes);
         ("pqgram_prunes", J.Int tel.T.pqg_prunes);
         ("branch_prunes", J.Int tel.T.pq_prunes);
         ("cutoff_abandons", J.Int tel.T.cutoff_abandons);
         ("dp_runs", J.Int tel.T.dp_runs);
         ("bounded_attribution_spec", J.String (Gen.spec_string att_spec));
         ( "bounded_attribution",
           J.List
             (List.map
                (fun (cutoff, within, (t : T.ted)) ->
                  J.Obj
                    [
                      ("cutoff", J.Int cutoff);
                      ("pairs", J.Int (Array.length pair_sample));
                      ("within", J.Int within);
                      ("equal_prunes", J.Int t.T.equal_prunes);
                      ("size_prunes", J.Int t.T.size_prunes);
                      ("hist_prunes", J.Int t.T.hist_prunes);
                      ("pqgram_prunes", J.Int t.T.pqg_prunes);
                      ("branch_prunes", J.Int t.T.pq_prunes);
                      ("cutoff_abandons", J.Int t.T.cutoff_abandons);
                      ("dp_runs", J.Int t.T.dp_runs);
                    ])
                attribution) );
         ("budget_curve", curve_json budget_curve);
         ("epsilon_curve", curve_json eps_curve);
         ("ledger_honest", J.Bool !honest);
         ("identical", J.Bool (not !mismatch));
       ]);
  if !mismatch then begin
    Printf.eprintf "[bench] metric-phase2: exactness contract violated\n%!";
    exit 1
  end

let experiments =
  [
    ("table1", table1); ("table2", table2); ("table3", table3);
    ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11);
    ("fig12", fig12); ("fig13", fig13); ("fig14", fig14); ("fig15", fig15);
    ("verify", verify); ("db", db);
    ("ablation-match", ablation_match); ("ablation-weights", ablation_weights);
    ("ablation-linkage", ablation_linkage); ("structure", structure);
    ("extension-raja", extension_raja);
    ("ted-engine", ted_engine);
    ("ted-core", ted_core);
    ("index-engine", index_engine);
    ("serve", serve_bench);
    ("corpus-study", corpus_study);
    ("metric-study", metric_study);
    ("metric-phase2", metric_phase2);
    ("kernels", kernels);
  ]

let () =
  let args =
    List.filter
      (fun a ->
        if a = "--smoke" then begin
          smoke_flag := true;
          false
        end
        else true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested =
    match args with
    | args when args <> [] && args <> [ "all" ] -> args
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S; available: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 2)
    requested
