(* Navigation chart (§VI): combine performance portability (Phi) with
   model divergence (TBMD) to pick a programming model for CloverLeaf.

   Run with:  dune exec examples/navigation.exe *)

module Pipeline = Sv_core.Pipeline

let () =
  print_endline "== CloverLeaf: picking a model with Phi x TBMD ==\n";
  let ixs = List.map Pipeline.index (Sv_corpus.Cloverleaf.all ()) in
  let serial =
    List.find (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = "serial") ixs
  in
  let others =
    List.filter (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model <> "serial") ixs
  in
  (* the cascade: who runs where, and how Phi decays as platforms pile up *)
  print_string
    (Sv_report.Report.cascade
       (Sv_perf.Cascade.cascade ~app:Sv_perf.Pmodel.cloverleaf
          ~models:Sv_perf.Pmodel.all_parallel ~platforms:Sv_perf.Platform.all));
  print_newline ();
  (* the navigation chart itself *)
  let pts =
    Sv_core.Navigation.points ~app:Sv_perf.Pmodel.cloverleaf ~serial ~codebases:others
      ~platforms:Sv_perf.Platform.all
  in
  print_string (Sv_core.Navigation.render pts);
  (* a simple recommendation: maximise Phi x proximity-to-serial *)
  let scored =
    List.map
      (fun (p : Sv_core.Navigation.point) ->
        (p.Sv_core.Navigation.model_name,
         p.Sv_core.Navigation.phi *. (1.0 -. p.Sv_core.Navigation.div_t_sem)))
      pts
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  print_endline "\nPhi x (1 - T_sem divergence), best first:";
  print_string (Sv_report.Report.bars scored);
  match scored with
  | (best, _) :: _ ->
      Printf.printf
        "\nFor a new CloverLeaf port starting from serial, the chart nominates %s:\n\
         portable across all six platforms while staying structurally closest\n\
         to the serial algorithm.\n"
        best
  | [] -> ()
