examples/fortran_models.ml: List Printf Sv_cluster Sv_core Sv_corpus Sv_report Sv_tree
