examples/quickstart.ml: List Printf String Sv_core Sv_corpus Sv_report Sv_tree
