examples/quickstart.mli:
