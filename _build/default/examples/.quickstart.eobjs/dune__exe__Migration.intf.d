examples/migration.mli:
