examples/navigation.ml: List Printf Sv_core Sv_corpus Sv_perf Sv_report
