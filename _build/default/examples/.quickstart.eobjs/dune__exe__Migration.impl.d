examples/migration.ml: List Printf Sv_core Sv_corpus Sv_report
