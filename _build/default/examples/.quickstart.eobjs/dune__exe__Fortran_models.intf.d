examples/fortran_models.mli:
