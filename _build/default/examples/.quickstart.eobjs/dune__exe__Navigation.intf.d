examples/navigation.mli:
