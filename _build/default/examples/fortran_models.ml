(* Fortran model family (§V-B, Fig. 6): cluster the eight BabelStream
   Fortran variants and look at the OpenACC quality-of-implementation
   effect.

   Run with:  dune exec examples/fortran_models.exe *)

module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd

let () =
  print_endline "== BabelStream Fortran: eight models, one algorithm ==\n";
  let ixs = List.map Pipeline.index (Sv_corpus.Babelstream_f.all ()) in
  List.iter
    (fun (ix : Pipeline.indexed) ->
      let u = List.hd ix.Pipeline.ix_units in
      Printf.printf "  %-14s SLOC=%-4d |T_sem|=%-4d |T_ir|=%-4d verification:%s\n"
        ix.Pipeline.ix_model u.Pipeline.u_sloc
        (Sv_tree.Tree.size u.Pipeline.u_t_sem)
        (Sv_tree.Tree.size u.Pipeline.u_t_ir)
        (match ix.Pipeline.ix_verification with
        | Some v when v.Pipeline.v_ok -> "PASSED"
        | _ -> "FAILED"))
    ixs;
  (* clustering under T_sem, the paper's Fig. 6 recipe *)
  List.iter
    (fun metric ->
      Printf.printf "\n--- clustering by %s ---\n" (Tbmd.metric_label metric);
      let m, d = Tbmd.dendrogram metric ixs in
      print_string (Sv_report.Report.dendrogram ~labels:m.Sv_cluster.Cluster.labels d))
    [ Tbmd.TSrc; Tbmd.TSem; Tbmd.TIr ];
  (* the OpenACC effect: directives visible in the source, absent from IR *)
  let find id = List.find (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = id) ixs in
  let seq = find "sequential" in
  let d_src_acc = Tbmd.divergence Tbmd.TSrc seq (find "acc") in
  let d_ir_acc = Tbmd.divergence Tbmd.TIr seq (find "acc") in
  let d_ir_omp = Tbmd.divergence Tbmd.TIr seq (find "omp") in
  Printf.printf
    "\nOpenACC vs sequential: T_src = %.3f but T_ir = %.3f (OpenMP: %.3f).\n\
     The directives are visible in the source, yet GCC's OpenACC lowers the\n\
     loops serially — no parallel runtime structure reaches the IR, matching\n\
     the paper's single-threaded-OpenACC observation (§V-B).\n"
    d_src_acc d_ir_acc d_ir_omp
