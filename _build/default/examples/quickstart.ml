(* Quickstart: measure the model divergence between two ports of YOUR own
   code — no corpus involved.

   We write a small serial kernel and its OpenMP port as plain source
   strings, push both through the pipeline by wrapping them as codebases,
   and print every metric of Table I.

   Run with:  dune exec examples/quickstart.exe *)

let serial_src =
  {|// daxpy, serial
#include "stdio.h"
#include "stdlib.h"
#include "math.h"

void daxpy(double *y, const double *x, double alpha, int n) {
  for (int i = 0; i < n; i++) {
    y[i] = alpha * x[i] + y[i];
  }
}

int main() {
  const int n = 512;
  double *x = new double[n];
  double *y = new double[n];
  for (int i = 0; i < n; i++) {
    x[i] = 1.0;
    y[i] = 2.0;
  }
  daxpy(y, x, 0.5, n);
  if (fabs(y[0] - 2.5) > 1.0e-12) {
    printf("FAILED\n");
    return 1;
  }
  printf("OK\n");
  return 0;
}
|}

let omp_src =
  {|// daxpy, OpenMP port
#include "stdio.h"
#include "stdlib.h"
#include "math.h"
#include "omp.h"

void daxpy(double *y, const double *x, double alpha, int n) {
#pragma omp parallel for
  for (int i = 0; i < n; i++) {
    y[i] = alpha * x[i] + y[i];
  }
}

int main() {
  const int n = 512;
  double *x = new double[n];
  double *y = new double[n];
#pragma omp parallel for
  for (int i = 0; i < n; i++) {
    x[i] = 1.0;
    y[i] = 2.0;
  }
  daxpy(y, x, 0.5, n);
  if (fabs(y[0] - 2.5) > 1.0e-12) {
    printf("FAILED\n");
    return 1;
  }
  printf("OK\n");
  return 0;
}
|}

(* Wrap a source string as a codebase the pipeline can index. The shim
   and system headers resolve the includes. *)
let codebase ~model ~model_name ~file source =
  {
    Sv_corpus.Emit.app = "daxpy";
    model;
    model_name;
    lang = `C;
    main_file = file;
    extra_units = [];
    files = ((file, source) :: Sv_corpus.Shim.for_model model) @ Sv_corpus.Shim.system;
    system_headers = Sv_corpus.Shim.system_names;
    defines = [];
  }

let () =
  print_endline "== quickstart: TBMD on a hand-written daxpy port ==\n";
  (* 1. index both codebases: preprocess, parse, lower, run *)
  let serial =
    Sv_core.Pipeline.index
      (codebase ~model:"serial" ~model_name:"Serial" ~file:"daxpy.cpp" serial_src)
  in
  let omp =
    Sv_core.Pipeline.index
      (codebase ~model:"omp" ~model_name:"OpenMP" ~file:"daxpy_omp.cpp" omp_src)
  in
  (* 2. both ports must pass their built-in check under the interpreter *)
  List.iter
    (fun (ix : Sv_core.Pipeline.indexed) ->
      match ix.Sv_core.Pipeline.ix_verification with
      | Some v ->
          Printf.printf "%-8s verification: %s (output %S)\n"
            ix.Sv_core.Pipeline.ix_model
            (if v.Sv_core.Pipeline.v_ok then "PASSED" else "FAILED")
            (String.trim v.Sv_core.Pipeline.v_output)
      | None -> ())
    [ serial; omp ];
  (* 3. absolute metrics per codebase *)
  print_newline ();
  List.iter
    (fun (ix : Sv_core.Pipeline.indexed) ->
      let u = List.hd ix.Sv_core.Pipeline.ix_units in
      Printf.printf "%-8s SLOC=%-4d LLOC=%-4d |T_src|=%-5d |T_sem|=%-5d |T_ir|=%d\n"
        ix.Sv_core.Pipeline.ix_model u.Sv_core.Pipeline.u_sloc
        u.Sv_core.Pipeline.u_lloc
        (Sv_tree.Tree.size u.Sv_core.Pipeline.u_t_src)
        (Sv_tree.Tree.size u.Sv_core.Pipeline.u_t_sem)
        (Sv_tree.Tree.size u.Sv_core.Pipeline.u_t_ir))
    [ serial; omp ];
  (* 4. the divergence table serial -> OpenMP *)
  print_newline ();
  let rows =
    List.map
      (fun m ->
        let d, dmax = Sv_core.Tbmd.raw_divergence m serial omp in
        [
          Sv_core.Tbmd.metric_label m;
          string_of_int d;
          string_of_int dmax;
          Printf.sprintf "%.3f" (Sv_core.Tbmd.divergence m serial omp);
        ])
      Sv_core.Tbmd.all_metrics
  in
  print_string
    (Sv_report.Report.table ~headers:[ "metric"; "d"; "dmax"; "normalised" ] ~rows);
  (* 5. the paper's OpenMP observation holds even for this tiny kernel *)
  let t_src = Sv_core.Tbmd.divergence Sv_core.Tbmd.TSrc serial omp in
  let t_sem = Sv_core.Tbmd.divergence Sv_core.Tbmd.TSem serial omp in
  Printf.printf
    "\nOpenMP looks cheap in the source (T_src = %.3f) but carries hidden\n\
     compiler-level semantics (T_sem = %.3f > T_src) — §V-C of the paper.\n"
    t_src t_sem
