(* Migration study (§V-D): an existing TeaLeaf CUDA port must move to
   other offload models. Which target costs least — and would porting
   from the serial baseline have been cheaper?

   Run with:  dune exec examples/migration.exe *)

module Pipeline = Sv_core.Pipeline
module Tbmd = Sv_core.Tbmd
module Migration = Sv_core.Migration

let () =
  print_endline "== TeaLeaf migration study: serial origin vs CUDA origin ==\n";
  let ixs = List.map Pipeline.index (Sv_corpus.Tealeaf.all ()) in
  let find id = List.find (fun (c : Pipeline.indexed) -> c.Pipeline.ix_model = id) ixs in
  let serial = find "serial" and cuda = find "cuda" in
  let target_ids = [ "omp-target"; "hip"; "sycl-usm"; "sycl-acc"; "kokkos" ] in
  let targets = List.map find target_ids in
  let metrics = [ (Tbmd.Source, Tbmd.Base); (Tbmd.TSrc, Tbmd.Base); (Tbmd.TSem, Tbmd.Base) ] in
  let print_rows base label =
    Printf.printf "porting FROM the %s codebase:\n" label;
    let rows = Migration.divergence_from ~base ~targets ~metrics in
    print_string
      (Sv_report.Report.table
         ~headers:[ "target"; "Source"; "T_src"; "T_sem" ]
         ~rows:
           (List.map
              (fun (r : Migration.row) ->
                r.Migration.target
                :: List.map (fun (_, v) -> Printf.sprintf "%.3f" v) r.Migration.values)
              rows));
    (match Migration.cheapest ~metric:Tbmd.TSem rows with
    | Some (m, v) -> Printf.printf "cheapest at T_sem: %s (%.3f)\n\n" m v
    | None -> ());
    rows
  in
  let from_serial = print_rows serial "serial" in
  let from_cuda = print_rows cuda "CUDA" in
  (* aggregate asymmetry: the paper's finding that CUDA origins cost more *)
  let avg rows =
    let vals =
      List.concat_map
        (fun (r : Migration.row) ->
          List.filter_map
            (fun (k, v) -> if k = "T_sem" then Some v else None)
            r.Migration.values)
        rows
    in
    List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
  in
  Printf.printf
    "mean T_sem divergence: from serial %.3f, from CUDA %.3f —\n\
     the CUDA port already encodes platform-specific semantics, so it is\n\
     the more expensive origin (§V-D).\n\n"
    (avg from_serial) (avg from_cuda);
  (* the stepping-stone conjecture: serial -> OpenMP target -> SYCL *)
  let via = find "omp-target" and final = find "sycl-usm" in
  let gain =
    Migration.stepping_stone_gain ~base:serial ~via ~target:final ~metric:Tbmd.TSem
  in
  Printf.printf
    "stepping stone (serial -> OpenMP target -> SYCL USM): direct minus\n\
     two-hop T_sem cost = %+.3f (%s)\n"
    gain
    (if gain > 0.0 then "the two-hop route is cheaper — the paper's conjecture"
     else "the direct port is cheaper for this codebase")
