(** String helpers used throughout SilverVale-ML.

    These complement [Stdlib.String] with the handful of operations the
    lexers, normalisers and report renderers need. *)

val lines : string -> string list
(** [lines s] splits [s] on ['\n']. A trailing newline does not produce an
    extra empty line; an empty string yields [[]]. *)

val is_blank : string -> bool
(** [is_blank s] is true when [s] contains only spaces and tabs. *)

val strip : string -> string
(** [strip s] removes leading and trailing ASCII whitespace. *)

val starts_with : prefix:string -> string -> bool
(** [starts_with ~prefix s] tests for a literal prefix. *)

val split_on : char -> string -> string list
(** [split_on c s] splits on [c], keeping empty fields. *)

val collapse_spaces : string -> string
(** [collapse_spaces s] replaces every maximal run of spaces/tabs with a
    single space, implementing the whitespace-normalisation step of the
    Nguyen et al. SLOC standard used by the paper (§III-C). *)

val pad : int -> string -> string
(** [pad n s] right-pads [s] with spaces to display width [n] (no-op when
    [s] is already wider). Width is counted in Unicode scalar values so the
    box-drawing output in reports lines up. *)

val repeat : string -> int -> string
(** [repeat s n] is [s] concatenated [n] times. *)

val display_width : string -> int
(** [display_width s] is the number of Unicode scalar values in the UTF-8
    string [s]; used to align report columns that contain box-drawing
    characters. *)

val common_prefix_len : string -> string -> int
(** [common_prefix_len a b] is the length of the longest common prefix. *)
