type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* SplitMix64: state += golden gamma; output = variant of murmur3 finaliser. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = 0x3FFF_FFFF_FFFF_FFFF in
  let rec go () =
    let r = Int64.to_int (next_int64 t) land mask in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let float t bound =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L
let range t lo hi = lo + int t (hi - lo + 1)

let gaussian t ~mean ~stddev =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then epsilon_float else u1 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))
