type pos = { line : int; col : int }
type t = { file : string; start : pos; stop : pos }

let none = { file = ""; start = { line = 0; col = 0 }; stop = { line = 0; col = 0 } }
let is_none l = l.file = "" && l.start.line = 0
let make ~file ~line ~col = { file; start = { line; col }; stop = { line; col } }

let pos_min a b = if a.line < b.line || (a.line = b.line && a.col <= b.col) then a else b
let pos_max a b = if a.line > b.line || (a.line = b.line && a.col >= b.col) then a else b

let span a b =
  if is_none a then b
  else if is_none b then a
  else { file = a.file; start = pos_min a.start b.start; stop = pos_max a.stop b.stop }

let lines_covered l =
  if is_none l then []
  else List.init (l.stop.line - l.start.line + 1) (fun i -> l.start.line + i)

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Stdlib.compare (a.start.line, a.start.col) (b.start.line, b.start.col) in
    if c <> 0 then c else Stdlib.compare (a.stop.line, a.stop.col) (b.stop.line, b.stop.col)

let pp fmt l =
  if is_none l then Format.fprintf fmt "<none>"
  else if l.start.line = l.stop.line then
    Format.fprintf fmt "%s:%d:%d" l.file l.start.line l.start.col
  else Format.fprintf fmt "%s:%d-%d" l.file l.start.line l.stop.line

let to_string l = Format.asprintf "%a" pp l
