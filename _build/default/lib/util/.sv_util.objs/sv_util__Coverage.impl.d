lib/util/coverage.ml: Hashtbl List Loc Option String
