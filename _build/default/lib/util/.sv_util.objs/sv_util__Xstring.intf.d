lib/util/xstring.mli:
