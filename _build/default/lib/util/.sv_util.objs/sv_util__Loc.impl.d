lib/util/loc.ml: Format List Stdlib String
