lib/util/directive_syntax.ml: List String Xstring
