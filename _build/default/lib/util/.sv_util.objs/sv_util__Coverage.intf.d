lib/util/coverage.mli: Loc
