lib/util/xstring.ml: Buffer Char String
