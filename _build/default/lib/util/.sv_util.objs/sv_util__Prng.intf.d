lib/util/prng.mli:
