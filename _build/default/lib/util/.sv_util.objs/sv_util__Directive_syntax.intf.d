lib/util/directive_syntax.mli:
