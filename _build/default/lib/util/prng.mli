(** Deterministic pseudo-random number generation.

    All randomness in SilverVale-ML flows through this module so that every
    experiment is reproducible byte-for-byte. The generator is SplitMix64
    (Steele, Lea & Flood, OOPSLA 2014): a tiny, statistically solid,
    splittable generator that needs only 64 bits of state. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from [seed]. Equal seeds yield
    equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues from the current
    state of [t] without affecting it. *)

val next_int64 : t -> int64
(** [next_int64 t] advances the state and returns 64 uniformly random
    bits. *)

val int : t -> int -> int
(** [int t bound] is a uniform integer in [\[0, bound)]. [bound] must be
    positive. Uses rejection sampling, so the distribution is exactly
    uniform. *)

val float : t -> float -> float
(** [float t bound] is a uniform float in [\[0, bound)]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val range : t -> int -> int -> int
(** [range t lo hi] is a uniform integer in [\[lo, hi\]] inclusive. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** [gaussian t ~mean ~stddev] draws from a normal distribution using the
    Box–Muller transform (one sample per call; the pair's second value is
    discarded to keep the state trajectory simple). *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place with a Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniformly chosen element of [a]. Raises
    [Invalid_argument] if [a] is empty. *)
