let split body =
  let n = String.length body in
  let words = ref [] and i = ref 0 in
  let push word args =
    match (word, args, !words) with
    | "", Some a, (prev, None) :: rest ->
        (* a paren group separated from its clause word by whitespace,
           e.g. "reduction (+: sum)": attach it to the previous word *)
        words := (prev, Some a) :: rest
    | "", None, _ -> ()
    | "", Some a, [] -> words := (a, None) :: !words
    | "", Some a, (prev, Some _) :: _ ->
        ignore prev;
        words := (a, None) :: !words
    | w, a, _ -> words := (w, a) :: !words
  in
  while !i < n do
    if body.[!i] = ' ' || body.[!i] = '\t' then incr i
    else begin
      let start = !i in
      while !i < n && body.[!i] <> ' ' && body.[!i] <> '\t' && body.[!i] <> '(' do
        incr i
      done;
      let word = String.sub body start (!i - start) in
      if !i < n && body.[!i] = '(' then begin
        let depth = ref 0 and pstart = !i in
        let continue = ref true in
        while !continue && !i < n do
          (if body.[!i] = '(' then incr depth
           else if body.[!i] = ')' then decr depth);
          incr i;
          if !depth = 0 then continue := false
        done;
        let args = String.sub body pstart (!i - pstart) in
        push word (Some args)
      end
      else push word None
    end
  done;
  List.rev !words

let strip_sentinel line =
  let line = Xstring.collapse_spaces (String.trim line) in
  let try_prefix prefix origin =
    if Xstring.starts_with ~prefix line then
      let body =
        if String.length line > String.length prefix then
          String.trim
            (String.sub line (String.length prefix)
               (String.length line - String.length prefix))
        else ""
      in
      Some (origin, body)
    else None
  in
  match try_prefix "#pragma omp" `Omp with
  | Some r -> Some r
  | None -> (
      match try_prefix "#pragma acc" `Acc with
      | Some r -> Some r
      | None -> (
          match try_prefix "!$omp" `Omp with
          | Some r -> Some r
          | None -> try_prefix "!$acc" `Acc))
