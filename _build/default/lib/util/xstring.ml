let lines s =
  if s = "" then []
  else
    let s = if String.length s > 0 && s.[String.length s - 1] = '\n'
            then String.sub s 0 (String.length s - 1) else s in
    String.split_on_char '\n' s

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t') s

let strip = String.trim

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let split_on c s = String.split_on_char c s

let collapse_spaces s =
  let b = Buffer.create (String.length s) in
  let in_run = ref false in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' then begin
        if not !in_run then Buffer.add_char b ' ';
        in_run := true
      end else begin
        in_run := false;
        Buffer.add_char b c
      end)
    s;
  Buffer.contents b

let display_width s =
  (* Count UTF-8 code points: bytes that are not continuation bytes. *)
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let repeat s n =
  let b = Buffer.create (String.length s * max n 0) in
  for _ = 1 to n do Buffer.add_string b s done;
  Buffer.contents b

let pad n s =
  let w = display_width s in
  if w >= n then s else s ^ String.make (n - w) ' '

let common_prefix_len a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
  go 0
