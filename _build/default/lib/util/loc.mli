(** Source locations.

    Every node of every semantic-bearing tree keeps a back reference to the
    source (§III-A of the paper): the file it came from and a line/column
    span. Back references drive dependency reconstruction, coverage
    masking and pruning. *)

type pos = { line : int; col : int }
(** A 1-based line and 0-based column within a file. *)

type t = { file : string; start : pos; stop : pos }
(** A contiguous span [start, stop] in [file]. [stop] is inclusive and
    points at the last character of the span. *)

val none : t
(** A placeholder location for synthesised nodes (empty file name). The
    coverage mask treats such nodes as always live. *)

val is_none : t -> bool
(** [is_none l] holds for {!none} and any other synthesised span. *)

val make : file:string -> line:int -> col:int -> t
(** [make ~file ~line ~col] is a single-character span. *)

val span : t -> t -> t
(** [span a b] is the smallest location covering both [a] and [b]. The file
    is taken from [a] unless [a] is {!none}. *)

val lines_covered : t -> int list
(** [lines_covered l] enumerates the line numbers the span touches, in
    increasing order; empty for {!none}. *)

val compare : t -> t -> int
(** Total order: by file, then start position, then stop position. *)

val pp : Format.formatter -> t -> unit
(** Renders as ["file:line:col"] or ["file:line-line"] for multi-line
    spans. *)

val to_string : t -> string
(** [to_string l] is [Format.asprintf "%a" pp l]. *)
