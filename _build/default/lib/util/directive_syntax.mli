(** Shared clause-splitting for OpenMP/OpenACC directive lines.

    Both frontends (MiniC pragmas, MiniF sentinel comments) carry
    directive bodies like ["target teams map(tofrom: a) reduction(+:sum)"];
    this module turns them into clause words paired with their
    parenthesised argument text. *)

val split : string -> (string * string option) list
(** [split body] splits on whitespace; a word followed by a balanced
    ["(...)"] — immediately or across whitespace, as in
    ["reduction (+: sum)"] — absorbs it as its argument (parens
    included). No returned word is ever empty. *)

val strip_sentinel : string -> (([ `Omp | `Acc ] * string) option)
(** [strip_sentinel line] recognises a directive line in any of the
    spellings ["#pragma omp ..."], ["#pragma acc ..."], ["!$omp ..."],
    ["!$acc ..."] and returns the origin plus the clause body. *)
