(** [T_sem] construction for MiniC.

    Maps the AST to the frontend semantic-bearing tree of §IV-A: only
    semantic nodes survive, node labels retain "the node type, literal,
    and operator names", and all programmer-introduced names (variables,
    functions, classes) are anonymised per the normalisation rule of
    §III-B. Directive nodes keep their clause structure — the
    OpenMP-specific AST tokens whose hidden semantics the paper measures.

    Every node keeps its source back reference, so coverage masks apply
    directly. *)

val of_tunit : Ast.tunit -> Sv_tree.Label.tree
(** [of_tunit u] is the [T_sem] of one translation unit; root kind
    ["tunit"]. *)

val of_expr : Ast.expr -> Sv_tree.Label.tree
(** Tree of a single expression (exposed for tests). *)

val of_stmt : Ast.stmt -> Sv_tree.Label.tree
(** Tree of a single statement (exposed for tests). *)

val inline_calls :
  env:(string -> Ast.func option) -> depth:int -> Ast.tunit -> Ast.tunit
(** [inline_calls ~env ~depth u] rewrites the unit for the [T_sem+i]
    variant: every call whose callee name [env] resolves to a function
    {e definition} is replaced by a block containing the callee's body
    (recursively, to [depth] levels; recursion through the same name is
    cut). Parameters are not substituted — the variant measures the
    semantic mass a library model drags in, not dataflow. *)
