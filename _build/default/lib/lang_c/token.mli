(** MiniC tokens and lexer.

    MiniC is the C++-like mini-language SilverVale-ML analyses in place of
    real C/C++ (see DESIGN.md). Its lexer keeps {e every} lexeme —
    comments, preprocessor lines, pragmas — with full source spans, so the
    concrete syntax tree can reconstruct the source exactly; this is the
    property the paper obtains from tree-sitter (§IV-C).

    Dialect-specific lexemes are first-class: OpenMP/OpenACC [#pragma]
    lines, CUDA/HIP triple-chevron launches ([<<<] / [>>>]) and attribute
    keywords ([__global__] etc.), and lambda introducers. *)

type kind =
  | Ident          (** identifier, possibly [::]-qualified by the parser *)
  | Keyword        (** language keyword or attribute, e.g. [for], [__global__] *)
  | IntLit
  | FloatLit
  | StringLit
  | CharLit
  | Punct          (** delimiters and separators: [(){}\[\];,] *)
  | Op             (** operators, including [<<<] and [>>>] *)
  | PpDirective    (** a whole preprocessor line except pragmas, e.g. [#include <x>] *)
  | Pragma         (** a whole [#pragma ...] line, kept verbatim *)
  | LineComment
  | BlockComment
  | Whitespace     (** spaces, tabs and newlines, kept for reconstruction *)

type t = {
  kind : kind;
  text : string;            (** exact source substring *)
  loc : Sv_util.Loc.t;      (** span of [text] in the source file *)
}

val keywords : string list
(** All MiniC keywords, including type keywords and dialect attributes. *)

val is_keyword : string -> bool
(** [is_keyword s] tests membership in {!keywords}. *)

exception Lex_error of string * Sv_util.Loc.t
(** Raised on characters no rule accepts. *)

val lex : file:string -> string -> t list
(** [lex ~file src] tokenises [src]. Concatenating the [text] of the
    result reproduces [src] exactly (the round-trip property tested in
    the suite). Raises {!Lex_error} on unexpected input. *)

val significant : t list -> t list
(** [significant ts] drops whitespace and comments — the stream the parser
    and the normalised CST consume. *)

val kind_name : kind -> string
(** Stable lowercase name of a token kind, used as tree-label kind. *)
