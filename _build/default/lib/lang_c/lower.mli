(** Lowering MiniC to the SilverVale IR (the [T_ir] backend path).

    Mirrors an unoptimised compiler backend (§IV-A): every local lives in
    an [alloca] slot, control structures become basic blocks, lambdas are
    lifted to module-level functions, and the dialect constructs lower to
    their runtime shapes:

    - OpenMP [parallel]/[task]/[taskloop] regions are outlined into
      host functions invoked through a fork-call runtime stub;
    - OpenMP [target] (and OpenACC compute) regions are outlined into
      {e device} functions invoked through an offload runtime call, with a
      per-region offload-entry global;
    - CUDA/HIP [__global__] kernels become device functions; each launch
      lowers to a push-configuration + launch-kernel call pair; a module
      with any device code also receives the registration boilerplate
      (fatbin global, module ctor/dtor stubs) — the driver code §V-C finds
      inflating [T_ir] for offload models.

    Only structural fidelity is needed for the metric, so no layout or
    dataflow facts are computed: member accesses use index 0, captures are
    not materialised. *)

val lower : file:string -> Ast.tunit list -> Sv_ir.Ir.modul
(** [lower ~file units] lowers a unit (main file plus headers, in include
    order) into one IR module. The result passes {!Ir.validate} — the test
    suite checks this for the whole corpus. *)
