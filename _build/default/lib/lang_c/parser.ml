module Loc = Sv_util.Loc
open Ast

exception Parse_error of string * Loc.t

type state = { toks : Token.t array; mutable pos : int; file : string }

let eof_loc st =
  if Array.length st.toks = 0 then Loc.make ~file:st.file ~line:1 ~col:0
  else st.toks.(Array.length st.toks - 1).loc

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None
let peek_at st k =
  if st.pos + k < Array.length st.toks then Some st.toks.(st.pos + k) else None

let loc_here st = match peek st with Some t -> t.loc | None -> eof_loc st

let fail st msg = raise (Parse_error (msg, loc_here st))

let next st =
  match peek st with
  | Some t ->
      st.pos <- st.pos + 1;
      t
  | None -> fail st "unexpected end of input"

let is_text st text =
  match peek st with Some t -> t.text = text | None -> false

let eat st text =
  match peek st with
  | Some t when t.text = text -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %S" text)

let accept st text =
  if is_text st text then begin
    st.pos <- st.pos + 1;
    true
  end
  else false

(* Backtracking: run [f]; on Parse_error restore position and return
   None. *)
let try_parse st f =
  let save = st.pos in
  try Some (f st)
  with Parse_error _ ->
    st.pos <- save;
    None

(* --- directives ----------------------------------------------------- *)

let parse_directive (tok : Token.t) =
  match Cst.directive_label tok with
  | None -> None
  | Some lbl ->
      let origin = if lbl.Sv_tree.Label.kind = "omp-directive" then `Omp else `Acc in
      let clauses = Cst.split_directive lbl.Sv_tree.Label.text in
      Some { d_origin = origin; d_clauses = clauses; d_loc = tok.loc }

let standalone_clauses =
  [ "barrier"; "taskwait"; "taskyield"; "flush"; "wait"; "update"; "init" ]

let directive_is_standalone d =
  let words = List.map fst d.d_clauses in
  (* [target enter data] / [target exit data] and OpenACC data movement
     directives govern no statement *)
  List.exists (fun w -> List.mem w [ "enter"; "exit" ]) words
  || (match words with
     | w :: _ -> List.mem w standalone_clauses
     | [] -> true)

(* --- types ---------------------------------------------------------- *)

let type_keywords =
  [ "void"; "bool"; "char"; "int"; "long"; "float"; "double"; "auto"; "size_t"; "unsigned" ]

let is_type_start st =
  match peek st with
  | Some { kind = Token.Keyword; text; _ } ->
      List.mem text type_keywords || text = "const" || text = "struct"
  | Some { kind = Token.Ident; _ } -> true
  | _ -> false

(* Parse a qualified name: Ident (:: Ident)*. *)
let parse_qname st =
  let t = next st in
  if t.kind <> Token.Ident then fail st "expected identifier";
  let buf = Buffer.create 16 in
  Buffer.add_string buf t.text;
  let loc = ref t.loc in
  while is_text st "::" do
    eat st "::";
    let t2 = next st in
    if t2.kind <> Token.Ident && t2.kind <> Token.Keyword then
      fail st "expected identifier after ::";
    Buffer.add_string buf "::";
    Buffer.add_string buf t2.text;
    loc := Loc.span !loc t2.loc
  done;
  (Buffer.contents buf, !loc)

let rec parse_type st =
  let const_prefix = accept st "const" in
  let _ = accept st "struct" in
  let base =
    match peek st with
    | Some { kind = Token.Keyword; text; _ } when List.mem text type_keywords ->
        let _ = next st in
        (match text with
        | "void" -> TVoid
        | "bool" -> TBool
        | "char" -> TChar
        | "int" -> TInt
        | "long" ->
            let _ = accept st "long" in
            let _ = accept st "int" in
            TLong
        | "float" -> TFloat
        | "double" -> TDouble
        | "auto" -> TAuto
        | "size_t" -> TSizeT
        | "unsigned" ->
            let _ = accept st "int" in
            let _ = accept st "long" in
            TInt
        | _ -> fail st "unreachable type keyword")
    | Some { kind = Token.Ident; _ } ->
        let name, _ = parse_qname st in
        let targs = if is_text st "<" then parse_targs st else [] in
        TNamed (name, targs)
    | _ -> fail st "expected a type"
  in
  let base = if const_prefix then TConst base else base in
  parse_type_suffix st base

and parse_type_suffix st base =
  if accept st "*" then begin
    let _ = accept st "const" in
    let _ = accept st "__restrict__" in
    let _ = accept st "restrict" in
    parse_type_suffix st (TPtr base)
  end
  else if accept st "&" then parse_type_suffix st (TRef base)
  else base

and parse_targs st =
  eat st "<";
  let args = ref [] in
  if not (is_text st ">") then begin
    let rec loop () =
      let arg =
        match peek st with
        | Some { kind = Token.IntLit; text; _ } ->
            let _ = next st in
            IntArg (int_of_string text)
        | Some { kind = Token.Keyword; text = "class"; _ } ->
            (* kernel-name tag: [parallel_for<class k>] *)
            let _ = next st in
            let t = next st in
            if t.kind <> Token.Ident then fail st "expected kernel name after class";
            TyArg (TNamed ("class " ^ t.text, []))
        | _ -> TyArg (parse_type st)
      in
      args := arg :: !args;
      if accept st "," then loop ()
    in
    loop ()
  end;
  eat st ">";
  List.rev !args

(* --- expressions ----------------------------------------------------- *)

let binop_of_text = function
  | "+" -> Some Add | "-" -> Some Sub | "*" -> Some Mul | "/" -> Some Div
  | "%" -> Some Mod | "==" -> Some Eq | "!=" -> Some Ne | "<" -> Some Lt
  | ">" -> Some Gt | "<=" -> Some Le | ">=" -> Some Ge | "&&" -> Some LAnd
  | "||" -> Some LOr | "&" -> Some BitAnd | "|" -> Some BitOr
  | "^" -> Some BitXor | "<<" -> Some Shl | ">>" -> Some Shr
  | _ -> None

(* Precedence levels, loosest first. *)
let binop_levels =
  [
    [ LOr ];
    [ LAnd ];
    [ BitOr ];
    [ BitXor ];
    [ BitAnd ];
    [ Eq; Ne ];
    [ Lt; Gt; Le; Ge ];
    [ Shl; Shr ];
    [ Add; Sub ];
    [ Mul; Div; Mod ];
  ]

let compound_ops =
  [ ("+=", Add); ("-=", Sub); ("*=", Mul); ("/=", Div); ("%=", Mod);
    ("&=", BitAnd); ("|=", BitOr); ("^=", BitXor); ("<<=", Shl); (">>=", Shr) ]

let mk loc e = { e; eloc = loc }

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_ternary st in
  match peek st with
  | Some { text = "="; kind = Token.Op; _ } ->
      let t = next st in
      let rhs = parse_assign st in
      mk (Loc.span t.loc rhs.eloc) (Assign (None, lhs, rhs))
  | Some { text; kind = Token.Op; _ } when List.mem_assoc text compound_ops ->
      let t = next st in
      let rhs = parse_assign st in
      mk (Loc.span t.loc rhs.eloc) (Assign (Some (List.assoc text compound_ops), lhs, rhs))
  | _ -> lhs

and parse_ternary st =
  let cond = parse_binary st 0 in
  if is_text st "?" then begin
    eat st "?";
    let a = parse_assign st in
    eat st ":";
    let b = parse_assign st in
    mk (Loc.span cond.eloc b.eloc) (Ternary (cond, a, b))
  end
  else cond

and parse_binary st level =
  if level >= List.length binop_levels then parse_unary st
  else begin
    let ops = List.nth binop_levels level in
    let lhs = ref (parse_binary st (level + 1)) in
    let continue = ref true in
    while !continue do
      match peek st with
      | Some { kind = Token.Op; text; _ } -> (
          match binop_of_text text with
          | Some op when List.mem op ops ->
              let _ = next st in
              let rhs = parse_binary st (level + 1) in
              lhs := mk (Loc.span !lhs.eloc rhs.eloc) (Binary (op, !lhs, rhs))
          | _ -> continue := false)
      | _ -> continue := false
    done;
    !lhs
  end

and parse_unary st =
  match peek st with
  | Some ({ kind = Token.Op; text; _ } as t) -> (
      match text with
      | "-" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (Neg, e))
      | "!" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (Not, e))
      | "~" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (BitNot, e))
      | "++" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (PreInc, e))
      | "--" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (PreDec, e))
      | "*" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (Deref, e))
      | "&" -> let _ = next st in let e = parse_unary st in mk (Loc.span t.loc e.eloc) (Unary (AddrOf, e))
      | "+" -> let _ = next st in parse_unary st
      | _ -> parse_postfix st)
  | Some { kind = Token.Keyword; text = "sizeof"; _ } ->
      let t = next st in
      eat st "(";
      let ty = parse_type st in
      eat st ")";
      mk t.loc (SizeofT ty)
  | Some { kind = Token.Keyword; text = "new"; _ } ->
      let t = next st in
      let ty = parse_type st in
      if accept st "[" then begin
        let n = parse_expr st in
        eat st "]";
        mk (Loc.span t.loc n.eloc) (New (ty, Some n))
      end
      else begin
        (* allow [new T(args)] with args ignored as constructor call *)
        if is_text st "(" then begin
          eat st "(";
          let rec skip d = if d = 0 then () else
            match (next st).text with
            | "(" -> skip (d + 1)
            | ")" -> skip (d - 1)
            | _ -> skip d
          in
          skip 1
        end;
        mk t.loc (New (ty, None))
      end
  | _ -> parse_postfix st

and parse_args st =
  eat st "(";
  let args = ref [] in
  if not (is_text st ")") then begin
    let rec loop () =
      args := parse_expr st :: !args;
      if accept st "," then loop ()
    in
    loop ()
  end;
  eat st ")";
  List.rev !args

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some { text = "("; _ } ->
        let args = parse_args st in
        e := mk !e.eloc (Call (!e, [], args))
    | Some { text = "<<<"; kind = Token.Op; _ } ->
        eat st "<<<";
        let cfg = ref [ parse_expr st ] in
        while accept st "," do
          cfg := parse_expr st :: !cfg
        done;
        eat st ">>>";
        let args = parse_args st in
        e := mk !e.eloc (KernelLaunch (!e, List.rev !cfg, args))
    | Some { text = "["; _ } ->
        eat st "[";
        let i = parse_expr st in
        eat st "]";
        e := mk (Loc.span !e.eloc i.eloc) (Index (!e, i))
    | Some { text = "."; kind = Token.Op; _ } ->
        eat st ".";
        let t = next st in
        if t.kind <> Token.Ident then fail st "expected member name";
        e := mk (Loc.span !e.eloc t.loc) (Member (!e, t.text, `Dot))
    | Some { text = "->"; kind = Token.Op; _ } ->
        eat st "->";
        let t = next st in
        if t.kind <> Token.Ident then fail st "expected member name";
        e := mk (Loc.span !e.eloc t.loc) (Member (!e, t.text, `Arrow))
    | Some { text = "++"; kind = Token.Op; _ } ->
        let t = next st in
        e := mk (Loc.span !e.eloc t.loc) (Unary (PostInc, !e))
    | Some { text = "--"; kind = Token.Op; _ } ->
        let t = next st in
        e := mk (Loc.span !e.eloc t.loc) (Unary (PostDec, !e))
    | Some { text = "<"; kind = Token.Op; _ } -> (
        (* Possible explicit template arguments on a call:
           [f<double>(x)]. Backtrack unless it parses as <targs> '('. *)
        match
          try_parse st (fun st ->
              let targs = parse_targs st in
              if not (is_text st "(") then fail st "not a template call";
              let args = parse_args st in
              (targs, args))
        with
        | Some (targs, args) -> e := mk !e.eloc (Call (!e, targs, args))
        | None -> continue := false)
    | _ -> continue := false
  done;
  !e

and parse_lambda st (intro : Token.t) =
  let capture = if String.length intro.text > 1 && intro.text.[1] = '&' then ByRef else ByValue in
  let params =
    if is_text st "(" then parse_params st else []
  in
  eat st "{";
  let body = parse_stmts_until st "}" in
  eat st "}";
  mk intro.loc (Lambda (capture, params, body))

and parse_params st =
  eat st "(";
  let params = ref [] in
  if not (is_text st ")") then begin
    let rec loop () =
      let ty = parse_type st in
      let t = next st in
      if t.kind <> Token.Ident then fail st "expected parameter name";
      params := { p_ty = ty; p_name = t.text; p_loc = t.loc } :: !params;
      if accept st "," then loop ()
    in
    loop ()
  end;
  eat st ")";
  List.rev !params

and parse_primary st =
  match peek st with
  | None -> fail st "unexpected end of expression"
  | Some t -> (
      match t.kind with
      | Token.IntLit ->
          let _ = next st in
          let text =
            String.concat ""
              (List.filter_map
                 (fun c ->
                   match c with
                   | 'u' | 'U' | 'l' | 'L' -> None
                   | c -> Some (String.make 1 c))
                 (List.init (String.length t.text) (String.get t.text)))
          in
          mk t.loc (IntE (int_of_string text))
      | Token.FloatLit ->
          let _ = next st in
          let text =
            if String.length t.text > 0
               && (t.text.[String.length t.text - 1] = 'f'
                  || t.text.[String.length t.text - 1] = 'F')
            then String.sub t.text 0 (String.length t.text - 1)
            else t.text
          in
          mk t.loc (FloatE (float_of_string text))
      | Token.StringLit ->
          let _ = next st in
          mk t.loc (StrE (Scanf.unescaped (String.sub t.text 1 (String.length t.text - 2))))
      | Token.CharLit ->
          let _ = next st in
          let inner = String.sub t.text 1 (String.length t.text - 2) in
          let c = if inner = "\\n" then '\n' else if inner = "\\t" then '\t' else inner.[0] in
          mk t.loc (CharE c)
      | Token.Keyword when t.text = "true" ->
          let _ = next st in
          mk t.loc (BoolE true)
      | Token.Keyword when t.text = "false" ->
          let _ = next st in
          mk t.loc (BoolE false)
      | Token.Keyword when t.text = "nullptr" ->
          let _ = next st in
          mk t.loc NullE
      | Token.Punct when t.text = "(" -> (
          (* Either a cast or a parenthesised expression. Only treat as a
             cast when the inside parses as a type AND looks like one
             (starts with a type keyword / const, or has pointer/ref
             suffixes). *)
          let cast =
            try_parse st (fun st ->
                eat st "(";
                let looks_typey =
                  match peek st with
                  | Some { kind = Token.Keyword; text; _ } ->
                      List.mem text type_keywords || text = "const" || text = "struct"
                  | _ -> false
                in
                let ty = parse_type st in
                let has_ptr = match ty with TPtr _ | TRef _ -> true | _ -> false in
                if not (looks_typey || has_ptr) then fail st "not a cast";
                eat st ")";
                let e = parse_unary st in
                mk t.loc (Cast (ty, e)))
          in
          match cast with
          | Some e -> e
          | None ->
              eat st "(";
              let e = parse_expr st in
              eat st ")";
              e)
      | Token.Punct when t.text = "{" ->
          eat st "{";
          let elems = ref [] in
          if not (is_text st "}") then begin
            let rec loop () =
              elems := parse_expr st :: !elems;
              if accept st "," then loop ()
            in
            loop ()
          end;
          eat st "}";
          mk t.loc (InitList (List.rev !elems))
      | Token.Punct when t.text = "[" -> (
          (* Lambda introducer: "[=]", "[&]" or "[]". *)
          match (peek_at st 1, peek_at st 2) with
          | Some { text = "="; _ }, Some { text = "]"; _ } ->
              let _ = next st and _ = next st and _ = next st in
              parse_lambda st { t with text = "[=" }
          | Some { text = "&"; _ }, Some { text = "]"; _ } ->
              let _ = next st and _ = next st and _ = next st in
              parse_lambda st { t with text = "[&" }
          | Some { text = "]"; _ }, _ ->
              let _ = next st and _ = next st in
              parse_lambda st { t with text = "[=" }
          | _ -> fail st "unexpected '['")
      | Token.Ident ->
          let name, loc = parse_qname st in
          mk loc (Var name)
      | _ -> fail st (Printf.sprintf "unexpected token %S" t.text))

(* --- statements ------------------------------------------------------ *)

and parse_stmts_until st closer =
  let stmts = ref [] in
  while not (is_text st closer) do
    if peek st = None then fail st (Printf.sprintf "missing %S" closer);
    stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_block_or_stmt st =
  if is_text st "{" then begin
    eat st "{";
    let body = parse_stmts_until st "}" in
    eat st "}";
    body
  end
  else [ parse_stmt st ]

and parse_decl_names st ty =
  (* declarator list: name ([size])? (= init)? (, ...)* ; extra '*'
     prefixes on later declarators are accepted and folded into the shared
     type (a simplification documented in the interface). *)
  let names = ref [] in
  let arr_ty = ref ty in
  let rec one () =
    let rec stars () = if accept st "*" then stars () in
    stars ();
    let t = next st in
    if t.kind <> Token.Ident then fail st "expected declarator name";
    if accept st "[" then begin
      (match peek st with
      | Some { kind = Token.IntLit; text; _ } ->
          let _ = next st in
          arr_ty := TArr (ty, Some (int_of_string text))
      | _ -> arr_ty := TArr (ty, None));
      eat st "]"
    end;
    let init =
      if accept st "=" then Some (parse_expr st)
      else if is_text st "(" then
        (* constructor-style initialiser: [Kokkos::View<double*> a("a", n)] *)
        Some { e = InitList (parse_args st); eloc = t.loc }
      else None
    in
    names := (t.text, init) :: !names;
    if accept st "," then one ()
  in
  one ();
  (!arr_ty, List.rev !names)

and parse_decl_stmt st =
  let start = loc_here st in
  let _shared = accept st "__shared__" in
  let _static = accept st "static" in
  if not (is_type_start st) then fail st "not a declaration";
  let ty = parse_type st in
  (* Must be followed by a declarator name; otherwise not a decl. *)
  (match peek st with
  | Some { kind = Token.Ident; _ } -> ()
  | Some { kind = Token.Op; text = "*"; _ } -> ()
  | _ -> fail st "not a declaration");
  (* [x * y;] would misparse as decl only if x names a type; MiniC corpus
     types are distinguishable so the backtrack covers it. *)
  let ty, names = parse_decl_names st ty in
  (match peek st with
  | Some { text = ";"; _ } -> ()
  | _ -> fail st "expected ; after declaration");
  eat st ";";
  { s = Decl (ty, names); sloc = start }

and parse_stmt st =
  match peek st with
  | None -> fail st "expected a statement"
  | Some t -> (
      match (t.kind, t.text) with
      | Token.Pragma, _ -> (
          let _ = next st in
          match parse_directive t with
          | None ->
              (* Unknown pragma: keep as an empty directive-free block so
                 the statement count is unaffected. *)
              { s = Block []; sloc = t.loc }
          | Some d ->
              if directive_is_standalone d then { s = Directive (d, None); sloc = t.loc }
              else
                let body = parse_stmt st in
                { s = Directive (d, Some body); sloc = Loc.span t.loc body.sloc })
      | Token.PpDirective, _ ->
          (* A stray preprocessor line inside a body (post-preprocessor
             streams have none). Skip it. *)
          let _ = next st in
          { s = Block []; sloc = t.loc }
      | Token.Punct, "{" ->
          eat st "{";
          let body = parse_stmts_until st "}" in
          eat st "}";
          { s = Block body; sloc = t.loc }
      | Token.Punct, ";" ->
          eat st ";";
          { s = Block []; sloc = t.loc }
      | Token.Keyword, "if" ->
          eat st "if";
          eat st "(";
          let cond = parse_expr st in
          eat st ")";
          let then_ = parse_block_or_stmt st in
          let else_ =
            if accept st "else" then parse_block_or_stmt st else []
          in
          { s = If (cond, then_, else_); sloc = t.loc }
      | Token.Keyword, "for" ->
          eat st "for";
          eat st "(";
          let init =
            if is_text st ";" then begin
              eat st ";";
              None
            end
            else
              match try_parse st parse_decl_stmt with
              | Some d -> Some d
              | None ->
                  let e = parse_expr st in
                  eat st ";";
                  Some { s = ExprS e; sloc = e.eloc }
          in
          let cond = if is_text st ";" then None else Some (parse_expr st) in
          eat st ";";
          let step = if is_text st ")" then None else Some (parse_expr st) in
          eat st ")";
          let body = parse_block_or_stmt st in
          { s = For (init, cond, step, body); sloc = t.loc }
      | Token.Keyword, "while" ->
          eat st "while";
          eat st "(";
          let cond = parse_expr st in
          eat st ")";
          let body = parse_block_or_stmt st in
          { s = While (cond, body); sloc = t.loc }
      | Token.Keyword, "do" ->
          eat st "do";
          let body = parse_block_or_stmt st in
          eat st "while";
          eat st "(";
          let cond = parse_expr st in
          eat st ")";
          eat st ";";
          { s = DoWhile (body, cond); sloc = t.loc }
      | Token.Keyword, "return" ->
          eat st "return";
          let e = if is_text st ";" then None else Some (parse_expr st) in
          eat st ";";
          { s = Return e; sloc = t.loc }
      | Token.Keyword, "break" ->
          eat st "break";
          eat st ";";
          { s = Break; sloc = t.loc }
      | Token.Keyword, "continue" ->
          eat st "continue";
          eat st ";";
          { s = Continue; sloc = t.loc }
      | Token.Keyword, "delete" ->
          eat st "delete";
          let arr =
            if accept st "[" then begin
              eat st "]";
              true
            end
            else false
          in
          let e = parse_expr st in
          eat st ";";
          { s = DeleteS (e, arr); sloc = t.loc }
      | _ -> (
          match try_parse st parse_decl_stmt with
          | Some d -> d
          | None ->
              let e = parse_expr st in
              eat st ";";
              { s = ExprS e; sloc = e.eloc }))

(* --- top level ------------------------------------------------------- *)

let attr_of_text = function
  | "__global__" -> Some AGlobal
  | "__device__" -> Some ADevice
  | "__host__" -> Some AHost
  | "__shared__" -> Some AShared
  | "__constant__" -> Some AConstant
  | "static" -> Some AStatic
  | "inline" | "__forceinline__" -> Some AInline
  | "extern" -> Some AExtern
  | _ -> None

let parse_attrs st =
  let attrs = ref [] in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some { kind = Token.Keyword; text; _ } -> (
        match attr_of_text text with
        | Some a ->
            let _ = next st in
            attrs := a :: !attrs
        | None -> continue := false)
    | _ -> continue := false
  done;
  List.rev !attrs

let parse_tparams st =
  (* template < typename T , typename U > *)
  eat st "template";
  eat st "<";
  let names = ref [] in
  let rec loop () =
    (if accept st "typename" then ()
     else if accept st "class" then ()
     else fail st "expected typename");
    let t = next st in
    if t.kind <> Token.Ident then fail st "expected template parameter name";
    names := t.text :: !names;
    if accept st "," then loop ()
  in
  loop ();
  eat st ">";
  List.rev !names

let parse_record st =
  let t0 = loc_here st in
  eat st "struct";
  let name = next st in
  if name.kind <> Token.Ident then fail st "expected struct name";
  if accept st ";" then { r_name = name.text; r_fields = []; r_loc = t0 }
  else begin
    eat st "{";
    let fields = ref [] in
    while not (is_text st "}") do
      let ty = parse_type st in
      let rec names () =
        let t = next st in
        if t.kind <> Token.Ident then fail st "expected field name";
        fields := (ty, t.text) :: !fields;
        if accept st "," then names ()
      in
      names ();
      eat st ";"
    done;
    eat st "}";
    eat st ";";
    { r_name = name.text; r_fields = List.rev !fields; r_loc = t0 }
  end

let parse_top st : top =
  match peek st with
  | None -> fail st "expected a top-level declaration"
  | Some t -> (
      match (t.kind, t.text) with
      | Token.Pragma, _ -> (
          let _ = next st in
          match parse_directive t with
          | Some d -> TopDirective d
          | None ->
              TopDirective { d_origin = `Omp; d_clauses = []; d_loc = t.loc })
      | Token.Keyword, "using" ->
          eat st "using";
          let _ = accept st "namespace" in
          let name, loc = parse_qname st in
          eat st ";";
          Using (name, loc)
      | Token.Keyword, "struct"
        when (match peek_at st 2 with
             | Some { text = "{"; _ } | Some { text = ";"; _ } -> true
             | _ -> false) ->
          Record (parse_record st)
      | Token.Keyword, "template" ->
          let tparams = parse_tparams st in
          let attrs = parse_attrs st in
          let ret = parse_type st in
          let name = next st in
          if name.kind <> Token.Ident then fail st "expected function name";
          let params = parse_params st in
          let body =
            if accept st ";" then None
            else begin
              eat st "{";
              let b = parse_stmts_until st "}" in
              eat st "}";
              Some b
            end
          in
          Func
            {
              f_attrs = attrs;
              f_tparams = tparams;
              f_ret = ret;
              f_name = name.text;
              f_params = params;
              f_body = body;
              f_loc = t.loc;
            }
      | _ ->
          let attrs = parse_attrs st in
          let ty = parse_type st in
          let name = next st in
          if name.kind <> Token.Ident then fail st "expected a name";
          if is_text st "(" then begin
            let params = parse_params st in
            let body =
              if accept st ";" then None
              else begin
                eat st "{";
                let b = parse_stmts_until st "}" in
                eat st "}";
                Some b
              end
            in
            Func
              {
                f_attrs = attrs;
                f_tparams = [];
                f_ret = ty;
                f_name = name.text;
                f_params = params;
                f_body = body;
                f_loc = t.loc;
              }
          end
          else begin
            let ty =
              if accept st "[" then begin
                match peek st with
                | Some { kind = Token.IntLit; text; _ } ->
                    let _ = next st in
                    eat st "]";
                    TArr (ty, Some (int_of_string text))
                | _ ->
                    eat st "]";
                    TArr (ty, None)
              end
              else ty
            in
            let init = if accept st "=" then Some (parse_expr st) else None in
            eat st ";";
            GlobalVar (attrs, ty, name.text, init, t.loc)
          end)

let parse_tokens ~file toks =
  let toks =
    Array.of_list
      (List.filter
         (fun (t : Token.t) ->
           match t.kind with
           | Token.Whitespace | Token.LineComment | Token.BlockComment -> false
           | Token.PpDirective -> false
           | _ -> true)
         toks)
  in
  let st = { toks; pos = 0; file } in
  let tops = ref [] in
  while peek st <> None do
    tops := parse_top st :: !tops
  done;
  { t_file = file; t_tops = List.rev !tops }

let parse ~file src = parse_tokens ~file (Token.lex ~file src)
