(** MiniC preprocessor.

    Runs between the lexer and the parser, like cpp: handles
    [#include "..."] splicing, object-like [#define] macros, conditional
    sections ([#ifdef]/[#ifndef]/[#else]/[#endif]) driven by the
    compile-command [-D] flags, and [#pragma once].

    Pragmas other than [once] (OpenMP, OpenACC) pass through untouched —
    the "special provision" of §III-C that keeps directive semantics
    visible after preprocessing.

    Tokens spliced from an included file keep that file's locations, which
    is what lets the unit construction of Eq. (1) attribute tree nodes to
    headers; tokens produced by macro expansion take the location of the
    use site, as compilers report. *)

type result = {
  tokens : Token.t list;
      (** the expanded significant stream (whitespace/comments dropped),
          pragmas included *)
  deps : string list;
      (** include files actually spliced, in first-inclusion order,
          excluding the root file *)
  missing : string list;
      (** include names the resolver could not provide (system headers);
          recorded, not fatal — mirroring how SilverVale masks system
          headers out *)
}

val run :
  resolve:(string -> string option) ->
  defines:(string * string) list ->
  file:string ->
  string ->
  result
(** [run ~resolve ~defines ~file src] preprocesses [src]. [resolve]
    maps an include spelling (the text between quotes or angle brackets)
    to file contents. Each file is spliced at most once (implicit include
    guard). Macro expansion is iterated to a small fixed depth so
    self-referential macros terminate. *)

val parse_define : string -> (string * string) option
(** [parse_define line] splits a raw ["#define NAME BODY"] line into
    [(NAME, BODY)]; [None] when the line is not an object-like define. *)
