module Loc = Sv_util.Loc
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

type node =
  | Tok of Token.t
  | Group of char * node list * Loc.t

let closer_of = function '(' -> ")" | '{' -> "}" | '[' -> "]" | _ -> assert false

let parse tokens =
  (* One stack frame per open bracket: the opener and the children
     accumulated so far (reversed). *)
  let rec go stack acc = function
    | [] ->
        (* Unclosed groups degrade to a plain opener token followed by
           their contents. *)
        let rec unwind stack inner =
          match stack with
          | [] -> inner
          | ((opener : Token.t), outer_acc) :: rest ->
              unwind rest (List.rev_append outer_acc (Tok opener :: inner))
        in
        unwind stack (List.rev acc)
    | (t : Token.t) :: rest -> (
        match t.kind with
        | Punct when t.text = "(" || t.text = "{" || t.text = "[" ->
            go ((t, acc) :: stack) [] rest
        | Punct when t.text = ")" || t.text = "}" || t.text = "]" -> (
            match stack with
            | (opener, outer_acc) :: stack'
              when closer_of opener.text.[0] = t.text ->
                let g =
                  Group (opener.text.[0], List.rev acc, Loc.span opener.loc t.loc)
                in
                go stack' (g :: outer_acc) rest
            | _ -> go stack (Tok t :: acc) rest)
        | _ -> go stack (Tok t :: acc) rest)
  in
  go [] [] tokens

let reconstruct tokens = String.concat "" (List.map (fun (t : Token.t) -> t.text) tokens)

(* --- directive structuring ---------------------------------------- *)

let split_directive = Sv_util.Directive_syntax.split

let directive_label (tok : Token.t) =
  if tok.kind <> Token.Pragma then None
  else
    let text = Sv_util.Xstring.collapse_spaces (String.trim tok.text) in
    let body () =
      if String.length text > 12 then String.sub text 12 (String.length text - 12)
      else ""
    in
    if Sv_util.Xstring.starts_with ~prefix:"#pragma omp" text then
      Some (Label.v ~text:(body ()) ~loc:tok.loc "omp-directive")
    else if Sv_util.Xstring.starts_with ~prefix:"#pragma acc" text then
      Some (Label.v ~text:(body ()) ~loc:tok.loc "acc-directive")
    else None

let directive_tree (tok : Token.t) =
  match directive_label tok with
  | None -> None
  | Some root ->
      let prefix = if root.Label.kind = "omp-directive" then "omp" else "acc" in
      let clause_node (word, args) =
        let kids =
          match args with
          | None -> []
          | Some a -> [ Tree.leaf (Label.v ~text:a ~loc:tok.loc (prefix ^ "-clause-args")) ]
        in
        Tree.node (Label.v ~text:word ~loc:tok.loc (prefix ^ ":" ^ word)) kids
      in
      let clauses = split_directive root.Label.text in
      Some (Tree.node { root with Label.text = "" } (List.map clause_node clauses))

(* --- normalisation to T_src ---------------------------------------- *)

let pp_directive_tree (tok : Token.t) =
  (* "#include <x>" / "#define N V": keep the directive keyword, anonymise
     the payload (it names files and macros, i.e. programmer names). *)
  let text = String.trim tok.text in
  let word =
    match String.index_opt text ' ' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  Tree.leaf (Label.v ~text:word ~loc:tok.loc "pp-directive")

let token_tree (t : Token.t) : Label.tree option =
  match t.kind with
  | Token.Whitespace | Token.LineComment | Token.BlockComment -> None
  | Token.Punct -> None (* control tokens: ; , and stray brackets *)
  | Token.Ident -> Some (Tree.leaf (Label.v ~loc:t.loc "ident"))
  | Token.Keyword -> Some (Tree.leaf (Label.v ~text:t.text ~loc:t.loc "kw"))
  | Token.Op -> Some (Tree.leaf (Label.v ~text:t.text ~loc:t.loc "op"))
  | Token.IntLit | Token.FloatLit | Token.StringLit | Token.CharLit ->
      Some (Tree.leaf (Label.v ~text:t.text ~loc:t.loc (Token.kind_name t.kind)))
  | Token.Pragma -> (
      match directive_tree t with
      | Some d -> Some d
      | None -> Some (Tree.leaf (Label.v ~loc:t.loc "pragma")))
  | Token.PpDirective -> Some (pp_directive_tree t)

let group_kind = function
  | '(' -> "parens"
  | '{' -> "braces"
  | '[' -> "brackets"
  | _ -> "group"

let rec node_tree = function
  | Tok t -> token_tree t
  | Group (c, kids, loc) ->
      Some (Tree.node (Label.v ~loc (group_kind c)) (List.filter_map node_tree kids))

let t_src_of_tokens ~file tokens =
  let nodes = parse (Token.significant tokens) in
  Tree.node
    (Label.v ~text:"" ~loc:(Loc.make ~file ~line:1 ~col:0) "src-file")
    (List.filter_map node_tree nodes)

let t_src ~file src = t_src_of_tokens ~file (Token.lex ~file src)
