type ty =
  | TVoid
  | TBool
  | TChar
  | TInt
  | TLong
  | TSizeT
  | TFloat
  | TDouble
  | TAuto
  | TPtr of ty
  | TRef of ty
  | TConst of ty
  | TNamed of string * targ list
  | TArr of ty * int option

and targ = TyArg of ty | IntArg of int

type unop = Neg | Not | BitNot | PreInc | PreDec | PostInc | PostDec | Deref | AddrOf

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | LAnd | LOr
  | BitAnd | BitOr | BitXor | Shl | Shr

type capture = ByValue | ByRef

type expr = { e : expr_node; eloc : Sv_util.Loc.t }

and expr_node =
  | IntE of int
  | FloatE of float
  | BoolE of bool
  | StrE of string
  | CharE of char
  | NullE
  | Var of string
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of binop option * expr * expr
  | Ternary of expr * expr * expr
  | Call of expr * targ list * expr list
  | KernelLaunch of expr * expr list * expr list
  | Index of expr * expr
  | Member of expr * string * [ `Dot | `Arrow ]
  | Lambda of capture * param list * stmt list
  | Cast of ty * expr
  | New of ty * expr option
  | InitList of expr list
  | SizeofT of ty

and param = { p_ty : ty; p_name : string; p_loc : Sv_util.Loc.t }

and stmt = { s : stmt_node; sloc : Sv_util.Loc.t }

and stmt_node =
  | Decl of ty * (string * expr option) list
  | ExprS of expr
  | If of expr * stmt list * stmt list
  | For of stmt option * expr option * expr option * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Directive of directive * stmt option
  | DeleteS of expr * bool

and directive = {
  d_origin : [ `Omp | `Acc ];
  d_clauses : (string * string option) list;
  d_loc : Sv_util.Loc.t;
}

type attr = AGlobal | ADevice | AHost | AShared | AStatic | AInline | AExtern | AConstant

type func = {
  f_attrs : attr list;
  f_tparams : string list;
  f_ret : ty;
  f_name : string;
  f_params : param list;
  f_body : stmt list option;
  f_loc : Sv_util.Loc.t;
}

type record = { r_name : string; r_fields : (ty * string) list; r_loc : Sv_util.Loc.t }

type top =
  | Func of func
  | Record of record
  | GlobalVar of attr list * ty * string * expr option * Sv_util.Loc.t
  | Using of string * Sv_util.Loc.t
  | TopDirective of directive
      (** a top-level pragma such as [#pragma omp declare target] *)

type tunit = { t_file : string; t_tops : top list }

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Gt -> ">" | Le -> "<=" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"
  | BitAnd -> "&" | BitOr -> "|" | BitXor -> "^" | Shl -> "<<" | Shr -> ">>"

let unop_name = function
  | Neg -> "-" | Not -> "!" | BitNot -> "~"
  | PreInc -> "++pre" | PreDec -> "--pre"
  | PostInc -> "++post" | PostDec -> "--post"
  | Deref -> "*" | AddrOf -> "&"

let rec ty_kind = function
  | TVoid -> "void" | TBool -> "bool" | TChar -> "char" | TInt -> "int"
  | TLong -> "long" | TSizeT -> "size_t" | TFloat -> "float"
  | TDouble -> "double" | TAuto -> "auto"
  | TPtr _ -> "ptr" | TRef _ -> "ref" | TConst t -> ty_kind t
  | TNamed _ -> "named-type"
  | TArr _ -> "array"

let functions u =
  List.filter_map (function Func f -> Some f | _ -> None) u.t_tops

let find_function u name =
  List.find_opt (fun f -> f.f_name = name && f.f_body <> None) (functions u)
