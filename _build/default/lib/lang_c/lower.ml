module Loc = Sv_util.Loc
module Ir = Sv_ir.Ir
open Ast

(* Module-level lowering state: lifted lambdas, outlined regions, runtime
   stubs and globals accumulate here. *)
type mstate = {
  mutable funcs : Ir.func list;  (* reversed *)
  mutable globals : Ir.global list;  (* reversed *)
  mutable lifted : int;
  mutable outlined : int;
  mutable has_device : bool;
  mutable has_fork : bool;
}

(* Per-function lowering state. *)
type fstate = {
  ms : mstate;
  mutable reg : int;
  mutable blocks : Ir.block list;  (* reversed, finished blocks *)
  mutable cur_id : int;
  mutable cur_instrs : Ir.instr list;  (* reversed *)
  mutable next_block : int;
  mutable env : (string * int) list;  (* var -> alloca register *)
  mutable loops : (int * int) list;  (* (continue target, break target) *)
  mutable terminated : bool;
}

let rec map_ty = function
  | TVoid -> Ir.Void
  | TBool -> Ir.I1
  | TChar -> Ir.I32
  | TInt -> Ir.I32
  | TLong | TSizeT -> Ir.I64
  | TFloat -> Ir.F32
  | TDouble -> Ir.F64
  | TAuto -> Ir.F64
  | TPtr _ | TRef _ | TNamed _ | TArr _ -> Ir.Ptr
  | TConst t -> map_ty t

let fresh fs =
  let r = fs.reg in
  fs.reg <- r + 1;
  r

let emit fs ~loc node = fs.cur_instrs <- { Ir.i = node; iloc = loc } :: fs.cur_instrs

let new_block_id fs =
  let id = fs.next_block in
  fs.next_block <- id + 1;
  id

let finish_block fs term =
  fs.blocks <-
    { Ir.b_id = fs.cur_id; b_instrs = List.rev fs.cur_instrs; b_term = term }
    :: fs.blocks;
  fs.cur_instrs <- [];
  fs.terminated <- false

let start_block fs id =
  fs.cur_id <- id;
  fs.cur_instrs <- [];
  fs.terminated <- false

(* --- expressions ----------------------------------------------------- *)

let float_ty = function Ir.F32 | Ir.F64 -> true | _ -> false

let join_ty a b =
  match (a, b) with
  | Ir.F64, _ | _, Ir.F64 -> Ir.F64
  | Ir.F32, _ | _, Ir.F32 -> Ir.F32
  | Ir.I64, _ | _, Ir.I64 -> Ir.I64
  | Ir.Ptr, _ | _, Ir.Ptr -> Ir.Ptr
  | _ -> Ir.I32

let binop_ir_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Mod -> "rem"
  | BitAnd | LAnd -> "and" | BitOr | LOr -> "or" | BitXor -> "xor"
  | Shl -> "shl" | Shr -> "shr"
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Gt -> "gt" | Le -> "le" | Ge -> "ge"

let is_cmp = function Eq | Ne | Lt | Gt | Le | Ge -> true | _ -> false

let rec lower_expr fs (e : expr) : Ir.value * Ir.ty =
  let loc = e.eloc in
  match e.e with
  | IntE n -> (Ir.ImmI n, Ir.I32)
  | FloatE f -> (Ir.ImmF f, Ir.F64)
  | BoolE b -> (Ir.ImmI (if b then 1 else 0), Ir.I1)
  | CharE c -> (Ir.ImmI (Char.code c), Ir.I32)
  | StrE _ -> (Ir.Glob ".str", Ir.Ptr)
  | NullE -> (Ir.ImmI 0, Ir.Ptr)
  | Var name -> (
      match List.assoc_opt name fs.env with
      | Some slot ->
          let r = fresh fs in
          emit fs ~loc (Ir.Load (r, Ir.F64, Ir.Reg slot));
          (Ir.Reg r, Ir.F64)
      | None -> (Ir.Glob name, Ir.Ptr))
  | Unary (op, a) -> lower_unary fs ~loc op a
  | Binary (op, a, b) ->
      let va, ta = lower_expr fs a in
      let vb, tb = lower_expr fs b in
      let ty = join_ty ta tb in
      let r = fresh fs in
      if is_cmp op then begin
        emit fs ~loc (Ir.Cmp (r, binop_ir_name op, ty, va, vb));
        (Ir.Reg r, Ir.I1)
      end
      else begin
        emit fs ~loc (Ir.Bin (r, binop_ir_name op, ty, va, vb));
        (Ir.Reg r, ty)
      end
  | Assign (op, lhs, rhs) ->
      let addr, lty = lower_addr fs lhs in
      let vr, tr = lower_expr fs rhs in
      let stored =
        match op with
        | None -> vr
        | Some bop ->
            let cur = fresh fs in
            emit fs ~loc (Ir.Load (cur, lty, addr));
            let r = fresh fs in
            emit fs ~loc (Ir.Bin (r, binop_ir_name bop, join_ty lty tr, Ir.Reg cur, vr));
            Ir.Reg r
      in
      emit fs ~loc (Ir.Store (lty, stored, addr));
      (stored, lty)
  | Ternary (c, a, b) ->
      let vc, _ = lower_expr fs c in
      let va, ta = lower_expr fs a in
      let vb, tb = lower_expr fs b in
      let r = fresh fs in
      emit fs ~loc (Ir.Select (r, vc, va, vb));
      (Ir.Reg r, join_ty ta tb)
  | Call (callee, _, args) ->
      let vcallee =
        match callee.e with
        | Var name -> Ir.Glob name
        | _ -> fst (lower_expr fs callee)
      in
      let vargs = List.map (fun a -> fst (lower_expr fs a)) args in
      let r = fresh fs in
      emit fs ~loc (Ir.CallI (Some r, Ir.F64, vcallee, vargs));
      (Ir.Reg r, Ir.F64)
  | KernelLaunch (callee, cfg, args) ->
      let vcfg = List.map (fun c -> fst (lower_expr fs c)) cfg in
      emit fs ~loc (Ir.CallI (None, Ir.I32, Ir.Glob "__push_call_configuration", vcfg));
      let vcallee =
        match callee.e with Var n -> Ir.Glob n | _ -> fst (lower_expr fs callee)
      in
      let vargs = List.map (fun a -> fst (lower_expr fs a)) args in
      emit fs ~loc (Ir.CallI (None, Ir.I32, Ir.Glob "__launch_kernel", vcallee :: vargs));
      fs.ms.has_device <- true;
      (Ir.Undef, Ir.Void)
  | Index (a, i) ->
      let addr, ty = lower_addr fs e in
      ignore (a, i);
      let r = fresh fs in
      emit fs ~loc (Ir.Load (r, ty, addr));
      (Ir.Reg r, ty)
  | Member (_, _, _) ->
      let addr, ty = lower_addr fs e in
      let r = fresh fs in
      emit fs ~loc (Ir.Load (r, ty, addr));
      (Ir.Reg r, ty)
  | Lambda (_, params, body) ->
      let name = lift_lambda fs ~loc params body in
      (Ir.Glob name, Ir.Ptr)
  | Cast (ty, a) ->
      let va, ta = lower_expr fs a in
      let ity = map_ty ty in
      if ity = ta then (va, ity)
      else begin
        let r = fresh fs in
        let op =
          match (float_ty ta, float_ty ity) with
          | true, false -> "fptosi"
          | false, true -> "sitofp"
          | true, true -> "fpcast"
          | false, false -> "intcast"
        in
        emit fs ~loc (Ir.CastI (r, op, ity, va));
        (Ir.Reg r, ity)
      end
  | New (ty, n) ->
      let size = match n with Some n -> fst (lower_expr fs n) | None -> Ir.ImmI 1 in
      let r = fresh fs in
      emit fs ~loc (Ir.CallI (Some r, Ir.Ptr, Ir.Glob "malloc", [ size ]));
      ignore (map_ty ty);
      (Ir.Reg r, Ir.Ptr)
  | InitList es ->
      let r = fresh fs in
      emit fs ~loc (Ir.Alloca (r, Ir.Ptr));
      List.iter
        (fun el ->
          let v, ty = lower_expr fs el in
          emit fs ~loc (Ir.Store (ty, v, Ir.Reg r)))
        es;
      (Ir.Reg r, Ir.Ptr)
  | SizeofT ty -> (Ir.ImmI (match map_ty ty with Ir.F64 | Ir.I64 -> 8 | _ -> 4), Ir.I64)

and lower_unary fs ~loc op a =
  match op with
  | Neg ->
      let v, ty = lower_expr fs a in
      let r = fresh fs in
      emit fs ~loc (Ir.Bin (r, "sub", ty, (if float_ty ty then Ir.ImmF 0.0 else Ir.ImmI 0), v));
      (Ir.Reg r, ty)
  | Not ->
      let v, _ = lower_expr fs a in
      let r = fresh fs in
      emit fs ~loc (Ir.Cmp (r, "eq", Ir.I1, v, Ir.ImmI 0));
      (Ir.Reg r, Ir.I1)
  | BitNot ->
      let v, ty = lower_expr fs a in
      let r = fresh fs in
      emit fs ~loc (Ir.Bin (r, "xor", ty, v, Ir.ImmI (-1)));
      (Ir.Reg r, ty)
  | PreInc | PostInc | PreDec | PostDec ->
      let addr, ty = lower_addr fs a in
      let cur = fresh fs in
      emit fs ~loc (Ir.Load (cur, ty, addr));
      let r = fresh fs in
      let opn = match op with PreInc | PostInc -> "add" | _ -> "sub" in
      emit fs ~loc (Ir.Bin (r, opn, ty, Ir.Reg cur, Ir.ImmI 1));
      emit fs ~loc (Ir.Store (ty, Ir.Reg r, addr));
      (Ir.Reg (match op with PostInc | PostDec -> cur | _ -> r), ty)
  | Deref ->
      let v, _ = lower_expr fs a in
      let r = fresh fs in
      emit fs ~loc (Ir.Load (r, Ir.F64, v));
      (Ir.Reg r, Ir.F64)
  | AddrOf -> (
      match a.e with
      | Var name -> (
          match List.assoc_opt name fs.env with
          | Some slot -> (Ir.Reg slot, Ir.Ptr)
          | None -> (Ir.Glob name, Ir.Ptr))
      | _ ->
          let addr, _ = lower_addr fs a in
          (addr, Ir.Ptr))

(* Address of an lvalue; returns (pointer value, pointee type guess). *)
and lower_addr fs (e : expr) : Ir.value * Ir.ty =
  let loc = e.eloc in
  match e.e with
  | Var name -> (
      match List.assoc_opt name fs.env with
      | Some slot -> (Ir.Reg slot, Ir.F64)
      | None -> (Ir.Glob name, Ir.F64))
  | Index (a, i) ->
      let base, _ = lower_expr fs a in
      let idx, _ = lower_expr fs i in
      let r = fresh fs in
      emit fs ~loc (Ir.Gep (r, base, idx));
      (Ir.Reg r, Ir.F64)
  | Member (a, _, _) ->
      let base, _ = lower_expr fs a in
      let r = fresh fs in
      emit fs ~loc (Ir.Gep (r, base, Ir.ImmI 0));
      (Ir.Reg r, Ir.F64)
  | Unary (Deref, a) ->
      let v, _ = lower_expr fs a in
      (v, Ir.F64)
  | _ ->
      (* Spill a computed rvalue so it has an address. *)
      let v, ty = lower_expr fs e in
      let slot = fresh fs in
      emit fs ~loc (Ir.Alloca (slot, ty));
      emit fs ~loc (Ir.Store (ty, v, Ir.Reg slot));
      (Ir.Reg slot, ty)

(* --- lambda lifting & outlining -------------------------------------- *)

and lower_body_into ms ~kind ~name ~params ~loc body =
  let fs' =
    {
      ms;
      reg = List.length params;
      blocks = [];
      cur_id = 0;
      cur_instrs = [];
      next_block = 1;
      env = [];
      loops = [];
      terminated = false;
    }
  in
  (* Bind parameters to alloca slots, -O0 style. *)
  List.iteri
    (fun i (p : param) ->
      let slot = fresh fs' in
      emit fs' ~loc (Ir.Alloca (slot, map_ty p.p_ty));
      emit fs' ~loc (Ir.Store (map_ty p.p_ty, Ir.Reg i, Ir.Reg slot));
      fs'.env <- (p.p_name, slot) :: fs'.env)
    params;
  List.iter (lower_stmt fs') body;
  if not fs'.terminated then finish_block fs' (Ir.Ret None);
  ms.funcs <-
    {
      Ir.fn_name = name;
      fn_kind = kind;
      fn_linkage = Ir.Internal;
      fn_ret = Ir.Void;
      fn_params = List.map (fun (p : param) -> map_ty p.p_ty) params;
      fn_blocks = List.rev fs'.blocks;
    }
    :: ms.funcs

and lift_lambda fs ~loc params body =
  fs.ms.lifted <- fs.ms.lifted + 1;
  let name = Printf.sprintf "lambda.%d" fs.ms.lifted in
  lower_body_into fs.ms ~kind:Ir.Host ~name ~params ~loc body;
  name

and outline fs ~loc ~device body =
  fs.ms.outlined <- fs.ms.outlined + 1;
  let name =
    if device then Printf.sprintf "__omp_offload.%d" fs.ms.outlined
    else Printf.sprintf ".omp_outlined.%d" fs.ms.outlined
  in
  let kind = if device then Ir.Device else Ir.Host in
  let ctx_param = { p_ty = TPtr TVoid; p_name = ".ctx"; p_loc = loc } in
  lower_body_into fs.ms ~kind ~name ~params:[ ctx_param ] ~loc body;
  if device then begin
    fs.ms.has_device <- true;
    fs.ms.globals <-
      { Ir.g_name = Printf.sprintf ".offload_entry.%d" fs.ms.outlined;
        g_ty = Ir.Ptr; g_const = true }
      :: fs.ms.globals
  end;
  name

(* --- statements ------------------------------------------------------ *)

and lower_stmt fs (s : stmt) =
  if fs.terminated then ()
  else
    let loc = s.sloc in
    match s.s with
    | Decl (ty, names) ->
        List.iter
          (fun (name, init) ->
            let slot = fresh fs in
            emit fs ~loc (Ir.Alloca (slot, map_ty ty));
            fs.env <- (name, slot) :: fs.env;
            match init with
            | Some e ->
                let v, vty = lower_expr fs e in
                emit fs ~loc (Ir.Store (vty, v, Ir.Reg slot))
            | None -> ())
          names
    | ExprS e -> ignore (lower_expr fs e)
    | If (c, then_, else_) ->
        let vc, _ = lower_expr fs c in
        let bt = new_block_id fs and bf = new_block_id fs and bm = new_block_id fs in
        finish_block fs (Ir.CondBr (vc, bt, bf));
        start_block fs bt;
        let saved = fs.env in
        List.iter (lower_stmt fs) then_;
        fs.env <- saved;
        if not fs.terminated then finish_block fs (Ir.Br bm) else ();
        start_block fs bf;
        List.iter (lower_stmt fs) else_;
        fs.env <- saved;
        if not fs.terminated then finish_block fs (Ir.Br bm) else ();
        start_block fs bm
    | While (c, body) ->
        let bc = new_block_id fs and bb = new_block_id fs and be = new_block_id fs in
        finish_block fs (Ir.Br bc);
        start_block fs bc;
        let vc, _ = lower_expr fs c in
        finish_block fs (Ir.CondBr (vc, bb, be));
        start_block fs bb;
        let saved_env = fs.env and saved_loops = fs.loops in
        fs.loops <- (bc, be) :: fs.loops;
        List.iter (lower_stmt fs) body;
        fs.env <- saved_env;
        fs.loops <- saved_loops;
        if not fs.terminated then finish_block fs (Ir.Br bc);
        start_block fs be
    | DoWhile (body, c) ->
        let bb = new_block_id fs and bc = new_block_id fs and be = new_block_id fs in
        finish_block fs (Ir.Br bb);
        start_block fs bb;
        let saved_env = fs.env and saved_loops = fs.loops in
        fs.loops <- (bc, be) :: fs.loops;
        List.iter (lower_stmt fs) body;
        fs.env <- saved_env;
        fs.loops <- saved_loops;
        if not fs.terminated then finish_block fs (Ir.Br bc);
        start_block fs bc;
        let vc, _ = lower_expr fs c in
        finish_block fs (Ir.CondBr (vc, bb, be));
        start_block fs be
    | For (init, cond, step, body) ->
        let saved_env = fs.env in
        (match init with Some i -> lower_stmt fs i | None -> ());
        let bc = new_block_id fs and bb = new_block_id fs in
        let bs = new_block_id fs and be = new_block_id fs in
        finish_block fs (Ir.Br bc);
        start_block fs bc;
        (match cond with
        | Some c ->
            let vc, _ = lower_expr fs c in
            finish_block fs (Ir.CondBr (vc, bb, be))
        | None -> finish_block fs (Ir.Br bb));
        start_block fs bb;
        let saved_loops = fs.loops in
        fs.loops <- (bs, be) :: fs.loops;
        List.iter (lower_stmt fs) body;
        fs.loops <- saved_loops;
        if not fs.terminated then finish_block fs (Ir.Br bs);
        start_block fs bs;
        (match step with Some e -> ignore (lower_expr fs e) | None -> ());
        finish_block fs (Ir.Br bc);
        start_block fs be;
        fs.env <- saved_env
    | Return e ->
        let v = Option.map (lower_expr fs) e in
        finish_block fs (Ir.Ret (Option.map (fun (v, ty) -> (ty, v)) v));
        fs.terminated <- true;
        (* Open an unreachable continuation block for any trailing code. *)
        let b = new_block_id fs in
        start_block fs b
    | Break -> (
        match fs.loops with
        | (_, be) :: _ ->
            finish_block fs (Ir.Br be);
            let b = new_block_id fs in
            start_block fs b
        | [] -> ())
    | Continue -> (
        match fs.loops with
        | (bc, _) :: _ ->
            finish_block fs (Ir.Br bc);
            let b = new_block_id fs in
            start_block fs b
        | [] -> ())
    | Block body ->
        let saved = fs.env in
        List.iter (lower_stmt fs) body;
        fs.env <- saved
    | DeleteS (e, _) ->
        let v, _ = lower_expr fs e in
        emit fs ~loc (Ir.CallI (None, Ir.Void, Ir.Glob "free", [ v ]))
    | Directive (d, body) -> lower_directive fs ~loc d body

and lower_directive fs ~loc d body =
  let words = List.map fst d.d_clauses in
  let has w = List.mem w words in
  let body_stmts = match body with Some b -> [ b ] | None -> [] in
  match d.d_origin with
  | `Omp when has "enter" || has "exit" ->
      emit fs ~loc
        (Ir.CallI
           ( None, Ir.Void,
             Ir.Glob (if has "enter" then "__tgt_target_data_begin" else "__tgt_target_data_end"),
             [ Ir.ImmI (-1) ] ))
  | `Omp when has "target" ->
      let name = outline fs ~loc ~device:true body_stmts in
      emit fs ~loc
        (Ir.CallI
           (None, Ir.I32, Ir.Glob "__tgt_target_kernel", [ Ir.Glob name; Ir.ImmI (-1) ]))
  | `Omp when has "parallel" || has "task" || has "taskloop" || has "sections" ->
      let name = outline fs ~loc ~device:false body_stmts in
      fs.ms.has_fork <- true;
      emit fs ~loc
        (Ir.CallI (None, Ir.Void, Ir.Glob "__kmpc_fork_call", [ Ir.Glob name; Ir.Undef ]))
  | `Omp when has "barrier" ->
      emit fs ~loc (Ir.CallI (None, Ir.Void, Ir.Glob "__kmpc_barrier", []))
  | `Omp when has "simd" || has "critical" || has "atomic" || has "master" || has "single"
    ->
      List.iter (lower_stmt fs) body_stmts
  | `Omp -> List.iter (lower_stmt fs) body_stmts
  | `Acc when has "parallel" || has "kernels" || has "loop" ->
      let name = outline fs ~loc ~device:true body_stmts in
      emit fs ~loc
        (Ir.CallI (None, Ir.I32, Ir.Glob "__tgt_target_kernel", [ Ir.Glob name; Ir.ImmI (-1) ]))
  | `Acc -> List.iter (lower_stmt fs) body_stmts

(* --- functions and module ------------------------------------------- *)

let lower_func ms (f : func) =
  match f.f_body with
  | None ->
      ms.funcs <-
        {
          Ir.fn_name = f.f_name;
          fn_kind = Ir.Host;
          fn_linkage = Ir.External;
          fn_ret = map_ty f.f_ret;
          fn_params = List.map (fun p -> map_ty p.p_ty) f.f_params;
          fn_blocks = [];
        }
        :: ms.funcs
  | Some body ->
      let device = List.mem AGlobal f.f_attrs || List.mem ADevice f.f_attrs in
      if device then ms.has_device <- true;
      let kind = if device then Ir.Device else Ir.Host in
      let fs =
        {
          ms;
          reg = List.length f.f_params;
          blocks = [];
          cur_id = 0;
          cur_instrs = [];
          next_block = 1;
          env = [];
          loops = [];
          terminated = false;
        }
      in
      List.iteri
        (fun i (p : param) ->
          let slot = fresh fs in
          emit fs ~loc:p.p_loc (Ir.Alloca (slot, map_ty p.p_ty));
          emit fs ~loc:p.p_loc (Ir.Store (map_ty p.p_ty, Ir.Reg i, Ir.Reg slot));
          fs.env <- (p.p_name, slot) :: fs.env)
        f.f_params;
      List.iter (lower_stmt fs) body;
      if not fs.terminated then
        finish_block fs
          (if map_ty f.f_ret = Ir.Void then Ir.Ret None
           else Ir.Ret (Some (map_ty f.f_ret, Ir.Undef)));
      ms.funcs <-
        {
          Ir.fn_name = f.f_name;
          fn_kind = kind;
          fn_linkage = Ir.Internal;
          fn_ret = map_ty f.f_ret;
          fn_params = List.map (fun p -> map_ty p.p_ty) f.f_params;
          fn_blocks = List.rev fs.blocks;
        }
        :: ms.funcs

(* The registration boilerplate a module with device code receives —
   fatbin wrapper global plus ctor/dtor stubs (§V-C's driver code). *)
let device_boilerplate ms ~file =
  let mk_stub name calls =
    let instrs =
      List.map
        (fun callee ->
          {
            Ir.i = Ir.CallI (None, Ir.Void, Ir.Glob callee, [ Ir.Glob "__fatbin_wrapper" ]);
            iloc = Loc.make ~file ~line:1 ~col:0;
          })
        calls
    in
    {
      Ir.fn_name = name;
      fn_kind = Ir.RuntimeStub;
      fn_linkage = Ir.Internal;
      fn_ret = Ir.Void;
      fn_params = [];
      fn_blocks = [ { Ir.b_id = 0; b_instrs = instrs; b_term = Ir.Ret None } ];
    }
  in
  ms.globals <-
    { Ir.g_name = "__fatbin_wrapper"; g_ty = Ir.Ptr; g_const = true } :: ms.globals;
  ms.funcs <-
    mk_stub "__module_dtor" [ "__unregister_fatbinary" ]
    :: mk_stub "__module_ctor" [ "__register_fatbinary"; "__register_globals"; "__register_ctor" ]
    :: mk_stub "__register_globals" [ "__register_function"; "__register_var" ]
    :: ms.funcs

let lower ~file units =
  let ms =
    { funcs = []; globals = []; lifted = 0; outlined = 0; has_device = false; has_fork = false }
  in
  List.iter
    (fun (u : tunit) ->
      List.iter
        (fun top ->
          match top with
          | Func f -> lower_func ms f
          | GlobalVar (_, ty, name, _, _) ->
              ms.globals <- { Ir.g_name = name; g_ty = map_ty ty; g_const = false } :: ms.globals
          | Record _ | Using _ | TopDirective _ -> ())
        u.t_tops)
    units;
  if ms.has_device then device_boilerplate ms ~file;
  { Ir.m_file = file; m_globals = List.rev ms.globals; m_funcs = List.rev ms.funcs }
