module Tree = Sv_tree.Tree
module Label = Sv_tree.Label
open Ast

let l ?text ?loc kind = Label.v ?text ?loc kind

let rec of_ty ty : Label.tree =
  match ty with
  | TVoid | TBool | TChar | TInt | TLong | TSizeT | TFloat | TDouble | TAuto ->
      Tree.leaf (l (ty_kind ty))
  | TPtr t -> Tree.node (l "ptr") [ of_ty t ]
  | TRef t -> Tree.node (l "ref") [ of_ty t ]
  | TConst t -> Tree.node (l "const") [ of_ty t ]
  | TNamed (_, targs) -> Tree.node (l "named-type") (List.map of_targ targs)
  | TArr (t, n) ->
      let size =
        match n with
        | Some n -> [ Tree.leaf (l ~text:(string_of_int n) "int-lit") ]
        | None -> []
      in
      Tree.node (l "array") (of_ty t :: size)

and of_targ = function
  | TyArg t -> of_ty t
  | IntArg n -> Tree.leaf (l ~text:(string_of_int n) "int-lit")

let of_directive d : Label.tree =
  let prefix = match d.d_origin with `Omp -> "omp" | `Acc -> "acc" in
  let clause (word, args) =
    let kids =
      match args with
      | None -> []
      | Some a ->
          [ Tree.leaf (l ~text:(Sv_util.Xstring.collapse_spaces a) ~loc:d.d_loc (prefix ^ "-clause-args")) ]
    in
    (* Clang gives every OpenMP construct dedicated AST machinery —
       captured statements, implicit data-sharing attributes, captured
       declarations — semantics "ascribed in a way that is opaque in the
       source" (§V-C). Those implicit nodes are what makes T_sem diverge
       more than T_src for directive models. *)
    let implicit =
      match d.d_origin with
      | `Omp -> [ Tree.leaf (l ~loc:d.d_loc "omp-implicit-dsa") ]
      | `Acc -> []
    in
    Tree.node (l ~loc:d.d_loc (prefix ^ ":" ^ word)) (kids @ implicit)
  in
  let captured =
    match d.d_origin with
    | `Omp ->
        [ Tree.node
            (l ~loc:d.d_loc "omp-captured-stmt")
            [ Tree.leaf (l ~loc:d.d_loc "omp-captured-decl") ] ]
    | `Acc -> []
  in
  Tree.node (l ~loc:d.d_loc (prefix ^ "-directive")) (List.map clause d.d_clauses @ captured)

let rec of_expr (e : expr) : Label.tree =
  let loc = e.eloc in
  match e.e with
  | IntE n -> Tree.leaf (l ~text:(string_of_int n) ~loc "int-lit")
  | FloatE f -> Tree.leaf (l ~text:(Printf.sprintf "%.17g" f) ~loc "float-lit")
  | BoolE b -> Tree.leaf (l ~text:(string_of_bool b) ~loc "bool-lit")
  | StrE s -> Tree.leaf (l ~text:s ~loc "string-lit")
  | CharE c -> Tree.leaf (l ~text:(String.make 1 c) ~loc "char-lit")
  | NullE -> Tree.leaf (l ~loc "nullptr")
  | Var _ -> Tree.leaf (l ~loc "name-ref")
  | Unary (op, a) -> Tree.node (l ~text:(unop_name op) ~loc "unary") [ of_expr a ]
  | Binary (op, a, b) ->
      Tree.node (l ~text:(binop_name op) ~loc "binary") [ of_expr a; of_expr b ]
  | Assign (None, a, b) -> Tree.node (l ~loc "assign") [ of_expr a; of_expr b ]
  | Assign (Some op, a, b) ->
      Tree.node (l ~text:(binop_name op) ~loc "compound-assign") [ of_expr a; of_expr b ]
  | Ternary (c, a, b) -> Tree.node (l ~loc "ternary") [ of_expr c; of_expr a; of_expr b ]
  | Call (callee, targs, args) ->
      Tree.node (l ~loc "call")
        ((of_expr callee :: List.map of_targ targs) @ List.map of_expr args)
  | KernelLaunch (callee, cfg, args) ->
      Tree.node (l ~loc "kernel-launch")
        (of_expr callee
        :: Tree.node (l ~loc "launch-config") (List.map of_expr cfg)
        :: List.map of_expr args)
  | Index (a, i) -> Tree.node (l ~loc "index") [ of_expr a; of_expr i ]
  | Member (a, _, _) -> Tree.node (l ~loc "member") [ of_expr a ]
  | Lambda (cap, params, body) ->
      let cap_text = match cap with ByValue -> "[=]" | ByRef -> "[&]" in
      Tree.node
        (l ~text:cap_text ~loc "lambda")
        (List.map of_param params @ [ Tree.node (l ~loc "body") (List.map of_stmt body) ])
  | Cast (ty, a) -> Tree.node (l ~loc "cast") [ of_ty ty; of_expr a ]
  | New (ty, n) ->
      Tree.node (l ~loc "new") (of_ty ty :: (match n with Some n -> [ of_expr n ] | None -> []))
  | InitList es -> Tree.node (l ~loc "init-list") (List.map of_expr es)
  | SizeofT ty -> Tree.node (l ~loc "sizeof") [ of_ty ty ]

and of_param (p : param) : Label.tree =
  Tree.node (l ~loc:p.p_loc "param") [ of_ty p.p_ty ]

and of_stmt (s : stmt) : Label.tree =
  let loc = s.sloc in
  match s.s with
  | Decl (ty, names) ->
      let declarator (_, init) =
        Tree.node (l ~loc "declarator")
          (match init with Some e -> [ of_expr e ] | None -> [])
      in
      Tree.node (l ~loc "decl") (of_ty ty :: List.map declarator names)
  | ExprS e -> of_expr e
  | If (c, t, f) ->
      let kids =
        [ of_expr c; Tree.node (l ~loc "then") (List.map of_stmt t) ]
        @ (if f = [] then [] else [ Tree.node (l ~loc "else") (List.map of_stmt f) ])
      in
      Tree.node (l ~loc "if") kids
  | For (init, cond, step, body) ->
      let opt_s = function Some s -> [ of_stmt s ] | None -> [] in
      let opt_e = function Some e -> [ of_expr e ] | None -> [] in
      Tree.node (l ~loc "for")
        (opt_s init @ opt_e cond @ opt_e step
        @ [ Tree.node (l ~loc "body") (List.map of_stmt body) ])
  | While (c, body) ->
      Tree.node (l ~loc "while")
        [ of_expr c; Tree.node (l ~loc "body") (List.map of_stmt body) ]
  | DoWhile (body, c) ->
      Tree.node (l ~loc "do-while")
        [ Tree.node (l ~loc "body") (List.map of_stmt body); of_expr c ]
  | Return e ->
      Tree.node (l ~loc "return") (match e with Some e -> [ of_expr e ] | None -> [])
  | Break -> Tree.leaf (l ~loc "break")
  | Continue -> Tree.leaf (l ~loc "continue")
  | Block body -> Tree.node (l ~loc "block") (List.map of_stmt body)
  | Directive (d, body) ->
      let dt = of_directive d in
      (match body with
      | None -> dt
      | Some b -> Tree.node (Tree.label dt) (Tree.children dt @ [ of_stmt b ]))
  | DeleteS (e, _) -> Tree.node (l ~loc "delete") [ of_expr e ]

let of_attr a =
  let name =
    match a with
    | AGlobal -> "__global__"
    | ADevice -> "__device__"
    | AHost -> "__host__"
    | AShared -> "__shared__"
    | AConstant -> "__constant__"
    | AStatic -> "static"
    | AInline -> "inline"
    | AExtern -> "extern"
  in
  Tree.leaf (l ~text:name "attr")

let of_func (f : func) : Label.tree =
  let tmpl =
    if f.f_tparams = [] then []
    else
      [ Tree.node (l ~loc:f.f_loc "template")
          (List.map (fun _ -> Tree.leaf (l "type-param")) f.f_tparams) ]
  in
  let body =
    match f.f_body with
    | None -> []
    | Some b -> [ Tree.node (l ~loc:f.f_loc "body") (List.map of_stmt b) ]
  in
  Tree.node
    (l ~loc:f.f_loc "function")
    (List.map of_attr f.f_attrs @ tmpl @ [ of_ty f.f_ret ]
    @ List.map of_param f.f_params @ body)

let of_top = function
  | Func f -> of_func f
  | Record r ->
      Tree.node
        (l ~loc:r.r_loc "record")
        (List.map (fun (ty, _) -> Tree.node (l "field") [ of_ty ty ]) r.r_fields)
  | GlobalVar (attrs, ty, _, init, loc) ->
      Tree.node (l ~loc "global-var")
        (List.map of_attr attrs @ [ of_ty ty ]
        @ (match init with Some e -> [ of_expr e ] | None -> []))
  | Using (_, loc) -> Tree.leaf (l ~loc "using")
  | TopDirective d -> of_directive d

let of_tunit (u : tunit) : Label.tree =
  Tree.node
    (l ~loc:(Sv_util.Loc.make ~file:u.t_file ~line:1 ~col:0) "tunit")
    (List.map of_top u.t_tops)

(* --- inlining (T_sem+i) -------------------------------------------- *)

let inline_calls ~env ~depth u =
  let rec expr_map visited d (e : expr) : expr =
    let re = expr_map visited d in
    let node =
      match e.e with
      | Call ({ e = Var name; _ }, targs, args) as orig -> (
          match (if d > 0 && not (List.mem name visited) then env name else None) with
          | Some ({ f_body = Some body; _ } : func) ->
              let body' =
                List.map (stmt_map (name :: visited) (d - 1)) body
              in
              (* The inlined call keeps the argument expressions, followed
                 by the callee body wrapped in a block — mirroring how
                 Clang's tree-level inlining grafts the callee under the
                 call site. *)
              Call
                ( { e = Lambda (ByValue, [], body'); eloc = e.eloc },
                  targs,
                  List.map re args )
          | _ -> (
              match orig with
              | Call (c, targs, args) -> Call (re c, targs, List.map re args)
              | _ -> assert false))
      | Call (c, targs, args) -> Call (re c, targs, List.map re args)
      | IntE _ | FloatE _ | BoolE _ | StrE _ | CharE _ | NullE | Var _ -> e.e
      | Unary (op, a) -> Unary (op, re a)
      | Binary (op, a, b) -> Binary (op, re a, re b)
      | Assign (op, a, b) -> Assign (op, re a, re b)
      | Ternary (c, a, b) -> Ternary (re c, re a, re b)
      | KernelLaunch (c, cfg, args) -> KernelLaunch (re c, List.map re cfg, List.map re args)
      | Index (a, i) -> Index (re a, re i)
      | Member (a, n, k) -> Member (re a, n, k)
      | Lambda (cap, ps, body) -> Lambda (cap, ps, List.map (stmt_map visited d) body)
      | Cast (ty, a) -> Cast (ty, re a)
      | New (ty, n) -> New (ty, Option.map re n)
      | InitList es -> InitList (List.map re es)
      | SizeofT ty -> SizeofT ty
    in
    { e with e = node }
  and stmt_map visited d (s : stmt) : stmt =
    let rs = stmt_map visited d and re = expr_map visited d in
    let node =
      match s.s with
      | Decl (ty, names) -> Decl (ty, List.map (fun (n, i) -> (n, Option.map re i)) names)
      | ExprS e -> ExprS (re e)
      | If (c, t, f) -> If (re c, List.map rs t, List.map rs f)
      | For (i, c, st, b) ->
          For (Option.map rs i, Option.map re c, Option.map re st, List.map rs b)
      | While (c, b) -> While (re c, List.map rs b)
      | DoWhile (b, c) -> DoWhile (List.map rs b, re c)
      | Return e -> Return (Option.map re e)
      | Break -> Break
      | Continue -> Continue
      | Block b -> Block (List.map rs b)
      | Directive (dv, b) -> Directive (dv, Option.map rs b)
      | DeleteS (e, arr) -> DeleteS (re e, arr)
    in
    { s with s = node }
  in
  let top_map = function
    | Func f ->
        Func { f with f_body = Option.map (List.map (stmt_map [ f.f_name ] depth)) f.f_body }
    | GlobalVar (a, ty, n, init, loc) ->
        GlobalVar (a, ty, n, Option.map (expr_map [] depth) init, loc)
    | (Record _ | Using _ | TopDirective _) as t -> t
  in
  { u with t_tops = List.map top_map u.t_tops }
