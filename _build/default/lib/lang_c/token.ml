module Loc = Sv_util.Loc

type kind =
  | Ident
  | Keyword
  | IntLit
  | FloatLit
  | StringLit
  | CharLit
  | Punct
  | Op
  | PpDirective
  | Pragma
  | LineComment
  | BlockComment
  | Whitespace

type t = { kind : kind; text : string; loc : Loc.t }

let keywords =
  [
    (* control *)
    "if"; "else"; "for"; "while"; "do"; "return"; "break"; "continue";
    "switch"; "case"; "default";
    (* types and declarators *)
    "void"; "int"; "long"; "float"; "double"; "bool"; "char"; "auto";
    "size_t"; "const"; "static"; "inline"; "extern"; "struct"; "class";
    "template"; "typename"; "using"; "namespace"; "new"; "delete";
    "true"; "false"; "nullptr"; "sizeof"; "restrict"; "unsigned";
    (* CUDA / HIP dialect attributes *)
    "__global__"; "__device__"; "__host__"; "__shared__"; "__restrict__";
    "__forceinline__"; "__constant__";
  ]

let keyword_set = Hashtbl.create 64
let () = List.iter (fun k -> Hashtbl.replace keyword_set k ()) keywords
let is_keyword s = Hashtbl.mem keyword_set s

exception Lex_error of string * Loc.t

let kind_name = function
  | Ident -> "ident"
  | Keyword -> "keyword"
  | IntLit -> "int-lit"
  | FloatLit -> "float-lit"
  | StringLit -> "string-lit"
  | CharLit -> "char-lit"
  | Punct -> "punct"
  | Op -> "op"
  | PpDirective -> "pp-directive"
  | Pragma -> "pragma"
  | LineComment -> "line-comment"
  | BlockComment -> "block-comment"
  | Whitespace -> "whitespace"

(* Longest-first list of multi-character operators. [<<<] and [>>>] are the
   CUDA/HIP launch chevrons. *)
let operators =
  [
    "<<<"; ">>>"; "<<="; ">>="; "->"; "++"; "--"; "+="; "-="; "*="; "/=";
    "%="; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "&="; "|="; "^=";
    "::"; "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "&"; "|"; "^"; "~";
    "?"; ":"; ".";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int; file : string }

let peek cur k = if cur.pos + k < String.length cur.src then Some cur.src.[cur.pos + k] else None

let here cur = { Loc.line = cur.line; col = cur.col }

let advance cur =
  (match peek cur 0 with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 0
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let take_while cur p =
  let start = cur.pos in
  while (match peek cur 0 with Some c -> p c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

(* A token's span runs from the recorded start to the position just before
   the cursor. *)
let finish cur kind start_pos start =
  let text = String.sub cur.src start_pos (cur.pos - start_pos) in
  let stop =
    if cur.col > 0 then { Loc.line = cur.line; col = cur.col - 1 }
    else { Loc.line = cur.line - 1; col = 0 }
  in
  { kind; text; loc = { Loc.file = cur.file; start; stop } }

let lex_line_rest cur =
  (* Consume to (not including) the end of line, honouring backslash
     continuations as preprocessor lines do. *)
  let continue = ref true in
  while !continue do
    match peek cur 0 with
    | None -> continue := false
    | Some '\n' ->
        if cur.pos > 0 && cur.src.[cur.pos - 1] = '\\' then advance cur
        else continue := false
    | Some _ -> advance cur
  done

let lex ~file src =
  let cur = { src; pos = 0; line = 1; col = 0; file } in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let n = String.length src in
  while cur.pos < n do
    let start = here cur and start_pos = cur.pos in
    match peek cur 0 with
    | None -> ()
    | Some c when c = ' ' || c = '\t' || c = '\n' || c = '\r' ->
        let _ = take_while cur (fun c -> c = ' ' || c = '\t' || c = '\n' || c = '\r') in
        emit (finish cur Whitespace start_pos start)
    | Some '/' when peek cur 1 = Some '/' ->
        lex_line_rest cur;
        emit (finish cur LineComment start_pos start)
    | Some '/' when peek cur 1 = Some '*' ->
        advance cur;
        advance cur;
        let closed = ref false in
        while not !closed && cur.pos < n do
          if peek cur 0 = Some '*' && peek cur 1 = Some '/' then begin
            advance cur;
            advance cur;
            closed := true
          end
          else advance cur
        done;
        if not !closed then
          raise (Lex_error ("unterminated block comment", { Loc.file; start; stop = start }));
        emit (finish cur BlockComment start_pos start)
    | Some '#' ->
        lex_line_rest cur;
        let text = String.sub src start_pos (cur.pos - start_pos) in
        let kind =
          if Sv_util.Xstring.starts_with ~prefix:"#pragma" (String.trim text) then Pragma
          else PpDirective
        in
        emit (finish cur kind start_pos start)
    | Some '"' ->
        advance cur;
        let closed = ref false in
        while not !closed && cur.pos < n do
          match peek cur 0 with
          | Some '\\' ->
              advance cur;
              advance cur
          | Some '"' ->
              advance cur;
              closed := true
          | Some _ -> advance cur
          | None -> ()
        done;
        if not !closed then
          raise (Lex_error ("unterminated string", { Loc.file; start; stop = start }));
        emit (finish cur StringLit start_pos start)
    | Some '\'' ->
        advance cur;
        (match peek cur 0 with
        | Some '\\' ->
            advance cur;
            advance cur
        | Some _ -> advance cur
        | None -> ());
        if peek cur 0 <> Some '\'' then
          raise (Lex_error ("unterminated char literal", { Loc.file; start; stop = start }));
        advance cur;
        emit (finish cur CharLit start_pos start)
    | Some c when is_digit c ->
        let _ = take_while cur is_digit in
        let is_float = ref false in
        if peek cur 0 = Some '.' && (match peek cur 1 with Some d -> is_digit d | None -> false)
        then begin
          is_float := true;
          advance cur;
          let _ = take_while cur is_digit in
          ()
        end;
        (match peek cur 0 with
        | Some ('e' | 'E') ->
            is_float := true;
            advance cur;
            (match peek cur 0 with Some ('+' | '-') -> advance cur | _ -> ());
            let _ = take_while cur is_digit in
            ()
        | _ -> ());
        (* numeric suffixes: f, u, l, ul, size-ish *)
        (match peek cur 0 with
        | Some ('f' | 'F') ->
            is_float := true;
            advance cur
        | Some ('u' | 'U' | 'l' | 'L') ->
            let _ = take_while cur (fun c -> c = 'u' || c = 'U' || c = 'l' || c = 'L') in
            ()
        | _ -> ());
        emit (finish cur (if !is_float then FloatLit else IntLit) start_pos start)
    | Some c when is_ident_start c ->
        let text = take_while cur is_ident_char in
        emit (finish cur (if is_keyword text then Keyword else Ident) start_pos start)
    | Some ('(' | ')' | '{' | '}' | '[' | ']' | ';' | ',') ->
        advance cur;
        emit (finish cur Punct start_pos start)
    | Some _ ->
        let matched =
          List.find_opt
            (fun op ->
              let l = String.length op in
              cur.pos + l <= n && String.sub src cur.pos l = op)
            operators
        in
        (match matched with
        | Some op ->
            for _ = 1 to String.length op do
              advance cur
            done;
            emit (finish cur Op start_pos start)
        | None ->
            raise
              (Lex_error
                 ( Printf.sprintf "unexpected character %C" src.[cur.pos],
                   { Loc.file; start; stop = start } )))
  done;
  List.rev !tokens

let significant ts =
  List.filter
    (fun t ->
      match t.kind with Whitespace | LineComment | BlockComment -> false | _ -> true)
    ts
