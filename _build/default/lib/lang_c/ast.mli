(** Abstract syntax for MiniC.

    This is the frontend representation that generates [T_sem] — the
    counterpart of ClangAST in §IV-A. Like ClangAST, it represents every
    dialect uniformly: OpenMP/OpenACC directives are first-class nodes
    ({!stmt_node.Directive}), CUDA/HIP kernel launches have their own
    expression form, and lambdas (SYCL, Kokkos, TBB, StdPar) are ordinary
    expressions. *)

type ty =
  | TVoid
  | TBool
  | TChar
  | TInt
  | TLong
  | TSizeT
  | TFloat
  | TDouble
  | TAuto
  | TPtr of ty
  | TRef of ty
  | TConst of ty
  | TNamed of string * targ list
      (** a (possibly [::]-qualified) named type with optional template
          arguments, e.g. [sycl::buffer<double, 1>] *)
  | TArr of ty * int option
      (** fixed-size array declarator, e.g. [double s\[64\]] *)

and targ = TyArg of ty | IntArg of int  (** template argument *)

type unop =
  | Neg | Not | BitNot
  | PreInc | PreDec | PostInc | PostDec
  | Deref | AddrOf

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Gt | Le | Ge
  | LAnd | LOr
  | BitAnd | BitOr | BitXor | Shl | Shr

type capture = ByValue | ByRef  (** lambda introducer: [=] or [&] *)

type expr = { e : expr_node; eloc : Sv_util.Loc.t }

and expr_node =
  | IntE of int
  | FloatE of float
  | BoolE of bool
  | StrE of string
  | CharE of char
  | NullE
  | Var of string  (** possibly qualified, e.g. ["std::execution::par_unseq"] *)
  | Unary of unop * expr
  | Binary of binop * expr * expr
  | Assign of binop option * expr * expr
      (** [Assign (None, l, r)] is [l = r]; [Assign (Some Add, l, r)] is
          [l += r] *)
  | Ternary of expr * expr * expr
  | Call of expr * targ list * expr list
      (** callee, explicit template arguments, arguments *)
  | KernelLaunch of expr * expr list * expr list
      (** CUDA/HIP [f<<<cfg...>>>(args)]: callee, launch config,
          arguments *)
  | Index of expr * expr
  | Member of expr * string * [ `Dot | `Arrow ]
  | Lambda of capture * param list * stmt list
  | Cast of ty * expr
  | New of ty * expr option  (** [new T] / [new T\[n\]] *)
  | InitList of expr list    (** brace initialiser [{a, b}] *)
  | SizeofT of ty

and param = { p_ty : ty; p_name : string; p_loc : Sv_util.Loc.t }

and stmt = { s : stmt_node; sloc : Sv_util.Loc.t }

and stmt_node =
  | Decl of ty * (string * expr option) list
      (** one declaration statement, possibly declaring several names *)
  | ExprS of expr
  | If of expr * stmt list * stmt list
  | For of stmt option * expr option * expr option * stmt list
  | While of expr * stmt list
  | DoWhile of stmt list * expr
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Directive of directive * stmt option
      (** an OpenMP/OpenACC pragma and the statement it governs (none for
          stand-alone directives like [barrier]) *)
  | DeleteS of expr * bool  (** [delete p] / [delete\[\] p] *)

and directive = {
  d_origin : [ `Omp | `Acc ];
  d_clauses : (string * string option) list;
      (** clause word and optional parenthesised argument text, e.g.
          [("reduction", Some "(+ : sum)")] *)
  d_loc : Sv_util.Loc.t;
}

type attr = AGlobal | ADevice | AHost | AShared | AStatic | AInline | AExtern | AConstant

type func = {
  f_attrs : attr list;
  f_tparams : string list;  (** template type parameters, e.g. [template<typename T>] *)
  f_ret : ty;
  f_name : string;
  f_params : param list;
  f_body : stmt list option;  (** [None] for a bare prototype *)
  f_loc : Sv_util.Loc.t;
}

type record = {
  r_name : string;
  r_fields : (ty * string) list;
  r_loc : Sv_util.Loc.t;
}

type top =
  | Func of func
  | Record of record
  | GlobalVar of attr list * ty * string * expr option * Sv_util.Loc.t
  | Using of string * Sv_util.Loc.t
  | TopDirective of directive
      (** a top-level pragma such as [#pragma omp declare target] *)

type tunit = { t_file : string; t_tops : top list }
(** A parsed translation unit. *)

val binop_name : binop -> string
(** Stable spelling used as tree-label text, e.g. ["+"], ["&&"]. *)

val unop_name : unop -> string
(** Stable spelling, e.g. ["!"], ["++pre"]. *)

val ty_kind : ty -> string
(** The label kind of a type node: builtin types keep their keyword
    (["double"]), named types become the anonymous ["named-type"] per the
    paper's name-normalisation rule. *)

val functions : tunit -> func list
(** All function definitions and prototypes in order. *)

val find_function : tunit -> string -> func option
(** [find_function u name] finds a function {e definition} by name (used by
    the inliner and the interpreter). *)
