module Xstring = Sv_util.Xstring

type result = { tokens : Token.t list; deps : string list; missing : string list }

let directive_word line =
  let line = String.trim line in
  (* after '#', possibly with spaces: "#  include" *)
  let rest = String.sub line 1 (String.length line - 1) |> String.trim in
  match String.index_opt rest ' ' with
  | Some i -> (String.sub rest 0 i, String.trim (String.sub rest i (String.length rest - i)))
  | None -> (rest, "")

let parse_define line =
  let word, rest = directive_word line in
  if word <> "define" then None
  else
    match String.index_opt rest ' ' with
    | None -> if rest = "" then None else Some (rest, "")
    | Some i ->
        let name = String.sub rest 0 i in
        (* Function-like macros (name immediately followed by '(') are not
           supported; [NAME (x)] with a space is object-like. *)
        if String.contains name '(' then None
        else Some (name, String.trim (String.sub rest i (String.length rest - i)))

let include_target rest =
  let rest = String.trim rest in
  let n = String.length rest in
  if n >= 2 && ((rest.[0] = '"' && rest.[n - 1] = '"') || (rest.[0] = '<' && rest.[n - 1] = '>'))
  then Some (String.sub rest 1 (n - 2))
  else None

let run ~resolve ~defines ~file src =
  let macros : (string, string) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace macros k v) defines;
  let included : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let deps = ref [] and missing = ref [] in
  let out = ref [] in
  (* Conditional-inclusion stack; every frame is [true] when the current
     branch is active. *)
  let conds = ref [] in
  let active () = List.for_all Fun.id !conds in
  let rec process_file fname source =
    let tokens = Token.significant (Token.lex ~file:fname source) in
    List.iter process_token tokens
  and process_token (t : Token.t) =
    match t.kind with
    | Token.PpDirective -> (
        let word, rest = directive_word t.text in
        match word with
        | "include" when active () -> (
            match include_target rest with
            | None -> ()
            | Some target ->
                if not (Hashtbl.mem included target) then begin
                  Hashtbl.replace included target ();
                  match resolve target with
                  | Some content ->
                      deps := target :: !deps;
                      process_file target content
                  | None -> missing := target :: !missing
                end)
        | "define" when active () -> (
            match parse_define t.text with
            | Some (name, body) -> Hashtbl.replace macros name body
            | None -> ())
        | "undef" when active () -> Hashtbl.remove macros (String.trim rest)
        | "ifdef" -> conds := Hashtbl.mem macros (String.trim rest) :: !conds
        | "ifndef" -> conds := (not (Hashtbl.mem macros (String.trim rest))) :: !conds
        | "if" ->
            (* Only the simple forms "#if defined(X)" and "#if 0/1". *)
            let rest = String.trim rest in
            let v =
              if rest = "0" then false
              else if rest = "1" then true
              else if Xstring.starts_with ~prefix:"defined(" rest then
                let name = String.sub rest 8 (String.length rest - 9) in
                Hashtbl.mem macros (String.trim name)
              else true
            in
            conds := v :: !conds
        | "else" -> (
            match !conds with
            | top :: rest -> conds := (not top) :: rest
            | [] -> ())
        | "endif" -> (
            match !conds with _ :: rest -> conds := rest | [] -> ())
        | _ -> ())
    | Token.Pragma ->
        if active () then
          if String.trim t.text = "#pragma once" then ()
          else out := t :: !out
    | Token.Ident when active () && Hashtbl.mem macros t.text ->
        (* Expand iteratively to a fixed depth; replacement tokens take
           the use-site location. *)
        let rec expand depth (tok : Token.t) =
          if depth = 0 then out := tok :: !out
          else
            match
              if tok.kind = Token.Ident then Hashtbl.find_opt macros tok.text else None
            with
            | Some body ->
                let body_toks = Token.significant (Token.lex ~file:t.loc.file body) in
                List.iter
                  (fun (bt : Token.t) -> expand (depth - 1) { bt with loc = t.loc })
                  body_toks
            | None -> out := tok :: !out
        in
        expand 8 t
    | _ -> if active () then out := t :: !out
  in
  process_file file src;
  { tokens = List.rev !out; deps = List.rev !deps; missing = List.rev !missing }
