lib/lang_c/ast.ml: List Sv_util
