lib/lang_c/sem_tree.ml: Ast List Option Printf String Sv_tree Sv_util
