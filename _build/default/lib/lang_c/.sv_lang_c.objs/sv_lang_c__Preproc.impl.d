lib/lang_c/preproc.ml: Fun Hashtbl List String Sv_util Token
