lib/lang_c/parser.ml: Array Ast Buffer Cst List Printf Scanf String Sv_tree Sv_util Token
