lib/lang_c/cst.mli: Sv_tree Sv_util Token
