lib/lang_c/preproc.mli: Token
