lib/lang_c/token.mli: Sv_util
