lib/lang_c/parser.mli: Ast Sv_util Token
