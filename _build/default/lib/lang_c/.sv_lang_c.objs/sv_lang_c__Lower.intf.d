lib/lang_c/lower.mli: Ast Sv_ir
