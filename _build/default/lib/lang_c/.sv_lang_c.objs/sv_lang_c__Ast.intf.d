lib/lang_c/ast.mli: Sv_util
