lib/lang_c/lower.ml: Ast Char List Option Printf Sv_ir Sv_util
