lib/lang_c/token.ml: Hashtbl List Printf String Sv_util
