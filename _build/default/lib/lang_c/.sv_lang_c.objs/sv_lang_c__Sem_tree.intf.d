lib/lang_c/sem_tree.mli: Ast Sv_tree
