lib/lang_c/cst.ml: List String Sv_tree Sv_util Token
