(** Recursive-descent parser for MiniC.

    Consumes the significant token stream (pragmas included) and produces
    the {!Ast.tunit} that [T_sem] is derived from. The grammar covers the
    constructs the paper's mini-apps exercise: functions (with CUDA/HIP
    attributes and simple [template<typename T>] headers), structs, global
    variables, the full statement/expression language including lambdas,
    triple-chevron kernel launches, template-argument calls
    ([parallel_for<class k>(...)]) and OpenMP/OpenACC directives attached
    to the statements they govern.

    Design notes:
    - Declaration vs. expression statements are disambiguated by
      backtracking, as are template argument lists vs. less-than.
    - Nested template arguments requiring the C++ [>>] split are {e not}
      supported; write a space ([> >]).
    - Directives in the standalone set ([barrier], [taskwait], ...) attach
      to no statement; all others govern the following statement. *)

exception Parse_error of string * Sv_util.Loc.t
(** Raised with a message and the location of the offending token. *)

val parse : file:string -> string -> Ast.tunit
(** [parse ~file src] lexes and parses one translation unit. Raises
    {!Parse_error} or [Token.Lex_error]. *)

val parse_tokens : file:string -> Token.t list -> Ast.tunit
(** [parse_tokens ~file toks] parses an already-lexed stream (whitespace
    and comments are filtered internally) — the post-preprocessor entry
    point. *)

val parse_directive : Token.t -> Ast.directive option
(** [parse_directive tok] interprets a [Pragma] token as an OpenMP or
    OpenACC directive ([None] for other pragmas). *)
