(** Concrete syntax trees for MiniC.

    SilverVale obtains CSTs from tree-sitter because compiler plugin APIs
    expose none (§IV-C); here the lexer's token stream is structured into a
    bracket-nesting tree, which plays the same role: it captures every
    syntactic token, supports exact source reconstruction, and — once
    normalised — becomes the perceived-semantics tree [T_src] of §III-A.

    Normalisation (§III-C) removes whitespace, comments and low-value
    control tokens (semicolons, commas), anonymises identifier spellings
    (name-normalisation of §III-B), and expands [#pragma omp]/[#pragma acc]
    lines into structured directive nodes so directive semantics survive —
    the "special provision" the paper makes for OpenMP. *)

type node =
  | Tok of Token.t                  (** an atomic token *)
  | Group of char * node list * Sv_util.Loc.t
      (** a bracketed region; the [char] is ['('], ['{'] or ['[']; children
          include the nested tokens but not the brackets themselves *)

val parse : Token.t list -> node list
(** [parse tokens] nests a {e significant} token stream by brackets.
    Unbalanced closers are tolerated (kept as plain tokens) so the CST
    stage never fails on partial code. *)

val reconstruct : Token.t list -> string
(** [reconstruct tokens] concatenates the raw token texts — with the full
    (non-significant) stream this is the identity back to the source. *)

val t_src : file:string -> string -> Sv_tree.Label.tree
(** [t_src ~file src] is the normalised perceived tree of one file: lex,
    nest, normalise. Root label kind is ["src-file"]. *)

val t_src_of_tokens : file:string -> Token.t list -> Sv_tree.Label.tree
(** As {!t_src} but from an already-lexed (significant or full) stream —
    used for the post-preprocessor variant where the stream was spliced
    together from several files. *)

val split_directive : string -> (string * string option) list
(** [split_directive body] splits a pragma body such as
    ["omp target teams map(tofrom: a)"] into clause words, each with the
    parenthesised argument text that immediately follows it (if any).
    Shared by the CST normaliser and the parser. *)

val directive_label : Token.t -> Sv_tree.Label.t option
(** [directive_label tok] classifies a [Pragma] token: [Some] structured
    label for [omp]/[acc] pragmas (kind ["omp-directive"] or
    ["acc-directive"], text = the normalised clause list), [None] for
    other tokens. Exposed for the metric layer's directive statistics. *)
