(** The Codebase DB — SilverVale's portable analysis artifact (§IV).

    The index step turns a compiled codebase into "a portable set of
    semantic-bearing trees and metadata files all stored in a Zstd
    compressed MessagePack format". This module is that store: trees plus
    per-unit metadata, serialised to MessagePack ({!Sv_msgpack}) and
    compressed with the LZ77 codec ({!Sv_svz}, the Zstd stand-in). *)

type unit_record = {
  ur_file : string;                     (** unit main file *)
  ur_deps : string list;                (** headers spliced into the unit *)
  ur_sloc : int;
  ur_lloc : int;
  ur_lines : string list;               (** normalised source lines *)
  ur_trees : (string * Sv_tree.Label.tree) list;
      (** named trees: ["t_src"], ["t_src_pp"], ["t_sem"], ["t_sem_i"],
          ["t_ir"], and their ["+cov"] variants when coverage ran *)
}

type t = {
  db_app : string;    (** application name, e.g. ["tealeaf"] *)
  db_model : string;  (** programming model id *)
  db_units : unit_record list;
}

val save : t -> string
(** [save db] is the compressed binary artifact. *)

val load : string -> (t, string) Result.t
(** [load bytes] decodes an artifact produced by {!save}; reports
    corruption and schema mismatches as [Error]. *)

val tree_to_msgpack : Sv_tree.Label.tree -> Sv_msgpack.Msgpack.t
(** Tree codec, exposed for tests: node → [\[kind; text; loc; children\]]. *)

val tree_of_msgpack : Sv_msgpack.Msgpack.t -> (Sv_tree.Label.tree, string) Result.t
(** Inverse of {!tree_to_msgpack}. *)

val stats : t -> string
(** One-line summary: unit count, total tree nodes, compressed and
    uncompressed artifact sizes and ratio. *)
