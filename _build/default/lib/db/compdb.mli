(** Compilation Databases (§IV).

    SilverVale ingests the [compile_commands.json] file build tools emit:
    one entry per compiler invocation, recording the working directory,
    the source file and the full argument vector. This module parses and
    emits that format and extracts the information the indexer needs
    ([-D] macro definitions, [-I] include paths, the language implied by
    the file suffix). *)

type entry = {
  directory : string;
  file : string;
  arguments : string list;  (** argv, compiler executable first *)
}

val parse : string -> (entry list, string) Result.t
(** [parse json_text] reads a whole compilation DB. Entries using the
    single-string ["command"] field are word-split (no quote handling —
    the corpus emitter always uses ["arguments"]). *)

val to_json_string : entry list -> string
(** Pretty-printed compile_commands.json content for the given entries. *)

val defines : entry -> (string * string) list
(** [-DNAME] and [-DNAME=VALUE] arguments, in order. *)

val include_dirs : entry -> string list
(** [-Idir] and [-I dir] arguments, in order. *)

val language : entry -> [ `C | `Fortran | `Unknown ]
(** Guessed from the file suffix: [.c .cc .cpp .cu .cxx] → [`C];
    [.f .f90 .f95 .F90] → [`Fortran]. *)
