module J = Sv_jsonx.Jsonx

type entry = { directory : string; file : string; arguments : string list }

let entry_of_json j =
  let str k =
    match J.member k j with
    | Some (J.String s) -> Some s
    | _ -> None
  in
  match (str "directory", str "file") with
  | Some directory, Some file -> (
      match J.member "arguments" j with
      | Some (J.List args) ->
          let arguments =
            List.filter_map (function J.String s -> Some s | _ -> None) args
          in
          Ok { directory; file; arguments }
      | _ -> (
          match str "command" with
          | Some cmd ->
              Ok
                {
                  directory;
                  file;
                  arguments =
                    List.filter (fun s -> s <> "") (String.split_on_char ' ' cmd);
                }
          | None -> Error "entry lacks both \"arguments\" and \"command\""))
  | _ -> Error "entry lacks \"directory\" or \"file\""

let parse text =
  match J.of_string text with
  | exception J.Parse_error msg -> Error msg
  | J.List entries ->
      List.fold_left
        (fun acc e ->
          match (acc, entry_of_json e) with
          | Ok es, Ok e -> Ok (e :: es)
          | Error m, _ -> Error m
          | _, Error m -> Error m)
        (Ok []) entries
      |> Result.map List.rev
  | _ -> Error "compilation DB must be a JSON array"

let to_json_string entries =
  J.to_string ~indent:2
    (J.List
       (List.map
          (fun e ->
            J.Obj
              [
                ("directory", J.String e.directory);
                ("file", J.String e.file);
                ("arguments", J.List (List.map (fun a -> J.String a) e.arguments));
              ])
          entries))

let defines e =
  List.filter_map
    (fun a ->
      if String.length a > 2 && String.sub a 0 2 = "-D" then
        let rest = String.sub a 2 (String.length a - 2) in
        match String.index_opt rest '=' with
        | Some i ->
            Some (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
        | None -> Some (rest, "1")
      else None)
    e.arguments

let include_dirs e =
  let rec go = function
    | [] -> []
    | "-I" :: dir :: rest -> dir :: go rest
    | a :: rest when String.length a > 2 && String.sub a 0 2 = "-I" ->
        String.sub a 2 (String.length a - 2) :: go rest
    | _ :: rest -> go rest
  in
  go e.arguments

let language e =
  match String.rindex_opt e.file '.' with
  | None -> `Unknown
  | Some i -> (
      match String.lowercase_ascii (String.sub e.file i (String.length e.file - i)) with
      | ".c" | ".cc" | ".cpp" | ".cxx" | ".cu" -> `C
      | ".f" | ".f90" | ".f95" -> `Fortran
      | _ -> `Unknown)
