lib/db/codebase_db.mli: Result Sv_msgpack Sv_tree
