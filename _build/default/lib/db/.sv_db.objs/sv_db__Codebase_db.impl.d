lib/db/codebase_db.ml: Digest Fun Hashtbl List Printf Result String Sv_msgpack Sv_svz Sv_tree Sv_util Sys
