lib/db/compdb.mli: Result
