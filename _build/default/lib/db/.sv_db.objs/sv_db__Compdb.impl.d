lib/db/compdb.ml: List Result String Sv_jsonx
