lib/interp/interp_f.ml: Array Buffer Float Hashtbl List Printf Result Stdlib String Sv_lang_f Sv_util
