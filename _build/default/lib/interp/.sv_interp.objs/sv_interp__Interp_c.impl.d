lib/interp/interp_c.ml: Array Buffer Char Float Format Hashtbl List Printf Result Stdlib String Sv_lang_c Sv_util
