lib/interp/interp_c.mli: Format Hashtbl Result Sv_lang_c Sv_util
