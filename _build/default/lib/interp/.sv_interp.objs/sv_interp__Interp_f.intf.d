lib/interp/interp_f.mli: Result Sv_lang_f Sv_util
