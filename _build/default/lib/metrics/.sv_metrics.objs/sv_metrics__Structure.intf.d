lib/metrics/structure.mli: Format Sv_tree
