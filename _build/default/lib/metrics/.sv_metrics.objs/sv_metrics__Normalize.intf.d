lib/metrics/normalize.mli: Sv_lang_c
