lib/metrics/catalog.mli:
