lib/metrics/counts.mli: Sv_lang_c Sv_lang_f
