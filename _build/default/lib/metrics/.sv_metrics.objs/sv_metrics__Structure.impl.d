lib/metrics/structure.ml: Float Format Hashtbl List Option Sv_tree
