lib/metrics/catalog.ml:
