lib/metrics/normalize.ml: Buffer List String Sv_lang_c Sv_lang_f Sv_util
