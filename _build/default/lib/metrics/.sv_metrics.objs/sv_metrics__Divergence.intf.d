lib/metrics/divergence.mli: Sv_tree Sv_util
