lib/metrics/divergence.ml: Array Float Hashtbl List String Sv_diff Sv_tree Sv_util
