lib/metrics/counts.ml: List Sv_lang_c Sv_lang_f
