module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

type coupling = {
  files : int;
  edges : int;
  fan_out : (string * int) list;
  coupling_ratio : float;
}

let coupling_of_deps ~root deps =
  let nodes = Hashtbl.create 16 in
  Hashtbl.replace nodes root ();
  List.iter
    (fun (f, targets) ->
      Hashtbl.replace nodes f ();
      List.iter (fun t -> Hashtbl.replace nodes t ()) targets)
    deps;
  let files = Hashtbl.length nodes in
  let edges = List.fold_left (fun acc (_, ts) -> acc + List.length ts) 0 deps in
  let fan_out = List.map (fun (f, ts) -> (f, List.length ts)) deps in
  let possible = files * (files - 1) in
  {
    files;
    edges;
    fan_out;
    coupling_ratio =
      (if possible = 0 then 0.0 else float_of_int edges /. float_of_int possible);
  }

type complexity = {
  size : int;
  depth : int;
  leaves : int;
  mean_branching : float;
  branching_entropy : float;
}

let complexity t =
  let size = Tree.size t in
  let depth = Tree.depth t in
  let leaves = List.length (Tree.leaves t) in
  let interior = size - leaves in
  let mean_branching =
    if interior = 0 then 0.0 else float_of_int (size - 1) /. float_of_int interior
  in
  (* node-kind distribution entropy *)
  let counts = Hashtbl.create 64 in
  List.iter
    (fun (l : Label.t) ->
      Hashtbl.replace counts l.Label.kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts l.Label.kind)))
    (Tree.preorder t);
  let n = float_of_int size in
  let entropy =
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. n in
        acc -. (p *. (Float.log p /. Float.log 2.0)))
      counts 0.0
  in
  { size; depth; leaves; mean_branching; branching_entropy = entropy }

let pp_complexity fmt c =
  Format.fprintf fmt "size=%d depth=%d leaves=%d branching=%.2f entropy=%.2f bits"
    c.size c.depth c.leaves c.mean_branching c.branching_entropy
