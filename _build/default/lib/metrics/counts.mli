(** SLOC and LLOC (§III-C, Eq. 2–3).

    SLOC follows Nguyen et al.: the number of normalised non-blank,
    non-comment lines. LLOC counts logical statements rather than physical
    lines, so formatting cannot inflate it: for MiniC, a for-header counts
    as one logical line no matter how many [;] it contains; for MiniF each
    statement is logical by construction. *)

val sloc_of_lines : string list -> int
(** [sloc_of_lines ls] is just [List.length ls] — named for symmetry and
    call-site clarity. *)

val lloc_c : Sv_lang_c.Token.t list -> int
(** [lloc_c tokens] counts MiniC logical lines over a significant token
    stream: statement-terminating semicolons (a [for] header's two inner
    semicolons are discounted), control-flow headers ([if]/[for]/[while]/
    [do]/[else]), function and record definitions, and directives
    (pragmas). *)

val lloc_f : Sv_lang_f.Token.t list -> int
(** [lloc_f tokens] counts MiniF logical lines: non-empty statement lines
    plus directive lines. *)
