(** Secondary structural metrics (§III-A).

    The back references from tree nodes to source locations let SilverVale
    reconstruct the dependency tree between source units and compute
    "secondary metrics such as module coupling and overall tree
    complexity". This module provides both:

    - {b module coupling} after Offutt, Harrold & Kolte: how strongly a
      unit's files are interconnected, from the include graph;
    - {b tree complexity}: size, depth, mean branching and a
      branching-entropy summary of any semantic-bearing tree. *)

type coupling = {
  files : int;          (** nodes of the dependency graph *)
  edges : int;          (** include edges *)
  fan_out : (string * int) list;  (** per-file direct dependencies *)
  coupling_ratio : float;
      (** edges / (files·(files−1)) — 0 for isolated files, 1 for a
          complete graph; the normalised coupling factor *)
}

val coupling_of_deps : root:string -> (string * string list) list -> coupling
(** [coupling_of_deps ~root deps] builds coupling facts from an include
    adjacency list ([(file, its includes)], the root first). Unknown
    targets (system headers outside the list) still count as nodes. *)

type complexity = {
  size : int;
  depth : int;
  leaves : int;
  mean_branching : float;   (** mean children per interior node *)
  branching_entropy : float;
      (** Shannon entropy (bits) of the node-kind distribution — flat,
          repetitive trees score low; semantically rich ones high *)
}

val complexity : Sv_tree.Label.tree -> complexity
(** [complexity t] summarises one tree. *)

val pp_complexity : Format.formatter -> complexity -> unit
(** One-line rendering used by the CLI's [inspect]. *)
