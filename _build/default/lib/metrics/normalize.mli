(** Source normalisation (§III-C).

    Implements the Nguyen et al. SLOC-standard normalisation the paper
    applies before every perceived metric: comments removed (using lexer
    token ranges, the CST-marked ranges of the paper), runs of whitespace
    collapsed, blank lines dropped. Directive lines — [#pragma omp]/[acc]
    and [!$omp]/[!$acc] — are always retained ("special provisions for
    languages that store semantic-bearing information in unusual
    places"). *)

val c_lines : file:string -> string -> string list
(** [c_lines ~file src] is the normalised line list of a MiniC source. *)

val f_lines : file:string -> string -> string list
(** Normalised line list of a MiniF source. *)

val c_lines_of_tokens : Sv_lang_c.Token.t list -> string list
(** Normalised lines reconstructed from an (already preprocessed) MiniC
    token stream — the [+pp] variant's input. *)
