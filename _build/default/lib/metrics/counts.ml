let sloc_of_lines = List.length

let lloc_c tokens =
  let module T = Sv_lang_c.Token in
  let count = ref 0 in
  let for_discount = ref 0 in
  List.iter
    (fun (t : T.t) ->
      match t.kind with
      | T.Punct when t.text = ";" ->
          if !for_discount > 0 then decr for_discount else incr count
      | T.Keyword -> (
          match t.text with
          | "for" ->
              (* the two header semicolons belong to one logical line *)
              for_discount := !for_discount + 2;
              incr count
          | "if" | "while" | "do" | "else" | "switch" -> incr count
          | "struct" | "template" -> incr count
          | _ -> ())
      | T.Pragma -> incr count
      | _ -> ())
    (T.significant tokens);
  !count

let lloc_f tokens =
  let module T = Sv_lang_f.Token in
  let count = ref 0 in
  let line_has_content = ref false in
  List.iter
    (fun (t : T.t) ->
      match t.kind with
      | T.Newline ->
          if !line_has_content then incr count;
          line_has_content := false
      | T.Whitespace | T.Comment -> ()
      | T.Directive ->
          incr count;
          line_has_content := false
      | _ -> line_has_content := true)
    tokens;
  if !line_has_content then incr count;
  !count
