type measure = Absolute | Relative_edit | Relative_ted | Relative_phi
type domain = Perceived | Semantic | Runtime

type entry = {
  name : string;
  measure : measure;
  domains : domain list;
  language_agnostic : bool;
  variants : string list;
}

let all =
  [
    { name = "SLOC"; measure = Absolute; domains = [ Perceived ];
      language_agnostic = true; variants = [ "+preprocessor"; "+coverage" ] };
    { name = "LLOC"; measure = Absolute; domains = [ Perceived ];
      language_agnostic = true; variants = [ "+preprocessor"; "+coverage" ] };
    { name = "Source"; measure = Relative_edit; domains = [ Perceived ];
      language_agnostic = true; variants = [ "+preprocessor"; "+coverage" ] };
    { name = "T_src"; measure = Relative_ted; domains = [ Perceived ];
      language_agnostic = false; variants = [ "+preprocessor"; "+coverage" ] };
    { name = "T_sem"; measure = Relative_ted; domains = [ Semantic ];
      language_agnostic = false; variants = [ "+inlining"; "+coverage" ] };
    { name = "T_ir"; measure = Relative_ted; domains = [ Semantic ];
      language_agnostic = false; variants = [ "+coverage" ] };
    { name = "Performance"; measure = Relative_phi; domains = [ Runtime ];
      language_agnostic = true; variants = [] };
  ]

let measure_name = function
  | Absolute -> "Absolute"
  | Relative_edit -> "Relative (Edit distance)"
  | Relative_ted -> "Relative (TED)"
  | Relative_phi -> "Relative (Phi)"

let domain_name = function
  | Perceived -> "Perceived"
  | Semantic -> "Semantic"
  | Runtime -> "Runtime"
