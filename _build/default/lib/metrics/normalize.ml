module Xstring = Sv_util.Xstring

let postprocess raw =
  raw
  |> Xstring.lines
  |> List.map (fun l -> Xstring.strip (Xstring.collapse_spaces l))
  |> List.filter (fun l -> l <> "")

(* Reassemble source text with comments dropped; whitespace tokens keep
   their newlines so line identity survives. *)
let c_strip_comments tokens =
  let b = Buffer.create 1024 in
  List.iter
    (fun (t : Sv_lang_c.Token.t) ->
      match t.kind with
      | Sv_lang_c.Token.LineComment -> ()
      | Sv_lang_c.Token.BlockComment ->
          (* keep embedded newlines so later lines stay aligned *)
          String.iter (fun c -> if c = '\n' then Buffer.add_char b '\n') t.text
      | _ -> Buffer.add_string b t.text)
    tokens;
  Buffer.contents b

let c_lines ~file src = postprocess (c_strip_comments (Sv_lang_c.Token.lex ~file src))

let c_lines_of_tokens tokens =
  (* A preprocessed stream has no whitespace tokens: rebuild one statement
     per token run, breaking lines on ; { } and pragmas. *)
  let b = Buffer.create 1024 in
  List.iter
    (fun (t : Sv_lang_c.Token.t) ->
      match t.kind with
      | Sv_lang_c.Token.LineComment | Sv_lang_c.Token.BlockComment -> ()
      | Sv_lang_c.Token.Pragma | Sv_lang_c.Token.PpDirective ->
          Buffer.add_char b '\n';
          Buffer.add_string b (String.trim t.text);
          Buffer.add_char b '\n'
      | _ ->
          Buffer.add_string b t.text;
          Buffer.add_char b ' ';
          if t.text = ";" || t.text = "{" || t.text = "}" then Buffer.add_char b '\n')
    tokens;
  postprocess (Buffer.contents b)

let f_strip_comments tokens =
  let b = Buffer.create 1024 in
  List.iter
    (fun (t : Sv_lang_f.Token.t) ->
      match t.kind with
      | Sv_lang_f.Token.Comment -> ()
      | _ -> Buffer.add_string b t.text)
    tokens;
  Buffer.contents b

let f_lines ~file src = postprocess (f_strip_comments (Sv_lang_f.Token.lex ~file src))
