(** The metric taxonomy of Table I.

    A machine-readable catalogue of every codebase-summarisation metric
    the framework implements, with its measure kind, domain and available
    variants — used by the bench harness to regenerate Table I and by the
    CLI's [--help] text. *)

type measure = Absolute | Relative_edit | Relative_ted | Relative_phi

type domain = Perceived | Semantic | Runtime

type entry = {
  name : string;          (** e.g. ["SLOC"], ["T_sem"] *)
  measure : measure;
  domains : domain list;
  language_agnostic : bool;
  variants : string list; (** e.g. ["+preprocessor"; "+coverage"] *)
}

val all : entry list
(** The rows of Table I, in the paper's order. *)

val measure_name : measure -> string
(** Display string, e.g. ["Relative (TED)"]. *)

val domain_name : domain -> string
(** Display string. *)
