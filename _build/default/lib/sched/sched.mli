(** Multi-process work pool for CPU-bound batch jobs.

    The TED engine's unit of work — one pairwise tree comparison — is
    pure CPU with a small result, which makes a classic fork/pipe pool
    the right shape under OCaml's runtime: workers are forked {e after}
    the task array is built, so every child sees the inputs via
    copy-on-write memory and only the (tiny) results travel back over a
    pipe, framed as length-prefixed msgpack values.

    Scheduling is dynamic self-balancing in the work-stealing spirit:
    the parent hands each worker one task index at a time and refills
    whichever worker finishes first, so a few expensive pairs cannot
    stall the batch the way a static block split would. Results are
    reassembled by task index, so the output order is deterministic and
    byte-identical to a serial run regardless of worker timing. *)

val default_jobs : unit -> int
(** Worker count used when [?jobs] is omitted: the [SV_JOBS] environment
    variable if set to a positive integer, otherwise the number of cores
    the runtime recommends ([Domain.recommended_domain_count]). *)

val map :
  ?jobs:int ->
  encode:('b -> Sv_msgpack.Msgpack.t) ->
  decode:(Sv_msgpack.Msgpack.t -> 'b) ->
  f:('a -> 'b) ->
  'a array ->
  'b array
(** [map ~encode ~decode ~f tasks] is [Array.map f tasks] computed by a
    pool of forked workers. [encode]/[decode] carry each result across
    the worker→parent pipe; they must round-trip ([decode (encode b)]
    observationally equal to [b]) for the parallel result to match the
    serial one.

    [jobs] (default {!default_jobs}) caps the pool; it is further capped
    by the task count, and [jobs <= 1] (or fewer than two tasks) runs
    serially in-process — no fork, identical semantics. If [f] raises in
    a worker, the exception's description is shipped back and [map]
    raises [Failure] in the parent after shutting the pool down.

    [f] runs in forked children: mutations it makes to shared state are
    invisible to the parent (ship state back through the result value),
    and it must not rely on threads or open channels of the parent. *)

val map_list :
  ?jobs:int ->
  encode:('b -> Sv_msgpack.Msgpack.t) ->
  decode:(Sv_msgpack.Msgpack.t -> 'b) ->
  f:('a -> 'b) ->
  'a list ->
  'b list
(** List interface over {!map}, same ordering guarantee. *)
