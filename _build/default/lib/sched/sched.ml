module M = Sv_msgpack.Msgpack

let default_jobs () =
  match Sys.getenv_opt "SV_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> j
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* --- pipe framing --------------------------------------------------- *)

(* Each frame is a 4-byte big-endian length followed by one msgpack
   value. Writes under PIPE_BUF would be atomic anyway, but both ends
   loop regardless so oversized results (a full divergence row) are
   carried correctly. *)

let rec write_all fd b off len =
  if len > 0 then
    let n = Unix.write fd b off len in
    write_all fd b (off + n) (len - n)

let write_frame fd payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len) in
  Bytes.set b 0 (Char.chr ((len lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((len lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((len lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (len land 0xFF));
  Bytes.blit_string payload 0 b 4 len;
  write_all fd b 0 (4 + len)

let read_exact fd n =
  let b = Bytes.create n in
  let rec go off =
    if off < n then begin
      let k = Unix.read fd b off (n - off) in
      if k = 0 then raise End_of_file;
      go (off + k)
    end
  in
  go 0;
  b

let read_frame fd =
  let hdr = read_exact fd 4 in
  let len =
    (Char.code (Bytes.get hdr 0) lsl 24)
    lor (Char.code (Bytes.get hdr 1) lsl 16)
    lor (Char.code (Bytes.get hdr 2) lsl 8)
    lor Char.code (Bytes.get hdr 3)
  in
  Bytes.unsafe_to_string (read_exact fd len)

(* --- workers -------------------------------------------------------- *)

type worker = {
  pid : int;
  job_w : Unix.file_descr;
  res_r : Unix.file_descr;
  mutable busy : bool;
  mutable open_ : bool;  (** job_w still open (more tasks may be sent) *)
}

(* Child side: pull task indices until the job pipe closes, push framed
   results. Exits with [Unix._exit] so the parent's buffered channels and
   at_exit hooks (alcotest's reporter, bench writers) never run twice. *)
let worker_loop ~encode ~f (tasks : _ array) job_r res_w =
  (try
     let rec loop () =
       match read_frame job_r with
       | exception End_of_file -> ()
       | frame ->
           let idx = match M.decode frame with M.Int i -> i | _ -> raise Exit in
           let reply =
             match encode (f tasks.(idx)) with
             | payload -> M.Arr [ M.Int idx; M.Bool true; payload ]
             | exception e ->
                 M.Arr [ M.Int idx; M.Bool false; M.Str (Printexc.to_string e) ]
           in
           write_frame res_w (M.encode reply);
           loop ()
     in
     loop ()
   with _ -> ());
  Unix._exit 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let spawn ~encode ~f tasks jobs =
  (* All pipes exist before the first fork, so every child can close the
     descriptors belonging to its siblings; a stray inherited write end
     would keep a result pipe from ever signalling EOF. Closes must be
     tolerant: the parent already closed the child-side ends of earlier
     workers, so a later child inherits some of these fds closed (no fd
     is created between the pipes and the forks, so numbers never get
     reused for something else). *)
  let pipes = Array.init jobs (fun _ -> (Unix.pipe (), Unix.pipe ())) in
  Array.mapi
    (fun w ((job_r, job_w), (res_r, res_w)) ->
      match Unix.fork () with
      | 0 ->
          Array.iteri
            (fun w' ((jr, jw), (rr, rw)) ->
              if w' <> w then begin
                close_quiet jr;
                close_quiet rw
              end;
              close_quiet jw;
              close_quiet rr)
            pipes;
          worker_loop ~encode ~f tasks job_r res_w
      | pid ->
          Unix.close job_r;
          Unix.close res_w;
          { pid; job_w; res_r; busy = false; open_ = true })
    pipes

let close_jobs w =
  if w.open_ then begin
    w.open_ <- false;
    try Unix.close w.job_w with Unix.Unix_error _ -> ()
  end

let reap workers =
  Array.iter
    (fun w ->
      close_jobs w;
      (try Unix.close w.res_r with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
    workers

(* --- parent scheduler ----------------------------------------------- *)

let map ?jobs ~encode ~decode ~f tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs n in
  if jobs <= 1 then Array.map f tasks
  else begin
    let previous_sigpipe =
      (* a worker that died mid-batch must surface as Failure, not kill
         the parent on the next dispatch write *)
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ -> None
    in
    let restore_sigpipe () =
      match previous_sigpipe with
      | Some h -> Sys.set_signal Sys.sigpipe h
      | None -> ()
    in
    let workers = spawn ~encode ~f tasks jobs in
    let results = Array.make n None in
    let next = ref 0 in
    let error = ref None in
    let fail msg = if !error = None then error := Some msg in
    let dispatch w =
      if !next < n && !error = None then begin
        (match write_frame w.job_w (M.encode (M.Int !next)) with
        | () -> ()
        | exception Unix.Unix_error _ -> fail "sched: worker pipe closed");
        incr next;
        w.busy <- true
      end
      else begin
        w.busy <- false;
        close_jobs w
      end
    in
    let finish () =
      reap workers;
      restore_sigpipe ()
    in
    (try
       Array.iter dispatch workers;
       let collect w =
         (match M.decode (read_frame w.res_r) with
         | M.Arr [ M.Int idx; M.Bool true; payload ] ->
             results.(idx) <- Some (decode payload)
         | M.Arr [ M.Int _; M.Bool false; M.Str msg ] ->
             fail (Printf.sprintf "sched: worker task failed: %s" msg)
         | _ -> fail "sched: malformed result frame"
         | exception End_of_file -> fail "sched: worker died"
         | exception M.Decode_error m ->
             fail (Printf.sprintf "sched: undecodable result frame: %s" m));
         dispatch w
       in
       while Array.exists (fun w -> w.busy) workers do
         let fds =
           Array.to_list workers
           |> List.filter_map (fun w -> if w.busy then Some w.res_r else None)
         in
         let ready, _, _ = Unix.select fds [] [] (-1.0) in
         List.iter
           (fun fd ->
             Array.iter (fun w -> if w.res_r == fd then collect w) workers)
           ready
       done
     with e ->
       finish ();
       raise e);
    finish ();
    match !error with
    | Some msg -> failwith msg
    | None ->
        Array.map
          (function
            | Some r -> r
            | None -> failwith "sched: missing result (worker lost a task)")
          results
  end

let map_list ?jobs ~encode ~decode ~f xs =
  Array.to_list (map ?jobs ~encode ~decode ~f (Array.of_list xs))
