lib/sched/sched.ml: Array Bytes Char Domain List Printexc Printf String Sv_msgpack Sys Unix
