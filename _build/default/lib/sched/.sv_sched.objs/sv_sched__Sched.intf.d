lib/sched/sched.mli: Sv_msgpack
