(** Concrete syntax trees ([T_src]) for MiniF.

    Fortran is line-structured, so the normalised perceived tree groups
    tokens per statement line (the shape a tree-sitter Fortran grammar
    yields), with parenthesised regions nested inside. Normalisation
    matches the MiniC side: comments and separators vanish, identifiers
    are anonymised, keywords/operators/literals keep their spelling, and
    [!$omp] / [!$acc] sentinel lines become structured directive nodes. *)

val t_src : file:string -> string -> Sv_tree.Label.tree
(** [t_src ~file src] is the normalised perceived tree; root kind
    ["src-file"], one ["line"] node per non-empty source line. *)

val reconstruct : Token.t list -> string
(** Concatenated raw token texts; identity on the full lexed stream. *)
