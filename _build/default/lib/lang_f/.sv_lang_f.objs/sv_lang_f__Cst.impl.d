lib/lang_f/cst.ml: List String Sv_tree Sv_util Token
