lib/lang_f/parser.ml: Array Ast List Printf String Sv_util Token
