lib/lang_f/token.ml: Hashtbl List Printf String Sv_util
