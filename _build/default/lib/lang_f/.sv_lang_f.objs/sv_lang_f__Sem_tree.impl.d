lib/lang_f/sem_tree.ml: Ast List Option Printf Sv_tree Sv_util
