lib/lang_f/lower.ml: Ast Hashtbl List Printf Sv_ir Sv_util
