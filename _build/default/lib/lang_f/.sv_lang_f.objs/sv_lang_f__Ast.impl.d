lib/lang_f/ast.ml: List String Sv_util
