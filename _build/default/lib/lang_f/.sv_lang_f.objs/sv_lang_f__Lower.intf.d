lib/lang_f/lower.mli: Ast Sv_ir
