lib/lang_f/ast.mli: Sv_util
