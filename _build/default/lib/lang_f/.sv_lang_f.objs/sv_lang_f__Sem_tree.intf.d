lib/lang_f/sem_tree.mli: Ast Sv_tree
