lib/lang_f/token.mli: Sv_util
