lib/lang_f/cst.mli: Sv_tree Token
