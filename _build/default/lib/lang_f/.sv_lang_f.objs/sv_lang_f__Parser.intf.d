lib/lang_f/parser.mli: Ast Sv_util
