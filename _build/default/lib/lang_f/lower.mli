(** Lowering MiniF to the SilverVale IR (GFortran's GENERIC → Low GIMPLE
    path of §IV-B).

    Program units become functions ([program] becomes [main]); whole-array
    assignments synthesise element loops; [do concurrent] lowers to a
    plain loop (GFortran executes it serially); OpenMP regions are
    outlined and invoked through fork/offload runtime calls exactly like
    the MiniC side.

    OpenACC lowers {e inline, without any parallel runtime structure} —
    deliberately modelling the GCC quality-of-implementation issue the
    paper observes (§V-B: the OpenACC BabelStream "did not introduce extra
    tokens related to parallelism", consistent with its single-threaded
    performance). *)

val lower : file:string -> Ast.file -> Sv_ir.Ir.modul
(** [lower ~file f] produces one validated IR module per source file. *)
