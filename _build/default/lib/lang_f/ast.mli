(** Abstract syntax for MiniF.

    The Fortran-side frontend representation behind [T_sem] (the GENERIC /
    High-GIMPLE analogue of §IV-B). Deliberately {e not} label-compatible
    with the MiniC AST: the paper stresses that GIMPLE and ClangAST trees
    are not meaningfully comparable across compilers, and the metric layer
    never mixes them.

    Covers the BabelStream-Fortran model family: whole-array assignments
    ([Array] / [OpenACC Array] models), [do concurrent], classic [do]
    loops, and [!$omp] / [!$acc] directive regions. *)

type base_ty =
  | FReal of int  (** [real(kind=k)]; [real] is kind 4, [double precision] kind 8 *)
  | FInteger
  | FLogical
  | FCharacter

type fattr =
  | Allocatable
  | Dimension of int  (** declared rank, from [dimension(:)] etc. *)
  | Parameter
  | Intent of string  (** ["in"], ["out"], ["inout"] *)

type expr = { e : expr_node; eloc : Sv_util.Loc.t }

and expr_node =
  | FInt of int
  | FRealLit of float
  | FStr of string
  | FBool of bool
  | FVar of string
  | FBin of string * expr * expr  (** operator spelling: ["+"], ["**"], [".and."], ... *)
  | FUn of string * expr
  | FRef of string * arg list
      (** the paren form [name(a, 1:n, :)] — array reference, slice, or
          function call; Fortran syntax cannot distinguish these without
          declarations, so the tree keeps the uniform node and the
          interpreter resolves by environment *)

and arg =
  | AExpr of expr
  | ARange of expr option * expr option  (** [lo:hi], either side open *)

type directive = {
  fd_origin : [ `Omp | `Acc ];
  fd_clauses : (string * string option) list;
  fd_loc : Sv_util.Loc.t;
}

type stmt = { s : stmt_node; sloc : Sv_util.Loc.t }

and stmt_node =
  | FAssign of expr * expr
  | FCallS of string * expr list
  | FIf of expr * stmt list * stmt list
  | FDo of string * expr * expr * expr option * stmt list
      (** [do v = lo, hi [, step]] *)
  | FDoConcurrent of string * expr * expr * stmt list
  | FDoWhile of expr * stmt list
  | FAllocate of (string * expr list) list
  | FDeallocate of string list
  | FDirective of directive * stmt list
      (** a directive and the region/loop it governs *)
  | FPrint of expr list
  | FReturn
  | FExit
  | FCycle
  | FStop of expr option

type decl = {
  d_ty : base_ty;
  d_attrs : fattr list;
  d_names : (string * int * expr option) list;
      (** name, declared rank from an inline spec like [a(n)] (0 when
          scalar), optional initialiser *)
  d_loc : Sv_util.Loc.t;
}

type unit_kind =
  | Program
  | Subroutine of (string list)  (** dummy-argument names *)

type prog_unit = {
  u_kind : unit_kind;
  u_name : string;
  u_decls : decl list;
  u_body : stmt list;
  u_loc : Sv_util.Loc.t;
}

type file = { f_file : string; f_units : prog_unit list }

val find_unit : file -> string -> prog_unit option
(** [find_unit f name] looks a program unit up by (lowercased) name. *)

val main_program : file -> prog_unit option
(** The unique [program] unit, if any. *)
