module Loc = Sv_util.Loc
open Ast

exception Parse_error of string * Loc.t

type state = { toks : Token.t array; mutable pos : int; file : string }

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None

let loc_here st =
  match peek st with
  | Some t -> t.loc
  | None -> Loc.make ~file:st.file ~line:1 ~col:0

let fail st msg = raise (Parse_error (msg, loc_here st))

let next st =
  match peek st with
  | Some t ->
      st.pos <- st.pos + 1;
      t
  | None -> fail st "unexpected end of input"

let lower (t : Token.t) = String.lowercase_ascii t.text

let is_text st text =
  match peek st with Some t -> lower t = text | None -> false

let eat st text =
  match peek st with
  | Some t when lower t = text -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %S" text)

let accept st text =
  if is_text st text then begin
    st.pos <- st.pos + 1;
    true
  end
  else false

let skip_newlines st =
  while (match peek st with Some { kind = Token.Newline; _ } -> true | _ -> false) do
    st.pos <- st.pos + 1
  done

let eat_eol st =
  match peek st with
  | Some { kind = Token.Newline; _ } | None -> skip_newlines st
  | Some t -> raise (Parse_error ("expected end of line", t.loc))

let at_eol st =
  match peek st with Some { kind = Token.Newline; _ } | None -> true | _ -> false

(* --- directives ------------------------------------------------------ *)

let parse_directive_line text loc =
  match Sv_util.Directive_syntax.strip_sentinel text with
  | Some (origin, body) ->
      Some { fd_origin = origin; fd_clauses = Sv_util.Directive_syntax.split body; fd_loc = loc }
  | None -> None

let directive_words d = List.map fst d.fd_clauses

let is_end_directive d =
  match directive_words d with "end" :: _ -> true | _ -> false

let is_loop_directive d =
  let ws = directive_words d in
  List.exists (fun w -> w = "do" || w = "loop" || w = "taskloop") ws

let is_standalone_directive d =
  let ws = directive_words d in
  List.exists (fun w -> List.mem w [ "enter"; "exit"; "update"; "barrier"; "taskwait" ]) ws

(* --- expressions ------------------------------------------------------ *)

let mk loc e = { e; eloc = loc }

let float_of_fortran text =
  (* 1.0d0 / 2.5e-3 / 4.0_8: normalise d->e, strip kind suffix. *)
  let text =
    match String.index_opt text '_' with
    | Some i -> String.sub text 0 i
    | None -> text
  in
  let text = String.map (fun c -> if c = 'd' || c = 'D' then 'e' else c) text in
  float_of_string text

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while is_text st ".or." do
    let t = next st in
    let rhs = parse_and st in
    lhs := mk (Loc.span t.loc rhs.eloc) (FBin (".or.", !lhs, rhs))
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_not st) in
  while is_text st ".and." do
    let t = next st in
    let rhs = parse_not st in
    lhs := mk (Loc.span t.loc rhs.eloc) (FBin (".and.", !lhs, rhs))
  done;
  !lhs

and parse_not st =
  if is_text st ".not." then begin
    let t = next st in
    let e = parse_not st in
    mk (Loc.span t.loc e.eloc) (FUn (".not.", e))
  end
  else parse_rel st

and parse_rel st =
  let lhs = parse_add st in
  match peek st with
  | Some { kind = Token.Op; text; _ }
    when List.mem text [ "=="; "/="; "<"; ">"; "<="; ">=" ] ->
      let t = next st in
      let rhs = parse_add st in
      mk (Loc.span t.loc rhs.eloc) (FBin (t.text, lhs, rhs))
  | _ -> lhs

and parse_add st =
  let lhs = ref (parse_mul st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some { kind = Token.Op; text = ("+" | "-") as op; _ } ->
        let _ = next st in
        let rhs = parse_mul st in
        lhs := mk (Loc.span !lhs.eloc rhs.eloc) (FBin (op, !lhs, rhs))
    | _ -> continue := false
  done;
  !lhs

and parse_mul st =
  let lhs = ref (parse_pow st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Some { kind = Token.Op; text = ("*" | "/") as op; _ } ->
        let _ = next st in
        let rhs = parse_pow st in
        lhs := mk (Loc.span !lhs.eloc rhs.eloc) (FBin (op, !lhs, rhs))
    | _ -> continue := false
  done;
  !lhs

and parse_pow st =
  let base = parse_unary st in
  if is_text st "**" then begin
    let t = next st in
    let e = parse_pow st in
    mk (Loc.span t.loc e.eloc) (FBin ("**", base, e))
  end
  else base

and parse_unary st =
  match peek st with
  | Some { kind = Token.Op; text = "-"; _ } ->
      let t = next st in
      let e = parse_unary st in
      mk (Loc.span t.loc e.eloc) (FUn ("-", e))
  | Some { kind = Token.Op; text = "+"; _ } ->
      let _ = next st in
      parse_unary st
  | _ -> parse_primary st

and parse_arg st =
  (* ':' alone, 'lo:hi', ':hi', 'lo:' or a plain expression. *)
  if is_text st ":" then begin
    let _ = next st in
    if at_eol st || is_text st ")" || is_text st "," then ARange (None, None)
    else ARange (None, Some (parse_expr st))
  end
  else
    let e = parse_expr st in
    if is_text st ":" then begin
      let _ = next st in
      if is_text st ")" || is_text st "," then ARange (Some e, None)
      else ARange (Some e, Some (parse_expr st))
    end
    else AExpr e

and parse_ref_args st =
  eat st "(";
  let args = ref [] in
  if not (is_text st ")") then begin
    let rec loop () =
      args := parse_arg st :: !args;
      if accept st "," then loop ()
    in
    loop ()
  end;
  eat st ")";
  List.rev !args

and parse_primary st =
  match peek st with
  | None -> fail st "unexpected end of expression"
  | Some t -> (
      match t.kind with
      | Token.IntLit ->
          let _ = next st in
          (* A kind suffix like 8_8 makes it a plain int. *)
          let text =
            match String.index_opt t.text '_' with
            | Some i -> String.sub t.text 0 i
            | None -> t.text
          in
          mk t.loc (FInt (int_of_string text))
      | Token.FloatLit ->
          let _ = next st in
          mk t.loc (FRealLit (float_of_fortran t.text))
      | Token.StringLit ->
          let _ = next st in
          mk t.loc (FStr (String.sub t.text 1 (String.length t.text - 2)))
      | Token.Op when t.text = ".true." ->
          let _ = next st in
          mk t.loc (FBool true)
      | Token.Op when t.text = ".false." ->
          let _ = next st in
          mk t.loc (FBool false)
      | Token.Punct when t.text = "(" ->
          let _ = next st in
          let e = parse_expr st in
          eat st ")";
          e
      | Token.Ident | Token.Keyword ->
          let _ = next st in
          let name = String.lowercase_ascii t.text in
          if is_text st "(" then mk t.loc (FRef (name, parse_ref_args st))
          else mk t.loc (FVar name)
      | _ -> fail st (Printf.sprintf "unexpected token %S" t.text))

(* --- declarations ----------------------------------------------------- *)

let is_decl_start st =
  match peek st with
  | Some { kind = Token.Keyword; text; _ } ->
      List.mem (String.lowercase_ascii text)
        [ "integer"; "real"; "logical"; "character"; "double" ]
  | _ -> false

let parse_base_ty st =
  match lower (next st) with
  | "integer" -> FInteger
  | "logical" -> FLogical
  | "character" -> FCharacter
  | "double" ->
      eat st "precision";
      FReal 8
  | "real" ->
      if accept st "(" then begin
        let kind =
          if accept st "kind" then begin
            eat st "=";
            match peek st with
            | Some { kind = Token.IntLit; text; _ } ->
                let _ = next st in
                int_of_string text
            | _ -> fail st "expected kind value"
          end
          else
            match peek st with
            | Some { kind = Token.IntLit; text; _ } ->
                let _ = next st in
                int_of_string text
            | _ -> fail st "expected kind value"
        in
        eat st ")";
        FReal kind
      end
      else FReal 4
  | other -> fail st (Printf.sprintf "unexpected type %S" other)

let parse_attr st =
  match lower (next st) with
  | "allocatable" -> Allocatable
  | "parameter" -> Parameter
  | "dimension" ->
      eat st "(";
      let rank = ref 1 in
      let rec loop () =
        (if is_text st ":" then ignore (next st)
         else ignore (parse_expr st));
        if accept st "," then begin
          incr rank;
          loop ()
        end
      in
      loop ();
      eat st ")";
      Dimension !rank
  | "intent" ->
      eat st "(";
      let dir = lower (next st) in
      (* "in out" spelled as two tokens is also accepted *)
      let dir = if dir = "in" && accept st "out" then "inout" else dir in
      eat st ")";
      Intent dir
  | other -> fail st (Printf.sprintf "unknown attribute %S" other)

let parse_decl st =
  let loc = loc_here st in
  let ty = parse_base_ty st in
  let attrs = ref [] in
  while is_text st "," do
    eat st ",";
    attrs := parse_attr st :: !attrs
  done;
  eat st "::";
  let names = ref [] in
  let rec loop () =
    let t = next st in
    if t.kind <> Token.Ident then fail st "expected declared name";
    let rank =
      if is_text st "(" then begin
        let args = parse_ref_args st in
        List.length args
      end
      else 0
    in
    let init = if accept st "=" then Some (parse_expr st) else None in
    names := (String.lowercase_ascii t.text, rank, init) :: !names;
    if accept st "," then loop ()
  in
  loop ();
  eat_eol st;
  { d_ty = ty; d_attrs = List.rev !attrs; d_names = List.rev !names; d_loc = loc }

(* --- statements ------------------------------------------------------- *)

let rec parse_stmt st : stmt =
  match peek st with
  | None -> fail st "expected a statement"
  | Some t -> (
      match t.kind with
      | Token.Directive -> parse_directive_stmt st
      | Token.Keyword -> (
          match lower t with
          | "do" -> parse_do st
          | "if" -> parse_if st
          | "call" ->
              let _ = next st in
              let name = next st in
              if name.kind <> Token.Ident then fail st "expected subroutine name";
              let args =
                if is_text st "(" then
                  List.map
                    (function
                      | AExpr e -> e
                      | ARange _ -> fail st "range in call arguments")
                    (parse_ref_args st)
                else []
              in
              eat_eol st;
              { s = FCallS (String.lowercase_ascii name.text, args); sloc = t.loc }
          | "allocate" ->
              let _ = next st in
              eat st "(";
              let allocs = ref [] in
              let rec loop () =
                let name = next st in
                if name.kind <> Token.Ident then fail st "expected array name";
                let dims =
                  if is_text st "(" then
                    List.map
                      (function
                        | AExpr e -> e
                        | ARange (_, Some e) -> e
                        | ARange _ -> fail st "open range in allocate")
                      (parse_ref_args st)
                  else []
                in
                allocs := (String.lowercase_ascii name.text, dims) :: !allocs;
                if accept st "," then loop ()
              in
              loop ();
              eat st ")";
              eat_eol st;
              { s = FAllocate (List.rev !allocs); sloc = t.loc }
          | "deallocate" ->
              let _ = next st in
              eat st "(";
              let names = ref [] in
              let rec loop () =
                let name = next st in
                names := String.lowercase_ascii name.text :: !names;
                if accept st "," then loop ()
              in
              loop ();
              eat st ")";
              eat_eol st;
              { s = FDeallocate (List.rev !names); sloc = t.loc }
          | "print" ->
              let _ = next st in
              (* print *, e1, e2 ... *)
              (match peek st with
              | Some { text = "*"; _ } -> ignore (next st)
              | _ -> ());
              let args = ref [] in
              while accept st "," do
                args := parse_expr st :: !args
              done;
              eat_eol st;
              { s = FPrint (List.rev !args); sloc = t.loc }
          | "return" ->
              let _ = next st in
              eat_eol st;
              { s = FReturn; sloc = t.loc }
          | "exit" ->
              let _ = next st in
              eat_eol st;
              { s = FExit; sloc = t.loc }
          | "cycle" ->
              let _ = next st in
              eat_eol st;
              { s = FCycle; sloc = t.loc }
          | "stop" ->
              let _ = next st in
              let e = if at_eol st then None else Some (parse_expr st) in
              eat_eol st;
              { s = FStop e; sloc = t.loc }
          | _ -> parse_assignment st)
      | _ -> parse_assignment st)

and parse_assignment st =
  let loc = loc_here st in
  let lhs = parse_primary st in
  eat st "=";
  let rhs = parse_expr st in
  eat_eol st;
  { s = FAssign (lhs, rhs); sloc = loc }

and parse_do st =
  let t = next st in
  (* do / do while / do concurrent *)
  if is_text st "while" then begin
    eat st "while";
    eat st "(";
    let cond = parse_expr st in
    eat st ")";
    eat_eol st;
    let body = parse_stmts_until_end st in
    parse_end_of st "do";
    { s = FDoWhile (cond, body); sloc = t.loc }
  end
  else if is_text st "concurrent" then begin
    eat st "concurrent";
    eat st "(";
    let v = next st in
    eat st "=";
    let lo = parse_expr st in
    eat st ":";
    let hi = parse_expr st in
    eat st ")";
    eat_eol st;
    let body = parse_stmts_until_end st in
    parse_end_of st "do";
    { s = FDoConcurrent (String.lowercase_ascii v.text, lo, hi, body); sloc = t.loc }
  end
  else begin
    let v = next st in
    if v.kind <> Token.Ident then fail st "expected loop variable";
    eat st "=";
    let lo = parse_expr st in
    eat st ",";
    let hi = parse_expr st in
    let step = if accept st "," then Some (parse_expr st) else None in
    eat_eol st;
    let body = parse_stmts_until_end st in
    parse_end_of st "do";
    { s = FDo (String.lowercase_ascii v.text, lo, hi, step, body); sloc = t.loc }
  end

and parse_if st =
  let t = next st in
  eat st "(";
  let cond = parse_expr st in
  eat st ")";
  if accept st "then" then begin
    eat_eol st;
    let then_ = parse_stmts_until_end st in
    let else_ =
      if is_text st "else" then begin
        eat st "else";
        eat_eol st;
        let b = parse_stmts_until_end st in
        b
      end
      else []
    in
    parse_end_of st "if";
    { s = FIf (cond, then_, else_); sloc = t.loc }
  end
  else begin
    (* one-line if *)
    let body = parse_stmt st in
    { s = FIf (cond, [ body ], []); sloc = t.loc }
  end

and parse_directive_stmt st =
  let t = next st in
  match parse_directive_line t.text t.loc with
  | None ->
      eat_eol st;
      { s = FDirective ({ fd_origin = `Omp; fd_clauses = []; fd_loc = t.loc }, []); sloc = t.loc }
  | Some d ->
      eat_eol st;
      if is_end_directive d || is_standalone_directive d then
        (* end or standalone (data-movement/synchronisation) directive *)
        { s = FDirective (d, []); sloc = t.loc }
      else if is_loop_directive d then begin
        let body = [ parse_stmt st ] in
        (* optional matching end line *)
        (match peek st with
        | Some ({ kind = Token.Directive; _ } as e) -> (
            match parse_directive_line e.text e.loc with
            | Some d' when is_end_directive d' ->
                let _ = next st in
                eat_eol st
            | _ -> ())
        | _ -> ());
        { s = FDirective (d, body); sloc = t.loc }
      end
      else begin
        (* block region until matching end directive *)
        let body = ref [] in
        let fin = ref false in
        while not !fin do
          match peek st with
          | None -> fail st "unterminated directive region"
          | Some ({ kind = Token.Directive; _ } as e) -> (
              match parse_directive_line e.text e.loc with
              | Some d' when is_end_directive d' ->
                  let _ = next st in
                  eat_eol st;
                  fin := true
              | _ -> body := parse_stmt st :: !body)
          | Some _ -> body := parse_stmt st :: !body
        done;
        { s = FDirective (d, List.rev !body); sloc = t.loc }
      end

(* Statements until an "end", "else" or "elseif" keyword at line start. *)
and parse_stmts_until_end st =
  let stmts = ref [] in
  let fin = ref false in
  while not !fin do
    skip_newlines st;
    match peek st with
    | None -> fail st "missing end"
    | Some t when t.kind = Token.Keyword && (lower t = "end" || lower t = "else") ->
        fin := true
    | Some t when t.kind = Token.Keyword && (lower t = "enddo" || lower t = "endif") ->
        fin := true
    | Some _ -> stmts := parse_stmt st :: !stmts
  done;
  List.rev !stmts

and parse_end_of st what =
  (* Accept "end", "end do", "enddo", "end if", "endif". *)
  match peek st with
  | Some t when t.kind = Token.Keyword && lower t = "end" ^ what ->
      let _ = next st in
      eat_eol st
  | Some t when t.kind = Token.Keyword && lower t = "end" ->
      let _ = next st in
      let _ = accept st what in
      eat_eol st
  | _ -> fail st (Printf.sprintf "expected end %s" what)

(* --- program units ---------------------------------------------------- *)

let parse_unit st =
  skip_newlines st;
  let t = next st in
  let kind_word = lower t in
  let kind, name =
    match kind_word with
    | "program" ->
        let n = next st in
        (Program, String.lowercase_ascii n.text)
    | "subroutine" ->
        let n = next st in
        let args =
          if is_text st "(" then begin
            eat st "(";
            let args = ref [] in
            if not (is_text st ")") then begin
              let rec loop () =
                let a = next st in
                args := String.lowercase_ascii a.text :: !args;
                if accept st "," then loop ()
              in
              loop ()
            end;
            eat st ")";
            List.rev !args
          end
          else []
        in
        (Subroutine args, String.lowercase_ascii n.text)
    | other -> fail st (Printf.sprintf "expected program unit, got %S" other)
  in
  eat_eol st;
  (* "implicit none" and "use" lines *)
  let rec skip_headers () =
    skip_newlines st;
    if is_text st "implicit" then begin
      eat st "implicit";
      eat st "none";
      eat_eol st;
      skip_headers ()
    end
    else if is_text st "use" then begin
      eat st "use";
      let _ = next st in
      eat_eol st;
      skip_headers ()
    end
  in
  skip_headers ();
  let decls = ref [] in
  skip_newlines st;
  while is_decl_start st do
    decls := parse_decl st :: !decls;
    skip_newlines st
  done;
  let body = parse_stmts_until_end st in
  (* end [program|subroutine] [name] *)
  eat st "end";
  let _ = accept st kind_word in
  (match peek st with
  | Some { kind = Token.Ident; _ } -> ignore (next st)
  | _ -> ());
  eat_eol st;
  { u_kind = kind; u_name = name; u_decls = List.rev !decls; u_body = body; u_loc = t.loc }

let parse ~file src =
  let toks = Array.of_list (Token.significant (Token.lex ~file src)) in
  let st = { toks; pos = 0; file } in
  let units = ref [] in
  skip_newlines st;
  while peek st <> None do
    units := parse_unit st :: !units;
    skip_newlines st
  done;
  { f_file = file; f_units = List.rev !units }
