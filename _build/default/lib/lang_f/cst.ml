module Loc = Sv_util.Loc
module Tree = Sv_tree.Tree
module Label = Sv_tree.Label

let reconstruct tokens = String.concat "" (List.map (fun (t : Token.t) -> t.text) tokens)

let directive_tree (t : Token.t) =
  match Sv_util.Directive_syntax.strip_sentinel t.text with
  | None -> Tree.leaf (Label.v ~loc:t.loc "directive")
  | Some (origin, body) ->
      let prefix = match origin with `Omp -> "omp" | `Acc -> "acc" in
      let clause (word, args) =
        let kids =
          match args with
          | None -> []
          | Some a ->
              [ Tree.leaf
                  (Label.v ~text:(Sv_util.Xstring.collapse_spaces a) ~loc:t.loc
                     (prefix ^ "-clause-args")) ]
        in
        Tree.node (Label.v ~loc:t.loc (prefix ^ ":" ^ word)) kids
      in
      Tree.node
        (Label.v ~loc:t.loc (prefix ^ "-directive"))
        (List.map clause (Sv_util.Directive_syntax.split body))

let token_tree (t : Token.t) : Label.tree option =
  match t.kind with
  | Token.Whitespace | Token.Comment | Token.Newline -> None
  | Token.Punct -> None
  | Token.Ident -> Some (Tree.leaf (Label.v ~loc:t.loc "ident"))
  | Token.Keyword ->
      Some (Tree.leaf (Label.v ~text:(String.lowercase_ascii t.text) ~loc:t.loc "kw"))
  | Token.Op -> Some (Tree.leaf (Label.v ~text:t.text ~loc:t.loc "op"))
  | Token.IntLit | Token.FloatLit | Token.StringLit ->
      Some (Tree.leaf (Label.v ~text:t.text ~loc:t.loc (Token.kind_name t.kind)))
  | Token.Directive -> Some (directive_tree t)

(* Nest one line's tokens by parentheses. *)
let rec nest_line (toks : Token.t list) : Label.tree list =
  match toks with
  | [] -> []
  | ({ kind = Token.Punct; text = "("; loc; _ } : Token.t) :: rest ->
      let inner, rest = take_group 1 [] rest in
      Tree.node (Label.v ~loc "parens") (nest_line inner) :: nest_line rest
  | t :: rest -> (
      match token_tree t with
      | Some n -> n :: nest_line rest
      | None -> nest_line rest)

and take_group depth acc = function
  | [] -> (List.rev acc, [])
  | ({ kind = Token.Punct; text = "("; _ } as t : Token.t) :: rest ->
      take_group (depth + 1) (t :: acc) rest
  | ({ kind = Token.Punct; text = ")"; _ } as t) :: rest ->
      if depth = 1 then (List.rev acc, rest) else take_group (depth - 1) (t :: acc) rest
  | t :: rest -> take_group depth (t :: acc) rest

let t_src ~file src =
  let tokens = Token.significant (Token.lex ~file src) in
  (* split on newlines *)
  let lines = ref [] and cur = ref [] in
  List.iter
    (fun (t : Token.t) ->
      if t.kind = Token.Newline then begin
        if !cur <> [] then lines := List.rev !cur :: !lines;
        cur := []
      end
      else cur := t :: !cur)
    tokens;
  if !cur <> [] then lines := List.rev !cur :: !lines;
  let line_node toks =
    match toks with
    | [] -> None
    | (first : Token.t) :: _ -> (
        match nest_line toks with
        | [] -> None
        | kids -> Some (Tree.node (Label.v ~loc:first.loc "line") kids))
  in
  Tree.node
    (Label.v ~loc:(Loc.make ~file ~line:1 ~col:0) "src-file")
    (List.filter_map line_node (List.rev !lines))
