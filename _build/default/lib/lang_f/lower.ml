module Loc = Sv_util.Loc
module Ir = Sv_ir.Ir
open Ast

type mstate = {
  mutable funcs : Ir.func list;
  mutable globals : Ir.global list;
  mutable outlined : int;
  mutable has_device : bool;
}

type fstate = {
  ms : mstate;
  mutable reg : int;
  mutable blocks : Ir.block list;
  mutable cur_id : int;
  mutable cur_instrs : Ir.instr list;
  mutable next_block : int;
  mutable env : (string * int) list;  (* name -> alloca slot *)
  arrays : (string, unit) Hashtbl.t;  (* names declared with rank > 0 *)
  mutable loops : (int * int) list;   (* (cycle target, exit target) *)
}

let fresh fs =
  let r = fs.reg in
  fs.reg <- r + 1;
  r

let emit fs ~loc node = fs.cur_instrs <- { Ir.i = node; iloc = loc } :: fs.cur_instrs

let new_block_id fs =
  let id = fs.next_block in
  fs.next_block <- id + 1;
  id

let finish_block fs term =
  fs.blocks <-
    { Ir.b_id = fs.cur_id; b_instrs = List.rev fs.cur_instrs; b_term = term } :: fs.blocks;
  fs.cur_instrs <- []

let start_block fs id =
  fs.cur_id <- id;
  fs.cur_instrs <- []

let fty k = if k >= 8 then Ir.F64 else Ir.F32

let slot fs name =
  match List.assoc_opt name fs.env with
  | Some s -> Some s
  | None -> None

let is_array fs name = Hashtbl.mem fs.arrays name

let binop_ir = function
  | "+" -> `Bin "add" | "-" -> `Bin "sub" | "*" -> `Bin "mul" | "/" -> `Bin "div"
  | "**" -> `Call "pow"
  | ".and." -> `Bin "and" | ".or." -> `Bin "or"
  | "==" -> `Cmp "eq" | "/=" -> `Cmp "ne" | "<" -> `Cmp "lt" | ">" -> `Cmp "gt"
  | "<=" -> `Cmp "le" | ">=" -> `Cmp "ge"
  | _ -> `Bin "add"

(* An expression contains a whole-array reference (slice or bare array
   name) when it needs elementwise loop expansion. *)
let rec has_array_value fs (e : expr) =
  match e.e with
  | FVar name -> is_array fs name
  | FRef (_, args) ->
      List.exists (function ARange _ -> true | AExpr a -> has_array_value fs a) args
  | FBin (_, a, b) -> has_array_value fs a || has_array_value fs b
  | FUn (_, a) -> has_array_value fs a
  | _ -> false

let rec lower_expr fs (e : expr) : Ir.value =
  let loc = e.eloc in
  match e.e with
  | FInt n -> Ir.ImmI n
  | FRealLit f -> Ir.ImmF f
  | FStr _ -> Ir.Glob ".str"
  | FBool b -> Ir.ImmI (if b then 1 else 0)
  | FVar name -> (
      match slot fs name with
      | Some s ->
          let r = fresh fs in
          emit fs ~loc (Ir.Load (r, Ir.F64, Ir.Reg s));
          Ir.Reg r
      | None -> Ir.Glob name)
  | FBin (op, a, b) -> (
      let va = lower_expr fs a in
      let vb = lower_expr fs b in
      match binop_ir op with
      | `Bin name ->
          let r = fresh fs in
          emit fs ~loc (Ir.Bin (r, name, Ir.F64, va, vb));
          Ir.Reg r
      | `Cmp pred ->
          let r = fresh fs in
          emit fs ~loc (Ir.Cmp (r, pred, Ir.F64, va, vb));
          Ir.Reg r
      | `Call callee ->
          let r = fresh fs in
          emit fs ~loc (Ir.CallI (Some r, Ir.F64, Ir.Glob callee, [ va; vb ]));
          Ir.Reg r)
  | FUn (op, a) ->
      let va = lower_expr fs a in
      let r = fresh fs in
      (match op with
      | "-" -> emit fs ~loc (Ir.Bin (r, "sub", Ir.F64, Ir.ImmF 0.0, va))
      | ".not." -> emit fs ~loc (Ir.Cmp (r, "eq", Ir.I1, va, Ir.ImmI 0))
      | _ -> emit fs ~loc (Ir.Bin (r, "add", Ir.F64, Ir.ImmF 0.0, va)));
      Ir.Reg r
  | FRef (name, args) ->
      if is_array fs name then begin
        (* indexed element read: a(i) with plain expressions *)
        let base =
          match slot fs name with Some s -> Ir.Reg s | None -> Ir.Glob name
        in
        let idx =
          match args with
          | [ AExpr i ] -> lower_expr fs i
          | _ -> Ir.ImmI 0
        in
        let g = fresh fs in
        emit fs ~loc (Ir.Gep (g, base, idx));
        let r = fresh fs in
        emit fs ~loc (Ir.Load (r, Ir.F64, Ir.Reg g));
        Ir.Reg r
      end
      else begin
        let vargs =
          List.map
            (function AExpr a -> lower_expr fs a | ARange _ -> Ir.Undef)
            args
        in
        let r = fresh fs in
        emit fs ~loc (Ir.CallI (Some r, Ir.F64, Ir.Glob name, vargs));
        Ir.Reg r
      end

(* Address of an lvalue element, with the loop index [idx] substituted for
   open ranges / bare array names during array-expression expansion. *)
let lower_elem_addr fs ~loc ~idx (e : expr) : Ir.value =
  match e.e with
  | FVar name | FRef (name, _) ->
      let base = match slot fs name with Some s -> Ir.Reg s | None -> Ir.Glob name in
      let g = fresh fs in
      emit fs ~loc (Ir.Gep (g, base, idx));
      Ir.Reg g
  | _ ->
      let r = fresh fs in
      emit fs ~loc (Ir.Alloca (r, Ir.F64));
      Ir.Reg r

(* Rewrite an array-valued expression into its element at [idx]. *)
let rec lower_elem fs ~loc ~idx (e : expr) : Ir.value =
  match e.e with
  | FVar name when is_array fs name ->
      let base = match slot fs name with Some s -> Ir.Reg s | None -> Ir.Glob name in
      let g = fresh fs in
      emit fs ~loc (Ir.Gep (g, base, idx));
      let r = fresh fs in
      emit fs ~loc (Ir.Load (r, Ir.F64, Ir.Reg g));
      Ir.Reg r
  | FRef (name, _) when is_array fs name ->
      let base = match slot fs name with Some s -> Ir.Reg s | None -> Ir.Glob name in
      let g = fresh fs in
      emit fs ~loc (Ir.Gep (g, base, idx));
      let r = fresh fs in
      emit fs ~loc (Ir.Load (r, Ir.F64, Ir.Reg g));
      Ir.Reg r
  | FBin (op, a, b) -> (
      let va = lower_elem fs ~loc ~idx a in
      let vb = lower_elem fs ~loc ~idx b in
      match binop_ir op with
      | `Bin name ->
          let r = fresh fs in
          emit fs ~loc (Ir.Bin (r, name, Ir.F64, va, vb));
          Ir.Reg r
      | `Cmp pred ->
          let r = fresh fs in
          emit fs ~loc (Ir.Cmp (r, pred, Ir.F64, va, vb));
          Ir.Reg r
      | `Call callee ->
          let r = fresh fs in
          emit fs ~loc (Ir.CallI (Some r, Ir.F64, Ir.Glob callee, [ va; vb ]));
          Ir.Reg r)
  | FUn (_, a) -> lower_elem fs ~loc ~idx a
  | _ -> lower_expr fs e

(* Synthesised element loop for a whole-array assignment: GFortran expands
   [c(:) = a + s*b] into a counted loop at the GIMPLE level. *)
let lower_array_assign fs ~loc lhs rhs =
  let idx_slot = fresh fs in
  emit fs ~loc (Ir.Alloca (idx_slot, Ir.I64));
  let r = fresh fs in
  emit fs ~loc (Ir.CallI (Some r, Ir.I64, Ir.Glob "__array_extent", []));
  emit fs ~loc (Ir.Store (Ir.I64, Ir.ImmI 0, Ir.Reg idx_slot));
  let bc = new_block_id fs and bb = new_block_id fs and be = new_block_id fs in
  finish_block fs (Ir.Br bc);
  start_block fs bc;
  let iv = fresh fs in
  emit fs ~loc (Ir.Load (iv, Ir.I64, Ir.Reg idx_slot));
  let c = fresh fs in
  emit fs ~loc (Ir.Cmp (c, "lt", Ir.I64, Ir.Reg iv, Ir.Reg r));
  finish_block fs (Ir.CondBr (Ir.Reg c, bb, be));
  start_block fs bb;
  let iv2 = fresh fs in
  emit fs ~loc (Ir.Load (iv2, Ir.I64, Ir.Reg idx_slot));
  let v = lower_elem fs ~loc ~idx:(Ir.Reg iv2) rhs in
  let addr = lower_elem_addr fs ~loc ~idx:(Ir.Reg iv2) lhs in
  emit fs ~loc (Ir.Store (Ir.F64, v, addr));
  let iv3 = fresh fs in
  emit fs ~loc (Ir.Load (iv3, Ir.I64, Ir.Reg idx_slot));
  let inc = fresh fs in
  emit fs ~loc (Ir.Bin (inc, "add", Ir.I64, Ir.Reg iv3, Ir.ImmI 1));
  emit fs ~loc (Ir.Store (Ir.I64, Ir.Reg inc, Ir.Reg idx_slot));
  finish_block fs (Ir.Br bc);
  start_block fs be

let rec lower_stmt fs (s : stmt) =
  let loc = s.sloc in
  match s.s with
  | FAssign (lhs, rhs) ->
      let lhs_is_array =
        match lhs.e with
        | FVar name -> is_array fs name
        | FRef (name, args) ->
            is_array fs name
            && List.exists (function ARange _ -> true | AExpr _ -> false) args
        | _ -> false
      in
      if lhs_is_array || has_array_value fs rhs then lower_array_assign fs ~loc lhs rhs
      else begin
        let v = lower_expr fs rhs in
        let addr =
          match lhs.e with
          | FVar name -> (
              match slot fs name with Some s -> Ir.Reg s | None -> Ir.Glob name)
          | FRef (name, [ AExpr i ]) when is_array fs name ->
              let base =
                match slot fs name with Some s -> Ir.Reg s | None -> Ir.Glob name
              in
              let idx = lower_expr fs i in
              let g = fresh fs in
              emit fs ~loc (Ir.Gep (g, base, idx));
              Ir.Reg g
          | _ ->
              let r = fresh fs in
              emit fs ~loc (Ir.Alloca (r, Ir.F64));
              Ir.Reg r
        in
        emit fs ~loc (Ir.Store (Ir.F64, v, addr))
      end
  | FCallS (name, args) ->
      let vargs = List.map (lower_expr fs) args in
      emit fs ~loc (Ir.CallI (None, Ir.Void, Ir.Glob name, vargs))
  | FIf (c, t, f) ->
      let vc = lower_expr fs c in
      let bt = new_block_id fs and bf = new_block_id fs and bm = new_block_id fs in
      finish_block fs (Ir.CondBr (vc, bt, bf));
      start_block fs bt;
      List.iter (lower_stmt fs) t;
      finish_block fs (Ir.Br bm);
      start_block fs bf;
      List.iter (lower_stmt fs) f;
      finish_block fs (Ir.Br bm);
      start_block fs bm
  | FDo (v, lo, hi, step, body) -> lower_do fs ~loc v lo hi step body
  | FDoConcurrent (v, lo, hi, body) ->
      (* GFortran executes do-concurrent serially: plain counted loop. *)
      lower_do fs ~loc v lo hi None body
  | FDoWhile (c, body) ->
      let bc = new_block_id fs and bb = new_block_id fs and be = new_block_id fs in
      finish_block fs (Ir.Br bc);
      start_block fs bc;
      let vc = lower_expr fs c in
      finish_block fs (Ir.CondBr (vc, bb, be));
      start_block fs bb;
      let saved = fs.loops in
      fs.loops <- (bc, be) :: fs.loops;
      List.iter (lower_stmt fs) body;
      fs.loops <- saved;
      finish_block fs (Ir.Br bc);
      start_block fs be
  | FAllocate allocs ->
      List.iter
        (fun (name, dims) ->
          let vdims = List.map (lower_expr fs) dims in
          let r = fresh fs in
          emit fs ~loc (Ir.CallI (Some r, Ir.Ptr, Ir.Glob "malloc", vdims));
          match slot fs name with
          | Some s -> emit fs ~loc (Ir.Store (Ir.Ptr, Ir.Reg r, Ir.Reg s))
          | None -> emit fs ~loc (Ir.Store (Ir.Ptr, Ir.Reg r, Ir.Glob name)))
        allocs
  | FDeallocate names ->
      List.iter
        (fun name ->
          let v =
            match slot fs name with
            | Some s ->
                let r = fresh fs in
                emit fs ~loc (Ir.Load (r, Ir.Ptr, Ir.Reg s));
                Ir.Reg r
            | None -> Ir.Glob name
          in
          emit fs ~loc (Ir.CallI (None, Ir.Void, Ir.Glob "free", [ v ])))
        names
  | FDirective (d, body) -> lower_directive fs ~loc d body
  | FPrint args ->
      let vargs = List.map (lower_expr fs) args in
      emit fs ~loc (Ir.CallI (None, Ir.Void, Ir.Glob "_gfortran_st_write", vargs))
  | FReturn ->
      finish_block fs (Ir.Ret None);
      start_block fs (new_block_id fs)
  | FExit -> (
      match fs.loops with
      | (_, be) :: _ ->
          finish_block fs (Ir.Br be);
          start_block fs (new_block_id fs)
      | [] -> ())
  | FCycle -> (
      match fs.loops with
      | (bc, _) :: _ ->
          finish_block fs (Ir.Br bc);
          start_block fs (new_block_id fs)
      | [] -> ())
  | FStop _ -> emit fs ~loc (Ir.CallI (None, Ir.Void, Ir.Glob "exit", [ Ir.ImmI 0 ]))

and lower_do fs ~loc v lo hi step body =
  let vslot =
    match slot fs v with
    | Some s -> s
    | None ->
        let s = fresh fs in
        emit fs ~loc (Ir.Alloca (s, Ir.I64));
        fs.env <- (v, s) :: fs.env;
        s
  in
  let vlo = lower_expr fs lo in
  emit fs ~loc (Ir.Store (Ir.I64, vlo, Ir.Reg vslot));
  let vhi = lower_expr fs hi in
  let bc = new_block_id fs and bb = new_block_id fs in
  let bs = new_block_id fs and be = new_block_id fs in
  finish_block fs (Ir.Br bc);
  start_block fs bc;
  let iv = fresh fs in
  emit fs ~loc (Ir.Load (iv, Ir.I64, Ir.Reg vslot));
  let c = fresh fs in
  emit fs ~loc (Ir.Cmp (c, "le", Ir.I64, Ir.Reg iv, vhi));
  finish_block fs (Ir.CondBr (Ir.Reg c, bb, be));
  start_block fs bb;
  let saved = fs.loops in
  fs.loops <- (bs, be) :: fs.loops;
  List.iter (lower_stmt fs) body;
  fs.loops <- saved;
  finish_block fs (Ir.Br bs);
  start_block fs bs;
  let iv2 = fresh fs in
  emit fs ~loc (Ir.Load (iv2, Ir.I64, Ir.Reg vslot));
  let vstep = match step with Some e -> lower_expr fs e | None -> Ir.ImmI 1 in
  let inc = fresh fs in
  emit fs ~loc (Ir.Bin (inc, "add", Ir.I64, Ir.Reg iv2, vstep));
  emit fs ~loc (Ir.Store (Ir.I64, Ir.Reg inc, Ir.Reg vslot));
  finish_block fs (Ir.Br bc);
  start_block fs be

and lower_directive fs ~loc d body =
  let words = List.map fst d.fd_clauses in
  let has w = List.mem w words in
  match d.fd_origin with
  | `Omp when has "target" ->
      let name = outline fs ~loc ~device:true body in
      emit fs ~loc
        (Ir.CallI (None, Ir.I32, Ir.Glob "__tgt_target_kernel", [ Ir.Glob name; Ir.ImmI (-1) ]))
  | `Omp when has "parallel" || has "taskloop" || has "task" || has "workshare" ->
      let name = outline fs ~loc ~device:false body in
      emit fs ~loc
        (Ir.CallI (None, Ir.Void, Ir.Glob "__kmpc_fork_call", [ Ir.Glob name; Ir.Undef ]))
  | `Omp -> List.iter (lower_stmt fs) body
  | `Acc ->
      (* GCC OpenACC quality-of-implementation issue (§V-B): no parallel
         structure is introduced; the region lowers as plain serial
         code. *)
      List.iter (lower_stmt fs) body

and outline fs ~loc ~device body =
  fs.ms.outlined <- fs.ms.outlined + 1;
  let name =
    if device then Printf.sprintf "__omp_offload_f.%d" fs.ms.outlined
    else Printf.sprintf ".omp_fn.%d" fs.ms.outlined
  in
  let fs' =
    {
      ms = fs.ms;
      reg = 1;
      blocks = [];
      cur_id = 0;
      cur_instrs = [];
      next_block = 1;
      env = [];
      arrays = fs.arrays;
      loops = [];
    }
  in
  emit fs' ~loc (Ir.Alloca (0, Ir.Ptr));
  List.iter (lower_stmt fs') body;
  finish_block fs' (Ir.Ret None);
  fs.ms.funcs <-
    {
      Ir.fn_name = name;
      fn_kind = (if device then Ir.Device else Ir.Host);
      fn_linkage = Ir.Internal;
      fn_ret = Ir.Void;
      fn_params = [];
      fn_blocks = List.rev fs'.blocks;
    }
    :: fs.ms.funcs;
  if device then begin
    fs.ms.has_device <- true;
    fs.ms.globals <-
      { Ir.g_name = Printf.sprintf ".offload_entry_f.%d" fs.ms.outlined;
        g_ty = Ir.Ptr; g_const = true }
      :: fs.ms.globals
  end;
  name

let unit_arrays (u : prog_unit) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let attr_rank =
        List.fold_left
          (fun acc a ->
            match a with Dimension r -> max acc r | Allocatable -> max acc 1 | _ -> acc)
          0 d.d_attrs
      in
      List.iter
        (fun (name, rank, _) -> if max rank attr_rank > 0 then Hashtbl.replace tbl name ())
        d.d_names)
    u.u_decls;
  tbl

let lower_unit ms (u : prog_unit) =
  let arrays = unit_arrays u in
  let params = match u.u_kind with Subroutine args -> args | Program -> [] in
  let fs =
    {
      ms;
      reg = List.length params;
      blocks = [];
      cur_id = 0;
      cur_instrs = [];
      next_block = 1;
      env = [];
      arrays;
      loops = [];
    }
  in
  List.iteri
    (fun i name ->
      let s = fresh fs in
      emit fs ~loc:u.u_loc (Ir.Alloca (s, Ir.Ptr));
      emit fs ~loc:u.u_loc (Ir.Store (Ir.Ptr, Ir.Reg i, Ir.Reg s));
      fs.env <- (name, s) :: fs.env)
    params;
  (* declarations lower to allocas *)
  List.iter
    (fun d ->
      List.iter
        (fun (name, _, init) ->
          let s = fresh fs in
          let ty = match d.d_ty with FReal k -> fty k | FInteger -> Ir.I64 | _ -> Ir.I1 in
          emit fs ~loc:d.d_loc (Ir.Alloca (s, ty));
          fs.env <- (name, s) :: fs.env;
          match init with
          | Some e ->
              let v = lower_expr fs e in
              emit fs ~loc:d.d_loc (Ir.Store (ty, v, Ir.Reg s))
          | None -> ())
        d.d_names)
    u.u_decls;
  List.iter (lower_stmt fs) u.u_body;
  finish_block fs (Ir.Ret None);
  let name = match u.u_kind with Program -> "main" | Subroutine _ -> u.u_name in
  ms.funcs <-
    {
      Ir.fn_name = name;
      fn_kind = Ir.Host;
      fn_linkage = Ir.Internal;
      fn_ret = Ir.Void;
      fn_params = List.map (fun _ -> Ir.Ptr) params;
      fn_blocks = List.rev fs.blocks;
    }
    :: ms.funcs

let lower ~file (f : file) =
  let ms = { funcs = []; globals = []; outlined = 0; has_device = false } in
  List.iter (lower_unit ms) f.f_units;
  if ms.has_device then
    ms.globals <- { Ir.g_name = "__offload_image_f"; g_ty = Ir.Ptr; g_const = true } :: ms.globals;
  { Ir.m_file = file; m_globals = List.rev ms.globals; m_funcs = List.rev ms.funcs }
