module Loc = Sv_util.Loc

type kind =
  | Ident
  | Keyword
  | IntLit
  | FloatLit
  | StringLit
  | Punct
  | Op
  | Directive
  | Comment
  | Newline
  | Whitespace

type t = { kind : kind; text : string; loc : Loc.t }

let keywords =
  [
    "program"; "subroutine"; "function"; "module"; "use"; "contains";
    "implicit"; "none"; "end"; "integer"; "real"; "logical"; "character";
    "double"; "precision"; "parameter"; "allocatable"; "dimension";
    "intent"; "in"; "out"; "inout"; "allocate"; "deallocate"; "do";
    "concurrent"; "while"; "if"; "then"; "else"; "elseif"; "endif";
    "enddo"; "call"; "return"; "exit"; "cycle"; "print"; "stop"; "kind";
    "result";
  ]

let keyword_set = Hashtbl.create 64
let () = List.iter (fun k -> Hashtbl.replace keyword_set k ()) keywords
let is_keyword s = Hashtbl.mem keyword_set (String.lowercase_ascii s)

exception Lex_error of string * Loc.t

let kind_name = function
  | Ident -> "ident"
  | Keyword -> "keyword"
  | IntLit -> "int-lit"
  | FloatLit -> "float-lit"
  | StringLit -> "string-lit"
  | Punct -> "punct"
  | Op -> "op"
  | Directive -> "directive"
  | Comment -> "comment"
  | Newline -> "newline"
  | Whitespace -> "whitespace"

let operators =
  [ "**"; "=="; "/="; "<="; ">="; "::"; "=>"; "+"; "-"; "*"; "/"; "="; "<"; ">"; "%" ]

let dotted_ops = [ ".and."; ".or."; ".not."; ".true."; ".false."; ".eqv."; ".neqv." ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

type cursor = { src : string; mutable pos : int; mutable line : int; mutable col : int; file : string }

let peek cur k = if cur.pos + k < String.length cur.src then Some cur.src.[cur.pos + k] else None
let here cur = { Loc.line = cur.line; col = cur.col }

let advance cur =
  (match peek cur 0 with
  | Some '\n' ->
      cur.line <- cur.line + 1;
      cur.col <- 0
  | Some _ -> cur.col <- cur.col + 1
  | None -> ());
  cur.pos <- cur.pos + 1

let take_while cur p =
  let start = cur.pos in
  while (match peek cur 0 with Some c -> p c | None -> false) do
    advance cur
  done;
  String.sub cur.src start (cur.pos - start)

let finish cur kind start_pos start =
  let text = String.sub cur.src start_pos (cur.pos - start_pos) in
  let stop =
    if cur.col > 0 then { Loc.line = cur.line; col = cur.col - 1 }
    else { Loc.line = max 1 (cur.line - 1); col = 0 }
  in
  { kind; text; loc = { Loc.file = cur.file; start; stop } }

let starts_with_at src pos prefix =
  let l = String.length prefix in
  pos + l <= String.length src
  && String.lowercase_ascii (String.sub src pos l) = prefix

let lex ~file src =
  let cur = { src; pos = 0; line = 1; col = 0; file } in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let n = String.length src in
  while cur.pos < n do
    let start = here cur and start_pos = cur.pos in
    match peek cur 0 with
    | None -> ()
    | Some '\n' ->
        advance cur;
        emit (finish cur Newline start_pos start)
    | Some (' ' | '\t' | '\r') ->
        let _ = take_while cur (fun c -> c = ' ' || c = '\t' || c = '\r') in
        emit (finish cur Whitespace start_pos start)
    | Some '!' ->
        let is_directive =
          starts_with_at src cur.pos "!$omp" || starts_with_at src cur.pos "!$acc"
        in
        let _ = take_while cur (fun c -> c <> '\n') in
        emit (finish cur (if is_directive then Directive else Comment) start_pos start)
    | Some ('\'' | '"') ->
        let quote = src.[cur.pos] in
        advance cur;
        let _ = take_while cur (fun c -> c <> quote && c <> '\n') in
        if peek cur 0 <> Some quote then
          raise (Lex_error ("unterminated string", { Loc.file; start; stop = start }));
        advance cur;
        emit (finish cur StringLit start_pos start)
    | Some c when is_digit c ->
        let _ = take_while cur is_digit in
        let is_float = ref false in
        (if peek cur 0 = Some '.'
            && (match peek cur 1 with Some d -> is_digit d | _ -> false)
         then begin
           is_float := true;
           advance cur;
           ignore (take_while cur is_digit)
         end);
        (match peek cur 0 with
        | Some ('e' | 'E' | 'd' | 'D') when
            (match peek cur 1 with
             | Some c -> is_digit c || c = '+' || c = '-'
             | None -> false) ->
            is_float := true;
            advance cur;
            (match peek cur 0 with Some ('+' | '-') -> advance cur | _ -> ());
            ignore (take_while cur is_digit)
        | _ -> ());
        (* kind suffix: 1.0_8 *)
        if peek cur 0 = Some '_' then begin
          advance cur;
          ignore (take_while cur is_digit)
        end;
        emit (finish cur (if !is_float then FloatLit else IntLit) start_pos start)
    | Some '.' when List.exists (fun op -> starts_with_at src cur.pos op) dotted_ops ->
        let op = List.find (fun op -> starts_with_at src cur.pos op) dotted_ops in
        for _ = 1 to String.length op do
          advance cur
        done;
        emit (finish cur Op start_pos start)
    | Some c when is_ident_start c ->
        let text = take_while cur is_ident_char in
        emit (finish cur (if is_keyword text then Keyword else Ident) start_pos start)
    | Some ('(' | ')' | ',' | ':' | ';' | '&') -> (
        match peek cur 0 with
        | Some ':' when peek cur 1 = Some ':' ->
            advance cur;
            advance cur;
            emit (finish cur Punct start_pos start)
        | _ ->
            advance cur;
            emit (finish cur Punct start_pos start))
    | Some _ -> (
        let matched =
          List.find_opt
            (fun op ->
              let l = String.length op in
              cur.pos + l <= n && String.sub src cur.pos l = op)
            operators
        in
        match matched with
        | Some op ->
            for _ = 1 to String.length op do
              advance cur
            done;
            emit (finish cur Op start_pos start)
        | None ->
            raise
              (Lex_error
                 ( Printf.sprintf "unexpected character %C" src.[cur.pos],
                   { Loc.file; start; stop = start } )))
  done;
  List.rev !tokens

let significant ts =
  List.filter
    (fun t -> match t.kind with Whitespace | Comment -> false | _ -> true)
    ts
