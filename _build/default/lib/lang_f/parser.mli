(** Line-oriented recursive-descent parser for MiniF.

    Covers the grammar the Fortran BabelStream family needs: [program] and
    [subroutine] units, typed declarations with [allocatable] /
    [dimension] / [parameter] / [intent] attributes, classic and
    [concurrent] and [while] [do] loops, whole-array assignments and
    slices, [allocate]/[deallocate], block and one-line [if], [call],
    [print], and [!$omp] / [!$acc] directives.

    Directive regions follow Fortran structure: a loop directive
    ([parallel do], [taskloop], [target teams ... do], [acc parallel
    loop]) governs the next statement and silently consumes a matching
    [!$... end ...] line; block directives ([workshare], [kernels],
    [data]) govern everything up to their mandatory end line. *)

exception Parse_error of string * Sv_util.Loc.t

val parse : file:string -> string -> Ast.file
(** [parse ~file src] lexes and parses a MiniF source file. *)

val parse_directive_line : string -> Sv_util.Loc.t -> Ast.directive option
(** [parse_directive_line text loc] interprets one sentinel line
    ([!$omp ...] / [!$acc ...]). *)
