type base_ty = FReal of int | FInteger | FLogical | FCharacter

type fattr = Allocatable | Dimension of int | Parameter | Intent of string

type expr = { e : expr_node; eloc : Sv_util.Loc.t }

and expr_node =
  | FInt of int
  | FRealLit of float
  | FStr of string
  | FBool of bool
  | FVar of string
  | FBin of string * expr * expr
  | FUn of string * expr
  | FRef of string * arg list

and arg = AExpr of expr | ARange of expr option * expr option

type directive = {
  fd_origin : [ `Omp | `Acc ];
  fd_clauses : (string * string option) list;
  fd_loc : Sv_util.Loc.t;
}

type stmt = { s : stmt_node; sloc : Sv_util.Loc.t }

and stmt_node =
  | FAssign of expr * expr
  | FCallS of string * expr list
  | FIf of expr * stmt list * stmt list
  | FDo of string * expr * expr * expr option * stmt list
  | FDoConcurrent of string * expr * expr * stmt list
  | FDoWhile of expr * stmt list
  | FAllocate of (string * expr list) list
  | FDeallocate of string list
  | FDirective of directive * stmt list
  | FPrint of expr list
  | FReturn
  | FExit
  | FCycle
  | FStop of expr option

type decl = {
  d_ty : base_ty;
  d_attrs : fattr list;
  d_names : (string * int * expr option) list;
  d_loc : Sv_util.Loc.t;
}

type unit_kind = Program | Subroutine of string list

type prog_unit = {
  u_kind : unit_kind;
  u_name : string;
  u_decls : decl list;
  u_body : stmt list;
  u_loc : Sv_util.Loc.t;
}

type file = { f_file : string; f_units : prog_unit list }

let find_unit f name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun u -> String.lowercase_ascii u.u_name = name) f.f_units

let main_program f = List.find_opt (fun u -> u.u_kind = Program) f.f_units
