module Tree = Sv_tree.Tree
module Label = Sv_tree.Label
open Ast

let l ?text ?loc kind = Label.v ?text ?loc kind

let rec of_expr (e : expr) : Label.tree =
  let loc = e.eloc in
  match e.e with
  | FInt n -> Tree.leaf (l ~text:(string_of_int n) ~loc "f:int-lit")
  | FRealLit f -> Tree.leaf (l ~text:(Printf.sprintf "%.17g" f) ~loc "f:real-lit")
  | FStr s -> Tree.leaf (l ~text:s ~loc "f:string-lit")
  | FBool b -> Tree.leaf (l ~text:(string_of_bool b) ~loc "f:logical-lit")
  | FVar _ -> Tree.leaf (l ~loc "f:name-ref")
  | FBin (op, a, b) -> Tree.node (l ~text:op ~loc "f:binary") [ of_expr a; of_expr b ]
  | FUn (op, a) -> Tree.node (l ~text:op ~loc "f:unary") [ of_expr a ]
  | FRef (_, args) -> Tree.node (l ~loc "f:ref") (List.map (of_arg ~loc) args)

and of_arg ~loc = function
  | AExpr e -> of_expr e
  | ARange (lo, hi) ->
      Tree.node (l ~loc "f:range")
        (List.filter_map (Option.map of_expr) [ lo; hi ])

let of_directive d =
  let prefix = match d.fd_origin with `Omp -> "omp" | `Acc -> "acc" in
  let clause (word, args) =
    let kids =
      match args with
      | None -> []
      | Some a ->
          [ Tree.leaf
              (l ~text:(Sv_util.Xstring.collapse_spaces a) ~loc:d.fd_loc
                 (prefix ^ "-clause-args")) ]
    in
    (* GCC "also [has] OpenMP tokens in the AST" (§V-C): GENERIC carries
       implicit data-sharing nodes for OpenMP constructs. OpenACC under
       GCC introduces no parallel machinery (§V-B). *)
    let implicit =
      match d.fd_origin with
      | `Omp -> [ Tree.leaf (l ~loc:d.fd_loc "omp-implicit-dsa") ]
      | `Acc -> []
    in
    Tree.node (l ~loc:d.fd_loc (prefix ^ ":" ^ word)) (kids @ implicit)
  in
  (prefix ^ "-directive", List.map clause d.fd_clauses)

let rec of_stmt (s : stmt) : Label.tree =
  let loc = s.sloc in
  match s.s with
  | FAssign (lhs, rhs) -> Tree.node (l ~loc "f:assign") [ of_expr lhs; of_expr rhs ]
  | FCallS (_, args) -> Tree.node (l ~loc "f:call") (List.map of_expr args)
  | FIf (c, t, f) ->
      Tree.node (l ~loc "f:if")
        ([ of_expr c; Tree.node (l ~loc "f:then") (List.map of_stmt t) ]
        @ if f = [] then [] else [ Tree.node (l ~loc "f:else") (List.map of_stmt f) ])
  | FDo (_, lo, hi, step, body) ->
      Tree.node (l ~loc "f:do")
        ([ of_expr lo; of_expr hi ]
        @ (match step with Some e -> [ of_expr e ] | None -> [])
        @ [ Tree.node (l ~loc "f:body") (List.map of_stmt body) ])
  | FDoConcurrent (_, lo, hi, body) ->
      Tree.node (l ~loc "f:do-concurrent")
        [ of_expr lo; of_expr hi; Tree.node (l ~loc "f:body") (List.map of_stmt body) ]
  | FDoWhile (c, body) ->
      Tree.node (l ~loc "f:do-while")
        [ of_expr c; Tree.node (l ~loc "f:body") (List.map of_stmt body) ]
  | FAllocate allocs ->
      Tree.node (l ~loc "f:allocate")
        (List.map
           (fun (_, dims) -> Tree.node (l ~loc "f:alloc-spec") (List.map of_expr dims))
           allocs)
  | FDeallocate names ->
      Tree.node (l ~loc "f:deallocate")
        (List.map (fun _ -> Tree.leaf (l ~loc "f:name-ref")) names)
  | FDirective (d, body) ->
      let kind, clauses = of_directive d in
      Tree.node (l ~loc kind) (clauses @ List.map of_stmt body)
  | FPrint args -> Tree.node (l ~loc "f:print") (List.map of_expr args)
  | FReturn -> Tree.leaf (l ~loc "f:return")
  | FExit -> Tree.leaf (l ~loc "f:exit")
  | FCycle -> Tree.leaf (l ~loc "f:cycle")
  | FStop e ->
      Tree.node (l ~loc "f:stop") (match e with Some e -> [ of_expr e ] | None -> [])

let ty_kind = function
  | FReal k -> Printf.sprintf "f:real%d" k
  | FInteger -> "f:integer"
  | FLogical -> "f:logical"
  | FCharacter -> "f:character"

let attr_kind = function
  | Allocatable -> ("f:allocatable", "")
  | Dimension r -> ("f:dimension", string_of_int r)
  | Parameter -> ("f:parameter", "")
  | Intent dir -> ("f:intent", dir)

let of_decl (d : decl) : Label.tree =
  let loc = d.d_loc in
  let attrs =
    List.map
      (fun a ->
        let kind, text = attr_kind a in
        Tree.leaf (l ~text ~loc kind))
      d.d_attrs
  in
  let names =
    List.map
      (fun (_, rank, init) ->
        Tree.node
          (l ~text:(if rank > 0 then string_of_int rank else "") ~loc "f:declarator")
          (match init with Some e -> [ of_expr e ] | None -> []))
      d.d_names
  in
  Tree.node (l ~loc "f:decl") ((Tree.leaf (l ~loc (ty_kind d.d_ty)) :: attrs) @ names)

let of_unit (u : prog_unit) : Label.tree =
  let kind =
    match u.u_kind with Program -> "f:program" | Subroutine _ -> "f:subroutine"
  in
  let args =
    match u.u_kind with
    | Subroutine args -> List.map (fun _ -> Tree.leaf (l ~loc:u.u_loc "f:dummy-arg")) args
    | Program -> []
  in
  Tree.node (l ~loc:u.u_loc kind)
    (args @ List.map of_decl u.u_decls
    @ [ Tree.node (l ~loc:u.u_loc "f:body") (List.map of_stmt u.u_body) ])

let of_file (f : file) : Label.tree =
  Tree.node
    (l ~loc:(Sv_util.Loc.make ~file:f.f_file ~line:1 ~col:0) "f:file")
    (List.map of_unit f.f_units)
