(** [T_sem] construction for MiniF.

    The GENERIC/High-GIMPLE analogue of §IV-B: statements and expressions
    become semantic nodes, names are anonymised, literals and operator
    spellings are kept, directives keep clause structure. The label
    vocabulary is distinct from MiniC's (prefix ["f:"]) because the paper
    notes GIMPLE and ClangAST trees are not comparable across compilers;
    the metric layer only ever compares MiniF against MiniF. *)

val of_file : Ast.file -> Sv_tree.Label.tree
(** [of_file f] is the semantic tree of a whole source file; root
    ["f:file"], one child per program unit. *)

val of_stmt : Ast.stmt -> Sv_tree.Label.tree
(** Exposed for tests. *)

val of_expr : Ast.expr -> Sv_tree.Label.tree
(** Exposed for tests. *)
