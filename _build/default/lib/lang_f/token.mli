(** MiniF tokens and lexer.

    MiniF is the Fortran-like mini-language standing in for the GFortran
    side of the paper (§IV-B): free-form, line-oriented, lowercase
    keywords. Like the MiniC lexer, every lexeme is kept with its span so
    the source reconstructs exactly, and the directive sentinels the paper
    singles out — [!$omp] and [!$acc] comment lines — are first-class
    {!kind.Directive} tokens rather than comments (§III-C's "languages
    that use special comment tokens for directives are also handled"). *)

type kind =
  | Ident
  | Keyword
  | IntLit
  | FloatLit
  | StringLit
  | Punct        (** [( ) , ::  :] *)
  | Op           (** arithmetic/relational/logical including [**], [.and.] *)
  | Directive    (** a whole [!$omp ...] or [!$acc ...] line *)
  | Comment      (** a plain [! ...] line remainder *)
  | Newline      (** statement separator; significant in Fortran *)
  | Whitespace

type t = { kind : kind; text : string; loc : Sv_util.Loc.t }

val keywords : string list
(** MiniF keywords ([program], [do], [concurrent], [allocatable], ...). *)

exception Lex_error of string * Sv_util.Loc.t

val lex : file:string -> string -> t list
(** [lex ~file src] tokenises; concatenating token texts reproduces
    [src]. *)

val significant : t list -> t list
(** Drops whitespace and comments but {e keeps} newlines (statement
    structure) and directives. *)

val kind_name : kind -> string
(** Stable lowercase name for tree labels. *)
