(** BabelStream (C++): the McCalpin STREAM kernels in every model.

    Five kernels — copy, mul, add, triad, dot — over three double arrays,
    exactly the structure of UoB-HPC/BabelStream: a high
    boilerplate-to-algorithm ratio (§V-A notes the kernels are short in
    SLOC), which makes it the stress test for how much scaffolding each
    model imposes. Each emitted port self-verifies against the
    analytically tracked gold values, like the real mini-app. *)

val codebase : model:string -> Emit.codebase option
(** [codebase ~model] emits the port for a model id ([None] for unknown
    ids). *)

val all : unit -> Emit.codebase list
(** All ten ports, ["serial"] first. *)

val problem_size : int
(** Array extent used by the emitted deck (small enough to interpret). *)
