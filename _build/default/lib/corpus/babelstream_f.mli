(** BabelStream (Fortran): the model family of §V-B and Fig. 6.

    Emits the Hammond et al. BabelStream.F90 model variants the paper's
    Table II lists — [Sequential], [Array] (whole-array syntax),
    [DoConcurrent], [OpenMP], [OpenMP Taskloop], [OpenACC],
    [OpenACC Array] — plus [OpenMP Target]. Each port runs the five
    STREAM kernels and self-verifies against analytically tracked gold
    values, like the C++ side. *)

val model_ids : string list
(** ["sequential"; "array"; "doconcurrent"; "omp"; "omp-taskloop";
    "omp-target"; "acc"; "acc-array"]. *)

val model_name : string -> string
(** Display name for a model id (raises [Not_found] on unknown ids). *)

val codebase : model:string -> Emit.codebase option
(** Emit one Fortran port (the [Emit.codebase] has [lang = `F] and a
    single file). *)

val all : unit -> Emit.codebase list
(** All eight ports, in {!model_ids} order. *)

val problem_size : int
(** Array extent used by the emitted deck. *)
