let problem_size = 1024

let codebase ~model =
  match Emit.gen_for model with
  | None -> None
  | Some g ->
      let arr = Emit.arr g in
      let n = "n" in
      let abc = [ "a"; "b"; "c" ] in
      (* the five STREAM kernels, written through the model's accessor *)
      let k_init =
        Emit.map_kernel g ~name:"init_arrays" ~n ~arrays:abc
          ~scalars:[ ("double", "init_a"); ("double", "init_b"); ("double", "init_c") ]
          ~body:
            [
              Printf.sprintf "%s = init_a;" (arr "a" "i");
              Printf.sprintf "%s = init_b;" (arr "b" "i");
              Printf.sprintf "%s = init_c;" (arr "c" "i");
            ]
      in
      let k_copy =
        Emit.map_kernel g ~name:"copy" ~n ~arrays:[ "a"; "c" ] ~scalars:[]
          ~body:[ Printf.sprintf "%s = %s;" (arr "c" "i") (arr "a" "i") ]
      in
      let k_mul =
        Emit.map_kernel g ~name:"mul" ~n ~arrays:[ "b"; "c" ]
          ~scalars:[ ("double", "scalar") ]
          ~body:[ Printf.sprintf "%s = scalar * %s;" (arr "b" "i") (arr "c" "i") ]
      in
      let k_add =
        Emit.map_kernel g ~name:"add" ~n ~arrays:abc ~scalars:[]
          ~body:
            [ Printf.sprintf "%s = %s + %s;" (arr "c" "i") (arr "a" "i") (arr "b" "i") ]
      in
      let k_triad =
        Emit.map_kernel g ~name:"triad" ~n ~arrays:abc
          ~scalars:[ ("double", "scalar") ]
          ~body:
            [
              Printf.sprintf "%s = %s + scalar * %s;" (arr "a" "i") (arr "b" "i")
                (arr "c" "i");
            ]
      in
      let k_dot =
        Emit.reduce_kernel g ~name:"dot" ~n ~arrays:[ "a"; "b" ] ~scalars:[]
          ~result:"sum"
          ~expr:(Printf.sprintf "%s * %s" (arr "a" "i") (arr "b" "i"))
      in
      let tops =
        List.concat_map fst [ k_init; k_copy; k_mul; k_add; k_triad; k_dot ]
      in
      (* verification reads: staged models verify through a host copy *)
      let rb name = Emit.read_back g ~host:("h_" ^ name) ~dev:name ~n in
      let staged = rb "a" <> [] in
      let vread name i = if staged then Printf.sprintf "h_%s[%s]" name i else arr name i in
      let verify_error name gold =
        [
          Printf.sprintf "double err_%s = 0.0;" name;
          Printf.sprintf "for (int i = 0; i < %s; i++) {" n;
          Printf.sprintf "  err_%s += fabs(%s - %s);" name (vread name "i") gold;
          "}";
          Printf.sprintf "err_%s = err_%s / (double)%s;" name name n;
        ]
      in
      let main_body =
        [
          Printf.sprintf "const int n = %d;" problem_size;
          "const int num_times = 4;";
          "const double scalar = 0.4;";
          "double sum = 0.0;";
        ]
        @ Emit.alloc g ~name:"a" ~n
        @ Emit.alloc g ~name:"b" ~n
        @ Emit.alloc g ~name:"c" ~n
        @ [ "const double init_a = 0.1;"; "const double init_b = 0.2;";
            "const double init_c = 0.0;" ]
        @ snd k_init
        @ [ "for (int t = 0; t < num_times; t++) {" ]
        @ Emit.indent_block
            (snd k_copy @ snd k_mul @ snd k_add @ snd k_triad)
        @ [ "}" ]
        @ snd k_dot
        @ (if staged then rb "a" @ rb "b" @ rb "c" else [])
        @ [
            "// gold values follow the same kernel sequence analytically";
            "double gold_a = init_a;";
            "double gold_b = init_b;";
            "double gold_c = init_c;";
            "for (int t = 0; t < num_times; t++) {";
            "  gold_c = gold_a;";
            "  gold_b = scalar * gold_c;";
            "  gold_c = gold_a + gold_b;";
            "  gold_a = gold_b + scalar * gold_c;";
            "}";
          ]
        @ verify_error "a" "gold_a"
        @ verify_error "b" "gold_b"
        @ verify_error "c" "gold_c"
        @ [
            "const double epsi = 1.0e-8;";
            Printf.sprintf
              "double dot_err = fabs((sum - gold_a * gold_b * (double)%s) / (gold_a * gold_b * (double)%s));"
              n n;
            "if (err_a < epsi && err_b < epsi && err_c < epsi && dot_err < 1.0e-8) {";
            "  printf(\"Validation PASSED\\n\");";
            "} else {";
            "  printf(\"Validation FAILED\\n\");";
            "  return 1;";
            "}";
          ]
        @ Emit.dealloc g ~name:"a" ~n
        @ Emit.dealloc g ~name:"b" ~n
        @ Emit.dealloc g ~name:"c" ~n
      in
      let source =
        Emit.render
          ~header_comment:
            (Printf.sprintf "BabelStream (%s port): STREAM kernels copy/mul/add/triad/dot"
               (Emit.model_name g))
          ~tops ~main_body g
      in
      Some
        (Emit.wrap ~app:"babelstream" g ~source
           ~main_file:(Printf.sprintf "stream_%s.cpp" model) ())

let all () = List.filter_map (fun m -> codebase ~model:m) Emit.all_ids
